(* Elaboration: Zeus AST -> bit-level netlist.

   This implements sections 3-5 of the report:
   - constant/type/signal declarations with parameterized, possibly
     recursive component types;
   - lazy instantiation ("this hardware is only generated if it is used",
     section 4.2) — a local signal whose type is a component with a body
     is only turned into hardware the first time a statement touches it;
   - statements: assignment/aliasing, connection statements (translated
     to assignments per section 4.3), IF (rewritten to guard nets per
     section 8), FOR replication, WHEN conditional generation, WITH,
     SEQUENTIAL/PARALLEL (ordering constraints only), RESULT;
   - the predefined components AND/OR/NAND/NOR/XOR/NOT/EQUAL/RANDOM, REG,
     CLK and RSET;
   - the layout sub-language, recorded as Layout_ir per instance, with
     `virtual` replacement executed before the statement part. *)

open Zeus_base
open Zeus_lang
module SMap = Map.Make (String)

exception Abort of Loc.t * string

let abort loc fmt = Fmt.kstr (fun msg -> raise (Abort (loc, msg))) fmt

(* Elaboration limits: runaway type recursion protection. *)
let max_instance_depth = 2000

let max_instances = 2_000_000

(* ------------------------------------------------------------------ *)
(* Environments and values                                             *)
(* ------------------------------------------------------------------ *)

type binding =
  | Bconst of Cval.t
  | Btype of tydef
  | Bsignal of sigval

and tydef = {
  td_name : string;
  td_formals : string list;
  td_ast : Ast.ty;
  mutable td_env : env; (* def-site environment, includes the whole group *)
}

and env = binding SMap.t

and sigval =
  | Vbit of int (* net id *)
  | Varr of int * sigval array (* low index *)
  | Vrec of (string * Etype.mode * sigval) list
  | Vinst of inst_slot
  | Vvirt of virt_slot

and inst_slot = {
  slot_path : string;
  mutable slot_state : slot_state;
}

and slot_state =
  | Sthunk of (unit -> forced)
  | Sforcing
  | Sforced of forced

and forced = {
  f_ports : sigval; (* always a Vrec *)
  f_iid : int;
  f_result : int list; (* RESULT nets of a function component *)
}

and virt_slot = {
  virt_path : string;
  mutable virt_repl : sigval option;
  mutable virt_loc : Loc.t;
}

(* Resolved types: all constant expressions evaluated. *)
type rty =
  | Rbasic of Etype.kind
  | Rarray of int * int * rty
  | Rrecord of (string * Etype.mode * rty) list
  | Rcomp of comp_closure (* component type with body (incl. functions) *)
  | Rreg of Logic.t (* initial value: UNDEF unless REG(c), section 5.2 *)
  | Rvirtual

and comp_closure = {
  cc_name : string;
  cc_ast : Ast.component_ty;
  cc_env : env;
  cc_keep : unit SMap.t; (* names never filtered by a USES list *)
  cc_loc : Loc.t;
}

type ctx = {
  nl : Netlist.t;
  bag : Diag.Bag.t;
  layouts : (int, Layout_ir.t) Hashtbl.t;
  locals : (string, sigval) Hashtbl.t; (* hierarchical path -> local signal *)
  clk : int;
  rset : int;
  eager : bool; (* ablation: instantiate component signals on declaration *)
  mutable depth : int;
  mutable call_counter : int;
}

type frame = {
  env : env;
  self : int; (* iid of the component being elaborated *)
  path : string;
  guard : Netlist.src option; (* current IF guard *)
  withs : sigval list; (* WITH scopes, innermost first *)
  result : int list option; (* RESULT target nets in function components *)
}

(* Flattened expression values. *)
type item =
  | Inet of int
  | Iconst of Logic.t
  | Istar of int option (* "*" with optional declared width *)

let src_of_item = function
  | Inet id -> Some (Netlist.Snet id)
  | Iconst v -> Some (Netlist.Sconst v)
  | Istar _ -> None

(* ------------------------------------------------------------------ *)
(* Small helpers                                                        *)
(* ------------------------------------------------------------------ *)

let const_lookup env : Const_eval.lookup =
 fun id ->
  match SMap.find_opt id.Ast.id env with
  | Some (Bconst v) -> Some v
  | _ -> None

let eval_int env e = Const_eval.eval_int (const_lookup env) e

let eval_bool env e = Const_eval.eval_bool (const_lookup env) e

let diag_error ctx loc fmt = Diag.Bag.error ctx.bag Diag.Type_error loc fmt

let rty_width_opt rty =
  let rec go = function
    | Rbasic _ -> Some 1
    | Rarray (lo, hi, elem) ->
        let n = hi - lo + 1 in
        if n <= 0 then Some 0
        else Option.map (fun w -> n * w) (go elem)
    | Rrecord fields ->
        List.fold_left
          (fun acc (_, _, f) ->
            match (acc, go f) with
            | Some a, Some b -> Some (a + b)
            | _ -> None)
          (Some 0) fields
    | Rcomp _ | Rreg _ | Rvirtual -> None
  in
  go rty

(* ------------------------------------------------------------------ *)
(* Type resolution                                                      *)
(* ------------------------------------------------------------------ *)

let rec resolve_ty ctx (env : env) (ty : Ast.ty) : rty =
  match ty with
  | Ast.Tname (id, args) -> resolve_name ctx env id args
  | Ast.Tarray (lo_e, hi_e, elem, loc) ->
      let lo = eval_int env lo_e and hi = eval_int env hi_e in
      if hi < lo then
        abort loc "empty array range [%d..%d]" lo hi
      else Rarray (lo, hi, resolve_ty ctx env elem)
  | Ast.Tcomponent (c, loc) ->
      resolve_component ctx env ~keep:SMap.empty "<anonymous>" c loc

and resolve_name ctx env id args =
  match SMap.find_opt id.Ast.id env with
  | Some (Btype td) ->
      if List.length args <> List.length td.td_formals then
        abort id.Ast.id_loc "type '%s' expects %d parameter(s), got %d"
          id.Ast.id
          (List.length td.td_formals)
          (List.length args);
      let actuals = List.map (fun a -> Cval.Vint (eval_int env a)) args in
      let env' =
        List.fold_left2
          (fun e name v -> SMap.add name (Bconst v) e)
          td.td_env td.td_formals actuals
      in
      ctx.depth <- ctx.depth + 1;
      if ctx.depth > max_instance_depth then
        abort id.Ast.id_loc
          "type recursion deeper than %d while expanding '%s' — missing \
           base case?"
          max_instance_depth id.Ast.id;
      let keep =
        List.fold_left (fun s f -> SMap.add f () s) SMap.empty td.td_formals
      in
      let r = resolve_named ctx env' ~keep id.Ast.id td.td_ast in
      ctx.depth <- ctx.depth - 1;
      r
  | Some (Bconst _ | Bsignal _) ->
      abort id.Ast.id_loc "'%s' is not a type" id.Ast.id
  | None -> (
      match (id.Ast.id, args) with
      | "boolean", [] -> Rbasic Etype.KBool
      | "multiplex", [] -> Rbasic Etype.KMux
      | "REG", [] -> Rreg Logic.Undef
      | "REG", [ e ] -> (
          (* REG(c): register with a declared power-up value — the
             reconstruction of the scan-lost section 5.2 *)
          match eval_int env e with
          | 0 -> Rreg Logic.Zero
          | 1 -> Rreg Logic.One
          | v ->
              abort id.Ast.id_loc
                "REG initial value must be 0 or 1, got %d" v)
      | "virtual", [] -> Rvirtual
      | ("boolean" | "multiplex" | "REG" | "virtual"), _ ->
          abort id.Ast.id_loc "'%s' takes no type parameters" id.Ast.id
      | _ -> abort id.Ast.id_loc "undeclared type '%s'" id.Ast.id)

and resolve_named ctx env ~keep name = function
  | Ast.Tcomponent (c, loc) -> resolve_component ctx env ~keep name c loc
  | ty -> resolve_ty ctx env ty

and resolve_component ctx env ~keep name (c : Ast.component_ty) loc =
  match (c.Ast.cbody, c.Ast.cresult) with
  | None, None ->
      (* record type: component without body *)
      let fields =
        List.concat_map
          (fun (p : Ast.fparam) ->
            let m = Etype.mode_of_ast p.Ast.fmode in
            let rty = resolve_ty ctx env p.Ast.fty in
            List.map (fun (n : Ast.ident) -> (n.Ast.id, m, rty)) p.Ast.fnames)
          c.Ast.cparams
      in
      Rrecord fields
  | _ ->
      (* [keep]: the formals of the enclosing parameterized type
         definition stay visible regardless of a USES list — they are
         part of the type, not of its environment *)
      Rcomp { cc_name = name; cc_ast = c; cc_env = env; cc_keep = keep; cc_loc = loc }

(* ------------------------------------------------------------------ *)
(* Building signal values                                               *)
(* ------------------------------------------------------------------ *)

(* Create the sigval for a signal/parameter of resolved type [rty].
   [pin] tags created nets as pins of an instance; [mode] is the
   inherited parameter mode.  Component-with-body types become lazy
   instance slots (the laziness that makes recursion terminate). *)
let rec build_sigval ctx ~pin ~(mode : Etype.mode) ~path ~loc rty : sigval =
  match rty with
  | Rbasic k ->
      (match (mode, k, pin) with
      | (Etype.In | Etype.Out), Etype.KMux, Some _ ->
          diag_error ctx loc
            "unstructured IN and OUT parameters must be boolean: %s" path
      | Etype.Inout, Etype.KBool, Some _ ->
          diag_error ctx loc
            "INOUT parameters of basic type must be multiplex: %s" path
      | _ -> ());
      let pin = Option.map (fun iid -> (iid, mode)) pin in
      Vbit (Netlist.fresh_net ctx.nl ~name:path ~kind:k ?pin ~loc ())
  | Rarray (lo, hi, elem) ->
      let n = hi - lo + 1 in
      Varr
        ( lo,
          Array.init n (fun i ->
              build_sigval ctx ~pin ~mode
                ~path:(Printf.sprintf "%s[%d]" path (lo + i))
                ~loc elem) )
  | Rrecord fields ->
      Vrec
        (List.map
           (fun (fname, fmode, f) ->
             let m =
               match Etype.combine_mode mode fmode with
               | Some m -> m
               | None ->
                   diag_error ctx loc
                     "field '%s.%s' contradicts the inherited %s mode" path
                     fname
                     (Etype.mode_to_string mode);
                   fmode
             in
             (fname, fmode, build_sigval ctx ~pin ~mode:m ~path:(path ^ "." ^ fname) ~loc f))
           fields)
  | Rcomp cc ->
      if cc.cc_ast.Ast.cresult <> None then
        abort loc "function component type '%s' cannot be instantiated by a \
                   signal declaration" cc.cc_name;
      let rec slot =
        { slot_path = path; slot_state = Sthunk (fun () -> force_comp ctx cc path loc slot) }
      in
      (* the lazy-instantiation ablation: the paper's "this hardware is
         only generated if it is used" (section 4.2) is what terminates
         recursive types — eager mode demonstrates the divergence *)
      if ctx.eager then ignore (force_slot ctx ~loc slot);
      Vinst slot
  | Rreg init ->
      let rec slot =
        { slot_path = path;
          slot_state = Sthunk (fun () -> force_reg ctx path loc ~init slot) }
      in
      if ctx.eager then ignore (force_slot ctx ~loc slot);
      Vinst slot
  | Rvirtual -> Vvirt { virt_path = path; virt_repl = None; virt_loc = loc }

(* Flatten to net ids without forcing anything (for instance port lists) *)
and flatten_noforce sv acc =
  match sv with
  | Vbit id -> id :: acc
  | Varr (_, elems) -> Array.fold_left (fun acc e -> flatten_noforce e acc) acc elems
  | Vrec fields -> List.fold_left (fun acc (_, _, f) -> flatten_noforce f acc) acc fields
  | Vinst _ | Vvirt _ -> acc

(* Flatten to net ids, forcing instances and requiring virtuals replaced *)
and flatten_force ctx ~loc sv acc =
  match sv with
  | Vbit id -> id :: acc
  | Varr (_, elems) ->
      Array.fold_left (fun acc e -> flatten_force ctx ~loc e acc) acc elems
  | Vrec fields ->
      List.fold_left (fun acc (_, _, f) -> flatten_force ctx ~loc f acc) acc fields
  | Vinst slot ->
      let f = force_slot ctx ~loc slot in
      flatten_force ctx ~loc f.f_ports acc
  | Vvirt v -> (
      match v.virt_repl with
      | Some sv -> flatten_force ctx ~loc sv acc
      | None -> abort loc "virtual signal '%s' was never replaced" v.virt_path)

and sig_nets ctx ~loc sv = List.rev (flatten_force ctx ~loc sv [])

and force_slot _ctx ~loc slot =
  match slot.slot_state with
  | Sforced f -> f
  | Sforcing ->
      abort loc "instantiation cycle through '%s'" slot.slot_path
  | Sthunk th ->
      slot.slot_state <- Sforcing;
      let f = th () in
      slot.slot_state <- Sforced f;
      f

and force_reg ctx path loc ~init _slot =
  let inst = Netlist.add_instance ctx.nl ~path ~type_name:"REG" ~ports:[] ~loc in
  let rin =
    Netlist.fresh_net ctx.nl ~name:(path ^ ".in") ~kind:Etype.KBool
      ~pin:(inst.Netlist.iid, Etype.In) ~loc ()
  in
  let rout =
    Netlist.fresh_net ctx.nl ~name:(path ^ ".out") ~kind:Etype.KBool
      ~pin:(inst.Netlist.iid, Etype.Out) ~loc ()
  in
  inst.Netlist.iports <- [ ("in", Etype.In, [ rin ]); ("out", Etype.Out, [ rout ]) ];
  ignore (Netlist.add_reg ctx.nl ~rin ~rout ~path ~init);
  {
    f_ports =
      Vrec [ ("in", Etype.In, Vbit rin); ("out", Etype.Out, Vbit rout) ];
    f_iid = inst.Netlist.iid;
    f_result = [];
  }

(* Instantiate a component type with a body. *)
and force_comp ctx cc path loc _slot =
  ctx.depth <- ctx.depth + 1;
  if ctx.depth > max_instance_depth then
    abort loc "instance hierarchy deeper than %d at '%s'" max_instance_depth
      path;
  if Netlist.instance_count ctx.nl > max_instances then
    abort loc "more than %d instances — runaway recursion?" max_instances;
  let inst =
    Netlist.add_instance ctx.nl ~path ~type_name:cc.cc_name ~ports:[] ~loc
  in
  let iid = inst.Netlist.iid in
  (* the body of this component *)
  let body =
    match cc.cc_ast.Ast.cbody with
    | Some b -> b
    | None -> assert false (* Rcomp implies a body (parser enforces) *)
  in
  (* USES filtering of the definition-site environment *)
  let base_env =
    match body.Ast.buses with
    | None -> cc.cc_env
    | Some ids ->
        let wanted =
          List.fold_left
            (fun s (i : Ast.ident) -> SMap.add i.Ast.id () s)
            cc.cc_keep ids
        in
        SMap.filter (fun name _ -> SMap.mem name wanted) cc.cc_env
  in
  (* parameters *)
  let ports =
    List.concat_map
      (fun (p : Ast.fparam) ->
        let m = Etype.mode_of_ast p.Ast.fmode in
        let rty = resolve_ty ctx cc.cc_env p.Ast.fty in
        List.map
          (fun (n : Ast.ident) ->
            let sv =
              build_sigval ctx ~pin:(Some iid) ~mode:m
                ~path:(path ^ "." ^ n.Ast.id) ~loc:n.Ast.id_loc rty
            in
            (n.Ast.id, m, sv))
          p.Ast.fnames)
      cc.cc_ast.Ast.cparams
  in
  inst.Netlist.iports <-
    List.map (fun (n, m, sv) -> (n, m, List.rev (flatten_noforce sv []))) ports;
  let env =
    List.fold_left
      (fun e (n, _, sv) -> SMap.add n (Bsignal sv) e)
      base_env ports
  in
  (* result nets for function component types: always created as mux —
     conditional RESULT statements make the value tri-state (section 3.2),
     and the implicit conversion handles boolean callers *)
  let result_nets =
    match cc.cc_ast.Ast.cresult with
    | None -> None
    | Some rty_ast ->
        let rty = resolve_ty ctx cc.cc_env rty_ast in
        let w =
          match rty_width_opt rty with
          | Some w -> w
          | None -> abort loc "function result type must be a data type"
        in
        Some
          (List.init w (fun i ->
               Netlist.fresh_net ctx.nl
                 ~name:(Printf.sprintf "%s.RESULT[%d]" path i)
                 ~kind:Etype.KMux ~pin:(iid, Etype.Out) ~loc ()))
  in
  (* local declarations *)
  let env = elab_decls ctx env ~path body.Ast.bdecls in
  let frame =
    { env; self = iid; path; guard = None; withs = []; result = result_nets }
  in
  (* phase A: virtual replacements must precede the statement part *)
  layout_replacements ctx frame body.Ast.bbody_layout;
  (* the statement part *)
  elab_stmts ctx frame body.Ast.bstmts;
  (* phase B: record the placement tree (head layout + body layout) *)
  let lay =
    elab_layout ctx frame
      (cc.cc_ast.Ast.chead_layout @ body.Ast.bbody_layout)
  in
  if lay <> [] then Hashtbl.replace ctx.layouts iid lay;
  ctx.depth <- ctx.depth - 1;
  {
    f_ports = Vrec ports;
    f_iid = iid;
    f_result = Option.value ~default:[] result_nets;
  }

(* ------------------------------------------------------------------ *)
(* Declarations                                                         *)
(* ------------------------------------------------------------------ *)

and elab_decls ctx env ~path decls =
  List.fold_left (fun env d -> elab_decl ctx env ~path d) env decls

and elab_decl ctx env ~path = function
  | Ast.Dconst entries ->
      List.fold_left
        (fun env ((id : Ast.ident), c) ->
          if SMap.mem id.Ast.id env then
            Diag.Bag.warning ctx.bag Diag.Name_error id.Ast.id_loc
              "constant '%s' shadows an earlier declaration" id.Ast.id;
          let v =
            try Const_eval.eval_constant (const_lookup env) c
            with Const_eval.Error (loc, msg) -> raise (Abort (loc, msg))
          in
          SMap.add id.Ast.id (Bconst v) env)
        env entries
  | Ast.Dtype defs ->
      (* all definitions of the group see the whole group (recursion and
         mutual recursion tie the knot through td_env mutation) *)
      let tds =
        List.map
          (fun (d : Ast.type_def) ->
            {
              td_name = d.Ast.tname.Ast.id;
              td_formals = List.map (fun (i : Ast.ident) -> i.Ast.id) d.Ast.tformals;
              td_ast = d.Ast.tty;
              td_env = env;
            })
          defs
      in
      let env' =
        List.fold_left (fun e td -> SMap.add td.td_name (Btype td) e) env tds
      in
      List.iter (fun td -> td.td_env <- env') tds;
      env'
  | Ast.Dsignal entries ->
      List.fold_left
        (fun env (ids, ty) ->
          let rty = resolve_ty ctx env ty in
          List.fold_left
            (fun env (id : Ast.ident) ->
              let full = path ^ "." ^ id.Ast.id in
              let sv =
                build_sigval ctx ~pin:None ~mode:Etype.Inout ~path:full
                  ~loc:id.Ast.id_loc rty
              in
              Hashtbl.replace ctx.locals full sv;
              SMap.add id.Ast.id (Bsignal sv) env)
            env ids)
        env entries

(* ------------------------------------------------------------------ *)
(* Signal reference resolution                                          *)
(* ------------------------------------------------------------------ *)

(* A resolved reference is a set of alternatives guarded by dynamic
   address comparisons ([NUM(...)] selectors); static references have a
   single unguarded arm. *)
and resolve_ref ctx frame (sref : Ast.signal_ref) :
    (Netlist.src option * sigval) list =
  match sref with
  | Ast.Star loc -> abort loc "'*' is not a signal here"
  | Ast.Sig (id, sels) ->
      let head = lookup_head ctx frame id in
      List.fold_left (fun arms sel -> apply_selector ctx frame arms sel) [ (None, head) ] sels

and lookup_head ctx frame (id : Ast.ident) : sigval =
  let name = id.Ast.id in
  (* WITH scopes first (section 4.6) *)
  let rec in_withs = function
    | [] -> None
    | w :: rest -> (
        let fields =
          match w with
          | Vrec fields -> Some fields
          | Vinst slot -> (
              match (force_slot ctx ~loc:id.Ast.id_loc slot).f_ports with
              | Vrec fields -> Some fields
              | _ -> None)
          | _ -> None
        in
        match fields with
        | Some fields -> (
            match List.find_opt (fun (n, _, _) -> n = name) fields with
            | Some (_, _, sv) -> Some sv
            | None -> in_withs rest)
        | None -> in_withs rest)
  in
  match in_withs frame.withs with
  | Some sv -> sv
  | None -> (
      if name = "CLK" then Vbit ctx.clk
      else if name = "RSET" then Vbit ctx.rset
      else
        match SMap.find_opt name frame.env with
        | Some (Bsignal sv) -> sv
        | Some (Bconst (Cval.Vsig _)) ->
            (* signal constants referenced in expressions are handled by
               the expression evaluator; as a bare sigval they have no
               nets *)
            abort id.Ast.id_loc
              "signal constant '%s' cannot be used as an assignable signal"
              name
        | Some (Bconst (Cval.Vint _)) ->
            abort id.Ast.id_loc "'%s' is a numeric constant, not a signal" name
        | Some (Btype _) ->
            abort id.Ast.id_loc "'%s' is a type, not a signal" name
        | None -> abort id.Ast.id_loc "undeclared signal '%s'" name)

and apply_selector ctx frame arms sel =
  List.concat_map
    (fun (g, sv) ->
      match sel with
      | Ast.Sel_index e -> (
          let i = eval_int frame.env e in
          let loc = Ast.const_expr_loc e in
          match deref ctx ~loc sv with
          | Varr (lo, elems) ->
              if i < lo || i >= lo + Array.length elems then
                abort loc "index %d out of range [%d..%d]" i lo
                  (lo + Array.length elems - 1)
              else [ (g, elems.(i - lo)) ]
          | _ -> abort loc "indexing a non-array signal")
      | Ast.Sel_range (e1, e2) -> (
          let a = eval_int frame.env e1 and b = eval_int frame.env e2 in
          let loc = Ast.const_expr_loc e1 in
          match deref ctx ~loc sv with
          | Varr (lo, elems) ->
              let hi = lo + Array.length elems - 1 in
              if a < lo || b > hi || a > b then
                abort loc "range [%d..%d] out of bounds [%d..%d]" a b lo hi
              else
                [ (g, Varr (a, Array.sub elems (a - lo) (b - a + 1))) ]
          | _ -> abort loc "slicing a non-array signal")
      | Ast.Sel_num addr_ref -> (
          let loc = Ast.signal_ref_loc addr_ref in
          let addr_items = read_ref ctx frame addr_ref in
          let addr_srcs =
            List.map
              (fun it ->
                match src_of_item it with
                | Some s -> s
                | None -> abort loc "'*' cannot appear in a NUM address")
              addr_items
          in
          let w = List.length addr_srcs in
          match deref ctx ~loc sv with
          | Varr (lo, elems) ->
              List.init (Array.length elems) (fun k ->
                  let idx = lo + k in
                  (* guard: EQUAL(addr, BIN(idx,w)) composed with any
                     enclosing dynamic guard *)
                  let const_bits =
                    Cval.sctree_leaves (Cval.bin idx w)
                    |> List.map (fun v -> Netlist.Sconst v)
                  in
                  let eq_out =
                    Netlist.fresh_net ctx.nl
                      ~name:(Printf.sprintf "%s.num_sel#%d" frame.path idx)
                      ~kind:Etype.KBool ~loc ()
                  in
                  List.iter (Netlist.mark_read_src ctx.nl ~scope:frame.self) addr_srcs;
                  ignore
                    (Netlist.add_gate ctx.nl ~op:Netlist.Gequal
                       ~inputs:(addr_srcs @ const_bits) ~output:eq_out ~loc);
                  let g' = and_src ctx frame ~loc g (Netlist.Snet eq_out) in
                  (Some g', elems.(idx - lo)))
              |> Array.of_list |> Array.to_list
          | _ -> abort loc "NUM-indexing a non-array signal")
      | Ast.Sel_field f -> select_field ctx frame g sv f
      | Ast.Sel_field_range (f1, f2) -> (
          (* ".a..b": consecutive fields a through b of a record *)
          let loc = f1.Ast.id_loc in
          match deref ctx ~loc sv with
          | Vrec fields ->
              let names = List.map (fun (n, _, _) -> n) fields in
              let pos n =
                match List.find_index (( = ) n) names with
                | Some i -> i
                | None -> abort loc "no field '%s'" n
              in
              let a = pos f1.Ast.id and b = pos f2.Ast.id in
              if a > b then abort loc "field range '%s..%s' is reversed" f1.Ast.id f2.Ast.id;
              let sub = List.filteri (fun i _ -> i >= a && i <= b) fields in
              [ (g, Vrec sub) ]
          | _ -> abort loc "field range on a non-record signal"))
    arms

(* force through instances/virtuals so selectors can look inside *)
and deref ctx ~loc sv =
  match sv with
  | Vinst slot -> (force_slot ctx ~loc slot).f_ports
  | Vvirt v -> (
      match v.virt_repl with
      | Some sv -> deref ctx ~loc sv
      | None -> abort loc "virtual signal '%s' was never replaced" v.virt_path)
  | sv -> sv

and select_field ctx frame g sv (f : Ast.ident) =
  let loc = f.Ast.id_loc in
  match deref ctx ~loc sv with
  | Vrec fields -> (
      match List.find_opt (fun (n, _, _) -> n = f.Ast.id) fields with
      | Some (_, _, sub) -> [ (g, sub) ]
      | None -> abort loc "no field '%s'" f.Ast.id)
  | Varr (lo, elems) ->
      (* distribution rule (section 4.1): r.in denotes r[1..n].in *)
      let sub =
        Array.map
          (fun e ->
            match select_field ctx frame g e f with
            | [ (_, sv) ] -> sv
            | _ -> abort loc "dynamic selection cannot be distributed over an array")
          elems
      in
      [ (g, Varr (lo, sub)) ]
  | _ -> abort loc "field selection '.%s' on a basic signal" f.Ast.id

(* read a reference as a flat item list (building muxes for dynamic
   NUM-selected references) *)
and read_ref ctx frame (sref : Ast.signal_ref) : item list =
  match sref with
  | Ast.Star loc -> [ Istar (Some 1) ] |> fun _ -> abort loc "'*' cannot be read"
  | Ast.Sig _ -> (
      let arms = resolve_ref ctx frame sref in
      match arms with
      | [ (None, sv) ] ->
          let nets = sig_nets ctx ~loc:(Ast.signal_ref_loc sref) sv in
          List.iter (Netlist.mark_read ctx.nl ~scope:frame.self) nets;
          List.map (fun id -> Inet id) nets
      | arms -> read_arms ctx frame ~loc:(Ast.signal_ref_loc sref) arms)

and read_arms ctx frame ~loc arms =
  (* dynamic read: per bit position, a mux net driven under each arm's
     guard *)
  let flat =
    List.map
      (fun (g, sv) ->
        let nets = sig_nets ctx ~loc sv in
        List.iter (Netlist.mark_read ctx.nl ~scope:frame.self) nets;
        (g, nets))
      arms
  in
  let width =
    match flat with
    | [] -> 0
    | (_, nets) :: _ -> List.length nets
  in
  List.iter
    (fun (_, nets) ->
      if List.length nets <> width then
        abort loc "NUM-selected alternatives have different widths")
    flat;
  List.init width (fun bitpos ->
      let out =
        Netlist.fresh_net ctx.nl
          ~name:(Printf.sprintf "%s.num_mux[%d]" frame.path bitpos)
          ~kind:Etype.KMux ~loc ()
      in
      List.iter
        (fun (g, nets) ->
          let src = Netlist.Snet (List.nth nets bitpos) in
          ignore (Netlist.add_driver ctx.nl ~scope:frame.self ~target:out ~guard:g ~source:src ~loc))
        flat;
      Inet out)

(* ------------------------------------------------------------------ *)
(* Guard plumbing                                                       *)
(* ------------------------------------------------------------------ *)

and and_src ctx frame ~loc a b =
  match (a, b) with
  | None, s -> s
  | Some (Netlist.Sconst Logic.One), s -> s
  | Some a, b ->
      let out =
        Netlist.fresh_net ctx.nl
          ~name:(frame.path ^ ".guard")
          ~kind:Etype.KBool ~loc ()
      in
      Netlist.mark_read_src ctx.nl ~scope:frame.self a;
      Netlist.mark_read_src ctx.nl ~scope:frame.self b;
      ignore (Netlist.add_gate ctx.nl ~op:Netlist.Gand ~inputs:[ a; b ] ~output:out ~loc);
      Netlist.Snet out

and not_src ctx frame ~loc s =
  match s with
  | Netlist.Sconst v -> Netlist.Sconst (Logic.not_ v)
  | Netlist.Snet _ ->
      let out =
        Netlist.fresh_net ctx.nl
          ~name:(frame.path ^ ".nguard")
          ~kind:Etype.KBool ~loc ()
      in
      Netlist.mark_read_src ctx.nl ~scope:frame.self s;
      ignore (Netlist.add_gate ctx.nl ~op:Netlist.Gnot ~inputs:[ s ] ~output:out ~loc);
      Netlist.Snet out

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

and eval_expr ctx frame (e : Ast.expr) : item list =
  match e with
  | Ast.Eref (Ast.Star loc) -> abort loc "unexpected '*' (internal)"
  | Ast.Eref (Ast.Sig (id, sels) as sref) -> (
      (* the head may be a signal constant: bit2[i] — or a numeric
         constant 0/1, whose type is boolean (section 3.1) *)
      match SMap.find_opt id.Ast.id frame.env with
      | Some (Bconst (Cval.Vsig tree)) when not (in_with_scope ctx frame id) ->
          const_select ctx frame tree sels
      | Some (Bconst (Cval.Vint ((0 | 1) as v)))
        when sels = [] && not (in_with_scope ctx frame id) ->
          [ Iconst (Logic.of_bool (v = 1)) ]
      | _ -> read_ref ctx frame sref)
  | Ast.Ecall (id, params, args, loc) -> eval_call ctx frame id params args loc
  | Ast.Ebin (a, b, loc) ->
      let va = eval_int frame.env a and vb = eval_int frame.env b in
      if vb <= 0 then abort loc "BIN width must be positive";
      List.map (fun v -> Iconst v) (Cval.sctree_leaves (Cval.bin va vb))
  | Ast.Econst sc ->
      let tree =
        try Const_eval.eval_sig_const (const_lookup frame.env) sc
        with Const_eval.Error (loc, msg) -> raise (Abort (loc, msg))
      in
      List.map (fun v -> Iconst v) (Cval.sctree_leaves tree)
  | Ast.Estar (w, _) ->
      [ Istar (Option.map (eval_int frame.env) w) ]
  | Ast.Etuple (es, _) -> List.concat_map (eval_expr ctx frame) es

and in_with_scope ctx frame (id : Ast.ident) =
  List.exists
    (fun w ->
      let fields =
        match w with
        | Vrec fields -> Some fields
        | Vinst slot -> (
            match slot.slot_state with
            | Sforced f -> (
                match f.f_ports with
                | Vrec fields -> Some fields
                | _ -> None)
            | _ -> None)
        | _ -> None
      in
      match fields with
      | Some fields -> List.exists (fun (n, _, _) -> n = id.Ast.id) fields
      | None -> ignore ctx;
          false)
    frame.withs

and const_select ctx frame tree sels =
  let rec go tree = function
    | [] -> tree
    | Ast.Sel_index e :: rest -> (
        let i = eval_int frame.env e in
        let loc = Ast.const_expr_loc e in
        match tree with
        | Cval.Tuple elems ->
            if i < 1 || i > List.length elems then
              abort loc "signal constant index %d out of range" i
            else go (List.nth elems (i - 1)) rest
        | Cval.Leaf _ -> abort loc "indexing a single-bit signal constant")
    | Ast.Sel_range (e1, e2) :: rest -> (
        let a = eval_int frame.env e1 and b = eval_int frame.env e2 in
        let loc = Ast.const_expr_loc e1 in
        match tree with
        | Cval.Tuple elems ->
            if a < 1 || b > List.length elems || a > b then
              abort loc "signal constant range out of bounds"
            else
              go (Cval.Tuple (List.filteri (fun i _ -> i >= a - 1 && i <= b - 1) elems)) rest
        | Cval.Leaf _ -> abort loc "slicing a single-bit signal constant")
    | (Ast.Sel_num _ | Ast.Sel_field _ | Ast.Sel_field_range _) :: _ ->
        abort Loc.dummy "illegal selector on a signal constant"
  in
  ignore ctx;
  List.map (fun v -> Iconst v) (Cval.sctree_leaves (go tree sels))

and eval_call ctx frame (id : Ast.ident) params args loc : item list =
  let name = id.Ast.id in
  (* user function components shadow the predefined ones where the name
     is not a reserved word *)
  match SMap.find_opt name frame.env with
  | Some (Btype td) -> call_function ctx frame td params args loc
  | _ -> (
      let op =
        match name with
        | "AND" -> Some Netlist.Gand
        | "OR" -> Some Netlist.Gor
        | "NAND" -> Some Netlist.Gnand
        | "NOR" -> Some Netlist.Gnor
        | "XOR" -> Some Netlist.Gxor
        | "NOT" -> Some Netlist.Gnot
        | "EQUAL" -> Some Netlist.Gequal
        | "RANDOM" -> Some Netlist.Grandom
        | _ -> None
      in
      match op with
      | Some op -> eval_gate ctx frame op name params args loc
      | None -> abort loc "undeclared function component '%s'" name)

and eval_gate ctx frame op name params args loc : item list =
  if params <> [] then abort loc "%s takes no type parameters" name;
  let operands =
    List.map
      (fun a ->
        let items = eval_expr ctx frame a in
        List.map
          (fun it ->
            match src_of_item it with
            | Some s -> s
            | None -> abort loc "'*' cannot be an operand of %s" name)
          items)
      args
  in
  let fresh_out i =
    Netlist.fresh_net ctx.nl
      ~name:(Printf.sprintf "%s.%s#%d[%d]" frame.path (String.lowercase_ascii name)
               ctx.call_counter i)
      ~kind:Etype.KBool ~loc ()
  in
  ctx.call_counter <- ctx.call_counter + 1;
  List.iter (List.iter (Netlist.mark_read_src ctx.nl ~scope:frame.self)) operands;
  match (op, operands) with
  | Netlist.Grandom, [] ->
      let out = fresh_out 0 in
      ignore (Netlist.add_gate ctx.nl ~op ~inputs:[] ~output:out ~loc);
      [ Inet out ]
  | Netlist.Grandom, _ -> abort loc "RANDOM takes no arguments"
  | Netlist.Gnot, [ xs ] ->
      List.mapi
        (fun i x ->
          let out = fresh_out i in
          ignore (Netlist.add_gate ctx.nl ~op ~inputs:[ x ] ~output:out ~loc);
          Inet out)
        xs
  | Netlist.Gnot, _ -> abort loc "NOT takes exactly one operand"
  | Netlist.Gequal, [ xs; ys ] ->
      if List.length xs <> List.length ys then
        abort loc "EQUAL operands have different widths (%d vs %d)"
          (List.length xs) (List.length ys);
      let out = fresh_out 0 in
      ignore (Netlist.add_gate ctx.nl ~op ~inputs:(xs @ ys) ~output:out ~loc);
      [ Inet out ]
  | Netlist.Gequal, _ -> abort loc "EQUAL takes exactly two operands"
  | (Netlist.Gand | Netlist.Gor | Netlist.Gnand | Netlist.Gnor | Netlist.Gxor), [] ->
      abort loc "%s needs at least one operand" name
  | (Netlist.Gand | Netlist.Gor | Netlist.Gnand | Netlist.Gnor | Netlist.Gxor),
    (first :: _ as ops) ->
      let m = List.length first in
      List.iter
        (fun o ->
          if List.length o <> m then
            abort loc "%s operands have different widths" name)
        ops;
      List.init m (fun i ->
          let out = fresh_out i in
          let inputs = List.map (fun o -> List.nth o i) ops in
          ignore (Netlist.add_gate ctx.nl ~op ~inputs ~output:out ~loc);
          Inet out)

(* inline expansion of a user function component call *)
and call_function ctx frame td params args loc : item list =
  let cc =
    let env' =
      if List.length params <> List.length td.td_formals then
        abort loc "'%s' expects %d type parameter(s), got %d" td.td_name
          (List.length td.td_formals) (List.length params)
      else
        List.fold_left2
          (fun e name p -> SMap.add name (Bconst (Cval.Vint (eval_int frame.env p))) e)
          td.td_env td.td_formals params
    in
    let keep =
      List.fold_left (fun s f -> SMap.add f () s) SMap.empty td.td_formals
    in
    match resolve_named ctx env' ~keep td.td_name td.td_ast with
    | Rcomp cc -> cc
    | _ -> abort loc "'%s' is not a function component type" td.td_name
  in
  if cc.cc_ast.Ast.cresult = None then
    abort loc "'%s' is not a function component type (no result)" td.td_name;
  ctx.call_counter <- ctx.call_counter + 1;
  let path = Printf.sprintf "%s.%s#%d" frame.path td.td_name ctx.call_counter in
  let rec slot =
    { slot_path = path; slot_state = Sthunk (fun () -> force_comp ctx cc path loc slot) }
  in
  let f = force_slot ctx ~loc slot in
  let inst = Netlist.find_instance ctx.nl f.f_iid in
  inst.Netlist.is_function_call <- true;
  (* all parameters of a function component are value carriers: bind the
     actuals *)
  let port_chunks =
    List.map (fun (n, m, nets) -> (n, m, nets)) inst.Netlist.iports
  in
  let actual_items = List.map (eval_expr ctx frame) args in
  if List.length actual_items <> List.length port_chunks then
    abort loc "'%s' expects %d argument(s), got %d" td.td_name
      (List.length port_chunks) (List.length actual_items);
  List.iter2
    (fun (pname, pmode, nets) items ->
      if pmode <> Etype.In then
        diag_error ctx loc
          "parameter '%s' of function component '%s' must be IN" pname
          td.td_name;
      let expanded = expand_stars items (List.length nets) loc in
      List.iter2
        (fun net it ->
          match it with
          | Istar _ -> Netlist.mark_starred ctx.nl ~scope:frame.self net
          | _ ->
              let src = Option.get (src_of_item it) in
              Netlist.mark_read_src ctx.nl ~scope:frame.self src;
              ignore
                (Netlist.add_driver ctx.nl ~scope:frame.self ~target:net ~guard:None ~source:src ~loc))
        nets expanded)
    port_chunks actual_items;
  List.iter (Netlist.mark_read ctx.nl ~scope:frame.self) f.f_result;
  List.map (fun id -> Inet id) f.f_result

(* expand Istar items so the total width matches [want] *)
and expand_stars items want loc =
  let fixed =
    List.fold_left
      (fun acc it ->
        match it with
        | Istar (Some w) -> acc + w
        | Istar None -> acc
        | _ -> acc + 1)
      0 items
  in
  let flex = List.length (List.filter (function Istar None -> true | _ -> false) items) in
  let missing = want - fixed in
  if missing < 0 || (flex = 0 && missing <> 0) then
    abort loc "width mismatch: expected %d basic signals, got %d%s" want fixed
      (if flex > 0 then " plus flexible '*'" else "");
  let per_star = if flex = 0 then 0 else missing / flex in
  let extra = if flex = 0 then 0 else missing mod flex in
  let star_idx = ref 0 in
  List.concat_map
    (fun it ->
      match it with
      | Istar (Some w) -> List.init w (fun _ -> Istar (Some 1))
      | Istar None ->
          incr star_idx;
          let n = per_star + if !star_idx = 1 then extra else 0 in
          List.init n (fun _ -> Istar (Some 1))
      | it -> [ it ])
    items

(* ------------------------------------------------------------------ *)
(* Assignment and aliasing                                              *)
(* ------------------------------------------------------------------ *)

(* legality of a ':=' drive to [net] under [guard] (section 4.7) *)
and check_assign_target ctx frame ~loc ~conditional net_id =
  let net = Netlist.net ctx.nl net_id in
  (match net.Netlist.pin with
  | Some (iid, Etype.In) when iid = frame.self ->
      Diag.Bag.error ctx.bag Diag.Assign_error loc
        "assignment to formal IN parameter '%s'" net.Netlist.name
  | Some (iid, Etype.Out) when iid <> frame.self ->
      Diag.Bag.error ctx.bag Diag.Assign_error loc
        "assignment to OUT parameter '%s' of an instantiated component"
        net.Netlist.name
  | _ -> ());
  if conditional && net.Netlist.kind = Etype.KBool then begin
    (* exception 1: formal OUT parameter, or IN parameter of an
       instantiated component *)
    let exception1 =
      match net.Netlist.pin with
      | Some (iid, Etype.Out) -> iid = frame.self
      | Some (iid, Etype.In) -> iid <> frame.self
      | _ -> false
    in
    if not exception1 then
      Diag.Bag.error ctx.bag Diag.Type_error loc
        "conditional assignment to boolean signal '%s' (type rules (1): \
         only multiplex signals, formal OUT parameters and IN parameters \
         of instantiated components may be assigned conditionally)"
        net.Netlist.name
  end

and emit_assign ctx frame ~loc target_net item =
  match item with
  | Istar _ -> Netlist.mark_starred ctx.nl ~scope:frame.self target_net
  | _ ->
      let src = Option.get (src_of_item item) in
      let conditional = frame.guard <> None in
      check_assign_target ctx frame ~loc ~conditional target_net;
      (* x := y with both of type multiplex is illegal (section 4.1) *)
      (if not conditional then
         match (src, (Netlist.net ctx.nl target_net).Netlist.kind) with
         | Netlist.Snet s, Etype.KMux
           when (Netlist.net ctx.nl s).Netlist.kind = Etype.KMux ->
             Diag.Bag.error ctx.bag Diag.Type_error loc
               "unconditional ':=' between two multiplex signals — use '=='"
         | _ -> ());
      Netlist.mark_read_src ctx.nl ~scope:frame.self src;
      ignore
        (Netlist.add_driver ctx.nl ~scope:frame.self ~target:target_net ~guard:frame.guard
           ~source:src ~loc)

and elab_assign ctx frame lhs rhs loc =
  match lhs with
  | Ast.Star _ ->
      (* "* := x.b": the signal stays available; just record the use *)
      let items = eval_expr ctx frame rhs in
      List.iter
        (fun it -> Option.iter (Netlist.mark_read_src ctx.nl ~scope:frame.self) (src_of_item it))
        items
  | Ast.Sig _ ->
      let arms = resolve_ref ctx frame lhs in
      let items = eval_expr ctx frame rhs in
      List.iter
        (fun (g, sv) ->
          let nets = sig_nets ctx ~loc sv in
          let expanded = expand_stars items (List.length nets) loc in
          let saved = frame.guard in
          let guard =
            match g with
            | None -> saved
            | Some g -> Some (and_src ctx frame ~loc saved g)
          in
          let frame = { frame with guard } in
          List.iter2 (fun n it -> emit_assign ctx frame ~loc n it) nets expanded)
        arms

and elab_alias ctx frame lhs rhs loc =
  if frame.guard <> None then
    Diag.Bag.error ctx.bag Diag.Assign_error loc
      "aliasing '==' must not occur within a conditional statement";
  match lhs with
  | Ast.Star _ ->
      let items = eval_expr ctx frame rhs in
      List.iter
        (fun it -> Option.iter (Netlist.mark_read_src ctx.nl ~scope:frame.self) (src_of_item it))
        items
  | Ast.Sig _ -> (
      let arms = resolve_ref ctx frame lhs in
      match arms with
      | [ (None, sv) ] -> (
          let lnets = sig_nets ctx ~loc sv in
          match rhs with
          | Ast.Estar (_, _) ->
              List.iter (Netlist.mark_starred ctx.nl ~scope:frame.self) lnets
          | _ ->
              let items = eval_expr ctx frame rhs in
              let expanded = expand_stars items (List.length lnets) loc in
              List.iter2
                (fun ln it ->
                  match it with
                  | Istar _ -> Netlist.mark_starred ctx.nl ~scope:frame.self ln
                  | Iconst _ ->
                      Diag.Bag.error ctx.bag Diag.Assign_error loc
                        "'==' requires a signal on the right-hand side"
                  | Inet rn -> alias_pair ctx frame ~loc ln rn)
                lnets expanded)
      | _ ->
          Diag.Bag.error ctx.bag Diag.Assign_error loc
            "aliasing through a NUM selector is not allowed")

and alias_pair ctx frame ~loc a b =
  let na = Netlist.net ctx.nl a and nb = Netlist.net ctx.nl b in
  let exception1 (n : Netlist.net) =
    match n.Netlist.pin with
    | Some (iid, Etype.Out) -> iid = frame.self
    | Some (iid, Etype.In) -> iid <> frame.self
    | _ -> false
  in
  (match (na.Netlist.kind, nb.Netlist.kind) with
  | Etype.KMux, Etype.KMux -> ()
  | Etype.KBool, Etype.KBool ->
      Diag.Bag.error ctx.bag Diag.Type_error loc
        "'==' between two boolean signals is illegal (type rules (2)): %s == %s"
        na.Netlist.name nb.Netlist.name
  | Etype.KBool, Etype.KMux when not (exception1 na) ->
      Diag.Bag.error ctx.bag Diag.Type_error loc
        "'==' with boolean '%s' requires it to be a formal OUT parameter \
         or an IN parameter of an instantiated component"
        na.Netlist.name
  | Etype.KMux, Etype.KBool when not (exception1 nb) ->
      Diag.Bag.error ctx.bag Diag.Type_error loc
        "'==' with boolean '%s' requires it to be a formal OUT parameter \
         or an IN parameter of an instantiated component"
        nb.Netlist.name
  | _ -> ());
  Netlist.mark_read ctx.nl ~scope:frame.self a;
  Netlist.mark_read ctx.nl ~scope:frame.self b;
  Netlist.union ctx.nl ~scope:frame.self a b

(* ------------------------------------------------------------------ *)
(* Connection statements                                                *)
(* ------------------------------------------------------------------ *)

and elab_connect ctx frame sref args loc =
  let arms = resolve_ref ctx frame sref in
  let sv =
    match arms with
    | [ (None, sv) ] -> sv
    | _ -> abort loc "connection through a NUM selector is not allowed"
  in
  (* the callee: a single instance or an array of equal instances *)
  let instances =
    let rec gather sv acc =
      match sv with
      | Vinst slot -> slot :: acc
      | Varr (_, elems) -> Array.fold_right (fun e acc -> gather e acc) elems acc
      | Vvirt { virt_repl = Some sv; _ } -> gather sv acc
      | _ ->
          abort loc
            "connection statement target must be an instantiated component \
             (or an array of them)"
    in
    gather sv []
  in
  if instances = [] then abort loc "empty instance array in connection";
  let forced = List.map (force_slot ctx ~loc) instances in
  let insts =
    List.map (fun f -> Netlist.find_instance ctx.nl f.f_iid) forced
  in
  List.iter
    (fun (i : Netlist.instance) ->
      if i.Netlist.connected then
        Diag.Bag.error ctx.bag Diag.Assign_error loc
          "at most one connection statement is allowed for '%s'" i.Netlist.ipath
      else i.Netlist.connected <- true)
    insts;
  (* combined port columns: for q equal instances, parameter i carries q
     times as many basic signals (section 4.3) *)
  let first = List.hd insts in
  let columns =
    List.map
      (fun (pname, pmode, _) ->
        let nets =
          List.concat_map
            (fun (i : Netlist.instance) ->
              match
                List.find_opt (fun (n, _, _) -> n = pname) i.Netlist.iports
              with
              | Some (_, _, nets) -> nets
              | None -> abort loc "instance port mismatch for '%s'" pname)
            insts
        in
        (pname, pmode, nets))
      first.Netlist.iports
  in
  if List.length args <> List.length columns then
    abort loc "connection to '%s' needs %d actual parameter(s), got %d"
      first.Netlist.ipath (List.length columns) (List.length args);
  List.iter2
    (fun (pname, pmode, nets) arg -> connect_param ctx frame ~loc pname pmode nets arg)
    columns args

and connect_param ctx frame ~loc pname pmode nets arg =
  let w = List.length nets in
  match pmode with
  | Etype.In ->
      (* ai := xi *)
      let items = expand_stars (eval_expr ctx frame arg) w loc in
      List.iter2
        (fun n it ->
          match it with
          | Istar _ -> Netlist.mark_starred ctx.nl ~scope:frame.self n
          | _ ->
              let src = Option.get (src_of_item it) in
              Netlist.mark_read_src ctx.nl ~scope:frame.self src;
              (* a conditional connection is a conditional assignment to
                 the IN pin — legal via exception 1 *)
              ignore
                (Netlist.add_driver ctx.nl ~scope:frame.self ~target:n ~guard:frame.guard
                   ~source:src ~loc))
        nets items
  | Etype.Out ->
      (* xi := ai ; the actual must be a signal expression *)
      let items = expand_stars (eval_expr ctx frame arg) w loc in
      List.iter2
        (fun n it ->
          match it with
          | Istar _ -> Netlist.mark_starred ctx.nl ~scope:frame.self n
          | Iconst _ ->
              Diag.Bag.error ctx.bag Diag.Assign_error loc
                "actual for OUT parameter '%s' must be a signal" pname
          | Inet target ->
              Netlist.mark_read ctx.nl ~scope:frame.self n;
              check_assign_target ctx frame ~loc
                ~conditional:(frame.guard <> None) target;
              ignore
                (Netlist.add_driver ctx.nl ~scope:frame.self ~target ~guard:frame.guard
                   ~source:(Netlist.Snet n) ~loc))
        nets items
  | Etype.Inout ->
      (* ai == xi ; aliasing cannot be done conditionally *)
      if frame.guard <> None then
        Diag.Bag.error ctx.bag Diag.Assign_error loc
          "connection to INOUT parameter '%s' must not occur within an IF"
          pname;
      let items = expand_stars (eval_expr ctx frame arg) w loc in
      List.iter2
        (fun n it ->
          match it with
          | Istar _ -> Netlist.mark_starred ctx.nl ~scope:frame.self n
          | Iconst _ ->
              Diag.Bag.error ctx.bag Diag.Assign_error loc
                "actual for INOUT parameter '%s' must be a signal" pname
          | Inet other -> alias_pair ctx frame ~loc n other)
        nets items

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

and elab_stmts ctx frame stmts = List.iter (elab_stmt ctx frame) stmts

and elab_stmt ctx frame (s : Ast.stmt) =
  match s with
  | Ast.Sassign (lhs, rhs, loc) -> elab_assign ctx frame lhs rhs loc
  | Ast.Salias (lhs, rhs, loc) -> elab_alias ctx frame lhs rhs loc
  | Ast.Sconnect (sref, args, loc) -> elab_connect ctx frame sref args loc
  | Ast.Sfor (h, sequentially, body, loc) ->
      let stmts_per_iter = iterate_for frame.env h in
      if sequentially then
        elab_ordered ctx frame ~loc
          (List.map
             (fun env () -> elab_stmts ctx { frame with env } body)
             stmts_per_iter)
      else
        List.iter (fun env -> elab_stmts ctx { frame with env } body) stmts_per_iter
  | Ast.Swhen (arms, otherwise, _) ->
      let rec pick = function
        | [] -> elab_stmts ctx frame otherwise
        | (cond, body) :: rest ->
            if eval_bool frame.env cond then elab_stmts ctx frame body
            else pick rest
      in
      pick arms
  | Ast.Sif (arms, else_, loc) -> elab_if ctx frame arms else_ loc
  | Ast.Sresult (e, loc) -> (
      match frame.result with
      | None ->
          Diag.Bag.error ctx.bag Diag.Type_error loc
            "RESULT outside of a function component type"
      | Some nets ->
          let items = expand_stars (eval_expr ctx frame e) (List.length nets) loc in
          List.iter2 (fun n it -> emit_assign ctx frame ~loc n it) nets items)
  | Ast.Sparallel (body, _) -> elab_stmts ctx frame body
  | Ast.Ssequential (body, loc) ->
      elab_ordered ctx frame ~loc
        (List.map (fun s () -> elab_stmt ctx frame s) body)
  | Ast.Swith (sref, body, loc) -> (
      let arms = resolve_ref ctx frame sref in
      match arms with
      | [ (None, sv) ] -> (
          match deref ctx ~loc sv with
          | Vrec _ as sv ->
              elab_stmts ctx { frame with withs = sv :: frame.withs } body
          | Vbit _ | Varr _ | Vinst _ | Vvirt _ ->
              abort loc "WITH requires a component or record signal")
      | _ -> abort loc "WITH through a NUM selector is not allowed")

and iterate_for env (h : Ast.for_header) =
  let from_ = eval_int env h.Ast.ffrom and to_ = eval_int env h.Ast.fto in
  let indices =
    match h.Ast.fdir with
    | Ast.To -> if to_ < from_ then [] else List.init (to_ - from_ + 1) (fun i -> from_ + i)
    | Ast.Downto ->
        if from_ < to_ then [] else List.init (from_ - to_ + 1) (fun i -> from_ - i)
  in
  List.map
    (fun i -> SMap.add h.Ast.fvar.Ast.id (Bconst (Cval.Vint i)) env)
    indices

(* elaborate a list of actions recording SEQUENTIAL ordering
   constraints between their write sets (section 4.5) *)
and elab_ordered ctx _frame ~loc actions =
  let write_sets =
    List.map
      (fun act ->
        let d0, g0 = Netlist.counts ctx.nl in
        act ();
        Netlist.writes_since ctx.nl ~drivers:d0 ~gates:g0)
      actions
  in
  let rec pairs = function
    | [] | [ _ ] -> ()
    | before :: rest ->
        List.iter
          (fun after ->
            if before <> [] && after <> [] then
              Netlist.add_order_constraint ctx.nl ~loc ~before ~after)
          rest;
        pairs rest
  in
  pairs write_sets

and elab_if ctx frame arms else_ loc =
  (* rewrite IF/ELSIF/ELSE into single-condition IFs (section 8) using a
     "no arm taken yet" accumulator *)
  let cond_src c =
    match eval_expr ctx frame c with
    | [ it ] -> (
        match src_of_item it with
        | Some s -> s
        | None -> abort (Ast.expr_loc c) "'*' is not a condition")
    | items ->
        abort (Ast.expr_loc c) "IF condition must be a single basic signal \
                                (found %d)" (List.length items)
  in
  let not_taken = ref None in
  List.iter
    (fun (c, body) ->
      let cs = cond_src c in
      Netlist.mark_read_src ctx.nl ~scope:frame.self cs;
      let g = and_src ctx frame ~loc !not_taken cs in
      let guard = Some (and_src ctx frame ~loc frame.guard g) in
      elab_stmts ctx { frame with guard } body;
      not_taken :=
        Some (and_src ctx frame ~loc !not_taken (not_src ctx frame ~loc cs)))
    arms;
  if else_ <> [] then begin
    let g = Option.value ~default:(Netlist.Sconst Logic.One) !not_taken in
    let guard = Some (and_src ctx frame ~loc frame.guard g) in
    elab_stmts ctx { frame with guard } else_
  end

(* ------------------------------------------------------------------ *)
(* Layout                                                               *)
(* ------------------------------------------------------------------ *)

(* phase A: execute the replacement statements (section 6.4) so that the
   statement part can use the replaced signals *)
and layout_replacements ctx frame stmts =
  List.iter
    (fun (ls : Ast.layout_stmt) ->
      match ls with
      | Ast.Lreplace (_, sref, ty, loc) -> (
          let arms = resolve_ref ctx frame sref in
          match arms with
          | [ (None, Vvirt v) ] ->
              if v.virt_repl <> None then
                Diag.Bag.error ctx.bag Diag.Layout_error loc
                  "virtual signal '%s' replaced more than once" v.virt_path
              else begin
                let rty = resolve_ty ctx frame.env ty in
                let sv =
                  build_sigval ctx ~pin:None ~mode:Etype.Inout ~path:v.virt_path
                    ~loc rty
                in
                v.virt_repl <- Some sv;
                v.virt_loc <- loc
              end
          | _ ->
              Diag.Bag.error ctx.bag Diag.Layout_error loc
                "replacement target must be a virtual signal")
      | Ast.Lorder (_, body, _) -> layout_replacements ctx frame body
      | Ast.Lfor (h, body, _) ->
          List.iter
            (fun env -> layout_replacements ctx { frame with env } body)
            (iterate_for frame.env h)
      | Ast.Lwhen (arms, otherwise, _) ->
          let rec pick = function
            | [] -> layout_replacements ctx frame otherwise
            | (cond, body) :: rest ->
                if eval_bool frame.env cond then layout_replacements ctx frame body
                else pick rest
          in
          pick arms
      | Ast.Lwith (sref, body, loc) -> (
          match resolve_ref ctx frame sref with
          | [ (None, sv) ] ->
              let sv = deref ctx ~loc sv in
              layout_replacements ctx { frame with withs = sv :: frame.withs } body
          | _ -> ())
      | Ast.Lcell _ | Ast.Lboundary _ -> ())
    stmts

(* phase B: build the placement tree over already-forced instances *)
and elab_layout ctx frame stmts : Layout_ir.t =
  List.concat_map
    (fun (ls : Ast.layout_stmt) ->
      match ls with
      | Ast.Lcell (orient, sref, loc) | Ast.Lreplace (orient, sref, _, loc) ->
          let o =
            Option.map
              (fun (i : Ast.ident) ->
                match Layout_ir.orientation_of_string i.Ast.id with
                | Some o -> o
                | None -> abort i.Ast.id_loc "unknown orientation '%s'" i.Ast.id)
              orient
          in
          layout_cells ctx frame ~loc ~orient:o sref
      | Ast.Lorder (dir, body, loc) -> (
          match Layout_ir.direction_of_string dir.Ast.id with
          | Some d -> [ Layout_ir.Order (d, elab_layout ctx frame body) ]
          | None -> abort loc "unknown direction '%s'" dir.Ast.id)
      | Ast.Lfor (h, body, _) ->
          List.concat_map
            (fun env -> elab_layout ctx { frame with env } body)
            (iterate_for frame.env h)
      | Ast.Lboundary (side, refs, loc) ->
          let side =
            match side with
            | Ast.Side_top -> Layout_ir.Top
            | Ast.Side_right -> Layout_ir.Right
            | Ast.Side_bottom -> Layout_ir.Bottom
            | Ast.Side_left -> Layout_ir.Left
          in
          let pins =
            List.filter_map
              (fun r ->
                match r with
                | Ast.Star _ -> None
                | Ast.Sig (id, _) -> (
                    match resolve_ref ctx frame r with
                    | [ (None, sv) ] ->
                        Some (id.Ast.id, sig_nets ctx ~loc sv)
                    | _ -> None
                    | exception Abort (l, _) ->
                        Diag.Bag.error ctx.bag Diag.Layout_error l
                          "boundary pin '%s' is not a signal of this \
                           component"
                          id.Ast.id;
                        None))
              refs
          in
          [ Layout_ir.Boundary (side, pins) ]
      | Ast.Lwhen (arms, otherwise, _) ->
          let rec pick = function
            | [] -> elab_layout ctx frame otherwise
            | (cond, body) :: rest ->
                if eval_bool frame.env cond then elab_layout ctx frame body
                else pick rest
          in
          pick arms
      | Ast.Lwith (sref, body, loc) -> (
          match resolve_ref ctx frame sref with
          | [ (None, sv) ] ->
              let sv = deref ctx ~loc sv in
              elab_layout ctx { frame with withs = sv :: frame.withs } body
          | _ -> []))
    stmts

(* a layout cell: instance references; unforced slots generate nothing
   (hardware that was never used has no layout) *)
and layout_cells ctx frame ~loc ~orient sref =
  match resolve_ref ctx frame sref with
  | exception Abort _ -> []
  | arms ->
      List.concat_map
        (fun (_, sv) ->
          let rec cells sv =
            match sv with
            | Vinst slot -> (
                match slot.slot_state with
                | Sforced f -> [ Layout_ir.Cell (orient, f.f_iid) ]
                | Sthunk _ | Sforcing -> [])
            | Vvirt { virt_repl = Some sv; _ } -> cells sv
            | Varr (_, elems) ->
                Array.to_list elems |> List.concat_map cells
            | _ ->
                ignore loc;
                []
          in
          cells sv)
        arms

(* ------------------------------------------------------------------ *)
(* Whole programs                                                       *)
(* ------------------------------------------------------------------ *)

type design = {
  netlist : Netlist.t;
  tops : (string * sigval) list;
  layouts : (int, Layout_ir.t) Hashtbl.t;
  locals : (string, sigval) Hashtbl.t;
  clk_net : int;
  rset_net : int;
  diags : Diag.Bag.t;
}

let program ?(bag = Diag.Bag.create ()) ?(eager = false) (prog : Ast.program) =
  let nl = Netlist.create () in
  let clk =
    Netlist.fresh_net nl ~name:"CLK" ~kind:Etype.KBool ~loc:Loc.dummy ()
  in
  let rset =
    Netlist.fresh_net nl ~name:"RSET" ~kind:Etype.KBool ~loc:Loc.dummy ()
  in
  let ctx =
    {
      nl;
      bag;
      layouts = Hashtbl.create 16;
      locals = Hashtbl.create 64;
      clk;
      rset;
      eager;
      depth = 0;
      call_counter = 0;
    }
  in
  let tops = ref [] in
  (try
     let env = ref SMap.empty in
     List.iter
       (fun d ->
         match d with
         | Ast.Dsignal entries ->
             List.iter
               (fun (ids, ty) ->
                 let rty = resolve_ty ctx !env ty in
                 List.iter
                   (fun (id : Ast.ident) ->
                     let sv =
                       build_sigval ctx ~pin:None ~mode:Etype.Inout
                         ~path:id.Ast.id ~loc:id.Ast.id_loc rty
                     in
                     (* top-level instances are the design roots: force *)
                     let rec force_all sv =
                       match sv with
                       | Vinst slot ->
                           ignore (force_slot ctx ~loc:id.Ast.id_loc slot)
                       | Varr (_, elems) -> Array.iter force_all elems
                       | Vrec fields ->
                           List.iter (fun (_, _, f) -> force_all f) fields
                       | Vbit _ | Vvirt _ -> ()
                     in
                     force_all sv;
                     env := SMap.add id.Ast.id (Bsignal sv) !env;
                     tops := (id.Ast.id, sv) :: !tops)
                   ids)
               entries
         | d -> env := elab_decl ctx !env ~path:"" d)
       prog
   with
  | Abort (loc, msg) -> Diag.Bag.error bag Diag.Type_error loc "%s" msg
  | Const_eval.Error (loc, msg) ->
      Diag.Bag.error bag Diag.Type_error loc "%s" msg);
  {
    netlist = nl;
    tops = List.rev !tops;
    layouts = ctx.layouts;
    locals = ctx.locals;
    clk_net = clk;
    rset_net = rset;
    diags = bag;
  }

(* ------------------------------------------------------------------ *)
(* Path resolution for testbenches                                      *)
(* ------------------------------------------------------------------ *)

(* Resolve "top.port[2]" to its nets without touching read counters.
   Only static selectors are allowed.  Fields resolve through instance
   ports; where that fails, the hierarchical locals table covers signals
   declared inside component bodies (e.g. "bj.score"). *)
let resolve_path design (path : string) : (int list, string) result =
  let sref, bag = Zeus_lang.Parser.signal_reference path in
  match sref with
  | None -> Error (Fmt.str "bad path %S: %a" path Diag.Bag.pp bag)
  | Some (Ast.Star _) -> Error "'*' is not a path"
  | Some (Ast.Sig (id, sels)) -> (
      let fake_lookup : Const_eval.lookup = fun _ -> None in
      let rec forced_view sv =
        match sv with
        | Vinst { slot_state = Sforced f; _ } -> f.f_ports
        | Vvirt { virt_repl = Some sv; _ } -> forced_view sv
        | sv -> sv
      in
      let rec apply cur sv sels =
        match sels with
        | [] -> Ok sv
        | Ast.Sel_index e :: rest -> (
            let i = Const_eval.eval_int fake_lookup e in
            let cur = Fmt.str "%s[%d]" cur i in
            match forced_view sv with
            | Varr (lo, elems) when i >= lo && i < lo + Array.length elems ->
                apply cur elems.(i - lo) rest
            | _ -> Error (Fmt.str "bad index [%d] in %S" i path))
        | Ast.Sel_range (e1, e2) :: rest -> (
            let a = Const_eval.eval_int fake_lookup e1
            and b = Const_eval.eval_int fake_lookup e2 in
            match forced_view sv with
            | Varr (lo, elems)
              when a >= lo && b < lo + Array.length elems && a <= b ->
                apply cur (Varr (a, Array.sub elems (a - lo) (b - a + 1))) rest
            | _ -> Error (Fmt.str "bad range in %S" path))
        | Ast.Sel_field f :: rest -> (
            let cur' = cur ^ "." ^ f.Ast.id in
            match forced_view sv with
            | Vrec fields -> (
                match List.find_opt (fun (n, _, _) -> n = f.Ast.id) fields with
                | Some (_, _, sub) -> apply cur' sub rest
                | None -> (
                    (* a local signal declared inside this instance *)
                    match Hashtbl.find_opt design.locals cur' with
                    | Some sub -> apply cur' sub rest
                    | None ->
                        Error (Fmt.str "no field '%s' in %S" f.Ast.id path)))
            | Varr (lo, elems) -> (
                (* distribute the field over the array *)
                let subs =
                  Array.map
                    (fun e ->
                      match apply cur e [ Ast.Sel_field f ] with
                      | Ok sv -> Some sv
                      | Error _ -> None)
                    elems
                in
                if Array.for_all Option.is_some subs then
                  apply cur' (Varr (lo, Array.map Option.get subs)) rest
                else Error (Fmt.str "no field '%s' in %S" f.Ast.id path))
            | _ -> (
                match Hashtbl.find_opt design.locals cur' with
                | Some sub -> apply cur' sub rest
                | None -> Error (Fmt.str "no field '%s' in %S" f.Ast.id path)))
        | (Ast.Sel_num _ | Ast.Sel_field_range _) :: _ ->
            Error "dynamic selectors are not allowed in paths"
      in
      let start =
        match List.assoc_opt id.Ast.id design.tops with
        | Some sv -> Ok sv
        | None ->
            if id.Ast.id = "CLK" then Ok (Vbit design.clk_net)
            else if id.Ast.id = "RSET" then Ok (Vbit design.rset_net)
            else Error (Fmt.str "no top-level signal '%s'" id.Ast.id)
      in
      match start with
      | Error e -> Error e
      | Ok sv -> (
          match apply id.Ast.id sv sels with
          | Ok sv ->
              let rec flat sv acc =
                match sv with
                | Vbit id -> id :: acc
                | Varr (_, elems) ->
                    Array.fold_left (fun acc e -> flat e acc) acc elems
                | Vrec fields ->
                    List.fold_left (fun acc (_, _, f) -> flat f acc) acc fields
                | Vinst { slot_state = Sforced f; _ } -> flat f.f_ports acc
                | Vinst _ -> acc
                | Vvirt { virt_repl = Some sv; _ } -> flat sv acc
                | Vvirt _ -> acc
              in
              Ok (List.rev (flat sv []))
          | Error e -> Error e
          | exception Const_eval.Error (_, msg) -> Error msg))
