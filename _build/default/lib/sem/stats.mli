(** Structural statistics over an elaborated netlist.  [depth] — the
    longest combinational chain between registers/inputs and any net —
    is the quantity that separates the firing evaluator from the
    sweep-to-fixpoint baselines in experiment E8. *)

type t = {
  nets : int;
  gates : int;
  drivers : int;
  regs : int;
  instances : int;
  gate_histogram : (Netlist.gate_op * int) list; (** sorted, descending *)
  depth : int; (** longest combinational path, in nodes *)
  max_fanout : int;
  alias_classes : int; (** '==' classes with more than one member *)
  dead_nets : int;
      (** driven nets whose value can never reach an observable point (a
          register input or an OUT pin of a root instance) *)
}

val of_netlist : Netlist.t -> t
val pp : t Fmt.t
