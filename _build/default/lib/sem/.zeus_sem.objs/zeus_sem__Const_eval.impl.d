lib/sem/const_eval.ml: Ast Cval Fmt List Loc Logic Zeus_base Zeus_lang
