lib/sem/layout_ir.ml:
