lib/sem/const_eval.mli: Ast Cval Loc Zeus_base Zeus_lang
