lib/sem/netlist.ml: Array Etype Fmt Hashtbl List Loc Logic Option Zeus_base
