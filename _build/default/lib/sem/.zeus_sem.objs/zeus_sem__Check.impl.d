lib/sem/check.ml: Array Diag Elaborate Etype Hashtbl List Loc Netlist Option String Zeus_base
