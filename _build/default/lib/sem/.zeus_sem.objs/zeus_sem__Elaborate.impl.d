lib/sem/elaborate.ml: Array Ast Const_eval Cval Diag Etype Fmt Hashtbl Layout_ir List Loc Logic Map Netlist Option Printf String Zeus_base Zeus_lang
