lib/sem/cval.mli: Fmt Logic Zeus_base
