lib/sem/stats.mli: Fmt Netlist
