lib/sem/cval.ml: Fmt List Logic Zeus_base
