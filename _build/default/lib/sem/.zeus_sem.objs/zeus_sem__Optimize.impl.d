lib/sem/optimize.ml: Array Check Elaborate Etype Fmt List Logic Netlist Option String Zeus_base
