lib/sem/stats.ml: Array Check Etype Fmt Hashtbl List Netlist Option String
