lib/sem/elaborate.mli: Ast Cval Diag Etype Hashtbl Layout_ir Loc Map Netlist Zeus_base Zeus_lang
