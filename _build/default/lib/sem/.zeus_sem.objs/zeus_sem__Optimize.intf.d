lib/sem/optimize.mli: Elaborate Fmt
