lib/sem/check.mli: Elaborate Netlist
