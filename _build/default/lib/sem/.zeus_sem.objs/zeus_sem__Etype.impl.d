lib/sem/etype.ml: Fmt List Printf Zeus_lang
