lib/sem/netlist.mli: Etype Loc Logic Zeus_base
