(* Elaborated (fully evaluated) signal types.

   After constant evaluation a Zeus type is a nested structure of arrays
   and records over the two basic types.  Component types *with a body*
   never appear here — they elaborate to instances; their interface is the
   record of their parameters. *)

type kind =
  | KBool
  | KMux

type mode =
  | In
  | Out
  | Inout

type t =
  | Basic of kind
  | Array of int * int * t (* lo, hi (inclusive), element *)
  | Record of field list

and field = {
  fname : string;
  fmode : mode;
  fty : t;
}

let bool_t = Basic KBool

let mux_t = Basic KMux

let kind_to_string = function
  | KBool -> "boolean"
  | KMux -> "multiplex"

let mode_to_string = function
  | In -> "IN"
  | Out -> "OUT"
  | Inout -> "INOUT"

let mode_of_ast = function
  | Zeus_lang.Ast.Min -> In
  | Zeus_lang.Ast.Mout -> Out
  | Zeus_lang.Ast.Minout -> Inout

(* Number of basic substructures — the "width" used by every structural
   rule of section 4.7. *)
let rec width = function
  | Basic _ -> 1
  | Array (lo, hi, elem) ->
      let n = hi - lo + 1 in
      if n <= 0 then 0 else n * width elem
  | Record fields ->
      List.fold_left (fun acc f -> acc + width f.fty) 0 fields

let rec pp ppf = function
  | Basic k -> Fmt.string ppf (kind_to_string k)
  | Array (lo, hi, elem) -> Fmt.pf ppf "ARRAY [%d..%d] OF %a" lo hi pp elem
  | Record fields ->
      Fmt.pf ppf "COMPONENT (%a)"
        Fmt.(
          list ~sep:(any "; ") (fun ppf f ->
              pf ppf "%s %s: %a" (mode_to_string f.fmode) f.fname pp f.fty))
        fields

let to_string t = Fmt.str "%a" pp t

(* Substructure modes are inherited (section 3.2): an IN field of an
   INOUT record is IN; an explicit field mode inside an IN record must
   not contradict it. *)
let combine_mode outer inner =
  match (outer, inner) with
  | Inout, m -> Some m
  | m, Inout -> Some m
  | In, In -> Some In
  | Out, Out -> Some Out
  | In, Out | Out, In -> None

(* Enumerate the basic leaves in natural order: (path, inherited mode,
   kind).  Paths are suffixes like "[2].in" appended to a prefix. *)
let flatten ?(prefix = "") ?(mode = Inout) t =
  (* [acc] is in reverse order; each leaf is prepended as it is visited *)
  let rec go prefix mode t acc =
    match t with
    | Basic k -> (prefix, mode, k) :: acc
    | Array (lo, hi, elem) ->
        let acc = ref acc in
        for i = lo to hi do
          acc := go (Printf.sprintf "%s[%d]" prefix i) mode elem !acc
        done;
        !acc
    | Record fields ->
        List.fold_left
          (fun acc f ->
            let m =
              match combine_mode mode f.fmode with
              | Some m -> m
              | None -> f.fmode (* contradiction reported during elaboration *)
            in
            go (prefix ^ "." ^ f.fname) m f.fty acc)
          acc fields
  in
  List.rev (go prefix mode t [])

let equal_shape a b =
  let rec eq a b =
    match (a, b) with
    | Basic x, Basic y -> x = y
    | Array (lo1, hi1, e1), Array (lo2, hi2, e2) ->
        hi1 - lo1 = hi2 - lo2 && eq e1 e2
    | Record f1, Record f2 ->
        List.length f1 = List.length f2
        && List.for_all2 (fun a b -> a.fname = b.fname && eq a.fty b.fty) f1 f2
    | _ -> false
  in
  eq a b
