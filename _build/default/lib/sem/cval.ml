(* Constant values: numeric constants and signal constants (section 3.1).

   Signal constants are nested tuples over the four logic values; their
   shape is structural only — a tuple is compatible with any signal of the
   same basic-substructure count. *)

open Zeus_base

type sctree =
  | Leaf of Logic.t
  | Tuple of sctree list

type t =
  | Vint of int
  | Vsig of sctree

let rec sctree_width = function
  | Leaf _ -> 1
  | Tuple ts -> List.fold_left (fun acc t -> acc + sctree_width t) 0 ts

let rec sctree_leaves = function
  | Leaf v -> [ v ]
  | Tuple ts -> List.concat_map sctree_leaves ts

let rec pp_sctree ppf = function
  | Leaf v -> Logic.pp ppf v
  | Tuple ts -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ",") pp_sctree) ts

let pp ppf = function
  | Vint n -> Fmt.int ppf n
  | Vsig t -> pp_sctree ppf t

let to_string v = Fmt.str "%a" pp v

(* BIN(a,b): the numeric constant [a] as ARRAY[1..b] OF boolean.
   Index 1 is the most significant bit, so BIN(10,5) = (0,1,0,1,0) reads
   like the binary numeral.  NUM below uses the same convention. *)
let bin a b =
  if b < 0 then invalid_arg "Cval.bin: negative width";
  let bits =
    List.init b (fun i ->
        let shift = b - 1 - i in
        Leaf (Logic.of_bool ((a lsr shift) land 1 = 1)))
  in
  Tuple bits

(* NUM over a list of bit values (MSB first); [None] when any bit is not
   a definite 0/1. *)
let num bits =
  let rec go acc = function
    | [] -> Some acc
    | b :: rest -> (
        match Logic.to_bool b with
        | Some bit -> go ((acc * 2) + if bit then 1 else 0) rest
        | None -> None)
  in
  go 0 bits
