(* Elaborated layout information (section 6), recorded per instance during
   elaboration and consumed by the floorplan engine.

   All FOR/WHEN/WITH constructs of the layout language are already
   resolved; what remains is the placement tree over child instances. *)

type orientation =
  | Rotate90
  | Rotate180
  | Rotate270
  | Flip0 (* mirror about the horizontal axis *)
  | Flip45
  | Flip90 (* mirror about the vertical axis *)
  | Flip135

let orientation_of_string = function
  | "rotate90" -> Some Rotate90
  | "rotate180" -> Some Rotate180
  | "rotate270" -> Some Rotate270
  | "flip0" -> Some Flip0
  | "flip45" -> Some Flip45
  | "flip90" -> Some Flip90
  | "flip135" -> Some Flip135
  | _ -> None

let orientation_to_string = function
  | Rotate90 -> "rotate90"
  | Rotate180 -> "rotate180"
  | Rotate270 -> "rotate270"
  | Flip0 -> "flip0"
  | Flip45 -> "flip45"
  | Flip90 -> "flip90"
  | Flip135 -> "flip135"

type direction =
  | Top_to_bottom
  | Bottom_to_top
  | Left_to_right
  | Right_to_left
  | Topleft_to_bottomright
  | Bottomright_to_topleft
  | Topright_to_bottomleft
  | Bottomleft_to_topright

let direction_of_string = function
  | "toptobottom" -> Some Top_to_bottom
  | "bottomtotop" -> Some Bottom_to_top
  | "lefttoright" -> Some Left_to_right
  | "righttoleft" -> Some Right_to_left
  | "toplefttobottomright" -> Some Topleft_to_bottomright
  | "bottomrighttotopleft" -> Some Bottomright_to_topleft
  | "toprighttobottomleft" -> Some Topright_to_bottomleft
  | "bottomlefttotopright" -> Some Bottomleft_to_topright
  | _ -> None

let direction_to_string = function
  | Top_to_bottom -> "toptobottom"
  | Bottom_to_top -> "bottomtotop"
  | Left_to_right -> "lefttoright"
  | Right_to_left -> "righttoleft"
  | Topleft_to_bottomright -> "toplefttobottomright"
  | Bottomright_to_topleft -> "bottomrighttotopleft"
  | Topright_to_bottomleft -> "toprighttobottomleft"
  | Bottomleft_to_topright -> "bottomlefttotopright"

type side =
  | Top
  | Right
  | Bottom
  | Left

let side_to_string = function
  | Top -> "TOP"
  | Right -> "RIGHT"
  | Bottom -> "BOTTOM"
  | Left -> "LEFT"

(* The placement tree of one component instance. *)
type item =
  | Cell of orientation option * int (* child instance id *)
  | Order of direction * item list
  | Boundary of side * (string * int list) list (* pin name, its bit nets *)

type t = item list
