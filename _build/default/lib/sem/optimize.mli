(** Netlist optimization: conservative constant propagation plus
    dead-logic elimination.  The observable behaviour — register
    contents and the OUT/INOUT pins of root instances — is preserved
    exactly (a tested property); internal nets may simplify away. *)

type report = {
  gates_before : int;
  gates_after : int;
  drivers_before : int;
  drivers_after : int;
  constants_found : int;
}

val pp_report : report Fmt.t

(** Returns a design sharing nets/instances with the input but with
    simplified gates and drivers, plus the reduction report. *)
val run : Elaborate.design -> Elaborate.design * report
