(** Post-elaboration static checks (report sections 4.1, 4.5, 4.7, 8):

    - single-assignment discipline per alias class: at most one
      unconditional driver, never both conditional and unconditional
      assignments, no unconditional [:=] to an aliased boolean;
    - no combinational feedback — every cycle must pass through a REG;
    - the unused-port rule: once any port of an instance is used by its
      surrounding component, every other port must be used, assigned or
      closed with ['*'];
    - SEQUENTIAL ordering must be compatible with the dataflow partial
      order;
    - undriven-but-read nets are warned about (they read UNDEF). *)

(** Nets a testbench may drive: CLK, RSET and the IN/INOUT pins of the
    top-level instances. *)
val top_input_nets : Elaborate.design -> int list

(** Dependency edges between canonical nets ([adj.(src)] lists the nets
    whose value needs [src]); registers break cycles.  Exposed for the
    simulator baselines and tests. *)
val dependency_graph : Netlist.t -> int list array

(** Run all checks, recording diagnostics in [design.diags].  Returns
    [true] when no errors (warnings allowed). *)
val run : Elaborate.design -> bool
