(** Elaboration: Zeus AST to bit-level netlist (report sections 3-6).

    Component types are expanded with their constant parameters
    evaluated; instantiation is {e lazy} — a signal whose type is a
    component with a body only becomes hardware the first time a
    statement touches it ("this hardware is only generated if it is
    used", section 4.2), which is what terminates recursive types.
    Connection statements are translated to assignments per section 4.3,
    IF statements to guard nets per section 8, and the layout sub-language
    is recorded per instance as {!Layout_ir.t}. *)

open Zeus_base
open Zeus_lang

(** Raised internally and converted to diagnostics by {!program}. *)
exception Abort of Loc.t * string

module SMap : Map.S with type key = string

type binding =
  | Bconst of Cval.t
  | Btype of tydef
  | Bsignal of sigval

and tydef = {
  td_name : string;
  td_formals : string list;
  td_ast : Ast.ty;
  mutable td_env : env;
}

and env = binding SMap.t

(** An elaborated signal: a tree of nets mirroring the declared type.
    Instances stay unforced until used. *)
and sigval =
  | Vbit of int  (** a single net *)
  | Varr of int * sigval array  (** low bound and elements *)
  | Vrec of (string * Etype.mode * sigval) list
  | Vinst of inst_slot
  | Vvirt of virt_slot

and inst_slot = {
  slot_path : string;
  mutable slot_state : slot_state;
}

and slot_state =
  | Sthunk of (unit -> forced)
  | Sforcing
  | Sforced of forced

and forced = {
  f_ports : sigval;
  f_iid : int;
  f_result : int list;  (** RESULT nets of a function component *)
}

and virt_slot = {
  virt_path : string;
  mutable virt_repl : sigval option;
  mutable virt_loc : Loc.t;
}

(** The elaborated design. *)
type design = {
  netlist : Netlist.t;
  tops : (string * sigval) list;  (** top-level signal declarations *)
  layouts : (int, Layout_ir.t) Hashtbl.t;  (** instance id -> placement *)
  locals : (string, sigval) Hashtbl.t;
      (** hierarchical path -> locally declared signal, for testbenches *)
  clk_net : int;
  rset_net : int;
  diags : Diag.Bag.t;
}

(** Elaborate a parsed program.  Errors are recorded in the bag (and in
    [design.diags]).  [eager] instantiates every component signal at its
    declaration — an ablation switch that makes recursive designs
    diverge; see experiment E10. *)
val program : ?bag:Diag.Bag.t -> ?eager:bool -> Ast.program -> design

(** Resolve a hierarchical path such as ["adder.add[2].cout"] to its
    nets.  Ports resolve through instance interfaces; signals declared
    inside component bodies resolve through [design.locals].  Only
    static selectors are allowed. *)
val resolve_path : design -> string -> (int list, string) result
