(** Evaluation of Modula-2-style constant expressions and of signal
    constant expressions (report section 3.1).  Identifier lookup is
    delegated to the caller, so the elaborator can resolve FOR variables,
    type formals and declared constants with its own scoping. *)

open Zeus_base
open Zeus_lang

exception Error of Loc.t * string

type lookup = Ast.ident -> Cval.t option

(** Includes the predefined functions min, max and odd (section 7).
    @raise Error on undeclared names, division by zero, arity errors. *)
val eval_int : lookup -> Ast.const_expr -> int

(** WHEN conditions: non-zero is true. *)
val eval_bool : lookup -> Ast.const_expr -> bool

(** Signal constants: 0/1/UNDEF/NOINFL, named constants, BIN, tuples. *)
val eval_sig_const : lookup -> Ast.sig_const -> Cval.sctree

val eval_constant : lookup -> Ast.constant -> Cval.t
