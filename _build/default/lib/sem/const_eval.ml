(* Evaluation of Modula-2-style constant expressions (section 3.1) and of
   signal constant expressions.

   Lookup of identifiers is delegated to the caller through [lookup] so
   that the elaborator can resolve FOR variables, type formals and
   declared constants with its own scoping rules. *)

open Zeus_base
open Zeus_lang

exception Error of Loc.t * string

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (loc, msg))) fmt

type lookup = Ast.ident -> Cval.t option

(* The predefined functions for constant expressions (section 7):
   min, max, odd. *)
let predefined name args loc =
  match (name, args) with
  | "min", (_ :: _ as xs) -> Some (List.fold_left min max_int xs)
  | "max", (_ :: _ as xs) -> Some (List.fold_left max min_int xs)
  | "odd", [ x ] -> Some (if x land 1 = 1 then 1 else 0)
  | ("min" | "max" | "odd"), _ ->
      error loc "wrong number of arguments to %s" name
  | _ -> None

let rec eval_int (lookup : lookup) (e : Ast.const_expr) : int =
  match e with
  | Ast.Cnum (n, _) -> n
  | Ast.Cref (id, []) -> (
      match lookup id with
      | Some (Cval.Vint n) -> n
      | Some (Cval.Vsig _) ->
          error id.Ast.id_loc "'%s' is a signal constant, not a number"
            id.Ast.id
      | None -> (
          (* a predefined function used without arguments is a name error *)
          match predefined id.Ast.id [] id.Ast.id_loc with
          | Some _ | None ->
              error id.Ast.id_loc "undeclared constant '%s'" id.Ast.id))
  | Ast.Cref (id, args) -> (
      let vals = List.map (eval_int lookup) args in
      match predefined id.Ast.id vals id.Ast.id_loc with
      | Some v -> v
      | None -> error id.Ast.id_loc "unknown constant function '%s'" id.Ast.id)
  | Ast.Cbin (op, a, b) -> (
      let va = eval_int lookup a and vb = eval_int lookup b in
      match op with
      | Ast.Cadd -> va + vb
      | Ast.Csub -> va - vb
      | Ast.Cmul -> va * vb
      | Ast.Cdiv ->
          if vb = 0 then error (Ast.const_expr_loc e) "division by zero"
          else va / vb
      | Ast.Cmod ->
          if vb = 0 then error (Ast.const_expr_loc e) "modulo by zero"
          else va mod vb
      (* AND/OR combine the 0/1 truth values of relations *)
      | Ast.Cand -> if va <> 0 && vb <> 0 then 1 else 0
      | Ast.Cor -> if va <> 0 || vb <> 0 then 1 else 0)
  | Ast.Cun (op, a) -> (
      let va = eval_int lookup a in
      match op with
      | Ast.Cneg -> -va
      | Ast.Cpos -> va
      | Ast.Cnot -> if va = 0 then 1 else 0)
  | Ast.Crel (rel, a, b) ->
      let va = eval_int lookup a and vb = eval_int lookup b in
      let r =
        match rel with
        | Ast.Ceq -> va = vb
        | Ast.Cneq -> va <> vb
        | Ast.Clt -> va < vb
        | Ast.Cle -> va <= vb
        | Ast.Cgt -> va > vb
        | Ast.Cge -> va >= vb
      in
      if r then 1 else 0

(* WHEN conditions: non-zero is true. *)
let eval_bool lookup e = eval_int lookup e <> 0

let rec eval_sig_const (lookup : lookup) (sc : Ast.sig_const) : Cval.sctree =
  match sc with
  | Ast.Sc_value (0, _) -> Cval.Leaf Logic.Zero
  | Ast.Sc_value (1, _) -> Cval.Leaf Logic.One
  | Ast.Sc_value (n, loc) -> error loc "illegal signal value %d" n
  | Ast.Sc_ref id -> (
      match id.Ast.id with
      | "UNDEF" -> Cval.Leaf Logic.Undef
      | "NOINFL" -> Cval.Leaf Logic.Noinfl
      | _ -> (
          match lookup id with
          | Some (Cval.Vsig t) -> t
          | Some (Cval.Vint (0 | 1 as n)) ->
              Cval.Leaf (Logic.of_bool (n = 1))
          | Some (Cval.Vint n) ->
              error id.Ast.id_loc
                "numeric constant %d cannot be used as a signal value" n
          | None ->
              error id.Ast.id_loc "undeclared signal constant '%s'" id.Ast.id))
  | Ast.Sc_bin (a, b, loc) ->
      let va = eval_int lookup a and vb = eval_int lookup b in
      if vb <= 0 then error loc "BIN width must be positive, got %d" vb
      else Cval.bin va vb
  | Ast.Sc_tuple (elems, _) ->
      Cval.Tuple (List.map (eval_sig_const lookup) elems)

let eval_constant lookup = function
  | Ast.Knum e -> Cval.Vint (eval_int lookup e)
  | Ast.Ksig sc -> Cval.Vsig (eval_sig_const lookup sc)
