(** Constant values: numbers and signal constants (report section 3.1).
    Signal constants are nested tuples over the four logic values; shape
    is structural — compatibility is by basic-substructure count. *)

open Zeus_base

type sctree =
  | Leaf of Logic.t
  | Tuple of sctree list

type t =
  | Vint of int
  | Vsig of sctree

(** Number of basic leaves. *)
val sctree_width : sctree -> int

(** Leaves in natural (left-to-right) order. *)
val sctree_leaves : sctree -> Logic.t list

val pp_sctree : sctree Fmt.t
val pp : t Fmt.t
val to_string : t -> string

(** [bin a b] is BIN(a,b): the number [a] as [b] bits, index 1 most
    significant — BIN(10,5) reads (0,1,0,1,0) like the numeral. *)
val bin : int -> int -> sctree

(** [num bits] decodes an MSB-first bit list; [None] if any bit is not a
    definite 0/1 (the NUM standard function). *)
val num : Logic.t list -> int option
