(* Structural statistics over an elaborated netlist: gate histogram,
   combinational depth (the longest gate/driver chain between registers
   or inputs and any net), fanout distribution.  Used by `zeusc stats`
   and the E8 analysis (depth is what separates the firing evaluator
   from sweep-to-fixpoint baselines). *)

type t = {
  nets : int;
  gates : int;
  drivers : int;
  regs : int;
  instances : int;
  gate_histogram : (Netlist.gate_op * int) list;
  depth : int; (* longest combinational path, in nodes *)
  max_fanout : int;
  alias_classes : int; (* classes with more than one member *)
  dead_nets : int;
  (* driven nets whose value can never reach an observable point (a
     register input or an OUT pin of a root instance) *)
}

let gate_histogram nl =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (g : Netlist.gate) ->
      Hashtbl.replace tbl g.Netlist.op
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl g.Netlist.op)))
    (Netlist.gates nl);
  Hashtbl.fold (fun op n acc -> (op, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* longest path in the (acyclic) dependency graph, by memoized DFS *)
let depth nl =
  let adj = Check.dependency_graph nl in
  let n = Array.length adj in
  (* reverse edges: depth.(v) = 1 + max over predecessors *)
  let preds = Array.make n [] in
  Array.iteri (fun src dsts -> List.iter (fun d -> preds.(d) <- src :: preds.(d)) dsts) adj;
  let memo = Array.make n (-1) in
  let rec go v =
    if memo.(v) >= 0 then memo.(v)
    else begin
      memo.(v) <- 0 (* cycle guard: designs with check errors *);
      let d =
        List.fold_left (fun acc p -> max acc (1 + go p)) 0 preds.(v)
      in
      memo.(v) <- d;
      d
    end
  in
  let best = ref 0 in
  for v = 0 to n - 1 do
    best := max !best (go v)
  done;
  !best

let max_fanout nl =
  let count = Hashtbl.create 64 in
  let bump = function
    | Netlist.Snet id ->
        let id = Netlist.canonical nl id in
        Hashtbl.replace count id
          (1 + Option.value ~default:0 (Hashtbl.find_opt count id))
    | Netlist.Sconst _ -> ()
  in
  List.iter (fun (g : Netlist.gate) -> List.iter bump g.Netlist.inputs) (Netlist.gates nl);
  List.iter
    (fun (d : Netlist.driver) ->
      bump d.Netlist.source;
      Option.iter bump d.Netlist.guard)
    (Netlist.drivers nl);
  Hashtbl.fold (fun _ n acc -> max n acc) count 0

let alias_classes nl =
  let sizes = Hashtbl.create 64 in
  for id = 0 to Netlist.net_count nl - 1 do
    let c = Netlist.canonical nl id in
    Hashtbl.replace sizes c
      (1 + Option.value ~default:0 (Hashtbl.find_opt sizes c))
  done;
  Hashtbl.fold (fun _ n acc -> if n > 1 then acc + 1 else acc) sizes 0

(* nets from which no observable point (register input, OUT/INOUT pin
   of a root instance) is reachable *)
let dead_nets nl =
  let adj = Check.dependency_graph nl in
  let n = Array.length adj in
  let preds = Array.make n [] in
  Array.iteri
    (fun src dsts -> List.iter (fun d -> preds.(d) <- src :: preds.(d)) dsts)
    adj;
  let live = Array.make n false in
  let rec mark v =
    if not live.(v) then begin
      live.(v) <- true;
      List.iter mark preds.(v)
    end
  in
  (* observables: register inputs... *)
  List.iter (fun (r : Netlist.reg) -> mark (Netlist.canonical nl r.Netlist.rin))
    (Netlist.regs nl);
  (* ...and output pins of root instances *)
  List.iter
    (fun (i : Netlist.instance) ->
      if not (String.contains i.Netlist.ipath '.') then
        List.iter
          (fun (_, mode, nets) ->
            match mode with
            | Etype.Out | Etype.Inout ->
                List.iter (fun id -> mark (Netlist.canonical nl id)) nets
            | Etype.In -> ())
          i.Netlist.iports)
    (Netlist.instances nl);
  (* driven nets (drivers or gate outputs) that are not live *)
  let driven = Array.make n false in
  List.iter
    (fun (d : Netlist.driver) -> driven.(Netlist.canonical nl d.Netlist.target) <- true)
    (Netlist.drivers nl);
  List.iter
    (fun (g : Netlist.gate) -> driven.(Netlist.canonical nl g.Netlist.output) <- true)
    (Netlist.gates nl);
  let count = ref 0 in
  for v = 0 to n - 1 do
    if driven.(v) && not live.(v) then incr count
  done;
  !count

let of_netlist nl =
  {
    nets = Netlist.net_count nl;
    gates = List.length (Netlist.gates nl);
    drivers = List.length (Netlist.drivers nl);
    regs = List.length (Netlist.regs nl);
    instances = List.length (Netlist.instances nl);
    gate_histogram = gate_histogram nl;
    depth = depth nl;
    max_fanout = max_fanout nl;
    alias_classes = alias_classes nl;
    dead_nets = dead_nets nl;
  }

let pp ppf t =
  Fmt.pf ppf
    "nets=%d gates=%d drivers=%d regs=%d instances=%d depth=%d max_fanout=%d \
     alias_classes=%d dead_nets=%d@."
    t.nets t.gates t.drivers t.regs t.instances t.depth t.max_fanout
    t.alias_classes t.dead_nets;
  List.iter
    (fun (op, n) ->
      Fmt.pf ppf "  %-6s %d@." (Netlist.gate_op_to_string op) n)
    t.gate_histogram
