(** Source positions and spans for error reporting. *)

type pos = {
  line : int; (** 1-based line number *)
  col : int; (** 1-based column *)
  offset : int; (** 0-based byte offset *)
}

type t = {
  start : pos;
  stop : pos;
}

(** The position before the first character of a file. *)
val start_pos : pos

(** Placeholder for synthesized constructs with no source location. *)
val dummy : t

val is_dummy : t -> bool

val make : pos -> pos -> t

(** Smallest span covering both arguments. *)
val merge : t -> t -> t

(** Advance a position over one character (tracks newlines). *)
val advance : pos -> char -> pos

val pp_pos : pos Fmt.t
val pp : t Fmt.t
val to_string : t -> string
