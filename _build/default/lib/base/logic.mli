(** Four-valued logic of the Zeus report (sections 3.3, 4.7 and 8).

    Signals carry one of [Zero], [One], [Undef] (undefined) or [Noinfl]
    (no influence / high impedance).  Only multiplex signals may carry
    [Noinfl]; booleans see it as [Undef] through the implicit amplifier. *)

type t =
  | Zero
  | One
  | Undef
  | Noinfl

val equal : t -> t -> bool
val compare : t -> t -> int

val to_char : t -> char
val of_char : char -> t option
val to_string : t -> string
val pp : t Fmt.t

val of_bool : bool -> t

(** [to_bool v] is [Some b] iff [v] is a definite logic level. *)
val to_bool : t -> bool option

(** True for [Zero] and [One] only. *)
val is_defined : t -> bool

(** Multiplex-to-boolean conversion: [Noinfl] becomes [Undef]. *)
val booleanize : t -> t

(** {1 Gate truth tables (section 8)}

    All gates booleanize their inputs first. *)

val not_ : t -> t
val and2 : t -> t -> t
val or2 : t -> t -> t
val xor2 : t -> t -> t

(** XNOR on definite inputs, [Undef] otherwise. *)
val equal2 : t -> t -> t

val and_list : t list -> t
val or_list : t list -> t
val xor_list : t list -> t
val nand_list : t list -> t
val nor_list : t list -> t

(** {1 Early-firing gate evaluation}

    [None] inputs are "not yet assigned".  The result is [Some v] as soon
    as the gate output is forced regardless of missing inputs — e.g.
    [and_partial] fires [Zero] on the first [Zero] input (section 8 firing
    rules). *)

val and_partial : t option list -> t option
val or_partial : t option list -> t option
val nand_partial : t option list -> t option
val nor_partial : t option list -> t option
val xor_partial : t option list -> t option
val not_partial : t option list -> t option

(** Apply a strict n-ary function once every input has fired. *)
val map_all : (t list -> t) -> t option list -> t option

(** {1 Multi-driver resolution}

    Resolution of simultaneous conditional assignments on a multiplex net:
    [Noinfl] is overruled by any other value; more than one driving value
    is a conflict — the net reads [Undef] and [conflict] is set (the
    runtime "burning transistors" check of section 4.7). *)

type resolution = {
  value : t;
  conflict : bool;
}

val resolve : t list -> resolution
