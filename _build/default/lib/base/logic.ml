(* Four-valued logic of the Zeus report (sections 3.3, 4.7 and 8).

   A signal carries one of four values: [Zero], [One], [Undef] (undefined)
   and [Noinfl] (no influence / disconnected / high impedance).  Only
   signals of type multiplex may carry [Noinfl]; a boolean signal reading a
   multiplex net sees [Noinfl] as [Undef] (the implicit "amplifier" of
   section 4.1). *)

type t =
  | Zero
  | One
  | Undef
  | Noinfl

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let to_char = function
  | Zero -> '0'
  | One -> '1'
  | Undef -> 'U'
  | Noinfl -> 'Z'

let of_char = function
  | '0' -> Some Zero
  | '1' -> Some One
  | 'U' | 'u' -> Some Undef
  | 'Z' | 'z' -> Some Noinfl
  | _ -> None

let to_string v = String.make 1 (to_char v)

let pp ppf v = Fmt.char ppf (to_char v)

let of_bool b = if b then One else Zero

(* [to_bool] returns [None] for Undef/Noinfl — use it when a definite
   boolean is required (e.g. IF conditions). *)
let to_bool = function
  | Zero -> Some false
  | One -> Some true
  | Undef | Noinfl -> None

let is_defined = function
  | Zero | One -> true
  | Undef | Noinfl -> false

(* Conversion multiplex -> boolean: a boolean wire never carries Noinfl
   (section 4.1: "x := NOINFL is replaced by x := UNDEF"). *)
let booleanize = function
  | Noinfl -> Undef
  | (Zero | One | Undef) as v -> v

(* Gate truth tables (section 8).  Inputs are booleanized first: a gate fed
   from a multiplex net goes through the implicit amplifier. *)

let not_ v =
  match booleanize v with
  | Zero -> One
  | One -> Zero
  | Undef | Noinfl -> Undef

let and2 a b =
  match (booleanize a, booleanize b) with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | _ -> Undef

let or2 a b =
  match (booleanize a, booleanize b) with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | _ -> Undef

let xor2 a b =
  match (booleanize a, booleanize b) with
  | Zero, Zero | One, One -> Zero
  | Zero, One | One, Zero -> One
  | _ -> Undef

(* EQUAL is XNOR on definite inputs, UNDEF otherwise (section 8). *)
let equal2 a b =
  match (booleanize a, booleanize b) with
  | Zero, Zero | One, One -> One
  | Zero, One | One, Zero -> Zero
  | _ -> Undef

let and_list = function
  | [] -> invalid_arg "Logic.and_list: empty"
  | v :: vs -> List.fold_left and2 (booleanize v) vs

let or_list = function
  | [] -> invalid_arg "Logic.or_list: empty"
  | v :: vs -> List.fold_left or2 (booleanize v) vs

let xor_list = function
  | [] -> invalid_arg "Logic.xor_list: empty"
  | v :: vs -> List.fold_left xor2 (booleanize v) vs

let nand_list vs = not_ (and_list vs)

let nor_list vs = not_ (or_list vs)

(* Partial (early-firing) gate evaluation for the firing simulator of
   section 8: a gate node fires "as soon as" its output is determined.
   [None] in the input list means "not yet assigned".  The result is
   [Some v] once the output is forced to [v] no matter how the missing
   inputs resolve. *)

let and_partial inputs =
  let vs = List.map (Option.map booleanize) inputs in
  if List.exists (fun v -> v = Some Zero) vs then Some Zero
  else if List.for_all (fun v -> v = Some One) vs then Some One
  else if List.exists Option.is_none vs then None
  else Some Undef

let or_partial inputs =
  let vs = List.map (Option.map booleanize) inputs in
  if List.exists (fun v -> v = Some One) vs then Some One
  else if List.for_all (fun v -> v = Some Zero) vs then Some Zero
  else if List.exists Option.is_none vs then None
  else Some Undef

let map_all f inputs =
  if List.exists Option.is_none inputs then None
  else Some (f (List.map Option.get inputs))

let nand_partial inputs =
  Option.map not_ (and_partial inputs)

let nor_partial inputs =
  Option.map not_ (or_partial inputs)

let xor_partial inputs = map_all xor_list inputs

let not_partial = function
  | [ Some v ] -> Some (not_ v)
  | [ None ] -> None
  | _ -> invalid_arg "Logic.not_partial: arity"

(* Multi-driver resolution on a multiplex net (section 8, "conditional
   simultaneous assignments"): NOINFL is overruled by any other value; a
   second non-NOINFL drive is a conflict — the net reads UNDEF and the
   simulator reports an error ("burning transistors"). *)

type resolution = {
  value : t;
  conflict : bool;
}

let resolve drivers =
  let driving = List.filter (fun v -> not (equal v Noinfl)) drivers in
  match driving with
  | [] -> { value = Noinfl; conflict = false }
  | [ v ] -> { value = v; conflict = false }
  | _ :: _ :: _ -> { value = Undef; conflict = true }
