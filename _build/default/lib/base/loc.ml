(* Source positions and spans for error reporting. *)

type pos = {
  line : int; (* 1-based *)
  col : int; (* 1-based *)
  offset : int; (* 0-based byte offset *)
}

type t = {
  start : pos;
  stop : pos;
}

let start_pos = { line = 1; col = 1; offset = 0 }

let dummy_pos = { line = 0; col = 0; offset = -1 }

let dummy = { start = dummy_pos; stop = dummy_pos }

let make start stop = { start; stop }

let merge a b =
  let start = if a.start.offset <= b.start.offset then a.start else b.start in
  let stop = if a.stop.offset >= b.stop.offset then a.stop else b.stop in
  { start; stop }

let is_dummy t = t.start.offset < 0

let advance (p : pos) (c : char) =
  if c = '\n' then { line = p.line + 1; col = 1; offset = p.offset + 1 }
  else { line = p.line; col = p.col + 1; offset = p.offset + 1 }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col

let pp ppf t =
  if is_dummy t then Fmt.string ppf "<unknown>"
  else if t.start.line = t.stop.line then
    Fmt.pf ppf "%d:%d-%d" t.start.line t.start.col t.stop.col
  else Fmt.pf ppf "%a-%a" pp_pos t.start pp_pos t.stop

let to_string t = Fmt.str "%a" pp t
