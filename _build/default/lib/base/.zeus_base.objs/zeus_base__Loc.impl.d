lib/base/loc.ml: Fmt
