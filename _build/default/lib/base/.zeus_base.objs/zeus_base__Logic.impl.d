lib/base/logic.ml: Fmt List Option Stdlib String
