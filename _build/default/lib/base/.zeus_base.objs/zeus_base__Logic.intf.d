lib/base/logic.mli: Fmt
