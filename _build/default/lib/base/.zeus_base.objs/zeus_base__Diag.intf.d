lib/base/diag.mli: Fmt Format Loc
