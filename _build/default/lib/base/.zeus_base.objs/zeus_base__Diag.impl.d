lib/base/diag.ml: Fmt List Loc
