lib/base/loc.mli: Fmt
