(* Diagnostics: located errors and warnings, collected during every phase
   (lexing, parsing, elaboration, static checking, simulation). *)

type severity =
  | Error
  | Warning

type kind =
  | Lex_error
  | Parse_error
  | Name_error (* undeclared / duplicate identifiers, uses-list violations *)
  | Type_error (* static type rules of section 4.7 *)
  | Width_error (* basic-substructure count mismatches *)
  | Assign_error (* single-assignment / aliasing rules *)
  | Cycle_error (* combinational feedback not through REG *)
  | Port_error (* unused-port rule of section 4.1 *)
  | Layout_error
  | Runtime_error (* simulator checks: multiple drives, undefined reads *)
  | Order_error (* SEQUENTIAL/PARALLEL consistency, section 4.5 *)
  | Limit_error (* elaboration limits: runaway recursion etc. *)

type t = {
  severity : severity;
  kind : kind;
  loc : Loc.t;
  message : string;
}

let kind_to_string = function
  | Lex_error -> "lex"
  | Parse_error -> "parse"
  | Name_error -> "name"
  | Type_error -> "type"
  | Width_error -> "width"
  | Assign_error -> "assign"
  | Cycle_error -> "cycle"
  | Port_error -> "port"
  | Layout_error -> "layout"
  | Runtime_error -> "runtime"
  | Order_error -> "order"
  | Limit_error -> "limit"

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"

let pp ppf d =
  Fmt.pf ppf "%a: %s(%s): %s" Loc.pp d.loc
    (severity_to_string d.severity)
    (kind_to_string d.kind) d.message

let to_string d = Fmt.str "%a" pp d

(* A mutable bag of diagnostics threaded through a compilation phase. *)
module Bag = struct
  type diag = t

  type t = {
    mutable diags : diag list; (* newest first *)
    mutable error_count : int;
  }

  let create () = { diags = []; error_count = 0 }

  let add bag d =
    bag.diags <- d :: bag.diags;
    if d.severity = Error then bag.error_count <- bag.error_count + 1

  let error bag kind loc fmt =
    Fmt.kstr
      (fun message -> add bag { severity = Error; kind; loc; message })
      fmt

  let warning bag kind loc fmt =
    Fmt.kstr
      (fun message -> add bag { severity = Warning; kind; loc; message })
      fmt

  let has_errors bag = bag.error_count > 0

  let all bag = List.rev bag.diags

  let errors bag = List.filter (fun d -> d.severity = Error) (all bag)

  let pp ppf bag = Fmt.(list ~sep:(any "@\n") pp) ppf (all bag)
end
