(* Hand-written lexer for the Zeus vocabulary (report section 2).

   - identifiers: letter { letter | digit }
   - numbers: digit { digit } [ "B" | "b" ]  (the suffix marks octal)
   - comments: <* ... *>, nesting allowed
   - keywords are the upper-case reserved words of section 2. *)

open Zeus_base

type state = {
  src : string;
  mutable pos : Loc.pos;
  bag : Diag.Bag.t;
}

let create ?(bag = Diag.Bag.create ()) src = { src; pos = Loc.start_pos; bag }

let at_end st = st.pos.Loc.offset >= String.length st.src

let peek_char st =
  if at_end st then None else Some st.src.[st.pos.Loc.offset]

let peek_char2 st =
  if st.pos.Loc.offset + 1 >= String.length st.src then None
  else Some st.src.[st.pos.Loc.offset + 1]

let advance st =
  match peek_char st with
  | None -> ()
  | Some c -> st.pos <- Loc.advance st.pos c

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_digit c = c >= '0' && c <= '9'

let is_ident_char c = is_letter c || is_digit c

(* Skip whitespace and (possibly nested) <* ... *> comments. *)
let rec skip_trivia st =
  match peek_char st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '<' when peek_char2 st = Some '*' ->
      let start = st.pos in
      advance st;
      advance st;
      skip_comment st start 1;
      skip_trivia st
  | _ -> ()

and skip_comment st start depth =
  if depth = 0 then ()
  else
    match peek_char st with
    | None ->
        Diag.Bag.error st.bag Diag.Lex_error
          (Loc.make start st.pos)
          "unterminated comment"
    | Some '*' when peek_char2 st = Some '>' ->
        advance st;
        advance st;
        skip_comment st start (depth - 1)
    | Some '<' when peek_char2 st = Some '*' ->
        advance st;
        advance st;
        skip_comment st start (depth + 1)
    | Some _ ->
        advance st;
        skip_comment st start depth

let lex_ident st =
  let start = st.pos in
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek_char st with
    | Some c when is_ident_char c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
    | _ -> ()
  in
  loop ();
  let s = Buffer.contents buf in
  let tok =
    match Token.keyword_of_string s with
    | Some k -> Token.Keyword k
    | None -> Token.Ident s
  in
  { Token.tok; loc = Loc.make start st.pos }

(* Numbers: decimal by default; a trailing B/b re-reads the digits as
   octal (Modula-2 style).  A digit string containing 8/9 with an octal
   suffix is an error. *)
let lex_number st =
  let start = st.pos in
  let buf = Buffer.create 8 in
  let rec loop () =
    match peek_char st with
    | Some c when is_digit c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
    | _ -> ()
  in
  loop ();
  let digits = Buffer.contents buf in
  let octal =
    match peek_char st with
    | Some ('B' | 'b')
      when not (Option.fold ~none:false ~some:is_ident_char (peek_char2 st))
      ->
        advance st;
        true
    | _ -> false
  in
  let loc = Loc.make start st.pos in
  let value =
    if octal then (
      if String.exists (fun c -> c = '8' || c = '9') digits then (
        Diag.Bag.error st.bag Diag.Lex_error loc
          "digit 8 or 9 in octal number %sB" digits;
        0)
      else int_of_string ("0o" ^ digits))
    else int_of_string digits
  in
  { Token.tok = Token.Number value; loc }

let symbol st tok n =
  let start = st.pos in
  for _ = 1 to n do
    advance st
  done;
  { Token.tok; loc = Loc.make start st.pos }

let rec next st =
  skip_trivia st;
  let start = st.pos in
  match peek_char st with
  | None -> { Token.tok = Token.Eof; loc = Loc.make start start }
  | Some c when is_letter c -> lex_ident st
  | Some c when is_digit c -> lex_number st
  | Some '+' -> symbol st Token.Plus 1
  | Some '-' -> symbol st Token.Minus 1
  | Some '(' -> symbol st Token.Lparen 1
  | Some ')' -> symbol st Token.Rparen 1
  | Some '[' -> symbol st Token.Lbracket 1
  | Some ']' -> symbol st Token.Rbracket 1
  | Some '{' -> symbol st Token.Lbrace 1
  | Some '}' -> symbol st Token.Rbrace 1
  | Some ',' -> symbol st Token.Comma 1
  | Some ';' -> symbol st Token.Semi 1
  | Some '*' -> symbol st Token.Star 1
  | Some '.' ->
      if peek_char2 st = Some '.' then symbol st Token.Dotdot 2
      else symbol st Token.Dot 1
  | Some ':' ->
      if peek_char2 st = Some '=' then symbol st Token.Assign 2
      else symbol st Token.Colon 1
  | Some '=' ->
      if peek_char2 st = Some '=' then symbol st Token.Alias 2
      else symbol st Token.Eq 1
  | Some '<' -> (
      match peek_char2 st with
      | Some '=' -> symbol st Token.Le 2
      | Some '>' -> symbol st Token.Neq 2
      | _ -> symbol st Token.Lt 1)
  | Some '>' ->
      if peek_char2 st = Some '=' then symbol st Token.Ge 2
      else symbol st Token.Gt 1
  | Some c ->
      advance st;
      Diag.Bag.error st.bag Diag.Lex_error
        (Loc.make start st.pos)
        "illegal character %C" c;
      next st

(* Lex the whole input into an array (the parser backtracks by index). *)
let tokenize ?bag src =
  let st = create ?bag src in
  let rec loop acc =
    let t = next st in
    if t.Token.tok = Token.Eof then List.rev (t :: acc) else loop (t :: acc)
  in
  Array.of_list (loop [])
