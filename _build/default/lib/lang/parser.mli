(** Recursive-descent parser for Zeus, following the EBNF of report
    section 7 (main syntax and layout-language syntax).

    All entry points return [None] and a populated diagnostics bag when
    the input does not parse. *)

open Zeus_base

(** Parse a whole program ({i Hardware = \{declaration\}}). *)
val program :
  ?bag:Diag.Bag.t -> string -> Ast.program option * Diag.Bag.t

(** Parse a single expression (mainly for tests). *)
val expression : ?bag:Diag.Bag.t -> string -> Ast.expr option * Diag.Bag.t

(** Parse a constant expression (section 3.1 syntax). *)
val constant_expression :
  ?bag:Diag.Bag.t -> string -> Ast.const_expr option * Diag.Bag.t

(** Parse a hierarchical path like ["adder.s[2]"] — the testbench API
    uses this to address signals. *)
val signal_reference :
  ?bag:Diag.Bag.t -> string -> Ast.signal_ref option * Diag.Bag.t
