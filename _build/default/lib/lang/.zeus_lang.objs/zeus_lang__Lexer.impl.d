lib/lang/lexer.ml: Array Buffer Diag List Loc Option String Token Zeus_base
