lib/lang/token.ml: Fmt List Zeus_base
