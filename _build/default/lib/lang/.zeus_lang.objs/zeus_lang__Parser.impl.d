lib/lang/parser.ml: Array Ast Diag Fmt Lexer List Loc Token Zeus_base
