lib/lang/parser.mli: Ast Diag Zeus_base
