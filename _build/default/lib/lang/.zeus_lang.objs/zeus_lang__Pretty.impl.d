lib/lang/pretty.ml: Ast Fmt List Option
