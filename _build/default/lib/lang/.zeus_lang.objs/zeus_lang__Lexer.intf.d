lib/lang/lexer.mli: Diag Token Zeus_base
