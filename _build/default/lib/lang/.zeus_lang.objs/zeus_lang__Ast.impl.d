lib/lang/ast.ml: Loc Zeus_base
