(* Recursive-descent parser for Zeus (report section 7 EBNF, main and
   layout syntax).

   The parser works over the full token array produced by [Lexer.tokenize]
   and backtracks by index where the printed grammar is ambiguous (numeric
   constant vs. signal constant).  Parse failures raise [Fail] internally;
   the public entry points convert them to diagnostics. *)

open Zeus_base

exception Fail of Loc.t * string

type state = {
  toks : Token.located array;
  mutable idx : int;
  bag : Diag.Bag.t;
}

let fail st fmt =
  let loc = st.toks.(st.idx).Token.loc in
  Fmt.kstr (fun msg -> raise (Fail (loc, msg))) fmt

let peek st = st.toks.(st.idx).Token.tok

let peek2 st =
  if st.idx + 1 < Array.length st.toks then st.toks.(st.idx + 1).Token.tok
  else Token.Eof

let here st = st.toks.(st.idx).Token.loc

let prev_loc st =
  if st.idx > 0 then st.toks.(st.idx - 1).Token.loc else Loc.dummy

let advance st = if st.idx + 1 < Array.length st.toks then st.idx <- st.idx + 1

let eat st tok =
  if peek st = tok then advance st
  else
    fail st "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string (peek st))

let eat_keyword st k = eat st (Token.Keyword k)

let accept st tok =
  if peek st = tok then (
    advance st;
    true)
  else false

let accept_keyword st k = accept st (Token.Keyword k)

let parse_ident st =
  match peek st with
  | Token.Ident s ->
      let loc = here st in
      advance st;
      { Ast.id = s; id_loc = loc }
  | t -> fail st "expected identifier, found '%s'" (Token.to_string t)

let parse_idlist st =
  let rec loop acc =
    let id = parse_ident st in
    if accept st Token.Comma then loop (id :: acc) else List.rev (id :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Constant expressions                                                 *)
(* ------------------------------------------------------------------ *)

let rec parse_const_expr st =
  let lhs = parse_simple_const st in
  let rel =
    match peek st with
    | Token.Eq -> Some Ast.Ceq
    | Token.Neq -> Some Ast.Cneq
    | Token.Lt -> Some Ast.Clt
    | Token.Le -> Some Ast.Cle
    | Token.Gt -> Some Ast.Cgt
    | Token.Ge -> Some Ast.Cge
    | _ -> None
  in
  match rel with
  | None -> lhs
  | Some r ->
      advance st;
      let rhs = parse_simple_const st in
      Ast.Crel (r, lhs, rhs)

and parse_simple_const st =
  let sign =
    if accept st Token.Plus then Some Ast.Cpos
    else if accept st Token.Minus then Some Ast.Cneg
    else None
  in
  let first = parse_const_term st in
  let first =
    match sign with
    | None -> first
    | Some op -> Ast.Cun (op, first)
  in
  let rec loop lhs =
    let op =
      match peek st with
      | Token.Plus -> Some Ast.Cadd
      | Token.Minus -> Some Ast.Csub
      | Token.Keyword Token.KOR -> Some Ast.Cor
      | _ -> None
    in
    match op with
    | None -> lhs
    | Some op ->
        advance st;
        let rhs = parse_const_term st in
        loop (Ast.Cbin (op, lhs, rhs))
  in
  loop first

and parse_const_term st =
  let rec loop lhs =
    let op =
      match peek st with
      | Token.Star -> Some Ast.Cmul
      | Token.Keyword Token.KDIV -> Some Ast.Cdiv
      | Token.Keyword Token.KMOD -> Some Ast.Cmod
      | Token.Keyword Token.KAND -> Some Ast.Cand
      | _ -> None
    in
    match op with
    | None -> lhs
    | Some op ->
        advance st;
        let rhs = parse_const_factor st in
        loop (Ast.Cbin (op, lhs, rhs))
  in
  loop (parse_const_factor st)

and parse_const_factor st =
  match peek st with
  | Token.Number n ->
      let loc = here st in
      advance st;
      Ast.Cnum (n, loc)
  | Token.Lparen ->
      advance st;
      let e = parse_const_expr st in
      eat st Token.Rparen;
      e
  | Token.Keyword Token.KNOT ->
      advance st;
      Ast.Cun (Ast.Cnot, parse_const_factor st)
  | Token.Ident _ ->
      let id = parse_ident st in
      let args =
        if peek st = Token.Lparen then (
          advance st;
          let rec loop acc =
            let e = parse_const_expr st in
            (* the grammar separates const arguments with ';' but the
               examples also suggest ','; accept both *)
            if accept st Token.Semi || accept st Token.Comma then
              loop (e :: acc)
            else List.rev (e :: acc)
          in
          let args = loop [] in
          eat st Token.Rparen;
          args)
        else []
      in
      Ast.Cref (id, args)
  | t -> fail st "expected constant expression, found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Signal constants                                                     *)
(* ------------------------------------------------------------------ *)

let rec parse_sig_const st =
  match peek st with
  | Token.Number ((0 | 1) as n) ->
      let loc = here st in
      advance st;
      Ast.Sc_value (n, loc)
  | Token.Keyword Token.KBIN ->
      let loc = here st in
      advance st;
      eat st Token.Lparen;
      let a = parse_const_expr st in
      eat st Token.Comma;
      let b = parse_const_expr st in
      eat st Token.Rparen;
      Ast.Sc_bin (a, b, Loc.merge loc (prev_loc st))
  | Token.Ident _ -> Ast.Sc_ref (parse_ident st)
  | Token.Lparen ->
      let loc = here st in
      advance st;
      let rec loop acc =
        let e = parse_sig_const st in
        if accept st Token.Comma then loop (e :: acc) else List.rev (e :: acc)
      in
      let elems = loop [] in
      eat st Token.Rparen;
      Ast.Sc_tuple (elems, Loc.merge loc (prev_loc st))
  | t -> fail st "expected signal constant, found '%s'" (Token.to_string t)

(* constant = ConstExpression | sigConstExpression : try the numeric
   reading first and backtrack to the signal-constant reading. *)
let parse_constant st =
  let saved = st.idx in
  match
    let e = parse_const_expr st in
    (* the constant must extend to the declaration terminator *)
    if peek st = Token.Semi then Some (Ast.Knum e) else None
  with
  | Some k -> k
  | None | (exception Fail _) ->
      st.idx <- saved;
      Ast.Ksig (parse_sig_const st)

(* ------------------------------------------------------------------ *)
(* Signals                                                              *)
(* ------------------------------------------------------------------ *)

let rec parse_signal_ref st =
  match peek st with
  | Token.Star ->
      let loc = here st in
      advance st;
      Ast.Star loc
  | Token.Ident _ -> parse_named_signal st
  | Token.Keyword Token.KCLK ->
      let loc = here st in
      advance st;
      Ast.Sig ({ Ast.id = "CLK"; id_loc = loc }, [])
  | Token.Keyword Token.KRSET ->
      let loc = here st in
      advance st;
      Ast.Sig ({ Ast.id = "RSET"; id_loc = loc }, [])
  | t -> fail st "expected signal, found '%s'" (Token.to_string t)

and parse_named_signal st =
  let id = parse_ident st in
  let rec selectors acc =
    match peek st with
    | Token.Lbracket ->
        advance st;
        let acc = parse_bracket_selectors st acc in
        selectors acc
    | Token.Dot -> (
        (* ".." must not be confused with a field selector *)
        match peek2 st with
        | Token.Ident _ ->
            advance st;
            let f = parse_ident st in
            if peek st = Token.Dotdot && peek2 st <> Token.Lbracket then (
              advance st;
              let g = parse_ident st in
              selectors (Ast.Sel_field_range (f, g) :: acc))
            else selectors (Ast.Sel_field f :: acc)
        | _ -> List.rev acc)
    | _ -> List.rev acc
  in
  Ast.Sig (id, selectors [])

(* inside "[...]": one or more comma-separated index/range/NUM selectors
   (the comma form covers the multi-dimensional arrays of section 6.4) *)
and parse_bracket_selectors st acc =
  let rec loop acc =
    let sel =
      match peek st with
      | Token.Keyword Token.KNUM ->
          advance st;
          eat st Token.Lparen;
          let s = parse_signal_ref st in
          eat st Token.Rparen;
          Ast.Sel_num s
      | _ ->
          let lo = parse_const_expr st in
          if accept st Token.Dotdot then
            let hi = parse_const_expr st in
            Ast.Sel_range (lo, hi)
          else Ast.Sel_index lo
    in
    if accept st Token.Comma then loop (sel :: acc) else sel :: acc
  in
  let acc = loop acc in
  eat st Token.Rbracket;
  acc

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

(* Can this selector list serve as the bracketed type parameters of a
   function component call, e.g. plus[n](a,b)? *)
let selectors_as_params sels =
  let param = function
    | Ast.Sel_index e -> Some e
    | Ast.Sel_range _ | Ast.Sel_num _ | Ast.Sel_field _
    | Ast.Sel_field_range _ -> None
  in
  let rec loop acc = function
    | [] -> Some (List.rev acc)
    | s :: rest -> (
        match param s with
        | Some e -> loop (e :: acc) rest
        | None -> None)
  in
  loop [] sels

let rec parse_expr st =
  match peek st with
  | Token.Keyword Token.KNOT ->
      (* NOT binds to a single primary: NOT g, NOT ace.out *)
      let loc = here st in
      advance st;
      let arg = parse_expr_primary st in
      Ast.Ecall
        ( { Ast.id = "NOT"; id_loc = loc },
          [],
          [ arg ],
          Loc.merge loc (Ast.expr_loc arg) )
  | _ -> parse_expr_primary st

and parse_expr_primary st =
  match peek st with
  | Token.Number ((0 | 1) as n) ->
      let loc = here st in
      advance st;
      Ast.Econst (Ast.Sc_value (n, loc))
  | Token.Number _ -> fail st "only 0 and 1 are signal values"
  | Token.Keyword Token.KBIN ->
      let loc = here st in
      advance st;
      eat st Token.Lparen;
      let a = parse_const_expr st in
      eat st Token.Comma;
      let b = parse_const_expr st in
      eat st Token.Rparen;
      Ast.Ebin (a, b, Loc.merge loc (prev_loc st))
  | Token.Keyword Token.KAND -> parse_builtin_call st "AND"
  | Token.Keyword Token.KOR -> parse_builtin_call st "OR"
  | Token.Keyword (Token.KCLK | Token.KRSET) -> Ast.Eref (parse_signal_ref st)
  | Token.Star ->
      let loc = here st in
      advance st;
      let width =
        if accept st Token.Colon then Some (parse_const_expr st) else None
      in
      Ast.Estar (width, Loc.merge loc (prev_loc st))
  | Token.Lparen ->
      let loc = here st in
      advance st;
      let rec loop acc =
        let e = parse_expr st in
        if accept st Token.Comma then loop (e :: acc) else List.rev (e :: acc)
      in
      let elems = loop [] in
      eat st Token.Rparen;
      let loc = Loc.merge loc (prev_loc st) in
      (match elems with
      | [ e ] -> e (* grouping parentheses *)
      | es -> Ast.Etuple (es, loc))
  | Token.Ident _ -> (
      let sref = parse_named_signal st in
      match (sref, peek st) with
      | Ast.Sig (id, sels), Token.Lparen -> (
          match selectors_as_params sels with
          | Some params ->
              let args = parse_call_args st in
              Ast.Ecall
                (id, params, args, Loc.merge id.Ast.id_loc (prev_loc st))
          | None ->
              fail st
                "'%s' is applied to arguments but its bracket selectors are \
                 not constant type parameters"
                id.Ast.id)
      | _ -> Ast.Eref sref)
  | t -> fail st "expected expression, found '%s'" (Token.to_string t)

and parse_call_args st =
  eat st Token.Lparen;
  if accept st Token.Rparen then []
  else
    let rec loop acc =
      let e = parse_expr st in
      if accept st Token.Comma then loop (e :: acc) else List.rev (e :: acc)
    in
    let args = loop [] in
    eat st Token.Rparen;
    args

and parse_builtin_call st name =
  let loc = here st in
  advance st;
  let args = parse_call_args st in
  Ast.Ecall ({ Ast.id = name; id_loc = loc }, [], args, Loc.merge loc (prev_loc st))

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let statement_terminator st =
  match peek st with
  | Token.Keyword
      ( Token.KEND | Token.KELSE | Token.KELSIF | Token.KOTHERWISE
      | Token.KOTHERWISEWHEN )
  | Token.Eof | Token.Rbrace -> true
  | _ -> false

let rec parse_stmt_seq st =
  let rec loop acc =
    if statement_terminator st then List.rev acc
    else if accept st Token.Semi then loop acc (* empty statement *)
    else
      let s = parse_stmt st in
      let acc = s :: acc in
      if accept st Token.Semi then loop acc
      else if statement_terminator st then List.rev acc
      else fail st "expected ';' between statements"
  in
  loop []

and parse_stmt st =
  match peek st with
  | Token.Keyword Token.KFOR -> parse_for st
  | Token.Keyword Token.KWHEN -> parse_when st
  | Token.Keyword Token.KIF -> parse_if st
  | Token.Keyword Token.KRESULT ->
      let loc = here st in
      advance st;
      let e = parse_expr st in
      Ast.Sresult (e, Loc.merge loc (Ast.expr_loc e))
  | Token.Keyword Token.KPARALLEL ->
      let loc = here st in
      advance st;
      let body = parse_stmt_seq st in
      eat_keyword st Token.KEND;
      Ast.Sparallel (body, Loc.merge loc (prev_loc st))
  | Token.Keyword Token.KSEQUENTIAL ->
      let loc = here st in
      advance st;
      let body = parse_stmt_seq st in
      eat_keyword st Token.KEND;
      Ast.Ssequential (body, Loc.merge loc (prev_loc st))
  | Token.Keyword Token.KWITH ->
      let loc = here st in
      advance st;
      let s = parse_signal_ref st in
      eat_keyword st Token.KDO;
      let body = parse_stmt_seq st in
      eat_keyword st Token.KEND;
      Ast.Swith (s, body, Loc.merge loc (prev_loc st))
  | Token.Ident _ | Token.Star | Token.Keyword (Token.KCLK | Token.KRSET) ->
      parse_signal_stmt st
  | t -> fail st "expected statement, found '%s'" (Token.to_string t)

(* assignment, aliasing or connection — they all start with a signal *)
and parse_signal_stmt st =
  let sref = parse_signal_ref st in
  let loc0 = Ast.signal_ref_loc sref in
  match peek st with
  | Token.Assign ->
      advance st;
      let e = parse_expr st in
      Ast.Sassign (sref, e, Loc.merge loc0 (prev_loc st))
  | Token.Alias ->
      advance st;
      let e = parse_expr st in
      Ast.Salias (sref, e, Loc.merge loc0 (prev_loc st))
  | Token.Lparen ->
      let args = parse_call_args st in
      Ast.Sconnect (sref, args, Loc.merge loc0 (prev_loc st))
  | t ->
      fail st "expected ':=', '==' or '(' after signal, found '%s'"
        (Token.to_string t)

and parse_for_header st ~layout =
  let fvar = parse_ident st in
  (* the main grammar uses ":=", the layout examples of section 6.4 use
     "="; accept "=" in layout position only *)
  if peek st = Token.Assign then advance st
  else if layout && peek st = Token.Eq then advance st
  else eat st Token.Assign;
  let ffrom = parse_const_expr st in
  let fdir =
    if accept_keyword st Token.KTO then Ast.To
    else if accept_keyword st Token.KDOWNTO then Ast.Downto
    else fail st "expected TO or DOWNTO"
  in
  let fto = parse_const_expr st in
  { Ast.fvar; ffrom; fdir; fto }

and parse_for st =
  let loc = here st in
  eat_keyword st Token.KFOR;
  let header = parse_for_header st ~layout:false in
  eat_keyword st Token.KDO;
  let sequentially = accept_keyword st Token.KSEQUENTIALLY in
  let body = parse_stmt_seq st in
  eat_keyword st Token.KEND;
  Ast.Sfor (header, sequentially, body, Loc.merge loc (prev_loc st))

and parse_when st =
  let loc = here st in
  eat_keyword st Token.KWHEN;
  let rec arms acc =
    let cond = parse_const_expr st in
    eat_keyword st Token.KTHEN;
    let body = parse_stmt_seq st in
    let acc = (cond, body) :: acc in
    if accept_keyword st Token.KOTHERWISEWHEN then arms acc
    else (List.rev acc, if accept_keyword st Token.KOTHERWISE then parse_stmt_seq st else [])
  in
  let arms, otherwise = arms [] in
  eat_keyword st Token.KEND;
  Ast.Swhen (arms, otherwise, Loc.merge loc (prev_loc st))

and parse_if st =
  let loc = here st in
  eat_keyword st Token.KIF;
  let rec arms acc =
    let cond = parse_expr st in
    eat_keyword st Token.KTHEN;
    let body = parse_stmt_seq st in
    let acc = (cond, body) :: acc in
    if accept_keyword st Token.KELSIF then arms acc
    else (List.rev acc, if accept_keyword st Token.KELSE then parse_stmt_seq st else [])
  in
  let arms, else_ = arms [] in
  eat_keyword st Token.KEND;
  Ast.Sif (arms, else_, Loc.merge loc (prev_loc st))

(* ------------------------------------------------------------------ *)
(* Layout language                                                      *)
(* ------------------------------------------------------------------ *)

and layout_terminator st =
  match peek st with
  | Token.Rbrace | Token.Eof
  | Token.Keyword (Token.KEND | Token.KOTHERWISE | Token.KOTHERWISEWHEN) ->
      true
  | _ -> false

and parse_layout_list st =
  let rec loop acc =
    if layout_terminator st then List.rev acc
    else if accept st Token.Semi then loop acc
    else
      let s = parse_layout_stmt st in
      let acc = s :: acc in
      if accept st Token.Semi then loop acc
      else if layout_terminator st then List.rev acc
      else fail st "expected ';' between layout statements"
  in
  loop []

and parse_layout_stmt st =
  match peek st with
  | Token.Keyword Token.KORDER ->
      let loc = here st in
      advance st;
      let dir = parse_ident st in
      if not (List.mem dir.Ast.id Ast.directions_of_separation) then
        fail st "'%s' is not a direction of separation" dir.Ast.id;
      let body = parse_layout_list st in
      eat_keyword st Token.KEND;
      Ast.Lorder (dir, body, Loc.merge loc (prev_loc st))
  | Token.Keyword Token.KFOR ->
      let loc = here st in
      advance st;
      let header = parse_for_header st ~layout:true in
      eat_keyword st Token.KDO;
      let body = parse_layout_list st in
      eat_keyword st Token.KEND;
      Ast.Lfor (header, body, Loc.merge loc (prev_loc st))
  | Token.Keyword Token.KWHEN ->
      let loc = here st in
      advance st;
      let rec arms acc =
        let cond = parse_const_expr st in
        eat_keyword st Token.KTHEN;
        let body = parse_layout_list st in
        let acc = (cond, body) :: acc in
        if accept_keyword st Token.KOTHERWISEWHEN then arms acc
        else
          ( List.rev acc,
            if accept_keyword st Token.KOTHERWISE then parse_layout_list st
            else [] )
      in
      let arms, otherwise = arms [] in
      eat_keyword st Token.KEND;
      Ast.Lwhen (arms, otherwise, Loc.merge loc (prev_loc st))
  | Token.Keyword Token.KWITH ->
      let loc = here st in
      advance st;
      let s = parse_signal_ref st in
      eat_keyword st Token.KDO;
      let body = parse_layout_list st in
      eat_keyword st Token.KEND;
      Ast.Lwith (s, body, Loc.merge loc (prev_loc st))
  | Token.Keyword ((Token.KTOP | Token.KRIGHT | Token.KBOTTOM | Token.KLEFT) as k)
    ->
      let loc = here st in
      advance st;
      let side =
        match k with
        | Token.KTOP -> Ast.Side_top
        | Token.KRIGHT -> Ast.Side_right
        | Token.KBOTTOM -> Ast.Side_bottom
        | Token.KLEFT -> Ast.Side_left
        | _ -> assert false
      in
      (* pins on this side: signal refs separated by ';' as long as the
         next token can start a signal *)
      let rec pins acc =
        let s = parse_signal_ref st in
        let acc = s :: acc in
        match (peek st, peek2 st) with
        | Token.Semi, (Token.Ident _ | Token.Star) ->
            advance st;
            pins acc
        | _ -> List.rev acc
      in
      let refs = pins [] in
      Ast.Lboundary (side, refs, Loc.merge loc (prev_loc st))
  | Token.Ident _ ->
      let loc = here st in
      (* optional orientation change followed by a signal *)
      let orient =
        match (peek st, peek2 st) with
        | Token.Ident name, (Token.Ident _ | Token.Keyword (Token.KCLK | Token.KRSET))
          when List.mem name Ast.orientation_changes ->
            advance st;
            Some { Ast.id = name; id_loc = loc }
        | _ -> None
      in
      let sref = parse_signal_ref st in
      if accept st Token.Eq then
        let ty = parse_type st in
        Ast.Lreplace (orient, sref, ty, Loc.merge loc (prev_loc st))
      else Ast.Lcell (orient, sref, Loc.merge loc (prev_loc st))
  | t -> fail st "expected layout statement, found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Types                                                                *)
(* ------------------------------------------------------------------ *)

and parse_type st =
  match peek st with
  | Token.Keyword Token.KARRAY ->
      let loc = here st in
      advance st;
      eat st Token.Lbracket;
      (* ARRAY [a..b {, c..d}] OF t : the comma form is the
         multi-dimensional sugar of section 6.4 *)
      let rec ranges acc =
        let lo = parse_const_expr st in
        eat st Token.Dotdot;
        let hi = parse_const_expr st in
        let acc = (lo, hi) :: acc in
        if accept st Token.Comma then ranges acc else List.rev acc
      in
      let ranges = ranges [] in
      eat st Token.Rbracket;
      eat_keyword st Token.KOF;
      let elem = parse_type st in
      let loc = Loc.merge loc (prev_loc st) in
      List.fold_right
        (fun (lo, hi) inner -> Ast.Tarray (lo, hi, inner, loc))
        ranges elem
  | Token.Keyword Token.KCOMPONENT -> parse_component_type st
  | Token.Ident _ ->
      let id = parse_ident st in
      let args =
        if peek st = Token.Lparen then (
          advance st;
          let rec loop acc =
            let e = parse_const_expr st in
            if accept st Token.Comma then loop (e :: acc)
            else List.rev (e :: acc)
          in
          let args = loop [] in
          eat st Token.Rparen;
          args)
        else []
      in
      Ast.Tname (id, args)
  | t -> fail st "expected type, found '%s'" (Token.to_string t)

and parse_component_type st =
  let loc = here st in
  eat_keyword st Token.KCOMPONENT;
  eat st Token.Lparen;
  let cparams =
    if peek st = Token.Rparen then []
    else
      let rec loop acc =
        let p = parse_fparams st in
        if accept st Token.Semi then loop (p :: acc) else List.rev (p :: acc)
      in
      loop []
  in
  eat st Token.Rparen;
  let chead_layout =
    if accept st Token.Lbrace then (
      let l = parse_layout_list st in
      eat st Token.Rbrace;
      l)
    else []
  in
  let cresult =
    if accept st Token.Colon then Some (parse_type st) else None
  in
  let cbody =
    if accept_keyword st Token.KIS then Some (parse_component_body st)
    else None
  in
  (match (cresult, cbody) with
  | Some _, None -> fail st "function component type requires a body"
  | _ -> ());
  Ast.Tcomponent
    ( { Ast.cparams; chead_layout; cresult; cbody },
      Loc.merge loc (prev_loc st) )

and parse_fparams st =
  let fmode =
    if accept_keyword st Token.KIN then Ast.Min
    else if accept_keyword st Token.KOUT then Ast.Mout
    else Ast.Minout
  in
  let fnames = parse_idlist st in
  eat st Token.Colon;
  let fty = parse_type st in
  { Ast.fmode; fnames; fty }

and parse_component_body st =
  let buses =
    if accept_keyword st Token.KUSES then (
      let ids =
        if peek st = Token.Semi then [] else parse_idlist st
      in
      eat st Token.Semi;
      Some ids)
    else None
  in
  let rec decls acc =
    match peek st with
    | Token.Keyword (Token.KCONST | Token.KTYPE | Token.KSIGNAL) ->
        decls (parse_decl st :: acc)
    | _ -> List.rev acc
  in
  let bdecls = decls [] in
  let bbody_layout =
    if accept st Token.Lbrace then (
      let l = parse_layout_list st in
      eat st Token.Rbrace;
      l)
    else []
  in
  eat_keyword st Token.KBEGIN;
  let bstmts = parse_stmt_seq st in
  eat_keyword st Token.KEND;
  { Ast.buses; bdecls; bbody_layout; bstmts }

(* ------------------------------------------------------------------ *)
(* Declarations                                                         *)
(* ------------------------------------------------------------------ *)

and parse_decl st =
  match peek st with
  | Token.Keyword Token.KCONST ->
      advance st;
      let rec loop acc =
        match peek st with
        | Token.Ident _ ->
            let id = parse_ident st in
            eat st Token.Eq;
            let c = parse_constant st in
            eat st Token.Semi;
            loop ((id, c) :: acc)
        | _ -> List.rev acc
      in
      Ast.Dconst (loop [])
  | Token.Keyword Token.KTYPE ->
      advance st;
      let rec loop acc =
        match (peek st, peek2 st) with
        | Token.Ident _, (Token.Eq | Token.Lparen) ->
            let tname = parse_ident st in
            let tformals =
              if accept st Token.Lparen then (
                let ids = parse_idlist st in
                eat st Token.Rparen;
                ids)
              else []
            in
            eat st Token.Eq;
            let tty = parse_type st in
            eat st Token.Semi;
            loop ({ Ast.tname; tformals; tty } :: acc)
        | _ -> List.rev acc
      in
      Ast.Dtype (loop [])
  | Token.Keyword Token.KSIGNAL ->
      advance st;
      let rec loop acc =
        match (peek st, peek2 st) with
        | Token.Ident _, (Token.Comma | Token.Colon) ->
            let ids = parse_idlist st in
            eat st Token.Colon;
            let ty = parse_type st in
            (* signalDeclaration allows trailing "(actuals)"; Tname
               already consumed them, but handle the detached form too *)
            let ty =
              if peek st = Token.Lparen then
                match ty with
                | Ast.Tname (id, []) ->
                    advance st;
                    let rec args acc =
                      let e = parse_const_expr st in
                      if accept st Token.Comma then args (e :: acc)
                      else List.rev (e :: acc)
                    in
                    let actuals = args [] in
                    eat st Token.Rparen;
                    Ast.Tname (id, actuals)
                | _ -> fail st "type parameters after a non-named type"
              else ty
            in
            eat st Token.Semi;
            loop ((ids, ty) :: acc)
        | _ -> List.rev acc
      in
      Ast.Dsignal (loop [])
  | t -> fail st "expected CONST, TYPE or SIGNAL, found '%s'" (Token.to_string t)

(* Error recovery: on a failed declaration, record the diagnostic and
   skip to the next CONST/TYPE/SIGNAL keyword (balancing nothing — those
   keywords never occur inside statement parts except in component-local
   declarations, which is a harmless resync point). *)
let skip_to_next_decl st =
  let rec go () =
    match peek st with
    | Token.Eof -> ()
    | Token.Keyword (Token.KCONST | Token.KTYPE | Token.KSIGNAL) -> ()
    | _ ->
        advance st;
        go ()
  in
  advance st;
  go ()

let parse_program st =
  let rec loop acc =
    match peek st with
    | Token.Eof -> List.rev acc
    | _ -> (
        match parse_decl st with
        | d -> loop (d :: acc)
        | exception Fail (loc, msg) ->
            Diag.Bag.error st.bag Diag.Parse_error loc "%s" msg;
            skip_to_next_decl st;
            loop acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

let run bag src parse =
  let toks = Lexer.tokenize ~bag src in
  let st = { toks; idx = 0; bag } in
  match parse st with
  | v -> if Diag.Bag.has_errors bag then None else Some v
  | exception Fail (loc, msg) ->
      Diag.Bag.error bag Diag.Parse_error loc "%s" msg;
      None

let program ?(bag = Diag.Bag.create ()) src = (run bag src parse_program, bag)

let expression ?(bag = Diag.Bag.create ()) src =
  (run bag src (fun st ->
       let e = parse_expr st in
       eat st Token.Eof;
       e),
   bag)

let constant_expression ?(bag = Diag.Bag.create ()) src =
  (run bag src (fun st ->
       let e = parse_const_expr st in
       eat st Token.Eof;
       e),
   bag)

(* Hierarchical path like "adder.s[2]" — used by the testbench API. *)
let signal_reference ?(bag = Diag.Bag.create ()) src =
  (run bag src (fun st ->
       let s = parse_signal_ref st in
       eat st Token.Eof;
       s),
   bag)
