(* Tokens of the Zeus vocabulary (report section 2). *)

type keyword =
  | KAND
  | KARRAY
  | KBEGIN
  | KBIN
  | KBOTTOM
  | KCLK
  | KCOMPONENT
  | KCONST
  | KDIV
  | KDO
  | KDOWNTO
  | KELSE
  | KELSIF
  | KEND
  | KFOR
  | KIF
  | KIN
  | KIS
  | KLEFT
  | KMOD
  | KNOT
  | KNUM
  | KOF
  | KOR
  | KORDER
  | KOTHERWISE
  | KOTHERWISEWHEN
  | KOUT
  | KPARALLEL
  | KRSET
  | KRESULT
  | KRIGHT
  | KSEQUENTIAL
  | KSEQUENTIALLY
  | KSIGNAL
  | KTHEN
  | KTO
  | KTOP
  | KTYPE
  | KUSES
  | KWHEN
  | KWITH

type t =
  | Ident of string
  | Number of int
  | Keyword of keyword
  | Plus
  | Minus
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Dot
  | Dotdot
  | Comma
  | Semi
  | Colon
  | Lt
  | Le
  | Gt
  | Ge
  | Eq (* "=" : declarations, replacement, const relation *)
  | Neq (* "<>" *)
  | Assign (* ":=" *)
  | Alias (* "==" *)
  | Star (* "*" : unspecified pin / multiplication *)
  | Eof

type located = {
  tok : t;
  loc : Zeus_base.Loc.t;
}

let keyword_table : (string * keyword) list =
  [
    ("AND", KAND);
    ("ARRAY", KARRAY);
    ("BEGIN", KBEGIN);
    ("BIN", KBIN);
    ("BOTTOM", KBOTTOM);
    ("CLK", KCLK);
    ("COMPONENT", KCOMPONENT);
    ("CONST", KCONST);
    ("DIV", KDIV);
    ("DO", KDO);
    ("DOWNTO", KDOWNTO);
    ("ELSE", KELSE);
    ("ELSIF", KELSIF);
    ("END", KEND);
    ("FOR", KFOR);
    ("IF", KIF);
    ("IN", KIN);
    ("IS", KIS);
    ("LEFT", KLEFT);
    ("MOD", KMOD);
    ("NOT", KNOT);
    ("NUM", KNUM);
    ("OF", KOF);
    ("OR", KOR);
    ("ORDER", KORDER);
    ("OTHERWISE", KOTHERWISE);
    ("OTHERWISEWHEN", KOTHERWISEWHEN);
    ("OUT", KOUT);
    ("PARALLEL", KPARALLEL);
    ("RSET", KRSET);
    ("RESULT", KRESULT);
    ("RIGHT", KRIGHT);
    ("SEQUENTIAL", KSEQUENTIAL);
    ("SEQUENTIALLY", KSEQUENTIALLY);
    ("SIGNAL", KSIGNAL);
    ("THEN", KTHEN);
    ("TO", KTO);
    ("TOP", KTOP);
    ("TYPE", KTYPE);
    ("USES", KUSES);
    ("WHEN", KWHEN);
    ("WITH", KWITH);
  ]

let keyword_of_string s = List.assoc_opt s keyword_table

let keyword_to_string k =
  match List.find_opt (fun (_, k') -> k' = k) keyword_table with
  | Some (s, _) -> s
  | None -> assert false

let to_string = function
  | Ident s -> s
  | Number n -> string_of_int n
  | Keyword k -> keyword_to_string k
  | Plus -> "+"
  | Minus -> "-"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Dot -> "."
  | Dotdot -> ".."
  | Comma -> ","
  | Semi -> ";"
  | Colon -> ":"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "="
  | Neq -> "<>"
  | Assign -> ":="
  | Alias -> "=="
  | Star -> "*"
  | Eof -> "<eof>"

let pp ppf t = Fmt.string ppf (to_string t)
