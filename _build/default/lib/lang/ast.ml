(* Abstract syntax of Zeus, mirroring the EBNF of report section 7
   (main syntax + layout language syntax).

   Places where the printed grammar contradicts the examples are resolved
   as documented in DESIGN.md:
   - function-component actual type parameters are written in brackets
     (plus[n](a,b), section 3.2), so a call is
       ident { selector } [ "(" expr-list ")" ]
     and name resolution decides between signal reference and call;
   - the layout "basic" statement allows a bare signal (placement
     reference, possibly with an orientation change) in addition to the
     replacement form  signal "=" type. *)

open Zeus_base

type ident = {
  id : string;
  id_loc : Loc.t;
}

let ident ?(loc = Loc.dummy) id = { id; id_loc = loc }

(* ------------------------------------------------------------------ *)
(* Constant expressions (Modula-2 style, section 3.1)                  *)
(* ------------------------------------------------------------------ *)

type cbinop =
  | Cadd
  | Csub
  | Cor
  | Cmul
  | Cdiv
  | Cmod
  | Cand

type cunop =
  | Cneg
  | Cpos
  | Cnot

type crel =
  | Ceq
  | Cneq
  | Clt
  | Cle
  | Cgt
  | Cge

type const_expr =
  | Cnum of int * Loc.t
  | Cref of ident * const_expr list
      (* constant ident, FOR variable, type formal, or predefined function
         (min/max/odd) applied to arguments *)
  | Cbin of cbinop * const_expr * const_expr
  | Cun of cunop * const_expr
  | Crel of crel * const_expr * const_expr

let rec const_expr_loc = function
  | Cnum (_, loc) -> loc
  | Cref (id, _) -> id.id_loc
  | Cbin (_, a, b) -> Loc.merge (const_expr_loc a) (const_expr_loc b)
  | Cun (_, a) -> const_expr_loc a
  | Crel (_, a, b) -> Loc.merge (const_expr_loc a) (const_expr_loc b)

(* ------------------------------------------------------------------ *)
(* Signal constants: nested tuples over 0/1/ident/BIN (section 3.1)    *)
(* ------------------------------------------------------------------ *)

type sig_const =
  | Sc_value of int * Loc.t (* 0 or 1 *)
  | Sc_ref of ident (* UNDEF, NOINFL or a declared signal constant *)
  | Sc_bin of const_expr * const_expr * Loc.t (* BIN(a,b) *)
  | Sc_tuple of sig_const list * Loc.t

let sig_const_loc = function
  | Sc_value (_, loc) -> loc
  | Sc_ref id -> id.id_loc
  | Sc_bin (_, _, loc) -> loc
  | Sc_tuple (_, loc) -> loc

(* ------------------------------------------------------------------ *)
(* Types (section 3.2)                                                 *)
(* ------------------------------------------------------------------ *)

type mode =
  | Min
  | Mout
  | Minout

type ty =
  | Tname of ident * const_expr list (* ident [ "(" actuals ")" ] *)
  | Tarray of const_expr * const_expr * ty * Loc.t
  | Tcomponent of component_ty * Loc.t

and component_ty = {
  cparams : fparam list;
  chead_layout : layout_stmt list; (* layout block after the parameter list *)
  cresult : ty option; (* Some _ for function component types *)
  cbody : body option; (* None: record type (component without body) *)
}

and fparam = {
  fmode : mode;
  fnames : ident list;
  fty : ty;
}

and body = {
  buses : ident list option; (* None: no USES clause, environment visible *)
  bdecls : decl list;
  bbody_layout : layout_stmt list;
  bstmts : stmt list;
}

(* ------------------------------------------------------------------ *)
(* Declarations (section 3)                                            *)
(* ------------------------------------------------------------------ *)

and constant =
  | Knum of const_expr
  | Ksig of sig_const

and decl =
  | Dconst of (ident * constant) list
  | Dtype of type_def list
  | Dsignal of (ident list * ty) list

and type_def = {
  tname : ident;
  tformals : ident list; (* type parameters, e.g. bo(n) *)
  tty : ty;
}

(* ------------------------------------------------------------------ *)
(* Signals and expressions (section 4)                                 *)
(* ------------------------------------------------------------------ *)

and selector =
  | Sel_index of const_expr
  | Sel_range of const_expr * const_expr
  | Sel_num of signal_ref (* dynamic index: [NUM(sig)] *)
  | Sel_field of ident
  | Sel_field_range of ident * ident (* ".a..b" per grammar line 39 *)

and signal_ref =
  | Star of Loc.t
  | Sig of ident * selector list

and expr =
  | Eref of signal_ref
      (* also the head of a function call before name resolution when it
         has no argument tuple *)
  | Ecall of ident * const_expr list * expr list * Loc.t
      (* ident [params] ( args ) — resolved to function component call or
         re-interpreted as a connection at statement level *)
  | Ebin of const_expr * const_expr * Loc.t
  | Econst of sig_const
  | Estar of const_expr option * Loc.t (* "*" [":" width] *)
  | Etuple of expr list * Loc.t

and for_dir =
  | To
  | Downto

and stmt =
  | Sassign of signal_ref * expr * Loc.t (* ":=" *)
  | Salias of signal_ref * expr * Loc.t (* "==" *)
  | Sconnect of signal_ref * expr list * Loc.t (* sig ( actuals ) *)
  | Sfor of for_header * bool (* SEQUENTIALLY *) * stmt list * Loc.t
  | Swhen of (const_expr * stmt list) list * stmt list * Loc.t
      (* WHEN ... {OTHERWISEWHEN ...} [OTHERWISE ...]; the final list is
         the OTHERWISE branch (empty if absent) *)
  | Sif of (expr * stmt list) list * stmt list * Loc.t
      (* IF/ELSIF/ELSE; final list is ELSE branch *)
  | Sresult of expr * Loc.t
  | Sparallel of stmt list * Loc.t
  | Ssequential of stmt list * Loc.t
  | Swith of signal_ref * stmt list * Loc.t

and for_header = {
  fvar : ident;
  ffrom : const_expr;
  fdir : for_dir;
  fto : const_expr;
}

(* ------------------------------------------------------------------ *)
(* Layout language (section 6)                                         *)
(* ------------------------------------------------------------------ *)

and side =
  | Side_top
  | Side_right
  | Side_bottom
  | Side_left

and layout_stmt =
  | Lcell of ident option * signal_ref * Loc.t
      (* [orientationchange] signal : placement reference *)
  | Lreplace of ident option * signal_ref * ty * Loc.t
      (* [orientationchange] signal "=" type : virtual replacement *)
  | Lorder of ident * layout_stmt list * Loc.t
      (* ORDER directionOfSeparation ... END *)
  | Lfor of for_header * layout_stmt list * Loc.t
  | Lboundary of side * signal_ref list * Loc.t
  | Lwhen of (const_expr * layout_stmt list) list * layout_stmt list * Loc.t
  | Lwith of signal_ref * layout_stmt list * Loc.t

let stmt_loc = function
  | Sassign (_, _, loc)
  | Salias (_, _, loc)
  | Sconnect (_, _, loc)
  | Sfor (_, _, _, loc)
  | Swhen (_, _, loc)
  | Sif (_, _, loc)
  | Sresult (_, loc)
  | Sparallel (_, loc)
  | Ssequential (_, loc)
  | Swith (_, _, loc) -> loc

let expr_loc = function
  | Eref (Star loc) -> loc
  | Eref (Sig (id, _)) -> id.id_loc
  | Ecall (_, _, _, loc) -> loc
  | Ebin (_, _, loc) -> loc
  | Econst sc -> sig_const_loc sc
  | Estar (_, loc) -> loc
  | Etuple (_, loc) -> loc

let signal_ref_loc = function
  | Star loc -> loc
  | Sig (id, _) -> id.id_loc

let layout_stmt_loc = function
  | Lcell (_, _, loc)
  | Lreplace (_, _, _, loc)
  | Lorder (_, _, loc)
  | Lfor (_, _, loc)
  | Lboundary (_, _, loc)
  | Lwhen (_, _, loc)
  | Lwith (_, _, loc) -> loc

(* A Zeus program ("Hardware") is a sequence of declarations. *)
type program = decl list

(* Names of the eight legal directions of separation (section 6.2). *)
let directions_of_separation =
  [
    "toptobottom";
    "bottomtotop";
    "lefttoright";
    "righttoleft";
    "toplefttobottomright";
    "bottomrighttotopleft";
    "toprighttobottomleft";
    "bottomlefttotopright";
  ]

(* Names of the seven legal orientation changes (section 6.3): all
   elements of the dihedral group except the identity. *)
let orientation_changes =
  [ "rotate90"; "rotate180"; "rotate270"; "flip0"; "flip45"; "flip90"; "flip135" ]
