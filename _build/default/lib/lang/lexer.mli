(** Hand-written lexer for the Zeus vocabulary (report section 2):
    identifiers, decimal numbers with an optional [B]/[b] octal suffix,
    the special symbols, the reserved words, and nestable [<* ... *>]
    comments.  Lexical errors are recorded in the bag and lexing
    continues. *)

open Zeus_base

type state

val create : ?bag:Diag.Bag.t -> string -> state

(** Next token; returns [Token.Eof] forever at end of input. *)
val next : state -> Token.located

(** Lex the whole input into an array ending in [Token.Eof] — the parser
    backtracks by index into this array. *)
val tokenize : ?bag:Diag.Bag.t -> string -> Token.located array
