(** Pretty-printer from the AST back to Zeus concrete syntax.  The output
    re-parses to an identical tree (a property pinned by the round-trip
    tests). *)

open Ast

val pp_const_expr : const_expr Fmt.t
val pp_sig_const : sig_const Fmt.t
val pp_signal_ref : signal_ref Fmt.t
val pp_expr : expr Fmt.t
val pp_ty : ty Fmt.t
val pp_stmt : stmt Fmt.t
val pp_layout_stmt : layout_stmt Fmt.t
val pp_decl : decl Fmt.t
val pp_program : program Fmt.t

val program_to_string : program -> string
val expr_to_string : expr -> string
val const_expr_to_string : const_expr -> string
val ty_to_string : ty -> string
val stmt_to_string : stmt -> string
