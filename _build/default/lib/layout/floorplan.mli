(** The floorplanner: interprets the per-instance placement trees
    recorded during elaboration (report section 6).

    Each ORDER statement stacks its children edge-to-edge along its
    direction of separation; instances without layout information are
    unit cells.  Since the language is metric-free, what the model
    preserves is relative structure and asymptotic area — e.g. the
    H-tree's linear area, experiment E3. *)

open Zeus_sem

type placement = {
  iid : int;
  path : string;
  type_name : string;
  rect : Geom.rect; (** absolute, in layout units *)
  orient : Layout_ir.orientation option; (** accumulated orientation *)
  leaf : bool; (** no placed children of its own *)
}

type plan = {
  top_iid : int;
  top_path : string;
  width : int;
  height : int;
  cells : placement list; (** all placed instances, recursively *)
  boundary_pins : (Layout_ir.side * string) list;
}

(** Floorplan of one instance. *)
val of_instance : Elaborate.design -> Netlist.instance -> plan

(** Floorplan of a top-level signal by name; [None] if there is no such
    instance. *)
val of_design : Elaborate.design -> string -> plan option

(** Bounding-box size of an instance (1x1 for leaf cells). *)
val instance_size : Elaborate.design -> int -> int * int

val area : plan -> int

(** Pairs of placed {e leaf} cells whose rectangles overlap — must be
    empty for a well-formed layout. *)
val overlaps : plan -> (string * string) list
