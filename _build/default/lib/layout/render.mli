(** ASCII rendering of floorplans: one character per layout unit, leaf
    cells drawn with the initial of their type name, plus a header line
    and the boundary pins. *)

val to_string : Floorplan.plan -> string
