(** Rectangles and the dihedral-group orientation changes of report
    section 6.3.  Zeus layout is metric-free — cells are unit rectangles
    composed by bounding boxes — so integer coordinates suffice. *)

open Zeus_sem

type rect = {
  x : int;
  y : int; (** y grows downward, like the report's figures *)
  w : int;
  h : int;
}

val rect : x:int -> y:int -> w:int -> h:int -> rect
val area : rect -> int
val right : rect -> int
val bottom : rect -> int
val translate : rect -> dx:int -> dy:int -> rect

(** Smallest rectangle containing both. *)
val union : rect -> rect -> rect

(** Strict interior overlap (sharing an edge is not overlap). *)
val overlap : rect -> rect -> bool

val pp : rect Fmt.t

(** Bounding-box size after an orientation change: quarter turns and
    diagonal mirrors transpose width and height. *)
val oriented_size : Layout_ir.orientation option -> int * int -> int * int

(** Composition in the dihedral group D4; [None] is the identity.
    [compose a b] applies [b] first, then [a]. *)
val compose :
  Layout_ir.orientation option ->
  Layout_ir.orientation option ->
  Layout_ir.orientation option
