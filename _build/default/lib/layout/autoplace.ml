(* Automatic placement — the "silicon compiler" application of report
   section 9 in miniature.

   Where the layout sub-language lets the designer state placements
   explicitly, this pass derives one from the netlist alone: instances
   are levelized by the combinational depth of their input pins and laid
   out column-per-level (a classic dataflow placement).  The result uses
   the same [Floorplan.plan] shape, so the renderer and the wirelength
   estimator below apply to both explicit and automatic plans — which is
   exactly the comparison the autoplace benchmark makes. *)

open Zeus_sem

(* combinational depth per canonical net *)
let net_depths nl =
  let adj = Check.dependency_graph nl in
  let n = Array.length adj in
  let preds = Array.make n [] in
  Array.iteri
    (fun src dsts -> List.iter (fun d -> preds.(d) <- src :: preds.(d)) dsts)
    adj;
  let memo = Array.make n (-1) in
  let rec go v =
    if memo.(v) >= 0 then memo.(v)
    else begin
      memo.(v) <- 0;
      let d = List.fold_left (fun acc p -> max acc (1 + go p)) 0 preds.(v) in
      memo.(v) <- d;
      d
    end
  in
  for v = 0 to n - 1 do
    ignore (go v)
  done;
  memo

(* The placeable cells under a root: the shallowest descendants that
   have net-bearing ports.  Usually these are the direct children (the
   granularity the designer's ORDER statements use); where a child's
   interface consists only of embedded component parameters (e.g. the
   pattern matcher's pe[i] with comp/acc fields), descend to the
   components that actually own pins. *)
let placeable design root_path =
  let nl = design.Elaborate.netlist in
  let prefix = root_path ^ "." in
  let under =
    List.filter
      (fun (i : Netlist.instance) ->
        (not i.Netlist.is_function_call)
        && String.length i.Netlist.ipath > String.length prefix
        && String.sub i.Netlist.ipath 0 (String.length prefix) = prefix)
      (Netlist.instances nl)
  in
  let has_nets (i : Netlist.instance) =
    List.exists (fun (_, _, nets) -> nets <> []) i.Netlist.iports
  in
  let with_nets =
    List.filter_map
      (fun i -> if has_nets i then Some i.Netlist.ipath else None)
      under
  in
  let ancestor_has_nets (i : Netlist.instance) =
    List.exists
      (fun p ->
        p <> i.Netlist.ipath
        && String.length i.Netlist.ipath > String.length p
        && String.sub i.Netlist.ipath 0 (String.length p) = p
        && (i.Netlist.ipath.[String.length p] = '.'
           || i.Netlist.ipath.[String.length p] = '['))
      with_nets
  in
  List.filter (fun i -> has_nets i && not (ancestor_has_nets i)) under

let level_of_instance nl depths (i : Netlist.instance) =
  List.fold_left
    (fun acc (_, mode, nets) ->
      match mode with
      | Etype.In | Etype.Inout ->
          List.fold_left
            (fun acc id -> max acc depths.(Netlist.canonical nl id))
            acc nets
      | Etype.Out -> acc)
    0 i.Netlist.iports

(* bucket instances into columns by input depth, preserving declaration
   order within a column *)
let place design top =
  let nl = design.Elaborate.netlist in
  match
    List.find_opt
      (fun (i : Netlist.instance) -> i.Netlist.ipath = top)
      (Netlist.instances nl)
  with
  | None -> None
  | Some root ->
      let cells = placeable design top in
      if cells = [] then None
      else begin
        let depths = net_depths nl in
        let levelled =
          List.map (fun i -> (level_of_instance nl depths i, i)) cells
        in
        let levels =
          List.sort_uniq compare (List.map fst levelled)
        in
        let columns =
          List.map
            (fun l -> List.filter_map
                 (fun (l', i) -> if l = l' then Some i else None)
                 levelled)
            levels
        in
        let height =
          List.fold_left (fun acc col -> max acc (List.length col)) 0 columns
        in
        let cells =
          List.concat
            (List.mapi
               (fun x col ->
                 List.mapi
                   (fun y (i : Netlist.instance) ->
                     {
                       Floorplan.iid = i.Netlist.iid;
                       path = i.Netlist.ipath;
                       type_name = i.Netlist.itype;
                       rect = Geom.rect ~x ~y ~w:1 ~h:1;
                       orient = None;
                       leaf = true;
                     })
                   col)
               columns)
        in
        Some
          {
            Floorplan.top_iid = root.Netlist.iid;
            top_path = top;
            width = List.length columns;
            height;
            cells;
            boundary_pins = [];
          }
      end

(* ------------------------------------------------------------------ *)
(* Wirelength estimation                                                *)
(* ------------------------------------------------------------------ *)

(* Manhattan distance between the centres (x2 to stay integral) of the
   placed cells connected by each driver/gate edge.  A net that is not
   itself a pin of a placed cell (e.g. the carry array of the ripple
   adder, or gate outputs inside an unplaced sub-component) inherits the
   location of whatever produces it, so wiring that passes through local
   signals is still accounted between its placed endpoints. *)
let wirelength design (plan : Floorplan.plan) =
  let nl = design.Elaborate.netlist in
  let where = Hashtbl.create 64 in
  List.iter
    (fun (p : Floorplan.placement) ->
      Hashtbl.replace where p.Floorplan.iid
        ( (2 * p.Floorplan.rect.Geom.x) + p.Floorplan.rect.Geom.w,
          (2 * p.Floorplan.rect.Geom.y) + p.Floorplan.rect.Geom.h ))
    plan.Floorplan.cells;
  (* producers per canonical net, to chase locations through locals *)
  let n = Netlist.net_count nl in
  let producers = Array.make n [] in
  let add_producer target src =
    match src with
    | Netlist.Snet s ->
        let t = Netlist.canonical nl target in
        producers.(t) <- Netlist.canonical nl s :: producers.(t)
    | Netlist.Sconst _ -> ()
  in
  List.iter
    (fun (d : Netlist.driver) -> add_producer d.Netlist.target d.Netlist.source)
    (Netlist.drivers nl);
  List.iter
    (fun (g : Netlist.gate) ->
      List.iter (add_producer g.Netlist.output) g.Netlist.inputs)
    (Netlist.gates nl);
  let memo = Hashtbl.create 64 in
  let rec owner depth id =
    let id = Netlist.canonical nl id in
    match Hashtbl.find_opt memo id with
    | Some o -> o
    | None ->
        Hashtbl.replace memo id None (* cycle guard *);
        let o =
          match (Netlist.net nl id).Netlist.pin with
          | Some (iid, _) when Hashtbl.mem where iid ->
              Hashtbl.find_opt where iid
          | _ ->
              if depth > 8 then None
              else (
                match producers.(id) with
                | [ p ] -> owner (depth + 1) p
                | _ -> None)
        in
        Hashtbl.replace memo id o;
        o
  in
  let dist a b =
    match (owner 0 a, owner 0 b) with
    | Some (x1, y1), Some (x2, y2) -> abs (x1 - x2) + abs (y1 - y2)
    | _ -> 0
  in
  let of_src target = function
    | Netlist.Snet s -> dist s target
    | Netlist.Sconst _ -> 0
  in
  let total = ref 0 in
  List.iter
    (fun (d : Netlist.driver) ->
      total := !total + of_src d.Netlist.target d.Netlist.source;
      Option.iter
        (fun g -> total := !total + of_src d.Netlist.target g)
        d.Netlist.guard)
    (Netlist.drivers nl);
  List.iter
    (fun (g : Netlist.gate) ->
      List.iter
        (fun i -> total := !total + of_src g.Netlist.output i)
        g.Netlist.inputs)
    (Netlist.gates nl);
  !total
