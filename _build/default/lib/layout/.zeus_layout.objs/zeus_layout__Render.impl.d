lib/layout/render.ml: Array Buffer Floorplan Fmt Geom List Printf String Zeus_sem
