lib/layout/floorplan.mli: Elaborate Geom Layout_ir Netlist Zeus_sem
