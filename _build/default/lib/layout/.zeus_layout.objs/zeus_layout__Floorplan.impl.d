lib/layout/floorplan.ml: Elaborate Geom Hashtbl Layout_ir List Netlist Zeus_sem
