lib/layout/render.mli: Floorplan
