lib/layout/geom.mli: Fmt Layout_ir Zeus_sem
