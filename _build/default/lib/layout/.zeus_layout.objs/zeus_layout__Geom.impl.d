lib/layout/geom.ml: Fmt Layout_ir Zeus_sem
