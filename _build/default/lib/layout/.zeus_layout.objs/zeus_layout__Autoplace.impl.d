lib/layout/autoplace.ml: Array Check Elaborate Etype Floorplan Geom Hashtbl List Netlist Option String Zeus_sem
