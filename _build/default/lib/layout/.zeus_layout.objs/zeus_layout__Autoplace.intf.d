lib/layout/autoplace.mli: Elaborate Floorplan Zeus_sem
