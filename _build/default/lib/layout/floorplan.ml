(* The floorplanner: interprets the per-instance placement trees
   (Layout_ir) recorded during elaboration.

   Semantics of section 6: each ORDER (and replication) statement defines
   a bounding rectangle containing its components; "x1 lefttoright x2"
   means x1's bounding box lies strictly left of x2's, and similarly for
   the other seven directions.  We realise the minimal packing: children
   are stacked edge-to-edge along the direction, centred on the cross
   axis for straight directions, and offset in both axes for the
   diagonal ones.

   An instance without layout information is a unit cell (1x1): Zeus is
   metric-free, so relative areas — e.g. the H-tree's linear area, the
   experiment of E3 — are what the model preserves. *)

open Zeus_sem

type placement = {
  iid : int;
  path : string;
  type_name : string;
  rect : Geom.rect;
  orient : Layout_ir.orientation option;
  leaf : bool; (* no placed children of its own *)
}

type plan = {
  top_iid : int;
  top_path : string;
  width : int;
  height : int;
  cells : placement list; (* leaf-level placed cells, absolute coords *)
  boundary_pins : (Layout_ir.side * string) list;
}

(* size of one instance: its layout's bounding box, or 1x1 *)
let rec instance_size design iid =
  match Hashtbl.find_opt design.Elaborate.layouts iid with
  | None | Some [] -> (1, 1)
  | Some items ->
      let w, h, _ = pack_list design Layout_ir.Left_to_right items in
      (max w 1, max h 1)

(* pack a list of layout items along [dir]; returns (w, h, children)
   where children are placements relative to the box origin *)
and pack_list design dir items =
  let sized =
    List.filter_map
      (fun item ->
        match item with
        | Layout_ir.Boundary _ -> None
        | Layout_ir.Cell (orient, iid) ->
            let sz = Geom.oriented_size orient (instance_size design iid) in
            Some (sz, `Cell (orient, iid))
        | Layout_ir.Order (d, sub) ->
            let w, h, kids = pack_list design d sub in
            Some ((w, h), `Group kids))
      items
  in
  let horiz dxsel dysel =
    (* generic stacking: each child advances by dxsel/dysel of its size *)
    let x = ref 0 and y = ref 0 and maxw = ref 0 and maxh = ref 0 in
    let placed =
      List.map
        (fun ((w, h), payload) ->
          let px = !x and py = !y in
          x := !x + dxsel (w, h);
          y := !y + dysel (w, h);
          maxw := max !maxw (px + w);
          maxh := max !maxh (py + h);
          (px, py, (w, h), payload))
        sized
    in
    (!maxw, !maxh, placed)
  in
  let w, h, placed =
    match dir with
    | Layout_ir.Left_to_right | Layout_ir.Right_to_left ->
        horiz (fun (w, _) -> w) (fun _ -> 0)
    | Layout_ir.Top_to_bottom | Layout_ir.Bottom_to_top ->
        horiz (fun _ -> 0) (fun (_, h) -> h)
    | Layout_ir.Topleft_to_bottomright | Layout_ir.Bottomright_to_topleft
    | Layout_ir.Topright_to_bottomleft | Layout_ir.Bottomleft_to_topright ->
        horiz (fun (w, _) -> w) (fun (_, h) -> h)
  in
  (* the "reversed" directions lay out the same boxes mirrored *)
  let mirror_x = (dir = Layout_ir.Right_to_left
                  || dir = Layout_ir.Bottomright_to_topleft
                  || dir = Layout_ir.Topright_to_bottomleft) in
  let mirror_y = (dir = Layout_ir.Bottom_to_top
                  || dir = Layout_ir.Bottomright_to_topleft
                  || dir = Layout_ir.Bottomleft_to_topright) in
  let placed =
    List.map
      (fun (px, py, (cw, ch), payload) ->
        let px = if mirror_x then w - px - cw else px in
        let py = if mirror_y then h - py - ch else py in
        (px, py, (cw, ch), payload))
      placed
  in
  let children =
    List.concat_map
      (fun (px, py, (cw, ch), payload) ->
        match payload with
        | `Cell (orient, iid) ->
            [ (Geom.rect ~x:px ~y:py ~w:cw ~h:ch, orient, Some iid) ]
        | `Group kids ->
            List.map
              (fun (r, o, i) -> (Geom.translate r ~dx:px ~dy:py, o, i))
              kids)
      placed
  in
  (w, h, children)

(* absolute placements of every cell under [iid], recursively descending
   into placed children *)
let rec place design nl iid ~origin ~orient acc =
  match Hashtbl.find_opt design.Elaborate.layouts iid with
  | None | Some [] -> acc
  | Some items ->
      let _, _, children = pack_list design Layout_ir.Left_to_right items in
      List.fold_left
        (fun acc (r, o, child) ->
          match child with
          | None -> acc
          | Some cid ->
              let inst =
                List.find
                  (fun (i : Netlist.instance) -> i.Netlist.iid = cid)
                  (Netlist.instances nl)
              in
              let ox, oy = origin in
              let rect = Geom.translate r ~dx:ox ~dy:oy in
              let o = Geom.compose orient o in
              let leaf =
                match Hashtbl.find_opt design.Elaborate.layouts cid with
                | None | Some [] -> true
                | Some items ->
                    not
                      (List.exists
                         (function
                           | Layout_ir.Boundary _ -> false
                           | Layout_ir.Cell _ | Layout_ir.Order _ -> true)
                         items)
              in
              let acc =
                {
                  iid = cid;
                  path = inst.Netlist.ipath;
                  type_name = inst.Netlist.itype;
                  rect;
                  orient = o;
                  leaf;
                }
                :: acc
              in
              place design nl cid ~origin:(rect.Geom.x, rect.Geom.y) ~orient:o
                acc)
        acc children

let boundary_pins design iid =
  match Hashtbl.find_opt design.Elaborate.layouts iid with
  | None -> []
  | Some items ->
      List.concat_map
        (function
          | Layout_ir.Boundary (side, pins) ->
              List.map (fun (name, _) -> (side, name)) pins
          | _ -> [])
        items

let of_instance design (inst : Netlist.instance) =
  let nl = design.Elaborate.netlist in
  let iid = inst.Netlist.iid in
  let w, h = instance_size design iid in
  {
    top_iid = iid;
    top_path = inst.Netlist.ipath;
    width = w;
    height = h;
    cells = List.rev (place design nl iid ~origin:(0, 0) ~orient:None []);
    boundary_pins = boundary_pins design iid;
  }

(* plan for a top-level signal by name *)
let of_design design name =
  let nl = design.Elaborate.netlist in
  match
    List.find_opt
      (fun (i : Netlist.instance) -> i.Netlist.ipath = name)
      (Netlist.instances nl)
  with
  | Some inst -> Some (of_instance design inst)
  | None -> None

let area plan = plan.width * plan.height

(* no two placed leaf cells may overlap — the structural invariant of
   the order semantics (non-leaf boxes legitimately contain their own
   children) *)
let overlaps plan =
  let leaves = List.filter (fun c -> c.leaf) plan.cells in
  let rec pairs = function
    | [] -> []
    | c :: rest ->
        List.filter_map
          (fun c' ->
            if Geom.overlap c.rect c'.rect then Some (c.path, c'.path)
            else None)
          rest
        @ pairs rest
  in
  pairs leaves
