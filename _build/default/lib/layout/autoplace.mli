(** Automatic placement — the "input language to a silicon compiler"
    application of report section 9, in miniature: instances are
    levelized by the combinational depth of their input pins and placed
    column-per-level.  Results share {!Floorplan.plan}, so the renderer
    and the wirelength estimator apply to both explicit and automatic
    layouts. *)

open Zeus_sem

(** Dataflow placement of the leaf instances under a top-level signal;
    [None] if there is no such instance or nothing to place. *)
val place : Elaborate.design -> string -> Floorplan.plan option

(** Estimated total Manhattan wirelength (in half layout units) over all
    driver and gate edges whose endpoints are pins of two different
    placed instances. *)
val wirelength : Elaborate.design -> Floorplan.plan -> int
