(* ASCII rendering of floorplans, for the CLI and the layout examples. *)

let cell_char (p : Floorplan.placement) =
  match p.Floorplan.type_name with
  | "" -> '?'
  | t -> t.[0]

(* Draw leaf cells (cells with no placed children of their own) into a
   character grid.  One grid character per layout unit. *)
let to_string (plan : Floorplan.plan) =
  let w = max plan.Floorplan.width 1 and h = max plan.Floorplan.height 1 in
  if w > 400 || h > 400 then
    Fmt.str "<floorplan %dx%d too large to draw>" w h
  else begin
    let grid = Array.make_matrix h w '.' in
    List.iter
      (fun (p : Floorplan.placement) ->
        let r = p.Floorplan.rect in
        if Geom.area r = 1 then begin
          let x = r.Geom.x and y = r.Geom.y in
          if x >= 0 && x < w && y >= 0 && y < h then
            grid.(y).(x) <- cell_char p
        end)
      plan.Floorplan.cells;
    let buf = Buffer.create ((w + 1) * h) in
    Buffer.add_string buf
      (Printf.sprintf "%s: %dx%d (area %d, %d cells)\n" plan.Floorplan.top_path
         w h (Floorplan.area plan)
         (List.length plan.Floorplan.cells));
    Array.iter
      (fun row ->
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    List.iter
      (fun (side, pin) ->
        Buffer.add_string buf
          (Printf.sprintf "pin %s: %s\n" (Zeus_sem.Layout_ir.side_to_string side) pin))
      plan.Floorplan.boundary_pins;
    Buffer.contents buf
  end
