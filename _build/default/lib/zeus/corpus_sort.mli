(** The odd-even transposition sorter ([srt]), answering section 9's
    invitation to describe Thompson-style sorting circuits in Zeus;
    re-exported as {!Corpus.sorter}. *)

val sorter : n:int -> w:int -> string
