(* Small sequential machines — the "finite state machines, multiplexors"
   of the report's abstract — written in Zeus.  Each is a classic idiom:
   a binary counter, a shift register, a Fibonacci LFSR, a serial adder
   and a Gray-code counter.

   Note the Zeus discipline at work: the carry chains are computed
   unconditionally (local booleans may not be assigned inside an IF,
   type rules (1)); only the register inputs — IN pins of instantiated
   components, exception 1 — are driven conditionally. *)

(* n-bit binary up-counter with enable; index 1 is the MSB *)
let counter n =
  Printf.sprintf
    {zeus|
TYPE counter = COMPONENT (IN en: boolean; OUT value: ARRAY[1..%d] OF boolean) IS
SIGNAL st: ARRAY[1..%d] OF REG;
       carry: ARRAY[1..%d] OF boolean;
BEGIN
  carry[%d] := 1;
  FOR i := %d DOWNTO 2 DO carry[i-1] := AND(carry[i],st[i].out) END;
  IF RSET THEN st.in := BIN(0,%d)
  ELSIF en THEN
    FOR i := 1 TO %d DO st[i].in := XOR(st[i].out,carry[i]) END;
  END;
  value := st.out
END;

SIGNAL c: counter;
|zeus}
    n n n n n n n

(* serial-in shift register, q[1] is the most recent bit *)
let shift_register n =
  Printf.sprintf
    {zeus|
TYPE shiftreg = COMPONENT (IN d, en: boolean; OUT q: ARRAY[1..%d] OF boolean) IS
SIGNAL st: ARRAY[1..%d] OF REG;
BEGIN
  IF RSET THEN st.in := BIN(0,%d)
  ELSIF en THEN
    st[1].in := d;
    FOR i := 2 TO %d DO st[i].in := st[i-1].out END;
  END;
  q := st.out
END;

SIGNAL sr: shiftreg;
|zeus}
    n n n n

(* 4-bit Fibonacci LFSR with taps at bits 4 and 3 (period 15) *)
let lfsr4 =
  {zeus|
TYPE lfsr = COMPONENT (IN en: boolean; OUT q: ARRAY[1..4] OF boolean) IS
SIGNAL st: ARRAY[1..4] OF REG;
BEGIN
  IF RSET THEN st.in := (1,0,0,0)
  ELSIF en THEN
    st[1].in := XOR(st[4].out,st[3].out);
    FOR i := 2 TO 4 DO st[i].in := st[i-1].out END;
  END;
  q := st.out
END;

SIGNAL l: lfsr;
|zeus}

(* bit-serial adder: one full adder plus a carry flip-flop *)
let serial_adder =
  {zeus|
TYPE serialadder = COMPONENT (IN a, b: boolean; OUT s: boolean) IS
SIGNAL c: REG;
BEGIN
  IF RSET THEN c.in := 0
  ELSE c.in := OR(AND(a,b),AND(XOR(a,b),c.out))
  END;
  s := XOR(XOR(a,b),c.out)
END;

SIGNAL sa: serialadder;
|zeus}

(* Gray-code counter: a binary counter with an XOR output stage *)
let gray_counter n =
  Printf.sprintf
    {zeus|
TYPE gray = COMPONENT (IN en: boolean; OUT g: ARRAY[1..%d] OF boolean) IS
SIGNAL st: ARRAY[1..%d] OF REG;
       carry: ARRAY[1..%d] OF boolean;
BEGIN
  carry[%d] := 1;
  FOR i := %d DOWNTO 2 DO carry[i-1] := AND(carry[i],st[i].out) END;
  IF RSET THEN st.in := BIN(0,%d)
  ELSIF en THEN
    FOR i := 1 TO %d DO st[i].in := XOR(st[i].out,carry[i]) END;
  END;
  g[1] := st[1].out;
  FOR i := 2 TO %d DO g[i] := XOR(st[i-1].out,st[i].out) END;
END;

SIGNAL gc: gray;
|zeus}
    n n n n n n n n

(* a parameterized multiplexor via NUM — the general form of section
   3.2's mux4 *)
let muxn ~inputs ~selbits =
  Printf.sprintf
    {zeus|
TYPE muxn = COMPONENT (IN d: ARRAY[0..%d] OF boolean;
                       IN sel: ARRAY[1..%d] OF boolean;
                       OUT z: boolean) IS
BEGIN
  z := d[NUM(sel)]
END;

SIGNAL m: muxn;
|zeus}
    (inputs - 1) selbits

(* A two-request arbiter resolving simultaneous requests with the
   predefined RANDOM source — section 7 lists RANDOM precisely "for
   describing bistable elements" whose metastable resolution is
   nondeterministic. *)
let arbiter =
  {zeus|
TYPE arbiter = COMPONENT (IN req1, req2: boolean; OUT gnt1, gnt2: boolean) IS
SIGNAL coin: boolean;
BEGIN
  coin := RANDOM();
  IF AND(req1,NOT req2) THEN gnt1 := 1 END;
  IF AND(req2,NOT req1) THEN gnt2 := 1 END;
  IF AND(req1,req2) THEN
    IF coin THEN gnt1 := 1 ELSE gnt2 := 1 END
  END;
END;

SIGNAL arb: arbiter;
|zeus}

let all_named =
  [
    ("counter8", counter 8);
    ("arbiter", arbiter);
    ("shiftreg8", shift_register 8);
    ("lfsr4", lfsr4);
    ("serial_adder", serial_adder);
    ("gray4", gray_counter 4);
    ("mux8", muxn ~inputs:8 ~selbits:3);
  ]
