lib/zeus/testbench.mli: Fmt Format Zeus_base Zeus_sem Zeus_sim
