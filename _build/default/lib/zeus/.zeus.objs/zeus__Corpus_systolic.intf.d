lib/zeus/corpus_systolic.mli:
