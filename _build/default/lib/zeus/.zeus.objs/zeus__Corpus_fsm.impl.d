lib/zeus/corpus_fsm.ml: Printf
