lib/zeus/corpus.ml: Corpus_am2901 Corpus_sort Corpus_systolic Printf
