lib/zeus/testbench.ml: Fmt List String Zeus_base Zeus_sim
