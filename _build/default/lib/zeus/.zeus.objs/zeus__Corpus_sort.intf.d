lib/zeus/corpus_sort.mli:
