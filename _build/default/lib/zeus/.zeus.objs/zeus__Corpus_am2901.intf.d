lib/zeus/corpus_am2901.mli:
