lib/zeus/corpus.mli:
