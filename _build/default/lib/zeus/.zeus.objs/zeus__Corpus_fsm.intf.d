lib/zeus/corpus_fsm.mli:
