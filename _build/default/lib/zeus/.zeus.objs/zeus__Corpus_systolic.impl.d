lib/zeus/corpus_systolic.ml: Printf
