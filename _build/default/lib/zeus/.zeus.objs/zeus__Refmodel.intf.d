lib/zeus/refmodel.mli:
