lib/zeus/zeus.ml: Corpus Corpus_fsm Fmt Printexc Refmodel Testbench Zeus_base Zeus_lang Zeus_layout Zeus_sem Zeus_sim
