lib/zeus/corpus_sort.ml: Printf
