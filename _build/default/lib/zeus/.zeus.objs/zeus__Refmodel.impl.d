lib/zeus/refmodel.ml: Array List
