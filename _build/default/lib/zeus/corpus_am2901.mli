(** The AM2901 bit-slice ALU in Zeus (named in the report's abstract);
    re-exported as {!Corpus.am2901}.  See the implementation header for
    the instruction encoding. *)

val am2901 : string
