(* An odd-even transposition sorter — answering section 9's invitation to
   describe published circuits (Thompson 1981, "VLSI Complexity of
   Sorting") in Zeus.

   n words of w bits held in registers; each cycle compare-exchanges
   adjacent pairs, alternating between the odd-indexed and even-indexed
   pairs under a phase flip-flop.  After n cycles the array is sorted
   ascending.

   The design leans on exactly the discipline the report centres on:
   v[i].in is conditionally driven by the load path, by pair (i-1,i) and
   by pair (i,i+1) — statically that is multiple conditional assignment,
   legal only because the guards are disjoint at runtime (pairs alternate
   with the phase), which the simulator's multiple-drive check verifies
   on every cycle. *)

let sorter ~n ~w =
  Printf.sprintf
    {zeus|
TYPE word = ARRAY[1..%d] OF boolean;

gtw = COMPONENT (IN a, b: word) : boolean IS
SIGNAL g: ARRAY[1..%d] OF boolean;
BEGIN
  <* g[i] = 1 iff a[i..] > b[i..], MSB first *>
  g[%d] := AND(a[%d],NOT b[%d]);
  FOR i := %d DOWNTO 1 DO
    g[i] := OR(AND(a[i],NOT b[i]),AND(EQUAL(a[i],b[i]),g[i+1]))
  END;
  RESULT g[1]
END;

sorter = COMPONENT (IN load: boolean; IN din: ARRAY[1..%d] OF word;
                    OUT dout: ARRAY[1..%d] OF word) IS
SIGNAL v: ARRAY[1..%d] OF ARRAY[1..%d] OF REG;
       phase, valid: REG;
       swap: ARRAY[1..%d] OF boolean;
BEGIN
  FOR i := 1 TO %d DO
    swap[i] := gtw(v[i].out,v[i+1].out)
  END;
  <* valid gates the compare-exchange phase: before the first load the
     registers hold UNDEF and the pair guards would fire spuriously *>
  IF RSET THEN phase.in := 0; valid.in := 0
  ELSIF load THEN
    phase.in := 0;
    valid.in := 1;
    FOR i := 1 TO %d DO v[i].in := din[i] END
  ELSIF valid.out THEN
    phase.in := NOT phase.out;
    FOR i := 1 TO %d DO
      WHEN odd(i) THEN
        IF AND(NOT phase.out,swap[i]) THEN
          v[i].in := v[i+1].out;
          v[i+1].in := v[i].out
        END
      OTHERWISE
        IF AND(phase.out,swap[i]) THEN
          v[i].in := v[i+1].out;
          v[i+1].in := v[i].out
        END
      END
    END
  END;
  dout := v.out
END;

SIGNAL srt: sorter;
|zeus}
    w w w w w (w - 1) n n n w (n - 1) (n - 1) n (n - 1)
