(** The systolic designs of the report's abstract and citation list
    (Guibas/Liang, Ottmann/Rosenberg/Stockmeyer), re-exported through
    {!Corpus}. *)

(** Systolic stack ([st]): one cycle per push/pop at any depth. *)
val stack : depth:int -> width:int -> string

(** Systolic priority queue ([pq]): one-cycle insert/extract-min; empty
    cells power up at the all-ones maximum via REG(1). *)
val priority_queue : slots:int -> width:int -> string

(** Dictionary machine ([dict]): INSERT/DELETE/MEMBER with an OR-chain
    reduction. *)
val dictionary : slots:int -> keybits:int -> string
