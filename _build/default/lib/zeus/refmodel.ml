(* Pure-OCaml golden models for the larger corpus designs, used by the
   differential tests and the benchmark harness. *)

(* ------------------------------------------------------------------ *)
(* AM2901                                                               *)
(* ------------------------------------------------------------------ *)

module Am2901 = struct
  type t = {
    ram : int array; (* 16 x 4-bit *)
    mutable q : int;
  }

  type result = {
    y : int;
    cout : bool;
    fzero : bool;
    f3 : bool;
  }

  let create () = { ram = Array.make 16 0; q = 0 }

  let mask4 v = v land 0xf

  (* one clocked instruction; [i] is the 9-bit code with the source in
     the top three bits (matching the MSB-first Zeus encoding) *)
  let step t ~i ~a ~b ~d ~cin =
    let src = (i lsr 6) land 7
    and fn = (i lsr 3) land 7
    and dst = i land 7 in
    let av = t.ram.(a) and bv = t.ram.(b) in
    let r, s =
      match src with
      | 0 -> (av, t.q)
      | 1 -> (av, bv)
      | 2 -> (0, t.q)
      | 3 -> (0, bv)
      | 4 -> (0, av)
      | 5 -> (d, av)
      | 6 -> (d, t.q)
      | _ -> (d, 0)
    in
    let ci = if cin then 1 else 0 in
    let wide =
      match fn with
      | 0 -> r + s + ci
      | 1 -> s + (lnot r land 0xf) + ci
      | 2 -> r + (lnot s land 0xf) + ci
      | 3 -> r lor s
      | 4 -> r land s
      | 5 -> lnot r land s land 0xf
      | 6 -> r lxor s
      | _ -> lnot (r lxor s) land 0xf
    in
    let f = mask4 wide in
    let cout = fn <= 2 && wide > 0xf in
    (* destination *)
    (match dst with
    | 0 -> t.q <- f
    | 1 -> ()
    | 2 | 3 -> t.ram.(b) <- f
    | 4 ->
        t.ram.(b) <- f lsr 1;
        t.q <- t.q lsr 1
    | 5 -> t.ram.(b) <- f lsr 1
    | 6 ->
        t.ram.(b) <- mask4 (f lsl 1);
        t.q <- mask4 (t.q lsl 1)
    | _ -> t.ram.(b) <- mask4 (f lsl 1));
    {
      y = (if dst = 2 then av else f);
      cout;
      fzero = f = 0;
      f3 = f land 8 <> 0;
    }
end

(* ------------------------------------------------------------------ *)
(* Systolic stack                                                       *)
(* ------------------------------------------------------------------ *)

module Stack = struct
  type t = {
    cells : int array; (* cell 0 is the top *)
  }

  let create ~depth = { cells = Array.make depth 0 }

  let top t = t.cells.(0)

  let push t v =
    let n = Array.length t.cells in
    Array.blit t.cells 0 t.cells 1 (n - 1);
    t.cells.(0) <- v

  let pop t =
    let n = Array.length t.cells in
    Array.blit t.cells 1 t.cells 0 (n - 1);
    t.cells.(n - 1) <- 0
end

(* ------------------------------------------------------------------ *)
(* Systolic priority queue: a sorted array of fixed size, empty slots
   holding the all-ones maximum                                          *)
(* ------------------------------------------------------------------ *)

module Pqueue = struct
  type t = {
    slots : int;
    maxv : int;
    mutable values : int list; (* sorted ascending, length = slots *)
  }

  let create ~slots ~width =
    { slots; maxv = (1 lsl width) - 1; values = List.init slots (fun _ -> (1 lsl width) - 1) }

  let min t = List.hd t.values

  let insert t v =
    let vs = List.stable_sort compare (t.values @ [ v ]) in
    t.values <- List.filteri (fun i _ -> i < t.slots) vs

  let extract t =
    match t.values with
    | _ :: rest -> t.values <- rest @ [ t.maxv ]
    | [] -> ()
end

(* ------------------------------------------------------------------ *)
(* Dictionary machine                                                   *)
(* ------------------------------------------------------------------ *)

module Dictionary = struct
  type t = {
    keys : int array;
    valid : bool array;
  }

  let create ~slots = { keys = Array.make slots 0; valid = Array.make slots false }

  let insert t ~slot ~key =
    t.keys.(slot) <- key;
    t.valid.(slot) <- true

  let delete t ~slot = t.valid.(slot) <- false

  let member t key =
    let found = ref false in
    Array.iteri (fun i k -> if t.valid.(i) && k = key then found := true) t.keys;
    !found
end
