(* The example programs of the Zeus report (section 10 and the bodies of
   sections 3, 4 and 8), as compilable Zeus source text.

   The 1983 report is a scan with OCR-era typos and a few deliberately
   elided bodies ("...").  Each deviation from the printed text is marked
   with a comment in the source below and catalogued in DESIGN.md. *)

(* ------------------------------------------------------------------ *)
(* Adders (section 10, "Adders" + Fig 3.2.2)                            *)
(* ------------------------------------------------------------------ *)

let adders_prelude =
  {zeus|
TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
BEGIN
  s := XOR(a,b);
  cout := AND(a,b)
END;

fulladder = COMPONENT (IN a,b,cin: boolean; OUT cout,s: boolean) IS
SIGNAL h1,h2: halfadder;
BEGIN
  h1(a,b,*,h2.a);
  h2(h1.s,cin,*,s);
  cout := OR(h1.cout,h2.cout)
END;

bo(n) = ARRAY [1..n] OF boolean;

rippleCarry(length) =
  COMPONENT (IN a,b: ARRAY[1..length] OF boolean; IN cin: boolean;
             OUT cout: boolean; OUT s: ARRAY[1..length] OF boolean) IS
SIGNAL add: ARRAY [1..length] OF fulladder;
       h: ARRAY [1..length+1] OF boolean;
{ ORDER lefttoright FOR i := 1 TO length DO add[i] END END }
BEGIN
  SEQUENTIAL
    h[1] := cin;
    FOR i := 1 TO length DO SEQUENTIALLY
      add[i](a[i],b[i],h[i],h[i+1],s[i]);
    END;
    cout := h[length+1];
  END
END;
|zeus}

let adder4 = adders_prelude ^ "\nSIGNAL adder: rippleCarry(4);\n"

let adder_n n = adders_prelude ^ Printf.sprintf "\nSIGNAL adder: rippleCarry(%d);\n" n

(* ------------------------------------------------------------------ *)
(* mux4 (section 3.2)                                                   *)
(* ------------------------------------------------------------------ *)

let mux4 =
  {zeus|
TYPE bo(n) = ARRAY[1..n] OF boolean;
mux4 = COMPONENT ( IN d: bo(4); IN a: bo(2); IN g: boolean ) : boolean IS
CONST bit2 = ( (0,0),(0,1),(1,0),(1,1) );
SIGNAL h: multiplex;
BEGIN
  FOR i := 1 TO 4 DO
    IF EQUAL(a,bit2[i]) THEN h := d[i] END
  END;
  RESULT AND(NOT g,h)
END;

muxtop = COMPONENT ( IN d: bo(4); IN a: bo(2); IN g: boolean; OUT z: boolean ) IS
BEGIN
  z := mux4(d,a,g)
END;

SIGNAL m: muxtop;
|zeus}

(* ------------------------------------------------------------------ *)
(* Arithmetic helpers used by Blackjack (declared "available" in the
   report; implemented here as Zeus function components, MSB first)      *)
(* ------------------------------------------------------------------ *)

let arith5 =
  {zeus|
TYPE bo5 = ARRAY [1..5] OF boolean;

plus = COMPONENT (IN term1,term2: bo5) : bo5 IS
SIGNAL s: bo5; c: ARRAY[1..6] OF boolean;
BEGIN
  c[6] := 0;
  FOR i := 5 DOWNTO 1 DO
    s[i] := XOR(XOR(term1[i],term2[i]),c[i+1]);
    c[i] := OR(AND(term1[i],term2[i]),AND(XOR(term1[i],term2[i]),c[i+1]))
  END;
  RESULT s
END;

minus = COMPONENT (IN term1,term2: bo5) : bo5 IS
SIGNAL s: bo5; c: ARRAY[1..6] OF boolean;
BEGIN
  c[6] := 1;
  FOR i := 5 DOWNTO 1 DO
    s[i] := XOR(XOR(term1[i],NOT term2[i]),c[i+1]);
    c[i] := OR(AND(term1[i],NOT term2[i]),
               AND(XOR(term1[i],NOT term2[i]),c[i+1]))
  END;
  RESULT s
END;

lt = COMPONENT (IN term1,term2: bo5) : boolean IS
SIGNAL l: ARRAY[1..6] OF boolean;
BEGIN
  l[6] := 0;
  FOR i := 5 DOWNTO 1 DO
    l[i] := OR(AND(NOT term1[i],term2[i]),
               AND(EQUAL(term1[i],term2[i]),l[i+1]))
  END;
  RESULT l[1]
END;

ge = COMPONENT (IN term1,term2: bo5) : boolean IS
BEGIN
  RESULT NOT lt(term1,term2)
END;
|zeus}

(* ------------------------------------------------------------------ *)
(* Blackjack finite state machine (section 10)                          *)
(*                                                                      *)
(* Deviations from the print:                                           *)
(* - "yeard"/"ycrd"/"yerd" normalised to ycard;                         *)
(* - "IF EQUAL(state,end)" corrected to state.out;                      *)
(* - scorelt22/scorege17 declared multiplex: they are assigned inside    *)
(*   the RSET-guard ELSE, and plain booleans may not be assigned         *)
(*   conditionally (type rules (1));                                     *)
(* - BIN(22,5)/BIN(17,5) as in the print.                                *)
(* ------------------------------------------------------------------ *)

let blackjack =
  arith5
  ^ {zeus|
blackjack = COMPONENT (IN ycard: boolean; IN value: bo5;
                       OUT hit, broke, stand: boolean) IS
CONST start = (0,0,0); read = (0,0,1); sum = (0,1,0);
      firstace = (0,1,1); test = (1,0,0); end = (1,0,1);
      zero5 = (0,0,0,0,0);
      ten = BIN(10,5);
TYPE reg(n) = ARRAY [1..n] OF REG;
SIGNAL score, card: reg(5);
       ace: REG;
       state: reg(3);
       scorelt22, scorege17: multiplex;
BEGIN
  IF RSET THEN state.in := start
  ELSE
    scorelt22 := lt(score.out,BIN(22,5));
    scorege17 := ge(score.out,BIN(17,5));
    IF EQUAL(state.out,start) THEN
      score.in := zero5; ace.in := 0; state.in := read
    END;
    IF EQUAL(state.out,read) THEN
      card.in := value; hit := 1;
      IF ycard THEN state.in := sum END;
    END;
    IF EQUAL(state.out,sum) THEN
      score.in := plus(score.out,card.out);
      state.in := firstace
    END;
    IF EQUAL(state.out,firstace) THEN
      state.in := test;
      IF AND(EQUAL(card.out,BIN(1,5)),NOT ace.out) THEN
        score.in := plus(score.out,ten);
        ace.in := 1;
      END;
    END;
    IF EQUAL(state.out,test) THEN
      IF NOT scorege17 THEN state.in := read
      ELSIF scorelt22 THEN state.in := end
      ELSIF ace.out THEN
        score.in := minus(score.out,ten);
        ace.in := 0
      ELSE state.in := end
      <* the print has no branch for a busted hand without an ace, which
         would leave the machine stuck in test and make broke
         unreachable; this ELSE is the obvious repair *>
      END;
    END;
    IF EQUAL(state.out,end) THEN
      IF scorelt22 THEN stand := 1 ELSE broke := 1 END;
      IF ycard THEN state.in := start ELSE state.in := end END;
    END;
  END
END;

SIGNAL bj: blackjack;
|zeus}

(* ------------------------------------------------------------------ *)
(* Binary trees (section 10)                                            *)
(* ------------------------------------------------------------------ *)

let tree_prelude =
  {zeus|
TYPE q = COMPONENT (IN in: boolean; OUT out1,out2: boolean) IS
BEGIN
  out1 := in;
  out2 := in
END;
|zeus}

(* iterative formulation; the print's "h[2*i+1]" lacks the ".in"
   selector — restored here *)
let tree_iterative n =
  tree_prelude
  ^ {zeus|
tree(n) = COMPONENT (IN in: boolean; OUT leaf: ARRAY [1..n] OF boolean) IS
SIGNAL h: ARRAY [1..n-1] OF q;
BEGIN
  h[1].in := in;
  FOR i := 1 TO n DIV 2 - 1 DO
    h[i](*,h[2*i].in,h[2*i+1].in);
  END;
  FOR i := 1 TO n DIV 2 DO
    h[i + n DIV 2 - 1](*,leaf[2*i-1],leaf[2*i]);
  END;
END;
|zeus}
  ^ Printf.sprintf "\nSIGNAL a: tree(%d);\n" n

(* recursive formulation with layout; the print's preleaf wiring is
   inconsistent (indices walk off the subtrees) — this is the obvious
   repair with identical structure *)
let tree_recursive n =
  tree_prelude
  ^ {zeus|
tree(n) = COMPONENT (IN in: boolean; OUT leaf: ARRAY[1..n] OF boolean) IS
SIGNAL left, right: tree(n DIV 2);
       root: q;
{ ORDER toptobottom
    root;
    ORDER lefttoright left; right END;
  END }
BEGIN
  WHEN n > 2 THEN
    root.in := in;
    left.in := root.out1;
    right.in := root.out2;
    FOR i := 1 TO n DIV 2 DO
      leaf[i] := left.leaf[i];
      leaf[i + n DIV 2] := right.leaf[i]
    END
  OTHERWISE
    root.in := in;
    leaf[1] := root.out1;
    leaf[2] := root.out2
  END
END;
|zeus}
  ^ Printf.sprintf "\nSIGNAL a: tree(%d);\n" n

(* the H-tree with linear layout area (section 10); the leaf body is
   empty in the print — kept that way (it is a layout demonstration) *)
let htree n =
  {zeus|
TYPE htree(n) = COMPONENT (IN in: boolean; out: multiplex) { BOTTOM in;out } IS
TYPE leaftype = COMPONENT (IN in: boolean; out: multiplex) { BOTTOM in;out } IS
BEGIN
END;
SIGNAL s: ARRAY[1..4] OF htree(n DIV 4);
       leaf: leaftype;
{ ORDER lefttoright
    ORDER toptobottom s[1]; flip90 s[3] END;
    ORDER toptobottom s[2]; flip90 s[4] END;
  END }
BEGIN
  WHEN n > 1 THEN
    FOR i := 1 TO 4 DO
      s[i].in := in;
      out == s[i].out
    END
  OTHERWISE
    leaf.in := in;
    out == leaf.out
  END
END;
|zeus}
  ^ Printf.sprintf "\nSIGNAL a: htree(%d);\n" n

(* ------------------------------------------------------------------ *)
(* Pattern matching (section 10)                                        *)
(*                                                                      *)
(* The comparator is printed in full; the accumulator figure is cut     *)
(* off mid-body in the scan, so its datapath is reconstructed after     *)
(* Foster/Kung (1979): tp accumulates AND(d OR wildcard); the           *)
(* end-of-pattern marker l emits the result and resets tp.              *)
(* "wildout := comp.xout" / "comp.rin := resultin" corrected to acc     *)
(* (the comparator has no such ports), and the illegal internal         *)
(* assignment "resultin := 0" is dropped (resultin is a formal IN).     *)
(* ------------------------------------------------------------------ *)

let patternmatch length =
  {zeus|
TYPE patternmatch(length) =
COMPONENT (IN pattern, string, endofpattern, wild, resultin: boolean;
           OUT result, endout, stringout, wildout, patternout: boolean) IS
TYPE comparator = COMPONENT (IN pin, sin: boolean;
                             OUT pout, dout, sout: boolean) IS
SIGNAL p,s: REG;
BEGIN
  IF RSET THEN p.in := 0; s.in := 0
  ELSE
    p(pin,pout);
    s(sin,sout);
  END;
  dout := AND(1,EQUAL(p.out,s.out));
END;

accumulator = COMPONENT (IN d,lin,xin,rin: boolean;
                         OUT lout,xout,rout: boolean) IS
SIGNAL tp,l,x,r: REG;
BEGIN
  IF RSET THEN tp.in := 1; l.in := 0; x.in := 0; r.in := 0
  ELSE
    l(lin,lout);
    x(xin,xout);
    r(rin,*);
    IF lin THEN
      rout := tp.out;
      tp.in := 1
    ELSE
      rout := r.out;
      tp.in := AND(tp.out,OR(d,xin))
    END;
  END
END;

SIGNAL pe: ARRAY[1..length] OF COMPONENT (comp: comparator; acc: accumulator) IS
BEGIN
  acc.d := comp.dout
END;

{ ORDER lefttoright
    FOR i := 1 TO length DO
      ORDER toptobottom
        WITH pe[i] DO comp; acc END;
      END;
    END
  END }

BEGIN
  <* connections to the outside *>
  WITH pe[1] DO
    comp.pin := pattern;
    acc.lin := endofpattern;
    acc.xin := wild;
    result := acc.rout;
    stringout := comp.sout;
  END;
  WITH pe[length] DO
    patternout := comp.pout;
    comp.sin := string;
    wildout := acc.xout;
    acc.rin := resultin;
    endout := acc.lout;
  END;
  <* internal connections *>
  FOR i := 2 TO length-1 DO
    WITH pe[i] DO
      comp(pe[i-1].comp.pout,pe[i+1].comp.sout,
           pe[i+1].comp.pin,*,pe[i-1].comp.sin);
      acc(*,pe[i-1].acc.lout,pe[i-1].acc.xout,pe[i+1].acc.rout,
          pe[i+1].acc.lin,pe[i+1].acc.xin,pe[i-1].acc.rin);
    END
  END
END;
|zeus}
  ^ Printf.sprintf "\nSIGNAL match: patternmatch(%d);\n" length

(* ------------------------------------------------------------------ *)
(* HISDL routing network (section 4.2)                                  *)
(*                                                                      *)
(* The print leaves the router body as "..."; implemented here as a     *)
(* 2x2 crossbar switched by the first (most significant) bit of         *)
(* inport0, so the recursive butterfly actually routes.                 *)
(* ------------------------------------------------------------------ *)

let routing_network n =
  {zeus|
TYPE bit10 = ARRAY[1..10] OF boolean;
channel(n) = ARRAY[0..n] OF bit10;

router = COMPONENT (IN inport0,inport1: bit10;
                    OUT outport0,outport1: bit10) IS
BEGIN
  IF inport0[1] THEN
    outport0 := inport1;
    outport1 := inport0
  ELSE
    outport0 := inport0;
    outport1 := inport1
  END
END;

routingnetwork(n) =
COMPONENT (IN input: channel(n-1); OUT output: channel(n-1)) IS
SIGNAL top,bottom: routingnetwork(n DIV 2);
       <* this hardware is only generated if it is used *>
       c: ARRAY[0..n DIV 2 - 1] OF router;
BEGIN
  WHEN n = 2 THEN
    c[0](input[0],input[1],output[0],output[1])
  OTHERWISE
    FOR i := 0 TO n DIV 2 - 1 DO
      c[i](input[2*i],input[2*i+1],top.input[i],bottom.input[i]);
      output[i] := top.output[i];
      output[i + n DIV 2] := bottom.output[i]
    END;
  END;
END;
|zeus}
  ^ Printf.sprintf "\nSIGNAL net: routingnetwork(%d);\n" n

(* ------------------------------------------------------------------ *)
(* Random access memory via NUM (section 5.1)                           *)
(* ------------------------------------------------------------------ *)

let ram ~abits ~wbits =
  Printf.sprintf
    {zeus|
TYPE word = ARRAY[1..%d] OF boolean;
ram = COMPONENT (IN addr: ARRAY[1..%d] OF boolean; IN data: word;
                 IN we: boolean; OUT q: word) IS
SIGNAL mem: ARRAY[0..%d] OF ARRAY[1..%d] OF REG;
BEGIN
  IF we THEN mem[NUM(addr)].in := data END;
  q := mem[NUM(addr)].out
END;

SIGNAL m: ram;
|zeus}
    wbits abits
    ((1 lsl abits) - 1)
    wbits

(* ------------------------------------------------------------------ *)
(* The semantics example of section 8 (evaluation-sequence trace)       *)
(* ------------------------------------------------------------------ *)

let section8_example =
  {zeus|
TYPE c = COMPONENT (IN a,b,cc,x,y,rin: boolean;
                    OUT rout: boolean; out: multiplex) IS
SIGNAL r: REG;
BEGIN
  IF x THEN out := AND(a,b) END;
  IF y THEN out := cc END;
  r(rin,rout)
END;

SIGNAL top: c;
|zeus}

(* ------------------------------------------------------------------ *)
(* The other design classes named in the report's abstract              *)
(* ------------------------------------------------------------------ *)

let am2901 = Corpus_am2901.am2901

let stack = Corpus_systolic.stack

let dictionary = Corpus_systolic.dictionary

let priority_queue = Corpus_systolic.priority_queue

let sorter = Corpus_sort.sorter

(* All statically sized programs, for parser/elaborator regression
   sweeps. *)
let all_named =
  [
    ("adder4", adder4);
    ("mux4", mux4);
    ("blackjack", blackjack);
    ("tree_iterative8", tree_iterative 8);
    ("tree_recursive8", tree_recursive 8);
    ("htree16", htree 16);
    ("patternmatch3", patternmatch 3);
    ("routing4", routing_network 4);
    ("ram", ram ~abits:4 ~wbits:8);
    ("section8", section8_example);
    ("am2901", am2901);
    ("stack8x4", stack ~depth:8 ~width:4);
    ("dictionary8x6", dictionary ~slots:8 ~keybits:6);
    ("sorter8x4", sorter ~n:8 ~w:4);
    ("pqueue8x4", priority_queue ~slots:8 ~width:4);
  ]
