(** The example programs of the Zeus report as compilable source text.

    Each string (or generator) is a complete program ending in a
    top-level SIGNAL declaration that instantiates the design.  The 1983
    scan has OCR-era typos and a few elided bodies; every deviation is
    marked with a comment in the source and catalogued in DESIGN.md. *)

(** Section 10 "Adders": halfadder, fulladder, rippleCarry(length), no
    top-level instance. *)
val adders_prelude : string

(** The prelude plus [SIGNAL adder: rippleCarry(4)]. *)
val adder4 : string

(** The prelude plus an n-bit instance.  Note the adder's index 1 is the
    least significant bit (the carry enters at add[1]); use
    [Sim.poke_int_lsb]. *)
val adder_n : int -> string

(** Section 3.2's 4-way multiplexor function component, with a wrapper
    so its output is observable ([m.z]). *)
val mux4 : string

(** The 5-bit plus/minus/lt/ge function components the Blackjack example
    assumes "available" (MSB first). *)
val arith5 : string

(** Section 10's Blackjack dealer machine ([bj]); states are encoded
    start=0, read=1, sum=2, firstace=3, test=4, end=5 on
    [bj.state.out]. *)
val blackjack : string

(** Section 10's binary trees, broadcast-buffer leaves ([a.leaf]).
    [n] must be a power of two. *)
val tree_iterative : int -> string

val tree_recursive : int -> string

(** Section 10's H-tree with its linear-area layout; [n] a power of 4. *)
val htree : int -> string

(** Section 10's systolic pattern matcher ([match]); [length] odd. *)
val patternmatch : int -> string

(** Section 4.2's recursive HISDL routing network ([net]); [n] a power
    of two. *)
val routing_network : int -> string

(** Section 5.1's REG-array random access memory ([m]). *)
val ram : abits:int -> wbits:int -> string

(** The component of section 8's evaluation-sequence example ([top]). *)
val section8_example : string

(** The AM2901 bit-slice ALU named in the abstract ([alu]). *)
val am2901 : string

(** A Guibas/Liang-style systolic stack ([st]): one cycle per push/pop
    at any depth. *)
val stack : depth:int -> width:int -> string

(** An Ottmann/Rosenberg/Stockmeyer-style dictionary machine ([dict]):
    INSERT/DELETE/MEMBER over [slots] key cells. *)
val dictionary : slots:int -> keybits:int -> string

(** A Guibas/Liang-style systolic priority queue ([pq]): insert and
    extract-min in one cycle each; empty cells hold the all-ones maximum
    via REG(1) initialization. *)
val priority_queue : slots:int -> width:int -> string

(** An odd-even transposition sorter ([srt]) answering section 9's
    invitation to describe Thompson-style sorting circuits: load n
    w-bit words, sort ascending in n cycles. *)
val sorter : n:int -> w:int -> string

(** All statically sized programs, for regression sweeps. *)
val all_named : (string * string) list
