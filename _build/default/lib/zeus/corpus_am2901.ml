(* The AM2901 4-bit bit-slice ALU — one of the designs the report's
   abstract says Zeus was "tested on".

   This follows the classic AMD datapath: a 16x4 dual-read register file,
   the Q register, a 3-bit source-operand selector, a 3-bit ALU function
   code and a 3-bit destination control with up/down shifts.

   Instruction encoding (bits are MSB first; i[1..3] = source,
   i[4..6] = function, i[7..9] = destination):

     source  0 AQ  1 AB  2 ZQ  3 ZB  4 ZA  5 DA  6 DQ  7 DZ
     func    0 ADD (R+S+cin)   1 SUBR (S-R-1+cin)  2 SUBS (R-S-1+cin)
             3 OR  4 AND  5 NOTRS (~R&S)  6 EXOR  7 EXNOR
     dest    0 QREG (Q<-F)     1 NOP          2 RAMA (B<-F, Y=A)
             3 RAMF (B<-F)     4 RAMQD (B<-F/2, Q<-Q/2)
             5 RAMD (B<-F/2)   6 RAMQU (B<-2F, Q<-2Q)  7 RAMU (B<-2F)

   Y = F for every destination except RAMA (Y = A-latch). *)

let am2901 =
  {zeus|
TYPE bo3 = ARRAY[1..3] OF boolean;
bo4 = ARRAY[1..4] OF boolean;

am2901 = COMPONENT (IN i: ARRAY[1..9] OF boolean;
                    IN a, b: bo4; IN d: bo4; IN cin: boolean;
                    OUT y: bo4; OUT cout: boolean;
                    OUT fzero, f3: boolean) IS
CONST zero4 = (0,0,0,0);
SIGNAL ram: ARRAY[0..15] OF ARRAY[1..4] OF REG;
       q: ARRAY[1..4] OF REG;
       av, bv: bo4;
       src, fn, dst: bo3;
       r, s: ARRAY[1..4] OF multiplex;
       p1, p2: ARRAY[1..4] OF multiplex;
       c: ARRAY[1..5] OF boolean;
       sum: bo4;
       f: ARRAY[1..4] OF multiplex;
       fb: bo4;
       arith: boolean;
BEGIN
  src := i[1..3];
  fn := i[4..6];
  dst := i[7..9];
  av := ram[NUM(a)].out;
  bv := ram[NUM(b)].out;

  <* source operand selection *>
  IF EQUAL(src,BIN(0,3)) THEN r := av;    s := q.out END;
  IF EQUAL(src,BIN(1,3)) THEN r := av;    s := bv END;
  IF EQUAL(src,BIN(2,3)) THEN r := zero4; s := q.out END;
  IF EQUAL(src,BIN(3,3)) THEN r := zero4; s := bv END;
  IF EQUAL(src,BIN(4,3)) THEN r := zero4; s := av END;
  IF EQUAL(src,BIN(5,3)) THEN r := d;     s := av END;
  IF EQUAL(src,BIN(6,3)) THEN r := d;     s := q.out END;
  IF EQUAL(src,BIN(7,3)) THEN r := d;     s := zero4 END;

  <* addends for the three arithmetic functions *>
  IF EQUAL(fn,BIN(0,3)) THEN p1 := r;     p2 := s END;
  IF EQUAL(fn,BIN(1,3)) THEN p1 := NOT r; p2 := s END;
  IF EQUAL(fn,BIN(2,3)) THEN p1 := r;     p2 := NOT s END;

  <* ripple carry; index 4 is the least significant bit *>
  c[5] := cin;
  FOR k := 4 DOWNTO 1 DO
    sum[k] := XOR(XOR(p1[k],p2[k]),c[k+1]);
    c[k] := OR(AND(p1[k],p2[k]),AND(XOR(p1[k],p2[k]),c[k+1]))
  END;

  arith := OR(OR(EQUAL(fn,BIN(0,3)),EQUAL(fn,BIN(1,3))),EQUAL(fn,BIN(2,3)));
  IF arith THEN f := sum END;
  IF EQUAL(fn,BIN(3,3)) THEN f := OR(r,s) END;
  IF EQUAL(fn,BIN(4,3)) THEN f := AND(r,s) END;
  IF EQUAL(fn,BIN(5,3)) THEN f := AND(NOT r,s) END;
  IF EQUAL(fn,BIN(6,3)) THEN f := XOR(r,s) END;
  IF EQUAL(fn,BIN(7,3)) THEN f := NOT XOR(r,s) END;

  fb := f;
  cout := c[1];
  fzero := EQUAL(fb,zero4);
  f3 := fb[1];

  <* destination control *>
  IF EQUAL(dst,BIN(2,3)) THEN y := av ELSE y := fb END;

  IF EQUAL(dst,BIN(0,3)) THEN q.in := fb END;
  IF OR(EQUAL(dst,BIN(2,3)),EQUAL(dst,BIN(3,3))) THEN
    ram[NUM(b)].in := fb
  END;
  IF OR(EQUAL(dst,BIN(4,3)),EQUAL(dst,BIN(5,3))) THEN
    ram[NUM(b)].in := (0,fb[1],fb[2],fb[3])
  END;
  IF EQUAL(dst,BIN(4,3)) THEN
    q.in := (0,q.out[1],q.out[2],q.out[3])
  END;
  IF OR(EQUAL(dst,BIN(6,3)),EQUAL(dst,BIN(7,3))) THEN
    ram[NUM(b)].in := (fb[2],fb[3],fb[4],0)
  END;
  IF EQUAL(dst,BIN(6,3)) THEN
    q.in := (q.out[2],q.out[3],q.out[4],0)
  END;
END;

SIGNAL alu: am2901;
|zeus}
