(** A small vector-driven testbench harness over the simulator: poke
    named inputs, clock, record expectation failures with readable
    messages. *)

module Sim = Zeus_sim.Sim
module Logic = Zeus_base.Logic

type failure = {
  cycle : int;
  signal : string;
  expected : string;
  actual : string;
}

type t

val create :
  ?engine:Sim.engine -> ?seed:int -> Zeus_sem.Elaborate.design -> t

(** The underlying simulator, for operations not wrapped here. *)
val sim : t -> Sim.t

(** {1 Driving} *)

(** Integer pokes use the MSB-first BIN convention. *)
val set : t -> string -> int -> unit

val set_lsb : t -> string -> int -> unit
val set_bool : t -> string -> bool -> unit
val set_bits : t -> string -> Logic.t list -> unit
val reset : t -> unit
val clock : ?n:int -> t -> unit

(** {1 Expectations}

    Mismatches are recorded, not raised; see {!failures}/{!ok}. *)

val expect_int : t -> string -> int -> unit
val expect_int_lsb : t -> string -> int -> unit
val expect_bool : t -> string -> bool -> unit
val expect_bits : t -> string -> Logic.t list -> unit

(** [run_table t ~inputs ~outputs rows]: for each row (input values,
    expected outputs), apply the inputs, clock once, check the outputs. *)
val run_table :
  t -> inputs:string list -> outputs:string list -> (int list * int list) list -> unit

(** {1 Results} *)

val failures : t -> failure list
val runtime_errors : t -> Sim.runtime_error list

(** No expectation failures and no simulator runtime errors. *)
val ok : t -> bool

val pp_failure : failure Fmt.t
val report : Format.formatter -> t -> unit
