(** Pure-OCaml golden models for the larger corpus designs — the
    references the differential tests and the A1 benchmark compare the
    Zeus simulations against. *)

(** The AM2901 bit-slice ALU. *)
module Am2901 : sig
  type t

  type result = {
    y : int;
    cout : bool;
    fzero : bool;
    f3 : bool;
  }

  val create : unit -> t

  (** One clocked instruction.  [i] is the 9-bit code with the source
      select in the top three bits (matching the MSB-first Zeus
      encoding: i[1..3] source, i[4..6] function, i[7..9] destination). *)
  val step : t -> i:int -> a:int -> b:int -> d:int -> cin:bool -> result
end

(** The systolic stack (cell 0 is the top; empty cells read 0). *)
module Stack : sig
  type t

  val create : depth:int -> t
  val top : t -> int
  val push : t -> int -> unit
  val pop : t -> unit
end

(** The systolic priority queue: a fixed-size sorted array whose empty
    slots hold the all-ones maximum. *)
module Pqueue : sig
  type t

  val create : slots:int -> width:int -> t
  val min : t -> int
  val insert : t -> int -> unit
  val extract : t -> unit
end

(** The dictionary machine: slot-addressed insert/delete, associative
    member queries. *)
module Dictionary : sig
  type t

  val create : slots:int -> t
  val insert : t -> slot:int -> key:int -> unit
  val delete : t -> slot:int -> unit
  val member : t -> int -> bool
end
