(* The remaining example classes named in the report's abstract —
   "dictionary machines, systolic stacks" — written in Zeus.

   - The systolic stack follows Guibas/Liang (1982, cited in section 9):
     a linear array of width-w cells; a push shifts every cell one place
     away from the top, a pop shifts every cell one place toward it.
     Every cell acts simultaneously, so both operations are one clock
     cycle regardless of depth.

   - The dictionary machine follows Ottmann/Rosenberg/Stockmeyer (1982,
     cited in section 10's invitation list): an associative memory of n
     key cells with INSERT/DELETE/MEMBER; the MEMBER answer is reduced
     through an OR chain. *)

(* ------------------------------------------------------------------ *)
(* Systolic stack                                                       *)
(* ------------------------------------------------------------------ *)

(* depth cells of w bits; top of stack is cell 1.
   push: cell[i] <- cell[i-1] (cell[1] <- datain)
   pop:  cell[i] <- cell[i+1] (cell[depth] <- zeros)
   top output is cell[1]'s stored value. *)
let stack ~depth ~width =
  Printf.sprintf
    {zeus|
TYPE word = ARRAY[1..%d] OF boolean;

stackcell = COMPONENT (IN push, pop: boolean;
                       IN fromabove, frombelow: word;
                       OUT val: word) IS
SIGNAL v: ARRAY[1..%d] OF REG;
BEGIN
  IF RSET THEN v.in := BIN(0,%d)
  ELSIF push THEN v.in := fromabove
  ELSIF pop THEN v.in := frombelow
  END;
  val := v.out
END;

stack(depth) = COMPONENT (IN push, pop: boolean; IN datain: word;
                          OUT top: word) IS
SIGNAL cell: ARRAY[1..depth] OF stackcell;
CONST zero = BIN(0,%d);
{ ORDER toptobottom FOR i := 1 TO depth DO cell[i] END END }
BEGIN
  cell[1].push := push;
  cell[1].pop := pop;
  cell[1].fromabove := datain;
  FOR i := 2 TO depth DO
    cell[i].push := push;
    cell[i].pop := pop;
    cell[i].fromabove := cell[i-1].val;
    cell[i-1].frombelow := cell[i].val;
  END;
  cell[depth].frombelow := zero;
  top := cell[1].val
END;

SIGNAL st: stack(%d);
|zeus}
    width width width width depth

(* ------------------------------------------------------------------ *)
(* Systolic priority queue (Guibas/Liang: "Systolic Stacks, Queues and  *)
(* Counters")                                                           *)
(*                                                                      *)
(* Cells keep their values sorted ascending from the min end: an insert *)
(* ripples the new value in at its rank and displaces the rest one cell *)
(* toward the tail (the largest value falls off a full queue); an       *)
(* extract shifts everything one cell toward the head.  Empty cells     *)
(* hold the maximum — the REG(1) initialization makes that the          *)
(* power-up state with no reset protocol.                               *)
(* ------------------------------------------------------------------ *)

let priority_queue ~slots ~width =
  Printf.sprintf
    {zeus|
TYPE word = ARRAY[1..%d] OF boolean;

ltw = COMPONENT (IN a, b: word) : boolean IS
SIGNAL l: ARRAY[1..%d] OF boolean;
BEGIN
  l[%d] := AND(NOT a[%d],b[%d]);
  FOR i := %d DOWNTO 1 DO
    l[i] := OR(AND(NOT a[i],b[i]),AND(EQUAL(a[i],b[i]),l[i+1]))
  END;
  RESULT l[1]
END;

pqueue = COMPONENT (IN ins, ext: boolean; IN din: word; OUT minout: word) IS
SIGNAL v: ARRAY[1..%d] OF ARRAY[1..%d] OF REG(1);
       less: ARRAY[1..%d] OF boolean;
       disp: ARRAY[0..%d] OF ARRAY[1..%d] OF multiplex;
       <* disp[i] = the value displaced past cell i during an insert *>
CONST allones = BIN(%d,%d);
BEGIN
  disp[0] := din;
  FOR i := 1 TO %d DO
    less[i] := ltw(disp[i-1],v[i].out);
    IF less[i] THEN disp[i] := v[i].out ELSE disp[i] := disp[i-1] END;
    IF AND(ins,less[i]) THEN v[i].in := disp[i-1] END;
  END;
  * := disp[%d];  <* a full queue drops its largest value *>
  IF AND(ext,NOT ins) THEN
    FOR i := 1 TO %d DO v[i].in := v[i+1].out END;
    v[%d].in := allones;
  END;
  minout := v[1].out
END;

SIGNAL pq: pqueue;
|zeus}
    width width width width width (width - 1) slots width slots slots width
    ((1 lsl width) - 1)
    width slots slots (slots - 1) slots

(* ------------------------------------------------------------------ *)
(* Dictionary machine (associative memory with OR-chain reduction)      *)
(* ------------------------------------------------------------------ *)

let dictionary ~slots ~keybits =
  let abits =
    let rec go n acc = if n <= 1 then acc else go (n / 2) (acc + 1) in
    max 1 (go slots 0)
  in
  Printf.sprintf
    {zeus|
TYPE key = ARRAY[1..%d] OF boolean;
addr = ARRAY[1..%d] OF boolean;

dictionary = COMPONENT (IN ins, del: boolean; IN slot: addr;
                        IN query: key; IN data: key;
                        OUT member: boolean) IS
SIGNAL keys: ARRAY[0..%d] OF ARRAY[1..%d] OF REG;
       valid: ARRAY[0..%d] OF REG;
       hit: ARRAY[0..%d] OF boolean;
       acc: ARRAY[0..%d] OF boolean;
BEGIN
  IF RSET THEN
    FOR i := 0 TO %d DO valid[i].in := 0 END
  ELSE
    IF ins THEN
      keys[NUM(slot)].in := data;
      valid[NUM(slot)].in := 1
    END;
    IF del THEN valid[NUM(slot)].in := 0 END;
  END;
  FOR i := 0 TO %d DO
    hit[i] := AND(valid[i].out,EQUAL(keys[i].out,query))
  END;
  <* OR-chain reduction of the hit bits *>
  acc[0] := hit[0];
  FOR i := 1 TO %d DO acc[i] := OR(acc[i-1],hit[i]) END;
  member := acc[%d]
END;

SIGNAL dict: dictionary;
|zeus}
    keybits abits (slots - 1) keybits (slots - 1) (slots - 1) (slots - 1)
    (slots - 1) (slots - 1) (slots - 1) (slots - 1)
