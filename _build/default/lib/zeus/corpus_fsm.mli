(** Classic sequential idioms written in Zeus — the "finite state
    machines, multiplexors" of the report's abstract.  Each value is a
    complete program ending in a top-level SIGNAL instantiation. *)

(** n-bit binary up-counter with enable ([c]); index 1 is the MSB. *)
val counter : int -> string

(** Serial-in shift register ([sr]); q[1] is the most recent bit. *)
val shift_register : int -> string

(** 4-bit maximal-length Fibonacci LFSR ([l]), taps 4 and 3. *)
val lfsr4 : string

(** Bit-serial adder ([sa]): one full adder and a carry flip-flop. *)
val serial_adder : string

(** Gray-code counter ([gc]): consecutive outputs differ in one bit. *)
val gray_counter : int -> string

(** NUM-based parameterized multiplexor ([m]) — the general form of the
    report's mux4. *)
val muxn : inputs:int -> selbits:int -> string

(** Two-request arbiter ([arb]) resolving ties with the predefined
    RANDOM source — section 7's "for describing bistable elements". *)
val arbiter : string

val all_named : (string * string) list
