(** "Why does this net have this value?" — a post-cycle debugger that
    walks the design backwards from a signal and reports, per net, what
    its producers fired during the last evaluated cycle.  The usual
    question about a four-valued simulator is where an UNDEF came from;
    this answers it. *)

open Zeus_base

type reason =
  | Input  (** testbench input, CLK/RSET, or undriven *)
  | Register of string  (** the stored value of this register *)
  | Gate of Zeus_sem.Netlist.gate_op * (string * Logic.t) list
      (** gate inputs with their values *)
  | Drivers of driver_fire list

and driver_fire = {
  guard : (string * Logic.t) option;
  source : string * Logic.t;
  produced : Logic.t;
}

type entry = {
  net : string;
  value : Logic.t;
  reason : reason;
}

(** [explain sim path ~depth] explains every bit of [path], descending
    [depth] producer levels.  Call after at least one {!Sim.step}.
    @raise Invalid_argument for unresolvable paths. *)
val explain : Sim.t -> string -> depth:int -> entry list

val pp_entry : entry Fmt.t
val pp : entry list Fmt.t
val to_string : entry list -> string
