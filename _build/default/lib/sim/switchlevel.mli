(** The switch-level-style relaxation baseline (experiment E8): {!Sim}
    under [Sim.Relaxation] scheduling — sweeps run against the creation
    order, modelling the iterate-to-stability relaxation of switch-level
    simulators (Bryant 1981) that the report's introduction compares
    Zeus against.  All functions are those of {!Sim}. *)

type t = Sim.t

val create : ?seed:int -> Zeus_sem.Elaborate.design -> t
val step : t -> unit
val step_n : t -> int -> unit
val reset : t -> unit
val poke : t -> string -> Zeus_base.Logic.t list -> unit
val poke_bool : t -> string -> bool -> unit
val poke_int : t -> string -> int -> unit
val peek : t -> string -> Zeus_base.Logic.t list
val peek_bit : t -> string -> Zeus_base.Logic.t
val peek_int : t -> string -> int option
val node_visits : t -> int
val runtime_errors : t -> Sim.runtime_error list
val snapshot : t -> Zeus_base.Logic.t option array
