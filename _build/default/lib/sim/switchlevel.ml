(* The switch-level-style relaxation baseline (experiment E8).

   Stands in for the iterate-to-stability relaxation of switch-level
   simulators (Bryant 1981, Mehlhorn 1982) that the introduction of the
   report compares Zeus against.  Sweeps run against the creation order,
   so information crosses one level of logic per sweep — the worst-case
   behaviour of order-oblivious relaxation.  Semantics are identical to
   the other engines. *)

type t = Sim.t

let create ?seed design = Sim.create ~engine:Sim.Relaxation ?seed design

let step = Sim.step

let step_n = Sim.step_n

let reset = Sim.reset

let poke = Sim.poke

let poke_bool = Sim.poke_bool

let poke_int = Sim.poke_int

let peek = Sim.peek

let peek_bit = Sim.peek_bit

let peek_int = Sim.peek_int

let node_visits = Sim.node_visits

let runtime_errors = Sim.runtime_errors

let snapshot = Sim.snapshot
