(* ASCII waveform rendering: one row per watched signal, one column per
   sampled cycle.  Single-bit signals render as levels, multi-bit
   signals as their value (hex when fully defined). *)

open Zeus_base

type signal = {
  path : string;
  nets : int list;
  mutable samples : Logic.t list list; (* newest first *)
}

type t = {
  sim : Sim.t;
  signals : signal list;
}

let create sim paths =
  let signals =
    List.map
      (fun path ->
        match Zeus_sem.Elaborate.resolve_path (Sim.design sim) path with
        | Ok nets -> { path; nets; samples = [] }
        | Error msg -> invalid_arg ("Wave.create: " ^ msg))
      paths
  in
  { sim; signals }

(* record the current values; call once per simulated cycle *)
let sample t =
  List.iter
    (fun s -> s.samples <- Sim.peek_nets t.sim s.nets :: s.samples)
    t.signals

let bit_char = function
  | Logic.Zero -> '_'
  | Logic.One -> '#'
  | Logic.Undef -> 'x'
  | Logic.Noinfl -> 'z'

(* a multi-bit sample: one character per cycle — hex digit when the
   value fits and is defined, else x/z *)
let word_char bits =
  match Zeus_sem.Cval.num bits with
  | Some v when v < 16 -> "0123456789abcdef".[v]
  | Some _ -> '+'
  | None ->
      if List.for_all (Logic.equal Logic.Noinfl) bits then 'z' else 'x'

let render t =
  let buf = Buffer.create 1024 in
  let width =
    List.fold_left
      (fun acc s -> max acc (String.length s.path))
      0 t.signals
  in
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "%-*s " width s.path);
      let samples = List.rev s.samples in
      List.iter
        (fun bits ->
          match bits with
          | [ b ] -> Buffer.add_char buf (bit_char b)
          | bits -> Buffer.add_char buf (word_char bits))
        samples;
      Buffer.add_char buf '\n')
    t.signals;
  Buffer.contents buf

(* render with decoded integer values per cycle, one line per signal *)
let render_values t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf s.path;
      Buffer.add_string buf ":";
      List.iter
        (fun bits ->
          Buffer.add_char buf ' ';
          match Zeus_sem.Cval.num bits with
          | Some v -> Buffer.add_string buf (string_of_int v)
          | None ->
              Buffer.add_string buf
                (String.concat "" (List.map Logic.to_string bits)))
        (List.rev s.samples);
      Buffer.add_char buf '\n')
    t.signals;
  Buffer.contents buf
