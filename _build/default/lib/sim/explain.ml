(* "Why does this net have this value?" — a post-cycle debugger that
   walks the semantics graph backwards from a signal and reports, per
   net, which producers fired what.  Invaluable for UNDEF hunting: the
   usual question about a four-valued simulator. *)

open Zeus_base
open Zeus_sem

type reason =
  | Input (* testbench input, CLK/RSET, or undriven *)
  | Register of string (* the stored value of this register *)
  | Gate of Netlist.gate_op * (string * Logic.t) list
  | Drivers of driver_fire list

and driver_fire = {
  guard : (string * Logic.t) option; (* guard signal and its value *)
  source : string * Logic.t;
  produced : Logic.t;
}

type entry = {
  net : string;
  value : Logic.t;
  reason : reason;
}

(* explain the value of one net from the last evaluated cycle,
   descending [depth] levels into its producers *)
let explain sim path ~depth =
  let design = Sim.design sim in
  let nl = design.Elaborate.netlist in
  let nets =
    match Elaborate.resolve_path design path with
    | Ok nets -> nets
    | Error msg -> invalid_arg ("Explain: " ^ msg)
  in
  let value_of id = List.hd (Sim.peek_nets sim [ id ]) in
  let name id = (Netlist.net nl id).Netlist.name in
  let regs_by_out = Hashtbl.create 16 in
  List.iter
    (fun (r : Netlist.reg) ->
      Hashtbl.replace regs_by_out (Netlist.canonical nl r.Netlist.rout) r)
    (Netlist.regs nl);
  let gates_by_out = Hashtbl.create 16 in
  List.iter
    (fun (gt : Netlist.gate) ->
      Hashtbl.replace gates_by_out (Netlist.canonical nl gt.Netlist.output) gt)
    (Netlist.gates nl);
  let drivers_by_target = Hashtbl.create 16 in
  List.iter
    (fun (d : Netlist.driver) ->
      let k = Netlist.canonical nl d.Netlist.target in
      Hashtbl.replace drivers_by_target k
        (d :: Option.value ~default:[] (Hashtbl.find_opt drivers_by_target k)))
    (Netlist.drivers nl);
  let seen = Hashtbl.create 16 in
  let entries = ref [] in
  let src_value = function
    | Netlist.Sconst v -> v
    | Netlist.Snet s -> value_of s
  in
  let rec go id depth =
    let c = Netlist.canonical nl id in
    if depth >= 0 && not (Hashtbl.mem seen c) then begin
      Hashtbl.replace seen c ();
      let reason, feeds =
        match Hashtbl.find_opt regs_by_out c with
        | Some r -> (Register r.Netlist.rpath, [])
        | None -> (
            match Hashtbl.find_opt gates_by_out c with
            | Some gt ->
                ( Gate
                    ( gt.Netlist.op,
                      List.map
                        (fun s -> (src_name_nl s, src_value s))
                        gt.Netlist.inputs ),
                  List.filter_map
                    (function Netlist.Snet s -> Some s | _ -> None)
                    gt.Netlist.inputs )
            | None -> (
                match Hashtbl.find_opt drivers_by_target c with
                | Some ds ->
                    let fires =
                      List.map
                        (fun (d : Netlist.driver) ->
                          let produced =
                            match d.Netlist.guard with
                            | None -> src_value d.Netlist.source
                            | Some gs -> (
                                match Logic.booleanize (src_value gs) with
                                | Logic.Zero -> Logic.Noinfl
                                | Logic.One -> src_value d.Netlist.source
                                | Logic.Undef | Logic.Noinfl -> Logic.Undef)
                          in
                          {
                            guard =
                              Option.map
                                (fun gs -> (src_name_nl gs, src_value gs))
                                d.Netlist.guard;
                            source =
                              (src_name_nl d.Netlist.source,
                               src_value d.Netlist.source);
                            produced;
                          })
                        ds
                    in
                    ( Drivers fires,
                      List.concat_map
                        (fun (d : Netlist.driver) ->
                          List.filter_map
                            (function Netlist.Snet s -> Some s | _ -> None)
                            (d.Netlist.source :: Option.to_list d.Netlist.guard))
                        ds )
                | None -> (Input, [])))
      in
      entries := { net = name id; value = value_of id; reason } :: !entries;
      List.iter (fun s -> go s (depth - 1)) feeds
    end
  and src_name_nl = function
    | Netlist.Sconst v -> "const " ^ Logic.to_string v
    | Netlist.Snet s -> name s
  in
  List.iter (fun id -> go id depth) nets;
  List.rev !entries

let pp_entry ppf e =
  Fmt.pf ppf "%s = %a: " e.net Logic.pp e.value;
  match e.reason with
  | Input -> Fmt.pf ppf "input (testbench / undriven / predefined)"
  | Register path -> Fmt.pf ppf "stored value of register %s" path
  | Gate (op, ins) ->
      Fmt.pf ppf "%s(%a)"
        (Netlist.gate_op_to_string op)
        Fmt.(list ~sep:comma (fun ppf (n, v) -> pf ppf "%s=%a" n Logic.pp v))
        ins
  | Drivers fires ->
      Fmt.pf ppf "%d driver(s):" (List.length fires);
      List.iter
        (fun f ->
          match f.guard with
          | None ->
              Fmt.pf ppf "@   := %s=%a -> %a" (fst f.source) Logic.pp
                (snd f.source) Logic.pp f.produced
          | Some (gn, gv) ->
              Fmt.pf ppf "@   IF %s=%a THEN := %s=%a -> %a" gn Logic.pp gv
                (fst f.source) Logic.pp (snd f.source) Logic.pp f.produced)
        fires

let pp ppf entries =
  Fmt.(list ~sep:(any "@.") pp_entry) ppf entries

let to_string entries = Fmt.str "%a" pp entries
