(** ASCII waveform rendering: one row per watched signal, one column per
    sampled cycle.  Single-bit signals render as levels ([_ # x z]);
    multi-bit signals as hex digits where the value is defined. *)

type t

(** @raise Invalid_argument for unresolvable paths. *)
val create : Sim.t -> string list -> t

(** Record the current values; call once per simulated cycle. *)
val sample : t -> unit

val render : t -> string

(** One line per signal with decoded integer values per cycle. *)
val render_values : t -> string
