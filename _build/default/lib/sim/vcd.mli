(** Value-change-dump (VCD) writer: waveforms from the simulator in the
    standard format ([0 1 x z] for Zeus's 0/1/UNDEF/NOINFL). *)

type t

(** [create sim paths] starts a dump of the given hierarchical signal
    paths.  @raise Invalid_argument for unresolvable paths. *)
val create : Sim.t -> string list -> t

(** Record the current values; call once per simulated cycle. *)
val sample : t -> unit

val contents : t -> string
val to_file : t -> string -> unit
