(* The semantics graph of section 8, in executable form.

   All net references are canonicalized through the alias union-find.
   Producer nodes are gates and drivers; a net fires when its producers
   allow (see Sim).  Registers connect cycles without introducing
   combinational edges. *)

open Zeus_sem

type node =
  | Ngate of {
      op : Netlist.gate_op;
      inputs : Netlist.src array;
      output : int;
    }
  | Ndriver of {
      guard : Netlist.src option;
      source : Netlist.src;
      target : int;
    }

type t = {
  design : Elaborate.design;
  nl : Netlist.t;
  n_nets : int;
  nodes : node array;
  (* net -> nodes that consume it (need re-evaluation when it fires) *)
  consumers : int list array;
  (* canonical net -> number of producer nodes *)
  producer_count : int array;
  (* canonical net -> kind of the class (mux if any member is mux) *)
  class_kind : Etype.kind array;
  (* kind as declared per original net id (for booleanizing reads) *)
  net_kind : Etype.kind array;
  names : string array;
  regs : Netlist.reg array;
  reg_out_class : bool array; (* canonical net is a register output *)
  input_class : bool array; (* canonical net is a testbench input *)
}

let canon nl id = Netlist.canonical nl id

let canon_src nl = function
  | Netlist.Snet id -> Netlist.Snet (canon nl id)
  | Netlist.Sconst v -> Netlist.Sconst v

let build (design : Elaborate.design) =
  let nl = design.Elaborate.netlist in
  let n = Netlist.net_count nl in
  let nodes = ref [] in
  let n_nodes = ref 0 in
  let consumers = Array.make n [] in
  let producer_count = Array.make n 0 in
  let add_node node srcs out =
    let id = !n_nodes in
    nodes := node :: !nodes;
    incr n_nodes;
    List.iter
      (function
        | Netlist.Snet s -> consumers.(s) <- id :: consumers.(s)
        | Netlist.Sconst _ -> ())
      srcs;
    producer_count.(out) <- producer_count.(out) + 1
  in
  List.iter
    (fun (g : Netlist.gate) ->
      let inputs = List.map (canon_src nl) g.Netlist.inputs in
      let output = canon nl g.Netlist.output in
      add_node
        (Ngate { op = g.Netlist.op; inputs = Array.of_list inputs; output })
        inputs output)
    (Netlist.gates nl);
  List.iter
    (fun (d : Netlist.driver) ->
      let guard = Option.map (canon_src nl) d.Netlist.guard in
      let source = canon_src nl d.Netlist.source in
      let target = canon nl d.Netlist.target in
      let srcs = source :: Option.to_list guard in
      add_node (Ndriver { guard; source; target }) srcs target)
    (Netlist.drivers nl);
  let class_kind = Array.make n Etype.KBool in
  let net_kind = Array.make n Etype.KBool in
  let names = Array.make n "" in
  Array.iter
    (fun (net : Netlist.net) ->
      let c = canon nl net.Netlist.id in
      net_kind.(net.Netlist.id) <- net.Netlist.kind;
      names.(net.Netlist.id) <- net.Netlist.name;
      if net.Netlist.kind = Etype.KMux then class_kind.(c) <- Etype.KMux)
    (Netlist.nets_array nl);
  let regs = Array.of_list (Netlist.regs nl) in
  let reg_out_class = Array.make n false in
  Array.iter
    (fun (r : Netlist.reg) -> reg_out_class.(canon nl r.Netlist.rout) <- true)
    regs;
  let input_class = Array.make n false in
  List.iter
    (fun id -> input_class.(canon nl id) <- true)
    (Check.top_input_nets design);
  {
    design;
    nl;
    n_nets = n;
    nodes = Array.of_list (List.rev !nodes);
    consumers;
    producer_count;
    class_kind;
    net_kind;
    names;
    regs;
    reg_out_class;
    input_class;
  }

let node_inputs = function
  | Ngate { inputs; _ } -> Array.to_list inputs
  | Ndriver { guard; source; _ } -> source :: Option.to_list guard

let node_output = function
  | Ngate { output; _ } -> output
  | Ndriver { target; _ } -> target
