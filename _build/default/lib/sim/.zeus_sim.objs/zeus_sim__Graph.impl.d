lib/sim/graph.ml: Array Check Elaborate Etype List Netlist Option Zeus_sem
