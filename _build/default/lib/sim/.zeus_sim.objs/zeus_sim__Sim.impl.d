lib/sim/sim.ml: Array Cval Elaborate Etype Fmt Graph Hashtbl List Logic Netlist Option Queue Random String Zeus_base Zeus_sem
