lib/sim/graph.mli: Elaborate Etype Netlist Zeus_sem
