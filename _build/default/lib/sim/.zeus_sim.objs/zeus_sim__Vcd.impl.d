lib/sim/vcd.ml: Buffer Char Elaborate List Logic Printf Sim String Zeus_base Zeus_sem
