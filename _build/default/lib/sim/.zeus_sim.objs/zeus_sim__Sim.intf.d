lib/sim/sim.mli: Elaborate Logic Zeus_base Zeus_sem
