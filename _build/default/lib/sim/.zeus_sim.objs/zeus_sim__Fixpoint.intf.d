lib/sim/fixpoint.mli: Sim Zeus_base Zeus_sem
