lib/sim/fixpoint.ml: Sim
