lib/sim/explain.mli: Fmt Logic Sim Zeus_base Zeus_sem
