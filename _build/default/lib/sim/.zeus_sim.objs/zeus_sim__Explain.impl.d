lib/sim/explain.ml: Elaborate Fmt Hashtbl List Logic Netlist Option Sim Zeus_base Zeus_sem
