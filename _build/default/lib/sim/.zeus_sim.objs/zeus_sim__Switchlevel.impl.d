lib/sim/switchlevel.ml: Sim
