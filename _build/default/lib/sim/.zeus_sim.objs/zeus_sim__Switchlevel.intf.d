lib/sim/switchlevel.mli: Sim Zeus_base Zeus_sem
