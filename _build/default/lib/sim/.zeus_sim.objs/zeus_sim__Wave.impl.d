lib/sim/wave.ml: Buffer List Logic Printf Sim String Zeus_base Zeus_sem
