lib/sim/wave.mli: Sim
