(** The semantics graph of report section 8, in executable form: gates
    and drivers as producer nodes over canonicalized nets, with consumer
    lists for event-driven evaluation.  Registers contribute no
    combinational edges (they are the legal cycle breakers). *)

open Zeus_sem

type node =
  | Ngate of {
      op : Netlist.gate_op;
      inputs : Netlist.src array;
      output : int;
    }
  | Ndriver of {
      guard : Netlist.src option;
      source : Netlist.src;
      target : int;
    }

type t = {
  design : Elaborate.design;
  nl : Netlist.t;
  n_nets : int;
  nodes : node array;
  consumers : int list array; (** net -> nodes consuming it *)
  producer_count : int array; (** per canonical net *)
  class_kind : Etype.kind array; (** mux if any class member is mux *)
  net_kind : Etype.kind array; (** declared kind per original net *)
  names : string array;
  regs : Netlist.reg array;
  reg_out_class : bool array;
  input_class : bool array; (** testbench inputs *)
}

val build : Elaborate.design -> t
val node_inputs : node -> Netlist.src list
val node_output : node -> int
