(* The systolic pattern matcher of report section 10 (after Foster/Kung),
   searching a bit string for a pattern with optional wildcards.

   Pattern bits flow left-to-right, string bits right-to-left, one cell
   per clock; items enter every second cycle with 0s in the idle slots.
   The end-of-pattern marker resets the accumulated comparison and emits
   the match bit, which travels back to the left edge.

   Run with:  dune exec examples/pattern_search.exe *)

open Zeus

let search ~cells ~pattern ~wild ~text =
  let design = compile_exn (Corpus.patternmatch cells) in
  let sim = Sim.create design in
  List.iter
    (fun p -> Sim.poke_bool sim p false)
    [ "match.pattern"; "match.string"; "match.endofpattern"; "match.wild";
      "match.resultin" ];
  Sim.reset sim;
  let plen = List.length pattern in
  let results = ref [] in
  let cycles = 2 * (List.length text + (3 * plen)) in
  for cyc = 0 to cycles - 1 do
    let idle = cyc mod 2 = 1 in
    if idle then begin
      Sim.poke_bool sim "match.pattern" false;
      Sim.poke_bool sim "match.endofpattern" false;
      Sim.poke_bool sim "match.wild" false;
      Sim.poke_bool sim "match.string" false
    end
    else begin
      let i = cyc / 2 in
      (* the pattern recirculates: items then the end marker, repeated *)
      let pi = i mod (plen + 1) in
      Sim.poke_bool sim "match.pattern" (pi < plen && List.nth pattern pi = 1);
      Sim.poke_bool sim "match.endofpattern" (pi = plen);
      Sim.poke_bool sim "match.wild" (pi < plen && List.nth wild pi = 1);
      Sim.poke_bool sim "match.string"
        (match List.nth_opt text i with Some 1 -> true | _ -> false)
    end;
    Sim.step sim;
    if Logic.equal (Sim.peek_bit sim "match.result") Logic.One then
      results := cyc :: !results
  done;
  (List.rev !results, Sim.runtime_errors sim)

let show name ~pattern ~wild ~text =
  let results, errors = search ~cells:3 ~pattern ~wild ~text in
  Fmt.pr "@.%s@.  pattern: %a   wildcards: %a@.  text:    %a@." name
    Fmt.(list ~sep:nop int)
    pattern
    Fmt.(list ~sep:nop int)
    wild
    Fmt.(list ~sep:nop int)
    text;
  Fmt.pr "  match bits emitted at cycles: %a@."
    Fmt.(list ~sep:sp int)
    results;
  if errors <> [] then
    Fmt.pr "  %d runtime errors!@." (List.length errors)

let () =
  Fmt.pr "Systolic pattern matching (Zeus report, section 10)@.";
  show "alternating text, pattern 10" ~pattern:[ 1; 0 ] ~wild:[ 0; 0 ]
    ~text:[ 1; 0; 1; 0; 1; 0; 1; 0; 1; 0; 1; 0 ];
  show "no match in zeros" ~pattern:[ 1; 1 ] ~wild:[ 0; 0 ]
    ~text:[ 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0 ];
  show "wildcards match anything" ~pattern:[ 0; 0 ] ~wild:[ 1; 1 ]
    ~text:[ 1; 1; 0; 1; 0; 0; 1; 1; 0; 1; 1; 0 ];
  (* the processor array in silico: comparators above accumulators *)
  let design = compile_exn (Corpus.patternmatch 5) in
  match Floorplan.of_design design "match" with
  | Some plan -> Fmt.pr "@.%s" (Render.to_string plan)
  | None -> ()
