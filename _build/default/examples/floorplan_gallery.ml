(* The layout sub-language of report section 6 in action: ASCII
   floorplans and the H-tree's linear-area property (experiment E3).

   Run with:  dune exec examples/floorplan_gallery.exe *)

open Zeus

let show src top =
  let design = compile_exn src in
  match Floorplan.of_design design top with
  | Some plan -> Fmt.pr "@.%s" (Render.to_string plan)
  | None -> Fmt.pr "no layout for %s@." top

let () =
  Fmt.pr "Zeus layout language gallery@.";
  (* the ripple-carry adder's ORDER lefttoright row *)
  show (Corpus.adder_n 8) "adder";
  (* comparators over accumulators, one column per processing element *)
  show (Corpus.patternmatch 7) "match";
  (* the H-tree: nested ORDERs with flip90 quadrants *)
  show (Corpus.htree 64) "a";
  (* a chessboard of virtual signals replaced with black/white cells *)
  let chessboard =
    {zeus|
TYPE black = COMPONENT (IN t: boolean; OUT b: boolean) IS BEGIN b := NOT t END;
white = COMPONENT (IN t: boolean; OUT b: boolean) IS BEGIN b := t END;
board = COMPONENT (IN x: boolean; OUT y: boolean) IS
SIGNAL m: ARRAY[1..6,1..6] OF virtual;
{ ORDER toptobottom
    FOR i = 1 TO 6 DO
      ORDER lefttoright
        FOR j = 1 TO 6 DO
          WHEN odd(i+j) THEN m[i,j] = black OTHERWISE m[i,j] = white END
        END
      END
    END
  END }
BEGIN
  m[1,1].t := x;
  FOR j := 1 TO 5 DO m[1,j+1].t := m[1,j].b END;
  FOR i := 1 TO 5 DO FOR j := 1 TO 6 DO m[i+1,j].t := m[i,j].b END END;
  FOR j := 1 TO 5 DO * := m[6,j].b END;  <* close the unused bottom outputs *>
  y := m[6,6].b
END;
SIGNAL s: board;
|zeus}
  in
  show chessboard "s";
  (* E3: area grows linearly with the number of leaves *)
  Fmt.pr "@.H-tree area (linear in the number of leaves n):@.";
  Fmt.pr "  %8s %8s %8s %8s@." "n" "width" "height" "area";
  List.iter
    (fun n ->
      let design = compile_exn (Corpus.htree n) in
      match Floorplan.of_design design "a" with
      | Some plan ->
          Fmt.pr "  %8d %8d %8d %8d@." n plan.Floorplan.width
            plan.Floorplan.height (Floorplan.area plan)
      | None -> ())
    [ 1; 4; 16; 64; 256; 1024 ]
