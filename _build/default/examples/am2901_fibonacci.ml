(* A microcoded program on the AM2901 bit-slice ALU (report abstract):
   compute the Fibonacci sequence modulo 16 in the register file.

   Register plan: r1 = F(k-1), r2 = F(k); each iteration microexecutes
     r3 <- r1 + r2    (source AB, function ADD, dest RAMF at B=3)
     r1 <- r2 + 0     (source AB with A=2,B=1? — use DA via Y...)
   Moves are done as "ADD with zero": source ZB reads (0, B), dest RAMF
   writes into B... which would overwrite the source, so moves go
   through Y-less RAM writes: RAMF at a different B with source ZA.

   Run with:  dune exec examples/am2901_fibonacci.exe *)

open Zeus

let () =
  let design = compile_exn Corpus.am2901 in
  let sim = Sim.create design in
  let exec ?(i = 0) ?(a = 0) ?(b = 0) ?(d = 0) ?(cin = false) () =
    Sim.poke_int sim "alu.i" i;
    Sim.poke_int sim "alu.a" a;
    Sim.poke_int sim "alu.b" b;
    Sim.poke_int sim "alu.d" d;
    Sim.poke_bool sim "alu.cin" cin;
    Sim.step sim;
    Sim.peek_int sim "alu.y"
  in
  (* octal instruction encoding: src | fn | dest *)
  let load_const ~reg v = exec ~i:0o703 ~b:reg ~d:v () in
  (* r[b] <- r[a] + r[b] : source AB (1), ADD (0), RAMF (3) *)
  let add_into ~a ~b = exec ~i:0o103 ~a ~b () in
  (* r[b] <- 0 + r[a] : source ZA (4), ADD, RAMF writes B *)
  let move ~from_ ~to_ = exec ~i:0o403 ~a:from_ ~b:to_ () in
  ignore (load_const ~reg:1 0);
  (* r1 = F(0) = 0 *)
  ignore (load_const ~reg:2 1);
  (* r2 = F(1) = 1 *)
  Fmt.pr "Fibonacci mod 16 on the AM2901:@.  F(0)=0 F(1)=1";
  for k = 2 to 12 do
    ignore (move ~from_:2 ~to_:3);
    (* r3 = F(k-1) *)
    ignore (add_into ~a:1 ~b:3);
    (* r3 = F(k-2) + F(k-1) = F(k) *)
    ignore (move ~from_:2 ~to_:1);
    (* r1 = F(k-1) *)
    let y = move ~from_:3 ~to_:2 (* r2 = F(k); Y shows the moved value *) in
    Fmt.pr " F(%d)=%a" k Fmt.(option ~none:(any "?") int) y
  done;
  Fmt.pr "@.";
  match Sim.runtime_errors sim with
  | [] -> Fmt.pr "no runtime violations in %d cycles.@." (Sim.cycle_count sim)
  | errs -> Fmt.pr "%d runtime errors!@." (List.length errs)
