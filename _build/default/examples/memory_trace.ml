(* The register-file/RAM idiom of report section 5.1: an array of REG
   words addressed with NUM, written under a write-enable guard.  Dumps a
   VCD waveform of the transaction trace.

   Run with:  dune exec examples/memory_trace.exe *)

open Zeus

let () =
  let design = compile_exn (Corpus.ram ~abits:4 ~wbits:8) in
  Fmt.pr "16x8 RAM built from REG: %s@."
    (Netlist.stats design.Elaborate.netlist);
  let sim = Sim.create design in
  let vcd = Vcd.create sim [ "m.addr"; "m.data"; "m.we"; "m.q" ] in
  let step () =
    Sim.step sim;
    Vcd.sample vcd
  in
  let write addr v =
    Sim.poke_int sim "m.addr" addr;
    Sim.poke_int sim "m.data" v;
    Sim.poke_bool sim "m.we" true;
    step ();
    Fmt.pr "  write [%2d] <- %3d@." addr v
  in
  let read addr =
    Sim.poke_bool sim "m.we" false;
    Sim.poke_int sim "m.addr" addr;
    step ();
    let v = Sim.peek_int sim "m.q" in
    Fmt.pr "  read  [%2d] -> %a@." addr Fmt.(option ~none:(any "UNDEF") int) v;
    v
  in
  write 0 17;
  write 5 171;
  write 15 255;
  ignore (read 0);
  ignore (read 5);
  ignore (read 9);
  (* never written: UNDEF *)
  write 5 1;
  ignore (read 5);
  ignore (read 15);
  let path = Filename.temp_file "zeus_ram" ".vcd" in
  Vcd.to_file vcd path;
  Fmt.pr "waveform written to %s (%d bytes)@." path
    (String.length (Vcd.contents vcd));
  match Sim.runtime_errors sim with
  | [] -> Fmt.pr "no runtime violations.@."
  | errs -> Fmt.pr "%d runtime errors!@." (List.length errs)
