(* The sequential-machine corpus under the Testbench and Wave tools: a
   binary counter and an LFSR observed as ASCII waveforms, and a
   table-driven verification run.

   Run with:  dune exec examples/counter_scope.exe *)

open Zeus

let () =
  (* 4-bit counter on the scope *)
  let design = compile_exn (Corpus_fsm.counter 4) in
  let sim = Sim.create design in
  let wave = Wave.create sim [ "c.en"; "c.value"; "c.value[4]"; "c.value[3]" ] in
  Sim.poke_bool sim "c.en" true;
  Sim.reset sim;
  for cyc = 1 to 24 do
    Sim.poke_bool sim "c.en" (cyc < 18);
    Sim.step sim;
    Wave.sample wave
  done;
  Fmt.pr "4-bit counter (en drops at cycle 18):@.%s@." (Wave.render wave);

  (* LFSR state sequence *)
  let design = compile_exn Corpus_fsm.lfsr4 in
  let sim = Sim.create design in
  let wave = Wave.create sim [ "l.q" ] in
  Sim.poke_bool sim "l.en" true;
  Sim.reset sim;
  for _ = 1 to 16 do
    Sim.step sim;
    Wave.sample wave
  done;
  Fmt.pr "4-bit LFSR (maximal period 15):@.%s@." (Wave.render_values wave);

  (* table-driven verification with the Testbench harness *)
  let design = compile_exn Corpus_fsm.serial_adder in
  let tb = Testbench.create design in
  Testbench.reset tb;
  (* 3 + 5 bit-serially, LSB first: a=110..., b=101... *)
  List.iteri
    (fun i (a, b, s) ->
      Testbench.set_bool tb "sa.a" a;
      Testbench.set_bool tb "sa.b" b;
      Testbench.clock tb;
      ignore i;
      Testbench.expect_bool tb "sa.s" s)
    [
      (true, true, false); (* 1+1 = 0 carry 1 *)
      (true, false, false); (* 1+0+c = 0 carry 1 *)
      (false, true, false); (* 0+1+c = 0 carry 1 *)
      (false, false, true); (* 0+0+c = 1 *)
    ];
  Fmt.pr "serial adder 3+5 (expect 8 = 0001 LSB-first):@.";
  Testbench.report Fmt.stdout tb
