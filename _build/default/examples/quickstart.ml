(* Quickstart: write a Zeus program as a string, compile it, simulate it.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {zeus|
TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
BEGIN
  s := XOR(a,b);
  cout := AND(a,b)
END;

fulladder = COMPONENT (IN a,b,cin: boolean; OUT cout,s: boolean) IS
SIGNAL h1,h2: halfadder;
BEGIN
  h1(a,b,*,h2.a);       <* the * closes the unused cout pin *>
  h2(h1.s,cin,*,s);
  cout := OR(h1.cout,h2.cout)
END;

SIGNAL fa: fulladder;
|zeus}

(* a variant with a deliberate short: s is driven twice *)
let buggy =
  {zeus|
TYPE bad = COMPONENT (IN a,b: boolean; OUT s: boolean) IS
BEGIN
  s := XOR(a,b);
  s := AND(a,b)
END;
SIGNAL x: bad;
|zeus}

let () =
  (* 1. compile: parse + elaborate + static checks *)
  let design = Zeus.compile_exn source in
  Fmt.pr "compiled: %s@." (Zeus.Netlist.stats design.Zeus.Elaborate.netlist);

  (* 2. simulate the full adder truth table *)
  let sim = Zeus.Sim.create design in
  Fmt.pr "@.a b cin | cout s@.";
  for a = 0 to 1 do
    for b = 0 to 1 do
      for cin = 0 to 1 do
        Zeus.Sim.poke_bool sim "fa.a" (a = 1);
        Zeus.Sim.poke_bool sim "fa.b" (b = 1);
        Zeus.Sim.poke_bool sim "fa.cin" (cin = 1);
        Zeus.Sim.step sim;
        Fmt.pr "%d %d  %d  |  %a   %a@." a b cin Zeus.Logic.pp
          (Zeus.Sim.peek_bit sim "fa.cout")
          Zeus.Logic.pp
          (Zeus.Sim.peek_bit sim "fa.s")
      done
    done
  done;

  (* 3. the static type rules of section 4.7 catch power-ground shorts *)
  Fmt.pr "@.compiling the buggy variant:@.";
  match Zeus.compile buggy with
  | Ok _ -> Fmt.pr "  unexpectedly accepted?!@."
  | Error diags ->
      List.iter (fun d -> Fmt.pr "  %a@." Zeus.Diag.pp d) diags
