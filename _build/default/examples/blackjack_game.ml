(* The Blackjack dealer machine of report section 10, playing scripted
   hands.  Reproduces the finite-state-machine behaviour: the machine
   draws cards until the score reaches 17, stands below 22, goes broke at
   22 or above, and counts a first ace as 11 (demoting it to 1 if that
   busts the hand).

   Run with:  dune exec examples/blackjack_game.exe *)

open Zeus

let state_name = function
  | Some 0 -> "start"
  | Some 1 -> "read"
  | Some 2 -> "sum"
  | Some 3 -> "firstace"
  | Some 4 -> "test"
  | Some 5 -> "end"
  | Some n -> Printf.sprintf "state-%d" n
  | None -> "???"

let play hand =
  let design = compile_exn Corpus.blackjack in
  let sim = Sim.create design in
  Sim.poke_bool sim "bj.ycard" false;
  Sim.poke_int sim "bj.value" 0;
  Sim.reset sim;
  Fmt.pr "@.hand: %a@." Fmt.(list ~sep:sp int) hand;
  let cards = ref hand in
  let outcome = ref None in
  let cycles = ref 0 in
  let just_dealt = ref false in
  while !outcome = None && !cycles < 100 do
    incr cycles;
    let state = Sim.peek_int sim "bj.state.out" in
    if state <> Some 1 then just_dealt := false;
    (* deal whenever the machine asks for a card in the read state (the
       visible state lags one cycle, so deal at most once per visit) *)
    (match (state, !cards) with
    | Some 1, c :: rest
      when Logic.equal (Sim.peek_bit sim "bj.hit") Logic.One
           && not !just_dealt ->
        Fmt.pr "  cycle %2d: %-8s score=%-2s -> dealing %d@." !cycles
          (state_name state)
          (match Sim.peek_int sim "bj.score.out" with
          | Some s -> string_of_int s
          | None -> "?")
          c;
        Sim.poke_int sim "bj.value" c;
        Sim.poke_bool sim "bj.ycard" true;
        cards := rest;
        just_dealt := true
    | _ ->
        Sim.poke_bool sim "bj.ycard" false);
    Sim.step sim;
    if Logic.equal (Sim.peek_bit sim "bj.stand") Logic.One then
      outcome := Some "STAND"
    else if Logic.equal (Sim.peek_bit sim "bj.broke") Logic.One then
      outcome := Some "BROKE"
  done;
  Fmt.pr "  => %s with score %a after %d cycles@."
    (Option.value ~default:"no outcome" !outcome)
    Fmt.(option ~none:(any "?") int)
    (Sim.peek_int sim "bj.score.out")
    !cycles;
  (match Sim.runtime_errors sim with
  | [] -> ()
  | errs -> Fmt.pr "  %d runtime errors!@." (List.length errs))

let () =
  Fmt.pr "Blackjack dealer FSM (Zeus report, section 10)@.";
  play [ 10; 9 ];          (* 19: stand *)
  play [ 10; 5; 9 ];       (* 24: broke *)
  play [ 1; 10 ];          (* ace as 11 -> 21: stand *)
  play [ 1; 5; 9; 4 ];     (* 11+5+9=25 -> demote ace -> 15 -> +4 -> 19 *)
  play [ 2; 3; 4; 5; 6 ]   (* slow build to 20: stand *)
