examples/quickstart.mli:
