examples/quickstart.ml: Fmt List Zeus
