examples/memory_trace.ml: Corpus Elaborate Filename Fmt List Netlist Sim String Vcd Zeus
