examples/am2901_fibonacci.ml: Corpus Fmt List Sim Zeus
