examples/memory_trace.mli:
