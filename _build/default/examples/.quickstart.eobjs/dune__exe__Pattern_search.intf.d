examples/pattern_search.mli:
