examples/counter_scope.ml: Corpus_fsm Fmt List Sim Testbench Wave Zeus
