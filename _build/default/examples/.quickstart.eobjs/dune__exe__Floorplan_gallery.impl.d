examples/floorplan_gallery.ml: Corpus Floorplan Fmt List Render Zeus
