examples/floorplan_gallery.mli:
