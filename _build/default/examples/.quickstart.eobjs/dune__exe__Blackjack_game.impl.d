examples/blackjack_game.ml: Corpus Fmt List Logic Option Printf Sim Zeus
