examples/blackjack_game.mli:
