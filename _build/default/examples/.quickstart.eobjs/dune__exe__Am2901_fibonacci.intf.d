examples/am2901_fibonacci.mli:
