examples/counter_scope.mli:
