examples/pattern_search.ml: Corpus Floorplan Fmt List Logic Render Sim Zeus
