(* Property-based fuzzing of the layout language: random nested ORDER
   trees over a pool of cells must produce overlap-free floorplans whose
   bounding box contains every placed cell, with each mentioned cell
   placed exactly once.  Also the serpentine ("snake", section 6)
   arrangement as a directed case. *)

open Zeus

let compile src =
  match Zeus.compile src with
  | Ok d -> d
  | Error diags -> Alcotest.failf "compile: %a" Fmt.(list Diag.pp) diags

(* a random layout tree over cells c[1..n] *)
type ltree =
  | Cell of int
  | Order of string * ltree list

let directions =
  [ "lefttoright"; "righttoleft"; "toptobottom"; "bottomtotop";
    "toplefttobottomright"; "bottomrighttotopleft";
    "toprighttobottomleft"; "bottomlefttotopright" ]

let gen_ltree n_cells =
  QCheck.Gen.(
    let split pool size =
      (* partition the pool into 1..size groups *)
      if size <= 1 || List.length pool <= 1 then return [ pool ]
      else
        int_range 1 (min size (List.length pool)) >>= fun k ->
        let rec chunks pool k =
          if k <= 1 then return [ pool ]
          else
            int_range 1 (List.length pool - k + 1) >>= fun take ->
            let rec grab n = function
              | xs when n = 0 -> ([], xs)
              | x :: xs ->
                  let a, b = grab (n - 1) xs in
                  (x :: a, b)
              | [] -> ([], [])
            in
            let first, rest = grab take pool in
            map (fun more -> first :: more) (chunks rest (k - 1))
        in
        chunks pool k
    in
    let rec tree pool depth =
      match pool with
      | [ c ] -> return (Cell c)
      | pool when depth <= 0 ->
          map
            (fun d -> Order (d, List.map (fun c -> Cell c) pool))
            (oneofl directions)
      | pool ->
          oneofl directions >>= fun d ->
          split pool 3 >>= fun groups ->
          let rec subs = function
            | [] -> return []
            | g :: rest ->
                tree g (depth - 1) >>= fun t ->
                map (fun ts -> t :: ts) (subs rest)
          in
          map (fun ts -> Order (d, ts)) (subs groups)
    in
    tree (List.init n_cells (fun i -> i + 1)) 3)

let rec ltree_to_layout = function
  | Cell i -> Printf.sprintf "c[%d]" i
  | Order (d, subs) ->
      Printf.sprintf "ORDER %s %s END" d
        (String.concat "; " (List.map ltree_to_layout subs))

let ltree_to_source n t =
  Printf.sprintf
    "TYPE cell = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := \
     NOT a END;\n\
     t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL c: \
     ARRAY[1..%d] OF cell;\n\
     { %s }\n\
     BEGIN c[1].a := x; %s y := c[%d].b END;\n\
     SIGNAL s: t;"
    n (ltree_to_layout t)
    (String.concat " "
       (List.init (n - 1) (fun i ->
            Printf.sprintf "c[%d].a := c[%d].b;" (i + 2) (i + 1))))
    n

let prop_random_layouts =
  QCheck.Test.make ~count:120 ~name:"random_order_trees"
    (QCheck.make
       ~print:(fun (n, t) -> ltree_to_source n t)
       QCheck.Gen.(int_range 2 9 >>= fun n -> map (fun t -> (n, t)) (gen_ltree n)))
    (fun (n, t) ->
      let d = compile (ltree_to_source n t) in
      match Floorplan.of_design d "s" with
      | None -> QCheck.Test.fail_report "no plan"
      | Some plan ->
          let cells = plan.Floorplan.cells in
          (* every cell placed exactly once *)
          if List.length cells <> n then
            QCheck.Test.fail_reportf "placed %d of %d cells"
              (List.length cells) n
          else if Floorplan.overlaps plan <> [] then
            QCheck.Test.fail_report "overlapping cells"
          else begin
            (* all cells inside the bounding box *)
            let inside (p : Floorplan.placement) =
              let r = p.Floorplan.rect in
              r.Geom.x >= 0 && r.Geom.y >= 0
              && Geom.right r <= plan.Floorplan.width
              && Geom.bottom r <= plan.Floorplan.height
            in
            List.for_all inside cells
          end)

(* ---- the serpentine arrangement of section 6 ("Fig. Snake") ---- *)

let snake_source rows cols =
  Printf.sprintf
    "TYPE cell = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := \
     NOT a END;\n\
     snake = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL c: \
     ARRAY[1..%d,1..%d] OF cell;\n\
     { ORDER toptobottom FOR i = 1 TO %d DO WHEN odd(i) THEN ORDER \
     lefttoright FOR j = 1 TO %d DO c[i,j] END END OTHERWISE ORDER \
     righttoleft FOR j = 1 TO %d DO c[i,j] END END END END END }\n\
     BEGIN c[1,1].a := x; %s y := c[%d,%d].b END;\n\
     SIGNAL s: snake;"
    rows cols rows cols cols
    (String.concat " "
       (List.concat
          (List.init rows (fun i ->
               List.init cols (fun j ->
                   if i = 0 && j = 0 then ""
                   else
                     let pi, pj =
                       if j = 0 then (i - 1, cols - 1) else (i, j - 1)
                     in
                     Printf.sprintf "c[%d,%d].a := c[%d,%d].b;" (i + 1)
                       (j + 1) (pi + 1) (pj + 1))))))
    rows cols

let test_snake () =
  let d = compile (snake_source 4 5) in
  match Floorplan.of_design d "s" with
  | None -> Alcotest.fail "no snake plan"
  | Some plan ->
      Alcotest.(check int) "grid width" 5 plan.Floorplan.width;
      Alcotest.(check int) "grid height" 4 plan.Floorplan.height;
      Alcotest.(check int) "all cells" 20 (List.length plan.Floorplan.cells);
      Alcotest.(check int) "no overlaps" 0
        (List.length (Floorplan.overlaps plan));
      (* odd rows run left-to-right, even rows right-to-left *)
      let x_of i j =
        let p =
          List.find
            (fun (p : Floorplan.placement) ->
              p.Floorplan.path = Printf.sprintf "s.c[%d][%d]" i j)
            plan.Floorplan.cells
        in
        p.Floorplan.rect.Geom.x
      in
      Alcotest.(check int) "row1 starts left" 0 (x_of 1 1);
      Alcotest.(check int) "row2 starts right" 4 (x_of 2 1);
      Alcotest.(check int) "row3 starts left" 0 (x_of 3 1)

let test_snake_simulates () =
  (* 20 inverters in a chain: even count preserves the input *)
  let d = compile (snake_source 4 5) in
  let sim = Sim.create d in
  Sim.poke_bool sim "s.x" true;
  Sim.step sim;
  Alcotest.(check char) "even inverter chain" '1'
    (Logic.to_char (Sim.peek_bit sim "s.y"))

let () =
  Alcotest.run "layout_fuzz"
    [
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest prop_random_layouts ] );
      ( "snake",
        [
          Alcotest.test_case "serpentine grid" `Quick test_snake;
          Alcotest.test_case "simulates" `Quick test_snake_simulates;
        ] );
    ]
