(* Language-corner sweep: one end-to-end test per Zeus feature that the
   other suites touch only incidentally — WITH nesting, field ranges,
   DOWNTO, record (bus) types, octal, star widths, conditional
   generation chains, parameterized type plumbing, hierarchical INOUT
   aliasing, uses lists, named signal constants. *)

open Zeus

let logic = Alcotest.testable Logic.pp Logic.equal

let compile src =
  match Zeus.compile src with
  | Ok d -> d
  | Error diags -> Alcotest.failf "compile: %a" Fmt.(list Diag.pp) diags

let sim_of src = Sim.create (compile src)

(* ---- WITH statements ---- *)

let test_with_nested () =
  let sim =
    sim_of
      "TYPE inner = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := \
       NOT a END;\n\
       outer = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL i: \
       inner; BEGIN WITH i DO a := x END; WITH i DO y := b END END;\n\
       SIGNAL s: outer;"
  in
  Sim.poke_bool sim "s.x" false;
  Sim.step sim;
  Alcotest.check logic "through two withs" Logic.One (Sim.peek_bit sim "s.y")

let test_with_shadowing () =
  (* the with-field wins over an outer signal of the same name
     (Modula-2 scoping, section 4.6) *)
  let sim =
    sim_of
      "TYPE inner = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := \
       NOT a END;\n\
       outer = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL i: \
       inner; b: boolean; BEGIN b := x; WITH i DO a := 1; y := b END; * := \
       b END;\n\
       SIGNAL s: outer;"
  in
  Sim.poke_bool sim "s.x" true;
  Sim.step sim;
  (* y must be i.b = NOT 1 = 0, not the local b = 1 *)
  Alcotest.check logic "field shadows local" Logic.Zero
    (Sim.peek_bit sim "s.y")

(* ---- record (bus) types, section 3.2 ---- *)

let test_bus_record () =
  let sim =
    sim_of
      "TYPE bo3 = ARRAY[1..3] OF boolean;\n\
       bus = COMPONENT (r,s: bo3; u: boolean);\n\
       t = COMPONENT (IN x: bo3; OUT y: bo3; OUT z: boolean) IS SIGNAL b: \
       bus; BEGIN b.r := x; b.s := NOT b.r; b.u := AND(x[1],x[2]); y := \
       b.s; z := b.u END;\n\
       SIGNAL q: t;"
  in
  Sim.poke_int sim "q.x" 0b101;
  Sim.step sim;
  Alcotest.(check (option int)) "bus wires" (Some 0b010)
    (Sim.peek_int sim "q.y");
  Alcotest.check logic "bus bit" Logic.Zero (Sim.peek_bit sim "q.z")

(* ---- field ranges .a..b (grammar line 39) ---- *)

let test_field_range () =
  let sim =
    sim_of
      "TYPE r4 = COMPONENT (a,b,c,d: boolean);\n\
       t = COMPONENT (IN x: ARRAY[1..2] OF boolean; OUT y: ARRAY[1..2] OF \
       boolean) IS SIGNAL q: r4; BEGIN q.a..b := x; y := q.a..b; * := \
       q.c..d END;\n\
       SIGNAL s: t;"
  in
  Sim.poke_int sim "s.x" 0b10;
  Sim.step sim;
  Alcotest.(check (option int)) "field range" (Some 0b10)
    (Sim.peek_int sim "s.y")

(* ---- the parenthesis-irrelevance example of section 4.7 ---- *)

let test_connection_parens_irrelevant () =
  (* "the parenthesis structure within the n signal expressions is
     unimportant": the report's own example
       s((p,q),(p[1],q[2],p[2],q[1],q[3]))  *)
  let base : (string -> string, unit, string) format =
    "TYPE five = COMPONENT (b1,c1,d1,e1,f1: multiplex);\n\
     h = COMPONENT (IN a: ARRAY[1..5] OF boolean; b: five) IS BEGIN b.b1 \
     := a[1]; b.c1 := a[2]; b.d1 := a[3]; b.e1 := a[4]; b.f1 := a[5] END;\n\
     t = COMPONENT (IN p: ARRAY[1..2] OF boolean; IN q: ARRAY[1..3] OF \
     boolean; OUT z: boolean) IS SIGNAL s: h; o: ARRAY[1..5] OF multiplex; \
     BEGIN %s; z := AND(o[1],o[2],o[3],o[4],o[5]) END;\n\
     SIGNAL x: t;"
  in
  let variants =
    [
      "s((p,q),(o[1],o[2],o[3],o[4],o[5]))";
      "s((p[1],q[2],p[2],q[1],q[3]),((o[1],o[2]),(o[3],o[4],o[5])))";
      "s((p,(q[1],q[2],q[3])),(o[1],(o[2],o[3]),(o[4],o[5])))";
    ]
  in
  List.iter
    (fun conn ->
      let sim = sim_of (Printf.sprintf base conn) in
      Sim.poke_int sim "x.p" 0b11;
      Sim.poke_int sim "x.q" 0b111;
      Sim.step sim;
      Alcotest.check logic
        (Printf.sprintf "all ones through %s" conn)
        Logic.One (Sim.peek_bit sim "x.z"))
    variants

(* ---- unpoke ---- *)

let test_unpoke () =
  let sim =
    sim_of
      "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS BEGIN y := NOT \
       a END;\nSIGNAL s: t;"
  in
  Sim.poke_bool sim "s.a" false;
  Sim.step sim;
  Alcotest.check logic "poked" Logic.One (Sim.peek_bit sim "s.y");
  Sim.unpoke sim "s.a";
  Sim.step sim;
  Alcotest.check logic "floating again" Logic.Undef (Sim.peek_bit sim "s.y")

(* ---- DOWNTO and empty loops ---- *)

let test_downto_and_empty () =
  let sim =
    sim_of
      "TYPE t = COMPONENT (IN x: ARRAY[1..4] OF boolean; OUT y: ARRAY[1..4] \
       OF boolean) IS BEGIN FOR i := 4 DOWNTO 1 DO y[i] := x[5-i] END; FOR \
       j := 1 TO 0 DO y[99] := x[99] END END;\n\
       SIGNAL s: t;"
  in
  Sim.poke_int sim "s.x" 0b1100;
  Sim.step sim;
  Alcotest.(check (option int)) "reversed" (Some 0b0011)
    (Sim.peek_int sim "s.y")

(* ---- octal constants in types ---- *)

let test_octal_bounds () =
  let d =
    compile
      "TYPE t = COMPONENT (IN x: ARRAY[1..10B] OF boolean; OUT y: \
       ARRAY[1..10B] OF boolean) IS BEGIN y := x END;\nSIGNAL s: t;"
  in
  match Elaborate.resolve_path d "s.x" with
  | Ok nets -> Alcotest.(check int) "octal width" 8 (List.length nets)
  | Error e -> Alcotest.fail e

(* ---- star with width, "*:n" ---- *)

let test_star_width () =
  ignore
    (compile
       "TYPE r = COMPONENT (IN a: ARRAY[1..3] OF boolean; OUT b: boolean) \
        IS BEGIN b := AND(a[1],a[2],a[3]) END;\n\
        t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL i: r; BEGIN \
        i((x,*:2),y) END;\n\
        SIGNAL s: t;")

(* ---- WHEN / OTHERWISEWHEN chains ---- *)

let test_when_chain () =
  let variant n =
    Printf.sprintf
      "CONST n = %d;\n\
       TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS BEGIN WHEN n = \
       1 THEN y := x OTHERWISEWHEN n = 2 THEN y := NOT x OTHERWISE y := 0 \
       END END;\n\
       SIGNAL s: t;"
      n
  in
  let run n input =
    let sim = sim_of (variant n) in
    Sim.poke_bool sim "s.x" input;
    Sim.step sim;
    Sim.peek_bit sim "s.y"
  in
  Alcotest.check logic "arm 1" Logic.One (run 1 true);
  Alcotest.check logic "arm 2" Logic.Zero (run 2 true);
  Alcotest.check logic "otherwise" Logic.Zero (run 3 true)

(* ---- parameterized types through multiple levels ---- *)

let test_parameterized_nesting () =
  let sim =
    sim_of
      "TYPE bo(n) = ARRAY[1..n] OF boolean;\n\
       pair(n) = COMPONENT (lo: bo(n); hi: bo(n));\n\
       widen(k) = COMPONENT (IN a: bo(k); OUT z: bo(2*k)) IS SIGNAL p: \
       pair(k); BEGIN p.lo := a; p.hi := NOT a; z := (p.hi,p.lo) END;\n\
       SIGNAL s: widen(3);"
  in
  Sim.poke_int sim "s.a" 0b101;
  Sim.step sim;
  Alcotest.(check (option int)) "widened" (Some 0b010101)
    (Sim.peek_int sim "s.z")

let test_min_max_in_bounds () =
  let d =
    compile
      "CONST a = 3; b = 7;\n\
       TYPE t = COMPONENT (IN x: ARRAY[min(a,b)..max(a,b)] OF boolean; OUT \
       y: boolean) IS BEGIN y := x[3] END;\nSIGNAL s: t;"
  in
  match Elaborate.resolve_path d "s.x" with
  | Ok nets -> Alcotest.(check int) "min..max bounds" 5 (List.length nets)
  | Error e -> Alcotest.fail e

(* ---- INOUT aliasing through the hierarchy ---- *)

let test_inout_chain () =
  (* a multiplex wire aliased through two levels of components: a drive
     at the bottom is visible at the top *)
  let sim =
    sim_of
      "TYPE leaf = COMPONENT (w: multiplex; IN en,v: boolean) IS BEGIN IF \
       en THEN w := v END END;\n\
       mid = COMPONENT (w: multiplex; IN en,v: boolean) IS SIGNAL l: leaf; \
       BEGIN l.w == w; l.en := en; l.v := v END;\n\
       top = COMPONENT (IN en,v: boolean; OUT y: boolean) IS SIGNAL m: mid; \
       wire: multiplex; BEGIN m.w == wire; m.en := en; m.v := v; y := wire \
       END;\n\
       SIGNAL s: top;"
  in
  Sim.poke_bool sim "s.en" true;
  Sim.poke_bool sim "s.v" true;
  Sim.step sim;
  Alcotest.check logic "aliased through two levels" Logic.One
    (Sim.peek_bit sim "s.y");
  Sim.poke_bool sim "s.en" false;
  Sim.step sim;
  Alcotest.check logic "released reads UNDEF via amplifier" Logic.Undef
    (Sim.peek_bit sim "s.y")

(* ---- shared tri-state bus with two drivers ---- *)

let test_tristate_bus () =
  let sim =
    sim_of
      "TYPE drv = COMPONENT (w: multiplex; IN en,v: boolean) IS BEGIN IF en \
       THEN w := v END END;\n\
       top = COMPONENT (IN en1,v1,en2,v2: boolean; OUT y: boolean) IS \
       SIGNAL d1,d2: drv; bus: multiplex; BEGIN d1.w == bus; d2.w == bus; \
       d1.en := en1; d1.v := v1; d2.en := en2; d2.v := v2; y := bus END;\n\
       SIGNAL s: top;"
  in
  let drive en1 v1 en2 v2 =
    Sim.poke_bool sim "s.en1" en1;
    Sim.poke_bool sim "s.v1" v1;
    Sim.poke_bool sim "s.en2" en2;
    Sim.poke_bool sim "s.v2" v2;
    Sim.step sim;
    Sim.peek_bit sim "s.y"
  in
  Alcotest.check logic "driver 1" Logic.One (drive true true false false);
  Alcotest.check logic "driver 2" Logic.Zero (drive false true true false);
  Alcotest.check logic "no driver" Logic.Undef (drive false true false false);
  let before = List.length (Sim.runtime_errors sim) in
  ignore (drive true true true false);
  Alcotest.(check bool) "contention detected" true
    (List.length (Sim.runtime_errors sim) > before)

(* ---- named signal constants ---- *)

let test_named_sig_const () =
  let sim =
    sim_of
      "CONST zero3 = (0,0,0); pattern = (1,0,1);\n\
       TYPE t = COMPONENT (IN sel: boolean; OUT y: ARRAY[1..3] OF boolean) \
       IS BEGIN IF sel THEN y := pattern ELSE y := zero3 END END;\n\
       SIGNAL s: t;"
  in
  Sim.poke_bool sim "s.sel" true;
  Sim.step sim;
  Alcotest.(check (option int)) "pattern" (Some 0b101) (Sim.peek_int sim "s.y");
  Sim.poke_bool sim "s.sel" false;
  Sim.step sim;
  Alcotest.(check (option int)) "zero" (Some 0) (Sim.peek_int sim "s.y")

let test_const_of_const () =
  let sim =
    sim_of
      "CONST base = (1,1); extended = (base,0);\n\
       TYPE t = COMPONENT (IN x: boolean; OUT y: ARRAY[1..3] OF boolean) IS \
       BEGIN * := x; y := extended END;\n\
       SIGNAL s: t;"
  in
  Sim.step sim;
  Alcotest.(check (option int)) "nested constant" (Some 0b110)
    (Sim.peek_int sim "s.y")

(* ---- indexed constants ---- *)

let test_indexed_constant () =
  let sim =
    sim_of
      "CONST table = ((0,0),(0,1),(1,0),(1,1));\n\
       TYPE t = COMPONENT (IN x: boolean; OUT y: ARRAY[1..2] OF boolean) IS \
       BEGIN * := x; y := table[3] END;\n\
       SIGNAL s: t;"
  in
  Sim.step sim;
  Alcotest.(check (option int)) "table[3]" (Some 0b10) (Sim.peek_int sim "s.y")

(* ---- array slices in assignments ---- *)

let test_array_slice () =
  let sim =
    sim_of
      "TYPE t = COMPONENT (IN x: ARRAY[1..8] OF boolean; OUT y: ARRAY[1..4] \
       OF boolean; OUT z: ARRAY[1..2] OF boolean) IS BEGIN y := x[3..6]; z \
       := x[1..2]; * := x[7..8] END;\n\
       SIGNAL s: t;"
  in
  Sim.poke_int sim "s.x" 0b10110100;
  Sim.step sim;
  Alcotest.(check (option int)) "middle slice" (Some 0b1101)
    (Sim.peek_int sim "s.y");
  Alcotest.(check (option int)) "head slice" (Some 0b10)
    (Sim.peek_int sim "s.z")

(* ---- nested SEQUENTIAL/PARALLEL ---- *)

let test_nested_seq_par () =
  ignore
    (compile
       "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS SIGNAL \
        u,v,w: boolean; BEGIN SEQUENTIAL PARALLEL u := NOT a; v := NOT a \
        END; SEQUENTIAL w := AND(u,v); y := NOT w END END END;\n\
        SIGNAL s: t;")

(* ---- REG(c) initialization (the reconstructed section 5.2) ---- *)

let test_reg_initial_value () =
  let sim =
    sim_of
      "TYPE t = COMPONENT (IN x: boolean; OUT y,z: boolean) IS SIGNAL a: \
       REG(1); b: REG(0); BEGIN a.in := AND(x,a.out); b.in := OR(x,b.out); \
       y := a.out; z := b.out END;\nSIGNAL s: t;"
  in
  Sim.poke_bool sim "s.x" true;
  Sim.step sim;
  (* first cycle reads the declared power-up values, no reset needed *)
  Alcotest.check logic "starts at 1" Logic.One (Sim.peek_bit sim "s.y");
  Alcotest.check logic "starts at 0" Logic.Zero (Sim.peek_bit sim "s.z")

let test_reg_init_array () =
  (* a whole register array with a common initial value *)
  let sim =
    sim_of
      "TYPE t = COMPONENT (IN x: boolean; OUT q: ARRAY[1..4] OF boolean) IS \
       SIGNAL r: ARRAY[1..4] OF REG(1); BEGIN IF x THEN r.in := BIN(0,4) \
       END; q := r.out END;\nSIGNAL s: t;"
  in
  Sim.poke_bool sim "s.x" false;
  Sim.step sim;
  Alcotest.(check (option int)) "all ones at power-up" (Some 15)
    (Sim.peek_int sim "s.q")

let test_reg_init_bad_value () =
  match Zeus.compile "SIGNAL r: REG(7);" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "REG(7) must be rejected"

(* ---- CLK is readable ---- *)

let test_clk_reads_one () =
  let sim =
    sim_of
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS BEGIN y := \
       AND(x,CLK) END;\nSIGNAL s: t;"
  in
  Sim.poke_bool sim "s.x" true;
  Sim.step sim;
  Alcotest.check logic "CLK ticks" Logic.One (Sim.peek_bit sim "s.y")

(* ---- empty statements and stray semicolons ---- *)

let test_empty_statements () =
  ignore
    (compile
       "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS BEGIN ; ; y \
        := NOT x ; ; END;\nSIGNAL s: t;")

let () =
  Alcotest.run "language"
    [
      ( "scoping",
        [
          Alcotest.test_case "with nested" `Quick test_with_nested;
          Alcotest.test_case "with shadowing" `Quick test_with_shadowing;
        ] );
      ( "structure",
        [
          Alcotest.test_case "connection parens" `Quick
            test_connection_parens_irrelevant;
          Alcotest.test_case "unpoke" `Quick test_unpoke;
          Alcotest.test_case "bus record" `Quick test_bus_record;
          Alcotest.test_case "field range" `Quick test_field_range;
          Alcotest.test_case "array slice" `Quick test_array_slice;
          Alcotest.test_case "parameterized nesting" `Quick
            test_parameterized_nesting;
          Alcotest.test_case "min/max bounds" `Quick test_min_max_in_bounds;
        ] );
      ( "control",
        [
          Alcotest.test_case "downto/empty" `Quick test_downto_and_empty;
          Alcotest.test_case "when chain" `Quick test_when_chain;
          Alcotest.test_case "nested seq/par" `Quick test_nested_seq_par;
          Alcotest.test_case "empty statements" `Quick test_empty_statements;
        ] );
      ( "tristate",
        [
          Alcotest.test_case "inout chain" `Quick test_inout_chain;
          Alcotest.test_case "shared bus" `Quick test_tristate_bus;
        ] );
      ( "constants",
        [
          Alcotest.test_case "octal bounds" `Quick test_octal_bounds;
          Alcotest.test_case "named sig const" `Quick test_named_sig_const;
          Alcotest.test_case "nested const" `Quick test_const_of_const;
          Alcotest.test_case "indexed const" `Quick test_indexed_constant;
          Alcotest.test_case "star width" `Quick test_star_width;
        ] );
      ( "predefined",
        [
          Alcotest.test_case "CLK" `Quick test_clk_reads_one;
          Alcotest.test_case "REG(c) init" `Quick test_reg_initial_value;
          Alcotest.test_case "REG(c) array" `Quick test_reg_init_array;
          Alcotest.test_case "REG(c) bad value" `Quick test_reg_init_bad_value;
        ] );
    ]
