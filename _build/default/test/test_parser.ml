(* Parser: the EBNF of report section 7 (main and layout syntax). *)

open Zeus

let parse_ok src =
  match Parser.program src with
  | Some p, _ -> p
  | None, bag -> Alcotest.failf "parse failed: %a" Diag.Bag.pp bag

let parse_err src =
  match Parser.program src with
  | None, bag -> Diag.Bag.errors bag
  | Some _, _ -> Alcotest.failf "expected a parse error for %S" src

let expr_ok src =
  match Parser.expression src with
  | Some e, _ -> e
  | None, bag -> Alcotest.failf "expr parse failed: %a" Diag.Bag.pp bag

(* ---- declarations ---- *)

let test_const_decl () =
  match parse_ok "CONST length = 7; start = (0,0,0); ten = BIN(10,5);" with
  | [ Ast.Dconst [ (l, Ast.Knum _); (s, Ast.Ksig (Ast.Sc_tuple _));
                   (t, Ast.Ksig (Ast.Sc_bin _)) ] ] ->
      Alcotest.(check string) "name" "length" l.Ast.id;
      Alcotest.(check string) "name" "start" s.Ast.id;
      Alcotest.(check string) "name" "ten" t.Ast.id
  | _ -> Alcotest.fail "const declaration shape"

let test_nested_sig_const () =
  match parse_ok "CONST a = ((0,1),(1,0),(0,0));" with
  | [ Ast.Dconst [ (_, Ast.Ksig (Ast.Sc_tuple (elems, _))) ] ] ->
      Alcotest.(check int) "outer arity" 3 (List.length elems)
  | _ -> Alcotest.fail "nested signal constant"

let test_type_decl () =
  match parse_ok "TYPE bo(n) = ARRAY [1..n] OF boolean;" with
  | [ Ast.Dtype [ d ] ] ->
      Alcotest.(check string) "name" "bo" d.Ast.tname.Ast.id;
      Alcotest.(check int) "formals" 1 (List.length d.Ast.tformals);
      (match d.Ast.tty with
      | Ast.Tarray (_, _, Ast.Tname (b, []), _) ->
          Alcotest.(check string) "elem" "boolean" b.Ast.id
      | _ -> Alcotest.fail "array type shape")
  | _ -> Alcotest.fail "type declaration shape"

let test_multidim_array () =
  (* ARRAY[1..n,1..n] OF virtual (section 6.4) desugars to nested arrays *)
  match parse_ok "TYPE m = ARRAY [1..4,1..4] OF virtual;" with
  | [ Ast.Dtype [ { Ast.tty = Ast.Tarray (_, _, Ast.Tarray _, _); _ } ] ] -> ()
  | _ -> Alcotest.fail "multi-dimensional array sugar"

let test_component_record () =
  (* component without body = record type *)
  match parse_ok "TYPE bus = COMPONENT (r,s,t: bo(3); u: boolean);" with
  | [ Ast.Dtype [ { Ast.tty = Ast.Tcomponent (c, _); _ } ] ] ->
      Alcotest.(check bool) "no body" true (c.Ast.cbody = None);
      Alcotest.(check int) "param groups" 2 (List.length c.Ast.cparams);
      Alcotest.(check bool) "inout"
        true
        ((List.hd c.Ast.cparams).Ast.fmode = Ast.Minout)
  | _ -> Alcotest.fail "record component"

let test_function_component () =
  match
    parse_ok
      "TYPE f = COMPONENT (IN a: boolean) : boolean IS BEGIN RESULT NOT a END;"
  with
  | [ Ast.Dtype [ { Ast.tty = Ast.Tcomponent (c, _); _ } ] ] ->
      Alcotest.(check bool) "has result" true (c.Ast.cresult <> None);
      Alcotest.(check bool) "has body" true (c.Ast.cbody <> None)
  | _ -> Alcotest.fail "function component"

let test_uses_clause () =
  match
    parse_ok
      "TYPE f = COMPONENT (IN a: boolean) IS USES x,y; BEGIN END; g = \
       COMPONENT (IN a: boolean) IS USES ; BEGIN END;"
  with
  | [ Ast.Dtype [ f; g ] ] ->
      let uses (d : Ast.type_def) =
        match d.Ast.tty with
        | Ast.Tcomponent ({ Ast.cbody = Some b; _ }, _) -> b.Ast.buses
        | _ -> None
      in
      Alcotest.(check (option (list string)))
        "uses list" (Some [ "x"; "y" ])
        (Option.map (List.map (fun i -> i.Ast.id)) (uses f));
      Alcotest.(check (option (list string))) "empty uses" (Some [])
        (Option.map (List.map (fun i -> i.Ast.id)) (uses g))
  | _ -> Alcotest.fail "uses clause"

let test_signal_decl_actuals () =
  (* both spellings: t(4) fused in the type, and the detached form *)
  match parse_ok "SIGNAL a: rippleCarry(4); b: rippleCarry (4);" with
  | [ Ast.Dsignal [ (_, Ast.Tname (_, [ _ ])); (_, Ast.Tname (_, [ _ ])) ] ] ->
      ()
  | _ -> Alcotest.fail "signal declaration actuals"

(* ---- statements ---- *)

let body_of src =
  match parse_ok src with
  | [ Ast.Dtype [ { Ast.tty = Ast.Tcomponent ({ Ast.cbody = Some b; _ }, _); _ } ] ]
    ->
      b.Ast.bstmts
  | _ -> Alcotest.fail "expected one component type"

let wrap stmts = "TYPE t = COMPONENT (IN a: boolean) IS BEGIN " ^ stmts ^ " END;"

let test_assign_kinds () =
  match body_of (wrap "x := y; u == v; h1(a,b,*,c); * := q") with
  | [ Ast.Sassign _; Ast.Salias _; Ast.Sconnect (_, args, _); Ast.Sassign (Ast.Star _, _, _) ]
    ->
      Alcotest.(check int) "connection arity" 4 (List.length args)
  | _ -> Alcotest.fail "statement kinds"

let test_if_elsif () =
  match body_of (wrap "IF a THEN x := 1 ELSIF b THEN x := 0 ELSE y := 1 END") with
  | [ Ast.Sif (arms, else_, _) ] ->
      Alcotest.(check int) "arms" 2 (List.length arms);
      Alcotest.(check int) "else" 1 (List.length else_)
  | _ -> Alcotest.fail "if/elsif/else"

let test_for_when () =
  match
    body_of
      (wrap
         "FOR i := 1 TO 4 DO x[i] := y[i] END; FOR j := 8 DOWNTO 1 DO \
          SEQUENTIALLY z[j] := w[j] END; WHEN n = 2 THEN x := y \
          OTHERWISEWHEN n = 3 THEN x := z OTHERWISE q := r END")
  with
  | [ Ast.Sfor ({ Ast.fdir = Ast.To; _ }, false, _, _);
      Ast.Sfor ({ Ast.fdir = Ast.Downto; _ }, true, _, _);
      Ast.Swhen (arms, otherwise, _) ] ->
      Alcotest.(check int) "when arms" 2 (List.length arms);
      Alcotest.(check bool) "otherwise" true (otherwise <> [])
  | _ -> Alcotest.fail "for/when"

let test_seq_par_with () =
  match
    body_of
      (wrap
         "SEQUENTIAL s1 := a; PARALLEL s2 := a; s3 := a END; s4 := a END; \
          WITH g[1] DO x := x1 END")
  with
  | [ Ast.Ssequential (inner, _); Ast.Swith (_, _, _) ] ->
      (match inner with
      | [ Ast.Sassign _; Ast.Sparallel _; Ast.Sassign _ ] -> ()
      | _ -> Alcotest.fail "sequential body")
  | _ -> Alcotest.fail "sequential/parallel/with"

let test_result_stmt () =
  match body_of (wrap "RESULT AND(NOT g,h)") with
  | [ Ast.Sresult (Ast.Ecall (a, [], [ _; _ ], _), _) ] ->
      Alcotest.(check string) "AND" "AND" a.Ast.id
  | _ -> Alcotest.fail "result statement"

(* ---- expressions ---- *)

let test_call_with_type_params () =
  match expr_ok "plus[n](a,b)" with
  | Ast.Ecall (f, [ _ ], [ _; _ ], _) ->
      Alcotest.(check string) "callee" "plus" f.Ast.id
  | _ -> Alcotest.fail "bracketed type parameters"

let test_selectors () =
  match expr_ok "r[1..n].in" with
  | Ast.Eref (Ast.Sig (r, [ Ast.Sel_range _; Ast.Sel_field f ])) ->
      Alcotest.(check string) "head" "r" r.Ast.id;
      Alcotest.(check string) "field" "in" f.Ast.id
  | _ -> Alcotest.fail "range + field selectors"

let test_num_selector () =
  match expr_ok "ram[NUM(a)].out" with
  | Ast.Eref (Ast.Sig (_, [ Ast.Sel_num _; Ast.Sel_field _ ])) -> ()
  | _ -> Alcotest.fail "NUM selector"

let test_star_width () =
  match expr_ok "*:3" with
  | Ast.Estar (Some _, _) -> ()
  | _ -> Alcotest.fail "star with width"

let test_tuple_flattening () =
  match expr_ok "((p,q),(p[1],q[2]))" with
  | Ast.Etuple ([ Ast.Etuple _; Ast.Etuple _ ], _) -> ()
  | _ -> Alcotest.fail "nested tuples"

let test_clk_rset () =
  (match expr_ok "CLK" with
  | Ast.Eref (Ast.Sig (c, [])) -> Alcotest.(check string) "clk" "CLK" c.Ast.id
  | _ -> Alcotest.fail "CLK");
  match body_of (wrap "IF RSET THEN x := 1 END") with
  | [ Ast.Sif ([ (Ast.Eref (Ast.Sig (r, [])), _) ], _, _) ] ->
      Alcotest.(check string) "rset" "RSET" r.Ast.id
  | _ -> Alcotest.fail "RSET"

(* ---- layout ---- *)

let layout_of src =
  match parse_ok src with
  | [ Ast.Dtype [ { Ast.tty = Ast.Tcomponent ({ Ast.cbody = Some b; _ }, _); _ } ] ]
    ->
      b.Ast.bbody_layout
  | _ -> Alcotest.fail "expected one component type"

let wrap_layout l =
  "TYPE t = COMPONENT (IN a: boolean) IS { " ^ l ^ " } BEGIN END;"

let test_layout_order () =
  match layout_of (wrap_layout "ORDER lefttoright x; flip90 y END") with
  | [ Ast.Lorder (d, [ Ast.Lcell (None, _, _); Ast.Lcell (Some o, _, _) ], _) ]
    ->
      Alcotest.(check string) "direction" "lefttoright" d.Ast.id;
      Alcotest.(check string) "orientation" "flip90" o.Ast.id
  | _ -> Alcotest.fail "order statement"

let test_layout_boundary () =
  match layout_of (wrap_layout "BOTTOM in;out") with
  | [ Ast.Lboundary (Ast.Side_bottom, [ _; _ ], _) ] -> ()
  | _ -> Alcotest.fail "boundary statement"

let test_layout_replacement () =
  match layout_of (wrap_layout "FOR i = 1 TO 4 DO m[i] = black END") with
  | [ Ast.Lfor (_, [ Ast.Lreplace (None, _, Ast.Tname (b, []), _) ], _) ] ->
      Alcotest.(check string) "replacement type" "black" b.Ast.id
  | _ -> Alcotest.fail "replacement statement"

let test_layout_when_with () =
  match
    layout_of
      (wrap_layout
         "WHEN n > 1 THEN ORDER toptobottom a; b END OTHERWISE c END; WITH \
          pe[1] DO comp; acc END")
  with
  | [ Ast.Lwhen ([ (_, [ Ast.Lorder _ ]) ], [ Ast.Lcell _ ], _);
      Ast.Lwith (_, [ Ast.Lcell _; Ast.Lcell _ ], _) ] ->
      ()
  | _ -> Alcotest.fail "layout when/with"

let test_bad_direction () =
  ignore (parse_err (wrap_layout "ORDER sideways x END"))

(* ---- error reporting ---- *)

let test_error_recovery () =
  (* two independent errors in one file are both reported *)
  let _, bag =
    Parser.program
      "TYPE t = COMPONENT (IN a boolean) IS BEGIN END;\n\
       CONST k = ;\n\
       SIGNAL ok: boolean_like;"
  in
  Alcotest.(check bool) "two or more errors" true
    (List.length (Diag.Bag.errors bag) >= 2)

let test_errors () =
  ignore (parse_err "TYPE t = COMPONENT (IN a boolean) IS BEGIN END;");
  ignore (parse_err "SIGNAL x;");
  ignore (parse_err "TYPE t = COMPONENT (IN a: boolean) IS BEGIN x + y END;");
  ignore (parse_err "CONST x = ;");
  (* function component types need a body *)
  ignore (parse_err "TYPE f = COMPONENT (IN a: boolean) : boolean;")

(* ---- round trip: parse -> pretty -> parse gives the same tree shape *)

let strip_locs_via_pp p = Pretty.program_to_string p

let test_roundtrip_corpus () =
  List.iter
    (fun (name, src) ->
      let p1 = parse_ok src in
      let printed = strip_locs_via_pp p1 in
      let p2 =
        match Parser.program printed with
        | Some p, _ -> p
        | None, bag ->
            Alcotest.failf "%s: reparse failed: %a@.%s" name Diag.Bag.pp bag
              printed
      in
      Alcotest.(check string)
        (name ^ " roundtrip")
        printed (strip_locs_via_pp p2))
    Corpus.all_named

let () =
  Alcotest.run "parser"
    [
      ( "declarations",
        [
          Alcotest.test_case "const" `Quick test_const_decl;
          Alcotest.test_case "nested sig const" `Quick test_nested_sig_const;
          Alcotest.test_case "type" `Quick test_type_decl;
          Alcotest.test_case "multidim array" `Quick test_multidim_array;
          Alcotest.test_case "record component" `Quick test_component_record;
          Alcotest.test_case "function component" `Quick test_function_component;
          Alcotest.test_case "uses" `Quick test_uses_clause;
          Alcotest.test_case "signal actuals" `Quick test_signal_decl_actuals;
        ] );
      ( "statements",
        [
          Alcotest.test_case "assign kinds" `Quick test_assign_kinds;
          Alcotest.test_case "if/elsif" `Quick test_if_elsif;
          Alcotest.test_case "for/when" `Quick test_for_when;
          Alcotest.test_case "seq/par/with" `Quick test_seq_par_with;
          Alcotest.test_case "result" `Quick test_result_stmt;
        ] );
      ( "expressions",
        [
          Alcotest.test_case "type params" `Quick test_call_with_type_params;
          Alcotest.test_case "selectors" `Quick test_selectors;
          Alcotest.test_case "NUM" `Quick test_num_selector;
          Alcotest.test_case "star width" `Quick test_star_width;
          Alcotest.test_case "tuples" `Quick test_tuple_flattening;
          Alcotest.test_case "CLK/RSET" `Quick test_clk_rset;
        ] );
      ( "layout",
        [
          Alcotest.test_case "order" `Quick test_layout_order;
          Alcotest.test_case "boundary" `Quick test_layout_boundary;
          Alcotest.test_case "replacement" `Quick test_layout_replacement;
          Alcotest.test_case "when/with" `Quick test_layout_when_with;
          Alcotest.test_case "bad direction" `Quick test_bad_direction;
        ] );
      ( "roundtrip",
        [ Alcotest.test_case "corpus" `Quick test_roundtrip_corpus ] );
      ( "errors",
        [
          Alcotest.test_case "reporting" `Quick test_errors;
          Alcotest.test_case "recovery" `Quick test_error_recovery;
        ] );
    ]
