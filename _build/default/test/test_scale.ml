(* Scale stress: large instances of the parameterized generators must
   elaborate, check and simulate within sane bounds — the "VLSI" in the
   title means thousands of nets, not dozens. *)

open Zeus

let compile src =
  match Zeus.compile src with
  | Ok d -> d
  | Error diags -> Alcotest.failf "compile: %a" Fmt.(list Diag.pp) diags

let test_large_ram () =
  (* 256 x 16 RAM: 4096 registers *)
  let d = compile (Corpus.ram ~abits:8 ~wbits:16) in
  let nl = d.Elaborate.netlist in
  Alcotest.(check int) "registers" 4096 (List.length (Netlist.regs nl));
  let sim = Sim.create d in
  (* a write/read burst across the address space *)
  for a = 0 to 255 do
    if a mod 17 = 0 then begin
      Sim.poke_int sim "m.addr" a;
      Sim.poke_int sim "m.data" ((a * 257) land 0xffff);
      Sim.poke_bool sim "m.we" true;
      Sim.step sim
    end
  done;
  Sim.poke_bool sim "m.we" false;
  for a = 0 to 255 do
    if a mod 17 = 0 then begin
      Sim.poke_int sim "m.addr" a;
      Sim.step sim;
      Alcotest.(check (option int))
        (Printf.sprintf "readback %d" a)
        (Some ((a * 257) land 0xffff))
        (Sim.peek_int sim "m.q")
    end
  done;
  Alcotest.(check int) "no runtime errors" 0
    (List.length (Sim.runtime_errors sim))

let test_large_routing () =
  (* 128-input butterfly: 448 routers, ~30k nets *)
  let d = compile (Corpus.routing_network 128) in
  let nl = d.Elaborate.netlist in
  let routers =
    List.length
      (List.filter
         (fun (i : Netlist.instance) -> i.Netlist.itype = "router")
         (Netlist.instances nl))
  in
  Alcotest.(check int) "router count" (128 / 2 * 7) routers;
  let sim = Sim.create d in
  for i = 0 to 127 do
    Sim.poke_int sim (Printf.sprintf "net.input[%d]" i) i
  done;
  Sim.step sim;
  (* straight switches: the butterfly applies its wiring permutation;
     all outputs must be defined and a permutation of the inputs *)
  let outs =
    List.init 128 (fun i ->
        Sim.peek_int sim (Printf.sprintf "net.output[%d]" i))
  in
  Alcotest.(check bool) "all defined" true (List.for_all Option.is_some outs);
  let sorted = List.sort compare (List.map Option.get outs) in
  Alcotest.(check (list int)) "a permutation" (List.init 128 Fun.id) sorted

let test_deep_adder () =
  let d = compile (Corpus.adder_n 128) in
  let sim = Sim.create d in
  (* worst-case carry propagation: all ones + 1 *)
  Sim.poke_int_lsb sim "adder.a" 0;
  Sim.poke_int_lsb sim "adder.b" 0;
  Sim.poke_bool sim "adder.cin" true;
  (* drive a[i] = 1 everywhere via direct bit pokes *)
  (match Elaborate.resolve_path d "adder.a" with
  | Ok nets -> Sim.poke_nets sim nets (List.map (fun _ -> Logic.One) nets)
  | Error e -> Alcotest.fail e);
  Sim.step sim;
  Alcotest.(check char) "carry out after 128 bits" '1'
    (Logic.to_char (Sim.peek_bit sim "adder.cout"));
  (* the sum is all zeros *)
  let s = Sim.peek sim "adder.s" in
  Alcotest.(check bool) "sum wrapped to zero" true
    (List.for_all (Logic.equal Logic.Zero) s)

let test_wide_dictionary () =
  let d = compile (Corpus.dictionary ~slots:64 ~keybits:12) in
  let sim = Sim.create d in
  Sim.poke_bool sim "dict.ins" false;
  Sim.poke_bool sim "dict.del" false;
  Sim.poke_int sim "dict.slot" 0;
  Sim.poke_int sim "dict.data" 0;
  Sim.poke_int sim "dict.query" 0;
  Sim.reset sim;
  for slot = 0 to 63 do
    Sim.poke_bool sim "dict.ins" true;
    Sim.poke_int sim "dict.slot" slot;
    Sim.poke_int sim "dict.data" (slot * 63);
    Sim.step sim
  done;
  Sim.poke_bool sim "dict.ins" false;
  Sim.poke_int sim "dict.query" (17 * 63);
  Sim.step sim;
  Alcotest.(check char) "member found among 64 slots" '1'
    (Logic.to_char (Sim.peek_bit sim "dict.member"))

let test_htree_large () =
  (* htree(4096): 5461 instances; elaboration + floorplan stay linear *)
  let d = compile (Corpus.htree 4096) in
  match Floorplan.of_design d "a" with
  | Some plan -> Alcotest.(check int) "area" 4096 (Floorplan.area plan)
  | None -> Alcotest.fail "no plan"

let () =
  Alcotest.run "scale"
    [
      ( "scale",
        [
          Alcotest.test_case "ram 256x16" `Slow test_large_ram;
          Alcotest.test_case "routing 128" `Slow test_large_routing;
          Alcotest.test_case "adder 128 carry chain" `Quick test_deep_adder;
          Alcotest.test_case "dictionary 64x12" `Slow test_wide_dictionary;
          Alcotest.test_case "htree 4096" `Slow test_htree_large;
        ] );
    ]
