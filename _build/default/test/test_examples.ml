(* End-to-end behaviour of the report's section 10 examples: the
   experiments E1 (adders), E2 (Blackjack), E3 (trees), E4 (pattern
   matching), E6 (routing network) as pinned regression tests. *)

open Zeus

let logic = Alcotest.testable Logic.pp Logic.equal

let compile src =
  match Zeus.compile src with
  | Ok d -> d
  | Error diags -> Alcotest.failf "compile: %a" Fmt.(list Diag.pp) diags

let no_runtime_errors name sim =
  match Sim.runtime_errors sim with
  | [] -> ()
  | e :: _ ->
      Alcotest.failf "%s: runtime error on %s: %s" name e.Sim.err_net
        e.Sim.err_message

(* ---- E1: adders ---- *)

let test_fulladder_exhaustive () =
  let d = compile Corpus.adder4 in
  (* exercise the inner fulladder through the 4-bit ripple carry *)
  let sim = Sim.create d in
  for a = 0 to 15 do
    for b = 0 to 15 do
      for c = 0 to 1 do
        Sim.poke_int_lsb sim "adder.a" a;
        Sim.poke_int_lsb sim "adder.b" b;
        Sim.poke_bool sim "adder.cin" (c = 1);
        Sim.step sim;
        let want = a + b + c in
        Alcotest.(check (option int))
          (Printf.sprintf "%d+%d+%d" a b c)
          (Some (want land 15))
          (Sim.peek_int_lsb sim "adder.s");
        Alcotest.check logic "cout"
          (Logic.of_bool (want > 15))
          (Sim.peek_bit sim "adder.cout")
      done
    done
  done;
  no_runtime_errors "adder" sim

let prop_ripple_widths =
  QCheck.Test.make ~count:30 ~name:"rippleCarry_n_correct"
    QCheck.(triple (int_range 2 24) (int_bound 10000) (int_bound 10000))
    (fun (n, a, b) ->
      let mask = (1 lsl n) - 1 in
      let a = a land mask and b = b land mask in
      let d = compile (Corpus.adder_n n) in
      let sim = Sim.create d in
      Sim.poke_int_lsb sim "adder.a" a;
      Sim.poke_int_lsb sim "adder.b" b;
      Sim.poke_bool sim "adder.cin" false;
      Sim.step sim;
      Sim.peek_int_lsb sim "adder.s" = Some ((a + b) land mask)
      && Logic.equal (Sim.peek_bit sim "adder.cout")
           (Logic.of_bool (a + b > mask)))

(* the arithmetic function components used by Blackjack *)
let test_arith5_components () =
  let d =
    compile
      (Corpus.arith5
      ^ "top = COMPONENT (IN a,b: bo5; OUT su,di: bo5; OUT l,g: boolean) IS \
         BEGIN su := plus(a,b); di := minus(a,b); l := lt(a,b); g := \
         ge(a,b) END; SIGNAL t: top;")
  in
  let sim = Sim.create d in
  List.iter
    (fun (a, b) ->
      Sim.poke_int sim "t.a" a;
      Sim.poke_int sim "t.b" b;
      Sim.step sim;
      Alcotest.(check (option int))
        (Printf.sprintf "plus %d %d" a b)
        (Some ((a + b) land 31))
        (Sim.peek_int sim "t.su");
      Alcotest.(check (option int))
        (Printf.sprintf "minus %d %d" a b)
        (Some ((a - b) land 31))
        (Sim.peek_int sim "t.di");
      Alcotest.check logic
        (Printf.sprintf "lt %d %d" a b)
        (Logic.of_bool (a < b))
        (Sim.peek_bit sim "t.l");
      Alcotest.check logic
        (Printf.sprintf "ge %d %d" a b)
        (Logic.of_bool (a >= b))
        (Sim.peek_bit sim "t.g"))
    [ (0, 0); (10, 9); (9, 10); (31, 1); (17, 17); (22, 10); (1, 31) ];
  no_runtime_errors "arith5" sim

(* ---- E2: Blackjack ---- *)

type bj = {
  sim : Sim.t;
}

(* [Sim.peek] shows values of the cycle just evaluated, so after
   [bj_start] the visible state is "read" (the machine waits there until
   ycard is asserted: without a card, state.in is not driven and the
   registers keep their value). *)
let bj_start () =
  let d = compile Corpus.blackjack in
  let sim = Sim.create d in
  Sim.poke_bool sim "bj.ycard" false;
  Sim.poke_int sim "bj.value" 0;
  Sim.reset sim;
  Sim.step sim;
  (* evaluates the start state *)
  Sim.step sim;
  (* evaluates the read state *)
  { sim }

let bj_state t = Sim.peek_int t.sim "bj.state.out"

(* present a card in the read state and run through sum, firstace and
   test; afterwards the visible cycle is the post-test state (read again,
   end, or a second test round after ace demotion) *)
let bj_feed t v =
  Sim.poke_int t.sim "bj.value" v;
  Sim.poke_bool t.sim "bj.ycard" true;
  Sim.step t.sim;
  (* read, accepting the card *)
  Sim.poke_bool t.sim "bj.ycard" false;
  Sim.step t.sim;
  (* sum *)
  Sim.step t.sim;
  (* firstace *)
  Sim.step t.sim;
  (* test *)
  Sim.step t.sim
(* post-test state *)

let test_blackjack_states () =
  let t = bj_start () in
  Alcotest.(check (option int)) "in read" (Some 1) (bj_state t);
  Alcotest.check logic "hit asserted" Logic.One (Sim.peek_bit t.sim "bj.hit");
  bj_feed t 10;
  Alcotest.(check (option int)) "score 10, back to read" (Some 1) (bj_state t);
  Alcotest.(check (option int)) "score" (Some 10)
    (Sim.peek_int t.sim "bj.score.out");
  bj_feed t 9;
  (* 19: >= 17 and < 22 -> end *)
  Alcotest.(check (option int)) "end state" (Some 5) (bj_state t);
  Sim.step t.sim;
  Alcotest.check logic "stand" Logic.One (Sim.peek_bit t.sim "bj.stand");
  no_runtime_errors "blackjack" t.sim

let test_blackjack_bust () =
  let t = bj_start () in
  bj_feed t 10;
  bj_feed t 9;
  (* at 19 the machine stands; deal anyway to restart: end -> start *)
  Alcotest.(check (option int)) "end" (Some 5) (bj_state t);
  Sim.poke_bool t.sim "bj.ycard" true;
  Sim.step t.sim;
  (* end, accepting the restart *)
  Sim.poke_bool t.sim "bj.ycard" false;
  Sim.step t.sim;
  (* start *)
  Alcotest.(check (option int)) "restart" (Some 0) (bj_state t);
  no_runtime_errors "blackjack restart" t.sim

let test_blackjack_bust_over_21 () =
  let t = bj_start () in
  bj_feed t 10;
  bj_feed t 9;
  Alcotest.(check (option int)) "stand at 19" (Some 5) (bj_state t);
  (* fresh machine: 10 + 5 + 9 = 24 -> broke *)
  let t = bj_start () in
  bj_feed t 10;
  bj_feed t 5;
  bj_feed t 9;
  Alcotest.(check (option int)) "end after bust" (Some 5) (bj_state t);
  Sim.step t.sim;
  Alcotest.check logic "broke" Logic.One (Sim.peek_bit t.sim "bj.broke");
  Alcotest.check logic "not stand" Logic.Undef (Sim.peek_bit t.sim "bj.stand")

let test_blackjack_ace () =
  (* ace (1) counts as 11 via the firstace state: 1 + 10 = 21 -> stand *)
  let t = bj_start () in
  bj_feed t 1;
  Alcotest.(check (option int)) "ace as 11" (Some 11)
    (Sim.peek_int t.sim "bj.score.out");
  bj_feed t 10;
  Alcotest.(check (option int)) "21" (Some 21) (Sim.peek_int t.sim "bj.score.out");
  Alcotest.(check (option int)) "stand at 21" (Some 5) (bj_state t)

let test_blackjack_ace_demotion () =
  (* ace demoted from 11 to 1 when over 21: 1(=11) + 5 + 9 = 25 -> demote
     to 15 -> continue *)
  let t = bj_start () in
  bj_feed t 1;
  bj_feed t 5;
  Alcotest.(check (option int)) "16" (Some 16) (Sim.peek_int t.sim "bj.score.out");
  bj_feed t 9;
  (* 25 >= 22 with ace: test demotes by ten and stays in test *)
  Sim.step t.sim;
  (* extra test cycle after demotion *)
  Alcotest.(check (option int)) "demoted" (Some 15)
    (Sim.peek_int t.sim "bj.score.out");
  Alcotest.(check (option int)) "back to read" (Some 1) (bj_state t)

(* ---- E3: trees ---- *)

let test_tree_broadcast () =
  List.iter
    (fun (variant, make) ->
      List.iter
        (fun n ->
          let d = compile (make n) in
          let sim = Sim.create d in
          Sim.poke_bool sim "a.in" true;
          Sim.step sim;
          let leaves = Sim.peek sim "a.leaf" in
          Alcotest.(check int)
            (Printf.sprintf "%s(%d) leaf count" variant n)
            n (List.length leaves);
          Alcotest.(check bool)
            (Printf.sprintf "%s(%d) all ones" variant n)
            true
            (List.for_all (Logic.equal Logic.One) leaves);
          no_runtime_errors variant sim)
        [ 4; 8; 16; 32 ])
    [ ("iterative", Corpus.tree_iterative); ("recursive", Corpus.tree_recursive) ]

let test_tree_zero () =
  let d = compile (Corpus.tree_recursive 8) in
  let sim = Sim.create d in
  Sim.poke_bool sim "a.in" false;
  Sim.step sim;
  Alcotest.(check bool) "all zero" true
    (List.for_all (Logic.equal Logic.Zero) (Sim.peek sim "a.leaf"))

(* ---- E4: pattern matching ---- *)

(* drive the systolic matcher: items enter every second cycle *)
let run_matcher ~pattern ~text ~wild ~cycles =
  let d = compile (Corpus.patternmatch 3) in
  let sim = Sim.create d in
  List.iter
    (fun p -> Sim.poke_bool sim p false)
    [ "match.pattern"; "match.string"; "match.endofpattern"; "match.wild";
      "match.resultin" ];
  Sim.reset sim;
  let results = ref [] in
  for cyc = 0 to cycles - 1 do
    let idle = cyc mod 2 = 1 in
    let i = cyc / 2 in
    let feed list d = match List.nth_opt list i with Some v -> v | None -> d in
    if not idle then begin
      let plen = List.length pattern in
      let pi = if plen = 0 then 0 else i mod (plen + 1) in
      Sim.poke_bool sim "match.pattern"
        (pi < plen && List.nth pattern pi = 1);
      Sim.poke_bool sim "match.endofpattern" (pi = plen);
      Sim.poke_bool sim "match.wild" (pi < plen && List.nth wild pi = 1);
      Sim.poke_bool sim "match.string" (feed text 0 = 1)
    end
    else begin
      Sim.poke_bool sim "match.pattern" false;
      Sim.poke_bool sim "match.endofpattern" false;
      Sim.poke_bool sim "match.wild" false;
      Sim.poke_bool sim "match.string" false
    end;
    Sim.step sim;
    results := Sim.peek_bit sim "match.result" :: !results
  done;
  (List.rev !results, Sim.runtime_errors sim)

let test_patternmatch_finds_matches () =
  let results, errors =
    run_matcher ~pattern:[ 1; 0 ] ~wild:[ 0; 0 ]
      ~text:[ 1; 0; 1; 0; 1; 0; 1; 0; 1; 0; 1; 0 ]
      ~cycles:40
  in
  Alcotest.(check int) "no runtime errors" 0 (List.length errors);
  let ones = List.length (List.filter (Logic.equal Logic.One) results) in
  Alcotest.(check bool)
    (Printf.sprintf "matches reported (%d)" ones)
    true (ones >= 2)

let test_patternmatch_no_match () =
  let results, errors =
    run_matcher ~pattern:[ 1; 1 ] ~wild:[ 0; 0 ]
      ~text:[ 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0 ]
      ~cycles:40
  in
  Alcotest.(check int) "no runtime errors" 0 (List.length errors);
  Alcotest.(check bool) "no match on zeros" true
    (not (List.exists (Logic.equal Logic.One) results))

let test_patternmatch_wildcard () =
  (* a pattern of all wildcards matches anything *)
  let results, errors =
    run_matcher ~pattern:[ 0; 0 ] ~wild:[ 1; 1 ]
      ~text:[ 1; 0; 0; 1; 1; 0; 1; 1; 0; 0; 1; 0 ]
      ~cycles:40
  in
  Alcotest.(check int) "no runtime errors" 0 (List.length errors);
  Alcotest.(check bool) "wildcard matches" true
    (List.exists (Logic.equal Logic.One) results)

(* ---- E6: routing network ---- *)

let test_routing_straight () =
  let d = compile (Corpus.routing_network 4) in
  let sim = Sim.create d in
  (* headers with MSB=0: all routers pass straight through; the butterfly
     wiring still applies its perfect shuffle: column pairs feed the top
     and bottom sub-networks *)
  for i = 0 to 3 do
    Sim.poke_int sim (Printf.sprintf "net.input[%d]" i) i
  done;
  Sim.step sim;
  let got =
    List.init 4 (fun i ->
        Sim.peek_int sim (Printf.sprintf "net.output[%d]" i))
  in
  Alcotest.(check (list (option int)))
    "shuffled"
    [ Some 0; Some 2; Some 1; Some 3 ]
    got;
  no_runtime_errors "routing straight" sim

let test_routing_swap () =
  let d = compile (Corpus.routing_network 4) in
  let sim = Sim.create d in
  (* headers with MSB=1: every router swaps; the butterfly reverses *)
  for i = 0 to 3 do
    Sim.poke_int sim (Printf.sprintf "net.input[%d]" i) (512 + i)
  done;
  Sim.step sim;
  let got =
    List.init 4 (fun i ->
        Sim.peek_int sim (Printf.sprintf "net.output[%d]" i))
  in
  Alcotest.(check (list (option int)))
    "swapped"
    [ Some 515; Some 513; Some 514; Some 512 ]
    got

let test_routing_sizes () =
  List.iter
    (fun n ->
      let d = compile (Corpus.routing_network n) in
      let routers =
        List.filter
          (fun (i : Netlist.instance) -> i.Netlist.itype = "router")
          (Netlist.instances d.Elaborate.netlist)
      in
      (* butterfly: (n/2) * log2 n routers *)
      let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
      Alcotest.(check int)
        (Printf.sprintf "router count n=%d" n)
        (n / 2 * log2 n)
        (List.length routers))
    [ 2; 4; 8; 16; 32 ]

(* ---- RAM (section 5.1) ---- *)

let test_ram_write_read () =
  let d = compile (Corpus.ram ~abits:4 ~wbits:8) in
  let sim = Sim.create d in
  let write addr v =
    Sim.poke_int sim "m.addr" addr;
    Sim.poke_int sim "m.data" v;
    Sim.poke_bool sim "m.we" true;
    Sim.step sim
  in
  let read addr =
    Sim.poke_bool sim "m.we" false;
    Sim.poke_int sim "m.addr" addr;
    Sim.step sim;
    Sim.peek_int sim "m.q"
  in
  write 5 171;
  write 3 42;
  write 15 255;
  Alcotest.(check (option int)) "read 5" (Some 171) (read 5);
  Alcotest.(check (option int)) "read 3" (Some 42) (read 3);
  Alcotest.(check (option int)) "read 15" (Some 255) (read 15);
  Alcotest.(check (option int)) "unwritten is UNDEF" None (read 9);
  write 5 1;
  Alcotest.(check (option int)) "overwrite" (Some 1) (read 5);
  no_runtime_errors "ram" sim

let prop_ram_random =
  QCheck.Test.make ~count:20 ~name:"ram_random_writes"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20)
              (pair (int_bound 15) (int_bound 255)))
    (fun writes ->
      let d = compile (Corpus.ram ~abits:4 ~wbits:8) in
      let sim = Sim.create d in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (addr, v) ->
          Hashtbl.replace model addr v;
          Sim.poke_int sim "m.addr" addr;
          Sim.poke_int sim "m.data" v;
          Sim.poke_bool sim "m.we" true;
          Sim.step sim)
        writes;
      Sim.poke_bool sim "m.we" false;
      Hashtbl.fold
        (fun addr v acc ->
          acc
          &&
          (Sim.poke_int sim "m.addr" addr;
           Sim.step sim;
           Sim.peek_int sim "m.q" = Some v))
        model true)

(* ---- mux4 (section 3.2) ---- *)

let test_mux4 () =
  let d = compile Corpus.mux4 in
  let sim = Sim.create d in
  let pick d4 a g =
    Sim.poke_int sim "m.d" d4;
    Sim.poke_int sim "m.a" a;
    Sim.poke_bool sim "m.g" g;
    Sim.step sim;
    Sim.peek_bit sim "m.z"
  in
  (* d = 1010 (d[1]=1, d[2]=0, d[3]=1, d[4]=0) *)
  Alcotest.check logic "select 1" Logic.One (pick 10 0 false);
  Alcotest.check logic "select 2" Logic.Zero (pick 10 1 false);
  Alcotest.check logic "select 3" Logic.One (pick 10 2 false);
  Alcotest.check logic "select 4" Logic.Zero (pick 10 3 false);
  Alcotest.check logic "gated" Logic.Zero (pick 10 0 true);
  no_runtime_errors "mux4" sim

let () =
  Alcotest.run "examples"
    [
      ( "adders",
        [
          Alcotest.test_case "exhaustive 4-bit" `Quick test_fulladder_exhaustive;
          QCheck_alcotest.to_alcotest prop_ripple_widths;
          Alcotest.test_case "arith5" `Quick test_arith5_components;
        ] );
      ( "blackjack",
        [
          Alcotest.test_case "state machine" `Quick test_blackjack_states;
          Alcotest.test_case "restart" `Quick test_blackjack_bust;
          Alcotest.test_case "bust over 21" `Quick test_blackjack_bust_over_21;
          Alcotest.test_case "ace as 11" `Quick test_blackjack_ace;
          Alcotest.test_case "ace demotion" `Quick test_blackjack_ace_demotion;
        ] );
      ( "trees",
        [
          Alcotest.test_case "broadcast" `Quick test_tree_broadcast;
          Alcotest.test_case "zero" `Quick test_tree_zero;
        ] );
      ( "patternmatch",
        [
          Alcotest.test_case "finds matches" `Quick
            test_patternmatch_finds_matches;
          Alcotest.test_case "no false matches" `Quick
            test_patternmatch_no_match;
          Alcotest.test_case "wildcards" `Quick test_patternmatch_wildcard;
        ] );
      ( "routing",
        [
          Alcotest.test_case "straight" `Quick test_routing_straight;
          Alcotest.test_case "swap" `Quick test_routing_swap;
          Alcotest.test_case "sizes" `Quick test_routing_sizes;
        ] );
      ( "ram",
        [
          Alcotest.test_case "write/read" `Quick test_ram_write_read;
          QCheck_alcotest.to_alcotest prop_ram_random;
        ] );
      ("mux4", [ Alcotest.test_case "selection" `Quick test_mux4 ]);
    ]
