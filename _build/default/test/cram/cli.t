The zeusc command-line driver, end to end.

List the built-in corpus:

  $ zeusc corpus
  adder4
  mux4
  blackjack
  tree_iterative8
  tree_recursive8
  htree16
  patternmatch3
  routing4
  ram
  section8
  am2901
  stack8x4
  dictionary8x6
  sorter8x4
  pqueue8x4
  counter8
  arbiter
  shiftreg8
  lfsr4
  serial_adder
  gray4
  mux8

Check a program:

  $ zeusc corpus adder4 > adder4.zeus
  $ zeusc check adder4.zeus
  OK: nets=93 gates=20 drivers=62 regs=0 instances=13

Simulate with pokes and watches (LSB-first values must be given as bit
patterns; 5 = 0101 MSB-first reads as 10 at the adder's LSB-first ports,
so use palindromic values):

  $ zeusc sim adder4.zeus -n 1 -p adder.a=9 -p adder.b=6 -p adder.cin=0 -w adder.s -w adder.cout
  cycle 1: adder.s=1111 adder.cout=0

A detected double assignment:

  $ cat > bad.zeus <<'ZEUS'
  > TYPE bad = COMPONENT (IN a,b: boolean; OUT s: boolean) IS
  > BEGIN
  >   s := XOR(a,b);
  >   s := AND(a,b)
  > END;
  > SIGNAL x: bad;
  > ZEUS
  $ zeusc check bad.zeus
  3:3-16: error(assign): 'x.s' is unconditionally assigned more than once (also at 4:3-16) — this could connect power to ground
  [1]

The layout of the H-tree:

  $ zeusc corpus htree16 | zeusc layout -
  a: 4x4 (area 16, 20 cells)
  hhhh
  hhhh
  hhhh
  hhhh
  pin BOTTOM: in
  pin BOTTOM: out

Pretty-printing round-trips through the parser:

  $ zeusc corpus mux4 | zeusc pp - | zeusc check -
  OK: nets=29 gates=10 drivers=13 regs=0 instances=2

The netlist optimizer:

  $ zeusc corpus blackjack | zeusc optimize -
  gates 200 -> 148, drivers 186 -> 213 (62 constant nets)

Automatic placement recovers the adder row:

  $ zeusc place adder4.zeus
  adder: 4x1 (area 4, 4 cells)
  ffff
  estimated wirelength: 6
  designer layout wirelength: 6

Netlist statistics with depth and dead-logic accounting:

  $ zeusc stats adder4.zeus | head -1
  nets=93 gates=20 drivers=62 regs=0 instances=13 depth=32 max_fanout=2 alias_classes=0 dead_nets=0

The new sorter is part of the corpus:

  $ zeusc corpus sorter8x4 | zeusc check -
  OK: nets=385 gates=152 drivers=223 regs=34 instances=42

The instance hierarchy browser:

  $ zeusc tree adder4.zeus | head -4
  adder : rippleCarry  >a:4 >b:4 >cin:1 <cout:1 <s:4
    adder.add[1] : fulladder  >a:1 >b:1 >cin:1 <cout:1 <s:1
      adder.add[1].h1 : halfadder  >a:1 >b:1 <cout:1 <s:1
      adder.add[1].h2 : halfadder  >a:1 >b:1 <cout:1 <s:1

Explaining a value after simulation (why is s[1] one?):

  $ zeusc sim adder4.zeus -n 1 -p adder.a=9 -p adder.b=6 -p adder.cin=0 --explain adder.s[4]
  adder.s[4] = 1: 1 driver(s):
    := adder.add[4].s=1 -> 1
  adder.add[4].s = 1: 1 driver(s):
    := adder.add[4].h2.s=1 -> 1
  adder.add[4].h2.s = 1: 1 driver(s):
    := adder.add[4].h2.xor#18[0]=1 -> 1

Every corpus program pretty-prints and re-checks cleanly:

  $ for p in $(zeusc corpus); do
  >   zeusc corpus $p | zeusc pp - | zeusc check - > /dev/null || echo FAIL $p
  > done; echo all clean
  all clean
