  $ zeusc corpus
  $ zeusc corpus adder4 > adder4.zeus
  $ zeusc check adder4.zeus
  $ zeusc sim adder4.zeus -n 1 -p adder.a=9 -p adder.b=6 -p adder.cin=0 -w adder.s -w adder.cout
  $ cat > bad.zeus <<'ZEUS'
  > TYPE bad = COMPONENT (IN a,b: boolean; OUT s: boolean) IS
  > BEGIN
  >   s := XOR(a,b);
  >   s := AND(a,b)
  > END;
  > SIGNAL x: bad;
  > ZEUS
  $ zeusc check bad.zeus
  $ zeusc corpus htree16 | zeusc layout -
  $ zeusc corpus mux4 | zeusc pp - | zeusc check -
  $ zeusc corpus blackjack | zeusc optimize -
  $ zeusc place adder4.zeus
  $ zeusc stats adder4.zeus | head -1
  $ zeusc corpus sorter8x4 | zeusc check -
  $ zeusc tree adder4.zeus | head -4
  $ zeusc sim adder4.zeus -n 1 -p adder.a=9 -p adder.b=6 -p adder.cin=0 --explain adder.s[4]
  $ for p in $(zeusc corpus); do
  >   zeusc corpus $p | zeusc pp - | zeusc check - > /dev/null || echo FAIL $p
  > done; echo all clean
