  $ cat > cycle.zeus <<'ZEUS'
  > TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
  > SIGNAL u,v: boolean;
  > BEGIN
  >   u := AND(a,v);
  >   v := NOT u;
  >   y := v
  > END;
  > SIGNAL s: t;
  > ZEUS
  $ zeusc check cycle.zeus
  $ cat > cond.zeus <<'ZEUS'
  > TYPE t = COMPONENT (IN b,c: boolean; OUT y: boolean) IS
  > SIGNAL x: boolean;
  > BEGIN
  >   IF b THEN x := c END;
  >   y := x
  > END;
  > SIGNAL s: t;
  > ZEUS
  $ zeusc check cond.zeus
  $ cat > alias.zeus <<'ZEUS'
  > TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
  > SIGNAL u,v: boolean;
  > BEGIN
  >   u := a;
  >   u == v;
  >   y := v
  > END;
  > SIGNAL s: t;
  > ZEUS
  $ zeusc check alias.zeus
  $ cat > formal.zeus <<'ZEUS'
  > TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
  > BEGIN
  >   a := 1;
  >   y := a
  > END;
  > SIGNAL s: t;
  > ZEUS
  $ zeusc check formal.zeus
  $ cat > port.zeus <<'ZEUS'
  > TYPE r = COMPONENT (IN a: boolean; OUT b,c: boolean) IS
  > BEGIN b := NOT a; c := a END;
  > t = COMPONENT (IN x: boolean; OUT y: boolean) IS
  > SIGNAL i: r;
  > BEGIN
  >   i.a := x;
  >   y := i.b
  > END;
  > SIGNAL s: t;
  > ZEUS
  $ zeusc check port.zeus
  $ cat > order.zeus <<'ZEUS'
  > TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
  > SIGNAL u: boolean;
  > BEGIN
  >   SEQUENTIAL
  >     y := NOT u;
  >     u := NOT a
  >   END
  > END;
  > SIGNAL s: t;
  > ZEUS
  $ zeusc check order.zeus
  $ cat > parse.zeus <<'ZEUS'
  > TYPE t = COMPONENT (IN a boolean) IS BEGIN END;
  > ZEUS
  $ zeusc check parse.zeus
  $ cat > name.zeus <<'ZEUS'
  > TYPE t = COMPONENT (OUT y: boolean) IS
  > BEGIN y := nosuch END;
  > SIGNAL s: t;
  > ZEUS
  $ zeusc check name.zeus
