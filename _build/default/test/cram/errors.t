Golden diagnostics: one program per static rule of section 4.7.

Combinational feedback without a register:

  $ cat > cycle.zeus <<'ZEUS'
  > TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
  > SIGNAL u,v: boolean;
  > BEGIN
  >   u := AND(a,v);
  >   v := NOT u;
  >   y := v
  > END;
  > SIGNAL s: t;
  > ZEUS
  $ zeusc check cycle.zeus
  4:8-16: error(cycle): combinational feedback loop (no REG on the path): s.and#1[0] -> s.u -> s.not#2[0] -> s.v -> s.and#1[0]
  [1]

Conditional assignment to a plain boolean (type rules (1)):

  $ cat > cond.zeus <<'ZEUS'
  > TYPE t = COMPONENT (IN b,c: boolean; OUT y: boolean) IS
  > SIGNAL x: boolean;
  > BEGIN
  >   IF b THEN x := c END;
  >   y := x
  > END;
  > SIGNAL s: t;
  > ZEUS
  $ zeusc check cond.zeus
  4:13-19: error(type): conditional assignment to boolean signal 's.x' (type rules (1): only multiplex signals, formal OUT parameters and IN parameters of instantiated components may be assigned conditionally)
  [1]

Aliasing two booleans (type rules (2)):

  $ cat > alias.zeus <<'ZEUS'
  > TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
  > SIGNAL u,v: boolean;
  > BEGIN
  >   u := a;
  >   u == v;
  >   y := v
  > END;
  > SIGNAL s: t;
  > ZEUS
  $ zeusc check alias.zeus
  5:3-9: error(type): '==' between two boolean signals is illegal (type rules (2)): s.u == s.v
  [1]

Assignment to a formal IN parameter:

  $ cat > formal.zeus <<'ZEUS'
  > TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
  > BEGIN
  >   a := 1;
  >   y := a
  > END;
  > SIGNAL s: t;
  > ZEUS
  $ zeusc check formal.zeus
  3:3-9: error(assign): assignment to formal IN parameter 's.a'
  [1]

An unused port that is not closed with '*':

  $ cat > port.zeus <<'ZEUS'
  > TYPE r = COMPONENT (IN a: boolean; OUT b,c: boolean) IS
  > BEGIN b := NOT a; c := a END;
  > t = COMPONENT (IN x: boolean; OUT y: boolean) IS
  > SIGNAL i: r;
  > BEGIN
  >   i.a := x;
  >   y := i.b
  > END;
  > SIGNAL s: t;
  > ZEUS
  $ zeusc check port.zeus
  4:8-9: error(port): instance 's.i' of 'r': port(s) 'c' neither used nor assigned — close them explicitly with '*'
  [1]

SEQUENTIAL order incompatible with the dataflow:

  $ cat > order.zeus <<'ZEUS'
  > TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
  > SIGNAL u: boolean;
  > BEGIN
  >   SEQUENTIAL
  >     y := NOT u;
  >     u := NOT a
  >   END
  > END;
  > SIGNAL s: t;
  > ZEUS
  $ zeusc check order.zeus
  4:3-7:6: error(order): SEQUENTIAL order is incompatible with the dataflow: 's.not#1[0]' is computed from a later statement's result
  [1]

A parse error points at the offending token:

  $ cat > parse.zeus <<'ZEUS'
  > TYPE t = COMPONENT (IN a boolean) IS BEGIN END;
  > ZEUS
  $ zeusc check parse.zeus
  1:26-33: error(parse): expected ':' but found 'boolean'
  [1]

Undeclared identifiers:

  $ cat > name.zeus <<'ZEUS'
  > TYPE t = COMPONENT (OUT y: boolean) IS
  > BEGIN y := nosuch END;
  > SIGNAL s: t;
  > ZEUS
  $ zeusc check name.zeus
  2:12-18: error(type): undeclared signal 'nosuch'
  [1]
