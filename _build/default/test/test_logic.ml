(* Four-valued logic: gate truth tables of section 8, driver resolution,
   and the consistency of early ("partial") firing with full evaluation. *)

open Zeus

let all_values = [ Logic.Zero; Logic.One; Logic.Undef; Logic.Noinfl ]

let logic = Alcotest.testable Logic.pp Logic.equal

let check_logic = Alcotest.check logic

let test_chars () =
  List.iter
    (fun v ->
      Alcotest.(check (option logic))
        "of_char/to_char" (Some v)
        (Logic.of_char (Logic.to_char v)))
    all_values;
  Alcotest.(check (option logic)) "bad char" None (Logic.of_char '?')

let test_booleanize () =
  check_logic "Z -> U" Logic.Undef (Logic.booleanize Logic.Noinfl);
  List.iter
    (fun v ->
      if not (Logic.equal v Logic.Noinfl) then
        check_logic "identity" v (Logic.booleanize v))
    all_values

let test_and_table () =
  (* AND fires 0 as soon as one input is 0; 1 iff both 1; else UNDEF *)
  check_logic "0.U" Logic.Zero (Logic.and2 Logic.Zero Logic.Undef);
  check_logic "U.0" Logic.Zero (Logic.and2 Logic.Undef Logic.Zero);
  check_logic "1.1" Logic.One (Logic.and2 Logic.One Logic.One);
  check_logic "1.U" Logic.Undef (Logic.and2 Logic.One Logic.Undef);
  check_logic "Z.1" Logic.Undef (Logic.and2 Logic.Noinfl Logic.One);
  check_logic "Z.0" Logic.Zero (Logic.and2 Logic.Noinfl Logic.Zero)

let test_or_table () =
  check_logic "1+U" Logic.One (Logic.or2 Logic.One Logic.Undef);
  check_logic "0+0" Logic.Zero (Logic.or2 Logic.Zero Logic.Zero);
  check_logic "0+U" Logic.Undef (Logic.or2 Logic.Zero Logic.Undef);
  check_logic "Z+0" Logic.Undef (Logic.or2 Logic.Noinfl Logic.Zero)

let test_xor_equal () =
  check_logic "xor 1 0" Logic.One (Logic.xor2 Logic.One Logic.Zero);
  check_logic "xor 1 1" Logic.Zero (Logic.xor2 Logic.One Logic.One);
  check_logic "xor U 1" Logic.Undef (Logic.xor2 Logic.Undef Logic.One);
  check_logic "equal 1 1" Logic.One (Logic.equal2 Logic.One Logic.One);
  check_logic "equal 1 0" Logic.Zero (Logic.equal2 Logic.One Logic.Zero);
  check_logic "equal U 0" Logic.Undef (Logic.equal2 Logic.Undef Logic.Zero)

let test_not () =
  check_logic "not 0" Logic.One (Logic.not_ Logic.Zero);
  check_logic "not 1" Logic.Zero (Logic.not_ Logic.One);
  check_logic "not U" Logic.Undef (Logic.not_ Logic.Undef);
  check_logic "not Z" Logic.Undef (Logic.not_ Logic.Noinfl)

let test_nary () =
  check_logic "and3" Logic.Zero
    (Logic.and_list [ Logic.One; Logic.Zero; Logic.One ]);
  check_logic "or3" Logic.One
    (Logic.or_list [ Logic.Zero; Logic.Undef; Logic.One ]);
  check_logic "nand" Logic.One
    (Logic.nand_list [ Logic.Zero; Logic.One ]);
  check_logic "nor" Logic.Zero (Logic.nor_list [ Logic.One; Logic.Zero ]);
  check_logic "xor3" Logic.One
    (Logic.xor_list [ Logic.One; Logic.One; Logic.One ]);
  Alcotest.check_raises "empty and" (Invalid_argument "Logic.and_list: empty")
    (fun () -> ignore (Logic.and_list []))

(* resolution: NOINFL overruled; >1 driving value is a conflict *)
let test_resolve () =
  let r = Logic.resolve [ Logic.Noinfl; Logic.One; Logic.Noinfl ] in
  check_logic "single driver" Logic.One r.Logic.value;
  Alcotest.(check bool) "no conflict" false r.Logic.conflict;
  let r = Logic.resolve [ Logic.One; Logic.Zero ] in
  check_logic "conflict -> U" Logic.Undef r.Logic.value;
  Alcotest.(check bool) "conflict" true r.Logic.conflict;
  let r = Logic.resolve [ Logic.Undef; Logic.Undef ] in
  Alcotest.(check bool) "two UNDEF drives also conflict" true r.Logic.conflict;
  let r = Logic.resolve [ Logic.Noinfl; Logic.Noinfl ] in
  check_logic "all NOINFL" Logic.Noinfl r.Logic.value;
  Alcotest.(check bool) "no conflict" false r.Logic.conflict;
  let r = Logic.resolve [] in
  check_logic "no drivers" Logic.Noinfl r.Logic.value

(* ---- qcheck properties ---- *)

let gen_logic = QCheck.make ~print:Logic.to_string (QCheck.Gen.oneofl all_values)

let gen_partial =
  QCheck.make
    ~print:(function None -> "?" | Some v -> Logic.to_string v)
    QCheck.Gen.(
      oneof [ return None; map (fun v -> Some v) (oneofl all_values) ])

(* once a partial gate fires, filling in the missing inputs never changes
   the result — the "all orders give the same result" claim of section 8
   at the gate level *)
let partial_consistent name partial strict =
  QCheck.Test.make ~count:500
    ~name:(name ^ "_partial_consistent")
    (QCheck.list_of_size (QCheck.Gen.int_range 1 5) gen_partial)
    (fun inputs ->
      match partial inputs with
      | None -> true
      | Some fired ->
          (* complete the inputs in every (sampled) way *)
          List.for_all
            (fun fill ->
              let complete =
                List.map (function Some v -> v | None -> fill) inputs
              in
              Logic.equal (strict complete) fired)
            all_values)

let prop_and = partial_consistent "and" Logic.and_partial Logic.and_list

let prop_or = partial_consistent "or" Logic.or_partial Logic.or_list

let prop_nand = partial_consistent "nand" Logic.nand_partial Logic.nand_list

let prop_nor = partial_consistent "nor" Logic.nor_partial Logic.nor_list

let prop_full_fires =
  QCheck.Test.make ~count:500 ~name:"full_inputs_always_fire"
    (QCheck.list_of_size (QCheck.Gen.int_range 1 5) gen_logic)
    (fun inputs ->
      let some = List.map (fun v -> Some v) inputs in
      Option.is_some (Logic.and_partial some)
      && Option.is_some (Logic.or_partial some)
      && Option.is_some (Logic.xor_partial some))

let prop_resolve_order_independent =
  QCheck.Test.make ~count:500 ~name:"resolve_order_independent"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 6) gen_logic)
    (fun drivers ->
      let a = Logic.resolve drivers in
      let b = Logic.resolve (List.rev drivers) in
      Logic.equal a.Logic.value b.Logic.value
      && a.Logic.conflict = b.Logic.conflict)

let prop_demorgan =
  QCheck.Test.make ~count:500 ~name:"demorgan_nand"
    (QCheck.list_of_size (QCheck.Gen.int_range 1 5) gen_logic)
    (fun inputs ->
      Logic.equal (Logic.nand_list inputs) (Logic.not_ (Logic.and_list inputs)))

let () =
  Alcotest.run "logic"
    [
      ( "tables",
        [
          Alcotest.test_case "chars" `Quick test_chars;
          Alcotest.test_case "booleanize" `Quick test_booleanize;
          Alcotest.test_case "and" `Quick test_and_table;
          Alcotest.test_case "or" `Quick test_or_table;
          Alcotest.test_case "xor/equal" `Quick test_xor_equal;
          Alcotest.test_case "not" `Quick test_not;
          Alcotest.test_case "nary" `Quick test_nary;
          Alcotest.test_case "resolve" `Quick test_resolve;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_and;
            prop_or;
            prop_nand;
            prop_nor;
            prop_full_fires;
            prop_resolve_order_independent;
            prop_demorgan;
          ] );
    ]
