(* Elaborated types: widths, natural flattening order, mode inheritance
   (section 3.2). *)

open Zeus

let b = Etype.Basic Etype.KBool

let m = Etype.Basic Etype.KMux

let test_width () =
  Alcotest.(check int) "basic" 1 (Etype.width b);
  Alcotest.(check int) "array" 5 (Etype.width (Etype.Array (1, 5, b)));
  Alcotest.(check int) "nested" 12
    (Etype.width (Etype.Array (0, 3, Etype.Array (1, 3, b))));
  Alcotest.(check int) "record" 3
    (Etype.width
       (Etype.Record
          [
            { Etype.fname = "a"; fmode = Etype.In; fty = b };
            { Etype.fname = "b"; fmode = Etype.Out; fty = Etype.Array (1, 2, m) };
          ]));
  Alcotest.(check int) "empty array" 0 (Etype.width (Etype.Array (1, 0, b)))

let test_flatten_order () =
  (* natural order: array indices ascending, record fields in sequence *)
  let t =
    Etype.Array
      ( 1,
        2,
        Etype.Record
          [
            { Etype.fname = "x"; fmode = Etype.In; fty = b };
            { Etype.fname = "y"; fmode = Etype.Out; fty = b };
          ] )
  in
  let leaves = Etype.flatten ~prefix:"s" t in
  Alcotest.(check (list string))
    "paths"
    [ "s[1].x"; "s[1].y"; "s[2].x"; "s[2].y" ]
    (List.map (fun (p, _, _) -> p) leaves)

let test_mode_inheritance () =
  (* IN/OUT is inherited by substructures (section 3.2) *)
  let t =
    Etype.Record
      [ { Etype.fname = "x"; fmode = Etype.Inout; fty = b } ]
  in
  let leaves = Etype.flatten ~mode:Etype.In t in
  (match leaves with
  | [ (_, Etype.In, _) ] -> ()
  | _ -> Alcotest.fail "IN inherited through INOUT field");
  Alcotest.(check bool) "combine in/in" true
    (Etype.combine_mode Etype.In Etype.In = Some Etype.In);
  Alcotest.(check bool) "combine contradiction" true
    (Etype.combine_mode Etype.In Etype.Out = None);
  Alcotest.(check bool) "inout transparent" true
    (Etype.combine_mode Etype.Inout Etype.Out = Some Etype.Out)

let test_equal_shape () =
  let a = Etype.Array (1, 4, b) and a' = Etype.Array (0, 3, b) in
  Alcotest.(check bool) "same extent different bounds" true
    (Etype.equal_shape a a');
  Alcotest.(check bool) "different kind" false
    (Etype.equal_shape b m);
  Alcotest.(check bool) "different length" false
    (Etype.equal_shape a (Etype.Array (1, 5, b)))

let test_pp () =
  Alcotest.(check string) "pp basic" "boolean" (Etype.to_string b);
  Alcotest.(check string)
    "pp array" "ARRAY [1..4] OF multiplex"
    (Etype.to_string (Etype.Array (1, 4, m)))

let prop_width_flatten_agree =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n <= 1 then
            map (fun k -> Etype.Basic (if k then Etype.KBool else Etype.KMux)) bool
          else
            oneof
              [
                map (fun k -> Etype.Basic (if k then Etype.KBool else Etype.KMux)) bool;
                map2
                  (fun len elem -> Etype.Array (1, len, elem))
                  (int_range 0 4) (self (n / 2));
                map
                  (fun fields ->
                    Etype.Record
                      (List.mapi
                         (fun i f ->
                           { Etype.fname = Printf.sprintf "f%d" i;
                             fmode = Etype.Inout; fty = f })
                         fields))
                  (list_size (int_range 1 3) (self (n / 3)));
              ]))
  in
  QCheck.Test.make ~count:300 ~name:"width_equals_flatten_length"
    (QCheck.make ~print:Etype.to_string gen)
    (fun t -> Etype.width t = List.length (Etype.flatten t))

let () =
  Alcotest.run "etype"
    [
      ( "etype",
        [
          Alcotest.test_case "width" `Quick test_width;
          Alcotest.test_case "flatten order" `Quick test_flatten_order;
          Alcotest.test_case "mode inheritance" `Quick test_mode_inheritance;
          Alcotest.test_case "equal shape" `Quick test_equal_shape;
          Alcotest.test_case "pp" `Quick test_pp;
          QCheck_alcotest.to_alcotest prop_width_flatten_agree;
        ] );
    ]
