(* Static checks of section 4.7: the type-rule tables (1), (2), (3) —
   experiment E7 — plus single-assignment discipline, combinational-loop
   detection, the unused-port rule and SEQUENTIAL order checking. *)

open Zeus

let diags_of src =
  let _, diags = elaborate_with_diags src in
  diags

let errors_of src =
  List.filter (fun (d : Diag.t) -> d.Diag.severity = Diag.Error) (diags_of src)

let legal name src =
  match errors_of src with
  | [] -> ()
  | errs -> Alcotest.failf "%s: expected legal, got %a" name Fmt.(list Diag.pp) errs

let illegal name src =
  match errors_of src with
  | [] -> Alcotest.failf "%s: expected an error" name
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Type rules (1): conditional assignment  IF b THEN x := e END         *)
(*                                                                      *)
(*    x \ e      boolean       multiplex                                *)
(*    boolean    illegal[*]    illegal[*]                               *)
(*    multiplex  legal         legal                                    *)
(*    [*] exception 1: x is a formal OUT parameter or an IN parameter  *)
(*        of an instantiated component                                  *)
(* ------------------------------------------------------------------ *)

(* a local signal [x] of the given kind conditionally assigned from a
   source of the given kind *)
let cond_assign ~target ~source =
  Printf.sprintf
    "TYPE t = COMPONENT (IN b: boolean; IN eb: boolean; em: multiplex; OUT \
     y: boolean) IS SIGNAL x: %s; BEGIN IF b THEN x := %s END; y := x END; \
     SIGNAL s: t;"
    target
    (match source with "boolean" -> "eb" | _ -> "em")

let test_rules1_local () =
  illegal "bool := bool cond" (cond_assign ~target:"boolean" ~source:"boolean");
  illegal "bool := mux cond" (cond_assign ~target:"boolean" ~source:"multiplex");
  legal "mux := bool cond" (cond_assign ~target:"multiplex" ~source:"boolean");
  legal "mux := mux cond" (cond_assign ~target:"multiplex" ~source:"multiplex")

let test_rules1_exception1_formal_out () =
  (* conditional assignment to a boolean formal OUT parameter is the
     exception the report motivates at length *)
  legal "formal OUT exception"
    "TYPE t = COMPONENT (IN b,c: boolean; OUT y: boolean) IS BEGIN IF b \
     THEN y := c END END; SIGNAL s: t;"

let test_rules1_exception1_instance_in () =
  legal "instance IN exception"
    "TYPE r = COMPONENT (IN a: boolean; OUT z: boolean) IS BEGIN z := NOT a \
     END; t = COMPONENT (IN b,c: boolean; OUT y: boolean) IS SIGNAL i: r; \
     BEGIN IF b THEN i.a := c END; y := i.z END; SIGNAL s: t;"

(* ------------------------------------------------------------------ *)
(* Unconditional assignment: all four combinations legal, but only one  *)
(* assignment ever — except both-multiplex, which must use '=='         *)
(* ------------------------------------------------------------------ *)

let test_uncond_combinations () =
  legal "bool := bool"
    "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS SIGNAL x: \
     boolean; BEGIN x := a; y := x END; SIGNAL s: t;";
  legal "mux := bool"
    "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS SIGNAL x: \
     multiplex; BEGIN x := a; y := x END; SIGNAL s: t;";
  legal "bool := mux"
    "TYPE t = COMPONENT (IN a: boolean; em: multiplex; OUT y: boolean) IS \
     SIGNAL x: boolean; BEGIN x := em; y := AND(a,x) END; SIGNAL s: t;";
  illegal "mux := mux needs =="
    "TYPE t = COMPONENT (em,fm: multiplex; IN a: boolean) IS BEGIN em := fm \
     END; SIGNAL s: t;"

let test_double_unconditional () =
  (* x:=1; x:=0 would connect power to ground *)
  illegal "double drive"
    "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS SIGNAL x: \
     boolean; BEGIN x := 1; x := 0; y := x END; SIGNAL s: t;"

let test_mixed_cond_uncond () =
  (* "A variable may not be assigned conditionally and unconditionally" *)
  illegal "mixed"
    "TYPE t = COMPONENT (IN b: boolean; OUT y: boolean) IS SIGNAL x: \
     multiplex; BEGIN x := 1; IF b THEN x := 0 END; y := x END; SIGNAL s: t;"

(* ------------------------------------------------------------------ *)
(* Type rules (2): aliasing x == y                                      *)
(*    bool == bool   illegal                                            *)
(*    bool == mux    illegal unless the boolean is exception 1          *)
(*    mux == mux     legal                                              *)
(* ------------------------------------------------------------------ *)

let test_rules2 () =
  legal "mux == mux"
    "TYPE t = COMPONENT (em,fm: multiplex; IN a: boolean) IS BEGIN em == fm; \
     IF a THEN em := 1 END END; SIGNAL s: t;";
  illegal "bool == bool"
    "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS SIGNAL u,v: \
     boolean; BEGIN u := a; u == v; y := v END; SIGNAL s: t;";
  illegal "local bool == mux"
    "TYPE t = COMPONENT (em: multiplex; IN a: boolean; OUT y: boolean) IS \
     SIGNAL u: boolean; BEGIN u == em; y := u END; SIGNAL s: t;";
  legal "formal OUT bool == mux (exception 1)"
    "TYPE t = COMPONENT (em: multiplex; IN a: boolean; OUT y: boolean) IS \
     BEGIN y == em; IF a THEN em := 1 END END; SIGNAL s: t;"

let test_alias_in_if () =
  illegal "alias under IF"
    "TYPE t = COMPONENT (em,fm: multiplex; IN a: boolean) IS BEGIN IF a \
     THEN em == fm END END; SIGNAL s: t;"

let test_alias_plus_uncond_bool () =
  (* a boolean assigned with '==' may not also be assigned with ':=' *)
  illegal "aliased bool with :="
    "TYPE r = COMPONENT (IN a: boolean; OUT z: boolean) IS BEGIN z := NOT a \
     END; t = COMPONENT (em: multiplex; IN b: boolean; OUT y: boolean) IS \
     SIGNAL i: r; BEGIN i.a == em; i.a := b; y := i.z END; SIGNAL s: t;"

(* ------------------------------------------------------------------ *)
(* Feedback loops: only through REG (section 3.2 / 8)                   *)
(* ------------------------------------------------------------------ *)

let test_combinational_cycle () =
  let errs =
    errors_of
      "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS SIGNAL u,v: \
       boolean; BEGIN u := AND(a,v); v := NOT u; y := v END; SIGNAL s: t;"
  in
  Alcotest.(check bool) "cycle reported" true
    (List.exists (fun (d : Diag.t) -> d.Diag.kind = Diag.Cycle_error) errs)

let test_cycle_through_reg_ok () =
  legal "loop through REG"
    "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS SIGNAL r: REG; \
     BEGIN r.in := XOR(a,r.out); y := r.out END; SIGNAL s: t;"

let test_self_cycle () =
  let errs =
    errors_of
      "TYPE t = COMPONENT (IN b: boolean; x: multiplex) IS BEGIN IF b THEN \
       x := NOT x END END; SIGNAL s: t;"
  in
  Alcotest.(check bool) "self loop reported" true
    (List.exists (fun (d : Diag.t) -> d.Diag.kind = Diag.Cycle_error) errs)

(* ------------------------------------------------------------------ *)
(* Unused ports (section 4.1)                                           *)
(* ------------------------------------------------------------------ *)

let test_unused_port () =
  let errs =
    errors_of
      "TYPE r = COMPONENT (IN a: boolean; OUT b,c: boolean) IS BEGIN b := \
       NOT a; c := a END; t = COMPONENT (IN x: boolean; OUT y: boolean) IS \
       SIGNAL i: r; BEGIN i.a := x; y := i.b END; SIGNAL s: t;"
  in
  Alcotest.(check bool) "unused port reported" true
    (List.exists (fun (d : Diag.t) -> d.Diag.kind = Diag.Port_error) errs)

let test_unused_port_closed_with_star () =
  legal "closed with star"
    "TYPE r = COMPONENT (IN a: boolean; OUT b,c: boolean) IS BEGIN b := NOT \
     a; c := a END; t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL \
     i: r; BEGIN i(x,y,*) END; SIGNAL s: t;"

let test_fully_disconnected_ok () =
  (* "it is legal to have completely disconnected components" *)
  legal "disconnected instance"
    "TYPE r = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := NOT a \
     END; t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL i: r; \
     BEGIN y := NOT x END; SIGNAL s: t;"

(* ------------------------------------------------------------------ *)
(* SEQUENTIAL / PARALLEL (section 4.5)                                  *)
(* ------------------------------------------------------------------ *)

let test_sequential_compatible () =
  legal "correct order"
    "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS SIGNAL u: \
     boolean; BEGIN SEQUENTIAL u := NOT a; y := NOT u END END; SIGNAL s: t;"

let test_sequential_incompatible () =
  let errs =
    errors_of
      "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS SIGNAL u: \
       boolean; BEGIN SEQUENTIAL y := NOT u; u := NOT a END END; SIGNAL s: \
       t;"
  in
  Alcotest.(check bool) "order violation" true
    (List.exists (fun (d : Diag.t) -> d.Diag.kind = Diag.Order_error) errs)

let test_for_sequentially () =
  legal "ripple order"
    "TYPE t = COMPONENT (IN a: ARRAY[1..4] OF boolean; OUT y: boolean) IS \
     SIGNAL h: ARRAY[1..5] OF boolean; BEGIN SEQUENTIAL h[1] := a[1]; FOR i \
     := 2 TO 4 DO SEQUENTIALLY h[i] := AND(h[i-1],a[i]); END; y := h[4] END \
     END; SIGNAL s: t;"

let test_parallel_neutralizes () =
  (* PARALLEL groups statements into one unit: no constraint between its
     members *)
  legal "parallel inside sequential"
    "TYPE t = COMPONENT (IN a: boolean; OUT y,z: boolean) IS SIGNAL u,v: \
     boolean; BEGIN SEQUENTIAL PARALLEL u := NOT a; v := NOT a END; y := \
     AND(u,v); z := v END END; SIGNAL s: t;"

(* ------------------------------------------------------------------ *)
(* Warnings                                                             *)
(* ------------------------------------------------------------------ *)

let test_undriven_warning () =
  let diags =
    diags_of
      "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS SIGNAL u: \
       boolean; BEGIN y := AND(a,u) END; SIGNAL s: t;"
  in
  Alcotest.(check bool) "undriven read warns" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.severity = Diag.Warning && d.Diag.kind = Diag.Assign_error)
       diags)

(* the corpus passes all static checks *)
let test_corpus_clean () =
  List.iter
    (fun (name, src) ->
      match errors_of src with
      | [] -> ()
      | errs ->
          Alcotest.failf "%s: %a" name Fmt.(list Diag.pp) errs)
    Corpus.all_named

let () =
  Alcotest.run "check"
    [
      ( "type_rules_1",
        [
          Alcotest.test_case "local matrix" `Quick test_rules1_local;
          Alcotest.test_case "exception1 formal OUT" `Quick
            test_rules1_exception1_formal_out;
          Alcotest.test_case "exception1 instance IN" `Quick
            test_rules1_exception1_instance_in;
        ] );
      ( "unconditional",
        [
          Alcotest.test_case "combinations" `Quick test_uncond_combinations;
          Alcotest.test_case "double drive" `Quick test_double_unconditional;
          Alcotest.test_case "mixed cond/uncond" `Quick test_mixed_cond_uncond;
        ] );
      ( "type_rules_2",
        [
          Alcotest.test_case "alias matrix" `Quick test_rules2;
          Alcotest.test_case "alias in IF" `Quick test_alias_in_if;
          Alcotest.test_case "aliased bool :=" `Quick
            test_alias_plus_uncond_bool;
        ] );
      ( "cycles",
        [
          Alcotest.test_case "combinational cycle" `Quick
            test_combinational_cycle;
          Alcotest.test_case "through REG ok" `Quick test_cycle_through_reg_ok;
          Alcotest.test_case "self cycle" `Quick test_self_cycle;
        ] );
      ( "ports",
        [
          Alcotest.test_case "unused port" `Quick test_unused_port;
          Alcotest.test_case "closed with star" `Quick
            test_unused_port_closed_with_star;
          Alcotest.test_case "disconnected ok" `Quick
            test_fully_disconnected_ok;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "compatible" `Quick test_sequential_compatible;
          Alcotest.test_case "incompatible" `Quick
            test_sequential_incompatible;
          Alcotest.test_case "for sequentially" `Quick test_for_sequentially;
          Alcotest.test_case "parallel" `Quick test_parallel_neutralizes;
        ] );
      ( "warnings",
        [ Alcotest.test_case "undriven" `Quick test_undriven_warning ] );
      ( "corpus", [ Alcotest.test_case "clean" `Quick test_corpus_clean ] );
    ]
