(* A systematic sweep of elaboration error paths: each bad program must
   fail with a diagnostic (never an exception or a silent acceptance),
   and the message must carry a usable source location. *)

open Zeus

let fails name src =
  match Zeus.elaborate_with_diags src with
  | _, diags ->
      let errors =
        List.filter (fun (d : Diag.t) -> d.Diag.severity = Diag.Error) diags
      in
      (match errors with
      | [] -> Alcotest.failf "%s: expected an error" name
      | e :: _ ->
          (* the location must be real, not <unknown> *)
          Alcotest.(check bool)
            (name ^ " has a location")
            true
            (not (Loc.is_dummy e.Diag.loc)))
  | exception e ->
      Alcotest.failf "%s: escaped exception %s" name (Printexc.to_string e)

let wrap body = "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS " ^ body ^ ";\nSIGNAL s: t;"

let test_type_errors () =
  fails "undeclared type" "SIGNAL x: nosuch;";
  fails "type arity" "TYPE bo(n) = ARRAY[1..n] OF boolean; SIGNAL x: bo;";
  fails "type arity too many" "SIGNAL x: boolean(3);";
  fails "value as type"
    "CONST k = 3; TYPE t = COMPONENT (IN a: k) IS BEGIN END; SIGNAL s: t;";
  fails "empty array range" "SIGNAL x: ARRAY[5..2] OF boolean;";
  fails "function as signal"
    "TYPE f = COMPONENT (IN a: boolean) : boolean IS BEGIN RESULT a END; \
     SIGNAL s: f;"

let test_selector_errors () =
  fails "index out of range" (wrap "SIGNAL v: ARRAY[1..3] OF boolean; BEGIN v := (a,a,a); y := v[7] END");
  fails "range out of bounds" (wrap "SIGNAL v: ARRAY[1..3] OF boolean; BEGIN v := (a,a,a); y := v[2..9][1] END");
  fails "index non-array" (wrap "BEGIN y := a[1] END");
  fails "field on basic" (wrap "BEGIN y := a.q END");
  fails "no such field"
    "TYPE r = COMPONENT (p: multiplex); t = COMPONENT (IN a: boolean; OUT \
     y: boolean) IS SIGNAL b: r; BEGIN b.p := a; y := b.nosuch END;\n\
     SIGNAL s: t;"

let test_expression_errors () =
  fails "width mismatch"
    (wrap "SIGNAL v: ARRAY[1..3] OF boolean; BEGIN v := (a,a); y := v[1] END");
  fails "equal width mismatch"
    (wrap "SIGNAL v: ARRAY[1..2] OF boolean; BEGIN v := (a,a); y := \
           EQUAL(v,a) END");
  fails "and width mismatch"
    (wrap "SIGNAL v: ARRAY[1..2] OF boolean; BEGIN v := (a,a); y := \
           AND(v,(a,a,a))[1] END");
  fails "if condition width"
    (wrap "SIGNAL v: ARRAY[1..2] OF boolean; m: multiplex; BEGIN v := \
           (a,a); IF v THEN m := a END; y := m END");
  fails "star in gate" (wrap "BEGIN y := AND(a,*) END");
  fails "bad BIN width" (wrap "BEGIN y := BIN(3,0)[1] END");
  fails "undeclared function" (wrap "BEGIN y := nosuchfn(a) END");
  fails "call arity"
    "TYPE f = COMPONENT (IN a,b: boolean) : boolean IS BEGIN RESULT \
     AND(a,b) END; t = COMPONENT (IN a: boolean; OUT y: boolean) IS BEGIN \
     y := f(a) END;\nSIGNAL s: t;";
  fails "result outside function" (wrap "BEGIN RESULT a")

let test_statement_errors () =
  fails "connection to non-instance" (wrap "BEGIN a(y) END");
  fails "with on basic" (wrap "BEGIN WITH a DO y := a END END");
  fails "alias with constant"
    (wrap "SIGNAL m: multiplex; BEGIN m == (1) ; y := m END");
  fails "num address star"
    (wrap "SIGNAL v: ARRAY[0..1] OF boolean; BEGIN v := (a,a); y := \
           v[NUM(*)] END")

let test_const_errors () =
  fails "division by zero in type" "SIGNAL x: ARRAY[1..4 DIV 0] OF boolean;";
  fails "signal const as number" "CONST c = (0,1); SIGNAL x: ARRAY[1..c] OF boolean;";
  fails "bad signal value" "CONST c = (0,2);";
  fails "undeclared const in bound" "SIGNAL x: ARRAY[1..nn] OF boolean;"

let test_layout_errors () =
  fails "unknown boundary pin"
    "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) { BOTTOM nosuch } \
     IS BEGIN y := NOT a END;\nSIGNAL s: t;";
  fails "double replacement"
    "TYPE b = COMPONENT (IN t: boolean; OUT u: boolean) IS BEGIN u := NOT \
     t END; t = COMPONENT (IN a: boolean; OUT y: boolean) IS SIGNAL v: \
     virtual; { v = b; v = b } BEGIN v.t := a; y := v.u END;\nSIGNAL s: t;";
  fails "replacement of non-virtual"
    "TYPE b = COMPONENT (IN t: boolean; OUT u: boolean) IS BEGIN u := NOT \
     t END; t = COMPONENT (IN a: boolean; OUT y: boolean) IS SIGNAL w: \
     boolean; { w = b } BEGIN w := a; y := w END;\nSIGNAL s: t;"

(* robustness: every program must either elaborate or produce located
   diagnostics — never crash — even for hostile inputs *)
let prop_no_crashes =
  QCheck.Test.make ~count:300 ~name:"no_crash_on_mutated_sources"
    (QCheck.make
       ~print:(fun (name, i, j) -> Printf.sprintf "%s swap %d %d" name i j)
       QCheck.Gen.(
         triple
           (oneofl (List.map fst Corpus.all_named))
           (int_bound 400) (int_bound 4000)))
    (fun (name, i, j) ->
      (* mutate a valid corpus program by deleting a token-ish chunk *)
      let src = List.assoc name Corpus.all_named in
      let n = String.length src in
      let i = i mod n and len = min 30 (j mod 60) in
      let mutated =
        String.sub src 0 i ^ String.sub src (min n (i + len)) (n - min n (i + len))
      in
      match Zeus.elaborate_with_diags mutated with
      | _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "errors"
    [
      ( "sweep",
        [
          Alcotest.test_case "types" `Quick test_type_errors;
          Alcotest.test_case "selectors" `Quick test_selector_errors;
          Alcotest.test_case "expressions" `Quick test_expression_errors;
          Alcotest.test_case "statements" `Quick test_statement_errors;
          Alcotest.test_case "constants" `Quick test_const_errors;
          Alcotest.test_case "layout" `Quick test_layout_errors;
        ] );
      ("robustness", [ QCheck_alcotest.to_alcotest prop_no_crashes ]);
    ]
