(* The whole embedded corpus: compiles cleanly, pretty-prints and
   re-parses, elaborates to stable netlist sizes (regression pinning). *)

open Zeus

let test_all_compile () =
  List.iter
    (fun (name, src) ->
      match Zeus.compile src with
      | Ok _ -> ()
      | Error diags ->
          Alcotest.failf "%s failed: %a" name Fmt.(list Diag.pp) diags)
    Corpus.all_named

(* netlist statistics are pinned so that elaboration changes are caught *)
let test_pinned_stats () =
  List.iter
    (fun (name, expect) ->
      let src = List.assoc name Corpus.all_named in
      match Zeus.compile src with
      | Error diags ->
          Alcotest.failf "%s failed: %a" name Fmt.(list Diag.pp) diags
      | Ok d ->
          Alcotest.(check string)
            name expect
            (Netlist.stats d.Elaborate.netlist))
    [
      ("adder4", "nets=93 gates=20 drivers=62 regs=0 instances=13");
      ("mux4", "nets=29 gates=10 drivers=13 regs=0 instances=2");
      ("section8", "nets=15 gates=3 drivers=4 regs=1 instances=2");
    ]

let test_sized_variants () =
  (* parameterized generators elaborate across a size sweep *)
  List.iter
    (fun n ->
      match Zeus.compile (Corpus.adder_n n) with
      | Ok d ->
          let fulladders =
            List.filter
              (fun (i : Netlist.instance) -> i.Netlist.itype = "fulladder")
              (Netlist.instances d.Elaborate.netlist)
          in
          Alcotest.(check int)
            (Printf.sprintf "adder_n %d" n)
            n (List.length fulladders)
      | Error diags ->
          Alcotest.failf "adder_n %d: %a" n Fmt.(list Diag.pp) diags)
    [ 1; 2; 3; 7; 16; 33; 64 ]

let test_htree_instance_counts () =
  (* htree(n) instantiates (4^k - 1)/3 internal nodes x 4 + leaves;
     simply pin a couple of sizes *)
  let count n =
    match Zeus.compile (Corpus.htree n) with
    | Ok d -> List.length (Netlist.instances d.Elaborate.netlist)
    | Error diags -> Alcotest.failf "htree %d: %a" n Fmt.(list Diag.pp) diags
  in
  (* n=1: a + leaf = 2; n=4: a + 4 htree(1) + 4 leaves = 9 *)
  Alcotest.(check int) "htree 1" 2 (count 1);
  Alcotest.(check int) "htree 4" 9 (count 4);
  Alcotest.(check int) "htree 16" 37 (count 16)

let test_deterministic_elaboration () =
  (* elaborating twice gives the identical netlist (no hidden state) *)
  List.iter
    (fun (name, src) ->
      let stats () =
        match Zeus.compile src with
        | Ok d -> Netlist.stats d.Elaborate.netlist
        | Error _ -> "error"
      in
      Alcotest.(check string) name (stats ()) (stats ()))
    Corpus.all_named

let () =
  Alcotest.run "corpus"
    [
      ( "corpus",
        [
          Alcotest.test_case "all compile" `Quick test_all_compile;
          Alcotest.test_case "pinned stats" `Quick test_pinned_stats;
          Alcotest.test_case "size sweep" `Quick test_sized_variants;
          Alcotest.test_case "htree counts" `Quick test_htree_instance_counts;
          Alcotest.test_case "deterministic" `Quick
            test_deterministic_elaboration;
        ] );
    ]
