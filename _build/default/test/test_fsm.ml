(* The sequential-machine corpus (counter, shift register, LFSR, serial
   adder, Gray counter, NUM-based multiplexor) against golden models. *)

open Zeus

let logic = Alcotest.testable Logic.pp Logic.equal

let compile src =
  match Zeus.compile src with
  | Ok d -> d
  | Error diags -> Alcotest.failf "compile: %a" Fmt.(list Diag.pp) diags

let no_errors name sim =
  match Sim.runtime_errors sim with
  | [] -> ()
  | e :: _ ->
      Alcotest.failf "%s: runtime error %s: %s" name e.Sim.err_net
        e.Sim.err_message

(* ---- counter ---- *)

let test_counter_counts () =
  let d = compile (Corpus_fsm.counter 8) in
  let sim = Sim.create d in
  Sim.poke_bool sim "c.en" true;
  Sim.reset sim;
  for expect = 0 to 300 do
    Sim.step sim;
    Alcotest.(check (option int))
      (Printf.sprintf "count %d" expect)
      (Some (expect land 255))
      (Sim.peek_int sim "c.value")
  done;
  no_errors "counter" sim

let test_counter_enable () =
  let d = compile (Corpus_fsm.counter 4) in
  let sim = Sim.create d in
  Sim.poke_bool sim "c.en" true;
  Sim.reset sim;
  Sim.step_n sim 5;
  Alcotest.(check (option int)) "counted to 4" (Some 4)
    (Sim.peek_int sim "c.value");
  Sim.poke_bool sim "c.en" false;
  Sim.step_n sim 10;
  Alcotest.(check (option int)) "held while disabled" (Some 5)
    (Sim.peek_int sim "c.value")

let test_counter_wraps () =
  let d = compile (Corpus_fsm.counter 3) in
  let sim = Sim.create d in
  Sim.poke_bool sim "c.en" true;
  Sim.reset sim;
  Sim.step_n sim 9;
  (* value visible at cycle 9 is count 8 mod 8 = 0 *)
  Alcotest.(check (option int)) "wrapped" (Some 0) (Sim.peek_int sim "c.value")

(* ---- shift register ---- *)

let test_shiftreg () =
  let d = compile (Corpus_fsm.shift_register 8) in
  let sim = Sim.create d in
  Sim.poke_bool sim "sr.en" true;
  Sim.poke_bool sim "sr.d" false;
  Sim.reset sim;
  let stream = [ true; true; false; true; false; false; true; true ] in
  List.iter
    (fun b ->
      Sim.poke_bool sim "sr.d" b;
      Sim.step sim)
    stream;
  Sim.poke_bool sim "sr.en" false;
  Sim.step sim;
  (* q[1] is the last bit shifted in, q[8] the first *)
  let want = List.rev stream in
  let got = List.map (fun v -> Logic.equal v Logic.One) (Sim.peek sim "sr.q") in
  Alcotest.(check (list bool)) "register contents" want got;
  no_errors "shiftreg" sim

(* ---- LFSR ---- *)

let test_lfsr_period () =
  let d = compile Corpus_fsm.lfsr4 in
  let sim = Sim.create d in
  Sim.poke_bool sim "l.en" true;
  Sim.reset sim;
  Sim.step sim;
  let states = ref [] in
  for _ = 1 to 15 do
    (match Sim.peek_int sim "l.q" with
    | Some v -> states := v :: !states
    | None -> Alcotest.fail "undefined LFSR state");
    Sim.step sim
  done;
  let states = List.rev !states in
  (* maximal-length: all 15 non-zero states visited exactly once *)
  Alcotest.(check int) "distinct states" 15
    (List.length (List.sort_uniq compare states));
  Alcotest.(check bool) "never zero" true (not (List.mem 0 states));
  (* period 15: state repeats *)
  Alcotest.(check (option int)) "wraps to start" (Some (List.hd states))
    (Sim.peek_int sim "l.q");
  no_errors "lfsr" sim

(* ---- serial adder ---- *)

let test_serial_adder () =
  (* add 13-bit numbers bit-serially, LSB first *)
  let add a b =
    let d = compile Corpus_fsm.serial_adder in
    let sim = Sim.create d in
    Sim.poke_bool sim "sa.a" false;
    Sim.poke_bool sim "sa.b" false;
    Sim.reset sim;
    let result = ref 0 in
    for bit = 0 to 13 do
      Sim.poke_bool sim "sa.a" ((a lsr bit) land 1 = 1);
      Sim.poke_bool sim "sa.b" ((b lsr bit) land 1 = 1);
      Sim.step sim;
      if Logic.equal (Sim.peek_bit sim "sa.s") Logic.One then
        result := !result lor (1 lsl bit)
    done;
    !result
  in
  List.iter
    (fun (a, b) ->
      Alcotest.(check int) (Printf.sprintf "%d+%d" a b) (a + b) (add a b))
    [ (0, 0); (1, 1); (3, 5); (1000, 7000); (4095, 4095); (8191, 1) ]

let prop_serial_adder =
  QCheck.Test.make ~count:25 ~name:"serial_adder_random"
    QCheck.(pair (int_bound 4000) (int_bound 4000))
    (fun (a, b) ->
      let d = compile Corpus_fsm.serial_adder in
      let sim = Sim.create d in
      Sim.poke_bool sim "sa.a" false;
      Sim.poke_bool sim "sa.b" false;
      Sim.reset sim;
      let result = ref 0 in
      for bit = 0 to 13 do
        Sim.poke_bool sim "sa.a" ((a lsr bit) land 1 = 1);
        Sim.poke_bool sim "sa.b" ((b lsr bit) land 1 = 1);
        Sim.step sim;
        if Logic.equal (Sim.peek_bit sim "sa.s") Logic.One then
          result := !result lor (1 lsl bit)
      done;
      !result = a + b)

(* ---- Gray counter ---- *)

let test_gray_counter () =
  let d = compile (Corpus_fsm.gray_counter 4) in
  let sim = Sim.create d in
  Sim.poke_bool sim "gc.en" true;
  Sim.reset sim;
  let prev = ref None in
  for step = 1 to 32 do
    Sim.step sim;
    match Sim.peek_int sim "gc.g" with
    | None -> Alcotest.failf "undefined gray output at step %d" step
    | Some g ->
        (match !prev with
        | Some p when step > 1 ->
            let diff = p lxor g in
            (* consecutive Gray codes differ in exactly one bit *)
            Alcotest.(check bool)
              (Printf.sprintf "one-bit change at step %d (%x->%x)" step p g)
              true
              (diff <> 0 && diff land (diff - 1) = 0)
        | _ -> ());
        prev := Some g
  done;
  no_errors "gray" sim

(* ---- NUM-based multiplexor ---- *)

let test_muxn () =
  let d = compile (Corpus_fsm.muxn ~inputs:8 ~selbits:3) in
  let sim = Sim.create d in
  let data = 0b10110010 in
  (* d[0] is the MSB of the poked integer (index order) *)
  Sim.poke_int sim "m.d" data;
  for sel = 0 to 7 do
    Sim.poke_int sim "m.sel" sel;
    Sim.step sim;
    let want = (data lsr (7 - sel)) land 1 = 1 in
    Alcotest.check logic
      (Printf.sprintf "select %d" sel)
      (Logic.of_bool want)
      (Sim.peek_bit sim "m.z")
  done;
  no_errors "muxn" sim

(* ---- arbiter (RANDOM, "for describing bistable elements") ---- *)

let test_arbiter_exclusive () =
  let d = compile Corpus_fsm.arbiter in
  let sim = Sim.create ~seed:11 d in
  let grants1 = ref 0 and grants2 = ref 0 in
  for _ = 1 to 200 do
    Sim.poke_bool sim "arb.req1" true;
    Sim.poke_bool sim "arb.req2" true;
    Sim.step sim;
    let g1 = Logic.equal (Sim.peek_bit sim "arb.gnt1") Logic.One in
    let g2 = Logic.equal (Sim.peek_bit sim "arb.gnt2") Logic.One in
    (* mutual exclusion, and exactly one grant under contention *)
    Alcotest.(check bool) "exactly one grant" true (g1 <> g2);
    if g1 then incr grants1 else incr grants2
  done;
  (* the RANDOM coin resolves ties both ways *)
  Alcotest.(check bool)
    (Printf.sprintf "both sides win sometimes (%d/%d)" !grants1 !grants2)
    true
    (!grants1 > 20 && !grants2 > 20);
  no_errors "arbiter" sim;
  (* single requests are granted deterministically *)
  Sim.poke_bool sim "arb.req1" true;
  Sim.poke_bool sim "arb.req2" false;
  Sim.step sim;
  Alcotest.check logic "solo request 1" Logic.One (Sim.peek_bit sim "arb.gnt1");
  Sim.poke_bool sim "arb.req1" false;
  Sim.poke_bool sim "arb.req2" true;
  Sim.step sim;
  Alcotest.check logic "solo request 2" Logic.One (Sim.peek_bit sim "arb.gnt2")

let test_run_until () =
  (* Sim.run_until: wait for the counter to reach 10 *)
  let d = compile (Corpus_fsm.counter 8) in
  let sim = Sim.create d in
  Sim.poke_bool sim "c.en" true;
  Sim.reset sim;
  (match Sim.run_until sim ~max:50 (fun s -> Sim.peek_int s "c.value" = Some 10) with
  | Some cycles -> Alcotest.(check int) "reached 10" 11 cycles
  | None -> Alcotest.fail "timeout");
  match Sim.run_until sim ~max:3 (fun s -> Sim.peek_int s "c.value" = Some 200) with
  | None -> ()
  | Some _ -> Alcotest.fail "should have timed out"

let test_all_compile () =
  List.iter
    (fun (name, src) ->
      match Zeus.compile src with
      | Ok _ -> ()
      | Error diags ->
          Alcotest.failf "%s: %a" name Fmt.(list Diag.pp) diags)
    Corpus_fsm.all_named

let () =
  Alcotest.run "fsm"
    [
      ( "counter",
        [
          Alcotest.test_case "counts" `Quick test_counter_counts;
          Alcotest.test_case "enable" `Quick test_counter_enable;
          Alcotest.test_case "wraps" `Quick test_counter_wraps;
        ] );
      ("shiftreg", [ Alcotest.test_case "stream" `Quick test_shiftreg ]);
      ("lfsr", [ Alcotest.test_case "maximal period" `Quick test_lfsr_period ]);
      ( "serial_adder",
        [
          Alcotest.test_case "directed" `Quick test_serial_adder;
          QCheck_alcotest.to_alcotest prop_serial_adder;
        ] );
      ("gray", [ Alcotest.test_case "one-bit steps" `Quick test_gray_counter ]);
      ("muxn", [ Alcotest.test_case "selection" `Quick test_muxn ]);
      ( "arbiter",
        [ Alcotest.test_case "mutual exclusion" `Quick test_arbiter_exclusive ]
      );
      ( "run_until",
        [ Alcotest.test_case "predicate wait" `Quick test_run_until ] );
      ("corpus", [ Alcotest.test_case "all compile" `Quick test_all_compile ]);
    ]
