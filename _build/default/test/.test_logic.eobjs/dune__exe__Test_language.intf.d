test/test_language.mli:
