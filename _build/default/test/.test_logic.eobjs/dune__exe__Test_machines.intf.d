test/test_machines.mli:
