test/test_scale.ml: Alcotest Corpus Diag Elaborate Floorplan Fmt Fun List Logic Netlist Option Printf Sim Zeus
