test/test_check.ml: Alcotest Corpus Diag Fmt List Printf Zeus
