test/test_elaborate.ml: Alcotest Array Corpus Diag Elaborate Fmt List Netlist Printf Zeus
