test/test_const_eval.mli:
