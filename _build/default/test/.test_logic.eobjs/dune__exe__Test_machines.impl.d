test/test_machines.ml: Alcotest Corpus Diag Fmt Gen List Logic Option Printf QCheck QCheck_alcotest Refmodel Sim String Zeus
