test/test_optimize.ml: Alcotest Corpus Corpus_fsm Diag Elaborate Etype Fmt List Logic Netlist Optimize Random Sim String Zeus
