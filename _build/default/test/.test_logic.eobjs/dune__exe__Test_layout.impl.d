test/test_layout.ml: Alcotest Corpus Diag Floorplan Fmt Geom Layout_ir List Option Printf QCheck QCheck_alcotest Render String Zeus
