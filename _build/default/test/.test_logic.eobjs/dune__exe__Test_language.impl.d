test/test_language.ml: Alcotest Diag Elaborate Fmt List Logic Printf Sim Zeus
