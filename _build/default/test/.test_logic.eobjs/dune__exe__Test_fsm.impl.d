test/test_fsm.ml: Alcotest Corpus_fsm Diag Fmt List Logic Printf QCheck QCheck_alcotest Sim Zeus
