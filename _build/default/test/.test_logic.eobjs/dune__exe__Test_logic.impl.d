test/test_logic.ml: Alcotest List Logic Option QCheck QCheck_alcotest Zeus
