test/test_autoplace.mli:
