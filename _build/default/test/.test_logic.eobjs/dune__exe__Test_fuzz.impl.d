test/test_fuzz.ml: Alcotest Array Buffer Diag Fmt Fun List Logic Parser Pretty Printf QCheck QCheck_alcotest Random Sim String Zeus
