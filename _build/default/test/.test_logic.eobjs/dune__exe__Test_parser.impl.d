test/test_parser.ml: Alcotest Ast Corpus Diag List Option Parser Pretty Zeus
