test/test_layout_fuzz.ml: Alcotest Diag Floorplan Fmt Geom List Logic Printf QCheck QCheck_alcotest Sim String Zeus
