test/test_etype.mli:
