test/test_errors.ml: Alcotest Corpus Diag List Loc Printexc Printf QCheck QCheck_alcotest String Zeus
