test/test_autoplace.ml: Alcotest Autoplace Corpus Corpus_fsm Diag Elaborate Floorplan Fmt Geom List Printf Sim Stats String Wave Zeus
