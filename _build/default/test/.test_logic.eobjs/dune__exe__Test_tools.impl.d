test/test_tools.ml: Alcotest Array Buffer Corpus Corpus_fsm Diag Elaborate Explain Fmt Graph List Logic Netlist Option Printf Sim Stats String Testbench Zeus
