test/test_examples.ml: Alcotest Corpus Diag Elaborate Fmt Hashtbl List Logic Netlist Printf QCheck QCheck_alcotest Sim Zeus
