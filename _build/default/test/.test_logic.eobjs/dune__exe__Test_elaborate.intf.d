test/test_elaborate.mli:
