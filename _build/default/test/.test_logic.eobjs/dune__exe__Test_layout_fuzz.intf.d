test/test_layout_fuzz.mli:
