test/test_etype.ml: Alcotest Etype List Printf QCheck QCheck_alcotest Zeus
