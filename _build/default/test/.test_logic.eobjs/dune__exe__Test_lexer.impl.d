test/test_lexer.ml: Alcotest Array Char Diag Lexer List Loc QCheck QCheck_alcotest String Token Zeus
