test/test_const_eval.ml: Alcotest Ast Const_eval Cval Diag List Logic Parser QCheck QCheck_alcotest Zeus
