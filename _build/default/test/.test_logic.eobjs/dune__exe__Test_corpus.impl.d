test/test_corpus.ml: Alcotest Corpus Diag Elaborate Fmt List Netlist Printf Zeus
