test/test_sim.ml: Alcotest Check Corpus Diag Fmt List Logic Printf QCheck QCheck_alcotest Random Sim String Vcd Zeus
