(* Constant expressions (section 3.1): Modula-2 arithmetic, relations,
   the predefined functions min/max/odd, BIN/NUM, signal constants. *)

open Zeus

let eval ?(env = []) src =
  let lookup (id : Ast.ident) = List.assoc_opt id.Ast.id env in
  match Parser.constant_expression src with
  | Some e, _ -> Const_eval.eval_int lookup e
  | None, bag -> Alcotest.failf "parse failed: %a" Diag.Bag.pp bag

let check_int ?env name src expected =
  Alcotest.(check int) name expected (eval ?env src)

let eval_err ?(env = []) src =
  let lookup (id : Ast.ident) = List.assoc_opt id.Ast.id env in
  match Parser.constant_expression src with
  | Some e, _ -> (
      match Const_eval.eval_int lookup e with
      | v -> Alcotest.failf "expected error for %S, got %d" src v
      | exception Const_eval.Error _ -> ())
  | None, _ -> () (* parse error also counts *)

let test_arithmetic () =
  check_int "add" "1+2" 3;
  check_int "precedence" "1+2*3" 7;
  check_int "parens" "(1+2)*3" 9;
  check_int "sub chain" "10-3-2" 5;
  check_int "div" "7 DIV 2" 3;
  check_int "mod" "7 MOD 2" 1;
  check_int "unary minus" "-4+1" (-3);
  check_int "unary plus" "+4" 4

let test_relations () =
  check_int "lt" "1 < 2" 1;
  check_int "ge" "1 >= 2" 0;
  check_int "eq" "3 = 3" 1;
  check_int "neq" "3 <> 3" 0;
  check_int "le" "2 <= 2" 1;
  check_int "gt" "3 > 1" 1

let test_boolean_ops () =
  check_int "and" "1 AND 1" 1;
  check_int "and false" "1 AND 0" 0;
  check_int "or" "0 OR 1" 1;
  check_int "not" "NOT 0" 1;
  check_int "not nonzero" "NOT 5" 0;
  (* i MOD 2 <> 0, the condition from the binary-tree example *)
  check_int "paper condition" "5 MOD 2 <> 0" 1

let test_predefined () =
  check_int "min" "min(3,5)" 3;
  check_int "max" "max(3,5)" 5;
  check_int "min3" "min(7,2,9)" 2;
  check_int "odd true" "odd(3)" 1;
  check_int "odd false" "odd(4)" 0;
  (* the chessboard condition *)
  check_int "odd(i+j)" ~env:[ ("i", Cval.Vint 2); ("j", Cval.Vint 3) ]
    "odd(i+j)" 1

let test_env () =
  check_int "lookup" ~env:[ ("n", Cval.Vint 8) ] "n DIV 2" 4;
  check_int "nested" ~env:[ ("n", Cval.Vint 8) ] "2*n-1" 15

let test_errors () =
  eval_err "1 DIV 0";
  eval_err "1 MOD 0";
  eval_err "undefined_name";
  eval_err "odd(1,2)";
  eval_err ~env:[ ("s", Cval.Vsig (Cval.Leaf Logic.One)) ] "s + 1"

(* ---- BIN and NUM ---- *)

let test_bin () =
  let bits v w = Cval.sctree_leaves (Cval.bin v w) in
  Alcotest.(check (list char))
    "BIN(10,5)" [ '0'; '1'; '0'; '1'; '0' ]
    (List.map Logic.to_char (bits 10 5));
  Alcotest.(check (list char))
    "BIN(1,5)" [ '0'; '0'; '0'; '0'; '1' ]
    (List.map Logic.to_char (bits 1 5));
  Alcotest.(check (list char)) "BIN(0,1)" [ '0' ] (List.map Logic.to_char (bits 0 1))

let test_num () =
  Alcotest.(check (option int))
    "NUM of defined" (Some 10)
    (Cval.num [ Logic.Zero; Logic.One; Logic.Zero; Logic.One; Logic.Zero ]);
  Alcotest.(check (option int))
    "NUM with UNDEF" None
    (Cval.num [ Logic.One; Logic.Undef ]);
  Alcotest.(check (option int)) "NUM empty" (Some 0) (Cval.num [])

let prop_bin_num_inverse =
  QCheck.Test.make ~count:500 ~name:"num_bin_inverse"
    QCheck.(pair (int_bound 4095) (int_range 12 16))
    (fun (v, w) ->
      Cval.num (Cval.sctree_leaves (Cval.bin v w)) = Some v)

let prop_bin_width =
  QCheck.Test.make ~count:200 ~name:"bin_width"
    QCheck.(pair (int_bound 100000) (int_range 1 24))
    (fun (v, w) -> Cval.sctree_width (Cval.bin v w) = w)

(* ---- signal constants ---- *)

let eval_sig src =
  let prog =
    match Parser.program ("CONST c = " ^ src ^ ";") with
    | Some [ Ast.Dconst [ (_, k) ] ], _ -> k
    | _ -> Alcotest.failf "parse failed for %s" src
  in
  Const_eval.eval_constant (fun _ -> None) prog

let test_sig_consts () =
  (match eval_sig "(0,1,UNDEF,NOINFL)" with
  | Cval.Vsig (Cval.Tuple [ Cval.Leaf Logic.Zero; Cval.Leaf Logic.One;
                            Cval.Leaf Logic.Undef; Cval.Leaf Logic.Noinfl ])
    ->
      ()
  | _ -> Alcotest.fail "basic signal constants");
  match eval_sig "((0,1),(1,0))" with
  | Cval.Vsig t -> Alcotest.(check int) "width" 4 (Cval.sctree_width t)
  | _ -> Alcotest.fail "nested tuple"

let test_octal_in_const () =
  check_int "octal" "17B + 1" 16

let () =
  Alcotest.run "const_eval"
    [
      ( "numeric",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "relations" `Quick test_relations;
          Alcotest.test_case "boolean ops" `Quick test_boolean_ops;
          Alcotest.test_case "predefined" `Quick test_predefined;
          Alcotest.test_case "environment" `Quick test_env;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "octal" `Quick test_octal_in_const;
        ] );
      ( "bin_num",
        [
          Alcotest.test_case "bin" `Quick test_bin;
          Alcotest.test_case "num" `Quick test_num;
          QCheck_alcotest.to_alcotest prop_bin_num_inverse;
          QCheck_alcotest.to_alcotest prop_bin_width;
        ] );
      ( "signal_constants",
        [ Alcotest.test_case "tuples" `Quick test_sig_consts ] );
    ]
