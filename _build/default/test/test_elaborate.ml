(* Elaboration: statements to netlist, lazy instantiation, parameterized
   recursion, connection-statement translation, WITH, the '*' rules. *)

open Zeus

let elab src =
  let design, diags = elaborate_with_diags src in
  match design with
  | Some d -> (d, diags)
  | None -> Alcotest.failf "elaboration failed: %a" Fmt.(list Diag.pp) diags

let elab_ok src =
  let d, diags = elab src in
  let errors = List.filter (fun x -> x.Diag.severity = Diag.Error) diags in
  if errors <> [] then
    Alcotest.failf "unexpected errors: %a" Fmt.(list Diag.pp) errors;
  d

let elab_errors src =
  let _, diags = elab src in
  List.filter (fun x -> x.Diag.severity = Diag.Error) diags

let has_error_kind kind diags =
  List.exists (fun (d : Diag.t) -> d.Diag.kind = kind) diags

let check_error name kind src =
  let errs = elab_errors src in
  if not (has_error_kind kind errs) then
    Alcotest.failf "%s: expected %s error, got %a" name
      (Diag.kind_to_string kind)
      Fmt.(list Diag.pp)
      errs

let nl d = d.Elaborate.netlist

(* ---- basic shapes ---- *)

let test_gate_counts () =
  let d =
    elab_ok
      "TYPE t = COMPONENT (IN a,b: boolean; OUT x: boolean) IS BEGIN x := \
       AND(a,OR(a,b)) END; SIGNAL s: t;"
  in
  Alcotest.(check int) "gates" 2 (List.length (Netlist.gates (nl d)));
  Alcotest.(check int) "instances" 1 (List.length (Netlist.instances (nl d)))

let test_bitwise_gates () =
  (* AND over 4-bit operands bit-blasts into 4 gates *)
  let d =
    elab_ok
      "TYPE bo4 = ARRAY[1..4] OF boolean; t = COMPONENT (IN a,b: bo4; OUT x: \
       bo4) IS BEGIN x := AND(a,b) END; SIGNAL s: t;"
  in
  Alcotest.(check int) "gates" 4 (List.length (Netlist.gates (nl d)))

let test_variadic_gates () =
  let d =
    elab_ok
      "TYPE t = COMPONENT (IN a,b,c,e: boolean; OUT x: boolean) IS BEGIN x \
       := OR(a,b,c,e) END; SIGNAL s: t;"
  in
  match Netlist.gates (nl d) with
  | [ g ] -> Alcotest.(check int) "4 inputs" 4 (List.length g.Netlist.inputs)
  | _ -> Alcotest.fail "one variadic gate"

let test_equal_reduces () =
  (* EQUAL on multi-bit operands yields a single boolean *)
  let d =
    elab_ok
      "TYPE bo3 = ARRAY[1..3] OF boolean; t = COMPONENT (IN a,b: bo3; OUT x: \
       boolean) IS BEGIN x := EQUAL(a,b) END; SIGNAL s: t;"
  in
  match Netlist.gates (nl d) with
  | [ g ] ->
      Alcotest.(check bool) "op" true (g.Netlist.op = Netlist.Gequal);
      Alcotest.(check int) "6 inputs" 6 (List.length g.Netlist.inputs)
  | _ -> Alcotest.fail "one EQUAL gate"

let test_structured_assign () =
  (* a.in := b abbreviates the FOR loop (section 4.2) *)
  let d =
    elab_ok
      "TYPE bo4 = ARRAY[1..4] OF boolean; t = COMPONENT (IN b: bo4; OUT z: \
       bo4) IS BEGIN z := b END; SIGNAL s: t;"
  in
  Alcotest.(check int) "4 drivers" 4 (List.length (Netlist.drivers (nl d)))

let test_width_mismatch () =
  check_error "width" Diag.Type_error
    "TYPE bo4 = ARRAY[1..4] OF boolean; bo3 = ARRAY[1..3] OF boolean; t = \
     COMPONENT (IN b: bo4; OUT z: bo3) IS BEGIN z := b END; SIGNAL s: t;"

(* ---- lazy instantiation (section 4.2) ---- *)

let test_lazy_unused_not_generated () =
  (* top/bottom are only generated if used: at n=2 the recursive network
     instantiates no sub-networks *)
  let d = elab_ok (Corpus.routing_network 2) in
  Alcotest.(check int) "instances at n=2" 2
    (List.length (Netlist.instances (nl d)))
  (* net + c[0] *)

let test_recursion_terminates () =
  let d = elab_ok (Corpus.routing_network 8) in
  (* 8-input butterfly: log2(8)=3 stages x 4 routers = 12 routers, plus
     the 1 + 2 + 4 = 7 network instances *)
  let routers =
    List.filter
      (fun (i : Netlist.instance) -> i.Netlist.itype = "router")
      (Netlist.instances (nl d))
  in
  Alcotest.(check int) "routers" 12 (List.length routers)

let test_unbounded_recursion_caught () =
  check_error "infinite recursion" Diag.Type_error
    "TYPE bad(n) = COMPONENT (IN a: boolean) IS SIGNAL s: bad(n); BEGIN \
     s.a := a END; SIGNAL x: bad(1);"

(* ---- connection statements (section 4.3) ---- *)

let test_connection_translation () =
  (* RAM(star,F) is equivalent to F := RAM.DA *)
  let d =
    elab_ok
      "TYPE inner = COMPONENT (IN a: boolean; OUT da: boolean) IS BEGIN da \
       := NOT a END; t = COMPONENT (IN x: boolean; OUT f: boolean) IS SIGNAL \
       r: inner; BEGIN r(x,f) END; SIGNAL s: t;"
  in
  (* drivers: r.a := x, f := r.da, da := NOT x *)
  Alcotest.(check int) "drivers" 3 (List.length (Netlist.drivers (nl d)))

let test_vector_connection () =
  (* x(s,t) over an array of components (section 4.3) *)
  let d =
    elab_ok
      "TYPE r = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := NOT \
       a END; bo10 = ARRAY[1..10] OF boolean; t = COMPONENT (IN s: bo10; OUT \
       u: bo10) IS SIGNAL x: ARRAY[1..10] OF r; BEGIN x(s,u) END; SIGNAL q: \
       t;"
  in
  let insts =
    List.filter
      (fun (i : Netlist.instance) -> i.Netlist.itype = "r")
      (Netlist.instances (nl d))
  in
  Alcotest.(check int) "10 instances" 10 (List.length insts);
  Alcotest.(check bool) "all connected" true
    (List.for_all (fun (i : Netlist.instance) -> i.Netlist.connected) insts)

let test_double_connection_rejected () =
  check_error "double connection" Diag.Assign_error
    "TYPE r = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := NOT a \
     END; t = COMPONENT (IN x: boolean; OUT y,z: boolean) IS SIGNAL c: r; \
     BEGIN c(x,y); c(x,z) END; SIGNAL s: t;"

let test_identical_connections_allowed () =
  (* "It is allowed to specify connections several times as long as they
     are identical" — the adjacent-cell pattern of the pattern matcher *)
  let d =
    elab_ok
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL h: \
       boolean; BEGIN h := x; h := x; y := NOT h END; SIGNAL s: t;"
  in
  (* the duplicate h := x collapses to one driver *)
  let drivers_to_h =
    List.filter
      (fun (dr : Netlist.driver) ->
        (Netlist.net (nl d) dr.Netlist.target).Netlist.name = "s.h")
      (Netlist.drivers (nl d))
  in
  Alcotest.(check int) "deduplicated" 1 (List.length drivers_to_h)

let test_wrong_arity_connection () =
  check_error "arity" Diag.Type_error
    "TYPE r = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := NOT a \
     END; t = COMPONENT (IN x: boolean) IS SIGNAL c: r; BEGIN c(x) END; \
     SIGNAL s: t;"

(* ---- star rules (section 4.1) ---- *)

let test_star_closes_port () =
  let d =
    elab_ok
      "TYPE r = COMPONENT (IN a: boolean; OUT b,c: boolean) IS BEGIN b := \
       NOT a; c := a END; t = COMPONENT (IN x: boolean; OUT y: boolean) IS \
       SIGNAL i: r; BEGIN i(x,y,*) END; SIGNAL s: t;"
  in
  let starred =
    Array.to_list (Netlist.nets_array (nl d))
    |> List.filter (fun (n : Netlist.net) -> n.Netlist.starred)
  in
  Alcotest.(check int) "one starred net" 1 (List.length starred)

let test_star_rhs_keeps_signal () =
  (* "* := x.b" keeps the signal available *)
  ignore
    (elab_ok
       "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS BEGIN * := x; \
        y := NOT x END; SIGNAL s: t;")

(* ---- function components ---- *)

let test_function_inline () =
  let d =
    elab_ok
      "TYPE f = COMPONENT (IN a: boolean) : boolean IS BEGIN RESULT NOT a \
       END; t = COMPONENT (IN x: boolean; OUT y: boolean) IS BEGIN y := \
       f(x) END; SIGNAL s: t;"
  in
  let calls =
    List.filter
      (fun (i : Netlist.instance) -> i.Netlist.is_function_call)
      (Netlist.instances (nl d))
  in
  Alcotest.(check int) "one inlined call" 1 (List.length calls)

let test_function_type_params () =
  (* plus[n](a,b)-style bracket parameters *)
  let d =
    elab_ok
      "TYPE ident(n) = COMPONENT (IN a: ARRAY[1..n] OF boolean) : \
       ARRAY[1..n] OF boolean IS BEGIN RESULT a END; t = COMPONENT (IN x: \
       ARRAY[1..3] OF boolean; OUT y: ARRAY[1..3] OF boolean) IS BEGIN y := \
       ident[3](x) END; SIGNAL s: t;"
  in
  ignore d

let test_function_not_signal () =
  check_error "function as signal" Diag.Type_error
    "TYPE f = COMPONENT (IN a: boolean) : boolean IS BEGIN RESULT a END; \
     SIGNAL s: f;"

let test_conditional_result () =
  (* a function whose RESULTs are all conditional is of type multiplex *)
  ignore
    (elab_ok
       "TYPE f = COMPONENT (IN a,b: boolean) : boolean IS BEGIN IF a THEN \
        RESULT b END END; t = COMPONENT (IN x,y: boolean; OUT z: boolean) \
        IS BEGIN z := f(x,y) END; SIGNAL s: t;")

(* ---- name resolution / scoping ---- *)

let test_undeclared () =
  check_error "undeclared signal" Diag.Type_error
    "TYPE t = COMPONENT (OUT y: boolean) IS BEGIN y := nosuch END; SIGNAL \
     s: t;";
  check_error "undeclared type" Diag.Type_error
    "SIGNAL s: nosuchtype;"

let test_uses_restricts () =
  check_error "uses filtering" Diag.Type_error
    "CONST k = 1; TYPE t = COMPONENT (OUT y: boolean) IS USES ; CONST m = \
     k; BEGIN y := 1 END; SIGNAL s: t;"

let test_uses_allows () =
  ignore
    (elab_ok
       "CONST k = 1; TYPE t = COMPONENT (OUT y: boolean) IS USES k; CONST m \
        = k; BEGIN WHEN m = 1 THEN y := 1 OTHERWISE y := 0 END END; SIGNAL \
        s: t;")

let test_with_scope () =
  let d =
    elab_ok
      "TYPE r = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := NOT \
       a END; t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL i: r; \
       BEGIN WITH i DO a := x; y := b END END; SIGNAL s: t;"
  in
  ignore d

let test_for_scoping () =
  (* the loop variable is fresh and only visible inside *)
  check_error "loop var leak" Diag.Type_error
    "TYPE bo4 = ARRAY[1..4] OF boolean; t = COMPONENT (IN a: bo4; OUT y: \
     bo4) IS BEGIN FOR i := 1 TO 4 DO y[i] := a[i] END; y[NUM(a)] := a[i] \
     END; SIGNAL s: t;"

(* ---- assignments to parameters (section 3.2) ---- *)

let test_assign_to_formal_in () =
  check_error "formal IN" Diag.Assign_error
    "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS BEGIN a := 1; y \
     := a END; SIGNAL s: t;"

let test_assign_to_instance_out () =
  check_error "instance OUT" Diag.Assign_error
    "TYPE r = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := NOT a \
     END; t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL i: r; \
     BEGIN i.a := x; i.b := x; y := i.b END; SIGNAL s: t;"

let test_unstructured_in_must_be_boolean () =
  check_error "IN multiplex" Diag.Type_error
    "TYPE t = COMPONENT (IN a: multiplex; OUT y: boolean) IS BEGIN y := a \
     END; SIGNAL s: t;"

let test_inout_must_be_multiplex () =
  check_error "INOUT boolean" Diag.Type_error
    "TYPE t = COMPONENT (a: boolean) IS BEGIN a := 1 END; SIGNAL s: t;"

(* ---- NUM dynamic indexing ---- *)

let test_num_read_write () =
  let d = elab_ok (Corpus.ram ~abits:2 ~wbits:1) in
  (* 4 words x 1 bit: 4 EQUAL gates for the write decoder + 4 for the
     read mux *)
  let eqs =
    List.filter
      (fun (g : Netlist.gate) -> g.Netlist.op = Netlist.Gequal)
      (Netlist.gates (nl d))
  in
  Alcotest.(check int) "decoder gates" 8 (List.length eqs);
  Alcotest.(check int) "regs" 4 (List.length (Netlist.regs (nl d)))

(* ---- virtual replacement (section 6.4) ---- *)

let chessboard n =
  Printf.sprintf
    "TYPE black = COMPONENT (IN t: boolean; OUT b: boolean) IS BEGIN b := \
     NOT t END;\n\
     white = COMPONENT (IN t: boolean; OUT b: boolean) IS BEGIN b := t END;\n\
     board = COMPONENT (IN x: boolean; OUT y: boolean) IS\n\
     SIGNAL m: ARRAY[1..%d,1..%d] OF virtual;\n\
     { FOR i = 1 TO %d DO FOR j = 1 TO %d DO WHEN odd(i+j) THEN m[i,j] = \
     black OTHERWISE m[i,j] = white END END END }\n\
     BEGIN\n\
     m[1,1].t := x;\n\
     FOR i := 1 TO %d DO FOR j := 1 TO %d DO WHEN (i+j) < %d THEN \
     m[i,j+1].t := m[i,j].b END END END;\n\
     y := m[%d,%d].b\n\
     END;\n\
     SIGNAL s: board;" n n n n 1 (n - 1) (1 + n) 1 n

let test_virtual_replacement () =
  let d = elab_ok (chessboard 4) in
  let blacks =
    List.filter
      (fun (i : Netlist.instance) -> i.Netlist.itype = "black")
      (Netlist.instances (nl d))
  in
  (* row 1: squares (1,2) and (1,4) used; (1,1),(1,3) are white *)
  Alcotest.(check bool) "black cells exist" true (List.length blacks >= 1)

let test_virtual_unreplaced () =
  check_error "unreplaced virtual" Diag.Type_error
    "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL v: \
     virtual; BEGIN y := v END; SIGNAL s: t;"

(* ---- resolve_path (testbench plumbing) ---- *)

let test_resolve_path () =
  let d = elab_ok (Corpus.adder_n 4) in
  (match Elaborate.resolve_path d "adder.s" with
  | Ok nets -> Alcotest.(check int) "adder.s width" 4 (List.length nets)
  | Error e -> Alcotest.fail e);
  (match Elaborate.resolve_path d "adder.s[2]" with
  | Ok [ _ ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "single bit");
  (match Elaborate.resolve_path d "adder.add[1].cout" with
  | Ok [ _ ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "local instance path");
  (match Elaborate.resolve_path d "adder.nosuch" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad path must fail");
  match Elaborate.resolve_path d "RSET" with
  | Ok [ _ ] -> ()
  | _ -> Alcotest.fail "RSET path"

let () =
  Alcotest.run "elaborate"
    [
      ( "shapes",
        [
          Alcotest.test_case "gate counts" `Quick test_gate_counts;
          Alcotest.test_case "bitwise gates" `Quick test_bitwise_gates;
          Alcotest.test_case "variadic" `Quick test_variadic_gates;
          Alcotest.test_case "EQUAL reduces" `Quick test_equal_reduces;
          Alcotest.test_case "structured assign" `Quick test_structured_assign;
          Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
        ] );
      ( "laziness",
        [
          Alcotest.test_case "unused not generated" `Quick
            test_lazy_unused_not_generated;
          Alcotest.test_case "recursion terminates" `Quick
            test_recursion_terminates;
          Alcotest.test_case "runaway recursion" `Quick
            test_unbounded_recursion_caught;
        ] );
      ( "connections",
        [
          Alcotest.test_case "translation" `Quick test_connection_translation;
          Alcotest.test_case "vector" `Quick test_vector_connection;
          Alcotest.test_case "double rejected" `Quick
            test_double_connection_rejected;
          Alcotest.test_case "identical allowed" `Quick
            test_identical_connections_allowed;
          Alcotest.test_case "wrong arity" `Quick test_wrong_arity_connection;
        ] );
      ( "star",
        [
          Alcotest.test_case "closes port" `Quick test_star_closes_port;
          Alcotest.test_case "rhs keeps signal" `Quick
            test_star_rhs_keeps_signal;
        ] );
      ( "functions",
        [
          Alcotest.test_case "inline" `Quick test_function_inline;
          Alcotest.test_case "type params" `Quick test_function_type_params;
          Alcotest.test_case "not a signal" `Quick test_function_not_signal;
          Alcotest.test_case "conditional result" `Quick
            test_conditional_result;
        ] );
      ( "scoping",
        [
          Alcotest.test_case "undeclared" `Quick test_undeclared;
          Alcotest.test_case "uses restricts" `Quick test_uses_restricts;
          Alcotest.test_case "uses allows" `Quick test_uses_allows;
          Alcotest.test_case "with" `Quick test_with_scope;
          Alcotest.test_case "for var" `Quick test_for_scoping;
        ] );
      ( "parameters",
        [
          Alcotest.test_case "formal IN" `Quick test_assign_to_formal_in;
          Alcotest.test_case "instance OUT" `Quick
            test_assign_to_instance_out;
          Alcotest.test_case "IN boolean rule" `Quick
            test_unstructured_in_must_be_boolean;
          Alcotest.test_case "INOUT multiplex rule" `Quick
            test_inout_must_be_multiplex;
        ] );
      ( "dynamic",
        [ Alcotest.test_case "NUM read/write" `Quick test_num_read_write ] );
      ( "virtual",
        [
          Alcotest.test_case "replacement" `Quick test_virtual_replacement;
          Alcotest.test_case "unreplaced" `Quick test_virtual_unreplaced;
        ] );
      ( "paths",
        [ Alcotest.test_case "resolve_path" `Quick test_resolve_path ] );
    ]
