(* The automatic placer and the wirelength estimator, plus the Wave
   viewer and the dead-net analysis. *)

open Zeus

let compile src =
  match Zeus.compile src with
  | Ok d -> d
  | Error diags -> Alcotest.failf "compile: %a" Fmt.(list Diag.pp) diags

(* ---- autoplace ---- *)

let test_autoplace_adder () =
  let d = compile (Corpus.adder_n 8) in
  match Autoplace.place d "adder" with
  | None -> Alcotest.fail "no placement"
  | Some plan ->
      (* every full adder is placed exactly once *)
      let fas =
        List.filter
          (fun (p : Floorplan.placement) -> p.Floorplan.type_name = "fulladder")
          plan.Floorplan.cells
      in
      Alcotest.(check int) "all fulladders placed" 8 (List.length fas);
      Alcotest.(check int) "no overlaps" 0
        (List.length (Floorplan.overlaps plan));
      (* the carry chain levelizes into increasing columns *)
      Alcotest.(check bool) "multiple levels" true (plan.Floorplan.width > 1)

let test_autoplace_levelizes_chain () =
  (* a chain of inverters through instances must occupy distinct
     columns in chain order *)
  let d =
    compile
      "TYPE inv = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := \
       NOT a END;\n\
       t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL c: \
       ARRAY[1..4] OF inv; BEGIN c[1].a := x; c[2].a := c[1].b; c[3].a := \
       c[2].b; c[4].a := c[3].b; y := c[4].b END;\n\
       SIGNAL s: t;"
  in
  match Autoplace.place d "s" with
  | None -> Alcotest.fail "no placement"
  | Some plan ->
      let col i =
        let p =
          List.find
            (fun (p : Floorplan.placement) ->
              p.Floorplan.path = Printf.sprintf "s.c[%d]" i)
            plan.Floorplan.cells
        in
        p.Floorplan.rect.Geom.x
      in
      Alcotest.(check bool) "chain order" true
        (col 1 < col 2 && col 2 < col 3 && col 3 < col 4)

let test_wirelength_comparable () =
  (* the wirelength estimator applies to both explicit and automatic
     plans, and neighbours-in-a-row beat a degenerate single column *)
  let d = compile (Corpus.adder_n 16) in
  let explicit =
    match Floorplan.of_design d "adder" with
    | Some p -> p
    | None -> Alcotest.fail "no explicit plan"
  in
  let auto =
    match Autoplace.place d "adder" with
    | Some p -> p
    | None -> Alcotest.fail "no auto plan"
  in
  let we = Autoplace.wirelength d explicit in
  let wa = Autoplace.wirelength d auto in
  Alcotest.(check bool) "explicit wirelength positive" true (we > 0);
  Alcotest.(check bool) "auto wirelength positive" true (wa > 0)

(* ---- wave viewer ---- *)

let test_wave_render () =
  let d = compile (Corpus_fsm.counter 4) in
  let sim = Sim.create d in
  let wave = Wave.create sim [ "c.en"; "c.value" ] in
  Sim.poke_bool sim "c.en" true;
  Sim.reset sim;
  for _ = 1 to 6 do
    Sim.step sim;
    Wave.sample wave
  done;
  let out = Wave.render wave in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | en :: value :: _ ->
      (* en is high throughout: six '#' columns *)
      Alcotest.(check bool) "en line has levels" true
        (String.length en >= 6
        && String.sub en (String.length en - 6) 6 = "######");
      (* counter values 0..5 as hex digits *)
      Alcotest.(check bool) "value line counts" true
        (String.length value >= 6
        && String.sub value (String.length value - 6) 6 = "012345")
  | _ -> Alcotest.fail "two lines expected");
  let vals = Wave.render_values wave in
  Alcotest.(check bool) "decoded values" true
    (String.length vals > 0)

let test_wave_undef_marks () =
  let d = compile (Corpus.adder_n 2) in
  let sim = Sim.create d in
  let wave = Wave.create sim [ "adder.cout" ] in
  Sim.step sim;
  (* nothing poked *)
  Wave.sample wave;
  let out = Wave.render wave in
  Alcotest.(check bool) "undef marked x" true (String.contains out 'x')

(* ---- dead nets ---- *)

let test_dead_nets_on_corpus () =
  let count src =
    let d = compile src in
    (Stats.of_netlist d.Elaborate.netlist).Stats.dead_nets
  in
  (* the adder uses everything it builds *)
  Alcotest.(check int) "adder4 has no dead logic" 0 (count Corpus.adder4);
  (* blackjack genuinely contains dead logic: the carry-out bit of the
     5-bit plus/minus function components is never consumed, and the
     accumulated not-taken guards of ELSIF chains without an ELSE go
     nowhere *)
  Alcotest.(check bool) "blackjack has the unused carries" true
    (count Corpus.blackjack > 0)

let test_dead_nets_detected () =
  (* u drives a NOT whose output goes nowhere *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL u: \
       boolean; BEGIN u := NOT x; * := u; y := x END;\nSIGNAL s: t;"
  in
  let s = Stats.of_netlist d.Elaborate.netlist in
  Alcotest.(check bool) "dead logic found" true (s.Stats.dead_nets > 0)

let () =
  Alcotest.run "autoplace"
    [
      ( "placement",
        [
          Alcotest.test_case "adder" `Quick test_autoplace_adder;
          Alcotest.test_case "levelizes" `Quick test_autoplace_levelizes_chain;
          Alcotest.test_case "wirelength" `Quick test_wirelength_comparable;
        ] );
      ( "wave",
        [
          Alcotest.test_case "render" `Quick test_wave_render;
          Alcotest.test_case "undef marks" `Quick test_wave_undef_marks;
        ] );
      ( "dead_nets",
        [
          Alcotest.test_case "corpus" `Quick test_dead_nets_on_corpus;
          Alcotest.test_case "detected" `Quick test_dead_nets_detected;
        ] );
    ]
