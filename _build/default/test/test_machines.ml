(* Differential tests for the larger machines the report's abstract lists
   ("AM2901, dictionary machines, systolic stacks"): the Zeus designs are
   simulated against pure-OCaml golden models on random workloads. *)

open Zeus

let logic = Alcotest.testable Logic.pp Logic.equal

let compile src =
  match Zeus.compile src with
  | Ok d -> d
  | Error diags -> Alcotest.failf "compile: %a" Fmt.(list Diag.pp) diags

(* ---- AM2901 ---- *)

type alu_io = {
  i : int;
  a : int;
  b : int;
  d : int;
  cin : bool;
}

let run_alu_zeus sim { i; a; b; d; cin } =
  Sim.poke_int sim "alu.i" i;
  Sim.poke_int sim "alu.a" a;
  Sim.poke_int sim "alu.b" b;
  Sim.poke_int sim "alu.d" d;
  Sim.poke_bool sim "alu.cin" cin;
  Sim.step sim;
  ( Sim.peek_int sim "alu.y",
    Sim.peek_bit sim "alu.cout",
    Sim.peek_bit sim "alu.fzero",
    Sim.peek_bit sim "alu.f3" )

(* the register file and Q start undefined: initialise them through the
   datapath (D -> B via ADD with DZ source, RAMF dest; Q via QREG) *)
let init_alu sim model =
  for reg = 0 to 15 do
    let io = { i = 0o703; a = 0; b = reg; d = 0; cin = false } in
    ignore (run_alu_zeus sim io);
    ignore (Refmodel.Am2901.step model ~i:io.i ~a:io.a ~b:io.b ~d:io.d ~cin:io.cin)
  done;
  let io = { i = 0o700; a = 0; b = 0; d = 0; cin = false } in
  ignore (run_alu_zeus sim io);
  ignore (Refmodel.Am2901.step model ~i:io.i ~a:io.a ~b:io.b ~d:io.d ~cin:io.cin)

let check_against_model sim model io =
  let zy, zc, zz, zs = run_alu_zeus sim io in
  let r =
    Refmodel.Am2901.step model ~i:io.i ~a:io.a ~b:io.b ~d:io.d ~cin:io.cin
  in
  let fn = (io.i lsr 3) land 7 in
  Alcotest.(check (option int))
    (Printf.sprintf "y (i=%03o a=%d b=%d d=%d)" io.i io.a io.b io.d)
    (Some r.Refmodel.Am2901.y) zy;
  (* carry-out is only specified for the arithmetic functions *)
  if fn <= 2 then
    Alcotest.check logic "cout" (Logic.of_bool r.Refmodel.Am2901.cout) zc;
  Alcotest.check logic "fzero" (Logic.of_bool r.Refmodel.Am2901.fzero) zz;
  Alcotest.check logic "f3" (Logic.of_bool r.Refmodel.Am2901.f3) zs

let test_am2901_directed () =
  let dsim = compile Corpus.am2901 in
  let sim = Sim.create dsim in
  let model = Refmodel.Am2901.create () in
  init_alu sim model;
  List.iter
    (check_against_model sim model)
    [
      (* load 5 into r1: D+0, dest RAMF, B=1, source DZ(7) *)
      { i = 0o703; a = 0; b = 1; d = 5; cin = false };
      (* load 9 into r2 *)
      { i = 0o703; a = 0; b = 2; d = 9; cin = false };
      (* add r1+r2 -> r3 : source AB(1) reads A=r1,B=... careful: AB is
         (A,B); use A=1 B=2, dest RAMF writes B *)
      { i = 0o103; a = 1; b = 2; d = 0; cin = false };
      (* subtract *)
      { i = 0o112; a = 1; b = 2; d = 0; cin = true };
      (* logic ops *)
      { i = 0o133; a = 1; b = 2; d = 0; cin = false };
      { i = 0o143; a = 1; b = 2; d = 0; cin = false };
      { i = 0o163; a = 1; b = 2; d = 0; cin = false };
      (* shifts *)
      { i = 0o104; a = 1; b = 2; d = 0; cin = false };
      { i = 0o106; a = 1; b = 2; d = 0; cin = false };
      (* Y = A with RAMA *)
      { i = 0o102; a = 1; b = 2; d = 0; cin = false };
      (* Q register *)
      { i = 0o700; a = 0; b = 0; d = 12; cin = false };
      { i = 0o001; a = 1; b = 0; d = 0; cin = false };
    ]

let prop_am2901_random =
  QCheck.Test.make ~count:10 ~name:"am2901_random_programs"
    QCheck.(
      list_of_size (Gen.int_range 5 40)
        (quad (int_bound 511) (int_bound 15) (pair (int_bound 15) (int_bound 15)) bool))
    (fun prog ->
      let dsim = compile Corpus.am2901 in
      let sim = Sim.create dsim in
      let model = Refmodel.Am2901.create () in
      init_alu sim model;
      List.for_all
        (fun (i, a, (b, d), cin) ->
          let io = { i; a; b; d; cin } in
          let zy, _, _, _ = run_alu_zeus sim io in
          let r =
            Refmodel.Am2901.step model ~i ~a ~b ~d ~cin
          in
          zy = Some r.Refmodel.Am2901.y)
        prog)

let test_am2901_no_runtime_errors () =
  let dsim = compile Corpus.am2901 in
  let sim = Sim.create dsim in
  let model = Refmodel.Am2901.create () in
  init_alu sim model;
  for k = 0 to 200 do
    let io =
      { i = (k * 37) land 511; a = k land 15; b = (k / 3) land 15;
        d = (k * 7) land 15; cin = k land 1 = 1 }
    in
    ignore (run_alu_zeus sim io)
  done;
  Alcotest.(check int) "no conflicts" 0 (List.length (Sim.runtime_errors sim))

(* ---- systolic stack ---- *)

let stack_ops =
  QCheck.Gen.(
    list_size (int_range 1 60)
      (oneof
         [ map (fun v -> `Push (v land 15)) (int_bound 15); return `Pop ]))

(* one operation followed by an idle cycle: register outputs show the
   previous cycle's stored value, so the idle cycle makes the new top
   observable (and exercises the hold path) *)
let run_stack_op sim op =
  (match op with
  | `Push v ->
      Sim.poke_bool sim "st.push" true;
      Sim.poke_bool sim "st.pop" false;
      Sim.poke_int sim "st.datain" v
  | `Pop ->
      Sim.poke_bool sim "st.push" false;
      Sim.poke_bool sim "st.pop" true);
  Sim.step sim;
  Sim.poke_bool sim "st.push" false;
  Sim.poke_bool sim "st.pop" false;
  Sim.step sim;
  Sim.peek_int sim "st.top"

let test_stack_directed () =
  let d = compile (Corpus.stack ~depth:8 ~width:4) in
  let sim = Sim.create d in
  Sim.poke_bool sim "st.push" false;
  Sim.poke_bool sim "st.pop" false;
  Sim.poke_int sim "st.datain" 0;
  Sim.reset sim;
  Sim.step sim;
  (* registers hold 0 after the reset cycle *)
  Alcotest.(check (option int)) "empty top" (Some 0)
    (Sim.peek_int sim "st.top");
  ignore (run_stack_op sim (`Push 3));
  Alcotest.(check (option int)) "top 3" (Some 3) (Sim.peek_int sim "st.top");
  ignore (run_stack_op sim (`Push 7));
  Alcotest.(check (option int)) "top 7" (Some 7) (Sim.peek_int sim "st.top");
  ignore (run_stack_op sim `Pop);
  Alcotest.(check (option int)) "back to 3" (Some 3)
    (Sim.peek_int sim "st.top");
  ignore (run_stack_op sim `Pop);
  Alcotest.(check (option int)) "empty again" (Some 0)
    (Sim.peek_int sim "st.top");
  Alcotest.(check int) "no conflicts" 0 (List.length (Sim.runtime_errors sim))

let prop_stack_vs_model =
  QCheck.Test.make ~count:30 ~name:"stack_random_vs_model"
    (QCheck.make
       ~print:(fun ops ->
         String.concat ";"
           (List.map
              (function `Push v -> Printf.sprintf "push %d" v | `Pop -> "pop")
              ops))
       stack_ops)
    (fun ops ->
      let depth = 8 in
      let d = compile (Corpus.stack ~depth ~width:4) in
      let sim = Sim.create d in
      Sim.poke_bool sim "st.push" false;
      Sim.poke_bool sim "st.pop" false;
      Sim.poke_int sim "st.datain" 0;
      Sim.reset sim;
      let model = Refmodel.Stack.create ~depth in
      List.for_all
        (fun op ->
          let top = run_stack_op sim op in
          (match op with
          | `Push v -> Refmodel.Stack.push model v
          | `Pop -> Refmodel.Stack.pop model);
          top = Some (Refmodel.Stack.top model))
        ops)

let test_stack_idle_holds () =
  let d = compile (Corpus.stack ~depth:4 ~width:4) in
  let sim = Sim.create d in
  Sim.poke_bool sim "st.push" false;
  Sim.poke_bool sim "st.pop" false;
  Sim.poke_int sim "st.datain" 0;
  Sim.reset sim;
  ignore (run_stack_op sim (`Push 9));
  Sim.poke_bool sim "st.push" false;
  Sim.step_n sim 5;
  Alcotest.(check (option int)) "held across idle cycles" (Some 9)
    (Sim.peek_int sim "st.top")

(* ---- dictionary machine ---- *)

let dict_design = Corpus.dictionary ~slots:8 ~keybits:6

let dict_io sim ~ins ~del ~slot ~data ~query =
  Sim.poke_bool sim "dict.ins" ins;
  Sim.poke_bool sim "dict.del" del;
  Sim.poke_int sim "dict.slot" slot;
  Sim.poke_int sim "dict.data" data;
  Sim.poke_int sim "dict.query" query;
  Sim.step sim

let test_dictionary_directed () =
  let d = compile dict_design in
  let sim = Sim.create d in
  dict_io sim ~ins:false ~del:false ~slot:0 ~data:0 ~query:0;
  Sim.reset sim;
  (* insert 42 at slot 3, 17 at slot 5 *)
  dict_io sim ~ins:true ~del:false ~slot:3 ~data:42 ~query:0;
  dict_io sim ~ins:true ~del:false ~slot:5 ~data:17 ~query:0;
  (* membership *)
  dict_io sim ~ins:false ~del:false ~slot:0 ~data:0 ~query:42;
  Alcotest.check logic "42 present" Logic.One (Sim.peek_bit sim "dict.member");
  dict_io sim ~ins:false ~del:false ~slot:0 ~data:0 ~query:17;
  Alcotest.check logic "17 present" Logic.One (Sim.peek_bit sim "dict.member");
  dict_io sim ~ins:false ~del:false ~slot:0 ~data:0 ~query:9;
  Alcotest.check logic "9 absent" Logic.Zero (Sim.peek_bit sim "dict.member");
  (* delete slot 3 *)
  dict_io sim ~ins:false ~del:true ~slot:3 ~data:0 ~query:0;
  dict_io sim ~ins:false ~del:false ~slot:0 ~data:0 ~query:42;
  Alcotest.check logic "42 deleted" Logic.Zero (Sim.peek_bit sim "dict.member");
  Alcotest.(check int) "no conflicts" 0 (List.length (Sim.runtime_errors sim))

let prop_dictionary_vs_model =
  QCheck.Test.make ~count:20 ~name:"dictionary_random_vs_model"
    QCheck.(
      list_of_size (Gen.int_range 1 40)
        (triple (int_bound 2) (int_bound 7) (int_bound 63)))
    (fun ops ->
      let d = compile dict_design in
      let sim = Sim.create d in
      dict_io sim ~ins:false ~del:false ~slot:0 ~data:0 ~query:0;
      Sim.reset sim;
      let model = Refmodel.Dictionary.create ~slots:8 in
      List.for_all
        (fun (kind, slot, key) ->
          match kind with
          | 0 ->
              dict_io sim ~ins:true ~del:false ~slot ~data:key ~query:0;
              Refmodel.Dictionary.insert model ~slot ~key;
              true
          | 1 ->
              dict_io sim ~ins:false ~del:true ~slot ~data:0 ~query:0;
              Refmodel.Dictionary.delete model ~slot;
              true
          | _ ->
              dict_io sim ~ins:false ~del:false ~slot:0 ~data:0 ~query:key;
              Logic.equal
                (Sim.peek_bit sim "dict.member")
                (Logic.of_bool (Refmodel.Dictionary.member model key)))
        ops)

(* ---- systolic priority queue ---- *)

let pq_design = Corpus.priority_queue ~slots:8 ~width:4

let pq_setup () =
  let d = compile pq_design in
  let sim = Sim.create d in
  Sim.poke_bool sim "pq.ins" false;
  Sim.poke_bool sim "pq.ext" false;
  Sim.poke_int sim "pq.din" 0;
  sim

let pq_op sim op =
  (match op with
  | `Insert v ->
      Sim.poke_bool sim "pq.ins" true;
      Sim.poke_bool sim "pq.ext" false;
      Sim.poke_int sim "pq.din" v
  | `Extract ->
      Sim.poke_bool sim "pq.ins" false;
      Sim.poke_bool sim "pq.ext" true);
  Sim.step sim;
  Sim.poke_bool sim "pq.ins" false;
  Sim.poke_bool sim "pq.ext" false;
  Sim.step sim;
  (* idle cycle so the registers are observable *)
  Sim.peek_int sim "pq.minout"

let test_pqueue_directed () =
  let sim = pq_setup () in
  (* empty cells power up at the all-ones maximum via REG(1) — no reset *)
  Sim.step sim;
  Alcotest.(check (option int)) "empty min" (Some 15)
    (Sim.peek_int sim "pq.minout");
  Alcotest.(check (option int)) "insert 9" (Some 9) (pq_op sim (`Insert 9));
  Alcotest.(check (option int)) "insert 3" (Some 3) (pq_op sim (`Insert 3));
  Alcotest.(check (option int)) "insert 11 keeps 3" (Some 3)
    (pq_op sim (`Insert 11));
  Alcotest.(check (option int)) "extract -> 9" (Some 9) (pq_op sim `Extract);
  Alcotest.(check (option int)) "extract -> 11" (Some 11) (pq_op sim `Extract);
  Alcotest.(check (option int)) "extract -> empty" (Some 15)
    (pq_op sim `Extract);
  Alcotest.(check int) "no conflicts" 0 (List.length (Sim.runtime_errors sim))

let prop_pqueue_vs_model =
  QCheck.Test.make ~count:25 ~name:"pqueue_random_vs_model"
    QCheck.(
      list_of_size (Gen.int_range 1 40)
        (oneof [ map (fun v -> `Insert (v land 14)) (int_bound 14);
                 always `Extract ]))
    (fun ops ->
      let sim = pq_setup () in
      let model = Refmodel.Pqueue.create ~slots:8 ~width:4 in
      List.for_all
        (fun op ->
          let got = pq_op sim op in
          (match op with
          | `Insert v -> Refmodel.Pqueue.insert model v
          | `Extract -> Refmodel.Pqueue.extract model);
          got = Some (Refmodel.Pqueue.min model))
        ops)

(* ---- odd-even transposition sorter ---- *)

let sort_with_hardware values w =
  let n = List.length values in
  let d = compile (Corpus.sorter ~n ~w) in
  let sim = Sim.create d in
  Sim.poke_bool sim "srt.load" false;
  List.iteri (fun i _ -> Sim.poke_int sim (Printf.sprintf "srt.din[%d]" (i + 1)) 0) values;
  Sim.reset sim;
  (* load the input vector *)
  List.iteri
    (fun i v -> Sim.poke_int sim (Printf.sprintf "srt.din[%d]" (i + 1)) v)
    values;
  Sim.poke_bool sim "srt.load" true;
  Sim.step sim;
  Sim.poke_bool sim "srt.load" false;
  (* n phases suffice for odd-even transposition sort *)
  Sim.step_n sim (n + 1);
  let out =
    List.init n (fun i ->
        Sim.peek_int sim (Printf.sprintf "srt.dout[%d]" (i + 1)))
  in
  (out, Sim.runtime_errors sim)

let test_sorter_directed () =
  let out, errors = sort_with_hardware [ 7; 3; 15; 0; 9; 9; 1; 4 ] 4 in
  Alcotest.(check (list (option int)))
    "sorted"
    (List.map Option.some [ 0; 1; 3; 4; 7; 9; 9; 15 ])
    out;
  Alcotest.(check int) "no double drives (disjoint parity guards)" 0
    (List.length errors)

let prop_sorter_random =
  QCheck.Test.make ~count:25 ~name:"sorter_random_vs_list_sort"
    QCheck.(list_of_size (Gen.int_range 2 10) (int_bound 15))
    (fun values ->
      let out, errors = sort_with_hardware values 4 in
      errors = []
      && out = List.map Option.some (List.sort compare values))

let () =
  Alcotest.run "machines"
    [
      ( "am2901",
        [
          Alcotest.test_case "directed" `Quick test_am2901_directed;
          QCheck_alcotest.to_alcotest prop_am2901_random;
          Alcotest.test_case "no runtime errors" `Quick
            test_am2901_no_runtime_errors;
        ] );
      ( "systolic_stack",
        [
          Alcotest.test_case "directed" `Quick test_stack_directed;
          QCheck_alcotest.to_alcotest prop_stack_vs_model;
          Alcotest.test_case "idle holds" `Quick test_stack_idle_holds;
        ] );
      ( "dictionary",
        [
          Alcotest.test_case "directed" `Quick test_dictionary_directed;
          QCheck_alcotest.to_alcotest prop_dictionary_vs_model;
        ] );
      ( "priority_queue",
        [
          Alcotest.test_case "directed" `Quick test_pqueue_directed;
          QCheck_alcotest.to_alcotest prop_pqueue_vs_model;
        ] );
      ( "sorter",
        [
          Alcotest.test_case "directed" `Quick test_sorter_directed;
          QCheck_alcotest.to_alcotest prop_sorter_random;
        ] );
    ]
