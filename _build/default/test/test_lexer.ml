(* Lexer: the vocabulary of report section 2. *)

open Zeus

let toks src =
  let arr = Lexer.tokenize src in
  Array.to_list arr |> List.map (fun t -> t.Token.tok)
  |> List.filter (fun t -> t <> Token.Eof)

let tok_strings src = List.map Token.to_string (toks src)

let check_toks name src expected =
  Alcotest.(check (list string)) name expected (tok_strings src)

let test_symbols () =
  check_toks "all symbols" "+ - ( ) [ ] . , ; : < <= > >= := == .. * <> = { }"
    [ "+"; "-"; "("; ")"; "["; "]"; "."; ","; ";"; ":"; "<"; "<="; ">";
      ">="; ":="; "=="; ".."; "*"; "<>"; "="; "{"; "}" ]

let test_tight_symbols () =
  (* the lexer must split maximal munches correctly *)
  check_toks "a[1..2]" "a[1..2]" [ "a"; "["; "1"; ".."; "2"; "]" ];
  check_toks "x:=y" "x:=y" [ "x"; ":="; "y" ];
  check_toks "x==y" "x==y" [ "x"; "=="; "y" ];
  check_toks "x=y" "x=y" [ "x"; "="; "y" ];
  check_toks "a<>b" "a<>b" [ "a"; "<>"; "b" ];
  check_toks "a<=b" "a<=b" [ "a"; "<="; "b" ];
  check_toks "a.b" "a.b" [ "a"; "."; "b" ]

let test_keywords () =
  List.iter
    (fun (s, _) ->
      match toks s with
      | [ Token.Keyword k ] ->
          Alcotest.(check string) s s (Token.keyword_to_string k)
      | _ -> Alcotest.failf "keyword %s did not lex as keyword" s)
    Token.keyword_table

let test_keywords_case_sensitive () =
  (* lower-case spellings are plain identifiers *)
  match toks "begin end array" with
  | [ Token.Ident "begin"; Token.Ident "end"; Token.Ident "array" ] -> ()
  | _ -> Alcotest.fail "lower-case words must be identifiers"

let test_idents () =
  match toks "halfAdder x1 a2b" with
  | [ Token.Ident "halfAdder"; Token.Ident "x1"; Token.Ident "a2b" ] -> ()
  | _ -> Alcotest.fail "identifier lexing"

let test_numbers () =
  (match toks "0 1 42 007" with
  | [ Token.Number 0; Token.Number 1; Token.Number 42; Token.Number 7 ] -> ()
  | _ -> Alcotest.fail "decimal numbers");
  (* octal with B/b suffix (Modula-2 style) *)
  (match toks "17B 17b 10B" with
  | [ Token.Number 15; Token.Number 15; Token.Number 8 ] -> ()
  | _ -> Alcotest.fail "octal numbers");
  (* digit 8 in an octal literal is an error *)
  let bag = Diag.Bag.create () in
  ignore (Lexer.tokenize ~bag "18B");
  Alcotest.(check bool) "octal error" true (Diag.Bag.has_errors bag)

let test_comments () =
  check_toks "simple comment" "a <* hello *> b" [ "a"; "b" ];
  check_toks "nested comment" "a <* x <* y *> z *> b" [ "a"; "b" ];
  check_toks "comment with symbols" "a <* := == .. <> *> b" [ "a"; "b" ];
  let bag = Diag.Bag.create () in
  ignore (Lexer.tokenize ~bag "a <* unterminated");
  Alcotest.(check bool) "unterminated comment" true (Diag.Bag.has_errors bag)

let test_illegal_char () =
  let bag = Diag.Bag.create () in
  let ts = Lexer.tokenize ~bag "a ? b" in
  Alcotest.(check bool) "illegal char error" true (Diag.Bag.has_errors bag);
  (* lexing continues past the bad character *)
  Alcotest.(check int) "tokens survive" 3 (Array.length ts)

let test_positions () =
  let arr = Lexer.tokenize "ab\n  cd" in
  let second = arr.(1) in
  Alcotest.(check int) "line" 2 second.Token.loc.Loc.start.Loc.line;
  Alcotest.(check int) "col" 3 second.Token.loc.Loc.start.Loc.col

let test_eof () =
  let arr = Lexer.tokenize "" in
  Alcotest.(check int) "only eof" 1 (Array.length arr);
  Alcotest.(check bool) "eof token" true (arr.(0).Token.tok = Token.Eof)

(* property: lexing the printed form of a token stream gives the same
   stream back (token-level round trip) *)
let prop_roundtrip =
  let gen_token =
    QCheck.Gen.(
      oneof
        [
          map (fun k -> Token.Keyword k)
            (oneofl (List.map snd Token.keyword_table));
          map (fun n -> Token.Number (abs n mod 100000)) int;
          map
            (fun (c, s) ->
              Token.Ident
                (String.make 1 (Char.chr (Char.code 'a' + (abs c mod 26)))
                ^ String.concat ""
                    (List.map
                       (fun i ->
                         String.make 1
                           (Char.chr (Char.code 'a' + (abs i mod 26))))
                       s)))
            (pair int (list_size (int_range 0 6) int));
          oneofl
            [
              Token.Plus; Token.Minus; Token.Lparen; Token.Rparen;
              Token.Lbracket; Token.Rbracket; Token.Lbrace; Token.Rbrace;
              Token.Comma; Token.Semi; Token.Colon; Token.Lt; Token.Le;
              Token.Gt; Token.Ge; Token.Eq; Token.Neq; Token.Assign;
              Token.Alias; Token.Star; Token.Dotdot;
            ];
        ])
  in
  QCheck.Test.make ~count:300 ~name:"token_roundtrip"
    (QCheck.make
       ~print:(fun ts -> String.concat " " (List.map Token.to_string ts))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 0 30) gen_token))
    (fun ts ->
      (* identifiers that happen to spell a keyword lex back as keywords;
         skip those cases *)
      let safe =
        List.for_all
          (function
            | Token.Ident s -> Token.keyword_of_string s = None
            | _ -> true)
          ts
      in
      QCheck.assume safe;
      let printed = String.concat " " (List.map Token.to_string ts) in
      toks printed = ts)

let () =
  Alcotest.run "lexer"
    [
      ( "lexer",
        [
          Alcotest.test_case "symbols" `Quick test_symbols;
          Alcotest.test_case "tight symbols" `Quick test_tight_symbols;
          Alcotest.test_case "keywords" `Quick test_keywords;
          Alcotest.test_case "case sensitivity" `Quick test_keywords_case_sensitive;
          Alcotest.test_case "identifiers" `Quick test_idents;
          Alcotest.test_case "numbers" `Quick test_numbers;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "illegal chars" `Quick test_illegal_char;
          Alcotest.test_case "positions" `Quick test_positions;
          Alcotest.test_case "eof" `Quick test_eof;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
