(* zeusc: command-line driver for the Zeus implementation.

     zeusc check FILE.zeus        parse + elaborate + static checks
     zeusc pp FILE.zeus           parse and pretty-print back to Zeus
     zeusc stats FILE.zeus        netlist statistics after elaboration
     zeusc sim FILE.zeus -n 10    simulate N cycles (optionally with pokes)
     zeusc layout FILE.zeus -t T  ASCII floorplan of top-level signal T
     zeusc dot FILE.zeus          semantics graph in Graphviz format
     zeusc corpus NAME            print a built-in example program
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  let src =
    match path with
    | "-" -> In_channel.input_all stdin
    | p -> read_file p
  in
  src

let report_diags diags =
  List.iter (fun d -> Fmt.epr "%a@." Zeus.Diag.pp d) diags

(* every subcommand with --suppress validates against the one Z-code
   registry the same way: unknown codes are a usage error (exit 2) *)
let validate_suppress ~cmd suppress =
  match Zeus.Diag.Code.unknown suppress with
  | [] -> ()
  | unknown ->
      Fmt.epr "%s: unknown diagnostic code%s %s for --suppress; valid codes: %s@."
        cmd
        (if List.length unknown > 1 then "s" else "")
        (String.concat ", " unknown)
        (Zeus.Diag.Code.valid_codes_message ());
      exit 2

let drop_suppressed suppress diags =
  List.filter
    (fun (d : Zeus.Diag.t) ->
      match d.Zeus.Diag.code with
      | Some c -> not (List.mem c suppress)
      | None -> true)
    diags

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Zeus source file ('-' for stdin).")

(* ------------------------------------------------------------------ *)

let default_cache_dir () =
  Filename.concat (Filename.get_temp_dir_name ()) "zeus-summary-cache"

let check_cmd =
  let modular =
    Arg.(
      value & flag
      & info [ "modular" ]
          ~doc:
            "Run the modular component-summary analysis instead of full \
             elaboration: per-type port contracts, symbolic drive-conflict \
             and combinational-cycle proofs for all parameter values \
             (Z4xx codes).")
  in
  let contracts =
    Arg.(
      value & flag
      & info [ "contracts" ]
          ~doc:"With $(b,--modular): print every computed port contract.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Directory of the persistent summary cache (default: \
             zeus-summary-cache under the system temp directory).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Disable the persistent summary cache.")
  in
  let run file modular contracts cache_dir no_cache =
    let src = load file in
    if modular then begin
      match Zeus.Parser.program src with
      | None, bag ->
          report_diags (Zeus.Diag.Bag.all bag);
          1
      | Some prog, _ ->
          let cache_dir =
            if no_cache then None
            else Some (Option.value cache_dir ~default:(default_cache_dir ()))
          in
          let r = Zeus.Summary.analyze ?cache_dir ~src prog in
          if contracts then
            List.iter
              (fun (_, c) -> Fmt.pr "%a@." Zeus.Contract.pp c)
              r.Zeus.Summary.contracts;
          List.iter
            (fun (name, c) ->
              Fmt.pr "type %-20s (%s): conflict-%s, %s@." name
                (if c.Zeus.Contract.c_params = "" then "-"
                 else c.Zeus.Contract.c_params)
                (if c.Zeus.Contract.c_conflict_safe then "safe" else "unproven")
                (if c.Zeus.Contract.c_cycle_free then "cycle-free"
                 else "cycles-unproven"))
            r.Zeus.Summary.contracts;
          List.iter
            (fun (t, reason) -> Fmt.pr "fallback %s: %s@." t reason)
            r.Zeus.Summary.fallbacks;
          report_diags r.Zeus.Summary.findings;
          Fmt.pr "%s@." (Zeus.Summary.summary_line r);
          if
            List.exists
              (fun (d : Zeus.Diag.t) ->
                d.Zeus.Diag.severity = Zeus.Diag.Error)
              r.Zeus.Summary.findings
          then 1
          else 0
    end
    else
      match Zeus.compile src with
      | Ok design ->
          Fmt.pr "OK: %s@." (Zeus.Netlist.stats design.Zeus.Elaborate.netlist);
          let warnings =
            List.filter
              (fun (d : Zeus.Diag.t) ->
                d.Zeus.Diag.severity = Zeus.Diag.Warning)
              (Zeus.Diag.Bag.all design.Zeus.Elaborate.diags)
          in
          report_diags warnings;
          0
      | Error diags ->
          report_diags diags;
          1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse, elaborate and statically check a program.")
    Term.(const run $ file_arg $ modular $ contracts $ cache_dir $ no_cache)

let pp_cmd =
  let run file =
    match Zeus.Parser.program (load file) with
    | Some prog, _ ->
        print_endline (Zeus.Pretty.program_to_string prog);
        0
    | None, bag ->
        report_diags (Zeus.Diag.Bag.all bag);
        1
  in
  Cmd.v
    (Cmd.info "pp" ~doc:"Parse and pretty-print back to Zeus concrete syntax.")
    Term.(const run $ file_arg)

let stats_cmd =
  let run file =
    match Zeus.compile (load file) with
    | Ok design ->
        let nl = design.Zeus.Elaborate.netlist in
        Fmt.pr "%a" Zeus.Stats.pp (Zeus.Stats.of_netlist nl);
        List.iter
          (fun (i : Zeus.Netlist.instance) ->
            if not i.Zeus.Netlist.is_function_call then
              Fmt.pr "  instance %-30s : %s@." i.Zeus.Netlist.ipath
                i.Zeus.Netlist.itype)
          (Zeus.Netlist.instances nl);
        0
    | Error diags ->
        report_diags diags;
        1
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Netlist statistics after elaboration.")
    Term.(const run $ file_arg)

let poke_conv : (string * int) Arg.conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i ->
        let path = String.sub s 0 i in
        let v = String.sub s (i + 1) (String.length s - i - 1) in
        (try Ok (path, int_of_string v)
         with _ -> Error (`Msg "poke value must be an integer"))
    | None -> Error (`Msg "poke must look like path=value")
  in
  Arg.conv (parse, fun ppf (p, v) -> Fmt.pf ppf "%s=%d" p v)

(* The --batch stimulus file: a [run [seed=N] [cycles=N]] header starts
   each independent run, every following line is one cycle of
   space-separated path=value pokes ('-' for a cycle with no new pokes;
   '#' comments and blank lines are skipped).  A run's cycle count is
   the explicit [cycles=N] if given, else its number of stimulus lines.
   Values follow the -p convention: 0/1 poke a single bit, anything
   larger pokes BIN(value, width) MSB-first.  Raises [Failure] with a
   line-numbered message on a malformed file. *)
let parse_batch_file design ~watch src =
  let bit v = if v = 1 then Zeus.Logic.One else Zeus.Logic.Zero in
  let runs = ref [] and cur = ref None and lineno = ref 0 in
  let fail fmt = Printf.ksprintf (fun m ->
      failwith (Printf.sprintf "line %d: %s" !lineno m)) fmt in
  let flush () =
    match !cur with
    | None -> ()
    | Some (seed, cycles, rev_stim) ->
        let stim = Array.of_list (List.rev rev_stim) in
        let cyc = Option.value cycles ~default:(Array.length stim) in
        runs :=
          { Zeus.Sim.br_stim = stim; br_cycles = cyc; br_seed = seed;
            br_watch = watch }
          :: !runs;
        cur := None
  in
  let toks line =
    List.filter (fun t -> t <> "") (String.split_on_char ' ' line)
  in
  let split_kv tok =
    match String.index_opt tok '=' with
    | None -> fail "expected key=value, got %S" tok
    | Some i ->
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
  in
  List.iter
    (fun raw ->
      incr lineno;
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else
        match toks line with
        | "run" :: opts ->
            flush ();
            let seed = ref None and cycles = ref None in
            List.iter
              (fun tok ->
                match split_kv tok with
                | "seed", v -> (
                    match int_of_string_opt v with
                    | Some n -> seed := Some n
                    | None -> fail "seed must be an integer, got %S" v)
                | "cycles", v -> (
                    match int_of_string_opt v with
                    | Some n when n >= 0 -> cycles := Some n
                    | _ -> fail "cycles must be a non-negative integer")
                | k, _ -> fail "unknown run option %S" k)
              opts;
            cur := Some (!seed, !cycles, [])
        | _ -> (
            match !cur with
            | None -> fail "stimulus line before any 'run' header"
            | Some (seed, cycles, stim) ->
                let pokes =
                  if line = "-" then []
                  else
                    List.map
                      (fun tok ->
                        let path, v = split_kv tok in
                        match int_of_string_opt v with
                        | None -> fail "poke value must be an integer, got %S" v
                        | Some v when v <= 1 -> (path, [ bit v ])
                        | Some v -> (
                            match Zeus.Elaborate.resolve_path design path with
                            | Error e -> fail "%s" e
                            | Ok nets ->
                                ( path,
                                  Zeus.Cval.sctree_leaves
                                    (Zeus.Cval.bin v (List.length nets)) )))
                      (toks line)
                in
                cur := Some (seed, cycles, pokes :: stim)))
    (String.split_on_char '\n' src);
  flush ();
  List.rev !runs

let sim_cmd =
  let cycles =
    Arg.(value & opt int 4 & info [ "n"; "cycles" ] ~doc:"Cycles to simulate.")
  in
  let pokes =
    Arg.(
      value
      & opt_all poke_conv []
      & info [ "p"; "poke" ] ~doc:"Input poke, e.g. -p adder.a=5 (MSB-first).")
  in
  let peeks =
    Arg.(
      value
      & opt_all string []
      & info [ "w"; "watch" ] ~doc:"Signal path to print each cycle.")
  in
  let do_reset =
    Arg.(value & flag & info [ "reset" ] ~doc:"Pulse RSET for one cycle first.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the firing order of the last cycle.")
  in
  let wave =
    Arg.(
      value & flag
      & info [ "wave" ] ~doc:"Render the watched signals as an ASCII waveform.")
  in
  let explain =
    Arg.(
      value
      & opt_all string []
      & info [ "explain" ]
          ~doc:"After the run, explain how this signal got its value.")
  in
  let activity =
    Arg.(
      value & flag
      & info [ "activity" ]
          ~doc:"Report the nets with the most switching activity.")
  in
  let vcd_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE"
          ~doc:"Dump the watched signals as a VCD waveform to FILE.")
  in
  let engine =
    let engines =
      List.map (fun e -> (Zeus.Sim.engine_name e, e)) Zeus.Sim.all_engines
    in
    Arg.(
      value
      & opt (enum engines) Zeus.Sim.Incremental
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Scheduling engine: $(b,firing), $(b,firing-strict), \
             $(b,fixpoint), $(b,relaxation), $(b,incremental) \
             (default), $(b,parallel-level) or $(b,compiled).  All \
             engines compute identical values.  With $(b,--batch) this \
             picks the per-run template; $(b,compiled) additionally \
             packs runs $(b,--lanes) at a time.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Domains for $(b,--engine parallel-level) chunking and for \
             $(b,--batch) run sharding (default: the recommended domain \
             count).  Results are bit-identical at any value; only the \
             work distribution changes.")
  in
  let batch_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "batch" ] ~docv:"FILE"
          ~doc:
            "Batch throughput mode: read a stimulus file describing many \
             independent runs — a $(b,run [seed=N] [cycles=N]) header per \
             run, then one line of space-separated $(i,path=value) pokes \
             per cycle ($(b,-) for a cycle with no new pokes, $(b,#) for \
             comments) — and shard whole runs across $(b,--jobs) domains \
             with no cross-run barriers.  Prints each run's watched \
             signals after its final cycle and its runtime errors; the \
             per-cycle options (watch printing, waves, VCD, trace, \
             explain, activity) do not apply.")
  in
  let lanes =
    Arg.(
      value
      & opt int 8
      & info [ "lanes" ] ~docv:"K"
          ~doc:
            "With $(b,--batch --engine compiled): how many equal-length \
             runs one bytecode pass evaluates at once (default 8).  \
             Results are bit-identical at any value.")
  in
  let grain =
    Arg.(
      value
      & opt int 64
      & info [ "grain" ] ~docv:"N"
          ~doc:
            "Minimum dirty-level width the parallel engine fans out to \
             the domain pool; narrower levels run on the calling domain.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "After the run, print the work breakdown: total node visits, \
             for the parallel-level engine the per-level fan-out, barrier \
             and per-domain visit counters, for the compiled engine \
             the program size, vector coverage and one-time compile \
             time, and for $(b,--batch) the run/job/lane counters (all \
             but the compile time deterministic).")
  in
  let optimize =
    Arg.(
      value & flag
      & info [ "optimize" ]
          ~doc:
            "Run the proof-carrying reduction ($(b,zeusc opt)) before \
             simulating: constant and unobservable logic is dropped; \
             observable values are unchanged on any engine.")
  in
  let discharge =
    Arg.(
      value & flag
      & info [ "discharge" ]
          ~doc:
            "Run the static conflict provers ($(b,zeusc lint) + \
             $(b,zeusc prove)) first and compile the runtime \
             drive-conflict checks of proved-safe nets away \
             ($(b,--engine compiled) only; other engines are \
             unaffected).  Values never change — the proofs assume \
             inputs are poked to defined values, so only the Z101 \
             reporting is elided.")
  in
  let run_batch_mode design ~engine ~jobs ~lanes ~optimize ~discharged ~stats
      ~watch bf =
    match
      try Ok (parse_batch_file design ~watch (load bf))
      with Failure m -> Error m
    with
    | Error m ->
        Fmt.epr "batch file %s: %s@." bf m;
        1
    | Ok [] ->
        Fmt.epr "batch file %s: no runs@." bf;
        1
    | Ok runs ->
        let tmpl = Zeus.Sim.create ~engine ~jobs:1 ~optimize ?discharged design in
        let results, st = Zeus.Sim.run_batch ?jobs ~lanes tmpl runs in
        List.iteri
          (fun i (res : Zeus.Sim.batch_result) ->
            Fmt.pr "run %d:" i;
            List.iter
              (fun (p, bits) ->
                Fmt.pr " %s=%a" p
                  Fmt.(list ~sep:nop Zeus.Logic.pp)
                  bits)
              res.Zeus.Sim.bres_watched;
            Fmt.pr "@.";
            List.iter
              (fun (e : Zeus.Sim.runtime_error) ->
                Fmt.pr "runtime error (run %d, cycle %d) [%s] %s: %s@." i
                  e.Zeus.Sim.err_cycle e.Zeus.Sim.err_code e.Zeus.Sim.err_net
                  e.Zeus.Sim.err_message)
              res.Zeus.Sim.bres_errors)
          results;
        if stats then
          Fmt.pr
            "batch: runs=%d jobs=%d lanes=%d lane-groups=%d lane-runs=%d \
             serial-runs=%d cycles=%d@."
            st.Zeus.Sim.bs_runs st.Zeus.Sim.bs_jobs st.Zeus.Sim.bs_lanes
            st.Zeus.Sim.bs_lane_groups st.Zeus.Sim.bs_lane_runs
            st.Zeus.Sim.bs_serial_runs st.Zeus.Sim.bs_cycles;
        0
  in
  let run file cycles pokes peeks do_reset trace wave explain activity vcd_out
      engine jobs grain stats optimize discharge batch_file lanes =
    match Zeus.compile (load file) with
    | Error diags ->
        report_diags diags;
        1
    | Ok design -> (
        let discharged =
          if not discharge then None
          else begin
            let arr =
              Zeus.Seqprove.discharged design (Zeus.Seqprove.run design)
            in
            Some (fun id -> id >= 0 && id < Array.length arr && arr.(id))
          end
        in
        match batch_file with
        | Some bf ->
            run_batch_mode design ~engine ~jobs ~lanes ~optimize ~discharged
              ~stats ~watch:peeks bf
        | None ->
        let sim =
          Zeus.Sim.create ~engine ?jobs ~grain ~optimize ?discharged design
        in
        List.iter (fun (p, v) ->
            if v <= 1 then Zeus.Sim.poke sim p [ (if v = 1 then Zeus.Logic.One else Zeus.Logic.Zero) ]
            else Zeus.Sim.poke_int sim p v)
          pokes;
        if do_reset then Zeus.Sim.reset sim;
        Zeus.Sim.set_trace sim trace;
        let waves =
          if wave && peeks <> [] then Some (Zeus.Wave.create sim peeks)
          else None
        in
        let vcd =
          match vcd_out with
          | Some _ when peeks <> [] -> Some (Zeus.Vcd.create sim peeks)
          | _ -> None
        in
        for c = 1 to cycles do
          Zeus.Sim.step sim;
          Option.iter Zeus.Wave.sample waves;
          Option.iter Zeus.Vcd.sample vcd;
          if peeks <> [] && waves = None then begin
            Fmt.pr "cycle %d:" c;
            List.iter
              (fun p ->
                Fmt.pr " %s=%a" p
                  Fmt.(list ~sep:nop Zeus.Logic.pp)
                  (Zeus.Sim.peek sim p))
              peeks;
            Fmt.pr "@."
          end
        done;
        Option.iter (fun w -> print_string (Zeus.Wave.render w)) waves;
        (match (vcd, vcd_out) with
        | Some v, Some path ->
            Zeus.Vcd.to_file v path;
            Fmt.pr "VCD written to %s@." path
        | _ -> ());
        if activity then
          List.iter
            (fun (net, n) -> Fmt.pr "activity %6d %s@." n net)
            (Zeus.Sim.activity ~top:15 sim);
        List.iter
          (fun path ->
            Fmt.pr "%a@."
              Zeus.Explain.pp
              (Zeus.Explain.explain sim path ~depth:2))
          explain;
        if trace then
          List.iter
            (fun (n, v) -> Fmt.pr "  fire %s = %a@." n Zeus.Logic.pp v)
            (Zeus.Sim.trace_last_cycle sim);
        if stats then begin
          Fmt.pr "node visits: %d@." (Zeus.Sim.node_visits sim);
          (match Zeus.Sim.parallel_stats sim with
          | None -> ()
          | Some s ->
              Fmt.pr
                "parallel: jobs=%d levels=%d chunked=%d barriers=%d \
                 node-tasks=%d net-tasks=%d max-fanout=%d@."
                s.Zeus.Sim.par_jobs s.Zeus.Sim.par_levels
                s.Zeus.Sim.par_chunked_levels s.Zeus.Sim.par_barriers
                s.Zeus.Sim.par_node_tasks s.Zeus.Sim.par_net_tasks
                s.Zeus.Sim.par_max_fanout;
              Fmt.pr "domain visits:%a@."
                Fmt.(array ~sep:nop (fmt " %d"))
                s.Zeus.Sim.par_domain_visits);
          (match Zeus.Sim.compiled_stats sim with
          | None -> ()
          | Some s ->
              Fmt.pr
                "compiled: ops=%d scalar=%d vector=%d vector-lanes=%d \
                 visits-per-cycle=%d check-ops=%d discharged-ops=%d@."
                s.Zeus.Sim.c_ops s.Zeus.Sim.c_scalar_ops
                s.Zeus.Sim.c_vector_ops s.Zeus.Sim.c_vector_lanes
                s.Zeus.Sim.c_visits_per_cycle s.Zeus.Sim.c_check_ops
                s.Zeus.Sim.c_discharged_ops;
              Fmt.pr "compile time: %.3fs@." s.Zeus.Sim.c_compile_secs)
        end;
        List.iter
          (fun (e : Zeus.Sim.runtime_error) ->
            Fmt.pr "runtime error (cycle %d) [%s] %s: %s@." e.Zeus.Sim.err_cycle
              e.Zeus.Sim.err_code e.Zeus.Sim.err_net e.Zeus.Sim.err_message)
          (Zeus.Sim.runtime_errors sim);
        0)
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Simulate a design for N cycles.")
    Term.(
      const run $ file_arg $ cycles $ pokes $ peeks $ do_reset $ trace $ wave
      $ explain $ activity $ vcd_out $ engine $ jobs $ grain $ stats
      $ optimize $ discharge $ batch_file $ lanes)

let lint_cmd =
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
  in
  let budget =
    Arg.(
      value
      & opt int Zeus.Lint.default_budget
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Case-split budget of the drive-conflict prover (per driver \
             pair).  Exhausting it demotes the net to needs-runtime-check.")
  in
  let suppress =
    Arg.(
      value
      & opt_all string []
      & info [ "suppress" ] ~docv:"CODE"
          ~doc:"Drop findings with this diagnostic code (repeatable).")
  in
  let modular =
    Arg.(
      value & flag
      & info [ "modular" ]
          ~doc:
            "Run the modular summary analysis first and skip the \
             drive-conflict prover on nets owned by types it proved \
             conflict-safe at their instantiated parameters.")
  in
  let max_severity =
    Arg.(
      value
      & opt
          (enum [ ("error", `Error); ("warning", `Warning); ("none", `None) ])
          `Warning
      & info [ "max-severity" ] ~docv:"LEVEL"
          ~doc:
            "Most severe finding tolerated for exit status 0: 'error' never \
             fails, 'warning' (default) fails on errors, 'none' fails on \
             any finding.")
  in
  let sequential =
    Arg.(
      value & flag
      & info [ "sequential" ]
          ~doc:
            "Run the bounded sequential prover ($(b,zeusc prove)) as a \
             pre-pass: needs-runtime-check nets whose drivers are \
             exclusive in every register state reachable from power-up \
             are upgraded to safe-sequential, and the Z6xx \
             reset-coverage findings are appended.")
  in
  let run file format budget suppress max_severity modular sequential =
    validate_suppress ~cmd:"lint" suppress;
    let src = load file in
    match Zeus.compile src with
    | Error diags ->
        report_diags diags;
        1
    | Ok design ->
        let proven_safe, modular_findings =
          if not modular then (None, [])
          else
            match Zeus.Parser.program src with
            | Some prog, _ ->
                let r = Zeus.Summary.analyze ~symbolic:false prog in
                let proven = r.Zeus.Summary.proven_conflict_safe in
                Fmt.pr "modular pre-pass: %s@." (Zeus.Summary.summary_line r);
                (Some (fun t -> List.mem t proven), r.Zeus.Summary.findings)
            | None, _ -> (None, [])
        in
        let report = Zeus.Lint.run ~budget ?proven_safe design in
        let report =
          { report with
            Zeus.Lint.findings = modular_findings @ report.Zeus.Lint.findings }
        in
        let report, seq_summary =
          if not sequential then (report, None)
          else
            let sp = Zeus.Seqprove.run ~budget ~lint:report design in
            let merged = sp.Zeus.Seqprove.sp_lint in
            ( {
                merged with
                Zeus.Lint.findings =
                  merged.Zeus.Lint.findings @ sp.Zeus.Seqprove.sp_findings;
              },
              Some (Zeus.Seqprove.summary sp) )
        in
        let findings = drop_suppressed suppress report.Zeus.Lint.findings in
        let report = { report with Zeus.Lint.findings } in
        (match format with
        | `Json -> print_endline (Zeus.Lint.json_of_report report)
        | `Text ->
            List.iter
              (fun (v : Zeus.Lint.net_verdict) ->
                Fmt.pr "net '%s' (%s, %d producers): %s — %s@." v.Zeus.Lint.v_name
                  (Zeus.Etype.kind_to_string v.Zeus.Lint.v_kind)
                  v.Zeus.Lint.v_producers
                  (Zeus.Lint.classification_to_string v.Zeus.Lint.v_class)
                  v.Zeus.Lint.v_detail)
              report.Zeus.Lint.verdicts;
            report_diags findings;
            Option.iter (Fmt.pr "sequential: %s@.") seq_summary;
            Fmt.pr "%s@." (Zeus.Lint.summary report));
        let worst =
          List.fold_left
            (fun acc (d : Zeus.Diag.t) ->
              match (acc, d.Zeus.Diag.severity) with
              | `Error, _ | _, Zeus.Diag.Error -> `Error
              | _, Zeus.Diag.Warning -> `Warning)
            `None findings
        in
        let fail =
          match (max_severity, worst) with
          | `Error, _ -> false
          | `Warning, w -> w = `Error
          | `None, w -> w <> `None
        in
        if fail then 1 else 0
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis: drive-conflict proofs, UNDEF reachability and \
          dead hardware, with stable Zxxx diagnostic codes.")
    Term.(
      const run $ file_arg $ format $ budget $ suppress $ max_severity
      $ modular $ sequential)

let prove_cmd =
  let depth =
    Arg.(
      value
      & opt int Zeus.Seqprove.default_depth
      & info [ "depth" ] ~docv:"K"
          ~doc:
            "Cycles of the bounded reset trajectory and the concrete \
             witness search.")
  in
  let budget =
    Arg.(
      value
      & opt int Zeus.Lint.default_budget
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Case-split budget of the per-state exclusivity prover (per \
             driver pair per fixpoint iteration).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,text) (default) or $(b,json).")
  in
  let regs =
    Arg.(
      value & flag
      & info [ "regs" ]
          ~doc:
            "Also print the per-register reachability table (power-up \
             mask, fixpoint mask and the reset trajectory).")
  in
  let suppress =
    Arg.(
      value
      & opt_all string []
      & info [ "suppress" ] ~docv:"CODE"
          ~doc:"Drop findings with this diagnostic code (repeatable).")
  in
  let run file depth budget format regs suppress =
    validate_suppress ~cmd:"prove" suppress;
    match Zeus.compile (load file) with
    | Error diags ->
        report_diags diags;
        1
    | Ok design ->
        let rep = Zeus.Seqprove.run ~depth ~budget design in
        let findings = drop_suppressed suppress rep.Zeus.Seqprove.sp_findings in
        let rep = { rep with Zeus.Seqprove.sp_findings = findings } in
        (match format with
        | `Json -> print_endline (Zeus.Seqprove.json_of_report rep)
        | `Text ->
            if regs then
              List.iter
                (fun (r : Zeus.Seqprove.reg_trace) ->
                  Fmt.pr "register %-28s init=%s reachable=%s reset: %s@."
                    r.Zeus.Seqprove.rt_name
                    (Zeus.Seqprove.mask_to_string r.Zeus.Seqprove.rt_init)
                    (Zeus.Seqprove.mask_to_string r.Zeus.Seqprove.rt_fix)
                    (String.concat " -> "
                       (Array.to_list
                          (Array.map Zeus.Seqprove.mask_to_string
                             r.Zeus.Seqprove.rt_reset))))
                rep.Zeus.Seqprove.sp_regs;
            List.iter
              (fun (_, name) -> Fmt.pr "upgraded '%s': safe-sequential@." name)
              rep.Zeus.Seqprove.sp_upgraded;
            report_diags findings;
            List.iter
              (fun (w : Zeus.Seqprove.witness) ->
                Fmt.pr "witness '%s' conflicts at cycle %d:@."
                  w.Zeus.Seqprove.w_name w.Zeus.Seqprove.w_cycle;
                Array.iteri
                  (fun c pokes ->
                    Fmt.pr "  cycle %d:%s@." c
                      (String.concat ""
                         (List.map
                            (fun (_, p, v) ->
                              Fmt.str " %s=%s" p (Zeus.Logic.to_string v))
                            pokes)))
                  w.Zeus.Seqprove.w_trace)
              rep.Zeus.Seqprove.sp_witnesses;
            Fmt.pr "%s@." (Zeus.Seqprove.summary rep));
        if
          List.exists
            (fun (d : Zeus.Diag.t) -> d.Zeus.Diag.severity = Zeus.Diag.Error)
            findings
        then 1
        else 0
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:
         "Bounded sequential prover: k-cycle symbolic reachability over \
          register state — upgrades needs-runtime-check nets to \
          safe-sequential, lints reset coverage (Z601/Z602) and searches \
          for concrete conflict witnesses (Z603).")
    Term.(const run $ file_arg $ depth $ budget $ format $ regs $ suppress)

let layout_cmd =
  let top =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "top" ] ~doc:"Top-level signal (default: first).")
  in
  let run file top =
    match Zeus.compile (load file) with
    | Error diags ->
        report_diags diags;
        1
    | Ok design -> (
        let name =
          match top with
          | Some t -> Some t
          | None -> (
              match design.Zeus.Elaborate.tops with
              | (n, _) :: _ -> Some n
              | [] -> None)
        in
        match name with
        | None ->
            Fmt.epr "no top-level signal@.";
            1
        | Some name -> (
            match Zeus.Floorplan.of_design design name with
            | Some plan ->
                print_string (Zeus.Render.to_string plan);
                0
            | None ->
                Fmt.epr "no such top-level signal: %s@." name;
                1))
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"ASCII floorplan of a top-level signal.")
    Term.(const run $ file_arg $ top)

let tree_cmd =
  let run file =
    match Zeus.compile (load file) with
    | Error diags ->
        report_diags diags;
        1
    | Ok design ->
        let nl = design.Zeus.Elaborate.netlist in
        let depth_of path =
          String.fold_left (fun n c -> if c = '.' then n + 1 else n) 0 path
        in
        List.iter
          (fun (i : Zeus.Netlist.instance) ->
            if not i.Zeus.Netlist.is_function_call then begin
              let indent = String.make (2 * depth_of i.Zeus.Netlist.ipath) ' ' in
              let ports =
                String.concat " "
                  (List.map
                     (fun (n, m, nets) ->
                       Fmt.str "%s%s:%d"
                         (match m with
                         | Zeus.Etype.In -> ">"
                         | Zeus.Etype.Out -> "<"
                         | Zeus.Etype.Inout -> "=")
                         n (List.length nets))
                     i.Zeus.Netlist.iports)
              in
              Fmt.pr "%s%s : %s  %s@." indent i.Zeus.Netlist.ipath
                i.Zeus.Netlist.itype ports
            end)
          (Zeus.Netlist.instances nl);
        0
  in
  Cmd.v
    (Cmd.info "tree"
       ~doc:"Instance hierarchy with port widths (> IN, < OUT, = INOUT).")
    Term.(const run $ file_arg)

let optimize_cmd =
  let run file =
    match Zeus.compile (load file) with
    | Error diags ->
        report_diags diags;
        1
    | Ok design ->
        let _, report = Zeus.Optimize.run design in
        Fmt.pr "%a@." Zeus.Optimize.pp_report report;
        0
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Constant propagation + dead-logic elimination report.")
    Term.(const run $ file_arg)

let opt_cmd =
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Also print the proof table: every net class the abstract \
             interpretation classified non-varying (const-0/1, stuck-X, \
             stuck-Z) or unobservable.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,text) (default) or $(b,json).")
  in
  let run file stats format =
    match Zeus.compile (load file) with
    | Error diags ->
        report_diags diags;
        1
    | Ok design ->
        let r = Zeus.Reduce.run design in
        (match format with
        | `Json -> print_string (Zeus.Reduce.json_of_result r ^ "\n")
        | `Text ->
            Fmt.pr "%a@." Zeus.Reduce.pp_stats r.Zeus.Reduce.stats;
            if stats then
              List.iter
                (fun (_, name, cls, observable, producers) ->
                  Fmt.pr "  %-8s %s (%d producer%s%s)@."
                    (Zeus.Absint.classification_to_string cls)
                    name producers
                    (if producers = 1 then "" else "s")
                    (if observable then "" else ", unobservable"))
                (Zeus.Reduce.proof_table r));
        0
  in
  Cmd.v
    (Cmd.info "opt"
       ~doc:
         "Four-valued abstract interpretation + proof-carrying netlist \
          reduction.")
    Term.(const run $ file_arg $ stats $ format)

let place_cmd =
  let top =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "top" ] ~doc:"Top-level signal (default: first).")
  in
  let run file top =
    match Zeus.compile (load file) with
    | Error diags ->
        report_diags diags;
        1
    | Ok design -> (
        let name =
          match top with
          | Some t -> Some t
          | None -> (
              match design.Zeus.Elaborate.tops with
              | (n, _) :: _ -> Some n
              | [] -> None)
        in
        match name with
        | None ->
            Fmt.epr "no top-level signal@.";
            1
        | Some name -> (
            match Zeus.Autoplace.place design name with
            | Some plan ->
                print_string (Zeus.Render.to_string plan);
                Fmt.pr "estimated wirelength: %d@."
                  (Zeus.Autoplace.wirelength design plan);
                (match Zeus.Floorplan.of_design design name with
                | Some explicit ->
                    Fmt.pr "designer layout wirelength: %d@."
                      (Zeus.Autoplace.wirelength design explicit)
                | None -> ());
                0
            | None ->
                Fmt.epr "nothing to place under %s@." name;
                1))
  in
  Cmd.v
    (Cmd.info "place"
       ~doc:"Automatic dataflow placement (vs the designer's layout).")
    Term.(const run $ file_arg $ top)

let dot_cmd =
  let run file =
    match Zeus.compile (load file) with
    | Error diags ->
        report_diags diags;
        1
    | Ok design ->
        let g = Zeus.Graph.build design in
        Fmt.pr "digraph zeus {@.";
        Array.iteri
          (fun i node ->
            let label, out =
              match node with
              | Zeus.Graph.Ngate { op; output; _ } ->
                  (Zeus.Netlist.gate_op_to_string op, output)
              | Zeus.Graph.Ndriver { guard; target; _ } ->
                  ((match guard with Some _ -> "IF" | None -> ":="), target)
            in
            Fmt.pr "  n%d [label=\"%s\"];@." i label;
            Fmt.pr "  n%d -> s%d;@." i out;
            List.iter
              (function
                | Zeus.Netlist.Snet s -> Fmt.pr "  s%d -> n%d;@." s i
                | Zeus.Netlist.Sconst _ -> ())
              (Zeus.Graph.node_inputs node))
          g.Zeus.Graph.nodes;
        (* names are per dense class id — exactly the ids the edges use *)
        Array.iteri
          (fun c name -> Fmt.pr "  s%d [shape=box,label=%S];@." c name)
          g.Zeus.Graph.names;
        Fmt.pr "}@.";
        0
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Semantics graph in Graphviz format.")
    Term.(const run $ file_arg)

let export_cmd =
  let verilog =
    Arg.(
      value & flag
      & info [ "verilog" ]
          ~doc:"Emit structural Verilog (the only format, so far).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write to $(docv) instead of stdout.")
  in
  let testbench =
    Arg.(
      value & flag
      & info [ "testbench" ]
          ~doc:
            "Also emit a self-checking testbench that replays a random \
             Zeus stimulus deck and \\$fatals on any snapshot mismatch.")
  in
  let cycles =
    Arg.(
      value
      & opt int 20
      & info [ "n"; "cycles" ] ~docv:"N"
          ~doc:"Cycles of the $(b,--testbench) stimulus deck.")
  in
  let seed =
    Arg.(
      value
      & opt int 0x5eed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Seed of the $(b,--testbench) deck and of the RANDOM streams \
             (default: the simulator's default).")
  in
  let module_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "module-name" ] ~docv:"NAME"
          ~doc:"Verilog module name (default: the first top-level signal).")
  in
  let run file verilog output testbench cycles seed module_name =
    if not verilog then begin
      Fmt.epr "export: no format selected; pass --verilog@.";
      2
    end
    else
      match Zeus.compile (load file) with
      | Error diags ->
          report_diags diags;
          1
      | Ok design -> (
          match Zeus.Verilog.export ?module_name design with
          | Error e ->
              Fmt.epr "export: %s@." (Zeus.Verilog.error_to_string e);
              1
          | Ok v -> (
              let tb =
                if not testbench then Ok ""
                else
                  let deck = Zeus.Verilog.random_deck ~seed ~cycles v in
                  Zeus.Verilog.testbench ~seed v deck
              in
              match tb with
              | Error msg ->
                  Fmt.epr "export: testbench: %s@." msg;
                  1
              | Ok tb ->
                  let text =
                    if testbench then v.Zeus.Verilog.text ^ "\n" ^ tb
                    else v.Zeus.Verilog.text
                  in
                  (match output with
                  | None -> print_string text
                  | Some path ->
                      Out_channel.with_open_bin path (fun oc ->
                          Out_channel.output_string oc text));
                  0))
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Lower a design to synthesizable structural Verilog: four-valued \
          nets as 0/1/x/z, guarded drivers as conditional continuous \
          assigns with explicit 1'bz release, registers as clocked \
          always-blocks.  Designs with combinational cycles cannot be \
          exported.")
    Term.(
      const run $ file_arg $ verilog $ output $ testbench $ cycles $ seed
      $ module_name)

let fuzz_cmd =
  let count =
    Arg.(
      value
      & opt int 100
      & info [ "n"; "count" ] ~docv:"N" ~doc:"Number of random programs to test.")
  in
  let seed =
    Arg.(
      value
      & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Base seed.  Case $(i,i) of a run is derived from (SEED, $(i,i)) \
             alone, so a reported failure replays with the same seed and a \
             count that covers its index.")
  in
  let corpus_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus-dir" ] ~docv:"DIR"
          ~doc:
            "Write shrunk reproducers (repro_<seed>_<index>.zeus plus a .pokes \
             script) into $(docv).")
  in
  let shrink_budget =
    Arg.(
      value
      & opt int 600
      & info [ "shrink-budget" ] ~docv:"N"
          ~doc:"Maximum oracle evaluations spent shrinking one failure.")
  in
  let comb_only =
    Arg.(
      value & flag
      & info [ "comb" ]
          ~doc:
            "Restrict to the combinational subset (no registers, chains, \
             multiplex drivers or RSET).")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress output.")
  in
  let batch =
    Arg.(
      value & flag
      & info [ "batch" ]
          ~doc:
            "Shard the detection phase (generate + oracle matrix) across \
             $(b,--jobs) domains; shrinking and repro writing stay serial, \
             so the output is byte-identical to a serial run.")
  in
  let jobs =
    Arg.(
      value
      & opt int 4
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Domains for $(b,--batch) detection (default 4).")
  in
  let run count seed corpus_dir shrink_budget comb_only quiet batch jobs =
    let profile = if comb_only then Zeus.Gen.comb else Zeus.Gen.full in
    let log = if quiet then ignore else fun s -> Fmt.epr "%s@." s in
    if (not quiet) && not (Zeus.Oracle.iverilog_available ()) then
      Fmt.epr
        "note: iverilog not found — oracle O9 (verilog) runs structural \
         checks only@.";
    let summary =
      Zeus.Fuzz.run ~profile ~shrink_budget ~log ~batch ~jobs ~count ~seed
        ~corpus_dir ()
    in
    match summary.Zeus.Fuzz.failures with
    | [] ->
        if not quiet then
          Fmt.pr "fuzz: %d cases, 0 divergences (seed %d)@."
            summary.Zeus.Fuzz.tested seed;
        0
    | failures ->
        List.iter
          (fun (f : Zeus.Fuzz.failure) ->
            Fmt.pr "case %d (seed %d): %a@." f.Zeus.Fuzz.index f.Zeus.Fuzz.seed
              Zeus.Oracle.pp_divergence f.Zeus.Fuzz.divergence;
            (match f.Zeus.Fuzz.zeus_file with
            | Some path -> Fmt.pr "  repro: %s@." path
            | None ->
                Fmt.pr "%s"
                  (Zeus.Gen.print_case (f.Zeus.Fuzz.prog, f.Zeus.Fuzz.stim))))
          failures;
        Fmt.pr "fuzz: %d cases, %d divergences (seed %d)@."
          summary.Zeus.Fuzz.tested (List.length failures) seed;
        1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random full-language programs checked against \
          the oracle matrix (pretty-print round trip, re-elaboration, all \
          simulator engines, lint vs runtime conflicts), with shrinking.")
    Term.(
      const run $ count $ seed $ corpus_dir $ shrink_budget $ comb_only $ quiet
      $ batch $ jobs)

let corpus_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Example name (omit to list).")
  in
  let all = Zeus.Corpus.all_named @ Zeus.Corpus_fsm.all_named in
  let run name =
    match name with
    | None ->
        List.iter (fun (n, _) -> print_endline n) all;
        0
    | Some n -> (
        match List.assoc_opt n all with
        | Some src ->
            print_string src;
            0
        | None ->
            Fmt.epr "unknown example %S; try 'zeusc corpus'@." n;
            1)
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"Print a built-in example program.")
    Term.(const run $ name_arg)

let () =
  let info =
    Cmd.info "zeusc" ~version:"1.0.0"
      ~doc:"Compiler, simulator and floorplanner for the Zeus HDL (DAC 1983)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            check_cmd; pp_cmd; stats_cmd; tree_cmd; lint_cmd; prove_cmd;
            sim_cmd; layout_cmd; place_cmd; optimize_cmd; opt_cmd; dot_cmd;
            export_cmd; fuzz_cmd; corpus_cmd;
          ]))
