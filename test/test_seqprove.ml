(* The bounded sequential prover: safe-sequential upgrades, the
   reset-coverage lints (Z601/Z602), concrete conflict witnesses (Z603)
   replayed through the real simulator, conflict-check discharge in the
   compiled engine, and the Z-code registry. *)

open Zeus

let compile src =
  match elaborate_with_diags src with
  | Some design, _ -> design
  | None, diags ->
      Alcotest.failf "did not elaborate: %a" Fmt.(list Diag.pp) diags

let prove ?depth ?budget src = Seqprove.run ?depth ?budget (compile src)

let codes (sp : Seqprove.report) =
  List.filter_map (fun (d : Diag.t) -> d.Diag.code) sp.Seqprove.sp_findings

let has_code sp c = List.mem c (codes sp)

(* a toggle register multiplexing its own input by its own state: the
   flow-insensitive lint injects UNDEF into the multi-driven input and
   demotes it, but from REG(0) the state never leaves {0,1} and the
   guards are complementary — safe-sequential *)
let toggle_src =
  "TYPE t = COMPONENT (IN a,b: boolean; OUT z: boolean) IS SIGNAL r: \
   REG(0); BEGIN IF r.out THEN r.in := a END; IF NOT r.out THEN r.in := b \
   END; z := r.out END; SIGNAL s: t;"

(* an uninitialized, conditionally-loaded register: UNDEF can persist
   forever (Z601), escapes into the observable output (Z602), and the
   state-reading guards genuinely double-drive at power-up (Z603) *)
let sticky_src =
  "TYPE t = COMPONENT (IN a,b: boolean; OUT z,y: boolean) IS SIGNAL r: \
   REG; m: multiplex; BEGIN IF a THEN r.in := b END; IF r.out THEN m := a \
   END; IF NOT r.out THEN m := b END; z := m; y := r.out END; SIGNAL s: t;"

(* the same chain shape the fuzzer generates: head reset under RSET,
   tail shifts — fully covered by a one-cycle pulse *)
let rchain_src =
  "TYPE t = COMPONENT (IN a: boolean; OUT z: boolean) IS SIGNAL r1,r2: \
   REG; BEGIN IF RSET THEN r1.in := 0 END; IF NOT RSET THEN r1.in := a \
   END; r2.in := r1.out; z := r2.out END; SIGNAL s: t;"

(* ------------------------------------------------------------------ *)
(* Upgrades                                                             *)
(* ------------------------------------------------------------------ *)

let test_toggle_upgrade () =
  let design = compile toggle_src in
  let lint = Lint.run design in
  let nrc =
    List.filter
      (fun (v : Lint.net_verdict) ->
        v.Lint.v_class = Lint.Needs_runtime_check)
      lint.Lint.verdicts
  in
  Alcotest.(check bool) "lint demotes the toggle input" true (nrc <> []);
  let sp = Seqprove.run ~lint design in
  List.iter
    (fun (v : Lint.net_verdict) ->
      Alcotest.(check bool)
        (v.Lint.v_name ^ " upgraded")
        true
        (List.exists (fun (_, n) -> n = v.Lint.v_name) sp.Seqprove.sp_upgraded))
    nrc;
  (* the refreshed report carries the upgraded classification *)
  List.iter
    (fun (v : Lint.net_verdict) ->
      let v' =
        List.find
          (fun (w : Lint.net_verdict) -> w.Lint.v_name = v.Lint.v_name)
          sp.Seqprove.sp_lint.Lint.verdicts
      in
      Alcotest.(check string) "safe-sequential"
        (Lint.classification_to_string Lint.Safe_sequential)
        (Lint.classification_to_string v'.Lint.v_class))
    nrc;
  (* no stale Z102 for the upgraded nets *)
  Alcotest.(check bool) "Z102 cleared" false
    (List.exists
       (fun (d : Diag.t) -> d.Diag.code = Some Diag.Code.drive_unproven)
       sp.Seqprove.sp_lint.Lint.findings)

let test_sticky_not_upgraded () =
  let sp = prove sticky_src in
  Alcotest.(check (list (pair int string))) "no upgrade" []
    sp.Seqprove.sp_upgraded

(* corpus sanity: the priority queue's insert guards are exclusive in
   every reachable state — the prover discharges a whole class batch *)
let test_pqueue_upgrades () =
  let sp = prove (Corpus.priority_queue ~slots:8 ~width:4) in
  Alcotest.(check bool) "upgrades found" true
    (List.length sp.Seqprove.sp_upgraded > 0)

(* ------------------------------------------------------------------ *)
(* Reset coverage: Z601 / Z602                                          *)
(* ------------------------------------------------------------------ *)

let test_sticky_reset_gaps () =
  let sp = prove sticky_src in
  Alcotest.(check bool) "Z601" true
    (has_code sp Diag.Code.seq_uninitialized);
  Alcotest.(check bool) "Z602" true (has_code sp Diag.Code.seq_undef_escape)

let test_rchain_covered () =
  let sp = prove rchain_src in
  Alcotest.(check bool) "no Z601" false
    (has_code sp Diag.Code.seq_uninitialized);
  Alcotest.(check bool) "no Z602" false
    (has_code sp Diag.Code.seq_undef_escape);
  (* the trajectory reaches a defined state for every register *)
  List.iter
    (fun (rt : Seqprove.reg_trace) ->
      Alcotest.(check bool)
        (rt.Seqprove.rt_name ^ " defined after reset")
        false
        (rt.Seqprove.rt_reset.(sp.Seqprove.sp_depth) land Lint.m_undef <> 0))
    sp.Seqprove.sp_regs

(* ------------------------------------------------------------------ *)
(* Z603 witnesses replay through the real simulator                     *)
(* ------------------------------------------------------------------ *)

let test_witness_replays () =
  let design = compile sticky_src in
  let sp = Seqprove.run design in
  Alcotest.(check bool) "Z603" true (has_code sp Diag.Code.seq_conflict_reachable);
  Alcotest.(check bool) "witness attached" true
    (sp.Seqprove.sp_witnesses <> []);
  List.iter
    (fun (w : Seqprove.witness) ->
      List.iter
        (fun engine ->
          let sim = Sim.create ~engine design in
          Array.iter
            (fun pokes ->
              List.iter
                (fun (_, name, v) -> Sim.poke sim name [ v ])
                pokes;
              Sim.step sim)
            w.Seqprove.w_trace;
          let hit =
            List.exists
              (fun (e : Sim.runtime_error) ->
                e.Sim.err_net = w.Seqprove.w_name
                && e.Sim.err_code = Diag.Code.drive_conflict
                && e.Sim.err_cycle = w.Seqprove.w_cycle)
              (Sim.runtime_errors sim)
          in
          if not hit then
            Alcotest.failf "witness for %s does not replay on %s"
              w.Seqprove.w_name (Sim.engine_name engine))
        Sim.all_engines)
    sp.Seqprove.sp_witnesses

(* ------------------------------------------------------------------ *)
(* Conflict-check discharge in the compiled engine                      *)
(* ------------------------------------------------------------------ *)

let test_discharge () =
  let design = compile toggle_src in
  let sp = Seqprove.run design in
  let disch = Seqprove.discharged design sp in
  Alcotest.(check bool) "something discharged" true
    (Array.exists Fun.id disch);
  let pred id = id >= 0 && id < Array.length disch && disch.(id) in
  let plain = Sim.create ~engine:Sim.Compiled design in
  let cut = Sim.create ~engine:Sim.Compiled ~discharged:pred design in
  (match (Sim.compiled_stats plain, Sim.compiled_stats cut) with
  | Some p, Some c ->
      Alcotest.(check bool) "plain run still checks" true
        (p.Sim.c_check_ops > 0);
      Alcotest.(check bool) "checks dropped" true
        (c.Sim.c_check_ops < p.Sim.c_check_ops);
      Alcotest.(check int) "total conserved"
        (p.Sim.c_check_ops + p.Sim.c_discharged_ops)
        (c.Sim.c_check_ops + c.Sim.c_discharged_ops)
  | _ -> Alcotest.fail "compiled engine not available");
  (* value identity under a defined stimulus *)
  for cycle = 0 to 7 do
    List.iter
      (fun sim ->
        Sim.poke_bool sim "s.a" (cycle mod 2 = 0);
        Sim.poke_bool sim "s.b" (cycle mod 3 = 0);
        Sim.step sim)
      [ plain; cut ]
  done;
  Alcotest.(check bool) "snapshots identical" true
    (Sim.snapshot plain = Sim.snapshot cut)

(* ------------------------------------------------------------------ *)
(* Report plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let test_json () =
  let sp = prove sticky_src in
  let j = Seqprove.json_of_report sp in
  let contains affix =
    let la = String.length affix and ls = String.length j in
    let rec go i = i + la <= ls && (String.sub j i la = affix || go (i + 1)) in
    go 0
  in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("carries " ^ affix) true (contains affix))
    [
      Printf.sprintf "\"version\": %d" Seqprove.json_schema_version;
      "\"depth\"";
      "\"registers\"";
      "\"upgraded\"";
      "\"witnesses\"";
      Printf.sprintf "\"%s\"" Diag.Code.seq_conflict_reachable;
    ]

let test_summary_line () =
  let sp = prove toggle_src in
  Alcotest.(check bool) "mentions upgrade count" true
    (String.length (Seqprove.summary sp) > 0
    && sp.Seqprove.sp_upgraded <> [])

(* ------------------------------------------------------------------ *)
(* The Z-code registry                                                  *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  (* every code this module can emit is registered with a description *)
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " registered") true
        (List.mem_assoc c Diag.Code.all);
      match Diag.Code.description c with
      | Some _ -> ()
      | None -> Alcotest.failf "code %s lacks a description" c)
    [
      Diag.Code.seq_uninitialized;
      Diag.Code.seq_undef_escape;
      Diag.Code.seq_conflict_reachable;
    ];
  (* the registry is duplicate-free *)
  let names = List.map fst Diag.Code.all in
  Alcotest.(check int) "no duplicate codes"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  (* unknown-code detection, the single gate behind every --suppress *)
  Alcotest.(check (list string)) "known codes pass" []
    (Diag.Code.unknown [ Diag.Code.seq_conflict_reachable; Diag.Code.drive_conflict ]);
  Alcotest.(check (list string)) "unknown codes caught" [ "Z999" ]
    (Diag.Code.unknown [ Diag.Code.seq_conflict_reachable; "Z999" ])

(* every finding the prover emits carries a registered code *)
let test_findings_coded () =
  List.iter
    (fun src ->
      let sp = prove src in
      List.iter
        (fun (d : Diag.t) ->
          match d.Diag.code with
          | None -> Alcotest.failf "finding without a code: %s" d.Diag.message
          | Some c ->
              Alcotest.(check bool) (c ^ " registered") true
                (List.mem_assoc c Diag.Code.all))
        sp.Seqprove.sp_findings)
    [ toggle_src; sticky_src; rchain_src; Corpus.blackjack ]

let () =
  Alcotest.run "seqprove"
    [
      ( "upgrade",
        [
          Alcotest.test_case "toggle upgraded" `Quick test_toggle_upgrade;
          Alcotest.test_case "sticky not upgraded" `Quick
            test_sticky_not_upgraded;
          Alcotest.test_case "pqueue upgrades" `Quick test_pqueue_upgrades;
        ] );
      ( "reset",
        [
          Alcotest.test_case "sticky gaps" `Quick test_sticky_reset_gaps;
          Alcotest.test_case "rchain covered" `Quick test_rchain_covered;
        ] );
      ( "witness",
        [ Alcotest.test_case "replays everywhere" `Quick test_witness_replays ] );
      ( "discharge",
        [ Alcotest.test_case "compiled engine" `Quick test_discharge ] );
      ( "report",
        [
          Alcotest.test_case "json" `Quick test_json;
          Alcotest.test_case "summary" `Quick test_summary_line;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "findings coded" `Quick test_findings_coded;
        ] );
    ]
