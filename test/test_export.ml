(* The Verilog backend: name mangling, the structural round-trip
   property on generated programs, corpus-wide export, testbench
   generation, and the error paths.

   Nothing here needs an external Verilog tool: the round-trip checks
   go through [Verilog.parse_module], the minimal structural reader.
   The external differential (iverilog compiles the module, vvp runs
   the self-checking bench to ZEUS_TB_OK) is oracle row O9, exercised
   by [zeusc fuzz] in the nightly CI job where iverilog is
   installed. *)

open Zeus

(* ------------------------------------------------------------------ *)
(* Mangling                                                             *)
(* ------------------------------------------------------------------ *)

let test_mangle_basics () =
  Alcotest.(check string) "plain" "abc_1" (Verilog.mangle "abc_1");
  Alcotest.(check string) "dots" "top$da$b3$e" (Verilog.mangle "top.a[3]");
  Alcotest.(check string) "hash" "s$dand$h2$b0$e" (Verilog.mangle "s.and#2[0]");
  Alcotest.(check string) "reserved" "v$wire" (Verilog.mangle "wire");
  Alcotest.(check string) "leading digit" "v$2x" (Verilog.mangle "2x");
  Alcotest.(check string) "empty" "v$" (Verilog.mangle "");
  Alcotest.(check bool) "reserved detect" true (Verilog.is_reserved "module");
  Alcotest.(check bool) "not reserved" false (Verilog.is_reserved "modul")

let test_mangle_injective_corners () =
  (* the wrapper prefix must not let distinct paths collide: ".foo"
     escapes to "$dfoo" and wraps to "v$dfoo"; the literal path
     "v$dfoo" escapes its '$' and wraps, staying distinct *)
  let cases = [ ".foo"; "v$dfoo"; "v$"; "$"; "wire"; "v$wire"; "" ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then
            Alcotest.(check bool)
              (Printf.sprintf "mangle %S <> mangle %S" a b)
              false
              (Verilog.mangle a = Verilog.mangle b))
        cases)
    cases

let valid_identifier s =
  s <> ""
  && (match s.[0] with
     | 'A' .. 'Z' | 'a' .. 'z' | '_' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '$' -> true
         | _ -> false)
       s
  && not (Verilog.is_reserved s)

let prop_mangle_roundtrip =
  QCheck.Test.make ~count:500 ~name:"mangle_roundtrip"
    QCheck.(string_gen_of_size (Gen.int_range 0 30) Gen.printable)
    (fun s ->
      let m = Verilog.mangle s in
      if not (valid_identifier m) then
        QCheck.Test.fail_reportf "mangle %S = %S is not a valid identifier" s m
      else if Verilog.demangle m <> s then
        QCheck.Test.fail_reportf "demangle (mangle %S) = %S" s
          (Verilog.demangle m)
      else true)

(* ------------------------------------------------------------------ *)
(* Structural round-trip on generated programs                          *)
(* ------------------------------------------------------------------ *)

let export_exn design =
  match Verilog.export design with
  | Ok v -> v
  | Error e -> Alcotest.failf "export failed: %s" (Verilog.error_to_string e)

let prop_verilog_roundtrip =
  QCheck.Test.make ~count:150 ~name:"verilog_roundtrip"
    (QCheck.make ~print:Gen.to_zeus (Gen.gen ()))
    (fun p ->
      let src = Gen.to_zeus p in
      match Oracle.compile src with
      | Error diags ->
          QCheck.Test.fail_reportf "did not compile:@.%s@.%a" src
            Fmt.(list Diag.pp)
            diags
      | Ok design -> (
          let v = export_exn design in
          match Verilog.parse_module v.Verilog.text with
          | Error msg ->
              QCheck.Test.fail_reportf
                "emitted module does not parse back (%s):@.%s" msg
                v.Verilog.text
          | Ok vm ->
              if vm.Verilog.vm_name <> v.Verilog.module_name then
                QCheck.Test.fail_reportf "module name %S read back as %S"
                  v.Verilog.module_name vm.Verilog.vm_name
              else if
                vm.Verilog.vm_ports
                <> List.map
                     (fun p -> (p.Verilog.pdir, p.Verilog.pname))
                     v.Verilog.ports
              then
                QCheck.Test.fail_reportf "port list did not round-trip:@.%s"
                  v.Verilog.text
              else if vm.Verilog.vm_nets <> v.Verilog.net_count then
                QCheck.Test.fail_reportf
                  "net count %d read back as %d:@.%s" v.Verilog.net_count
                  vm.Verilog.vm_nets v.Verilog.text
              else true))

(* ------------------------------------------------------------------ *)
(* Corpus: every paper example exports, parses back, and benches        *)
(* ------------------------------------------------------------------ *)

let all_corpus = Corpus.all_named @ Corpus_fsm.all_named

let test_corpus_exports () =
  List.iter
    (fun (name, src) ->
      let design =
        match Zeus.compile src with
        | Ok d -> d
        | Error _ -> Alcotest.failf "%s does not compile" name
      in
      let v = export_exn design in
      (match Verilog.parse_module v.Verilog.text with
      | Error msg -> Alcotest.failf "%s does not parse back: %s" name msg
      | Ok vm ->
          Alcotest.(check string)
            (name ^ " module name") v.Verilog.module_name vm.Verilog.vm_name;
          Alcotest.(check int)
            (name ^ " net count") v.Verilog.net_count vm.Verilog.vm_nets);
      (* a 5-cycle random deck must produce a bench for every example *)
      let deck = Verilog.random_deck ~cycles:5 v in
      match Verilog.testbench v deck with
      | Ok tb ->
          Alcotest.(check bool)
            (name ^ " bench has OK marker") true
            (let re = "ZEUS_TB_OK" in
             let n = String.length tb and m = String.length re in
             let rec go i =
               i + m <= n && (String.sub tb i m = re || go (i + 1))
             in
             go 0)
      | Error msg -> Alcotest.failf "%s testbench failed: %s" name msg)
    all_corpus

(* the register-latch rule in the emitted text: a latch keys off the
   raw (pre-booleanize) value so an all-released input keeps state *)
let test_register_block_shape () =
  let design = Zeus.compile_exn (List.assoc "section8" all_corpus) in
  let v = export_exn design in
  let has needle =
    let n = String.length v.Verilog.text and m = String.length needle in
    let rec go i =
      i + m <= n && (String.sub v.Verilog.text i m = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "posedge latch" true (has "always @(posedge clk)");
  Alcotest.(check bool) "latch guarded on raw z" true (has "!== 1'bz");
  Alcotest.(check int) "one register" 1 v.Verilog.reg_count

(* ------------------------------------------------------------------ *)
(* Error paths                                                          *)
(* ------------------------------------------------------------------ *)

(* a combinational cycle never passes [Zeus.compile] (Check rejects
   it), but [export] guards on the schedule itself for designs obtained
   without the checks — the [Cyclic] error must be reported, not a
   crash or a wrong module *)
let test_cyclic_rejected () =
  let src =
    "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS SIGNAL u,v: \
     boolean; BEGIN u := AND(a,v); v := NOT u; y := v END; SIGNAL s: t;"
  in
  match Zeus.elaborate_with_diags src with
  | None, diags ->
      Alcotest.failf "cyclic fixture did not elaborate: %a"
        Fmt.(list Diag.pp)
        diags
  | Some design, _ -> (
      match Verilog.export design with
      | Error Verilog.Cyclic -> ()
      | Error e ->
          Alcotest.failf "expected Cyclic, got: %s" (Verilog.error_to_string e)
      | Ok _ -> Alcotest.fail "cyclic design exported")

let test_testbench_bad_poke () =
  let design = Zeus.compile_exn (List.assoc "section8" all_corpus) in
  let v = export_exn design in
  (match Verilog.testbench v [ [ ("top.nosuch", Logic.One) ] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown poke path accepted");
  (* a poke to a driven net is ignored (as the simulator ignores it),
     so the bench still generates *)
  match Verilog.testbench v [ [ ("top.out", Logic.One) ] ] with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "driven-net poke rejected: %s" msg

let test_parse_module_errors () =
  (match Verilog.parse_module "wire w;" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "headerless text parsed");
  match Verilog.parse_module "module m (a); wire b; endmodule" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undeclared port direction parsed"

let () =
  Alcotest.run "export"
    [
      ( "mangle",
        [
          Alcotest.test_case "basics" `Quick test_mangle_basics;
          Alcotest.test_case "injective corners" `Quick
            test_mangle_injective_corners;
          QCheck_alcotest.to_alcotest prop_mangle_roundtrip;
        ] );
      ( "roundtrip",
        [ QCheck_alcotest.to_alcotest prop_verilog_roundtrip ] );
      ( "corpus",
        [
          Alcotest.test_case "all examples export" `Quick test_corpus_exports;
          Alcotest.test_case "register block shape" `Quick
            test_register_block_shape;
        ] );
      ( "errors",
        [
          Alcotest.test_case "cyclic rejected" `Quick test_cyclic_rejected;
          Alcotest.test_case "testbench bad poke" `Quick
            test_testbench_bad_poke;
          Alcotest.test_case "parse_module errors" `Quick
            test_parse_module_errors;
        ] );
    ]
