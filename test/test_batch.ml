(* Batch engine differential tests: Sim.run_batch against fresh serial
   handles.

   The batch engine has three moving parts that serial stepping does
   not: whole-run sharding over the domain pool, greedy lane grouping
   (consecutive equal-cycle runs packed through one Bytecode.run_lanes
   dispatch), and per-run RANDOM seeds threaded through the packed
   planes.  Every test here pins the same contract: a batch is
   bit-identical — per-cycle snapshots and runtime-error sets — to
   stepping each run on its own freshly created incremental simulator.

   - [batch_identity]: random full-language programs (same generator as
     the fuzzer), a mix of full and truncated runs with distinct and
     duplicated per-run seeds, across jobs x lanes = {1,2,4,7} x
     {1,3,8}; counterexamples shrink through the IR shrinker.
   - corpus agreement: every paper example at jobs=4 lanes=8 against
     serial goldens.
   - stats: the deterministic work-breakdown counters for a known
     design and run mix. *)

open Zeus

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

(* the same run mix as oracle row O7: full and truncated runs, distinct
   seeds plus one duplicated seed (lane packing must keep the streams
   apart even when two lanes share a seed) *)
let runs_of_stim (stim : Gen.stimulus) =
  let stim_arr =
    Array.of_list (List.map (List.map (fun (p, v) -> (p, [ v ]))) stim)
  in
  let ncycles = Array.length stim_arr in
  let mk ~cycles ~seed =
    {
      Sim.br_stim = Array.sub stim_arr 0 cycles;
      br_cycles = cycles;
      br_seed = Some seed;
      br_watch = [];
    }
  in
  let half = max 1 (ncycles / 2) in
  [
    mk ~cycles:ncycles ~seed:21;
    mk ~cycles:half ~seed:22;
    mk ~cycles:ncycles ~seed:23;
    mk ~cycles:ncycles ~seed:21;
    mk ~cycles:half ~seed:24;
  ]

let err_triples errs =
  List.sort compare
    (List.map
       (fun (e : Sim.runtime_error) ->
         (e.Sim.err_cycle, e.Sim.err_net, e.Sim.err_code))
       errs)

(* the golden: one fresh incremental handle per run *)
let serial_run design (r : Sim.batch_run) =
  let sim = Sim.create ~engine:Sim.Incremental ?seed:r.Sim.br_seed design in
  let snaps = ref [] in
  for c = 0 to r.Sim.br_cycles - 1 do
    if c < Array.length r.Sim.br_stim then
      List.iter (fun (p, bits) -> Sim.poke sim p bits) r.Sim.br_stim.(c);
    Sim.step sim;
    snaps := Sim.snapshot sim :: !snaps
  done;
  (List.rev !snaps, err_triples (Sim.runtime_errors sim))

(* ------------------------------------------------------------------ *)
(* batch_identity: jobs x lanes sweep on random programs               *)
(* ------------------------------------------------------------------ *)

let prop_batch_identity =
  QCheck.Test.make ~count:50 ~long_factor:10 ~name:"batch_identity"
    (Gen.arbitrary ())
    (fun (p, stim) ->
      match Oracle.compile (Gen.to_zeus p) with
      | Error _ -> true (* compile failures belong to the matrix property *)
      | Ok design ->
          stim = []
          ||
          let runs = runs_of_stim stim in
          let refs = List.map (serial_run design) runs in
          let tmpl = Sim.create ~engine:Sim.Compiled ~jobs:1 design in
          List.for_all
            (fun jobs ->
              List.for_all
                (fun lanes ->
                  let results, stats =
                    Sim.run_batch ~jobs ~lanes ~snapshots:true tmpl runs
                  in
                  if
                    stats.Sim.bs_lane_runs + stats.Sim.bs_serial_runs
                    <> stats.Sim.bs_runs
                  then
                    QCheck.Test.fail_reportf
                      "batch(jobs=%d,lanes=%d) stats do not partition the \
                       runs: %d lane + %d serial <> %d for@.%s"
                      jobs lanes stats.Sim.bs_lane_runs
                      stats.Sim.bs_serial_runs stats.Sim.bs_runs
                      (Gen.print_case (p, stim))
                  else
                    List.for_all2
                      (fun (ref_snaps, ref_errs) (res : Sim.batch_result) ->
                        if res.Sim.bres_snaps <> ref_snaps then
                          QCheck.Test.fail_reportf
                            "batch(jobs=%d,lanes=%d) snapshots differ from \
                             serial incremental for@.%s"
                            jobs lanes
                            (Gen.print_case (p, stim))
                        else if err_triples res.Sim.bres_errors <> ref_errs
                        then
                          QCheck.Test.fail_reportf
                            "batch(jobs=%d,lanes=%d) error trace differs \
                             from serial incremental for@.%s"
                            jobs lanes
                            (Gen.print_case (p, stim))
                        else true)
                      refs results)
                [ 1; 3; 8 ])
            [ 1; 2; 4; 7 ])

(* ------------------------------------------------------------------ *)
(* Corpus agreement: every paper example vs serial goldens             *)
(* ------------------------------------------------------------------ *)

(* quiescent runs — no pokes — with distinct per-run seeds: unpoked
   inputs stay UNDEF and RANDOM components draw from the per-run
   stream, so snapshots still carry design-specific content *)
let corpus_runs =
  List.map
    (fun seed ->
      { Sim.br_stim = [||]; br_cycles = 8; br_seed = Some seed; br_watch = [] })
    [ 31; 32; 33; 31 ]

let test_corpus_agreement () =
  List.iter
    (fun (name, src) ->
      match Zeus.compile src with
      | Error _ -> Alcotest.failf "%s: did not compile" name
      | Ok design ->
          let refs = List.map (serial_run design) corpus_runs in
          let tmpl = Sim.create ~engine:Sim.Compiled ~jobs:1 design in
          let results, _ =
            Sim.run_batch ~jobs:4 ~lanes:8 ~snapshots:true tmpl corpus_runs
          in
          List.iteri
            (fun i (res : Sim.batch_result) ->
              let ref_snaps, ref_errs = List.nth refs i in
              if res.Sim.bres_snaps <> ref_snaps then
                Alcotest.failf "%s: run %d snapshots differ from serial" name
                  i;
              if err_triples res.Sim.bres_errors <> ref_errs then
                Alcotest.failf "%s: run %d errors differ from serial" name i)
            results)
    (Corpus.all_named @ Corpus_fsm.all_named)

(* ------------------------------------------------------------------ *)
(* Deterministic work breakdown                                        *)
(* ------------------------------------------------------------------ *)

(* a compiled template groups consecutive equal-cycle runs up to the
   lane width; a non-compiled template sends everything down the
   serial fallback — both breakdowns are pinned here *)
let test_batch_stats () =
  let design = Zeus.compile_exn (Corpus.adder_n 4) in
  let mk cycles =
    { Sim.br_stim = [||]; br_cycles = cycles; br_seed = None; br_watch = [] }
  in
  (* 5 runs of 6 cycles then 1 of 3: lanes=4 gives groups 4+1 and the
     odd-length run still lane-packs (a group of one) *)
  let runs = [ mk 6; mk 6; mk 6; mk 6; mk 6; mk 3 ] in
  let tmpl = Sim.create ~engine:Sim.Compiled ~jobs:1 design in
  let _, st = Sim.run_batch ~jobs:1 ~lanes:4 tmpl runs in
  Alcotest.(check int) "runs" 6 st.Sim.bs_runs;
  Alcotest.(check int) "jobs" 1 st.Sim.bs_jobs;
  Alcotest.(check int) "lanes" 4 st.Sim.bs_lanes;
  Alcotest.(check int) "lane groups" 3 st.Sim.bs_lane_groups;
  Alcotest.(check int) "lane runs" 6 st.Sim.bs_lane_runs;
  Alcotest.(check int) "serial runs" 0 st.Sim.bs_serial_runs;
  Alcotest.(check int) "cycles" 33 st.Sim.bs_cycles;
  (* same runs, incremental template: no lane path at all *)
  let tmpl_inc = Sim.create ~engine:Sim.Incremental ~jobs:1 design in
  let _, st = Sim.run_batch ~jobs:1 ~lanes:4 tmpl_inc runs in
  Alcotest.(check int) "fallback lane runs" 0 st.Sim.bs_lane_runs;
  Alcotest.(check int) "fallback serial runs" 6 st.Sim.bs_serial_runs;
  (* jobs are clamped to the run count *)
  let _, st = Sim.run_batch ~jobs:64 ~lanes:4 tmpl runs in
  Alcotest.(check bool) "jobs clamped" true (st.Sim.bs_jobs <= 6)

(* watch paths are resolved once on the caller and read back per run *)
let test_batch_watch () =
  let design = Zeus.compile_exn (Corpus.adder_n 4) in
  let poke v =
    [|
      [ ("adder.a", Cval.sctree_leaves (Cval.bin v 4));
        ("adder.b", Cval.sctree_leaves (Cval.bin 3 4));
        ("adder.cin", [ Logic.Zero ]) ];
    |]
  in
  let mk v =
    {
      Sim.br_stim = poke v;
      br_cycles = 2;
      br_seed = None;
      br_watch = [ "adder.s" ];
    }
  in
  let expect v =
    (* the golden: the same pokes on a plain serial handle *)
    let sim = Sim.create ~engine:Sim.Incremental design in
    List.iter (fun (p, bits) -> Sim.poke sim p bits) (poke v).(0);
    Sim.step sim;
    Sim.step sim;
    Sim.peek sim "adder.s"
  in
  let tmpl = Sim.create ~engine:Sim.Compiled ~jobs:1 design in
  let results, _ =
    Sim.run_batch ~jobs:1 ~lanes:8 tmpl [ mk 1; mk 5; mk 9 ]
  in
  List.iter2
    (fun v (r : Sim.batch_result) ->
      match r.Sim.bres_watched with
      | [ ("adder.s", bits) ] ->
          if bits <> expect v then
            Alcotest.failf "watched sum for a=%d differs from serial peek" v
      | _ -> Alcotest.fail "expected exactly the watched sum")
    [ 1; 5; 9 ] results

let () =
  Alcotest.run "batch"
    [
      ( "identity",
        QCheck_alcotest.to_alcotest prop_batch_identity
        :: [
             Alcotest.test_case "corpus agreement (jobs=4, lanes=8)" `Quick
               test_corpus_agreement;
           ] );
      ( "stats",
        [
          Alcotest.test_case "work breakdown" `Quick test_batch_stats;
          Alcotest.test_case "watch readback" `Quick test_batch_watch;
        ] );
    ]
