(* Layout language (section 6): geometry, the dihedral group, packing,
   the H-tree's linear area (E3), boundary pins, virtual replacement. *)

open Zeus

let compile src =
  match Zeus.compile src with
  | Ok d -> d
  | Error diags -> Alcotest.failf "compile: %a" Fmt.(list Diag.pp) diags

let plan_of src top =
  let d = compile src in
  match Floorplan.of_design d top with
  | Some p -> p
  | None -> Alcotest.failf "no floorplan for %s" top

(* ---- geometry ---- *)

let test_rect_ops () =
  let a = Geom.rect ~x:0 ~y:0 ~w:2 ~h:3 in
  let b = Geom.rect ~x:2 ~y:0 ~w:1 ~h:1 in
  Alcotest.(check int) "area" 6 (Geom.area a);
  Alcotest.(check bool) "adjacent no overlap" false (Geom.overlap a b);
  Alcotest.(check bool) "self overlap" true (Geom.overlap a a);
  let u = Geom.union a b in
  Alcotest.(check int) "union w" 3 u.Geom.w;
  Alcotest.(check int) "union h" 3 u.Geom.h;
  let t = Geom.translate a ~dx:5 ~dy:1 in
  Alcotest.(check int) "translate x" 5 t.Geom.x

let test_oriented_size () =
  let quarter = [ Layout_ir.Rotate90; Layout_ir.Rotate270;
                  Layout_ir.Flip45; Layout_ir.Flip135 ] in
  let keep = [ Layout_ir.Rotate180; Layout_ir.Flip0; Layout_ir.Flip90 ] in
  List.iter
    (fun o ->
      Alcotest.(check (pair int int))
        (Layout_ir.orientation_to_string o)
        (3, 2)
        (Geom.oriented_size (Some o) (2, 3)))
    quarter;
  List.iter
    (fun o ->
      Alcotest.(check (pair int int))
        (Layout_ir.orientation_to_string o)
        (2, 3)
        (Geom.oriented_size (Some o) (2, 3)))
    keep;
  Alcotest.(check (pair int int)) "identity" (2, 3)
    (Geom.oriented_size None (2, 3))

(* the seven orientation changes + identity form the dihedral group D4 *)
let all_orients =
  None
  :: List.map Option.some
       [ Layout_ir.Rotate90; Layout_ir.Rotate180; Layout_ir.Rotate270;
         Layout_ir.Flip0; Layout_ir.Flip45; Layout_ir.Flip90;
         Layout_ir.Flip135 ]

let orient_str = function
  | None -> "id"
  | Some o -> Layout_ir.orientation_to_string o

let test_group_closure () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c = Geom.compose a b in
          Alcotest.(check bool)
            (Printf.sprintf "%s.%s in group" (orient_str a) (orient_str b))
            true
            (List.exists (fun o -> o = c) all_orients))
        all_orients)
    all_orients

let test_group_laws () =
  (* identity, rotation order 4, flips are involutions *)
  let r90 = Some Layout_ir.Rotate90 in
  let r4 =
    Geom.compose r90 (Geom.compose r90 (Geom.compose r90 r90))
  in
  Alcotest.(check string) "r^4 = id" "id" (orient_str r4);
  List.iter
    (fun f ->
      let ff = Geom.compose (Some f) (Some f) in
      Alcotest.(check string)
        (Layout_ir.orientation_to_string f ^ "^2 = id")
        "id" (orient_str ff))
    [ Layout_ir.Flip0; Layout_ir.Flip45; Layout_ir.Flip90; Layout_ir.Flip135 ]

let prop_group_associative =
  let gen = QCheck.make ~print:orient_str (QCheck.Gen.oneofl all_orients) in
  QCheck.Test.make ~count:300 ~name:"orientation_compose_associative"
    (QCheck.triple gen gen gen)
    (fun (a, b, c) ->
      Geom.compose a (Geom.compose b c) = Geom.compose (Geom.compose a b) c)

(* Exhaustive Cayley table: every composition checked against an
   independent faithful representation of D4 — 2x2 integer matrices
   with r = quarter turn and flip0 = x-axis mirror, where composition
   is plain matrix product.  This pins the whole 9x9 table (identity
   included), not just the generator relations. *)
let matrix_of = function
  (* row-major (m00, m01, m10, m11); hardcoded, so the model shares no
     code with Geom.compose *)
  | None -> (1, 0, 0, 1)
  | Some Layout_ir.Rotate90 -> (0, -1, 1, 0)
  | Some Layout_ir.Rotate180 -> (-1, 0, 0, -1)
  | Some Layout_ir.Rotate270 -> (0, 1, -1, 0)
  | Some Layout_ir.Flip0 -> (1, 0, 0, -1)
  | Some Layout_ir.Flip45 -> (0, 1, 1, 0)
  | Some Layout_ir.Flip90 -> (-1, 0, 0, 1)
  | Some Layout_ir.Flip135 -> (0, -1, -1, 0)

let test_cayley_table () =
  let mul (a00, a01, a10, a11) (b00, b01, b10, b11) =
    ( (a00 * b00) + (a01 * b10),
      (a00 * b01) + (a01 * b11),
      (a10 * b00) + (a11 * b10),
      (a10 * b01) + (a11 * b11) )
  in
  (* the representation is faithful: 8 distinct matrices *)
  let mats = List.map matrix_of all_orients in
  Alcotest.(check int) "8 distinct elements" 8
    (List.length (List.sort_uniq compare mats));
  (* every cell of the table agrees with the matrix product *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let got = matrix_of (Geom.compose a b) in
          let want = mul (matrix_of a) (matrix_of b) in
          Alcotest.(check bool)
            (Printf.sprintf "%s . %s" (orient_str a) (orient_str b))
            true (got = want))
        all_orients)
    all_orients;
  (* and the bounding-box action agrees with the matrix action *)
  List.iter
    (fun o ->
      let m00, m01, m10, m11 = matrix_of o in
      let w, h = (2, 3) in
      let want =
        (abs ((m00 * w) + (m01 * h)), abs ((m10 * w) + (m11 * h)))
      in
      Alcotest.(check (pair int int))
        (orient_str o ^ " size action")
        want
        (Geom.oriented_size o (w, h)))
    all_orients

(* ---- packing ---- *)

let row_design : (string -> string, unit, string) format =
  "TYPE cell = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := NOT \
   a END; t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL c: \
   ARRAY[1..4] OF cell; { ORDER %s FOR i := 1 TO 4 DO c[i] END END } BEGIN \
   c[1].a := x; c[2].a := c[1].b; c[3].a := c[2].b; c[4].a := c[3].b; y := \
   c[4].b END; SIGNAL s: t;"

let test_row_lefttoright () =
  let plan = plan_of (Printf.sprintf row_design "lefttoright") "s" in
  Alcotest.(check int) "width" 4 plan.Floorplan.width;
  Alcotest.(check int) "height" 1 plan.Floorplan.height;
  let xs =
    List.map (fun (p : Floorplan.placement) -> p.Floorplan.rect.Geom.x)
      plan.Floorplan.cells
  in
  Alcotest.(check (list int)) "in order" [ 0; 1; 2; 3 ] xs;
  Alcotest.(check int) "no overlaps" 0 (List.length (Floorplan.overlaps plan))

let test_row_righttoleft () =
  let plan = plan_of (Printf.sprintf row_design "righttoleft") "s" in
  let xs =
    List.map (fun (p : Floorplan.placement) -> p.Floorplan.rect.Geom.x)
      plan.Floorplan.cells
  in
  Alcotest.(check (list int)) "mirrored" [ 3; 2; 1; 0 ] xs

let test_column () =
  let plan = plan_of (Printf.sprintf row_design "toptobottom") "s" in
  Alcotest.(check int) "width" 1 plan.Floorplan.width;
  Alcotest.(check int) "height" 4 plan.Floorplan.height

let test_diagonal () =
  (* the "snake" style diagonal of section 6 *)
  let plan = plan_of (Printf.sprintf row_design "toplefttobottomright") "s" in
  Alcotest.(check int) "width" 4 plan.Floorplan.width;
  Alcotest.(check int) "height" 4 plan.Floorplan.height;
  let ys =
    List.map (fun (p : Floorplan.placement) -> p.Floorplan.rect.Geom.y)
      plan.Floorplan.cells
  in
  Alcotest.(check (list int)) "descending diagonal" [ 0; 1; 2; 3 ] ys

(* ---- E3: the H-tree has linear area ---- *)

let test_htree_linear_area () =
  List.iter
    (fun n ->
      let plan = plan_of (Corpus.htree n) "a" in
      Alcotest.(check int)
        (Printf.sprintf "htree(%d) area" n)
        n (Floorplan.area plan);
      Alcotest.(check int)
        (Printf.sprintf "htree(%d) overlap-free" n)
        0
        (List.length (Floorplan.overlaps plan)))
    [ 1; 4; 16; 64; 256 ]

let test_htree_boundary_pins () =
  let plan = plan_of (Corpus.htree 16) "a" in
  Alcotest.(check int) "two pins" 2 (List.length plan.Floorplan.boundary_pins);
  Alcotest.(check bool) "both on bottom" true
    (List.for_all
       (fun (side, _) -> side = Layout_ir.Bottom)
       plan.Floorplan.boundary_pins)

(* ---- nested orders + orientation in the H-tree ---- *)

let test_htree_quadrants () =
  let plan = plan_of (Corpus.htree 16) "a" in
  (* the four direct children are the 2x2 htree(4) quadrant boxes *)
  let quads =
    List.filter
      (fun (p : Floorplan.placement) ->
        p.Floorplan.type_name = "htree" && Geom.area p.Floorplan.rect = 4)
      plan.Floorplan.cells
  in
  Alcotest.(check int) "four quadrants" 4 (List.length quads);
  (* two of them are flipped (flip90) *)
  let flipped =
    List.filter
      (fun (p : Floorplan.placement) ->
        p.Floorplan.orient = Some Layout_ir.Flip90)
      quads
  in
  Alcotest.(check int) "two flipped" 2 (List.length flipped)

(* ---- adder layout (the ORDER in rippleCarry) ---- *)

let test_adder_row () =
  let d = compile (Corpus.adder_n 8) in
  match Floorplan.of_design d "adder" with
  | None -> Alcotest.fail "no plan"
  | Some plan ->
      Alcotest.(check int) "8 cells in a row" 8 plan.Floorplan.width;
      Alcotest.(check int) "height 1" 1 plan.Floorplan.height;
      Alcotest.(check int) "cells" 8 (List.length plan.Floorplan.cells)

(* ---- patternmatch layout: columns of comparator over accumulator ---- *)

let test_patternmatch_grid () =
  let d = compile (Corpus.patternmatch 5) in
  match Floorplan.of_design d "match" with
  | None -> Alcotest.fail "no plan"
  | Some plan ->
      Alcotest.(check int) "width" 5 plan.Floorplan.width;
      Alcotest.(check int) "height" 2 plan.Floorplan.height;
      let comps =
        List.filter
          (fun (p : Floorplan.placement) ->
            p.Floorplan.type_name = "comparator")
          plan.Floorplan.cells
      in
      Alcotest.(check bool) "comparators on top row" true
        (List.for_all
           (fun (p : Floorplan.placement) -> p.Floorplan.rect.Geom.y = 0)
           comps)

(* ---- re-elaboration invariance ---- *)

(* Elaboration is a pure function of the source: compiling the same
   program twice (and compiling its pretty-printed round trip) gives
   byte-identical floorplans — ORDER placements, orientations, bounding
   boxes and boundary pins included.  Guards against iteration-order or
   caching effects leaking into the layout sub-language. *)
let test_reelaboration_invariance () =
  let cases =
    [ ("htree16", Corpus.htree 16, "a");
      ("adder8", Corpus.adder_n 8, "adder");
      ("patternmatch5", Corpus.patternmatch 5, "match");
      ("row-l2r", Printf.sprintf row_design "lefttoright", "s");
      ("row-r2l", Printf.sprintf row_design "righttoleft", "s") ]
  in
  List.iter
    (fun (name, src, top) ->
      let plan1 = plan_of src top in
      let plan2 = plan_of src top in
      Alcotest.(check bool) (name ^ ": recompile identical") true
        (plan1 = plan2);
      let printed =
        match Parser.program src with
        | Some p, _ -> Pretty.program_to_string p
        | None, _ -> Alcotest.failf "%s: did not parse" name
      in
      let plan3 = plan_of printed top in
      Alcotest.(check bool) (name ^ ": pretty-printed identical") true
        (plan1 = plan3);
      Alcotest.(check bool) (name ^ ": boundary pins identical") true
        (plan1.Floorplan.boundary_pins = plan3.Floorplan.boundary_pins))
    cases

(* ---- render ---- *)

let test_render () =
  let plan = plan_of (Corpus.htree 4) "a" in
  let s = Render.to_string plan in
  Alcotest.(check bool) "mentions size" true
    (String.length s > 0 && String.sub s 0 1 = "a")

let () =
  Alcotest.run "layout"
    [
      ( "geometry",
        [
          Alcotest.test_case "rect ops" `Quick test_rect_ops;
          Alcotest.test_case "oriented size" `Quick test_oriented_size;
          Alcotest.test_case "group closure" `Quick test_group_closure;
          Alcotest.test_case "group laws" `Quick test_group_laws;
          Alcotest.test_case "cayley table vs matrix model" `Quick
            test_cayley_table;
          QCheck_alcotest.to_alcotest prop_group_associative;
        ] );
      ( "packing",
        [
          Alcotest.test_case "lefttoright" `Quick test_row_lefttoright;
          Alcotest.test_case "righttoleft" `Quick test_row_righttoleft;
          Alcotest.test_case "column" `Quick test_column;
          Alcotest.test_case "diagonal" `Quick test_diagonal;
        ] );
      ( "htree",
        [
          Alcotest.test_case "linear area" `Quick test_htree_linear_area;
          Alcotest.test_case "boundary pins" `Quick test_htree_boundary_pins;
          Alcotest.test_case "quadrants" `Quick test_htree_quadrants;
        ] );
      ( "designs",
        [
          Alcotest.test_case "adder row" `Quick test_adder_row;
          Alcotest.test_case "patternmatch grid" `Quick
            test_patternmatch_grid;
          Alcotest.test_case "re-elaboration invariance" `Quick
            test_reelaboration_invariance;
          Alcotest.test_case "render" `Quick test_render;
        ] );
    ]
