(* The lint engine: the drive-conflict prover (Z101/Z102),
   UNDEF-reachability (Z201/Z202) and dead-hardware (Z301/Z302) passes,
   on the paper's own examples (the section 8 tri-state conflict, the
   Blackjack machine) and targeted fragments. *)

open Zeus

let lint ?budget src =
  match elaborate_with_diags src with
  | Some design, _ -> Lint.run ?budget design
  | None, diags ->
      Alcotest.failf "did not elaborate: %a" Fmt.(list Diag.pp) diags

let verdict report name =
  match
    List.find_opt
      (fun (v : Lint.net_verdict) -> v.Lint.v_name = name)
      report.Lint.verdicts
  with
  | Some v -> v.Lint.v_class
  | None -> Alcotest.failf "net %s not in the multi-driven report" name

let codes report =
  List.filter_map (fun (d : Diag.t) -> d.Diag.code) report.Lint.findings

let has_code report c = List.mem c (codes report)

let class_str = Lint.classification_to_string

let check_class report name expect =
  Alcotest.(check string)
    name (class_str expect)
    (class_str (verdict report name))

(* ------------------------------------------------------------------ *)
(* The drive-conflict prover                                            *)
(* ------------------------------------------------------------------ *)

(* a one-hot decoder's guards are mutually exclusive: provable *)
let test_exclusive_decoder () =
  let report = lint (Corpus.mux4) in
  List.iter
    (fun (v : Lint.net_verdict) ->
      Alcotest.(check string) v.Lint.v_name (class_str Lint.Safe)
        (class_str v.Lint.v_class))
    report.Lint.verdicts;
  Alcotest.(check bool) "has multi-driven nets" true (report.Lint.verdicts <> []);
  Alcotest.(check (list string)) "no findings" [] (codes report)

(* the section 8 example: IF x and IF y with independent inputs x, y —
   the environment can enable both drivers of 'out' in one cycle *)
let test_section8_conflict () =
  let report = lint Corpus.section8_example in
  check_class report "top.out" Lint.Conflict;
  Alcotest.(check bool) "Z101 reported" true
    (has_code report Diag.Code.drive_conflict);
  (* the witness names the two free inputs *)
  let v =
    List.find
      (fun (v : Lint.net_verdict) -> v.Lint.v_name = "top.out")
      report.Lint.verdicts
  in
  Alcotest.(check bool) "witness attached" true
    (String.length v.Lint.v_detail > String.length "witness: ")

(* with the budget strangled, the same net degrades soundly to
   needs-runtime-check instead of guessing *)
let test_budget_exhaustion () =
  let report = lint ~budget:0 Corpus.blackjack in
  Alcotest.(check bool) "has multi-driven nets" true (report.Lint.verdicts <> []);
  List.iter
    (fun (v : Lint.net_verdict) ->
      Alcotest.(check string) v.Lint.v_name
        (class_str Lint.Needs_runtime_check)
        (class_str v.Lint.v_class))
    report.Lint.verdicts;
  Alcotest.(check bool) "Z102 reported" true
    (has_code report Diag.Code.drive_unproven);
  Alcotest.(check bool) "no Z101" false
    (has_code report Diag.Code.drive_conflict)

(* the Blackjack controller multi-drives its state registers from
   ELSIF-chained, EQUAL-guarded arms.  The arms are exclusive over
   booleans, but every guard reads the state registers — UNDEF at
   power-up, when all arms drive at once (observable: simulating the
   corpus without asserting RSET reports Z101 on every state net in
   cycle 0).  So the verdict is needs-runtime-check, never safe and
   never a static conflict. *)
let test_blackjack_needs_runtime_check () =
  let report = lint Corpus.blackjack in
  Alcotest.(check bool) "has multi-driven nets" true (report.Lint.verdicts <> []);
  List.iter
    (fun (v : Lint.net_verdict) ->
      Alcotest.(check string) v.Lint.v_name
        (class_str Lint.Needs_runtime_check)
        (class_str v.Lint.v_class))
    report.Lint.verdicts;
  Alcotest.(check bool) "no static Z101" false
    (has_code report Diag.Code.drive_conflict)

(* overlapping guards built by hand: g and AND(g,h) can both be 1 *)
let test_overlap_conflict () =
  let report =
    lint
      "TYPE t = COMPONENT (IN g,h,a: boolean; OUT z: boolean) IS SIGNAL m: \
       multiplex; BEGIN IF g THEN m := a END; IF AND(g,h) THEN m := NOT a \
       END; z := m END; SIGNAL s: t;"
  in
  check_class report "s.m" Lint.Conflict;
  Alcotest.(check bool) "Z101" true (has_code report Diag.Code.drive_conflict)

(* ------------------------------------------------------------------ *)
(* UNDEF reachability                                                   *)
(* ------------------------------------------------------------------ *)

let test_undef_reachability () =
  let report =
    lint
      "TYPE t = COMPONENT (IN a: boolean; OUT z: boolean) IS SIGNAL u, v: \
       boolean; BEGIN v := NOT u; z := AND(a,v) END; SIGNAL s: t;"
  in
  Alcotest.(check bool) "Z201 for u" true
    (has_code report Diag.Code.undriven_read);
  Alcotest.(check bool) "Z202 for v" true (has_code report Diag.Code.undef_only)

let test_no_undef_noise_on_corpus () =
  List.iter
    (fun (name, src) ->
      let report = lint src in
      if has_code report Diag.Code.undriven_read then
        Alcotest.failf "%s: spurious Z201" name;
      if has_code report Diag.Code.undef_only then
        Alcotest.failf "%s: spurious Z202" name)
    (Corpus.all_named @ Corpus_fsm.all_named)

(* ------------------------------------------------------------------ *)
(* Dead hardware                                                        *)
(* ------------------------------------------------------------------ *)

let test_dead_branch () =
  let report =
    lint
      "TYPE t = COMPONENT (IN a,b: boolean; OUT z: boolean) IS SIGNAL r: \
       REG; BEGIN IF AND(a,0) THEN r.in := b END; z := r.out END; SIGNAL s: \
       t;"
  in
  Alcotest.(check bool) "Z301" true (has_code report Diag.Code.dead_branch)

let test_dead_instance () =
  let report =
    lint
      "TYPE inv = COMPONENT (IN a: boolean; OUT z: boolean) IS BEGIN z := \
       NOT a END; t = COMPONENT (IN a: boolean; OUT z: boolean) IS SIGNAL \
       i: inv; w: boolean; BEGIN i(a,w); z := NOT a END; SIGNAL s: t;"
  in
  Alcotest.(check bool) "Z302" true (has_code report Diag.Code.dead_instance)

let test_live_instances_not_flagged () =
  List.iter
    (fun (name, src) ->
      let report = lint src in
      if has_code report Diag.Code.dead_instance then
        Alcotest.failf "%s: spurious Z302" name)
    (Corpus.all_named @ Corpus_fsm.all_named)

(* ------------------------------------------------------------------ *)
(* Corpus sweep: every multi-driven net classified, no static conflicts
   except the two known true positives.  Nets whose guards read
   sequential state (UNDEF-capable at power-up) are allowed to land in
   needs-runtime-check — proving them safe would contradict the
   runtime's undefined-guard-drives semantics.                          *)
(* ------------------------------------------------------------------ *)

let test_corpus_classified () =
  List.iter
    (fun (name, src) ->
      let report = lint src in
      List.iter
        (fun (v : Lint.net_verdict) ->
          if name <> "section8" && name <> "dictionary8x6" then
            Alcotest.(check bool)
              (name ^ ": " ^ v.Lint.v_name ^ " not a static conflict")
              false
              (v.Lint.v_class = Lint.Conflict))
        report.Lint.verdicts)
    (Corpus.all_named @ Corpus_fsm.all_named)

(* dictionary8x6: simultaneous INS and DEL on the same slot double-drive
   valid[i].in — a genuine environmental-assumption conflict *)
let test_dictionary_conflict () =
  let report = lint (Corpus.dictionary ~slots:8 ~keybits:6) in
  Alcotest.(check bool) "Z101" true (has_code report Diag.Code.drive_conflict)

(* ------------------------------------------------------------------ *)
(* The static Z101 is the same code the simulator reports at runtime     *)
(* ------------------------------------------------------------------ *)

let test_runtime_code_correlates () =
  let design = compile_exn Corpus.section8_example in
  let static = lint Corpus.section8_example in
  Alcotest.(check bool) "static Z101" true
    (has_code static Diag.Code.drive_conflict);
  let sim = Sim.create design in
  Sim.poke sim "top.x" [ Logic.One ];
  Sim.poke sim "top.y" [ Logic.One ];
  Sim.poke sim "top.a" [ Logic.One ];
  Sim.poke sim "top.b" [ Logic.One ];
  Sim.poke sim "top.cc" [ Logic.Zero ];
  Sim.step sim;
  match Sim.runtime_errors sim with
  | [] -> Alcotest.fail "expected a runtime multiple-drive violation"
  | e :: _ ->
      Alcotest.(check string) "same code" Diag.Code.drive_conflict
        e.Sim.err_code

(* ------------------------------------------------------------------ *)
(* JSON output: syntactically valid, carries the stable codes            *)
(* ------------------------------------------------------------------ *)

(* a tiny structural JSON validator — the repo deliberately has no JSON
   dependency, so check well-formedness by hand *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail_at msg = Alcotest.failf "invalid JSON at %d: %s" !pos msg in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t')
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else fail_at (Printf.sprintf "expected %c" c)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> str ()
    | Some ('-' | '0' .. '9') -> num ()
    | Some 'n' -> lit "null"
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | _ -> fail_at "value"
  and lit l =
    if !pos + String.length l <= n && String.sub s !pos (String.length l) = l
    then pos := !pos + String.length l
    else fail_at l
  and num () =
    while
      !pos < n
      && (match s.[!pos] with '-' | '0' .. '9' | '.' | 'e' | 'E' | '+' -> true | _ -> false)
    do
      incr pos
    done
  and str () =
    expect '"';
    let fin = ref false in
    while not !fin do
      match peek () with
      | None -> fail_at "unterminated string"
      | Some '\\' -> pos := !pos + 2
      | Some '"' ->
          incr pos;
          fin := true
      | Some _ -> incr pos
    done
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let fin = ref false in
      while not !fin do
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some '}' ->
            incr pos;
            fin := true
        | _ -> fail_at "expected , or }"
      done
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let fin = ref false in
      while not !fin do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some ']' ->
            incr pos;
            fin := true
        | _ -> fail_at "expected , or ]"
      done
  in
  value ();
  skip_ws ();
  if !pos <> n then fail_at "trailing garbage"

let test_json () =
  List.iter
    (fun src ->
      let report = lint src in
      json_valid (Lint.json_of_report report))
    [ Corpus.section8_example; Corpus.blackjack; Corpus.mux4 ];
  let j = Lint.json_of_report (lint Corpus.section8_example) in
  let contains affix =
    let la = String.length affix and ls = String.length j in
    let rec go i = i + la <= ls && (String.sub j i la = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "carries Z101" true
    (contains (Printf.sprintf "\"%s\"" Diag.Code.drive_conflict));
  Alcotest.(check bool) "class string" true (contains "\"conflict\"")

(* every published code is described, and descriptions resolve *)
let test_code_table () =
  List.iter
    (fun (c, _) ->
      match Diag.Code.description c with
      | Some _ -> ()
      | None -> Alcotest.failf "code %s lacks a description" c)
    Diag.Code.all;
  Alcotest.(check (option string)) "unknown code" None
    (Diag.Code.description "Z999")

let () =
  Alcotest.run "lint"
    [
      ( "conflict",
        [
          Alcotest.test_case "exclusive decoder safe" `Quick
            test_exclusive_decoder;
          Alcotest.test_case "section8 conflict" `Quick test_section8_conflict;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
          Alcotest.test_case "blackjack needs runtime check" `Quick
            test_blackjack_needs_runtime_check;
          Alcotest.test_case "overlap conflict" `Quick test_overlap_conflict;
          Alcotest.test_case "dictionary conflict" `Quick
            test_dictionary_conflict;
        ] );
      ( "undef",
        [
          Alcotest.test_case "reachability" `Quick test_undef_reachability;
          Alcotest.test_case "corpus clean" `Quick
            test_no_undef_noise_on_corpus;
        ] );
      ( "dead",
        [
          Alcotest.test_case "dead branch" `Quick test_dead_branch;
          Alcotest.test_case "dead instance" `Quick test_dead_instance;
          Alcotest.test_case "corpus live" `Quick
            test_live_instances_not_flagged;
        ] );
      ( "report",
        [
          Alcotest.test_case "corpus classified" `Quick test_corpus_classified;
          Alcotest.test_case "runtime code correlates" `Quick
            test_runtime_code_correlates;
          Alcotest.test_case "json" `Quick test_json;
          Alcotest.test_case "code table" `Quick test_code_table;
        ] );
    ]
