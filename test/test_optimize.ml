(* The optimizer: constant propagation and dead-logic elimination must
   preserve observable behaviour exactly — checked by differential
   simulation on the corpus and on random circuits. *)

open Zeus

let compile src =
  match Zeus.compile src with
  | Ok d -> d
  | Error diags -> Alcotest.failf "compile: %a" Fmt.(list Diag.pp) diags

(* ---- directed reductions ---- *)

let test_constant_folding () =
  (* y := AND(x, OR(1, x)) — the OR is constant 1, so AND(x,1) = buffer;
     the OR gate must fold away *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL one: \
       boolean; BEGIN one := 1; y := AND(x,OR(one,x)) END;\nSIGNAL s: t;"
  in
  let opt, report = Optimize.run d in
  Alcotest.(check bool) "gates reduced" true
    (report.Optimize.gates_after < report.Optimize.gates_before);
  Alcotest.(check bool) "constants found" true
    (report.Optimize.constants_found > 0);
  (* behaviour unchanged *)
  let run design v =
    let sim = Sim.create design in
    Sim.poke_bool sim "s.x" v;
    Sim.step sim;
    Sim.peek_bit sim "s.y"
  in
  List.iter
    (fun v ->
      Alcotest.(check char) "same output"
        (Logic.to_char (run d v))
        (Logic.to_char (run opt v)))
    [ true; false ]

let test_dead_removal () =
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL u: \
       boolean; BEGIN u := NOT x; * := u; y := x END;\nSIGNAL s: t;"
  in
  let _, report = Optimize.run d in
  Alcotest.(check bool) "dead NOT removed" true
    (report.Optimize.gates_after < report.Optimize.gates_before)

let test_guard_folding () =
  (* IF 1 THEN m := x END : the guard folds to an unconditional drive *)
  let d =
    compile
      "CONST on = 1;\n\
       TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL g: \
       boolean; m: multiplex; BEGIN g := on; IF g THEN m := x END; y := m \
       END;\nSIGNAL s: t;"
  in
  let opt, _ = Optimize.run d in
  let sim = Sim.create opt in
  Sim.poke_bool sim "s.x" true;
  Sim.step sim;
  Alcotest.(check char) "folded guard still drives" '1'
    (Logic.to_char (Sim.peek_bit sim "s.y"))

(* ---- equivalence on the corpus ---- *)

let outputs_of design =
  (* OUT/INOUT pins of root instances *)
  let nl = design.Elaborate.netlist in
  List.concat_map
    (fun (i : Netlist.instance) ->
      if String.contains i.Netlist.ipath '.' then []
      else
        List.concat_map
          (fun (_, mode, nets) ->
            match mode with
            | Etype.Out | Etype.Inout -> nets
            | Etype.In -> [])
          i.Netlist.iports)
    (Netlist.instances nl)

let inputs_of design =
  let nl = design.Elaborate.netlist in
  List.concat_map
    (fun (i : Netlist.instance) ->
      if String.contains i.Netlist.ipath '.' then []
      else
        List.concat_map
          (fun (_, mode, nets) ->
            match mode with
            | Etype.In -> nets
            | Etype.Out | Etype.Inout -> [])
          i.Netlist.iports)
    (Netlist.instances nl)

let equivalent ?(cycles = 4) design =
  let opt, _ = Optimize.run design in
  let ins = inputs_of design and outs = outputs_of design in
  let rng = Random.State.make [| 1234 |] in
  let ok = ref true in
  for _trial = 1 to 5 do
    let s1 = Sim.create design and s2 = Sim.create opt in
    Sim.reset s1;
    Sim.reset s2;
    for _c = 1 to cycles do
      let vec =
        List.map
          (fun _ -> if Random.State.bool rng then Logic.One else Logic.Zero)
          ins
      in
      Sim.poke_nets s1 ins vec;
      Sim.poke_nets s2 ins vec;
      Sim.step s1;
      Sim.step s2;
      if Sim.peek_nets s1 outs <> Sim.peek_nets s2 outs then ok := false
    done;
    (* register state must agree as well *)
    if Sim.reg_states s1 <> Sim.reg_states s2 then ok := false
  done;
  !ok

let test_equivalence_corpus () =
  List.iter
    (fun (name, src) ->
      let d = compile src in
      Alcotest.(check bool)
        (name ^ " optimized design equivalent")
        true (equivalent d))
    [
      ("adder4", Corpus.adder4);
      ("blackjack", Corpus.blackjack);
      ("patternmatch3", Corpus.patternmatch 3);
      ("am2901", Corpus.am2901);
      ("counter8", Corpus_fsm.counter 8);
      ("lfsr4", Corpus_fsm.lfsr4);
    ]

let test_reduction_on_blackjack () =
  (* blackjack contains dead logic (the unused plus/minus carry-out), so
     the optimizer must strictly shrink it *)
  let d = compile Corpus.blackjack in
  let _, r = Optimize.run d in
  Alcotest.(check bool)
    (Fmt.str "shrinks (%a)" Optimize.pp_report r)
    true
    (r.Optimize.gates_after < r.Optimize.gates_before)

(* ---- known_constants edge cases ---- *)

let known_of design name =
  let nl = design.Elaborate.netlist in
  let known = Optimize.known_constants design in
  let found = ref None in
  Array.iteri
    (fun i (n : Netlist.net) -> if n.Netlist.name = name then found := Some i)
    (Netlist.nets_array nl);
  match !found with
  | Some i -> Option.map Logic.to_char known.(Netlist.canonical nl i)
  | None -> Alcotest.failf "net %s not in the netlist" name

let test_noinfl_only_net () =
  (* a multiplex whose single producer sits behind a statically-false
     guard carries NOINFL (no influence) — not UNDEF, and not unknown *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL g: \
       boolean; m: multiplex; BEGIN g := 0; IF g THEN m := x END; y := \
       OR(m, x) END;\nSIGNAL s: t;"
  in
  Alcotest.(check (option char))
    "m is NOINFL"
    (Some (Logic.to_char Logic.Noinfl))
    (known_of d "s.m")

let test_register_feedback_constant () =
  (* r.in is the constant 1, but a register output is sequential state
     (it can power up UNDEF): the constant must not propagate through
     the register to r.out or anything fed from it *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL u: \
       boolean; r: REG; BEGIN r.in := 1; u := r.out; y := AND(x, u) \
       END;\nSIGNAL s: t;"
  in
  Alcotest.(check (option char)) "r.in constant" (Some '1')
    (known_of d "s.r.in");
  Alcotest.(check (option char)) "r.out not constant" None
    (known_of d "s.r.out");
  Alcotest.(check (option char)) "copy of r.out not constant" None
    (known_of d "s.u")

let test_alias_class_constants () =
  (* '==' merges alias classes: a constant learned on one name is known
     through every alias of the class *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL a, b: \
       multiplex; BEGIN a == b; a := 1; y := AND(x, b) END;\nSIGNAL s: t;"
  in
  Alcotest.(check (option char)) "alias of a constant is constant" (Some '1')
    (known_of d "s.b");
  (* two always-firing constant drivers landing on one merged class:
     the class has two producers, so it stays conservatively unknown
     even though the drivers agree *)
  let d2 =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL g: \
       boolean; a, b: multiplex; BEGIN g := 1; a == b; IF g THEN a := 1 \
       END; IF g THEN b := 1 END; y := AND(x, a) END;\nSIGNAL s: t;"
  in
  Alcotest.(check (option char)) "two agreeing constants stay unknown" None
    (known_of d2 "s.a")

(* ---- abstract interpretation (Absint) + reduction (Reduce) ---- *)

let net_id design name =
  let nl = design.Elaborate.netlist in
  let found = ref None in
  Array.iter
    (fun (n : Netlist.net) ->
      if n.Netlist.name = name then found := Some n.Netlist.id)
    (Netlist.nets_array nl);
  match !found with
  | Some i -> i
  | None -> Alcotest.failf "net %s not in the netlist" name

let classify design name =
  let ai = Absint.analyze design in
  Absint.classification_to_string
    (Absint.classification_of_net ai (net_id design name))

let test_absint_conflict_stuckx () =
  (* two always-firing drivers disagreeing on one net: the runtime
     drive resolution yields UNDEF every cycle, and the abstract
     resolution must prove it *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL g: \
       boolean; m: multiplex; BEGIN g := 1; IF g THEN m := 1 END; IF g THEN \
       m := 0 END; y := OR(m, x) END;\nSIGNAL s: t;"
  in
  Alcotest.(check string) "conflict is stuck-X" "stuck-X" (classify d "s.m")

let test_absint_kind_defaults () =
  (* a class whose every producer provably never fires reads the
     engine's kind default: NOINFL on a multiplex, but a boolean copy
     of it reads UNDEF — the copy translates the default *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL g, b: \
       boolean; m: multiplex; BEGIN g := 0; IF g THEN m := x END; b := m; y \
       := OR(b, x) END;\nSIGNAL s: t;"
  in
  Alcotest.(check string) "dead multiplex is stuck-Z" "stuck-Z"
    (classify d "s.m");
  Alcotest.(check string) "boolean copy of it is stuck-X" "stuck-X"
    (classify d "s.b")

let test_absint_register_widening () =
  (* a register fed the constant 1 still powers up UNDEF: widening
     joins the power-up value, so the output class stays varying *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL r: REG; \
       BEGIN r.in := 1; y := AND(x, r.out) END;\nSIGNAL s: t;"
  in
  Alcotest.(check string) "r.in constant" "const-1" (classify d "s.r.in");
  Alcotest.(check string) "r.out varying" "varying" (classify d "s.r.out")

let test_reduce_copy_merge () =
  (* an unguarded single-producer copy is a wire: the classes merge,
     the driver disappears, and behaviour is unchanged *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL u: \
       boolean; BEGIN u := x; y := NOT u END;\nSIGNAL s: t;"
  in
  let r = Reduce.run d in
  Alcotest.(check bool) "copies merged" true (r.Reduce.stats.Reduce.copies_merged > 0);
  Alcotest.(check bool) "nets eliminated" true
    (r.Reduce.stats.Reduce.nets_eliminated > 0);
  let run design v =
    let sim = Sim.create design in
    Sim.poke_bool sim "s.x" v;
    Sim.step sim;
    Sim.peek_bit sim "s.y"
  in
  List.iter
    (fun v ->
      Alcotest.(check char) "same output"
        (Logic.to_char (run d v))
        (Logic.to_char (run r.Reduce.design v)))
    [ true; false ]

let test_reduce_no_cross_kind_merge () =
  (* a boolean fed from a multiplex reads UNDEF where the multiplex
     reads NOINFL when nothing fires — the copy translates between the
     defaults, so it must NOT merge *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL m: \
       multiplex; BEGIN IF x THEN m := 1 END; y := m END;\nSIGNAL s: t;"
  in
  let r = Reduce.run d in
  Alcotest.(check int) "no cross-kind merge" 0
    r.Reduce.stats.Reduce.copies_merged;
  let run design v =
    let sim = Sim.create design in
    Sim.poke_bool sim "s.x" v;
    Sim.step sim;
    Sim.peek_bit sim "s.y"
  in
  List.iter
    (fun v ->
      Alcotest.(check char) "same output"
        (Logic.to_char (run d v))
        (Logic.to_char (run r.Reduce.design v)))
    [ true; false ]

let test_reduce_guard0_keeps_producer () =
  (* two never-firing drivers: dropping both would leave the class
     producer-less, flipping a boolean read from its one-NOINFL-firing
     behaviour — the reduction must keep at least one *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL g: \
       boolean; m: multiplex; BEGIN g := 0; IF g THEN m := 0 END; IF g THEN \
       m := x END; y := OR(m, x) END;\nSIGNAL s: t;"
  in
  let r = Reduce.run d in
  let nl = r.Reduce.design.Elaborate.netlist in
  let mc = Netlist.canonical nl (net_id r.Reduce.design "s.m") in
  let producers =
    List.length
      (List.filter
         (fun (dr : Netlist.driver) ->
           Netlist.canonical nl dr.Netlist.target = mc)
         (Netlist.drivers nl))
    + List.length
        (List.filter
           (fun (g : Netlist.gate) ->
             Netlist.canonical nl g.Netlist.output = mc)
           (Netlist.gates nl))
  in
  Alcotest.(check bool) "at least one producer kept" true (producers >= 1)

let test_reduce_equivalence_corpus () =
  (* every embedded example: the proof-carrying reduction preserves
     the root output ports under random stimulus (registers may
     legitimately disappear when unobservable, so only the outputs —
     observable by definition — are compared) *)
  List.iter
    (fun (name, src) ->
      let d = compile src in
      let r = Reduce.run d in
      let ins = inputs_of d and outs = outputs_of d in
      let rng = Random.State.make [| 77 |] in
      for _trial = 1 to 3 do
        let s1 = Sim.create d and s2 = Sim.create r.Reduce.design in
        Sim.reset s1;
        Sim.reset s2;
        for _c = 1 to 4 do
          let vec =
            List.map
              (fun _ -> if Random.State.bool rng then Logic.One else Logic.Zero)
              ins
          in
          Sim.poke_nets s1 ins vec;
          Sim.poke_nets s2 ins vec;
          Sim.step s1;
          Sim.step s2;
          if Sim.peek_nets s1 outs <> Sim.peek_nets s2 outs then
            Alcotest.failf "%s: outputs diverge after reduction" name
        done
      done)
    (Corpus.all_named @ Corpus_fsm.all_named)

let test_reduce_matches_legacy_on_blackjack () =
  (* the proof-carrying pass subsumes the legacy Optimize constants:
     everything Optimize folded, Reduce folds too *)
  let d = compile Corpus.blackjack in
  let _, legacy = Optimize.run d in
  let r = Reduce.run d in
  Alcotest.(check bool)
    (Fmt.str "folds at least the legacy constants (%a)" Reduce.pp_stats
       r.Reduce.stats)
    true
    (r.Reduce.stats.Reduce.consts_folded >= legacy.Optimize.constants_found)

let () =
  Alcotest.run "optimize"
    [
      ( "directed",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "dead removal" `Quick test_dead_removal;
          Alcotest.test_case "guard folding" `Quick test_guard_folding;
        ] );
      ( "known-constants",
        [
          Alcotest.test_case "NOINFL-only net" `Quick test_noinfl_only_net;
          Alcotest.test_case "register feedback" `Quick
            test_register_feedback_constant;
          Alcotest.test_case "alias-class merging" `Quick
            test_alias_class_constants;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "corpus" `Quick test_equivalence_corpus;
          Alcotest.test_case "blackjack shrinks" `Quick
            test_reduction_on_blackjack;
        ] );
      ( "absint",
        [
          Alcotest.test_case "conflict is stuck-X" `Quick
            test_absint_conflict_stuckx;
          Alcotest.test_case "kind defaults" `Quick test_absint_kind_defaults;
          Alcotest.test_case "register widening" `Quick
            test_absint_register_widening;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "copy merge" `Quick test_reduce_copy_merge;
          Alcotest.test_case "no cross-kind merge" `Quick
            test_reduce_no_cross_kind_merge;
          Alcotest.test_case "guard-0 keeps a producer" `Quick
            test_reduce_guard0_keeps_producer;
          Alcotest.test_case "corpus equivalence" `Quick
            test_reduce_equivalence_corpus;
          Alcotest.test_case "subsumes legacy constants" `Quick
            test_reduce_matches_legacy_on_blackjack;
        ] );
    ]
