(* The optimizer: constant propagation and dead-logic elimination must
   preserve observable behaviour exactly — checked by differential
   simulation on the corpus and on random circuits. *)

open Zeus

let compile src =
  match Zeus.compile src with
  | Ok d -> d
  | Error diags -> Alcotest.failf "compile: %a" Fmt.(list Diag.pp) diags

(* ---- directed reductions ---- *)

let test_constant_folding () =
  (* y := AND(x, OR(1, x)) — the OR is constant 1, so AND(x,1) = buffer;
     the OR gate must fold away *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL one: \
       boolean; BEGIN one := 1; y := AND(x,OR(one,x)) END;\nSIGNAL s: t;"
  in
  let opt, report = Optimize.run d in
  Alcotest.(check bool) "gates reduced" true
    (report.Optimize.gates_after < report.Optimize.gates_before);
  Alcotest.(check bool) "constants found" true
    (report.Optimize.constants_found > 0);
  (* behaviour unchanged *)
  let run design v =
    let sim = Sim.create design in
    Sim.poke_bool sim "s.x" v;
    Sim.step sim;
    Sim.peek_bit sim "s.y"
  in
  List.iter
    (fun v ->
      Alcotest.(check char) "same output"
        (Logic.to_char (run d v))
        (Logic.to_char (run opt v)))
    [ true; false ]

let test_dead_removal () =
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL u: \
       boolean; BEGIN u := NOT x; * := u; y := x END;\nSIGNAL s: t;"
  in
  let _, report = Optimize.run d in
  Alcotest.(check bool) "dead NOT removed" true
    (report.Optimize.gates_after < report.Optimize.gates_before)

let test_guard_folding () =
  (* IF 1 THEN m := x END : the guard folds to an unconditional drive *)
  let d =
    compile
      "CONST on = 1;\n\
       TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL g: \
       boolean; m: multiplex; BEGIN g := on; IF g THEN m := x END; y := m \
       END;\nSIGNAL s: t;"
  in
  let opt, _ = Optimize.run d in
  let sim = Sim.create opt in
  Sim.poke_bool sim "s.x" true;
  Sim.step sim;
  Alcotest.(check char) "folded guard still drives" '1'
    (Logic.to_char (Sim.peek_bit sim "s.y"))

(* ---- equivalence on the corpus ---- *)

let outputs_of design =
  (* OUT/INOUT pins of root instances *)
  let nl = design.Elaborate.netlist in
  List.concat_map
    (fun (i : Netlist.instance) ->
      if String.contains i.Netlist.ipath '.' then []
      else
        List.concat_map
          (fun (_, mode, nets) ->
            match mode with
            | Etype.Out | Etype.Inout -> nets
            | Etype.In -> [])
          i.Netlist.iports)
    (Netlist.instances nl)

let inputs_of design =
  let nl = design.Elaborate.netlist in
  List.concat_map
    (fun (i : Netlist.instance) ->
      if String.contains i.Netlist.ipath '.' then []
      else
        List.concat_map
          (fun (_, mode, nets) ->
            match mode with
            | Etype.In -> nets
            | Etype.Out | Etype.Inout -> [])
          i.Netlist.iports)
    (Netlist.instances nl)

let equivalent ?(cycles = 4) design =
  let opt, _ = Optimize.run design in
  let ins = inputs_of design and outs = outputs_of design in
  let rng = Random.State.make [| 1234 |] in
  let ok = ref true in
  for _trial = 1 to 5 do
    let s1 = Sim.create design and s2 = Sim.create opt in
    Sim.reset s1;
    Sim.reset s2;
    for _c = 1 to cycles do
      let vec =
        List.map
          (fun _ -> if Random.State.bool rng then Logic.One else Logic.Zero)
          ins
      in
      Sim.poke_nets s1 ins vec;
      Sim.poke_nets s2 ins vec;
      Sim.step s1;
      Sim.step s2;
      if Sim.peek_nets s1 outs <> Sim.peek_nets s2 outs then ok := false
    done;
    (* register state must agree as well *)
    if Sim.reg_states s1 <> Sim.reg_states s2 then ok := false
  done;
  !ok

let test_equivalence_corpus () =
  List.iter
    (fun (name, src) ->
      let d = compile src in
      Alcotest.(check bool)
        (name ^ " optimized design equivalent")
        true (equivalent d))
    [
      ("adder4", Corpus.adder4);
      ("blackjack", Corpus.blackjack);
      ("patternmatch3", Corpus.patternmatch 3);
      ("am2901", Corpus.am2901);
      ("counter8", Corpus_fsm.counter 8);
      ("lfsr4", Corpus_fsm.lfsr4);
    ]

let test_reduction_on_blackjack () =
  (* blackjack contains dead logic (the unused plus/minus carry-out), so
     the optimizer must strictly shrink it *)
  let d = compile Corpus.blackjack in
  let _, r = Optimize.run d in
  Alcotest.(check bool)
    (Fmt.str "shrinks (%a)" Optimize.pp_report r)
    true
    (r.Optimize.gates_after < r.Optimize.gates_before)

(* ---- known_constants edge cases ---- *)

let known_of design name =
  let nl = design.Elaborate.netlist in
  let known = Optimize.known_constants design in
  let found = ref None in
  Array.iteri
    (fun i (n : Netlist.net) -> if n.Netlist.name = name then found := Some i)
    (Netlist.nets_array nl);
  match !found with
  | Some i -> Option.map Logic.to_char known.(Netlist.canonical nl i)
  | None -> Alcotest.failf "net %s not in the netlist" name

let test_noinfl_only_net () =
  (* a multiplex whose single producer sits behind a statically-false
     guard carries NOINFL (no influence) — not UNDEF, and not unknown *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL g: \
       boolean; m: multiplex; BEGIN g := 0; IF g THEN m := x END; y := \
       OR(m, x) END;\nSIGNAL s: t;"
  in
  Alcotest.(check (option char))
    "m is NOINFL"
    (Some (Logic.to_char Logic.Noinfl))
    (known_of d "s.m")

let test_register_feedback_constant () =
  (* r.in is the constant 1, but a register output is sequential state
     (it can power up UNDEF): the constant must not propagate through
     the register to r.out or anything fed from it *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL u: \
       boolean; r: REG; BEGIN r.in := 1; u := r.out; y := AND(x, u) \
       END;\nSIGNAL s: t;"
  in
  Alcotest.(check (option char)) "r.in constant" (Some '1')
    (known_of d "s.r.in");
  Alcotest.(check (option char)) "r.out not constant" None
    (known_of d "s.r.out");
  Alcotest.(check (option char)) "copy of r.out not constant" None
    (known_of d "s.u")

let test_alias_class_constants () =
  (* '==' merges alias classes: a constant learned on one name is known
     through every alias of the class *)
  let d =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL a, b: \
       multiplex; BEGIN a == b; a := 1; y := AND(x, b) END;\nSIGNAL s: t;"
  in
  Alcotest.(check (option char)) "alias of a constant is constant" (Some '1')
    (known_of d "s.b");
  (* two always-firing constant drivers landing on one merged class:
     the class has two producers, so it stays conservatively unknown
     even though the drivers agree *)
  let d2 =
    compile
      "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS SIGNAL g: \
       boolean; a, b: multiplex; BEGIN g := 1; a == b; IF g THEN a := 1 \
       END; IF g THEN b := 1 END; y := AND(x, a) END;\nSIGNAL s: t;"
  in
  Alcotest.(check (option char)) "two agreeing constants stay unknown" None
    (known_of d2 "s.a")

let () =
  Alcotest.run "optimize"
    [
      ( "directed",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "dead removal" `Quick test_dead_removal;
          Alcotest.test_case "guard folding" `Quick test_guard_folding;
        ] );
      ( "known-constants",
        [
          Alcotest.test_case "NOINFL-only net" `Quick test_noinfl_only_net;
          Alcotest.test_case "register feedback" `Quick
            test_register_feedback_constant;
          Alcotest.test_case "alias-class merging" `Quick
            test_alias_class_constants;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "corpus" `Quick test_equivalence_corpus;
          Alcotest.test_case "blackjack shrinks" `Quick
            test_reduction_on_blackjack;
        ] );
    ]
