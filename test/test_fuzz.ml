(* Whole-pipeline differential fuzzing: generate random well-formed Zeus
   programs as *source text*, run them through lexer, parser, elaborator,
   checker and all three simulator engines, and compare each output
   against direct evaluation of the generating circuit description.

   This exercises the full stack at once: any disagreement between the
   printed program's simulation and the OCaml-side evaluation is a bug
   somewhere in the pipeline. *)

open Zeus

(* a random combinational circuit: [n_in] primary inputs, then a list of
   internal nodes, each a gate over earlier wires *)
type gate_kind =
  | Gand
  | Gor
  | Gnand
  | Gnor
  | Gxor
  | Gnot

type node = {
  kind : gate_kind;
  args : int list; (* indices < current node; 0..n_in-1 are inputs *)
}

type circuit = {
  n_in : int;
  nodes : node list;
}

let kind_name = function
  | Gand -> "AND"
  | Gor -> "OR"
  | Gnand -> "NAND"
  | Gnor -> "NOR"
  | Gxor -> "XOR"
  | Gnot -> "NOT"

let gen_circuit =
  QCheck.Gen.(
    int_range 1 6 >>= fun n_in ->
    int_range 1 25 >>= fun n_nodes ->
    let gen_node idx =
      let wires = n_in + idx in
      oneofl [ Gand; Gor; Gnand; Gnor; Gxor; Gnot ] >>= fun kind ->
      match kind with
      | Gnot ->
          map (fun a -> { kind; args = [ a ] }) (int_range 0 (wires - 1))
      | _ ->
          int_range 2 4 >>= fun arity ->
          map
            (fun args -> { kind; args })
            (list_repeat arity (int_range 0 (wires - 1)))
    in
    let rec nodes idx acc =
      if idx >= n_nodes then return (List.rev acc)
      else gen_node idx >>= fun n -> nodes (idx + 1) (n :: acc)
    in
    map (fun nodes -> { n_in; nodes }) (nodes 0 []))

(* print the circuit as a Zeus component *)
let to_zeus c =
  let buf = Buffer.create 512 in
  let ins =
    String.concat "," (List.init c.n_in (fun i -> Printf.sprintf "x%d" i))
  in
  Buffer.add_string buf
    (Printf.sprintf "TYPE t = COMPONENT (IN %s: boolean; OUT out: boolean) IS\n"
       ins);
  Buffer.add_string buf
    (Printf.sprintf "SIGNAL %s: boolean;\n"
       (String.concat ","
          (List.mapi (fun i _ -> Printf.sprintf "w%d" (c.n_in + i)) c.nodes)));
  Buffer.add_string buf "BEGIN\n";
  let wire i = if i < c.n_in then Printf.sprintf "x%d" i else Printf.sprintf "w%d" i in
  List.iteri
    (fun i node ->
      let lhs = Printf.sprintf "w%d" (c.n_in + i) in
      let rhs =
        match node.kind with
        | Gnot -> Printf.sprintf "NOT %s" (wire (List.hd node.args))
        | k ->
            Printf.sprintf "%s(%s)" (kind_name k)
              (String.concat "," (List.map wire node.args))
      in
      Buffer.add_string buf (Printf.sprintf "  %s := %s;\n" lhs rhs))
    c.nodes;
  let last = c.n_in + List.length c.nodes - 1 in
  Buffer.add_string buf (Printf.sprintf "  out := %s\n" (wire last));
  Buffer.add_string buf "END;\nSIGNAL s: t;\n";
  Buffer.contents buf

(* direct evaluation over the four-valued domain *)
let eval_circuit c (inputs : Logic.t array) =
  let values = Array.make (c.n_in + List.length c.nodes) Logic.Undef in
  Array.blit inputs 0 values 0 c.n_in;
  List.iteri
    (fun i node ->
      let args = List.map (fun a -> values.(a)) node.args in
      let v =
        match node.kind with
        | Gand -> Logic.and_list args
        | Gor -> Logic.or_list args
        | Gnand -> Logic.nand_list args
        | Gnor -> Logic.nor_list args
        | Gxor -> Logic.xor_list args
        | Gnot -> Logic.not_ (List.hd args)
      in
      values.(c.n_in + i) <- v)
    c.nodes;
  values.(c.n_in + List.length c.nodes - 1)

let print_circuit c = to_zeus c

let arb_circuit = QCheck.make ~print:print_circuit gen_circuit

let gen_inputs n =
  QCheck.Gen.(list_repeat n (oneofl [ Logic.Zero; Logic.One; Logic.Undef ]))

(* compile once, evaluate under random input vectors with each engine *)
let prop_random_circuits =
  QCheck.Test.make ~count:150 ~name:"random_circuit_pipeline"
    arb_circuit
    (fun c ->
      let src = to_zeus c in
      match Zeus.compile src with
      | Error diags ->
          QCheck.Test.fail_reportf "did not compile:@.%s@.%a" src
            Fmt.(list Diag.pp)
            diags
      | Ok design ->
          let vectors =
            QCheck.Gen.generate ~n:5 ~rand:(Random.State.make [| 99 |])
              (gen_inputs c.n_in)
          in
          List.for_all
            (fun vec ->
              let inputs = Array.of_list vec in
              let expected = eval_circuit c inputs in
              List.for_all
                (fun engine ->
                  let sim = Sim.create ~engine design in
                  Array.iteri
                    (fun i v -> Sim.poke sim (Printf.sprintf "s.x%d" i) [ v ])
                    inputs;
                  Sim.step sim;
                  let got = Sim.peek_bit sim "s.out" in
                  if not (Logic.equal got expected) then
                    QCheck.Test.fail_reportf
                      "engine %s: expected %a, got %a for@.%s"
                      (Sim.engine_name engine) Logic.pp expected Logic.pp got
                      src
                  else true)
                Sim.all_engines)
            vectors)

(* pretty-print round trip on random programs *)
let prop_random_roundtrip =
  QCheck.Test.make ~count:100 ~name:"random_circuit_pretty_roundtrip"
    arb_circuit
    (fun c ->
      let src = to_zeus c in
      match Parser.program src with
      | None, _ -> false
      | Some p1, _ -> (
          let printed = Pretty.program_to_string p1 in
          match Parser.program printed with
          | None, _ -> false
          | Some p2, _ ->
              Pretty.program_to_string p2 = printed))

(* random register pipelines: a chain of REGs must delay by its length *)
let prop_register_pipeline =
  QCheck.Test.make ~count:30 ~name:"register_pipeline_delay"
    QCheck.(pair (int_range 1 10) (list_of_size (QCheck.Gen.int_range 12 24) bool))
    (fun (depth, stream) ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        "TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS\n";
      Buffer.add_string buf
        (Printf.sprintf "SIGNAL r: ARRAY[1..%d] OF REG;\nBEGIN\n" depth);
      Buffer.add_string buf "  r[1].in := d;\n";
      for i = 2 to depth do
        Buffer.add_string buf
          (Printf.sprintf "  r[%d].in := r[%d].out;\n" i (i - 1))
      done;
      Buffer.add_string buf
        (Printf.sprintf "  q := r[%d].out\nEND;\nSIGNAL s: t;\n" depth);
      let design = Zeus.compile_exn (Buffer.contents buf) in
      let sim = Sim.create design in
      let outputs =
        List.map
          (fun b ->
            Sim.poke_bool sim "s.d" b;
            Sim.step sim;
            Sim.peek_bit sim "s.q")
          stream
      in
      (* output k equals input k-depth *)
      List.for_all2
        (fun i (out : Logic.t) ->
          if i < depth then true
          else Logic.equal out (Logic.of_bool (List.nth stream (i - depth))))
        (List.init (List.length stream) Fun.id)
        outputs)

(* random mux trees through IF chains agree with direct selection *)
let prop_random_mux =
  QCheck.Test.make ~count:60 ~name:"random_if_chain_select"
    QCheck.(pair (int_range 1 4) (int_bound 15))
    (fun (bits, data) ->
      let n = 1 lsl bits in
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf
           "TYPE t = COMPONENT (IN a: ARRAY[1..%d] OF boolean; OUT z: \
            boolean) IS\nSIGNAL h: multiplex;\nBEGIN\n"
           bits);
      for k = 0 to n - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  IF EQUAL(a,BIN(%d,%d)) THEN h := %d END;\n" k
             bits
             ((data lsr (k mod 4)) land 1))
      done;
      Buffer.add_string buf "  z := h\nEND;\nSIGNAL s: t;\n";
      let design = Zeus.compile_exn (Buffer.contents buf) in
      let sim = Sim.create design in
      List.for_all
        (fun k ->
          Sim.poke_int sim "s.a" k;
          Sim.step sim;
          Logic.equal
            (Sim.peek_bit sim "s.z")
            (Logic.of_bool ((data lsr (k mod 4)) land 1 = 1))
          && Sim.runtime_errors sim = [])
        (List.init n Fun.id))

let () =
  Alcotest.run "fuzz"
    [
      ( "pipeline",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_circuits;
            prop_random_roundtrip;
            prop_register_pipeline;
            prop_random_mux;
          ] );
    ]
