(* Whole-pipeline differential fuzzing, built on the lib/gen program
   generator (Zeus.Gen / Zeus.Oracle).

   Two complementary oracles:

   - the combinational subset is checked against [Gen.eval_comb], a
     direct OCaml-side evaluation of the generating description that
     never touches the parser, elaborator or any simulator engine —
     any disagreement is a bug somewhere in the pipeline;

   - full-language programs (registers, recursive chains, guarded
     multiplex drivers, RSET, UNDEF stimulus) are checked with the
     differential oracle matrix of [Oracle.check]: pretty-print
     fixpoint, re-elaboration, all six simulator engines cycle by
     cycle, and lint-vs-runtime consistency.

   Failing cases shrink through [Gen.shrink_steps] to a minimal
   program + poke sequence, printed as Zeus source. *)

open Zeus

let seed_state k = Random.State.make [| 0x5eed; k |]

(* ------------------------------------------------------------------ *)
(* Combinational subset vs the direct evaluator                         *)
(* ------------------------------------------------------------------ *)

let arb_comb =
  let g = Gen.gen ~profile:Gen.comb () in
  QCheck.make ~print:Gen.to_zeus
    ~shrink:(fun p yield ->
      List.iter (fun (p', _) -> yield p') (Gen.shrink_steps (p, [])))
    g

let gen_inputs n =
  QCheck.Gen.(list_repeat n (oneofl [ Logic.Zero; Logic.One; Logic.Undef ]))

(* compile once, evaluate under random input vectors with each of the
   seven engines, and compare every OUT port against direct evaluation *)
let prop_comb_direct_oracle =
  QCheck.Test.make ~count:150 ~name:"comb_direct_oracle" arb_comb (fun p ->
      let src = Gen.to_zeus p in
      match Zeus.compile src with
      | Error diags ->
          QCheck.Test.fail_reportf "did not compile:@.%s@.%a" src
            Fmt.(list Diag.pp)
            diags
      | Ok design ->
          let vectors =
            QCheck.Gen.generate ~n:5 ~rand:(seed_state 99)
              (gen_inputs p.Gen.n_in)
          in
          List.for_all
            (fun vec ->
              let inputs = Array.of_list vec in
              let expected = Gen.eval_comb p inputs in
              List.for_all
                (fun engine ->
                  let sim = Sim.create ~engine design in
                  Array.iteri
                    (fun i v -> Sim.poke sim (Printf.sprintf "s.x%d" i) [ v ])
                    inputs;
                  Sim.step sim;
                  List.for_all
                    (fun (port, want) ->
                      let got = Sim.peek_bit sim ("s." ^ port) in
                      if not (Logic.equal got want) then
                        QCheck.Test.fail_reportf
                          "engine %s, port %s: expected %a, got %a for@.%s"
                          (Sim.engine_name engine) port Logic.pp want Logic.pp
                          got src
                      else true)
                    expected)
                Sim.all_engines)
            vectors)

(* ------------------------------------------------------------------ *)
(* Full language vs the oracle matrix                                   *)
(* ------------------------------------------------------------------ *)

(* one property = the whole conformance suite: any row of the matrix
   failing (parse, pp-fixpoint, compile, any engine vs firing,
   re-elaboration, lint vs runtime) is a counterexample, and the
   IR-level shrinker reduces it before reporting *)
let prop_oracle_matrix =
  QCheck.Test.make ~count:250 ~name:"oracle_matrix_full_language"
    (Gen.arbitrary ())
    (fun (p, stim) ->
      match Oracle.check ~src:(Gen.to_zeus p) stim with
      | [] -> true
      | d :: _ ->
          QCheck.Test.fail_reportf "%a@.%s" Oracle.pp_divergence d
            (Gen.print_case (p, stim)))

(* the pretty-print fixpoint on its own, for sharper failure reports *)
let prop_roundtrip =
  QCheck.Test.make ~count:100 ~name:"pretty_roundtrip"
    (QCheck.make ~print:Gen.to_zeus (Gen.gen ()))
    (fun p ->
      let src = Gen.to_zeus p in
      match Parser.program src with
      | None, _ -> false
      | Some p1, _ -> (
          let printed = Pretty.program_to_string p1 in
          match Parser.program printed with
          | None, _ -> false
          | Some p2, _ -> Pretty.program_to_string p2 = printed))

(* regression: NOT binds to a single primary, so a nested NOT needs
   grouping parentheses when printed — found by the fuzzer *)
let test_nested_not_roundtrip () =
  let src =
    "TYPE t = COMPONENT (IN a: boolean; OUT z: boolean) IS BEGIN z := NOT \
     (NOT a) END; SIGNAL s: t;"
  in
  match Parser.program src with
  | None, _ -> Alcotest.fail "nested NOT did not parse"
  | Some p1, _ -> (
      let printed = Pretty.program_to_string p1 in
      match Parser.program printed with
      | None, _ ->
          Alcotest.failf "pretty-printed nested NOT does not reparse:@.%s"
            printed
      | Some p2, _ ->
          Alcotest.(check string)
            "fixpoint" printed
            (Pretty.program_to_string p2))

(* ------------------------------------------------------------------ *)
(* Parallel identity: domain count is unobservable                      *)
(* ------------------------------------------------------------------ *)

(* the domain-parallel engine at jobs 1, 2, 4 and 7 (grain 1: every
   dirty level goes through the pool) produces cycle-for-cycle
   identical snapshots AND identical runtime-error traces to the
   incremental engine on random full-language programs; divergences
   shrink through the IR shrinker like every other oracle failure *)
let prop_parallel_identity =
  QCheck.Test.make ~count:120 ~name:"parallel_identity"
    (Gen.arbitrary ())
    (fun (p, stim) ->
      match Oracle.compile (Gen.to_zeus p) with
      | Error _ -> true (* compile failures belong to the matrix property *)
      | Ok design ->
          let reference = Oracle.run_engine design Sim.Incremental stim in
          List.for_all
            (fun jobs ->
              let r =
                Oracle.run_engine ~jobs ~grain:1 design Sim.Parallel stim
              in
              if r.Oracle.snaps <> reference.Oracle.snaps then
                QCheck.Test.fail_reportf
                  "parallel(jobs=%d) snapshots differ from incremental for@.%s"
                  jobs
                  (Gen.print_case (p, stim))
              else if r.Oracle.errors <> reference.Oracle.errors then
                QCheck.Test.fail_reportf
                  "parallel(jobs=%d) error trace differs from incremental \
                   for@.%s"
                  jobs
                  (Gen.print_case (p, stim))
              else true)
            [ 1; 2; 4; 7 ])

(* ------------------------------------------------------------------ *)
(* Optimize identity: the proof-carrying reduction is unobservable      *)
(* ------------------------------------------------------------------ *)

(* [Reduce.run] (cone-of-influence + constant folding + copy
   propagation over the Absint fixpoint) preserves the value of every
   net the analysis marked observable, cycle for cycle, on random
   full-language programs.  Snapshots are compared through each
   design's own class map — reduction merges copy classes, so class
   ids differ between the two designs and only the per-net root slots
   are comparable.  Counterexamples shrink through the IR shrinker. *)
let prop_optimize_identity =
  QCheck.Test.make ~count:100 ~name:"optimize_identity"
    (Gen.arbitrary ())
    (fun (p, stim) ->
      match Oracle.compile (Gen.to_zeus p) with
      | Error _ -> true (* compile failures belong to the matrix property *)
      | Ok design ->
          let r = Reduce.run design in
          let ai = r.Reduce.ai in
          let g1 = Graph.build design
          and g2 = Graph.build r.Reduce.design in
          let reference = Oracle.run_engine design Sim.Incremental stim in
          let optimized =
            Oracle.run_engine r.Reduce.design Sim.Incremental stim
          in
          if
            List.length reference.Oracle.snaps
            <> List.length optimized.Oracle.snaps
          then
            QCheck.Test.fail_reportf
              "optimized run has a different cycle count for@.%s"
              (Gen.print_case (p, stim))
          else begin
            List.iter2
              (fun (s1 : Logic.t option array) (s2 : Logic.t option array) ->
                Array.iteri
                  (fun c root ->
                    if ai.Absint.observable.(ai.Absint.canon.(root)) then begin
                      let slot2 = g2.Graph.rep.(g2.Graph.canon.(root)) in
                      if s1.(root) <> s2.(slot2) then
                        QCheck.Test.fail_reportf
                          "observable net %s differs after reduction for@.%s"
                          g1.Graph.names.(c)
                          (Gen.print_case (p, stim))
                    end)
                  g1.Graph.rep)
              reference.Oracle.snaps optimized.Oracle.snaps;
            true
          end)

(* ------------------------------------------------------------------ *)
(* Sequential: register pipelines delay by their depth                  *)
(* ------------------------------------------------------------------ *)

let prop_register_pipeline =
  QCheck.Test.make ~count:30 ~name:"register_pipeline_delay"
    QCheck.(pair (int_range 1 10) (list_of_size (QCheck.Gen.int_range 12 24) bool))
    (fun (depth, stream) ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        "TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS\n";
      Buffer.add_string buf
        (Printf.sprintf "SIGNAL r: ARRAY[1..%d] OF REG;\nBEGIN\n" depth);
      Buffer.add_string buf "  r[1].in := d;\n";
      for i = 2 to depth do
        Buffer.add_string buf
          (Printf.sprintf "  r[%d].in := r[%d].out;\n" i (i - 1))
      done;
      Buffer.add_string buf
        (Printf.sprintf "  q := r[%d].out\nEND;\nSIGNAL s: t;\n" depth);
      let design = Zeus.compile_exn (Buffer.contents buf) in
      let sim = Sim.create design in
      let outputs =
        List.map
          (fun b ->
            Sim.poke_bool sim "s.d" b;
            Sim.step sim;
            Sim.peek_bit sim "s.q")
          stream
      in
      (* output k equals input k-depth *)
      List.for_all2
        (fun i (out : Logic.t) ->
          if i < depth then true
          else Logic.equal out (Logic.of_bool (List.nth stream (i - depth))))
        (List.init (List.length stream) Fun.id)
        outputs)

(* ------------------------------------------------------------------ *)
(* Multiplex: IF chains agree with direct selection                     *)
(* ------------------------------------------------------------------ *)

let prop_random_mux =
  QCheck.Test.make ~count:60 ~name:"random_if_chain_select"
    QCheck.(pair (int_range 1 4) (int_bound 15))
    (fun (bits, data) ->
      let n = 1 lsl bits in
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf
           "TYPE t = COMPONENT (IN a: ARRAY[1..%d] OF boolean; OUT z: \
            boolean) IS\nSIGNAL h: multiplex;\nBEGIN\n"
           bits);
      for k = 0 to n - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  IF EQUAL(a,BIN(%d,%d)) THEN h := %d END;\n" k
             bits
             ((data lsr (k mod 4)) land 1))
      done;
      Buffer.add_string buf "  z := h\nEND;\nSIGNAL s: t;\n";
      let design = Zeus.compile_exn (Buffer.contents buf) in
      let sim = Sim.create design in
      List.for_all
        (fun k ->
          Sim.poke_int sim "s.a" k;
          Sim.step sim;
          Logic.equal
            (Sim.peek_bit sim "s.z")
            (Logic.of_bool ((data lsr (k mod 4)) land 1 = 1))
          && Sim.runtime_errors sim = [])
        (List.init n Fun.id))

(* ------------------------------------------------------------------ *)
(* The fuzz driver itself: deterministic replay and clean baseline       *)
(* ------------------------------------------------------------------ *)

let test_fuzz_driver_clean () =
  let summary =
    Fuzz.run ~count:100 ~seed:0 ~corpus_dir:None ()
  in
  Alcotest.(check int) "tested" 100 summary.Fuzz.tested;
  Alcotest.(check int) "no divergences" 0 (List.length summary.Fuzz.failures)

let test_fuzz_deterministic () =
  let case1 = Fuzz.gen_case ~profile:Gen.full ~seed:7 ~index:3 in
  let case2 = Fuzz.gen_case ~profile:Gen.full ~seed:7 ~index:3 in
  Alcotest.(check string)
    "same source" (Gen.to_zeus (fst case1))
    (Gen.to_zeus (fst case2));
  Alcotest.(check string)
    "same pokes"
    (Gen.stimulus_to_string (snd case1))
    (Gen.stimulus_to_string (snd case2))

let () =
  Alcotest.run "fuzz"
    [
      ( "pipeline",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_comb_direct_oracle;
            prop_oracle_matrix;
            prop_parallel_identity;
            prop_optimize_identity;
            prop_roundtrip;
            prop_register_pipeline;
            prop_random_mux;
          ] );
      ( "driver",
        [
          Alcotest.test_case "nested NOT roundtrip" `Quick
            test_nested_not_roundtrip;
          Alcotest.test_case "100 cases clean" `Quick test_fuzz_driver_clean;
          Alcotest.test_case "deterministic replay" `Quick
            test_fuzz_deterministic;
        ] );
    ]
