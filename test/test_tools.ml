(* The tooling layer: Testbench harness, netlist Stats, and the zeusc
   plumbing (dot output structure). *)

open Zeus

let compile src =
  match Zeus.compile src with
  | Ok d -> d
  | Error diags -> Alcotest.failf "compile: %a" Fmt.(list Diag.pp) diags

(* ---- Testbench ---- *)

let test_testbench_pass () =
  let d = compile (Corpus.adder_n 4) in
  let tb = Testbench.create d in
  Testbench.run_table tb
    ~inputs:[ "adder.a"; "adder.b"; "adder.cin" ]
    ~outputs:[ "adder.cout" ]
    [
      (* run_table pokes MSB-first while the paper's adder is LSB-first;
         bit-palindromic values (0,6,9,15) read the same either way *)
      ([ 9; 6; 0 ], [ 0 ]);
      (* 9+6=15: no carry *)
      ([ 9; 9; 0 ], [ 1 ]);
      (* 18: carry *)
      ([ 15; 15; 1 ], [ 1 ]);
    ];
  Alcotest.(check bool) "ok" true (Testbench.ok tb);
  Alcotest.(check int) "no failures" 0 (List.length (Testbench.failures tb))

let test_testbench_fail_reporting () =
  let d = compile (Corpus.adder_n 4) in
  let tb = Testbench.create d in
  Testbench.set_lsb tb "adder.a" 2;
  Testbench.set_lsb tb "adder.b" 2;
  Testbench.set_bool tb "adder.cin" false;
  Testbench.clock tb;
  Testbench.expect_int_lsb tb "adder.s" 5 (* wrong on purpose: 2+2=4 *);
  Alcotest.(check bool) "not ok" false (Testbench.ok tb);
  match Testbench.failures tb with
  | [ f ] ->
      Alcotest.(check string) "signal" "adder.s" f.Testbench.signal;
      Alcotest.(check string) "expected" "5" f.Testbench.expected;
      Alcotest.(check string) "actual" "4" f.Testbench.actual
  | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs)

let test_testbench_expect_bits () =
  let d = compile (Corpus.adder_n 2) in
  let tb = Testbench.create d in
  Testbench.set_bits tb "adder.a" [ Logic.One; Logic.Undef ];
  Testbench.set_lsb tb "adder.b" 0;
  Testbench.set_bool tb "adder.cin" false;
  Testbench.clock tb;
  (* a[2] undefined poisons s[2] but not s[1]... a[1]+0 is defined *)
  Testbench.expect_bits tb "adder.s[1]" [ Logic.One ];
  Alcotest.(check bool) "bit check passes" true (Testbench.failures tb = [])

(* ---- Stats ---- *)

let test_stats_counts () =
  let d = compile (Corpus.adder_n 8) in
  let s = Stats.of_netlist d.Elaborate.netlist in
  Alcotest.(check int) "gates" 40 s.Stats.gates;
  Alcotest.(check int) "instances" 25 s.Stats.instances;
  Alcotest.(check bool) "histogram covers all gates" true
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Stats.gate_histogram
    = s.Stats.gates)

let test_stats_depth_scales () =
  (* ripple-carry depth grows linearly with width *)
  let depth n =
    let d = compile (Corpus.adder_n n) in
    (Stats.of_netlist d.Elaborate.netlist).Stats.depth
  in
  let d8 = depth 8 and d16 = depth 16 and d32 = depth 32 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone (%d < %d < %d)" d8 d16 d32)
    true
    (d8 < d16 && d16 < d32);
  (* roughly linear: d32 / d8 should be close to 4 *)
  let ratio = float_of_int d32 /. float_of_int d8 in
  Alcotest.(check bool)
    (Printf.sprintf "linear-ish ratio %.2f" ratio)
    true
    (ratio > 3.0 && ratio < 5.0)

let test_stats_regs_break_depth () =
  (* a REG pipeline has constant combinational depth regardless of
     length *)
  let pipeline n =
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      "TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS\n";
    Buffer.add_string buf
      (Printf.sprintf "SIGNAL r: ARRAY[1..%d] OF REG;\nBEGIN\n" n);
    Buffer.add_string buf "  r[1].in := d;\n";
    for i = 2 to n do
      Buffer.add_string buf
        (Printf.sprintf "  r[%d].in := NOT r[%d].out;\n" i (i - 1))
    done;
    Buffer.add_string buf
      (Printf.sprintf "  q := r[%d].out\nEND;\nSIGNAL s: t;\n" n);
    let d = compile (Buffer.contents buf) in
    (Stats.of_netlist d.Elaborate.netlist).Stats.depth
  in
  Alcotest.(check int) "depth independent of pipeline length" (pipeline 4)
    (pipeline 32)

let test_stats_alias_classes () =
  let d =
    compile
      "TYPE t = COMPONENT (em,fm,gm: multiplex; IN a: boolean) IS BEGIN em \
       == fm; fm == gm; IF a THEN em := 1 END END; SIGNAL s: t;"
  in
  let s = Stats.of_netlist d.Elaborate.netlist in
  Alcotest.(check int) "one alias class" 1 s.Stats.alias_classes

(* ---- Explain ---- *)

let test_explain_traces_undef () =
  let d = compile (Corpus.adder_n 2) in
  let sim = Sim.create d in
  Sim.poke_int_lsb sim "adder.b" 1;
  (* a and cin left floating *)
  Sim.step sim;
  let entries = Explain.explain sim "adder.s[1]" ~depth:8 in
  Alcotest.(check bool) "several levels" true (List.length entries >= 3);
  (* the trail ends at an undriven/testbench input *)
  Alcotest.(check bool) "reaches an input" true
    (List.exists (fun e -> e.Explain.reason = Explain.Input) entries);
  let text = Explain.to_string entries in
  Alcotest.(check bool) "mentions the asked signal" true
    (String.length text > 0)

let test_explain_register () =
  let d = compile (Corpus_fsm.counter 2) in
  let sim = Sim.create d in
  Sim.poke_bool sim "c.en" true;
  Sim.reset sim;
  Sim.step sim;
  let entries = Explain.explain sim "c.value[2]" ~depth:2 in
  Alcotest.(check bool) "finds the register" true
    (List.exists
       (fun e -> match e.Explain.reason with Explain.Register _ -> true | _ -> false)
       entries)

let test_explain_guarded_driver () =
  let d =
    compile
      "TYPE t = COMPONENT (IN b,x: boolean; m: multiplex) IS BEGIN IF b \
       THEN m := x END END;\nSIGNAL s: t;"
  in
  let sim = Sim.create d in
  Sim.poke_bool sim "s.b" false;
  Sim.poke_bool sim "s.x" true;
  Sim.step sim;
  let entries = Explain.explain sim "s.m" ~depth:1 in
  match entries with
  | { Explain.reason = Explain.Drivers [ f ]; value; _ } :: _ ->
      Alcotest.(check char) "net floats" 'Z' (Logic.to_char value);
      Alcotest.(check char) "driver produced NOINFL" 'Z'
        (Logic.to_char f.Explain.produced);
      (match f.Explain.guard with
      | Some (_, gv) -> Alcotest.(check char) "guard is 0" '0' (Logic.to_char gv)
      | None -> Alcotest.fail "expected a guard")
  | _ -> Alcotest.fail "expected one guarded driver"

(* ---- switching activity ---- *)

let test_activity_counter () =
  let d = compile (Corpus_fsm.counter 4) in
  let sim = Sim.create d in
  Sim.poke_bool sim "c.en" true;
  Sim.reset sim;
  Sim.step_n sim 16;
  (* a binary counter's LSB toggles every cycle, the MSB rarely: the
     activity ranking must reflect it *)
  let act = Sim.activity ~top:50 sim in
  let count path = Option.value ~default:0 (List.assoc_opt path act) in
  let lsb = count "c.st[4].out" and msb = count "c.st[1].out" in
  Alcotest.(check bool)
    (Printf.sprintf "lsb (%d) toggles more than msb (%d)" lsb msb)
    true (lsb > msb && msb > 0);
  Alcotest.(check bool) "total positive" true (Sim.total_toggles sim > 0)

let test_activity_idle_design () =
  let d = compile (Corpus.adder_n 4) in
  let sim = Sim.create d in
  Sim.poke_int_lsb sim "adder.a" 5;
  Sim.poke_int_lsb sim "adder.b" 3;
  Sim.poke_bool sim "adder.cin" false;
  Sim.step_n sim 10;
  (* constant inputs: nothing toggles after the first cycle *)
  Alcotest.(check int) "no switching under constant inputs" 0
    (Sim.total_toggles sim)

(* ---- graph/dot structure ---- *)

let test_graph_shape () =
  let d = compile (Corpus.adder_n 2) in
  let g = Graph.build d in
  Alcotest.(check int) "nodes = gates + drivers"
    (List.length (Netlist.gates d.Elaborate.netlist)
    + List.length (Netlist.drivers d.Elaborate.netlist))
    (Array.length g.Graph.nodes);
  (* every node's output is a valid class id *)
  Array.iter
    (fun node ->
      let out = Graph.node_output node in
      Alcotest.(check bool) "output in range" true
        (out >= 0 && out < g.Graph.n_classes))
    g.Graph.nodes;
  (* compaction invariants: canon maps into the dense range, rep inverts
     it, and the CSR producer table matches producer_count *)
  Alcotest.(check bool) "classes <= nets" true (g.Graph.n_classes <= g.Graph.n_nets);
  Array.iter
    (fun c ->
      Alcotest.(check bool) "canon in range" true
        (c >= 0 && c < g.Graph.n_classes))
    g.Graph.canon;
  Array.iteri
    (fun c root ->
      Alcotest.(check int) "rep is a section of canon" c g.Graph.canon.(root))
    g.Graph.rep;
  for c = 0 to g.Graph.n_classes - 1 do
    Alcotest.(check int) "producer_count matches CSR"
      (g.Graph.prod_off.(c + 1) - g.Graph.prod_off.(c))
      g.Graph.producer_count.(c)
  done;
  (* consumer lists point back at nodes that really read the class *)
  for c = 0 to g.Graph.n_classes - 1 do
    Graph.iter_consumers g c (fun node ->
        let reads =
          List.exists
            (function Netlist.Snet s -> s = c | Netlist.Sconst _ -> false)
            (Graph.node_inputs g.Graph.nodes.(node))
        in
        Alcotest.(check bool) "consumer reads class" true reads)
  done;
  (* the static schedule levelizes an acyclic design completely *)
  let sched = Sched.build g in
  Alcotest.(check bool) "adder schedule is acyclic" true sched.Sched.acyclic;
  Array.iteri
    (fun i node ->
      List.iter
        (function
          | Netlist.Snet s ->
              Alcotest.(check bool) "net level < node level" true
                (sched.Sched.net_level.(s) < sched.Sched.node_level.(i))
          | Netlist.Sconst _ -> ())
        (Graph.node_inputs node))
    g.Graph.nodes

let () =
  Alcotest.run "tools"
    [
      ( "testbench",
        [
          Alcotest.test_case "pass" `Quick test_testbench_pass;
          Alcotest.test_case "failure reporting" `Quick
            test_testbench_fail_reporting;
          Alcotest.test_case "bit expectations" `Quick
            test_testbench_expect_bits;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counts" `Quick test_stats_counts;
          Alcotest.test_case "depth scales" `Quick test_stats_depth_scales;
          Alcotest.test_case "regs break depth" `Quick
            test_stats_regs_break_depth;
          Alcotest.test_case "alias classes" `Quick test_stats_alias_classes;
        ] );
      ( "explain",
        [
          Alcotest.test_case "traces undef" `Quick test_explain_traces_undef;
          Alcotest.test_case "register" `Quick test_explain_register;
          Alcotest.test_case "guarded driver" `Quick
            test_explain_guarded_driver;
        ] );
      ( "activity",
        [
          Alcotest.test_case "counter ranking" `Quick test_activity_counter;
          Alcotest.test_case "idle design" `Quick test_activity_idle_design;
        ] );
      ("graph", [ Alcotest.test_case "shape" `Quick test_graph_shape ]);
    ]
