(* Generator behind test/golden/verilog_corpus.txt: locks the Verilog
   emission for every corpus design.  The full text would be ~870KB
   across the corpus, so each design is locked by its structure (module
   header, port list with Zeus paths, net/reg counts) plus an MD5 of
   the complete emitted text — any byte of drift shows up — and two
   small designs (mux4, section8) are locked verbatim so review diffs
   stay readable.  Refresh with `dune promote` after an intentional
   emitter change. *)

let () =
  List.iter
    (fun (name, src) ->
      Printf.printf "== %s ==\n" name;
      let design = Zeus.compile_exn src in
      match Zeus.Verilog.export design with
      | Error e ->
          Printf.printf "ERROR %s\n\n" (Zeus.Verilog.error_to_string e)
      | Ok v ->
          Printf.printf "module %s ports=%d nets=%d regs=%d md5=%s\n"
            v.Zeus.Verilog.module_name
            (List.length v.Zeus.Verilog.ports)
            v.Zeus.Verilog.net_count v.Zeus.Verilog.reg_count
            (Digest.to_hex (Digest.string v.Zeus.Verilog.text));
          List.iter
            (fun (p : Zeus.Verilog.port) ->
              Printf.printf "  %s %s (%s)\n"
                (match p.Zeus.Verilog.pdir with
                | Zeus.Verilog.Input -> "input "
                | Zeus.Verilog.Output -> "output")
                p.Zeus.Verilog.pname p.Zeus.Verilog.ppath)
            v.Zeus.Verilog.ports;
          if name = "mux4" || name = "section8" then begin
            print_string "--\n";
            print_string v.Zeus.Verilog.text
          end;
          print_newline ())
    (Zeus.Corpus.all_named @ Zeus.Corpus_fsm.all_named)
