(* The modular component-summary analysis (Z401-Z406): per-type port
   contracts, symbolic parameter checking, type-level cycle detection,
   the persistent summary cache, and the soundness contract against the
   elaborated lint. *)

open Zeus

let parse src =
  match Parser.program src with
  | Some p, _ -> p
  | None, bag ->
      Alcotest.failf "did not parse: %a"
        Fmt.(list Diag.pp)
        (Diag.Bag.errors bag)

let analyze ?symbolic ?cache_dir src =
  Summary.analyze ?symbolic ?cache_dir ~src (parse src)

let codes (r : Summary.result) =
  List.filter_map (fun (d : Diag.t) -> d.Diag.code) r.Summary.findings

let has_code r c = List.mem c (codes r)

let errors (r : Summary.result) =
  List.filter
    (fun (d : Diag.t) -> d.Diag.severity = Diag.Error)
    r.Summary.findings

(* ------------------------------------------------------------------ *)
(* Symbolic proofs on the recursive families                            *)
(* ------------------------------------------------------------------ *)

(* the H-tree: proved conflict-safe and cycle-free for ALL parameter
   values, including at the fully symbolic signature htree(any) *)
let test_htree_proven () =
  let r = analyze (Corpus.htree 16) in
  List.iter
    (fun ty ->
      Alcotest.(check bool)
        (ty ^ " conflict-safe") true
        (List.mem ty r.Summary.proven_conflict_safe);
      Alcotest.(check bool)
        (ty ^ " cycle-free") true
        (List.mem ty r.Summary.proven_cycle_free))
    [ "htree"; "leaftype" ];
  Alcotest.(check (list string)) "no error findings" []
    (List.map Diag.to_string (errors r));
  Alcotest.(check bool) "no fallbacks" true (r.Summary.fallbacks = []);
  (* the published contract agrees with the proven lists *)
  let c = List.assoc "htree" r.Summary.contracts in
  Alcotest.(check bool) "contract conflict_safe" true c.Contract.c_conflict_safe;
  Alcotest.(check bool) "contract cycle_free" true c.Contract.c_cycle_free

(* the routing network: output[i] vs output[i + n DIV 2] index
   disjointness and WHEN-arm exclusivity, proved symbolically *)
let test_routing_proven () =
  let r = analyze (Corpus.routing_network 4) in
  List.iter
    (fun ty ->
      Alcotest.(check bool)
        (ty ^ " conflict-safe") true
        (List.mem ty r.Summary.proven_conflict_safe);
      Alcotest.(check bool)
        (ty ^ " cycle-free") true
        (List.mem ty r.Summary.proven_cycle_free))
    [ "router"; "routingnetwork" ];
  Alcotest.(check bool) "no findings at all" true (r.Summary.findings = [])

(* ------------------------------------------------------------------ *)
(* The modular findings, code by code                                   *)
(* ------------------------------------------------------------------ *)

(* section 8's two-writer conflict is found without elaboration: Z401
   as an Error, and the type is excluded from the proven set *)
let test_section8_z401 () =
  let r = analyze Corpus.section8_example in
  Alcotest.(check bool) "Z401 reported" true
    (has_code r Diag.Code.modular_conflict);
  Alcotest.(check bool) "Z401 is an error" true (errors r <> []);
  Alcotest.(check (list string)) "nothing proved conflict-safe" []
    r.Summary.proven_conflict_safe;
  (* the witness names the two independent inputs, as lint's does *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let msg =
    match errors r with d :: _ -> d.Diag.message | [] -> assert false
  in
  Alcotest.(check bool) "witness assigns x and y" true
    (contains msg "x = 1" && contains msg "y = 1")

let combinational_cycle_src =
  "TYPE top = COMPONENT (IN a: boolean; OUT z: boolean) IS\n\
   SIGNAL u, v: boolean;\n\
   BEGIN\n\
  \  u := AND(a, v);\n\
  \  v := NOT u;\n\
  \  z := v;\n\
   END;\n\n\
   SIGNAL t: top;\n"

let reg_broken_cycle_src =
  "TYPE top = COMPONENT (IN a: boolean; OUT z: boolean) IS\n\
   SIGNAL u: boolean;\n\
  \       r: REG;\n\
   BEGIN\n\
  \  u := AND(a, r.out);\n\
  \  r.in := NOT u;\n\
  \  z := u;\n\
   END;\n\n\
   SIGNAL t: top;\n"

(* a combinational loop with no register on it is a Z403; inserting a
   REG (the only cycle breaker) removes the finding *)
let test_cycle_z403 () =
  let r = analyze combinational_cycle_src in
  Alcotest.(check bool) "Z403 on the loop" true
    (has_code r Diag.Code.modular_cycle);
  Alcotest.(check (list string)) "loop type not cycle-free" []
    r.Summary.proven_cycle_free;
  let r2 = analyze reg_broken_cycle_src in
  Alcotest.(check bool) "no Z403 through REG" false
    (has_code r2 Diag.Code.modular_cycle);
  Alcotest.(check bool) "REG-broken type proved cycle-free" true
    (List.mem "top" r2.Summary.proven_cycle_free)

(* an ARRAY index out of bounds for the instantiated parameter (Z404),
   caught by interval abstract interpretation of n *)
let test_range_z404 () =
  let src =
    "TYPE t(n) = COMPONENT (IN a: boolean; OUT z: boolean) IS\n\
     SIGNAL s: ARRAY[1..n] OF boolean;\n\
     BEGIN\n\
    \  s[n + 1] := a;\n\
    \  z := s[1];\n\
     END;\n\n\
     SIGNAL x: t(4);\n"
  in
  let r = analyze src in
  Alcotest.(check bool) "Z404 reported" true
    (has_code r Diag.Code.modular_range)

(* recursion whose parameter grows is not well-founded: the depth cap
   fires a Z405, records a fallback and withdraws every proof *)
let test_recursion_z405 () =
  let src =
    "TYPE t(n) = COMPONENT (IN a: boolean; OUT z: boolean) IS\n\
     SIGNAL c: t(n + 1);\n\
     BEGIN\n\
    \  c(a, z);\n\
     END;\n\n\
     SIGNAL x: t(1);\n"
  in
  let r = analyze src in
  Alcotest.(check bool) "Z405 reported" true
    (has_code r Diag.Code.modular_recursion);
  Alcotest.(check bool) "fallback recorded" true (r.Summary.fallbacks <> []);
  Alcotest.(check (list string)) "no conflict proof survives" []
    r.Summary.proven_conflict_safe;
  Alcotest.(check (list string)) "no cycle proof survives" []
    r.Summary.proven_cycle_free

(* ------------------------------------------------------------------ *)
(* The persistent summary cache                                         *)
(* ------------------------------------------------------------------ *)

let test_cache_roundtrip () =
  (* a fresh directory per run, without depending on unix: temp_file
     reserves a unique name, and the cache creates the directory *)
  let stamp = Filename.temp_file "zeus-summary-test" "" in
  let dir = stamp ^ ".d" in
  let src = Corpus.htree 16 in
  let r1 = analyze ~cache_dir:dir src in
  Alcotest.(check int) "cold run hits nothing" 0 r1.Summary.cache_hits;
  Alcotest.(check bool) "cold run computes" true
    (r1.Summary.summaries_computed > 0);
  let r2 = analyze ~cache_dir:dir src in
  Alcotest.(check int) "warm run computes nothing" 0
    r2.Summary.summaries_computed;
  Alcotest.(check bool) "warm run served from cache" true
    (r2.Summary.cache_hits > 0);
  Alcotest.(check bool) "warm run keeps the proof" true
    (List.mem "htree" r2.Summary.proven_conflict_safe
    && List.mem "htree" r2.Summary.proven_cycle_free);
  (* a different source digest misses: the cache keys on content *)
  let r3 = analyze ~cache_dir:dir (Corpus.htree 4) in
  Alcotest.(check bool) "edited source recomputes" true
    (r3.Summary.summaries_computed > 0)

(* ------------------------------------------------------------------ *)
(* Soundness against the elaborated pipeline, over the whole corpus     *)
(* ------------------------------------------------------------------ *)

(* "proven" must never contradict elaboration: a net the elaborated
   prover shows in Conflict may not be reclassified Safe by the modular
   pre-pass, on any corpus design (the O5 oracle row, statically) *)
let test_corpus_sound () =
  List.iter
    (fun (name, src) ->
      let r =
        try analyze ~symbolic:false src
        with exn ->
          Alcotest.failf "%s: Summary.analyze raised %s" name
            (Printexc.to_string exn)
      in
      match elaborate_with_diags src with
      | Some design, _ ->
          let plain = Lint.run design in
          let conflicts =
            List.filter_map
              (fun (v : Lint.net_verdict) ->
                if v.Lint.v_class = Lint.Conflict then Some v.Lint.v_name
                else None)
              plain.Lint.verdicts
          in
          if conflicts <> [] && r.Summary.proven_conflict_safe <> [] then begin
            let pre =
              Lint.run
                ~proven_safe:(fun t ->
                  List.mem t r.Summary.proven_conflict_safe)
                design
            in
            List.iter
              (fun (v : Lint.net_verdict) ->
                if
                  List.mem v.Lint.v_name conflicts
                  && v.Lint.v_class = Lint.Safe
                then
                  Alcotest.failf
                    "%s: conflict net '%s' hidden by the modular pre-pass"
                    name v.Lint.v_name)
              pre.Lint.verdicts
          end
      | None, _ -> ())
    (Corpus.all_named @ Corpus_fsm.all_named)

let () =
  Alcotest.run "summary"
    [
      ( "proofs",
        [
          Alcotest.test_case "htree symbolic" `Quick test_htree_proven;
          Alcotest.test_case "routing symbolic" `Quick test_routing_proven;
        ] );
      ( "findings",
        [
          Alcotest.test_case "Z401 conflict" `Quick test_section8_z401;
          Alcotest.test_case "Z403 cycle" `Quick test_cycle_z403;
          Alcotest.test_case "Z404 range" `Quick test_range_z404;
          Alcotest.test_case "Z405 recursion" `Quick test_recursion_z405;
        ] );
      ( "cache",
        [ Alcotest.test_case "roundtrip" `Quick test_cache_roundtrip ] );
      ( "soundness",
        [ Alcotest.test_case "corpus vs lint" `Quick test_corpus_sound ] );
    ]
