Golden outputs for the simulator's user-facing renderings: the ASCII
waveform (--wave), the VCD dump (--vcd) and the driver-tree explanation
(--explain), locked on the two reference designs.

  $ zeusc corpus adder4 > adder4.zeus
  $ zeusc corpus blackjack > blackjack.zeus

The adder as a waveform (values rendered per-cycle; multi-bit buses in
hex, 0 as '_', UNDEF as 'x'):

  $ zeusc sim adder4.zeus -n 3 -p adder.a=9 -p adder.b=6 -p adder.cin=0 -w adder.s -w adder.cout --wave
  adder.s    fff
  adder.cout ___

The same run as a VCD file:

  $ zeusc sim adder4.zeus -n 2 -p adder.a=9 -p adder.b=6 -p adder.cin=0 -w adder.cout --vcd out.vcd
  cycle 1: adder.cout=0
  cycle 2: adder.cout=0
  VCD written to out.vcd
  $ cat out.vcd
  $date reproduced Zeus run $end
  $version zeus-ocaml $end
  $timescale 1 ns $end
  $scope module zeus $end
  $var wire 1 ! adder_cout $end
  $upscope $end
  $enddefinitions $end
  #1
  0!

The blackjack controller under reset then a hit request, as a waveform
(x marks UNDEF from the unresolved multiplex drivers before the state
settles):

  $ zeusc sim blackjack.zeus -n 3 --reset -p bj.ycard=1 -p bj.value=01010 -w bj.state -w bj.hit -w bj.stand --wave
  bj.state 29e
  bj.hit   x#x
  bj.stand xxx

Explaining a value after the run walks the driver tree through guards
and gates:

  $ zeusc sim blackjack.zeus -n 3 --reset -p bj.ycard=1 -p bj.value=01010 --explain bj.hit
  bj.hit = U: 1 driver(s):
    IF bj.guard=0 THEN := const 1=1 -> Z
  bj.guard = 0: AND(bj.nguard=1,
  bj.equal#56[0]=0)
  bj.nguard = 1: NOT(RSET=0)
  bj.equal#56[0] = 0: EQUAL(bj.state[1].out=0, bj.state[2].out=1,
  bj.state[3].out=0, const 0=0, const 0=0,
  const 1=1)

And on the adder, the explanation bottoms out at the instance outputs:

  $ zeusc sim adder4.zeus -n 1 -p adder.a=9 -p adder.b=6 -p adder.cin=0 --explain 'adder.s[4]'
  adder.s[4] = 1: 1 driver(s):
    := adder.add[4].s=1 -> 1
  adder.add[4].s = 1: 1 driver(s):
    := adder.add[4].h2.s=1 -> 1
  adder.add[4].h2.s = 1: 1 driver(s):
    := adder.add[4].h2.xor#18[0]=1 -> 1

A watch path that resolves to nothing is reported by name and aborts
the run:

  $ zeusc sim adder4.zeus -n 1 -w nosuch
  zeusc: internal error, uncaught exception:
         Invalid_argument("Sim: no top-level signal 'nosuch'")
         
  cycle 1:
  [125]
