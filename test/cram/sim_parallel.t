Golden outputs for the per-level domain-parallel engine (demoted to an
explicit opt-in now that throughput work goes through the batch engine):
--engine parallel-level with an explicit domain count is bit-identical
to the serial engines, and --stats prints its deterministic work
breakdown (no wall-clock numbers, so the output is stable enough to
lock down).  An unambiguous prefix still selects it: --engine parallel
resolves to parallel-level.

  $ zeusc corpus blackjack > blackjack.zeus
  $ zeusc corpus section8 > section8.zeus
  $ zeusc corpus arbiter > arbiter.zeus

The section 8 example under constant pokes: the cold-start cycle does
the full evaluation, after which every warm cycle is quiescent — the
parallel engine, like the incremental one, does zero work, and the
stats block shows no levels, barriers or domain visits at all:

  $ zeusc sim section8.zeus --engine parallel-level --jobs 4 --grain 1 -n 4 --stats -p top.a=1 -p top.b=1 -p top.x=1 -p top.y=0 -w top.out -w top.rout
  cycle 1: top.out=1 top.rout=U
  cycle 2: top.out=1 top.rout=U
  cycle 3: top.out=1 top.rout=U
  cycle 4: top.out=1 top.rout=U
  node visits: 7
  parallel: jobs=4 levels=0 chunked=0 barriers=0 node-tasks=0 net-tasks=0 max-fanout=0
  domain visits: 0 0 0 0

The same run on the incremental engine gives the same values (only the
stats block differs — serial engines have no parallel breakdown):

  $ zeusc sim section8.zeus --engine incremental -n 4 --stats -p top.a=1 -p top.b=1 -p top.x=1 -p top.y=0 -w top.out -w top.rout
  cycle 1: top.out=1 top.rout=U
  cycle 2: top.out=1 top.rout=U
  cycle 3: top.out=1 top.rout=U
  cycle 4: top.out=1 top.rout=U
  node visits: 7

Blackjack holds standing drive conflicts and a cyclic schedule, so the
parallel engine falls back to full (serial) passes — values and the
error trace still match the serial engines exactly:

  $ zeusc sim blackjack.zeus --engine parallel-level --jobs 4 --grain 1 -n 3 -w bj.state.out 2>&1 | head -6
  cycle 1: bj.state.out=UUU
  cycle 2: bj.state.out=UUU
  cycle 3: bj.state.out=UUU
  runtime error (cycle 0) [Z101] bj.score[1].in: more than one driving assignment in cycle 0 — burning transistors (value forced to UNDEF)
  runtime error (cycle 0) [Z101] bj.score[2].in: more than one driving assignment in cycle 0 — burning transistors (value forced to UNDEF)
  runtime error (cycle 0) [Z101] bj.score[3].in: more than one driving assignment in cycle 0 — burning transistors (value forced to UNDEF)
  $ zeusc sim blackjack.zeus --engine incremental -n 3 -w bj.state.out 2>&1 | head -6
  cycle 1: bj.state.out=UUU
  cycle 2: bj.state.out=UUU
  cycle 3: bj.state.out=UUU
  runtime error (cycle 0) [Z101] bj.score[1].in: more than one driving assignment in cycle 0 — burning transistors (value forced to UNDEF)
  runtime error (cycle 0) [Z101] bj.score[2].in: more than one driving assignment in cycle 0 — burning transistors (value forced to UNDEF)
  runtime error (cycle 0) [Z101] bj.score[3].in: more than one driving assignment in cycle 0 — burning transistors (value forced to UNDEF)

The RANDOM stream is a pure function of (seed, net, cycle): the
contested arbiter draws the same coin flips at any domain count and on
any engine.  The coin redraw dirties the cone every cycle, so here the
warm levels really do fan out across the pool (chunked levels, barriers
and per-domain visits are all non-zero — and still deterministic):

  $ zeusc sim arbiter.zeus --engine parallel-level --jobs 4 --grain 1 -n 6 --stats -p arb.req1=1 -p arb.req2=1 -w arb.gnt1 -w arb.gnt2
  cycle 1: arb.gnt1=1 arb.gnt2=U
  cycle 2: arb.gnt1=U arb.gnt2=1
  cycle 3: arb.gnt1=1 arb.gnt2=U
  cycle 4: arb.gnt1=U arb.gnt2=1
  cycle 5: arb.gnt1=U arb.gnt2=1
  cycle 6: arb.gnt1=U arb.gnt2=1
  node visits: 42
  parallel: jobs=4 levels=15 chunked=6 barriers=12 node-tasks=18 net-tasks=21 max-fanout=2
  domain visits: 6 6 0 6
  $ zeusc sim arbiter.zeus --engine parallel-level --jobs 2 --grain 1 -n 6 -p arb.req1=1 -p arb.req2=1 -w arb.gnt1 -w arb.gnt2
  cycle 1: arb.gnt1=1 arb.gnt2=U
  cycle 2: arb.gnt1=U arb.gnt2=1
  cycle 3: arb.gnt1=1 arb.gnt2=U
  cycle 4: arb.gnt1=U arb.gnt2=1
  cycle 5: arb.gnt1=U arb.gnt2=1
  cycle 6: arb.gnt1=U arb.gnt2=1
  $ zeusc sim arbiter.zeus --engine firing -n 6 -p arb.req1=1 -p arb.req2=1 -w arb.gnt1 -w arb.gnt2
  cycle 1: arb.gnt1=1 arb.gnt2=U
  cycle 2: arb.gnt1=U arb.gnt2=1
  cycle 3: arb.gnt1=1 arb.gnt2=U
  cycle 4: arb.gnt1=U arb.gnt2=1
  cycle 5: arb.gnt1=U arb.gnt2=1
  cycle 6: arb.gnt1=U arb.gnt2=1
