The lint engine: drive-conflict proofs, UNDEF reachability and dead
hardware, with stable Zxxx diagnostic codes.

A clean design — the one-hot decoder guards of mux4 are provably
exclusive, so its multiplex net is classified safe and lint exits 0:

  $ zeusc corpus mux4 > mux4.zeus
  $ zeusc lint mux4.zeus
  net 'm.mux4#1.h' (multiplex, 4 producers): safe — proved exclusive (6 pairs)
  1 multi-driven net: 1 safe, 0 conflict, 0 needs-runtime-check; 0 findings (8 case splits)

The section 8 example drives 'out' under two independent inputs x and y:
the prover finds the conflicting assignment (a Z101 error, exit 1) with
a concrete witness:

  $ zeusc corpus section8 > section8.zeus
  $ zeusc lint section8.zeus
  net 'top.out' (multiplex, 2 producers): conflict — witness: top.x=1, top.y=1
  7:13-22: error(lint)[Z101]: 'top.out' can receive two driving values in one cycle (drivers at 6:13-28 and 7:13-22; witness: top.x=1, top.y=1) — this would burn transistors
  1 multi-driven net: 0 safe, 1 conflict, 0 needs-runtime-check; 1 finding (2 case splits)
  [1]

The same report as JSON, carrying the stable codes:

  $ zeusc lint section8.zeus --format json
  {
    "version": 2,
    "nets": [
      {"net":"top.out","kind":"multiplex","producers":2,"class":"conflict","detail":"witness: top.x=1, top.y=1"}
    ],
    "findings": [
      {"code":"Z101","severity":"error","kind":"lint","loc":{"line":7,"col":13,"end_line":7,"end_col":22},"message":"'top.out' can receive two driving values in one cycle (drivers at 6:13-28 and 7:13-22; witness: top.x=1, top.y=1) — this would burn transistors"}
    ],
    "summary": {"nets":1,"safe":0,"safe_sequential":0,"conflict":1,"needs_runtime_check":0,"findings":1,"splits":2}
  }
  [1]

The schema version is locked: bumping it without updating this golden
test is a reviewable event.

  $ zeusc lint section8.zeus --format json | head -2
  {
    "version": 2,

Per-code suppression drops the finding (and with it the failing exit):

  $ zeusc lint section8.zeus --suppress Z101
  net 'top.out' (multiplex, 2 producers): conflict — witness: top.x=1, top.y=1
  1 multi-driven net: 0 safe, 1 conflict, 0 needs-runtime-check; 0 findings (2 case splits)

An unknown code is rejected with the list of valid codes, instead of
being silently accepted (a typo would un-suppress nothing):

  $ zeusc lint section8.zeus --suppress Z101 --suppress Z999
  lint: unknown diagnostic code Z999 for --suppress; valid codes: Z101, Z102, Z201, Z202, Z301, Z302, Z401, Z402, Z403, Z404, Z405, Z406, Z501, Z502, Z503, Z601, Z602, Z603
  [2]

A strangled solver budget degrades soundly: the net is handed to the
simulator's runtime multiple-drive check (Z102) instead of guessing:

  $ zeusc lint section8.zeus --budget 0
  net 'top.out' (multiplex, 2 producers): needs-runtime-check — solver budget of 0 case splits exhausted
  7:13-22: warning(lint)[Z102]: 'top.out': driver exclusivity not proved (solver budget of 0 case splits exhausted) — the runtime multiple-drive check [Z101] guards this net
  1 multi-driven net: 0 safe, 0 conflict, 1 needs-runtime-check; 1 finding (0 case splits)

And the simulator reports the violation the prover predicted, under the
same Z101 code:

  $ zeusc sim section8.zeus -n 1 -p top.x=1 -p top.y=1 -p top.a=1 -p top.b=1 -p top.cc=0
  runtime error (cycle 0) [Z101] top.out: more than one driving assignment in cycle 0 — burning transistors (value forced to UNDEF)

UNDEF reachability (Z201 undriven, Z202 driven-but-never-defined) and a
statically false branch guard (Z301):

  $ cat > undef.zeus <<'EOF'
  > TYPE top = COMPONENT (IN a: boolean; OUT z: boolean) IS
  > SIGNAL u, v: boolean;
  >        r: REG;
  > BEGIN
  >   v := NOT u;
  >   IF AND(a,0) THEN r.in := v END;
  >   z := OR(v,r.out);
  > END;
  > 
  > SIGNAL t: top;
  > EOF
  $ zeusc lint undef.zeus
  2:8-9: warning(lint)[Z201]: 't.u' is read but never driven — it reads UNDEF forever
  2:11-12: warning(lint)[Z202]: 't.v' can never carry a defined value — every read yields UNDEF
  3:8-9: warning(lint)[Z202]: 't.r.out' can never carry a defined value — every read yields UNDEF
  6:20-29: warning(lint)[Z301]: branch guard is statically false — the conditional assignment to 't.r.in' can never fire (dead hardware)
  0 multi-driven nets: 0 safe, 0 conflict, 0 needs-runtime-check; 4 findings (0 case splits)

An instance whose outputs reach nothing observable (Z302):

  $ cat > dead.zeus <<'EOF'
  > TYPE inv = COMPONENT (IN a: boolean; OUT z: boolean) IS
  > BEGIN
  >   z := NOT a;
  > END;
  > 
  > TYPE top = COMPONENT (IN a: boolean; OUT z: boolean) IS
  > SIGNAL i: inv;
  >        w: boolean;
  > BEGIN
  >   i(a,w);
  >   z := NOT a;
  > END;
  > 
  > SIGNAL t: top;
  > EOF
  $ zeusc lint dead.zeus
  7:8-9: warning(lint)[Z302]: instance 't.i' of 'inv': no output reaches a register or an output port — the hardware is dead
  8:8-9: warning(lint)[Z503]: 't.w' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  0 multi-driven nets: 0 safe, 0 conflict, 0 needs-runtime-check; 2 findings (0 case splits)

'--max-severity none' turns any finding into a failing exit:

  $ zeusc lint dead.zeus --max-severity none
  7:8-9: warning(lint)[Z302]: instance 't.i' of 'inv': no output reaches a register or an output port — the hardware is dead
  8:8-9: warning(lint)[Z503]: 't.w' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  0 multi-driven nets: 0 safe, 0 conflict, 0 needs-runtime-check; 2 findings (0 case splits)
  [1]
