The bounded sequential prover: k-cycle symbolic reachability over the
four-valued abstract domain, reset-coverage lints (Z601/Z602/Z603),
and static discharge of runtime conflict checks.

A toggle register whose input is multi-driven under 'r.out' and
'NOT r.out'.  The combinational lint cannot prove the guards exclusive
(an UNDEF register state would fire both), so it demotes the net to
needs-runtime-check under Z102:

  $ cat > toggle.zeus <<'EOF'
  > TYPE t = COMPONENT (IN a,b: boolean; OUT z: boolean) IS
  > SIGNAL r: REG(0);
  > BEGIN
  >   IF r.out THEN r.in := a END;
  >   IF NOT r.out THEN r.in := b END;
  >   z := r.out;
  > END;
  > 
  > SIGNAL s: t;
  > EOF
  $ zeusc lint toggle.zeus
  net 's.r.in' (boolean, 2 producers): needs-runtime-check — a guard depends on sequential state that can read UNDEF (an undefined guard drives)
  5:21-30: warning(lint)[Z102]: 's.r.in': driver exclusivity not proved (a guard depends on sequential state that can read UNDEF (an undefined guard drives)) — the runtime multiple-drive check [Z101] guards this net
  1 multi-driven net: 0 safe, 0 conflict, 1 needs-runtime-check; 1 finding (1 case splits)

The sequential prover knows REG(0) powers up at 0, so 'r.out' is
{0,1} in every reachable state and the guards really are exclusive —
the net is upgraded to safe-sequential:

  $ zeusc prove toggle.zeus
  upgraded 's.r.in': safe-sequential
  depth 8: 1 register; 1/1 needs-runtime-check upgraded to safe-sequential; 0 findings, 0 witnesses (12 case splits)

'--regs' prints the per-register value-set trajectory (power-up
fixpoint and the post-RSET sequence):

  $ zeusc prove --regs toggle.zeus
  register s.r                          init={0} reachable={0,1} reset: {0,1} -> {0,1} -> {0,1} -> {0,1} -> {0,1} -> {0,1} -> {0,1} -> {0,1} -> {0,1}
  upgraded 's.r.in': safe-sequential
  depth 8: 1 register; 1/1 needs-runtime-check upgraded to safe-sequential; 0 findings, 0 witnesses (12 case splits)

A sticky register that is never reset: Z601 flags the uncovered
register, Z602 flags power-up UNDEF escaping into the observable
output 'y', and Z603 proves the mux conflict genuinely reachable with
a concrete cycle-by-cycle witness trace:

  $ cat > sticky.zeus <<'EOF'
  > TYPE t = COMPONENT (IN a,b: boolean; OUT z,y: boolean) IS
  > SIGNAL r: REG;
  >     m: multiplex;
  > BEGIN
  >   IF a THEN r.in := b END;
  >   IF r.out THEN m := a END;
  >   IF NOT r.out THEN m := b END;
  >   z := m;
  >   y := r.out;
  > END;
  > 
  > SIGNAL s: t;
  > EOF
  $ zeusc prove sticky.zeus
  2:8-9: warning(lint)[Z601]: register 's.r' can still hold UNDEF 8 cycles after a RSET pulse — no reset path initializes it (reachable: {0,1,U})
  1:44-45: warning(lint)[Z602]: 's.y' can still read UNDEF after reset settles, and the UNDEF originates in uninitialized register state — power-up UNDEF escapes the reset cone into an observable net
  3:5-6: warning(lint)[Z603]: 's.m': a runtime drive conflict is reachable at cycle 0 from power-up — concrete witness: cycle 0: RSET=0, s.a=0, s.b=0
  witness 's.m' conflicts at cycle 0:
    cycle 0: RSET=0 s.a=0 s.b=0
  depth 8: 1 register; 0/1 needs-runtime-check upgraded to safe-sequential; 3 findings, 1 witness (25 case splits)

The witness replays on the simulator: poking the trace values produces
the predicted runtime conflict at the predicted cycle.

  $ zeusc sim sticky.zeus -n 1 -p s.a=0 -p s.b=0
  runtime error (cycle 0) [Z101] s.m: more than one driving assignment in cycle 0 — burning transistors (value forced to UNDEF)

A RSET-covered chain: the pulse clears r1, the chain fills one stage
per cycle, and the reset trajectory narrows from {0,1,U} to defined
values — no Z6xx findings:

  $ cat > rchain.zeus <<'EOF'
  > TYPE t = COMPONENT (IN a: boolean; OUT z: boolean) IS
  > SIGNAL r1,r2: REG;
  > BEGIN
  >   IF RSET THEN r1.in := 0 END;
  >   IF NOT RSET THEN r1.in := a END;
  >   r2.in := r1.out;
  >   z := r2.out;
  > END;
  > 
  > SIGNAL s: t;
  > EOF
  $ zeusc prove --regs rchain.zeus
  register s.r1                         init={U} reachable={0,1,U} reset: {0,1,U} -> {0} -> {0,1} -> {0,1} -> {0,1} -> {0,1} -> {0,1} -> {0,1} -> {0,1}
  register s.r2                         init={U} reachable={0,1,U} reset: {0,1,U} -> {0,1,U} -> {0} -> {0,1} -> {0,1} -> {0,1} -> {0,1} -> {0,1} -> {0,1}
  depth 8: 2 registers; 0/0 needs-runtime-check upgraded to safe-sequential; 0 findings, 0 witnesses (0 case splits)

The JSON report carries the same registers, upgrades, findings and
witness traces; the schema version is locked by this golden:

  $ zeusc prove sticky.zeus --format json | head -3
  {
    "version": 1,
    "depth": 8,
  $ zeusc prove sticky.zeus --format json | grep -c '"code":"Z60'
  3

Suppression uses the same unified Z-code registry as lint and opt —
known codes drop findings, unknown codes are a usage error:

  $ zeusc prove sticky.zeus --suppress Z601 --suppress Z602
  3:5-6: warning(lint)[Z603]: 's.m': a runtime drive conflict is reachable at cycle 0 from power-up — concrete witness: cycle 0: RSET=0, s.a=0, s.b=0
  witness 's.m' conflicts at cycle 0:
    cycle 0: RSET=0 s.a=0 s.b=0
  depth 8: 1 register; 0/1 needs-runtime-check upgraded to safe-sequential; 1 finding, 1 witness (25 case splits)
  $ zeusc prove sticky.zeus --suppress Z999
  prove: unknown diagnostic code Z999 for --suppress; valid codes: Z101, Z102, Z201, Z202, Z301, Z302, Z401, Z402, Z403, Z404, Z405, Z406, Z501, Z502, Z503, Z601, Z602, Z603
  [2]

'zeusc lint --sequential' runs the prover as a pre-pass: the verdict
table shows the upgrade with the original demotion reason, and the
sequential summary line is printed before the lint summary:

  $ zeusc lint --sequential toggle.zeus
  net 's.r.in' (boolean, 2 producers): safe-sequential — exclusive in every register state reachable from power-up (was: a guard depends on sequential state that can read UNDEF (an undefined guard drives))
  sequential: depth 8: 1 register; 1/1 needs-runtime-check upgraded to safe-sequential; 0 findings, 0 witnesses (12 case splits)
  1 multi-driven net: 0 safe, 1 safe-sequential, 0 conflict, 0 needs-runtime-check; 0 findings (1 case splits)

The payoff: '--discharge' lets the compiled engine omit the runtime
multiple-drive check on statically proved nets.  The stats line shows
the check op moving from check-ops to discharged-ops:

  $ zeusc sim toggle.zeus --engine compiled --stats -n 2 -p s.a=1 -p s.b=0 | grep compiled:
  compiled: ops=13 scalar=13 vector=0 vector-lanes=0 visits-per-cycle=6 check-ops=1 discharged-ops=0
  $ zeusc sim toggle.zeus --engine compiled --discharge --stats -n 2 -p s.a=1 -p s.b=0 | grep compiled:
  compiled: ops=13 scalar=13 vector=0 vector-lanes=0 visits-per-cycle=6 check-ops=0 discharged-ops=1

The modular pre-pass findings (Z4xx) surface through 'zeusc lint
--modular' under the same suppression registry as every other code:

  $ zeusc corpus section8 > section8.zeus
  $ zeusc lint --modular section8.zeus 2>&1 | grep -c Z401
  1
  $ zeusc lint --modular --suppress Z401 section8.zeus 2>&1 | grep -c Z401
  0
  [1]
  $ zeusc lint --modular --suppress Z401 section8.zeus
  modular pre-pass: 1 component type(s), 1 summary computed (0 cached); conflict-safe: none; cycle-free: c
  net 'top.out' (multiplex, 2 producers): conflict — witness: top.x=1, top.y=1
  7:13-22: error(lint)[Z101]: 'top.out' can receive two driving values in one cycle (drivers at 6:13-28 and 7:13-22; witness: top.x=1, top.y=1) — this would burn transistors
  1 multi-driven net: 0 safe, 1 conflict, 0 needs-runtime-check; 1 finding (2 case splits)
  [1]
