Golden outputs for the compiled (bytecode) engine: --engine compiled is
bit-identical to the serial engines, and --stats prints the program
shape — every counter except the one-time compile wall-clock (filtered
out here) is a deterministic function of the design.

  $ zeusc corpus section8 > section8.zeus
  $ zeusc corpus adder4 > adder4.zeus
  $ zeusc corpus blackjack > blackjack.zeus

The section 8 example under constant pokes.  The compiled engine has no
notion of a quiescent cycle — the whole program re-executes every cycle
(visits-per-cycle times the cycle count shows in "node visits") — but
the values match the incremental default exactly:

  $ zeusc sim section8.zeus --engine compiled -n 4 --stats -p top.a=1 -p top.b=1 -p top.x=1 -p top.y=0 -w top.out -w top.rout | grep -v "compile time"
  cycle 1: top.out=1 top.rout=U
  cycle 2: top.out=1 top.rout=U
  cycle 3: top.out=1 top.rout=U
  cycle 4: top.out=1 top.rout=U
  node visits: 28
  compiled: ops=13 scalar=12 vector=1 vector-lanes=6 visits-per-cycle=7 check-ops=1 discharged-ops=0

  $ zeusc sim section8.zeus -n 4 -p top.a=1 -p top.b=1 -p top.x=1 -p top.y=0 -w top.out -w top.rout
  cycle 1: top.out=1 top.rout=U
  cycle 2: top.out=1 top.rout=U
  cycle 3: top.out=1 top.rout=U
  cycle 4: top.out=1 top.rout=U

The adder as a waveform, on the compiled engine:

  $ zeusc sim adder4.zeus --engine compiled -n 3 -p adder.a=9 -p adder.b=6 -p adder.cin=0 -w adder.s -w adder.cout --wave
  adder.s    fff
  adder.cout ___

Blackjack's standing drive conflicts are re-detected and re-reported
every cycle by the wordwise resolution, with the same set of (cycle,
net, code) records as the serial engines — within a cycle the compiled
engine reports in net (class) order:

  $ zeusc sim blackjack.zeus --engine compiled -n 3 -w bj.state.out 2>&1 | head -6
  cycle 1: bj.state.out=UUU
  cycle 2: bj.state.out=UUU
  cycle 3: bj.state.out=UUU
  runtime error (cycle 0) [Z101] bj.state[1].in: more than one driving assignment in cycle 0 — burning transistors (value forced to UNDEF)
  runtime error (cycle 0) [Z101] bj.state[2].in: more than one driving assignment in cycle 0 — burning transistors (value forced to UNDEF)
  runtime error (cycle 0) [Z101] bj.state[3].in: more than one driving assignment in cycle 0 — burning transistors (value forced to UNDEF)

A VCD dump of a design that goes quiescent after the first cycle: the
timestamp is buffered until a change record needs it, so the idle tail
of the run adds nothing to the file (no trailing bare #N markers):

  $ zeusc sim section8.zeus -n 4 --vcd quiet.vcd -p top.a=1 -p top.b=1 -p top.x=1 -p top.y=0 -w top.out
  cycle 1: top.out=1
  cycle 2: top.out=1
  cycle 3: top.out=1
  cycle 4: top.out=1
  VCD written to quiet.vcd
  $ cat quiet.vcd
  $date reproduced Zeus run $end
  $version zeus-ocaml $end
  $timescale 1 ns $end
  $scope module zeus $end
  $var wire 1 ! top_out $end
  $upscope $end
  $enddefinitions $end
  #1
  1!
