Golden outputs for the batch engine: zeusc sim --batch FILE runs a
whole stimulus deck of independent runs through one template handle,
sharding runs over the domain pool and lane-packing equal-cycle runs
through the compiled engine.  Values are bit-identical to running each
deck entry serially, per-run seeds drive per-run RANDOM streams, and
--stats prints the deterministic work breakdown (no wall-clock).

  $ zeusc corpus arbiter > arbiter.zeus
  $ zeusc corpus routing4 > routing4.zeus

The contested arbiter, three deck entries: two distinct seeds plus a
repeat of the first — the repeated seed reproduces the first run's coin
flips exactly, the middle seed draws its own:

  $ cat > arbiter.deck <<'EOF'
  > # both requesters contend for six cycles; seed picks the coin flips
  > run seed=1 cycles=6
  > arb.req1=1 arb.req2=1
  > run seed=2 cycles=6
  > arb.req1=1 arb.req2=1
  > run seed=1 cycles=6
  > arb.req1=1 arb.req2=1
  > EOF
  $ zeusc sim arbiter.zeus --batch arbiter.deck -j 2 -w arb.gnt1 -w arb.gnt2
  run 0: arb.gnt1=1 arb.gnt2=U
  run 1: arb.gnt1=U arb.gnt2=1
  run 2: arb.gnt1=1 arb.gnt2=U

The domain count never shows in the values, only in the breakdown:

  $ zeusc sim arbiter.zeus --batch arbiter.deck -j 1 -w arb.gnt1 -w arb.gnt2
  run 0: arb.gnt1=1 arb.gnt2=U
  run 1: arb.gnt1=U arb.gnt2=1
  run 2: arb.gnt1=1 arb.gnt2=U
  $ zeusc sim arbiter.zeus --batch arbiter.deck -j 3 -w arb.gnt1 -w arb.gnt2
  run 0: arb.gnt1=1 arb.gnt2=U
  run 1: arb.gnt1=U arb.gnt2=1
  run 2: arb.gnt1=1 arb.gnt2=U

A deck entry without a seed reads the template's default RANDOM
stream, so it reproduces a plain serial zeusc sim run exactly:

  $ cat > arbiter1.deck <<'EOF'
  > run cycles=6
  > arb.req1=1 arb.req2=1
  > EOF
  $ zeusc sim arbiter.zeus --batch arbiter1.deck -j 1 -w arb.gnt1 -w arb.gnt2
  run 0: arb.gnt1=U arb.gnt2=1
  $ zeusc sim arbiter.zeus --engine incremental -n 6 -p arb.req1=1 -p arb.req2=1 -w arb.gnt1 -w arb.gnt2 | tail -1
  cycle 6: arb.gnt1=U arb.gnt2=1

The work breakdown is deterministic in (design, deck, jobs, lanes).
With the default incremental template every run takes the serial
fallback; a compiled template lane-packs all three equal-cycle runs
into one dispatch group:

  $ zeusc sim arbiter.zeus --batch arbiter.deck -j 2 --stats -w arb.gnt1 -w arb.gnt2 | tail -1
  batch: runs=3 jobs=2 lanes=8 lane-groups=0 lane-runs=0 serial-runs=3 cycles=18
  $ zeusc sim arbiter.zeus --batch arbiter.deck -j 2 --engine compiled --lanes 8 --stats -w arb.gnt1 -w arb.gnt2
  run 0: arb.gnt1=1 arb.gnt2=U
  run 1: arb.gnt1=U arb.gnt2=1
  run 2: arb.gnt1=1 arb.gnt2=U
  batch: runs=3 jobs=2 lanes=8 lane-groups=2 lane-runs=3 serial-runs=0 cycles=18

The routing network: per-run header bits steer each run's butterfly
independently (bit 1 of a 10-bit port is the header; values poke
BIN(v,10) MSB-first, so 512+k sets the header and 0+k clears it):

  $ cat > routing4.deck <<'EOF'
  > run cycles=2
  > net.input[0]=513 net.input[1]=2 net.input[2]=3 net.input[3]=4
  > run cycles=2
  > net.input[0]=5 net.input[1]=2 net.input[2]=3 net.input[3]=4
  > EOF
  $ zeusc sim routing4.zeus --batch routing4.deck -j 1 --engine compiled -w net.output[0]
  run 0: net.output[0]=0000000010
  run 1: net.output[0]=0000000101

Drive conflicts stay isolated per run: only the deck entry that poked
both fighting guards reports Z101, its neighbours stay clean — and the
conflicting run still lane-packs with them (one group):

  $ cat > conflict.zeus <<'EOF'
  > TYPE c = COMPONENT (IN x,y: boolean; OUT out: boolean) IS
  > SIGNAL h: multiplex;
  > BEGIN
  >   IF x THEN h := 1 END;
  >   IF y THEN h := 0 END;
  >   out := h
  > END;
  > SIGNAL top: c;
  > EOF
  $ cat > conflict.deck <<'EOF'
  > run cycles=2
  > top.x=1 top.y=0
  > run cycles=2
  > top.x=1 top.y=1
  > run cycles=2
  > top.x=0 top.y=1
  > EOF
  $ zeusc sim conflict.zeus --batch conflict.deck -j 1 --engine compiled --lanes 8 --stats -w top.out
  run 0: top.out=1
  run 1: top.out=U
  runtime error (run 1, cycle 0) [Z101] top.h: more than one driving assignment in cycle 0 — burning transistors (value forced to UNDEF)
  runtime error (run 1, cycle 1) [Z101] top.h: more than one driving assignment in cycle 1 — burning transistors (value forced to UNDEF)
  run 2: top.out=0
  batch: runs=3 jobs=1 lanes=8 lane-groups=1 lane-runs=3 serial-runs=0 cycles=6

A malformed deck fails with a line-numbered message:

  $ cat > bad.deck <<'EOF'
  > top.x=1
  > EOF
  $ zeusc sim conflict.zeus --batch bad.deck
  batch file bad.deck: line 1: stimulus line before any 'run' header
  [1]
