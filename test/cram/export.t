Golden outputs for `zeusc export --verilog`: the section 8 example in
full (one of everything: inputs, outputs, a guarded multiplex pair
with its explicit first-non-z resolver, a register with the
raw-value latch rule), a larger design checked by shape, the
self-checking testbench, and the error paths.

  $ zeusc corpus section8 > section8.zeus
  $ zeusc corpus pqueue8x4 > pqueue8x4.zeus

  $ zeusc export --verilog section8.zeus
  // top: structural Verilog export of a Zeus design (zeusc export --verilog)
  // Four-valued nets: Zeus UNDEF is x, NOINFL is z.  Drive RSET low, toggle clk;
  // registers latch on posedge and power up at x unless REG(c) gave a value.
  module top (clk, RSET, top$da, top$db, top$dcc, top$dx, top$dy, top$drin, top$drout, top$dout);
    input clk; // latch edge only: the Zeus CLK value is the constant-1 wire
    input RSET;
    input top$da;
    input top$db;
    input top$dcc;
    input top$dx;
    input top$dy;
    input top$drin;
    output top$drout;
    output top$dout;
    wire CLK;
    wire top$dand$h1$b0$e;
    wire top$dnguard;
    wire top$dnguard$0;
    wire top$dr$din;
    wire top$dr$dout;
    wire top$dr$din$raw;
    wire top$dout$p0;
    wire top$dout$p1;
    assign CLK = 1'b1;
    assign top$dr$dout = top$dr;
    assign top$drout = top$dr$dout;
    assign top$dand$h1$b0$e = (top$da & top$db);
    assign top$dnguard = (~top$dx);
    assign top$dnguard$0 = (~top$dy);
    assign top$dr$din$raw = top$drin;
    assign top$dr$din = ((top$dr$din$raw === 1'bz) ? 1'bx : top$dr$din$raw);
    assign top$dout$p0 = ((top$dx === 1'b1) ? top$dand$h1$b0$e : (top$dx === 1'b0) ? 1'bz : 1'bx);
    assign top$dout$p1 = ((top$dy === 1'b1) ? top$dcc : (top$dy === 1'b0) ? 1'bz : 1'bx);
    assign top$dout = ((top$dout$p0 === 1'bz) ? top$dout$p1 : ((top$dout$p1 === 1'bz) ? top$dout$p0 : 1'bx));
    reg top$dr;
    always @(posedge clk)
      if (top$dr$din$raw !== 1'bz) top$dr <= top$dr$din$raw;
  endmodule

The priority queue exports a register per bit of the four 8-deep
slots; the module header and the always-block count are stable:

  $ zeusc export --verilog pqueue8x4.zeus -o pq.v
  $ head -4 pq.v
  // pq: structural Verilog export of a Zeus design (zeusc export --verilog)
  // Four-valued nets: Zeus UNDEF is x, NOINFL is z.  Drive RSET low, toggle clk;
  // registers latch on posedge and power up at x unless REG(c) gave a value.
  module pq (clk, RSET, pq$dins, pq$dext, pq$ddin$b1$e, pq$ddin$b2$e, pq$ddin$b3$e, pq$ddin$b4$e, pq$dminout$b1$e, pq$dminout$b2$e, pq$dminout$b3$e, pq$dminout$b4$e);
  $ grep -c "always @(posedge clk)" pq.v
  32

The self-checking testbench replays a deterministic random deck: it
drives every input port, compares every class wire against the
incremental engine's snapshot before each latch edge, and $fatals on
the first mismatch:

  $ zeusc export --verilog --testbench -n 3 section8.zeus -o tb.v
  $ grep -c "^module" tb.v
  2
  $ grep "ZEUS_TB_OK\|zeus.check(3)\|fatal" tb.v
          $fatal(2, "zeus/verilog divergence at cycle %0d", cycle);
      zeus$check(3);
      $display("ZEUS_TB_OK");

A combinational cycle has no static schedule, so it cannot be lowered
to continuous assignments — the checks reject it before export:

  $ cat > cyclic.zeus <<'EOF'
  > TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
  > SIGNAL u, v: boolean;
  > BEGIN
  >   u := AND(a, v);
  >   v := NOT u;
  >   y := v
  > END;
  > SIGNAL s: t;
  > EOF
  $ zeusc export --verilog cyclic.zeus
  4:8-17: error(cycle): combinational feedback loop (no REG on the path): s.and#1[0] -> s.u -> s.not#2[0] -> s.v -> s.and#1[0]
  [1]

  $ zeusc export section8.zeus
  export: no format selected; pass --verilog
  [2]
