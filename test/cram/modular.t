The modular component-summary analysis: per-type port contracts,
symbolic parameter checking and type-level cycle detection, without
elaboration (Z4xx codes).

The recursive H-tree is proved conflict-safe and cycle-free for ALL
parameter values — the symbolic summary htree(any) covers every N:

  $ zeusc corpus htree16 > htree.zeus
  $ zeusc check --modular --no-cache htree.zeus
  type leaftype             (-): conflict-safe, cycle-free
  type htree                (1): conflict-safe, cycle-free
  type htree                (4): conflict-safe, cycle-free
  type htree                (16): conflict-safe, cycle-free
  type leaftype             (-): conflict-safe, cycle-free
  type htree                (any): conflict-safe, cycle-free
  2 component type(s), 6 summaries computed (0 cached); conflict-safe: htree leaftype; cycle-free: htree leaftype

The recursive routing network: the index disjointness of
output[i] vs output[i + n DIV 2] and the WHEN-arm exclusivity are
proved symbolically, so the whole family is conflict-safe:

  $ zeusc corpus routing4 > routing.zeus
  $ zeusc check --modular --no-cache routing.zeus
  type router               (-): conflict-safe, cycle-free
  type routingnetwork       (2): conflict-safe, cycle-free
  type routingnetwork       (4): conflict-safe, cycle-free
  type routingnetwork       (any): conflict-safe, cycle-free
  2 component type(s), 4 summaries computed (0 cached); conflict-safe: router routingnetwork; cycle-free: router routingnetwork

A real conflict is found modularly, with a witness, under the Z401
code and a failing exit — agreeing with the elaborated lint's Z101:

  $ zeusc corpus section8 > section8.zeus
  $ zeusc check --modular --no-cache section8.zeus
  type c                    (-): conflict-unproven, cycle-free
  7:13-22: error(lint)[Z401]: drive conflict on 'out' in c: assignment and assignment can fire together when x = 1, y = 1
  1 component type(s), 1 summary computed (0 cached); conflict-safe: none; cycle-free: c
  [1]

A combinational cycle is caught at the type level (Z403): registers
are the only cycle breakers, and this loop has none:

  $ cat > cycle.zeus <<'EOF'
  > TYPE top = COMPONENT (IN a: boolean; OUT z: boolean) IS
  > SIGNAL u, v: boolean;
  > BEGIN
  >   u := AND(a, v);
  >   v := NOT u;
  >   z := v;
  > END;
  > 
  > SIGNAL t: top;
  > EOF
  $ zeusc check --modular --no-cache cycle.zeus 2>&1 | grep -c Z403
  1

Breaking the loop with a register removes the finding:

  $ cat > reg.zeus <<'EOF'
  > TYPE top = COMPONENT (IN a: boolean; OUT z: boolean) IS
  > SIGNAL u: boolean;
  >        r: REG;
  > BEGIN
  >   u := AND(a, r.out);
  >   r.in := NOT u;
  >   z := u;
  > END;
  > 
  > SIGNAL t: top;
  > EOF
  $ zeusc check --modular --no-cache reg.zeus 2>&1 | grep -c Z403
  0
  [1]

Symbolic parameter-range checking (Z404): an ARRAY index that is out
of bounds for the instantiated parameter:

  $ cat > oob.zeus <<'EOF'
  > TYPE t(n) = COMPONENT (IN a: boolean; OUT z: boolean) IS
  > SIGNAL s: ARRAY[1..n] OF boolean;
  > BEGIN
  >   s[n + 1] := a;
  >   z := s[1];
  > END;
  > 
  > SIGNAL x: t(4);
  > EOF
  $ zeusc check --modular --no-cache oob.zeus 2>&1 | grep -o 'Z404' | head -1
  Z404

The persistent cache: the second run computes nothing and serves every
summary from disk (keyed by the source digest, so an edit invalidates):

  $ zeusc check --modular --cache-dir cache.d htree.zeus | tail -1
  2 component type(s), 6 summaries computed (0 cached); conflict-safe: htree leaftype; cycle-free: htree leaftype
  $ zeusc check --modular --cache-dir cache.d htree.zeus | tail -1
  1 component type(s), 0 summaries computed (2 cached); conflict-safe: htree; cycle-free: htree

The summaries feed lint as a fast pre-pass: nets owned by proven types
are classified safe without expanding or solving anything:

  $ zeusc lint --modular htree.zeus
  modular pre-pass: 2 component type(s), 4 summaries computed (0 cached); conflict-safe: htree leaftype; cycle-free: htree leaftype
  2:31-33: warning(lint)[Z503]: 'a.s[1].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[1].s[1].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[1].s[1].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[1].s[2].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[1].s[2].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[1].s[3].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[1].s[3].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[1].s[4].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[1].s[4].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[2].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[2].s[1].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[2].s[1].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[2].s[2].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[2].s[2].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[2].s[3].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[2].s[3].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[2].s[4].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[2].s[4].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[3].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[3].s[1].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[3].s[1].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[3].s[2].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[3].s[2].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[3].s[3].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[3].s[3].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[3].s[4].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[3].s[4].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[4].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[4].s[1].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[4].s[1].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[4].s[2].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[4].s[2].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[4].s[3].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[4].s[3].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:31-33: warning(lint)[Z503]: 'a.s[4].s[4].in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  3:31-33: warning(lint)[Z503]: 'a.s[4].s[4].leaf.in' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  0 multi-driven nets: 0 safe, 0 conflict, 0 needs-runtime-check; 36 findings (0 case splits)
