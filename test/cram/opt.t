The optimizer: four-valued abstract interpretation plus the
proof-carrying netlist reduction behind `zeusc opt`, and the Z501-Z503
lint diagnostics it powers.

routing(4) is structurally fully live, but most of its drivers are
plain wires (unguarded copies): copy propagation merges them away
without touching behaviour.  The proof table is empty — the two
unobservable classes are producer-less input tails, and every driven
class is varying:

  $ zeusc corpus routing4 > routing4.zeus
  $ zeusc opt --stats routing4.zeus
  abstract interpretation: 326 classes: 0 const-0, 0 const-1, 0 stuck-X, 0 stuck-Z, 326 varying; 2 unobservable (568 steps)
  reduction: gates 4 -> 4, drivers 360 -> 160 (0 constants folded, 200 copies merged, 200 nets eliminated)

The pattern matcher mixes gates and copies; only the copies merge:

  $ zeusc corpus patternmatch3 > pm3.zeus
  $ zeusc opt pm3.zeus
  abstract interpretation: 111 classes: 0 const-0, 0 const-1, 0 stuck-X, 0 stuck-Z, 111 varying; 1 unobservable (245 steps)
  reduction: gates 27 -> 27, drivers 83 -> 57 (0 constants folded, 26 copies merged, 26 nets eliminated)

The same run as JSON (stats object only; the per-class table carries
one row per class):

  $ zeusc opt pm3.zeus --format json | tail -3
    ],
    "stats": {"classes":111,"const0":0,"const1":0,"stuckx":0,"stuckz":0,"varying":111,"unobservable":1,"gates_before":27,"gates_after":27,"drivers_before":83,"drivers_after":57,"consts_folded":0,"copies_merged":26,"nets_eliminated":26,"steps":245}
  }

A handcrafted design exercising all three diagnostic codes: 'one' is
provably constant (Z501), 'm' receives two always-firing conflicting
drives and is stuck at UNDEF (Z502), and 'w' feeds nothing observable
(Z503):

  $ cat > diag.zeus <<'EOF'
  > TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS
  > SIGNAL one, g, w: boolean; m: multiplex;
  > BEGIN
  >   one := 1;
  >   g := 1;
  >   IF g THEN m := 1 END;
  >   IF g THEN m := 0 END;
  >   w := NOT x;
  >   y := AND(OR(one, x), OR(m, x))
  > END;
  > SIGNAL s: t;
  > EOF
  $ zeusc lint diag.zeus
  net 's.m' (multiplex, 2 producers): conflict — witness: any input
  7:13-19: error(lint)[Z101]: 's.m' can receive two driving values in one cycle (drivers at 6:13-19 and 7:13-19; witness: any input) — this would burn transistors
  2:8-11: warning(lint)[Z501]: 's.one' is provably constant 1 under all inputs — zeusc opt folds it
  2:13-14: warning(lint)[Z501]: 's.g' is provably constant 1 under all inputs — zeusc opt folds it
  2:16-17: warning(lint)[Z503]: 's.w' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)
  2:28-29: warning(lint)[Z502]: 's.m' is stuck at UNDEF: its drivers provably conflict (or yield UNDEF) every cycle under all inputs
  1 multi-driven net: 0 safe, 1 conflict, 0 needs-runtime-check; 5 findings (0 case splits)
  [1]

The same findings as JSON, carrying the stable codes:

  $ zeusc lint diag.zeus --format json
  {
    "version": 2,
    "nets": [
      {"net":"s.m","kind":"multiplex","producers":2,"class":"conflict","detail":"witness: any input"}
    ],
    "findings": [
      {"code":"Z101","severity":"error","kind":"lint","loc":{"line":7,"col":13,"end_line":7,"end_col":19},"message":"'s.m' can receive two driving values in one cycle (drivers at 6:13-19 and 7:13-19; witness: any input) — this would burn transistors"},
      {"code":"Z501","severity":"warning","kind":"lint","loc":{"line":2,"col":8,"end_line":2,"end_col":11},"message":"'s.one' is provably constant 1 under all inputs — zeusc opt folds it"},
      {"code":"Z501","severity":"warning","kind":"lint","loc":{"line":2,"col":13,"end_line":2,"end_col":14},"message":"'s.g' is provably constant 1 under all inputs — zeusc opt folds it"},
      {"code":"Z503","severity":"warning","kind":"lint","loc":{"line":2,"col":16,"end_line":2,"end_col":17},"message":"'s.w' is driven but reaches no register or output port — the logic feeding it is dead (zeusc opt removes it)"},
      {"code":"Z502","severity":"warning","kind":"lint","loc":{"line":2,"col":28,"end_line":2,"end_col":29},"message":"'s.m' is stuck at UNDEF: its drivers provably conflict (or yield UNDEF) every cycle under all inputs"}
    ],
    "summary": {"nets":1,"safe":0,"safe_sequential":0,"conflict":1,"needs_runtime_check":0,"findings":5,"splits":0}
  }
  [1]

The new codes suppress like any other, and a typo is still rejected
against the full registry:

  $ zeusc lint diag.zeus --suppress Z501 --suppress Z502 --suppress Z503
  net 's.m' (multiplex, 2 producers): conflict — witness: any input
  7:13-19: error(lint)[Z101]: 's.m' can receive two driving values in one cycle (drivers at 6:13-19 and 7:13-19; witness: any input) — this would burn transistors
  1 multi-driven net: 0 safe, 1 conflict, 0 needs-runtime-check; 1 finding (0 case splits)
  [1]
  $ zeusc lint diag.zeus --suppress Z599
  lint: unknown diagnostic code Z599 for --suppress; valid codes: Z101, Z102, Z201, Z202, Z301, Z302, Z401, Z402, Z403, Z404, Z405, Z406, Z501, Z502, Z503, Z601, Z602, Z603
  [2]

The reduction is visible end to end: the optimized simulation of the
conflict design agrees with the plain one on the output port:

  $ zeusc sim diag.zeus --cycles 2 --watch s.y
  cycle 1: s.y=U
  cycle 2: s.y=U
  runtime error (cycle 0) [Z101] s.m: more than one driving assignment in cycle 0 — burning transistors (value forced to UNDEF)
  runtime error (cycle 1) [Z101] s.m: more than one driving assignment in cycle 1 — burning transistors (value forced to UNDEF)
  $ zeusc sim diag.zeus --cycles 2 --watch s.y --optimize
  cycle 1: s.y=U
  cycle 2: s.y=U
  runtime error (cycle 0) [Z101] s.m: more than one driving assignment in cycle 0 — burning transistors (value forced to UNDEF)
  runtime error (cycle 1) [Z101] s.m: more than one driving assignment in cycle 1 — burning transistors (value forced to UNDEF)
