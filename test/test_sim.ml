(* The firing simulator of section 8: gate evaluation, registers,
   multiplex resolution, runtime checks, the evaluation-sequence trace,
   and the equivalence of all seven scheduling engines (including the
   cross-cycle incremental engine, the domain-parallel one and the
   bytecode-compiled one). *)

open Zeus

let logic = Alcotest.testable Logic.pp Logic.equal

let compile src =
  match Zeus.compile src with
  | Ok d -> d
  | Error diags -> Alcotest.failf "compile: %a" Fmt.(list Diag.pp) diags

let simple_gate op =
  compile
    (Printf.sprintf
       "TYPE t = COMPONENT (IN a,b: boolean; OUT y: boolean) IS BEGIN y := \
        %s(a,b) END; SIGNAL s: t;"
       op)

let eval2 d a b =
  let sim = Sim.create d in
  Sim.poke sim "s.a" [ a ];
  Sim.poke sim "s.b" [ b ];
  Sim.step sim;
  Sim.peek_bit sim "s.y"

let test_gate_sim () =
  let d = simple_gate "AND" in
  Alcotest.check logic "and 1 1" Logic.One (eval2 d Logic.One Logic.One);
  Alcotest.check logic "and 0 U" Logic.Zero (eval2 d Logic.Zero Logic.Undef);
  let d = simple_gate "NAND" in
  Alcotest.check logic "nand 1 1" Logic.Zero (eval2 d Logic.One Logic.One);
  let d = simple_gate "XOR" in
  Alcotest.check logic "xor 1 0" Logic.One (eval2 d Logic.One Logic.Zero);
  let d = simple_gate "EQUAL" in
  Alcotest.check logic "equal 0 0" Logic.One (eval2 d Logic.Zero Logic.Zero)

let test_unpoked_inputs_undef () =
  let d = simple_gate "OR" in
  let sim = Sim.create d in
  Sim.step sim;
  Alcotest.check logic "OR(U,U)" Logic.Undef (Sim.peek_bit sim "s.y");
  Sim.poke sim "s.a" [ Logic.One ];
  Sim.step sim;
  (* early firing: OR fires 1 even though b is UNDEF *)
  Alcotest.check logic "OR(1,U)" Logic.One (Sim.peek_bit sim "s.y")

(* ---- registers (section 5.1) ---- *)

let reg_design =
  "TYPE t = COMPONENT (IN d,en: boolean; OUT q: boolean) IS SIGNAL r: REG; \
   BEGIN IF en THEN r.in := d END; q := r.out END; SIGNAL s: t;"

let test_reg_delay () =
  let d = compile reg_design in
  let sim = Sim.create d in
  Sim.poke_bool sim "s.en" true;
  Sim.poke_bool sim "s.d" true;
  Sim.step sim;
  (* q is last cycle's input: still UNDEF *)
  Alcotest.check logic "initial out" Logic.Undef (Sim.peek_bit sim "s.q");
  Sim.step sim;
  Alcotest.check logic "one cycle later" Logic.One (Sim.peek_bit sim "s.q")

let test_reg_holds_value () =
  let d = compile reg_design in
  let sim = Sim.create d in
  Sim.poke_bool sim "s.en" true;
  Sim.poke_bool sim "s.d" true;
  Sim.step sim;
  (* disable: the input gets NOINFL, the register keeps its value *)
  Sim.poke_bool sim "s.en" false;
  Sim.step sim;
  Sim.step sim;
  Sim.step sim;
  Alcotest.check logic "held" Logic.One (Sim.peek_bit sim "s.q")

let test_reg_same_cycle_read_write () =
  (* "in the same clock cycle the in port is assigned and the stored
     value is read at the out port" — a toggle flip-flop *)
  let d =
    compile
      "TYPE t = COMPONENT (IN a: boolean; OUT q: boolean) IS SIGNAL r: REG; \
       BEGIN IF RSET THEN r.in := 0 ELSE r.in := XOR(r.out,a) END; q := \
       r.out END; SIGNAL s: t;"
  in
  let sim = Sim.create d in
  Sim.poke_bool sim "s.a" true;
  Sim.reset sim;
  Sim.step sim;
  Alcotest.check logic "t1" Logic.Zero (Sim.peek_bit sim "s.q")
  |> fun () ->
  Sim.step sim;
  Alcotest.check logic "t2" Logic.One (Sim.peek_bit sim "s.q");
  Sim.step sim;
  Alcotest.check logic "t3" Logic.Zero (Sim.peek_bit sim "s.q")

(* ---- multiplex resolution and the runtime check ---- *)

let mux_design =
  "TYPE t = COMPONENT (IN b,c,x,y: boolean; m: multiplex) IS BEGIN IF b \
   THEN m := x END; IF c THEN m := y END END; SIGNAL s: t;"

let test_mux_single_drive () =
  let d = compile mux_design in
  let sim = Sim.create d in
  Sim.poke_bool sim "s.b" true;
  Sim.poke_bool sim "s.c" false;
  Sim.poke_bool sim "s.x" true;
  Sim.poke_bool sim "s.y" false;
  Sim.step sim;
  Alcotest.check logic "selected x" Logic.One (Sim.peek_bit sim "s.m");
  Alcotest.(check int) "no runtime errors" 0
    (List.length (Sim.runtime_errors sim))

let test_mux_no_drive_noinfl () =
  let d = compile mux_design in
  let sim = Sim.create d in
  Sim.poke_bool sim "s.b" false;
  Sim.poke_bool sim "s.c" false;
  Sim.poke_bool sim "s.x" true;
  Sim.poke_bool sim "s.y" false;
  Sim.step sim;
  Alcotest.check logic "high impedance" Logic.Noinfl (Sim.peek_bit sim "s.m")

let test_mux_conflict_detected () =
  (* both guards on: the "burning transistors" runtime check fires *)
  let d = compile mux_design in
  let sim = Sim.create d in
  Sim.poke_bool sim "s.b" true;
  Sim.poke_bool sim "s.c" true;
  Sim.poke_bool sim "s.x" true;
  Sim.poke_bool sim "s.y" false;
  Sim.step sim;
  Alcotest.(check bool) "conflict reported" true
    (Sim.runtime_errors sim <> []);
  Alcotest.check logic "forced UNDEF" Logic.Undef (Sim.peek_bit sim "s.m")

let test_mux_undef_guard () =
  (* IF with UNDEF condition drives UNDEF (section 8) *)
  let d = compile mux_design in
  let sim = Sim.create d in
  Sim.poke_bool sim "s.c" false;
  Sim.poke_bool sim "s.x" true;
  Sim.poke_bool sim "s.y" false;
  (* b left undefined *)
  Sim.step sim;
  Alcotest.check logic "undef guard" Logic.Undef (Sim.peek_bit sim "s.m")

let test_if_else_exclusive () =
  let d =
    compile
      "TYPE t = COMPONENT (IN b,x,y: boolean; OUT z: boolean) IS BEGIN IF b \
       THEN z := x ELSE z := y END END; SIGNAL s: t;"
  in
  let sim = Sim.create d in
  Sim.poke_bool sim "s.b" false;
  Sim.poke_bool sim "s.x" true;
  Sim.poke_bool sim "s.y" false;
  Sim.step sim;
  Alcotest.check logic "else branch" Logic.Zero (Sim.peek_bit sim "s.z");
  Alcotest.(check int) "exclusive" 0 (List.length (Sim.runtime_errors sim));
  Sim.poke_bool sim "s.b" true;
  Sim.step sim;
  Alcotest.check logic "then branch" Logic.One (Sim.peek_bit sim "s.z")

let test_elsif_chain () =
  let d =
    compile
      "TYPE bo2 = ARRAY[1..2] OF boolean; t = COMPONENT (IN a: bo2; OUT z: \
       ARRAY[1..2] OF boolean) IS BEGIN IF EQUAL(a,(0,0)) THEN z := (0,1) \
       ELSIF EQUAL(a,(0,1)) THEN z := (1,0) ELSIF EQUAL(a,(1,0)) THEN z := \
       (1,1) ELSE z := (0,0) END END; SIGNAL s: t;"
  in
  let sim = Sim.create d in
  List.iter
    (fun (input, want) ->
      Sim.poke_int sim "s.a" input;
      Sim.step sim;
      Alcotest.(check (option int))
        (Printf.sprintf "increment %d" input)
        (Some want) (Sim.peek_int sim "s.z"))
    [ (0, 1); (1, 2); (2, 3); (3, 0) ];
  Alcotest.(check int) "no conflicts" 0 (List.length (Sim.runtime_errors sim))

(* ---- boolean conversion on reads ---- *)

let test_noinfl_reads_undef_on_boolean () =
  let d =
    compile
      "TYPE t = COMPONENT (IN b,x: boolean; OUT z: boolean) IS SIGNAL m: \
       multiplex; BEGIN IF b THEN m := x END; z := m END; SIGNAL s: t;"
  in
  let sim = Sim.create d in
  Sim.poke_bool sim "s.b" false;
  Sim.poke_bool sim "s.x" true;
  Sim.step sim;
  (* m is NOINFL; the boolean z reads UNDEF through the amplifier *)
  Alcotest.check logic "amplified" Logic.Undef (Sim.peek_bit sim "s.z")

(* ---- RANDOM (predefined, section 7) ---- *)

let test_random_deterministic () =
  let d =
    compile
      "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS BEGIN y := \
       AND(a,RANDOM()) END; SIGNAL s: t;"
  in
  let run seed =
    let sim = Sim.create ~seed d in
    Sim.poke_bool sim "s.a" true;
    List.init 20 (fun _ ->
        Sim.step sim;
        Sim.peek_bit sim "s.y")
  in
  Alcotest.(check bool) "same seed same stream" true (run 1 = run 1);
  Alcotest.(check bool) "streams contain both values" true
    (let s = run 7 in
     List.exists (Logic.equal Logic.One) s
     && List.exists (Logic.equal Logic.Zero) s)

(* ---- evaluation trace (E5) ---- *)

let test_trace_section8 () =
  let d = compile Corpus.section8_example in
  let sim = Sim.create d in
  Sim.set_trace sim true;
  List.iter
    (fun (p, v) -> Sim.poke_bool sim p v)
    [ ("top.a", true); ("top.b", true); ("top.cc", false); ("top.x", true);
      ("top.y", false); ("top.rin", true) ];
  Sim.step sim;
  let trace = Sim.trace_last_cycle sim in
  let fired_names = List.map fst trace in
  (* inputs fire before the gated output *)
  let idx name =
    let rec go i = function
      | [] -> Alcotest.failf "%s did not fire" name
      | n :: _ when n = name -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 fired_names
  in
  Alcotest.(check bool) "a before out" true (idx "top.a" < idx "top.out");
  Alcotest.(check bool) "x before out" true (idx "top.x" < idx "top.out");
  Alcotest.check logic "out value" Logic.One (Sim.peek_bit sim "top.out");
  (* rout is r.out: UNDEF in cycle 1, rin's value in cycle 2 *)
  Alcotest.check logic "rout cycle1" Logic.Undef (Sim.peek_bit sim "top.rout");
  Sim.step sim;
  Alcotest.check logic "rout cycle2" Logic.One (Sim.peek_bit sim "top.rout")

let test_section8_conflict_case () =
  (* x=1 and y=1 with AND(a,b) <> cc: the paper's own trace would drive
     out twice — the runtime check reports it (E9) *)
  let d = compile Corpus.section8_example in
  let sim = Sim.create d in
  List.iter
    (fun (p, v) -> Sim.poke_bool sim p v)
    [ ("top.a", true); ("top.b", true); ("top.cc", false); ("top.x", true);
      ("top.y", true); ("top.rin", false) ];
  Sim.step sim;
  Alcotest.(check bool) "double drive detected" true
    (Sim.runtime_errors sim <> [])

(* ---- engine equivalence (the section 8 claim) ---- *)

let engines_agree_on src ~inputs ~cycles =
  let d = compile src in
  let run engine =
    let sim = Sim.create ~engine d in
    List.iter (fun (p, v) -> Sim.poke sim p [ v ]) inputs;
    Sim.step_n sim cycles;
    Sim.snapshot sim
  in
  match List.map run Sim.all_engines with
  | [] -> true
  | a :: rest -> List.for_all (( = ) a) rest

let test_engines_agree_adder () =
  Alcotest.(check bool) "adder" true
    (engines_agree_on (Corpus.adder_n 8)
       ~inputs:
         [ ("adder.cin", Logic.One) ]
       ~cycles:1)

(* corpus-wide: every design, random stimulus on every top-level input
   pin, several cycles — all three engines bit-identical *)
let test_engines_agree_corpus () =
  List.iter
    (fun (name, src) ->
      let d = compile src in
      let inputs = Check.top_input_nets d in
      let rng = Random.State.make [| 77 |] in
      let stimulus =
        List.init 4 (fun _ ->
            List.map
              (fun _ ->
                if Random.State.bool rng then Logic.One else Logic.Zero)
              inputs)
      in
      let run engine =
        let sim = Sim.create ~engine d in
        List.map
          (fun vec ->
            Sim.poke_nets sim inputs vec;
            Sim.step sim;
            Sim.snapshot sim)
          stimulus
      in
      let f = run Sim.Firing in
      List.iter
        (fun engine ->
          Alcotest.(check bool)
            (name ^ ": firing = " ^ Sim.engine_name engine)
            true
            (run engine = f))
        [ Sim.Firing_strict; Sim.Fixpoint; Sim.Relaxation; Sim.Incremental;
          Sim.Parallel; Sim.Compiled ])
    Corpus.all_named

let test_engines_agree_blackjack () =
  Alcotest.(check bool) "blackjack" true
    (engines_agree_on Corpus.blackjack
       ~inputs:[ ("bj.ycard", Logic.One) ]
       ~cycles:5)

let prop_engines_agree_random_inputs =
  QCheck.Test.make ~count:50 ~name:"engines_agree_random_adder_inputs"
    QCheck.(triple (int_bound 255) (int_bound 255) bool)
    (fun (a, b, cin) ->
      let d = compile (Corpus.adder_n 8) in
      let run engine =
        let sim = Sim.create ~engine d in
        Sim.poke_int_lsb sim "adder.a" a;
        Sim.poke_int_lsb sim "adder.b" b;
        Sim.poke_bool sim "adder.cin" cin;
        Sim.step sim;
        (Sim.peek_int_lsb sim "adder.s", Sim.peek_bit sim "adder.cout")
      in
      let r1 = run Sim.Firing in
      List.for_all (fun e -> run e = r1) Sim.all_engines
      && fst r1 = Some ((a + b + if cin then 1 else 0) land 255))

(* Drive-conflict re-propagation: the section 8 example one gate deeper.
   The first driving value (x=1) lets NOT and AND consumers fire before
   the second driver turns m into UNDEF — without the re-propagation
   pass, z and w would keep the stale values of the first drive, and
   differ between engines. *)
let test_conflict_repropagates_downstream () =
  let d =
    compile
      "TYPE t = COMPONENT (IN b,c,x,y: boolean; OUT z,w: boolean) IS SIGNAL \
       m: multiplex; BEGIN IF b THEN m := x END; IF c THEN m := y END; z := \
       NOT(m); w := AND(z,z) END; SIGNAL s: t;"
  in
  List.iter
    (fun engine ->
      let sim = Sim.create ~engine d in
      Sim.poke_bool sim "s.b" true;
      Sim.poke_bool sim "s.c" true;
      Sim.poke_bool sim "s.x" true;
      Sim.poke_bool sim "s.y" false;
      Sim.step sim;
      let n = Sim.engine_name engine in
      Alcotest.check logic (n ^ ": z re-fired") Logic.Undef
        (Sim.peek_bit sim "s.z");
      Alcotest.check logic (n ^ ": w re-fired") Logic.Undef
        (Sim.peek_bit sim "s.w");
      Alcotest.(check bool) (n ^ ": conflict reported") true
        (Sim.runtime_errors sim <> []))
    Sim.all_engines

(* Standing conflicts are re-reported every cycle by every engine,
   including the incremental one (which otherwise does no work on a
   quiescent cycle). *)
let test_conflict_reported_each_cycle () =
  let d = compile mux_design in
  List.iter
    (fun engine ->
      let sim = Sim.create ~engine d in
      Sim.poke_bool sim "s.b" true;
      Sim.poke_bool sim "s.c" true;
      Sim.poke_bool sim "s.x" true;
      Sim.poke_bool sim "s.y" false;
      Sim.step_n sim 3;
      Alcotest.(check int)
        (Sim.engine_name engine ^ ": one error per cycle")
        3
        (List.length (Sim.runtime_errors sim)))
    Sim.all_engines

(* The Relaxation mop-up fallback must sweep against creation order like
   the engine's main loop: on a design with a combinational cycle (a
   check error, but still simulatable) the outputs fed by the forced
   nets fire in reverse creation order — and all engines still agree. *)
let test_mop_up_respects_relaxation_order () =
  let src =
    "TYPE t = COMPONENT (IN a: boolean; OUT z1,z2: boolean) IS SIGNAL p,q: \
     boolean; BEGIN p := AND(a,q); q := OR(p,a); z1 := p; z2 := q END; \
     SIGNAL s: t;"
  in
  let d =
    match Zeus.elaborate_with_diags src with
    | Some d, _ -> d
    | None, diags -> Alcotest.failf "parse: %a" Fmt.(list Diag.pp) diags
  in
  let trace engine =
    let sim = Sim.create ~engine d in
    Sim.set_trace sim true;
    (* a stays UNDEF so the p/q cycle never resolves and mop-up runs *)
    Sim.step sim;
    (List.map fst (Sim.trace_last_cycle sim), Sim.snapshot sim)
  in
  let idx names n =
    match List.find_index (( = ) n) names with
    | Some i -> i
    | None -> Alcotest.failf "%s did not fire" n
  in
  let fx_names, fx_snap = trace Sim.Fixpoint in
  let rx_names, rx_snap = trace Sim.Relaxation in
  Alcotest.(check bool) "fixpoint mop-up fires z1 before z2" true
    (idx fx_names "s.z1" < idx fx_names "s.z2");
  Alcotest.(check bool) "relaxation mop-up fires z2 before z1" true
    (idx rx_names "s.z2" < idx rx_names "s.z1");
  Alcotest.(check bool) "cyclic design: engines still agree" true
    (fx_snap = rx_snap)

(* Sim.reset must not clobber the testbench's poke of RSET: holding the
   design in reset by poking RSET=1 survives a reset pulse. *)
let test_reset_restores_rset_poke () =
  let d =
    compile
      "TYPE t = COMPONENT (IN a: boolean; OUT q: boolean) IS SIGNAL r: REG; \
       BEGIN IF RSET THEN r.in := 0 ELSE r.in := XOR(r.out,a) END; q := \
       r.out END; SIGNAL s: t;"
  in
  List.iter
    (fun engine ->
      let n = Sim.engine_name engine in
      let sim = Sim.create ~engine d in
      Sim.poke_bool sim "s.a" true;
      Sim.poke sim "RSET" [ Logic.One ];
      Sim.step_n sim 2;
      Alcotest.check logic (n ^ ": held in reset") Logic.Zero
        (Sim.peek_bit sim "s.q");
      Sim.reset sim;
      (* the explicit One poke is restored, not overwritten with Zero *)
      Sim.step_n sim 2;
      Alcotest.check logic (n ^ ": still held after reset pulse") Logic.Zero
        (Sim.peek_bit sim "s.q");
      Sim.unpoke sim "RSET";
      Sim.step_n sim 2;
      Alcotest.check logic (n ^ ": toggles once released") Logic.One
        (Sim.peek_bit sim "s.q"))
    Sim.all_engines

(* The incremental engine does zero work on fully quiescent cycles and
   still reports the right values. *)
let test_incremental_quiescent_zero_visits () =
  let d = compile (Corpus.adder_n 16) in
  let sim = Sim.create ~engine:Sim.Incremental d in
  Sim.poke_int_lsb sim "adder.a" 1234;
  Sim.poke_int_lsb sim "adder.b" 4321;
  Sim.poke_bool sim "adder.cin" false;
  Sim.step sim;
  (* cold start: full evaluation *)
  Sim.step sim;
  (* first warm cycle: consumes the stale seed marks *)
  let v = Sim.node_visits sim in
  Sim.step_n sim 5;
  Alcotest.(check int) "quiescent cycles visit no nodes" v
    (Sim.node_visits sim);
  Alcotest.(check (option int)) "sum still right" (Some 5555)
    (Sim.peek_int_lsb sim "adder.s");
  (* a one-bit change wakes only a small cone *)
  Sim.poke_bool sim "adder.cin" true;
  Sim.step sim;
  Alcotest.(check (option int)) "incremental update" (Some 5556)
    (Sim.peek_int_lsb sim "adder.s")

(* Snapshots are identical across all seven engines on random
   multi-cycle poke sequences over designs that include drive
   conflicts, registers and aliasing — with UNDEF in the stimulus
   alphabet, and runtime-error counts agreeing too.  Failures print
   the design name and stimulus, and shrink to a minimal poke
   sequence (fewer cycles, shorter vectors, values toward 0). *)
let prop_snapshot_identity =
  let pool =
    [|
      ("mux", mux_design);
      ("reg", reg_design);
      ("section8", Corpus.section8_example);
      ("adder4", Corpus.adder_n 4);
      ("blackjack", Corpus.blackjack);
    |]
  in
  let print (di, stimulus) =
    Printf.sprintf "design %s, stimulus [%s]"
      (fst pool.(di))
      (String.concat "; "
         (List.map
            (fun vec ->
              String.concat ""
                (List.map
                   (function 0 -> "0" | 1 -> "1" | _ -> "U")
                   vec))
            stimulus))
  in
  let shrink =
    QCheck.Shrink.(
      pair nil (list ~shrink:(list ~shrink:int)))
  in
  let gen =
    QCheck.Gen.(
      pair
        (int_bound (Array.length pool - 1))
        (list_size (1 -- 6) (list_size (0 -- 8) (int_bound 2))))
  in
  QCheck.Test.make ~count:40 ~name:"snapshot_identity_all_engines"
    (QCheck.make ~print ~shrink gen)
    (fun (di, stimulus) ->
      let d = compile (snd pool.(di)) in
      let inputs = Check.top_input_nets d in
      let lv = function
        | 0 -> Logic.Zero
        | 1 -> Logic.One
        | _ -> Logic.Undef
      in
      let run engine =
        let sim = Sim.create ~engine d in
        let snaps =
          List.map
            (fun vec ->
              List.iteri
                (fun i id ->
                  match List.nth_opt vec (i mod max 1 (List.length vec)) with
                  | Some v -> Sim.poke_nets sim [ id ] [ lv v ]
                  | None -> ())
                inputs;
              Sim.step sim;
              Sim.snapshot sim)
            stimulus
        in
        (snaps, List.length (Sim.runtime_errors sim))
      in
      let r0 = run Sim.Firing in
      List.for_all (fun e -> run e = r0) Sim.all_engines)

(* firing does strictly less work than the sweeping baselines (E8) *)
let test_firing_fewer_visits () =
  let d = compile (Corpus.adder_n 32) in
  let visits engine =
    let sim = Sim.create ~engine d in
    Sim.poke_int_lsb sim "adder.a" 123456789;
    Sim.poke_int_lsb sim "adder.b" 987654321;
    Sim.poke_bool sim "adder.cin" false;
    Sim.step sim;
    Sim.node_visits sim
  in
  let f = visits Sim.Firing
  and fx = visits Sim.Fixpoint
  and rx = visits Sim.Relaxation in
  Alcotest.(check bool)
    (Printf.sprintf "firing(%d) < fixpoint(%d)" f fx)
    true (f < fx);
  Alcotest.(check bool)
    (Printf.sprintf "fixpoint(%d) <= relaxation(%d)" fx rx)
    true (fx <= rx)

(* ---- parallel engine ---- *)

(* The domain-parallel engine at real fan-out (grain 1 chunks every
   dirty level across the pool) is bit-identical to firing on the whole
   corpus, including error traces, at several domain counts. *)
let test_parallel_chunked_agrees_corpus () =
  List.iter
    (fun (name, src) ->
      let d = compile src in
      let inputs = Check.top_input_nets d in
      let rng = Random.State.make [| 99 |] in
      let stimulus =
        List.init 4 (fun _ ->
            List.map
              (fun _ ->
                if Random.State.bool rng then Logic.One else Logic.Zero)
              inputs)
      in
      let run sim =
        let snaps =
          List.map
            (fun vec ->
              Sim.poke_nets sim inputs vec;
              Sim.step sim;
              Sim.snapshot sim)
            stimulus
        in
        let errs =
          List.map
            (fun (e : Sim.runtime_error) ->
              (e.Sim.err_cycle, e.Sim.err_net, e.Sim.err_code))
            (Sim.runtime_errors sim)
        in
        (snaps, List.sort compare errs)
      in
      let reference = run (Sim.create ~engine:Sim.Firing d) in
      List.iter
        (fun jobs ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: parallel(jobs=%d) = firing" name jobs)
            true
            (run (Sim.create ~engine:Sim.Parallel ~jobs ~grain:1 d)
            = reference))
        [ 1; 2; 4 ])
    Corpus.all_named

(* Satellite fix guard: engine re-entry on one handle under the reused
   domain pool.  [Sim.restart] returns the simulator to power-up, so
   two consecutive runs on the same parallel handle must give identical
   cycle-for-cycle traces — residual dirty-set, conflict-list or
   per-domain buffer state from run 1 must not leak into run 2 — and
   both must match a fresh incremental handle.  A mid-run [Sim.reset]
   (RSET pulse) before the restart makes the residual state as dirty as
   it gets. *)
let test_parallel_restart_reentry () =
  let d = compile Corpus.section8_example in
  let pokes =
    [ [ ("top.a", true); ("top.b", true); ("top.x", true); ("top.y", false) ];
      [ ("top.cc", true) ];
      [ ("top.a", false) ];
      [ ("top.rin", true) ];
      [] ]
  in
  let run_once sim =
    let snaps =
      List.map
        (fun vec ->
          List.iter (fun (p, v) -> Sim.poke_bool sim p v) vec;
          Sim.step sim;
          Sim.snapshot sim)
        pokes
    in
    Sim.reset sim;
    (* leave conflict / dirty machinery mid-flight before re-entry *)
    (snaps, List.length (Sim.runtime_errors sim))
  in
  let psim = Sim.create ~engine:Sim.Parallel ~jobs:4 ~grain:1 d in
  let first = run_once psim in
  Sim.restart psim;
  let second = run_once psim in
  Alcotest.(check bool) "restart + re-entry: identical traces" true
    (first = second);
  let isim = Sim.create ~engine:Sim.Incremental d in
  Alcotest.(check bool) "matches a fresh incremental run" true
    (run_once isim = first)

(* Work-breakdown stats: only the parallel engine reports them, the
   counters are deterministic across identical runs, and the per-domain
   visit counts account for every evaluated node task. *)
let test_parallel_stats_deterministic () =
  let d = compile (Corpus.adder_n 16) in
  let run () =
    let sim = Sim.create ~engine:Sim.Parallel ~jobs:4 ~grain:1 d in
    Sim.poke_int_lsb sim "adder.a" 21845;
    Sim.poke_int_lsb sim "adder.b" 13107;
    Sim.poke_bool sim "adder.cin" false;
    Sim.step sim;
    Sim.poke_bool sim "adder.cin" true;
    Sim.step_n sim 3;
    match Sim.parallel_stats sim with
    | None -> Alcotest.fail "parallel engine must report stats"
    | Some s -> s
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "stats are deterministic" true (a = b);
  Alcotest.(check int) "jobs recorded" 4 a.Sim.par_jobs;
  Alcotest.(check bool) "warm cycles were chunked" true
    (a.Sim.par_chunked_levels > 0 && a.Sim.par_barriers > 0);
  Alcotest.(check int) "domain visits account for node tasks"
    a.Sim.par_node_tasks
    (Array.fold_left ( + ) 0 a.Sim.par_domain_visits);
  let other = Sim.create ~engine:Sim.Incremental d in
  Sim.step other;
  Alcotest.(check bool) "serial engines report no parallel stats" true
    (Sim.parallel_stats other = None)

(* The RANDOM stream is a pure function of (seed, net, cycle): the
   same seed gives the same stream on every engine at every domain
   count, and different seeds diverge. *)
let test_parallel_random_stream () =
  let d =
    compile
      "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS BEGIN y := \
       AND(a,RANDOM()) END; SIGNAL s: t;"
  in
  let run ~engine ?jobs ~seed () =
    let sim = Sim.create ~engine ?jobs ~grain:1 ~seed d in
    Sim.poke_bool sim "s.a" true;
    List.init 24 (fun _ ->
        Sim.step sim;
        Sim.peek_bit sim "s.y")
  in
  let reference = run ~engine:Sim.Firing ~seed:7 () in
  List.iter
    (fun engine ->
      List.iter
        (fun jobs ->
          Alcotest.(check bool)
            (Printf.sprintf "%s jobs=%d: same RANDOM stream"
               (Sim.engine_name engine) jobs)
            true
            (run ~engine ~jobs ~seed:7 () = reference))
        [ 1; 2; 4 ])
    Sim.all_engines;
  Alcotest.(check bool) "different seeds diverge" true
    (run ~engine:Sim.Parallel ~jobs:4 ~seed:8 () <> reference)

(* --engine parallel --jobs 1 short-circuits to the serial incremental
   path: no domain pool is consulted, no level is chunked, no barrier
   crossed — every parallel work counter stays 0 — and the values still
   match a plain incremental run. *)
let test_parallel_jobs1_serial_fast_path () =
  let d = compile (Corpus.adder_n 16) in
  let drive sim =
    Sim.poke_int_lsb sim "adder.a" 21845;
    Sim.poke_int_lsb sim "adder.b" 13107;
    Sim.poke_bool sim "adder.cin" false;
    Sim.step_n sim 4;
    Sim.snapshot sim
  in
  let sim = Sim.create ~engine:Sim.Parallel ~jobs:1 ~grain:1 d in
  let psnap = drive sim in
  Alcotest.(check bool) "values match incremental" true
    (psnap = drive (Sim.create ~engine:Sim.Incremental d));
  match Sim.parallel_stats sim with
  | None -> Alcotest.fail "parallel handle must report stats"
  | Some s ->
      Alcotest.(check int) "no chunked levels" 0 s.Sim.par_chunked_levels;
      Alcotest.(check int) "no barriers" 0 s.Sim.par_barriers;
      Alcotest.(check int) "no node tasks" 0 s.Sim.par_node_tasks;
      Alcotest.(check int) "no net tasks" 0 s.Sim.par_net_tasks;
      Alcotest.(check int) "no fan-out seen" 0 s.Sim.par_max_fanout

(* ---- the compiled engine ---- *)

(* Restart + re-entry on one compiled handle: [Sim.restart] must return
   the packed planes, registers and poke mirror to power-up, so two
   consecutive runs give identical cycle-for-cycle traces — and both
   match a fresh incremental handle. *)
let test_compiled_restart_reentry () =
  let d = compile Corpus.section8_example in
  let pokes =
    [ [ ("top.a", true); ("top.b", true); ("top.x", true); ("top.y", false) ];
      [ ("top.cc", true) ];
      [ ("top.a", false) ];
      [ ("top.rin", true) ];
      [] ]
  in
  let run_once sim =
    let snaps =
      List.map
        (fun vec ->
          List.iter (fun (p, v) -> Sim.poke_bool sim p v) vec;
          Sim.step sim;
          Sim.snapshot sim)
        pokes
    in
    Sim.reset sim;
    (snaps, List.length (Sim.runtime_errors sim))
  in
  let csim = Sim.create ~engine:Sim.Compiled d in
  let first = run_once csim in
  Sim.restart csim;
  let second = run_once csim in
  Alcotest.(check bool) "restart + re-entry: identical traces" true
    (first = second);
  let isim = Sim.create ~engine:Sim.Incremental d in
  Alcotest.(check bool) "matches a fresh incremental run" true
    (run_once isim = first)

(* Program-shape stats: only the compiled engine reports them, every
   counter except the compile time is a pure function of the design,
   and the opcode counts are consistent. *)
let test_compiled_stats_deterministic () =
  let d = compile (Corpus.adder_n 16) in
  let shape () =
    match Sim.compiled_stats (Sim.create ~engine:Sim.Compiled d) with
    | None -> Alcotest.fail "compiled engine must report stats"
    | Some s ->
        (s.Sim.c_ops, s.Sim.c_scalar_ops, s.Sim.c_vector_ops,
         s.Sim.c_vector_lanes, s.Sim.c_visits_per_cycle)
  in
  let ((ops, scalar, vector, lanes, visits) as a) = shape () in
  Alcotest.(check bool) "stats are deterministic" true (a = shape ());
  Alcotest.(check bool) "program is non-empty" true (ops > 0);
  Alcotest.(check int) "scalar + vector = ops" ops (scalar + vector);
  Alcotest.(check bool) "wide input seeds vectorized" true (lanes > 0);
  Alcotest.(check bool) "program encodes every node" true (visits > 0);
  let other = Sim.create ~engine:Sim.Incremental d in
  Alcotest.(check bool) "other engines report no compiled stats" true
    (Sim.compiled_stats other = None)

(* ---- VCD output ---- *)

let test_vcd' () =
  let d = compile (Corpus.adder_n 4) in
  let sim = Sim.create d in
  let vcd = Vcd.create sim [ "adder.a"; "adder.s"; "adder.cout" ] in
  Sim.poke_int_lsb sim "adder.a" 5;
  Sim.poke_int_lsb sim "adder.b" 3;
  Sim.poke_bool sim "adder.cin" false;
  Sim.step sim;
  Vcd.sample vcd;
  let out = Vcd.contents vcd in
  let contains needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "enddefinitions" true (contains "$enddefinitions");
  Alcotest.(check bool) "var adder_a" true (contains "adder_a");
  Alcotest.(check bool) "timestamp" true (contains "#1")

(* Identifier codes across the 94-ary rollover: every code printable,
   all distinct (a collision would silently merge two signals in any
   viewer), and the boundary values spelled as expected. *)
let test_vcd_id_codes () =
  Alcotest.(check string) "93 is the last single char" "~" (Vcd.id_code 93);
  Alcotest.(check string) "94 rolls over" "!!" (Vcd.id_code 94);
  Alcotest.(check string) "95" "!\"" (Vcd.id_code 95);
  Alcotest.(check int) "94^2 is two chars" 2
    (String.length (Vcd.id_code ((94 * 94) - 1)));
  Alcotest.(check int) "94^2 + 94 is three chars" 3
    (String.length (Vcd.id_code ((94 * 94) + 94)));
  let n = (94 * 94) + 200 in
  let seen = Hashtbl.create n in
  for i = 0 to n - 1 do
    let code = Vcd.id_code i in
    Alcotest.(check bool)
      (Printf.sprintf "code %d (%s) is fresh" i code)
      false (Hashtbl.mem seen code);
    Hashtbl.replace seen code ();
    String.iter
      (fun c ->
        if c < '!' || c > '~' then
          Alcotest.failf "code %d contains unprintable %C" i c)
      code
  done

(* Scalar VCD characters round-trip through the standard alphabet for
   all four values, in either case. *)
let prop_vcd_char_roundtrip =
  QCheck.Test.make ~count:100 ~name:"vcd_char_roundtrip"
    QCheck.(int_bound 3)
    (fun i ->
      let v =
        match i with
        | 0 -> Logic.Zero
        | 1 -> Logic.One
        | 2 -> Logic.Undef
        | _ -> Logic.Noinfl
      in
      let c = Vcd.vcd_char v in
      Vcd.logic_of_vcd_char c = Some v
      && Vcd.logic_of_vcd_char (Char.uppercase_ascii c) = Some v)

(* A quiescent cycle emits nothing — not even the [#cycle] timestamp,
   which is buffered until the first change record. *)
let test_vcd_quiescent_no_timestamp () =
  let d = compile (Corpus.adder_n 4) in
  let sim = Sim.create d in
  let vcd = Vcd.create sim [ "adder.s" ] in
  Sim.poke_int_lsb sim "adder.a" 5;
  Sim.poke_int_lsb sim "adder.b" 3;
  Sim.poke_bool sim "adder.cin" false;
  for _ = 1 to 4 do
    Sim.step sim;
    Vcd.sample vcd
  done;
  let out = Vcd.contents vcd in
  let stamps =
    String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 out
  in
  Alcotest.(check int) "only the first (changing) cycle is stamped" 1 stamps

(* [to_file] writes exactly [contents] and closes the channel. *)
let test_vcd_to_file () =
  let d = compile (Corpus.adder_n 4) in
  let sim = Sim.create d in
  let vcd = Vcd.create sim [ "adder.s" ] in
  Sim.poke_int_lsb sim "adder.a" 1;
  Sim.poke_int_lsb sim "adder.b" 2;
  Sim.poke_bool sim "adder.cin" false;
  Sim.step sim;
  Vcd.sample vcd;
  let path = Filename.temp_file "zeus_vcd" ".vcd" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Vcd.to_file vcd path;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let data = really_input_string ic len in
      close_in ic;
      Alcotest.(check string) "file holds the dump" (Vcd.contents vcd) data)

(* ------------------------------------------------------------------ *)
(* Batch lane extraction at the 32-class word boundary                  *)
(* ------------------------------------------------------------------ *)

(* The compiled engine packs 32 classes per word in each of its two
   planes, and a batch lane group runs up to 8 scenarios through one
   dispatch pass.  Lane extraction must not bleed between lanes or
   across the word boundary, so these designs put the highest class
   index just below, exactly at, and just above 32: [pairs]
   passthrough in/out pairs plus an optional dangling input give
   2*pairs(+1) net classes. *)
let lane_src ~pairs ~extra =
  Printf.sprintf
    "TYPE t = COMPONENT (IN x: ARRAY[1..%d] OF boolean%s; OUT z: \
     ARRAY[1..%d] OF boolean) IS BEGIN FOR i := 1 TO %d DO z[i] := x[i] END \
     END;\nSIGNAL s: t;"
    pairs
    (if extra then "; IN y: boolean" else "")
    pairs pairs

let test_batch_lane_boundary () =
  List.iter
    (fun (pairs, extra, nets) ->
      let d = compile (lane_src ~pairs ~extra) in
      let probe = Sim.create d in
      Alcotest.(check int)
        (Printf.sprintf "net classes (pairs=%d, extra=%b)" pairs extra)
        nets
        (Array.length (Sim.snapshot probe));
      (* one distinct three-valued pattern per lane, so a bit leaking
         into a neighbouring lane or word changes some snapshot *)
      let pattern r =
        List.init pairs (fun i ->
            match (i + r) mod 3 with
            | 0 -> Logic.One
            | 1 -> Logic.Zero
            | _ -> Logic.Undef)
      in
      let mk r =
        {
          Sim.br_stim = [| [ ("s.x", pattern r) ] |];
          br_cycles = 2;
          br_seed = None;
          br_watch = [ "s.z" ];
        }
      in
      let runs = List.init 8 mk in
      let tmpl = Sim.create ~engine:Sim.Compiled ~jobs:1 d in
      let results, stats = Sim.run_batch ~jobs:1 ~lanes:8 tmpl runs in
      Alcotest.(check int) "one lane group" 1 stats.Sim.bs_lane_groups;
      Alcotest.(check int) "all runs lane-packed" 8 stats.Sim.bs_lane_runs;
      List.iteri
        (fun r (res : Sim.batch_result) ->
          (* the passthrough output reads back each lane's own poke *)
          (match res.Sim.bres_watched with
          | [ ("s.z", bits) ] ->
              if bits <> pattern r then
                Alcotest.failf
                  "lane %d (pairs=%d): output does not match its own poke" r
                  pairs
          | _ -> Alcotest.fail "expected exactly the watched bus");
          (* and the whole snapshot matches a fresh serial handle *)
          let sim = Sim.create ~engine:Sim.Incremental d in
          Sim.poke sim "s.x" (pattern r);
          Sim.step sim;
          Sim.step sim;
          if res.Sim.bres_snapshot <> Sim.snapshot sim then
            Alcotest.failf "lane %d (pairs=%d): snapshot differs from serial"
              r pairs)
        results)
    [ (14, true, 31); (15, false, 32); (15, true, 33) ]

let () =
  Alcotest.run "sim"
    [
      ( "gates",
        [
          Alcotest.test_case "truth tables" `Quick test_gate_sim;
          Alcotest.test_case "undef inputs" `Quick test_unpoked_inputs_undef;
        ] );
      ( "registers",
        [
          Alcotest.test_case "delay" `Quick test_reg_delay;
          Alcotest.test_case "hold" `Quick test_reg_holds_value;
          Alcotest.test_case "same-cycle r/w" `Quick
            test_reg_same_cycle_read_write;
        ] );
      ( "multiplex",
        [
          Alcotest.test_case "single drive" `Quick test_mux_single_drive;
          Alcotest.test_case "no drive" `Quick test_mux_no_drive_noinfl;
          Alcotest.test_case "conflict" `Quick test_mux_conflict_detected;
          Alcotest.test_case "undef guard" `Quick test_mux_undef_guard;
          Alcotest.test_case "if/else exclusive" `Quick test_if_else_exclusive;
          Alcotest.test_case "elsif chain" `Quick test_elsif_chain;
          Alcotest.test_case "amplifier" `Quick
            test_noinfl_reads_undef_on_boolean;
        ] );
      ( "random",
        [ Alcotest.test_case "deterministic" `Quick test_random_deterministic ]
      );
      ( "trace",
        [
          Alcotest.test_case "section 8 example" `Quick test_trace_section8;
          Alcotest.test_case "conflict case" `Quick
            test_section8_conflict_case;
        ] );
      ( "engines",
        [
          Alcotest.test_case "adder" `Quick test_engines_agree_adder;
          Alcotest.test_case "blackjack" `Quick test_engines_agree_blackjack;
          Alcotest.test_case "whole corpus" `Quick test_engines_agree_corpus;
          QCheck_alcotest.to_alcotest prop_engines_agree_random_inputs;
          QCheck_alcotest.to_alcotest prop_snapshot_identity;
          Alcotest.test_case "work comparison" `Quick test_firing_fewer_visits;
        ] );
      ( "conflict-repropagation",
        [
          Alcotest.test_case "downstream re-fire" `Quick
            test_conflict_repropagates_downstream;
          Alcotest.test_case "reported each cycle" `Quick
            test_conflict_reported_each_cycle;
        ] );
      ( "scheduling-fixes",
        [
          Alcotest.test_case "relaxation mop-up order" `Quick
            test_mop_up_respects_relaxation_order;
          Alcotest.test_case "reset restores RSET poke" `Quick
            test_reset_restores_rset_poke;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "quiescent cycles are free" `Quick
            test_incremental_quiescent_zero_visits;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "chunked corpus agreement" `Quick
            test_parallel_chunked_agrees_corpus;
          Alcotest.test_case "restart + re-entry on one handle" `Quick
            test_parallel_restart_reentry;
          Alcotest.test_case "deterministic stats" `Quick
            test_parallel_stats_deterministic;
          Alcotest.test_case "random stream engine/jobs invariant" `Quick
            test_parallel_random_stream;
          Alcotest.test_case "jobs=1 serial fast path" `Quick
            test_parallel_jobs1_serial_fast_path;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "restart + re-entry on one handle" `Quick
            test_compiled_restart_reentry;
          Alcotest.test_case "deterministic program stats" `Quick
            test_compiled_stats_deterministic;
        ] );
      ( "batch",
        [
          Alcotest.test_case "lane extraction at 31/32/33 nets" `Quick
            test_batch_lane_boundary;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "format" `Quick test_vcd';
          Alcotest.test_case "id codes at the 94-ary rollover" `Quick
            test_vcd_id_codes;
          QCheck_alcotest.to_alcotest prop_vcd_char_roundtrip;
          Alcotest.test_case "quiescent cycles unstamped" `Quick
            test_vcd_quiescent_no_timestamp;
          Alcotest.test_case "to_file writes the dump" `Quick
            test_vcd_to_file;
        ] );
    ]
