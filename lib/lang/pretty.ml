(* Pretty-printer: AST back to Zeus concrete syntax.  Used by the `pp`
   subcommand of zeusc and by the parser round-trip tests. *)

open Ast

let cbinop_to_string = function
  | Cadd -> "+"
  | Csub -> "-"
  | Cor -> "OR"
  | Cmul -> "*"
  | Cdiv -> "DIV"
  | Cmod -> "MOD"
  | Cand -> "AND"

let crel_to_string = function
  | Ceq -> "="
  | Cneq -> "<>"
  | Clt -> "<"
  | Cle -> "<="
  | Cgt -> ">"
  | Cge -> ">="

let rec pp_const_expr ppf = function
  | Cnum (n, _) -> Fmt.int ppf n
  | Cref (id, []) -> Fmt.string ppf id.id
  | Cref (id, args) ->
      Fmt.pf ppf "%s(%a)" id.id
        Fmt.(list ~sep:(any ", ") pp_const_expr)
        args
  | Cbin (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_const_expr a (cbinop_to_string op)
        pp_const_expr b
  | Cun (Cneg, a) -> Fmt.pf ppf "(-%a)" pp_const_expr a
  | Cun (Cpos, a) -> Fmt.pf ppf "(+%a)" pp_const_expr a
  | Cun (Cnot, a) -> Fmt.pf ppf "(NOT %a)" pp_const_expr a
  | Crel (r, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_const_expr a (crel_to_string r)
        pp_const_expr b

let rec pp_sig_const ppf = function
  | Sc_value (n, _) -> Fmt.int ppf n
  | Sc_ref id -> Fmt.string ppf id.id
  | Sc_bin (a, b, _) ->
      Fmt.pf ppf "BIN(%a,%a)" pp_const_expr a pp_const_expr b
  | Sc_tuple (elems, _) ->
      Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ",") pp_sig_const) elems

let rec pp_selector ppf = function
  | Sel_index e -> Fmt.pf ppf "[%a]" pp_const_expr e
  | Sel_range (a, b) -> Fmt.pf ppf "[%a..%a]" pp_const_expr a pp_const_expr b
  | Sel_num s -> Fmt.pf ppf "[NUM(%s)]" (signal_ref_to_string s)
  | Sel_field f -> Fmt.pf ppf ".%s" f.id
  | Sel_field_range (f, g) -> Fmt.pf ppf ".%s..%s" f.id g.id

and signal_ref_to_string s = Fmt.str "%a" pp_signal_ref s

and pp_signal_ref ppf = function
  | Star _ -> Fmt.string ppf "*"
  | Sig (id, sels) ->
      Fmt.string ppf id.id;
      List.iter (pp_selector ppf) sels

let rec pp_expr ppf = function
  | Eref s -> pp_signal_ref ppf s
  | Ecall (id, [], [ arg ], _) when id.id = "NOT" ->
      (* NOT binds to a single primary, so a NOT-headed operand needs
         grouping parentheses to survive a reparse *)
      (match arg with
      | Ecall (inner, _, _, _) when inner.id = "NOT" ->
          Fmt.pf ppf "NOT (%a)" pp_expr arg
      | _ -> Fmt.pf ppf "NOT %a" pp_expr arg)
  | Ecall (id, params, args, _) ->
      Fmt.string ppf id.id;
      if params <> [] then
        Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ",") pp_const_expr) params;
      Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ",") pp_expr) args
  | Ebin (a, b, _) -> Fmt.pf ppf "BIN(%a,%a)" pp_const_expr a pp_const_expr b
  | Econst sc -> pp_sig_const ppf sc
  | Estar (None, _) -> Fmt.string ppf "*"
  | Estar (Some w, _) -> Fmt.pf ppf "*:%a" pp_const_expr w
  | Etuple (es, _) -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ",") pp_expr) es

let pp_mode ppf = function
  | Min -> Fmt.string ppf "IN "
  | Mout -> Fmt.string ppf "OUT "
  | Minout -> ()

let pp_idlist ppf ids =
  Fmt.(list ~sep:(any ",") (using (fun i -> i.id) string)) ppf ids

let side_to_string = function
  | Side_top -> "TOP"
  | Side_right -> "RIGHT"
  | Side_bottom -> "BOTTOM"
  | Side_left -> "LEFT"

let pp_for_header ppf h =
  Fmt.pf ppf "FOR %s := %a %s %a" h.fvar.id pp_const_expr h.ffrom
    (match h.fdir with To -> "TO" | Downto -> "DOWNTO")
    pp_const_expr h.fto

let rec pp_ty ppf = function
  | Tname (id, []) -> Fmt.string ppf id.id
  | Tname (id, args) ->
      Fmt.pf ppf "%s(%a)" id.id Fmt.(list ~sep:(any ",") pp_const_expr) args
  | Tarray (lo, hi, elem, _) ->
      Fmt.pf ppf "ARRAY [%a..%a] OF %a" pp_const_expr lo pp_const_expr hi
        pp_ty elem
  | Tcomponent (c, _) -> pp_component ppf c

and pp_component ppf c =
  Fmt.pf ppf "@[<v 2>COMPONENT (%a)"
    Fmt.(list ~sep:(any "; ") pp_fparam)
    c.cparams;
  if c.chead_layout <> [] then
    Fmt.pf ppf "@ { %a }" pp_layout_list c.chead_layout;
  Option.iter (fun ty -> Fmt.pf ppf " : %a" pp_ty ty) c.cresult;
  (match c.cbody with
  | None -> ()
  | Some b ->
      Fmt.pf ppf " IS@ ";
      (match b.buses with
      | None -> ()
      | Some ids -> Fmt.pf ppf "USES %a;@ " pp_idlist ids);
      List.iter (fun d -> Fmt.pf ppf "%a@ " pp_decl d) b.bdecls;
      if b.bbody_layout <> [] then
        Fmt.pf ppf "{ %a }@ " pp_layout_list b.bbody_layout;
      Fmt.pf ppf "@[<v 2>BEGIN@ %a@]@ END" pp_stmts b.bstmts);
  Fmt.pf ppf "@]"

and pp_fparam ppf p =
  Fmt.pf ppf "%a%a: %a" pp_mode p.fmode pp_idlist p.fnames pp_ty p.fty

and pp_stmts ppf stmts = Fmt.(list ~sep:(any ";@ ") pp_stmt) ppf stmts

and pp_stmt ppf = function
  | Sassign (s, e, _) -> Fmt.pf ppf "%a := %a" pp_signal_ref s pp_expr e
  | Salias (s, e, _) -> Fmt.pf ppf "%a == %a" pp_signal_ref s pp_expr e
  | Sconnect (s, args, _) ->
      Fmt.pf ppf "%a(%a)" pp_signal_ref s Fmt.(list ~sep:(any ",") pp_expr) args
  | Sfor (h, seq, body, _) ->
      Fmt.pf ppf "@[<v 2>%a DO%s@ %a@]@ END" pp_for_header h
        (if seq then " SEQUENTIALLY" else "")
        pp_stmts body
  | Swhen (arms, otherwise, _) ->
      List.iteri
        (fun i (c, body) ->
          Fmt.pf ppf "@[<v 2>%s %a THEN@ %a@]@ "
            (if i = 0 then "WHEN" else "OTHERWISEWHEN")
            pp_const_expr c pp_stmts body)
        arms;
      if otherwise <> [] then
        Fmt.pf ppf "@[<v 2>OTHERWISE@ %a@]@ " pp_stmts otherwise;
      Fmt.string ppf "END"
  | Sif (arms, else_, _) ->
      List.iteri
        (fun i (c, body) ->
          Fmt.pf ppf "@[<v 2>%s %a THEN@ %a@]@ "
            (if i = 0 then "IF" else "ELSIF")
            pp_expr c pp_stmts body)
        arms;
      if else_ <> [] then Fmt.pf ppf "@[<v 2>ELSE@ %a@]@ " pp_stmts else_;
      Fmt.string ppf "END"
  | Sresult (e, _) -> Fmt.pf ppf "RESULT %a" pp_expr e
  | Sparallel (body, _) ->
      Fmt.pf ppf "@[<v 2>PARALLEL@ %a@]@ END" pp_stmts body
  | Ssequential (body, _) ->
      Fmt.pf ppf "@[<v 2>SEQUENTIAL@ %a@]@ END" pp_stmts body
  | Swith (s, body, _) ->
      Fmt.pf ppf "@[<v 2>WITH %a DO@ %a@]@ END" pp_signal_ref s pp_stmts body

and pp_layout_list ppf l = Fmt.(list ~sep:(any ";@ ") pp_layout_stmt) ppf l

and pp_layout_stmt ppf = function
  | Lcell (orient, s, _) ->
      Option.iter (fun o -> Fmt.pf ppf "%s " o.id) orient;
      pp_signal_ref ppf s
  | Lreplace (orient, s, ty, _) ->
      Option.iter (fun o -> Fmt.pf ppf "%s " o.id) orient;
      Fmt.pf ppf "%a = %a" pp_signal_ref s pp_ty ty
  | Lorder (dir, body, _) ->
      Fmt.pf ppf "@[<v 2>ORDER %s@ %a@]@ END" dir.id pp_layout_list body
  | Lfor (h, body, _) ->
      Fmt.pf ppf "@[<v 2>%a DO@ %a@]@ END" pp_for_header h pp_layout_list body
  | Lboundary (side, refs, _) ->
      Fmt.pf ppf "%s %a" (side_to_string side)
        Fmt.(list ~sep:(any ";") pp_signal_ref)
        refs
  | Lwhen (arms, otherwise, _) ->
      List.iteri
        (fun i (c, body) ->
          Fmt.pf ppf "@[<v 2>%s %a THEN@ %a@]@ "
            (if i = 0 then "WHEN" else "OTHERWISEWHEN")
            pp_const_expr c pp_layout_list body)
        arms;
      if otherwise <> [] then
        Fmt.pf ppf "@[<v 2>OTHERWISE@ %a@]@ " pp_layout_list otherwise;
      Fmt.string ppf "END"
  | Lwith (s, body, _) ->
      Fmt.pf ppf "@[<v 2>WITH %a DO@ %a@]@ END" pp_signal_ref s
        pp_layout_list body

and pp_constant ppf = function
  | Knum e -> pp_const_expr ppf e
  | Ksig sc -> pp_sig_const ppf sc

and pp_decl ppf = function
  | Dconst entries ->
      Fmt.pf ppf "@[<v 2>CONST@ %a@]"
        Fmt.(
          list ~sep:(any "@ ") (fun ppf (id, c) ->
              pf ppf "%s = %a;" id.Ast.id pp_constant c))
        entries
  | Dtype defs ->
      Fmt.pf ppf "@[<v 2>TYPE@ %a@]"
        Fmt.(
          list ~sep:(any "@ ") (fun ppf d ->
              pf ppf "%s%a = %a;" d.tname.id
                (fun ppf -> function
                  | [] -> ()
                  | ids -> pf ppf "(%a)" pp_idlist ids)
                d.tformals pp_ty d.tty))
        defs
  | Dsignal entries ->
      Fmt.pf ppf "@[<v 2>SIGNAL@ %a@]"
        Fmt.(
          list ~sep:(any "@ ") (fun ppf (ids, ty) ->
              pf ppf "%a: %a;" pp_idlist ids pp_ty ty))
        entries

let pp_program ppf prog = Fmt.(list ~sep:(any "@ @ ") pp_decl) ppf prog

let program_to_string prog = Fmt.str "@[<v>%a@]" pp_program prog

let expr_to_string e = Fmt.str "%a" pp_expr e

let const_expr_to_string e = Fmt.str "%a" pp_const_expr e

let ty_to_string t = Fmt.str "@[<v>%a@]" pp_ty t

let stmt_to_string s = Fmt.str "@[<v>%a@]" pp_stmt s
