(* The domain-parallel simulator: {!Sim} under [Sim.Parallel]
   scheduling.  Identical observable behaviour to every serial engine —
   snapshots, runtime errors and the RANDOM stream are bit-identical at
   any domain count — only the work distribution differs: each level of
   the incremental dirty cone is chunked across a reusable domain pool
   and merged at a barrier.  See {!Sim} for the full API. *)

type t = Sim.t

let create ?seed ?jobs ?grain design =
  Sim.create ~engine:Sim.Parallel ?seed ?jobs ?grain design

let step = Sim.step

let step_n = Sim.step_n

let reset = Sim.reset

let restart = Sim.restart

let poke = Sim.poke

let poke_bool = Sim.poke_bool

let poke_int = Sim.poke_int

let peek = Sim.peek

let peek_bit = Sim.peek_bit

let peek_int = Sim.peek_int

let node_visits = Sim.node_visits

let runtime_errors = Sim.runtime_errors

let snapshot = Sim.snapshot

let stats sim =
  match Sim.parallel_stats sim with
  | Some s -> s
  | None -> invalid_arg "Parallel.stats: not a parallel simulator"
