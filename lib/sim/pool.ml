(* A reusable domain pool for the parallel simulation engine.

   OCaml 5 caps the number of domains that can ever exist concurrently
   (~128), so the simulator must not spawn domains per run — a fuzz
   session creates thousands of simulators.  One process-wide pool is
   created lazily, grows to the largest [jobs] ever requested, and is
   shut down from [at_exit].

   [run ~jobs f] is a fork-join region: it runs [f 0] on the calling
   domain and [f 1] .. [f (jobs-1)] on pool workers, returning when all
   have finished.  Regions are serialized by construction — the caller
   does not return until every worker chunk is done, so one pool serves
   any number of simulator handles.  An exception in any chunk is
   re-raised at the caller after the join (the barrier still completes,
   leaving the pool reusable).

   The protocol is a classic job-epoch monitor: publishing a region
   increments [job_id] under the mutex and broadcasts; every worker
   remembers the last epoch it saw, so a worker that naps through an
   entire region (possible only for non-participating workers) simply
   skips it.  All shared-array access inside the simulator is ordered by
   this mutex: the region publish happens-before every chunk, and every
   chunk happens-before the caller's return. *)

type t = {
  m : Mutex.t;
  cv : Condition.t; (* doubles for "new region" and "workers done" *)
  mutable workers : unit Domain.t list;
  mutable n_workers : int;
  mutable job : (int -> unit) option;
  mutable job_id : int;
  mutable active : int; (* chunk count of the current region *)
  mutable remaining : int; (* worker chunks still running *)
  mutable failed : exn option;
  mutable stop : bool;
}

(* stay well under the runtime's ~128 concurrent-domain ceiling, leaving
   room for the main domain and anything the host program spawns *)
let max_jobs = 64

let worker pool index () =
  let seen = ref 0 in
  Mutex.lock pool.m;
  while not pool.stop do
    if pool.job_id <> !seen then begin
      seen := pool.job_id;
      match pool.job with
      | Some f when index < pool.active - 1 ->
          Mutex.unlock pool.m;
          let err = (try f (index + 1); None with e -> Some e) in
          Mutex.lock pool.m;
          (match err with
          | Some e when pool.failed = None -> pool.failed <- Some e
          | _ -> ());
          pool.remaining <- pool.remaining - 1;
          if pool.remaining = 0 then Condition.broadcast pool.cv
      | _ -> ()
    end
    else Condition.wait pool.cv pool.m
  done;
  Mutex.unlock pool.m

let create () =
  {
    m = Mutex.create ();
    cv = Condition.create ();
    workers = [];
    n_workers = 0;
    job = None;
    job_id = 0;
    active = 0;
    remaining = 0;
    failed = None;
    stop = false;
  }

let shutdown pool =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.cv;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.workers;
  pool.workers <- [];
  pool.n_workers <- 0

let global = lazy (
  let pool = create () in
  at_exit (fun () -> shutdown pool);
  pool)

let run ~jobs f =
  let jobs = min jobs max_jobs in
  if jobs <= 1 then f 0
  else begin
    let pool = Lazy.force global in
    Mutex.lock pool.m;
    while pool.n_workers < jobs - 1 do
      pool.workers <- Domain.spawn (worker pool pool.n_workers) :: pool.workers;
      pool.n_workers <- pool.n_workers + 1
    done;
    pool.job <- Some f;
    pool.active <- jobs;
    pool.remaining <- jobs - 1;
    pool.failed <- None;
    pool.job_id <- pool.job_id + 1;
    Condition.broadcast pool.cv;
    Mutex.unlock pool.m;
    let caller_err = (try f 0; None with e -> Some e) in
    Mutex.lock pool.m;
    while pool.remaining > 0 do
      Condition.wait pool.cv pool.m
    done;
    pool.job <- None;
    let worker_err = pool.failed in
    pool.failed <- None;
    Mutex.unlock pool.m;
    match caller_err with
    | Some e -> raise e
    | None -> ( match worker_err with Some e -> raise e | None -> ())
  end
