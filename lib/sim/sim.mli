(** Cycle-based simulation of elaborated designs — the firing-rule
    evaluator of report section 8, plus two baseline schedulers used by
    the E8 comparison.

    Per clock cycle every net is re-evaluated:
    - gate nodes fire as soon as their output is forced (AND fires 0 on
      the first 0 input);
    - a driver (IF) node fires NOINFL as soon as its guard is 0, the
      source value when the guard is 1, and UNDEF on an undefined guard;
    - a boolean net fires on its first driving value, a multiplex net
      once all its drivers have fired ("strongest survives");
    - a second driving value on a net in one cycle is a runtime error
      (the "burning transistors" check of section 4.7) and forces UNDEF.

    Registers latch at the end of the cycle: an input whose drivers all
    produced NOINFL keeps the stored value (section 5.1). *)

open Zeus_base
open Zeus_sem

(** The seven scheduling engines compute identical values (a tested
    invariant — section 8's "all orders lead to the same result"); they
    differ only in how much work they do, and on how many domains. *)
type engine =
  | Firing  (** event-driven, fires each node at most once *)
  | Firing_strict
      (** ablation of section 8's "as soon as" rule: every node waits for
          all of its inputs — same results, more work *)
  | Fixpoint  (** sweep all nodes in creation order until stable *)
  | Relaxation
      (** sweep against creation order — a stand-in for switch-level
          iterate-to-stability relaxation (Bryant 1981) *)
  | Incremental
      (** cross-cycle event-driven: after a full first cycle, only the
          cone of changed seeds (pokes that differ from the previous
          cycle, registers that latched a new value, RANDOM sources) is
          re-evaluated, in levelized schedule order ({!Sched});
          quiescent cycles cost O(dirty).  With {!set_trace} on, the
          per-cycle trace lists only the nets whose value {e changed}. *)
  | Parallel
      (** the incremental engine with each level of the dirty cone fired
          concurrently on a reusable domain pool ({!Pool}); registers
          still latch sequentially at the end of the cycle.  Snapshots,
          runtime errors and the RANDOM stream are bit-identical to
          every serial engine at any domain count: RANDOM draws are a
          pure function of (seed, class, cycle) ({!Prand}), and the
          per-cycle trace is sorted by class id within each level.
          [jobs <= 1] (and designs narrower than [grain]) short-circuit
          to the serial incremental path: no pool, no barriers.

          {b Demoted} to CLI name [parallel-level]: per-level chunking
          loses to the serial incremental engine at every domain count
          (BENCH_par.json), so it is kept for the differential matrix
          only — throughput work goes through {!run_batch}, which
          shards whole independent runs with zero cross-run barriers. *)
  | Compiled
      (** the levelized schedule lowered once to flat bytecode
          ({!Compile}, {!Bytecode}): dense opcode array, operand
          indices resolved at compile time, executed by a tight
          dispatch loop over a two-plane bit-packed value store where
          stride-1 runs (register files, copies, NOT chains, guarded
          multiplexes) evaluate 32 nets per word op.  Every node is
          re-evaluated every cycle; snapshots, error traces and the
          RANDOM stream are bit-identical to the other engines.
          Designs with combinational cycles fall back to full
          re-evaluation.  With {!set_trace} on, the per-cycle trace
          lists the changed nets in class order. *)

val engine_name : engine -> string

(** All engines, in declaration order — for tests and CLI enumeration. *)
val all_engines : engine list

(** Work breakdown of the {!Parallel} engine.  Every counter is a
    deterministic function of (design, stimulus, [jobs], [grain]) — no
    wall clock — so the output is golden-testable. *)
type par_stats = {
  par_jobs : int;  (** domains used for chunked levels *)
  par_levels : int;  (** warm levels that had any scheduled work *)
  par_chunked_levels : int;  (** levels fanned out on the domain pool *)
  par_barriers : int;  (** fork-join regions (one per chunked phase) *)
  par_node_tasks : int;  (** node evaluations in warm passes *)
  par_net_tasks : int;  (** net resolutions in warm passes *)
  par_max_fanout : int;  (** widest dirty node level seen *)
  par_domain_visits : int array;
      (** node evaluations per domain; unchunked work accrues to
          domain 0 *)
}

(** Shape of the {!Compiled} engine's program.  Every field except
    [c_compile_secs] is a deterministic function of the design — no
    wall clock — so the counters are golden-testable. *)
type compiled_stats = {
  c_ops : int;  (** program length, opcodes *)
  c_scalar_ops : int;
  c_vector_ops : int;  (** wide 32-lane word ops *)
  c_vector_lanes : int;  (** classes covered by vector ops *)
  c_visits_per_cycle : int;  (** node evaluations the program encodes *)
  c_check_ops : int;
      (** per-cycle runtime conflict-check sites kept, in classes *)
  c_discharged_ops : int;
      (** conflict-check sites elided by a static discharge proof *)
  c_compile_secs : float;  (** one-time lowering cost *)
}

type runtime_error = {
  err_cycle : int;
  err_net : string;
  err_code : string;
      (** stable diagnostic code ({!Zeus_base.Diag.Code}) — the same
          code the lint engine reports for this class of violation *)
  err_message : string;
}

type t

(** [create design] builds a simulator.  [seed] drives the RANDOM
    component deterministically (every draw is a pure function of the
    seed, the output class and the cycle, so the stream is identical in
    all engines).  [jobs] (default: {!Domain.recommended_domain_count},
    clamped to [Pool.max_jobs]) and [grain] (default 64: levels with
    fewer dirty nodes run on the calling domain) only affect the
    {!Parallel} engine — and only its work distribution, never its
    results.  [optimize] (default [false]) runs the proof-carrying
    reduction ({!Zeus_sem.Reduce}) before building the graph: constant
    and unobservable logic is dropped, while snapshots stay indexed by
    the same classes (unobservable classes may then read [None]); every
    engine accepts the reduced graph.

    [discharged] (compiled engine only) is a predicate over {e
    original canonical net ids} — the indexing of
    {!Zeus_sem.Seqprove.discharged} — marking nets whose runtime drive
    conflict check was statically proved redundant: their check ops
    compile away ([c_discharged_ops] counts them).  Values never
    change, only Z101 reporting; the proofs assume defined inputs, so
    the discharge is opt-in ([zeusc sim --discharge]). *)
val create :
  ?engine:engine -> ?seed:int -> ?jobs:int -> ?grain:int ->
  ?optimize:bool -> ?discharged:(int -> bool) -> Elaborate.design -> t

val design : t -> Elaborate.design

(** {1 Driving inputs}

    Paths are hierarchical ("adder.a", "bj.score.out") and resolve
    through {!Elaborate.resolve_path}.  Poked values persist across
    cycles until changed. *)

val poke : t -> string -> Logic.t list -> unit
val poke_nets : t -> int list -> Logic.t list -> unit
val poke_bool : t -> string -> bool -> unit

(** Poke an integer as BIN(v, width): index 1 is the most significant
    bit. *)
val poke_int : t -> string -> int -> unit

(** Poke an integer with index 1 as the {e least} significant bit (the
    convention of the report's rippleCarry example). *)
val poke_int_lsb : t -> string -> int -> unit

val unpoke : t -> string -> unit

(** {1 Observing} *)

val peek : t -> string -> Logic.t list
val peek_nets : t -> int list -> Logic.t list
val peek_bit : t -> string -> Logic.t

(** [None] when any bit is UNDEF/NOINFL. *)
val peek_int : t -> string -> int option

val peek_int_lsb : t -> string -> int option

(** Stored value of every register, by hierarchical path. *)
val reg_states : t -> (string * Logic.t) list

(** Values of all canonical nets after the last cycle — used to assert
    engine equivalence. *)
val snapshot : t -> Logic.t option array

(** {1 Running} *)

(** Evaluate one clock cycle and latch the registers. *)
val step : t -> unit

val step_n : t -> int -> unit

(** [run_until t ~max pred] steps until [pred t] holds; [Some cycles]
    stepped, or [None] after [max] cycles. *)
val run_until : t -> max:int -> (t -> bool) -> int option

(** Pulse the predefined RSET signal for one cycle. *)
val reset : t -> unit

(** Return the handle to its power-up state, exactly as a fresh
    {!create} with the same design, engine, seed and domain count:
    registers back to their initial values, all pokes forgotten, the
    cycle counter (and hence the RANDOM stream) rewound, and every
    residual dirty-set, conflict and per-domain buffer cleared — two
    consecutive runs on one handle are bit-identical. *)
val restart : t -> unit

val cycle_count : t -> int

(** {1 Instrumentation} *)

(** Runtime check violations collected so far, oldest first. *)
val runtime_errors : t -> runtime_error list

(** Total node evaluations — the work metric of experiment E8. *)
val node_visits : t -> int

(** Work breakdown of the {!Parallel} engine so far; [None] for every
    other engine. *)
val parallel_stats : t -> par_stats option

(** Shape of the {!Compiled} engine's program; [None] for every other
    engine and for cyclic designs (which fall back uncompiled). *)
val compiled_stats : t -> compiled_stats option

(** Switching activity: the nets with the most value changes between
    consecutive cycles so far (a classic dynamic-power proxy), highest
    first; gate temporaries are skipped. *)
val activity : ?top:int -> t -> (string * int) list

(** Sum of all value changes over all nets and cycles. *)
val total_toggles : t -> int

(** Record the firing order of each cycle (experiment E5). *)
val set_trace : t -> bool -> unit

val trace_last_cycle : t -> (string * Logic.t) list

(** {1 Batch engine}

    Throughput mode: many {e independent} runs of one design, sharded
    whole across the domain pool with zero cross-run barriers.  Each
    run replays deterministically wherever it lands because RANDOM
    draws are a pure function of (seed, class, cycle); when the
    template handle is {!Compiled} (and the design acyclic), up to
    [lanes] runs with equal cycle counts are packed into one
    {!Bytecode.run_lanes} pass — one dispatch walk evaluates K
    scenarios, each lane owning its packed planes, pokes and seed.
    Results are bit-identical to stepping each run serially on a fresh
    handle (the [batch_identity] property and oracle row O7). *)

(** One independent run: per-cycle pokes, a cycle count, an optional
    per-run RANDOM seed and paths to read back at the end. *)
type batch_run = {
  br_stim : (string * Logic.t list) list array;
      (** pokes applied before cycle [i]; cycles beyond the array keep
          the previously poked values, like a quiescent testbench *)
  br_cycles : int;
  br_seed : int option;  (** default: the template handle's seed *)
  br_watch : string list;  (** paths peeked after the final cycle *)
}

type batch_result = {
  bres_snapshot : Logic.t option array;  (** after the final cycle *)
  bres_snaps : Logic.t option array list;
      (** per-cycle snapshots, oldest first — only with [~snapshots] *)
  bres_errors : runtime_error list;
  bres_watched : (string * Logic.t list) list;
}

(** Work breakdown of a batch — deterministic functions of (design,
    runs, [jobs], [lanes]): no wall clock, so golden-testable. *)
type batch_stats = {
  bs_runs : int;
  bs_jobs : int;  (** effective domain count used for sharding *)
  bs_lanes : int;  (** requested lane width *)
  bs_lane_groups : int;  (** {!Bytecode.run_lanes} groups executed *)
  bs_lane_runs : int;  (** runs evaluated through the lane path *)
  bs_serial_runs : int;  (** runs evaluated one at a time *)
  bs_cycles : int;  (** total cycles across all runs *)
}

(** [run_batch t runs] executes every run independently and returns the
    results in order.  [t] is a template: it is never mutated, and its
    design/engine/seed/optimize choices are shared by all runs (so the
    graph, schedule and bytecode program are built once per batch, not
    once per run).  Contiguous slices of runs are sharded over [jobs]
    domains (default {!Domain.recommended_domain_count}, clamped to the
    pool size and the run count); within a slice, consecutive runs with
    equal cycle counts are packed [lanes] (default 8) at a time through
    the compiled lane path when [t] compiled, everything else falls
    back to a fresh serial handle per run.  [snapshots] additionally
    collects a snapshot after every cycle of every run (for the
    batch-vs-serial oracle).  Results and stats are deterministic for a
    given [jobs] — independent of scheduling. *)
val run_batch :
  ?jobs:int -> ?lanes:int -> ?snapshots:bool -> t -> batch_run list ->
  batch_result list * batch_stats
