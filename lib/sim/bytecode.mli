(** Flat bytecode VM for the compiled simulation engine.

    {!Compile} lowers the levelized schedule over the compacted class
    graph into a [prog]: one dense opcode array whose operand indices
    (class ids, immediates, register indices, scratch slots) were all
    resolved at compile time.  [run_cycle] executes it with a tight
    dispatch loop over a bit-packed two-plane value store — 32 classes
    per word pair — so the wide vectorizable ops (register seed/latch,
    copy, NOT, guarded multiplex resolution) evaluate 32 nets per
    handful of word ops.

    The program is a strict levelized evaluation: it computes exactly
    the per-cycle fixpoint of every other {!Sim} engine (section 8's
    "all orders agree" invariant), including drive-conflict forcing to
    UNDEF, the register latch rules and the stateless RANDOM stream
    keyed by (seed, class, cycle) ({!Prand}). *)

open Zeus_base

(** {1 Value codes}

    Two bits per value, Verilog aval/bval style: plane [a] holds the
    low bit, plane [b] the high bit — [0b00] ZERO, [0b01] ONE, [0b10]
    NOINFL, [0b11] UNDEF. *)

val code_zero : int
val code_one : int
val code_z : int
val code_x : int
val encode : Logic.t -> int
val decode : Logic.t array

(** {1 Operand encoding} *)

(** Immediate operand for a constant source. *)
val imm : int -> int

(** [guard] value of an unguarded driver op. *)
val no_guard : int

(** Gate kinds of {!Ogate}. *)

val gand : int
val gor : int
val gnand : int
val gnor : int
val gxor : int
val gnot : int
val gequal : int

(** Seed kinds of {!Oseed} ([kind >= 0] is a register index). *)

val seed_plain : int
val seed_clk : int
val seed_rset : int

type op =
  | Oseed of { cls : int; kind : int }
      (** load the cycle seed of a producer-less class: the poke if
          present, else CLK/RSET/register/UNDEF by [kind] *)
  | Ogate of {
      gate : int;
      args : int array;
      out : int;
      prod : int;  (** scratch slot, or [-1] to write [out] directly *)
      kbool : bool;
    }
  | Orandom of { out : int; prod : int }
      (** a draw of {!Prand.bool} keyed by the output class *)
  | Odriver of { guard : int; src : int; out : int; prod : int; kbool : bool }
  | Oresolve of { out : int; prods : int array; kbool : bool; chk : bool }
      (** multi-producer resolution over scratch slots; two or more
          driving values force UNDEF and — when [chk] — report a
          conflict ([chk] is false for classes whose conflict check the
          sequential prover discharged; the resolved value is
          unchanged) *)
  | Olatch of { reg : int; cls : int; seeded : bool }
      (** end-of-cycle register latch; [seeded] registers read a
          producer-less input (latch on any non-NOINFL value), others
          latch when the driven flag is set *)
  | Ovseed of { cls : int; len : int }
      (** wide plain seed: producer-less classes [cls..cls+len) read
          the packed poke mirror, UNDEF where unpoked *)
  | Ovregseed of { reg : int; cls : int; len : int }
      (** wide register seed: classes [cls..cls+len) read registers
          [reg..reg+len), with the packed poke mirror merged in *)
  | Ovcopy of { src : int; dst : int; len : int; kbool : bool; dr : bool }
      (** [dr] (here and below) is false when no lane feeds a register,
          letting the op skip the driven-plane write — the driven flags
          are read only by the latch ops *)
  | Ovnot of { src : int; dst : int; len : int; dr : bool }
  | Ovdriver of {
      guard : int;
      src : int;
      dst : int;
      len : int;
      kbool : bool;
      dr : bool;
    }
  | Ovmux2 of {
      g1 : int;
      s1 : int;
      g2 : int;
      s2 : int;
      dst : int;
      len : int;
      kbool : bool;
      dr : bool;
      chk : bool;
    }
      (** wide two-driver guarded multiplex resolution: lanes
          [dst..dst+len) each driven by [IF g1 -> s1+lane] and
          [IF g2 -> s2+lane]; per-lane drive counting, conflict
          detection (skipped when [chk] is false) and NOINFL/UNDEF
          filling happen wordwise *)
  | Ovlatch of { reg : int; cls : int; len : int; seeded : bool }

type prog = {
  ops : op array;
  n_classes : int;
  n_nodes : int;
  reg_init : int array;
  visits_per_cycle : int;
      (** node evaluations the program represents per cycle *)
  scalar_ops : int;
  vector_ops : int;
  vector_lanes : int;  (** classes covered by vector ops *)
  check_ops : int;
      (** per-cycle conflict-check sites kept, counted in classes *)
  discharged_ops : int;
      (** conflict-check sites the sequential prover discharged *)
  compile_secs : float;
}

(** {1 Packed state} *)

type state

val create_state : prog -> state

(** Return the state to power-up: planes to UNDEF, registers to their
    initial values, poke mirror cleared. *)
val reset_state : prog -> state -> unit

(** True once at least one compiled cycle has run (before that, peeks
    fall back to UNDEF and snapshots to [None], like a fresh handle of
    any other engine). *)
val ran : state -> bool

(** Current value of a class / stored value of a register. *)

val get : state -> int -> Logic.t
val reg_get : state -> int -> Logic.t

(** Mirror one poke (or unpoke, [None]) into the packed poke planes. *)
val sync_poke : state -> int -> Logic.t option -> unit

(** {1 Execution} *)

(** [run_lanes prog sts ~pokeds ~seeds ~cycle] executes one clock cycle
    over [Array.length sts] independent lanes — the batch engine's
    multi-stimulus mode.  Lane [li] is a whole independent run with its
    own packed planes [sts.(li)], pokes [pokeds.(li)] and RANDOM seed
    [seeds.(li)]; the opcode array is walked once with every op applied
    to all lanes, amortizing dispatch across the lanes.  Returns the
    per-lane drive-conflict classes (unsorted); a conflict in one lane
    never affects a sibling.  All three arrays must have equal length. *)
val run_lanes :
  prog -> state array -> pokeds:Logic.t option array array ->
  seeds:int array -> cycle:int -> int list array

(** [run_cycle prog st ~poked ~seed ~cycle] executes one clock cycle
    for a single run (the one-lane instance of {!run_lanes}) and
    returns the classes whose resolution saw a drive conflict
    (unsorted; the caller reports them in class order). *)
val run_cycle :
  prog -> state -> poked:Logic.t option array -> seed:int -> cycle:int ->
  int list

(** Per-cycle change sweep against the previous cycle's planes, in
    ascending class order: accrues toggle counts (skipped on the
    [first] cycle, which has no predecessor) and reports changed
    classes.  Call after {!run_cycle}. *)
val sweep :
  state -> first:bool -> toggles:int array ->
  on_change:(int -> Logic.t -> unit) option -> unit
