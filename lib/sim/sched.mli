(** Levelized static schedule of the semantics graph.

    Levels order a forward pass so that every producer node is visited
    before the class it drives, and every class before the nodes that
    consume it: [level(node) = 1 + max level(input classes)] (0 with no
    net inputs), [level(class) = max level(producer nodes)] (0 with no
    producers).  The incremental engine propagates dirty cones in level
    order; the drive-conflict re-propagation pass of the other engines
    reuses the same order. *)

type t = {
  node_level : int array;
      (** per node; -1 when the node sits in (or downstream of) a
          combinational cycle — only on designs that failed the static
          checks *)
  net_level : int array;  (** per class; -1 when cyclic *)
  max_level : int;
  acyclic : bool;  (** every node and class received a level *)
  nodes_at : int array array;
      (** static membership: node ids of each level, ascending — the
          parallel engine's chunking metadata; cyclic items omitted *)
  nets_at : int array array;  (** class ids of each level, ascending *)
}

val build : Graph.t -> t

(** Widest level of the static node schedule — the upper bound on how
    many nodes the parallel engine can ever fire concurrently. *)
val max_width : t -> int
