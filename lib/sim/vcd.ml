(* Value-change-dump (VCD) writer, so waveforms from the simulator can be
   inspected with standard viewers.

   Zeus's four values map onto VCD's: 0, 1, x (UNDEF), z (NOINFL). *)

open Zeus_base
open Zeus_sem

type signal = {
  path : string;
  nets : int list;
  code : string;
  mutable last : Logic.t list option;
}

type t = {
  sim : Sim.t;
  buf : Buffer.t;
  signals : signal list;
  mutable header_done : bool;
}

let vcd_char = function
  | Logic.Zero -> '0'
  | Logic.One -> '1'
  | Logic.Undef -> 'x'
  | Logic.Noinfl -> 'z'

let logic_of_vcd_char = function
  | '0' -> Some Logic.Zero
  | '1' -> Some Logic.One
  | 'x' | 'X' -> Some Logic.Undef
  | 'z' | 'Z' -> Some Logic.Noinfl
  | _ -> None

let id_code i =
  (* printable short codes ! .. ~ *)
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let create sim paths =
  let signals =
    List.mapi
      (fun i path ->
        let nets =
          match Elaborate.resolve_path (Sim.design sim) path with
          | Ok nets -> nets
          | Error msg -> invalid_arg ("Vcd.create: " ^ msg)
        in
        { path; nets; code = id_code i; last = None })
      paths
  in
  { sim; buf = Buffer.create 4096; signals; header_done = false }

let sanitize path =
  String.map (fun c -> if c = '.' || c = '[' || c = ']' then '_' else c) path

let write_header t =
  Buffer.add_string t.buf "$date reproduced Zeus run $end\n";
  Buffer.add_string t.buf "$version zeus-ocaml $end\n";
  Buffer.add_string t.buf "$timescale 1 ns $end\n";
  Buffer.add_string t.buf "$scope module zeus $end\n";
  List.iter
    (fun s ->
      Buffer.add_string t.buf
        (Printf.sprintf "$var wire %d %s %s $end\n" (List.length s.nets)
           s.code (sanitize s.path)))
    t.signals;
  Buffer.add_string t.buf "$upscope $end\n";
  Buffer.add_string t.buf "$enddefinitions $end\n";
  t.header_done <- true

(* record the current values; call once per simulated cycle.  The
   [#cycle] timestamp is held back until the first change record of the
   cycle: a quiescent cycle emits nothing at all, which is what viewers
   expect and what keeps long idle stretches compact. *)
let sample t =
  if not t.header_done then write_header t;
  let stamped = ref false in
  let stamp () =
    if not !stamped then begin
      stamped := true;
      Buffer.add_string t.buf
        (Printf.sprintf "#%d\n" (Sim.cycle_count t.sim))
    end
  in
  List.iter
    (fun s ->
      let values = Sim.peek_nets t.sim s.nets in
      if s.last <> Some values then begin
        s.last <- Some values;
        stamp ();
        match values with
        | [ v ] ->
            Buffer.add_char t.buf (vcd_char v);
            Buffer.add_string t.buf s.code;
            Buffer.add_char t.buf '\n'
        | vs ->
            Buffer.add_char t.buf 'b';
            List.iter (fun v -> Buffer.add_char t.buf (vcd_char v)) vs;
            Buffer.add_char t.buf ' ';
            Buffer.add_string t.buf s.code;
            Buffer.add_char t.buf '\n'
      end)
    t.signals

let contents t =
  if not t.header_done then write_header t;
  Buffer.contents t.buf

(* {!Wave} renders to a string only (no channel to leak); this is the
   one file-writing sink of the waveform layer *)
let to_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (contents t))
