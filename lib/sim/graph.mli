(** The semantics graph of report section 8, in executable, compacted
    form: gates and drivers as producer nodes over {e dense
    canonical-net ids} ("classes"), with CSR-style flat consumer and
    producer lists for event-driven evaluation.  The alias union-find is
    resolved once at build time — engines index arrays, they never call
    {!Zeus_sem.Netlist.canonical}.  Registers contribute no
    combinational edges (they are the legal cycle breakers). *)

open Zeus_sem

type node =
  | Ngate of {
      op : Netlist.gate_op;
      inputs : Netlist.src array;  (** [Snet] ids are class ids *)
      output : int;  (** class id *)
    }
  | Ndriver of {
      guard : Netlist.src option;
      source : Netlist.src;
      target : int;  (** class id *)
    }

type t = {
  design : Elaborate.design;
  nl : Netlist.t;
  n_nets : int;  (** original (pre-compaction) net count *)
  n_classes : int;  (** dense canonical-net count *)
  canon : int array;  (** original net id -> class id *)
  rep : int array;  (** class id -> union-find root (original id) *)
  nodes : node array;
  cons_off : int array;  (** CSR offsets into [cons_nodes], per class *)
  cons_nodes : int array;  (** consumer node ids, one per occurrence *)
  prod_off : int array;  (** CSR offsets into [prod_nodes], per class *)
  prod_nodes : int array;  (** producer node ids *)
  producer_count : int array;  (** per class; [= prod_off.(c+1)-prod_off.(c)] *)
  class_kind : Etype.kind array;  (** mux if any class member is mux *)
  net_kind : Etype.kind array;  (** declared kind per original net *)
  names : string array;  (** per class: the representative's name *)
  regs : Netlist.reg array;
  reg_in : int array;  (** per register: input class *)
  reg_out : int array;  (** per register: output class *)
  reg_of_out : int array;  (** class -> register index, or -1 *)
  regs_of_in : int list array;  (** class -> registers latching from it *)
  reg_out_class : bool array;
  input_class : bool array;  (** testbench inputs *)
  clk : int;  (** class of the predefined CLK net *)
  rset : int;  (** class of the predefined RSET net *)
}

val build : Elaborate.design -> t
val node_inputs : node -> Netlist.src list
val node_output : node -> int

(** [iter_consumers g c f] applies [f] to every node consuming class
    [c], once per source occurrence. *)
val iter_consumers : t -> int -> (int -> unit) -> unit

val iter_producers : t -> int -> (int -> unit) -> unit
val consumer_count : t -> int -> int
