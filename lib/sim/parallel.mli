(** The domain-parallel simulator: {!Sim} under [Sim.Parallel]
    scheduling — each level of the incremental dirty cone fired
    concurrently on a reusable domain pool, with bit-identical
    snapshots, runtime errors and RANDOM stream at any domain count.
    All functions are those of {!Sim}. *)

type t = Sim.t

val create :
  ?seed:int -> ?jobs:int -> ?grain:int -> Zeus_sem.Elaborate.design -> t

val step : t -> unit
val step_n : t -> int -> unit
val reset : t -> unit
val restart : t -> unit
val poke : t -> string -> Zeus_base.Logic.t list -> unit
val poke_bool : t -> string -> bool -> unit
val poke_int : t -> string -> int -> unit
val peek : t -> string -> Zeus_base.Logic.t list
val peek_bit : t -> string -> Zeus_base.Logic.t
val peek_int : t -> string -> int option
val node_visits : t -> int
val runtime_errors : t -> Sim.runtime_error list
val snapshot : t -> Zeus_base.Logic.t option array

(** The work breakdown of {!Sim.parallel_stats}; raises on a
    non-parallel handle. *)
val stats : t -> Sim.par_stats
