(* One-time compiler from the levelized schedule ({!Sched}) over the
   compacted class graph ({!Graph}) to the flat bytecode of
   {!Bytecode}.

   Lowering follows the schedule level by level — every operand a node
   reads was finalized on a strictly lower level, so the emitted
   straight-line program is a strict levelized evaluation and computes
   the same per-cycle fixpoint as every other engine.  The program
   shape per cycle is:

     seeds        producer-less classes (pokes, CLK, RSET, registers)
     level 0..L   node ops, then multi-producer net resolutions
     latches      end-of-cycle register latch

   A peephole vectorizer turns stride-1 runs into wide word ops (32
   lanes per word): register seeds and latches over consecutive
   register files, unguarded copies, NOT chains, single guarded
   drivers sharing one guard, and the two-driver guarded multiplex
   shape (IF g THEN x := a ELSE x := b) that array elaboration emits
   in bulk.  Anything that does not form a run stays scalar; both
   paths share the semantics tables of {!Bytecode}, so vectorization
   never changes values. *)

open Zeus_sem

(* shortest stride-1 run worth a vector op *)
let vmin = 4

let encode_src = function
  | Netlist.Snet c -> c
  | Netlist.Sconst v -> Bytecode.imm (Bytecode.encode v)

let gate_kind = function
  | Netlist.Gand -> Bytecode.gand
  | Netlist.Gor -> Bytecode.gor
  | Netlist.Gnand -> Bytecode.gnand
  | Netlist.Gnor -> Bytecode.gnor
  | Netlist.Gxor -> Bytecode.gxor
  | Netlist.Gnot -> Bytecode.gnot
  | Netlist.Gequal -> Bytecode.gequal
  | Netlist.Grandom -> assert false

(* does operand [b] continue a stride-1 run after [a]?  immediates
   must repeat, classes must be consecutive *)
let src_follows a b = if a < 0 then b = a else b = a + 1

(* [discharged c]: the static provers (combinational lint or the
   bounded sequential prover) showed class [c] can never double-drive
   under the defined-inputs environment assumption — its conflict-check
   op is compiled with [chk = false].  Values are unaffected: a
   discharged resolution still forces UNDEF if the proof assumption is
   violated, only the runtime report is elided. *)
let build ?(discharged = fun _ -> false) (g : Graph.t) (sched : Sched.t) :
    Bytecode.prog option =
  if not sched.Sched.acyclic then None
  else begin
    let t0 = Sys.time () in
    let n = g.Graph.n_classes in
    let n_nodes = Array.length g.Graph.nodes in
    let kbool c = g.Graph.class_kind.(c) = Etype.KBool in
    let prod_slot node out =
      if g.Graph.producer_count.(out) >= 2 then node else -1
    in
    (* the driven plane is read only by the latch ops, so a vector op
       whose lanes feed no register can skip maintaining it *)
    let range_feeds_reg dst len =
      let r = ref false in
      for c = dst to dst + len - 1 do
        if g.Graph.regs_of_in.(c) <> [] then r := true
      done;
      !r
    in
    (* ---- pass 1: plan multi-producer resolutions per level -------- *)
    (* the two-guarded-driver multiplex shape vectorizes; its producer
       nodes are then elided from the node phase (their produce is
       folded into the wide resolution, which reads guards and sources
       directly — all on strictly lower levels) *)
    let consumed = Array.make (max 1 n_nodes) false in
    let resolves = Array.make (sched.Sched.max_level + 1) [] in
    let mux2_of c =
      if g.Graph.producer_count.(c) <> 2 then None
      else
        let o = g.Graph.prod_off.(c) in
        let p0 = g.Graph.prod_nodes.(o) and p1 = g.Graph.prod_nodes.(o + 1) in
        match (g.Graph.nodes.(p0), g.Graph.nodes.(p1)) with
        | ( Graph.Ndriver { guard = Some ga; source = sa; _ },
            Graph.Ndriver { guard = Some gb; source = sb; _ } ) ->
            Some
              ( p0, p1,
                encode_src ga, encode_src sa,
                encode_src gb, encode_src sb )
        | _ -> None
    in
    for l = 0 to sched.Sched.max_level do
      let out = ref [] in
      let run = ref [] (* (class, node1, node2), reversed *) in
      let run_prev = ref (-2) and run_base = ref 0 in
      let run_g1 = ref 0 and run_g2 = ref 0 in
      let run_bs1 = ref 0 and run_bs2 = ref 0 in
      let run_s1 = ref 0 and run_s2 = ref 0 in
      let run_kbool = ref false in
      let run_chk = ref true in
      let scalar_resolve c =
        let o = g.Graph.prod_off.(c) in
        let prods =
          Array.sub g.Graph.prod_nodes o g.Graph.producer_count.(c)
        in
        out :=
          Bytecode.Oresolve
            { out = c; prods; kbool = kbool c; chk = not (discharged c) }
          :: !out
      in
      let flush () =
        let members = List.rev !run in
        run := [];
        let len = List.length members in
        if len >= vmin then begin
          List.iter
            (fun (_, p0, p1) ->
              consumed.(p0) <- true;
              consumed.(p1) <- true)
            members;
          out :=
            Bytecode.Ovmux2
              {
                g1 = !run_g1;
                s1 = !run_bs1;
                g2 = !run_g2;
                s2 = !run_bs2;
                dst = !run_base;
                len;
                kbool = !run_kbool;
                dr = range_feeds_reg !run_base len;
                chk = !run_chk;
              }
            :: !out
        end
        else List.iter (fun (c, _, _) -> scalar_resolve c) members
      in
      Array.iter
        (fun c ->
          if g.Graph.producer_count.(c) >= 2 then
            match mux2_of c with
            | Some (p0, p1, g1, s1, g2, s2) ->
                if
                  !run <> [] && c = !run_prev + 1 && g1 = !run_g1
                  && g2 = !run_g2
                  && src_follows !run_s1 s1
                  && src_follows !run_s2 s2
                  && kbool c = !run_kbool
                  && not (discharged c) = !run_chk
                then begin
                  run := (c, p0, p1) :: !run;
                  run_prev := c;
                  run_s1 := s1;
                  run_s2 := s2
                end
                else begin
                  flush ();
                  run := [ (c, p0, p1) ];
                  run_base := c;
                  run_prev := c;
                  run_g1 := g1;
                  run_g2 := g2;
                  run_bs1 := s1;
                  run_bs2 := s2;
                  run_s1 := s1;
                  run_s2 := s2;
                  run_kbool := kbool c;
                  run_chk := not (discharged c)
                end
            | None ->
                flush ();
                scalar_resolve c)
        sched.Sched.nets_at.(l);
      flush ();
      resolves.(l) <- List.rev !out
    done;
    (* ---- pass 2: emit the program --------------------------------- *)
    let ops = ref [] in
    let emit op = ops := op :: !ops in
    (* a generic run partitioner: [next a b] says b extends a's run *)
    let run_partition arr next emit_vec emit_scalar =
      let m = Array.length arr in
      let i = ref 0 in
      while !i < m do
        let j = ref (!i + 1) in
        while !j < m && next arr.(!j - 1) arr.(!j) do
          incr j
        done;
        let len = !j - !i in
        if len >= vmin then emit_vec arr.(!i) len
        else
          for k = !i to !j - 1 do
            emit_scalar arr.(k)
          done;
        i := !j
      done
    in
    (* seeds: producer-less classes in ascending class order; runs of
       register outputs become wide register seeds *)
    let seed_kind c =
      if c = g.Graph.clk then Bytecode.seed_clk
      else if c = g.Graph.rset then Bytecode.seed_rset
      else if g.Graph.reg_of_out.(c) >= 0 then g.Graph.reg_of_out.(c)
      else Bytecode.seed_plain
    in
    let c = ref 0 in
    while !c < n do
      if g.Graph.producer_count.(!c) = 0 then begin
        let k = seed_kind !c in
        if k >= 0 then begin
          let len = ref 1 in
          while
            !c + !len < n
            && g.Graph.producer_count.(!c + !len) = 0
            && seed_kind (!c + !len) = k + !len
          do
            incr len
          done;
          if !len >= vmin then
            emit (Bytecode.Ovregseed { reg = k; cls = !c; len = !len })
          else
            for j = 0 to !len - 1 do
              emit (Bytecode.Oseed { cls = !c + j; kind = k + j })
            done;
          c := !c + !len
        end
        else if k = Bytecode.seed_plain then begin
          let len = ref 1 in
          while
            !c + !len < n
            && g.Graph.producer_count.(!c + !len) = 0
            && seed_kind (!c + !len) = Bytecode.seed_plain
          do
            incr len
          done;
          if !len >= vmin then
            emit (Bytecode.Ovseed { cls = !c; len = !len })
          else
            for j = 0 to !len - 1 do
              emit (Bytecode.Oseed { cls = !c + j; kind = k })
            done;
          c := !c + !len
        end
        else begin
          emit (Bytecode.Oseed { cls = !c; kind = k });
          incr c
        end
      end
      else incr c
    done;
    (* levels: node ops (scalar in node order, stride-1 copy / NOT /
       single-guarded-driver runs vectorized), then the planned
       multi-producer resolutions *)
    for l = 0 to sched.Sched.max_level do
      let copies = ref [] and nots = ref [] and gdrv = ref [] in
      Array.iter
        (fun node ->
          if not consumed.(node) then
            match g.Graph.nodes.(node) with
            | Graph.Ngate { op = Netlist.Grandom; output; _ } ->
                emit
                  (Bytecode.Orandom
                     { out = output; prod = prod_slot node output })
            | Graph.Ngate { op = Netlist.Gnot; inputs = [| s |]; output }
              when g.Graph.producer_count.(output) = 1 ->
                nots := (output, encode_src s) :: !nots
            | Graph.Ngate { op; inputs; output } ->
                emit
                  (Bytecode.Ogate
                     {
                       gate = gate_kind op;
                       args = Array.map encode_src inputs;
                       out = output;
                       prod = prod_slot node output;
                       kbool = kbool output;
                     })
            | Graph.Ndriver { guard = None; source; target }
              when g.Graph.producer_count.(target) = 1 ->
                copies := (target, encode_src source) :: !copies
            | Graph.Ndriver { guard = Some gs; source; target }
              when g.Graph.producer_count.(target) = 1 ->
                gdrv := (encode_src gs, target, encode_src source) :: !gdrv
            | Graph.Ndriver { guard; source; target } ->
                emit
                  (Bytecode.Odriver
                     {
                       guard =
                         (match guard with
                         | None -> Bytecode.no_guard
                         | Some gs -> encode_src gs);
                       src = encode_src source;
                       out = target;
                       prod = node;
                       kbool = kbool target;
                     }))
        sched.Sched.nodes_at.(l);
      run_partition
        (Array.of_list (List.sort compare !copies))
        (fun (d1, s1) (d2, s2) ->
          d2 = d1 + 1 && src_follows s1 s2 && kbool d2 = kbool d1)
        (fun (d, s) len ->
          emit
            (Bytecode.Ovcopy
               {
                 src = s;
                 dst = d;
                 len;
                 kbool = kbool d;
                 dr = range_feeds_reg d len;
               }))
        (fun (d, s) ->
          emit
            (Bytecode.Odriver
               {
                 guard = Bytecode.no_guard;
                 src = s;
                 out = d;
                 prod = -1;
                 kbool = kbool d;
               }));
      run_partition
        (Array.of_list (List.sort compare !nots))
        (fun (d1, s1) (d2, s2) -> d2 = d1 + 1 && src_follows s1 s2)
        (fun (d, s) len ->
          emit
            (Bytecode.Ovnot
               { src = s; dst = d; len; dr = range_feeds_reg d len }))
        (fun (d, s) ->
          emit
            (Bytecode.Ogate
               {
                 gate = Bytecode.gnot;
                 args = [| s |];
                 out = d;
                 prod = -1;
                 kbool = kbool d;
               }));
      run_partition
        (Array.of_list (List.sort compare !gdrv))
        (fun (ga, d1, s1) (gb, d2, s2) ->
          ga = gb && d2 = d1 + 1 && src_follows s1 s2 && kbool d2 = kbool d1)
        (fun (gu, d, s) len ->
          emit
            (Bytecode.Ovdriver
               {
                 guard = gu;
                 src = s;
                 dst = d;
                 len;
                 kbool = kbool d;
                 dr = range_feeds_reg d len;
               }))
        (fun (gu, d, s) ->
          emit
            (Bytecode.Odriver
               { guard = gu; src = s; out = d; prod = -1; kbool = kbool d }));
      List.iter emit resolves.(l)
    done;
    (* latches: register-index order; stride-1 runs over consecutive
       input classes become wide latches *)
    let n_regs = Array.length g.Graph.regs in
    let seeded i = g.Graph.producer_count.(g.Graph.reg_in.(i)) = 0 in
    let i = ref 0 in
    while !i < n_regs do
      let j = ref (!i + 1) in
      while
        !j < n_regs
        && g.Graph.reg_in.(!j) = g.Graph.reg_in.(!j - 1) + 1
        && seeded !j = seeded !i
      do
        incr j
      done;
      let len = !j - !i in
      if len >= vmin then
        emit
          (Bytecode.Ovlatch
             { reg = !i; cls = g.Graph.reg_in.(!i); len; seeded = seeded !i })
      else
        for k = !i to !j - 1 do
          emit
            (Bytecode.Olatch
               { reg = k; cls = g.Graph.reg_in.(k); seeded = seeded k })
        done;
      i := !j
    done;
    let ops = Array.of_list (List.rev !ops) in
    let scalar = ref 0 and vector = ref 0 and lanes = ref 0 in
    let checks = ref 0 and disch = ref 0 in
    Array.iter
      (function
        | Bytecode.Ovseed { len; _ }
        | Bytecode.Ovregseed { len; _ }
        | Bytecode.Ovcopy { len; _ }
        | Bytecode.Ovnot { len; _ }
        | Bytecode.Ovdriver { len; _ }
        | Bytecode.Ovmux2 { len; _ }
        | Bytecode.Ovlatch { len; _ } ->
            incr vector;
            lanes := !lanes + len
        | _ -> incr scalar)
      ops;
    (* conflict-check sites, counted in classes (an Ovmux2 checks one
       class per lane) *)
    Array.iter
      (function
        | Bytecode.Oresolve { chk; _ } ->
            if chk then incr checks else incr disch
        | Bytecode.Ovmux2 { len; chk; _ } ->
            if chk then checks := !checks + len else disch := !disch + len
        | _ -> ())
      ops;
    Some
      {
        Bytecode.ops;
        n_classes = n;
        n_nodes;
        reg_init =
          Array.map
            (fun (r : Netlist.reg) -> Bytecode.encode r.Netlist.rinit)
            g.Graph.regs;
        visits_per_cycle = n_nodes;
        scalar_ops = !scalar;
        vector_ops = !vector;
        vector_lanes = !lanes;
        check_ops = !checks;
        discharged_ops = !disch;
        compile_secs = Sys.time () -. t0;
      }
  end
