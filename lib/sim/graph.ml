(* The semantics graph of section 8, in executable form — compacted.

   At build time the alias union-find is resolved ONCE into dense
   canonical-net ids ("classes"): [canon] maps every original net id to
   its class, [rep] maps a class back to the union-find root that
   represents it.  All node inputs/outputs, adjacency and per-net
   bookkeeping are indexed by class id, so the simulator engines never
   call [Netlist.canonical] on a hot path.

   Adjacency is CSR-style: flat [int array] consumer and producer lists
   with offset tables, one entry per source occurrence (a node reading
   the same net twice appears twice — the firing engine's worklist
   discipline relies on that).

   Registers connect cycles without introducing combinational edges;
   [reg_of_out]/[regs_of_in] give O(1) access from a class to the
   registers that feed or latch it (hoisted out of the per-cycle path —
   the simulator used to rebuild a hashtable of register outputs every
   cycle). *)

open Zeus_sem

type node =
  | Ngate of {
      op : Netlist.gate_op;
      inputs : Netlist.src array;
      output : int;
    }
  | Ndriver of {
      guard : Netlist.src option;
      source : Netlist.src;
      target : int;
    }

type t = {
  design : Elaborate.design;
  nl : Netlist.t;
  n_nets : int;
  n_classes : int;
  canon : int array;
  rep : int array;
  nodes : node array;
  cons_off : int array;
  cons_nodes : int array;
  prod_off : int array;
  prod_nodes : int array;
  producer_count : int array;
  class_kind : Etype.kind array;
  net_kind : Etype.kind array;
  names : string array;
  regs : Netlist.reg array;
  reg_in : int array;
  reg_out : int array;
  reg_of_out : int array;
  regs_of_in : int list array;
  reg_out_class : bool array;
  input_class : bool array;
  clk : int;
  rset : int;
}

let node_inputs = function
  | Ngate { inputs; _ } -> Array.to_list inputs
  | Ndriver { guard; source; _ } -> source :: Option.to_list guard

let node_output = function
  | Ngate { output; _ } -> output
  | Ndriver { target; _ } -> target

let build (design : Elaborate.design) =
  let nl = design.Elaborate.netlist in
  let n = Netlist.net_count nl in
  (* resolve the union-find once: original id -> dense class id *)
  let canon = Array.make n (-1) in
  let rep_rev = ref [] in
  let n_classes = ref 0 in
  for id = 0 to n - 1 do
    let root = Netlist.canonical nl id in
    if canon.(root) < 0 then begin
      canon.(root) <- !n_classes;
      rep_rev := root :: !rep_rev;
      incr n_classes
    end;
    canon.(id) <- canon.(root)
  done;
  let n_classes = !n_classes in
  let rep = Array.make n_classes 0 in
  List.iteri (fun i root -> rep.(n_classes - 1 - i) <- root) !rep_rev;
  let canon_src = function
    | Netlist.Snet id -> Netlist.Snet canon.(id)
    | Netlist.Sconst v -> Netlist.Sconst v
  in
  (* nodes, with class ids baked in *)
  let nodes = ref [] in
  let n_nodes = ref 0 in
  List.iter
    (fun (g : Netlist.gate) ->
      let inputs = List.map canon_src g.Netlist.inputs in
      let output = canon.(g.Netlist.output) in
      nodes := Ngate { op = g.Netlist.op; inputs = Array.of_list inputs; output }
               :: !nodes;
      incr n_nodes)
    (Netlist.gates nl);
  List.iter
    (fun (d : Netlist.driver) ->
      let guard = Option.map canon_src d.Netlist.guard in
      let source = canon_src d.Netlist.source in
      let target = canon.(d.Netlist.target) in
      nodes := Ndriver { guard; source; target } :: !nodes;
      incr n_nodes)
    (Netlist.drivers nl);
  let nodes = Array.of_list (List.rev !nodes) in
  (* CSR adjacency: count, prefix-sum, fill *)
  let cons_cnt = Array.make n_classes 0 in
  let prod_cnt = Array.make n_classes 0 in
  Array.iter
    (fun node ->
      List.iter
        (function
          | Netlist.Snet s -> cons_cnt.(s) <- cons_cnt.(s) + 1
          | Netlist.Sconst _ -> ())
        (node_inputs node);
      let out = node_output node in
      prod_cnt.(out) <- prod_cnt.(out) + 1)
    nodes;
  let prefix cnt =
    let off = Array.make (n_classes + 1) 0 in
    for c = 0 to n_classes - 1 do
      off.(c + 1) <- off.(c) + cnt.(c)
    done;
    off
  in
  let cons_off = prefix cons_cnt and prod_off = prefix prod_cnt in
  let cons_nodes = Array.make cons_off.(n_classes) 0 in
  let prod_nodes = Array.make prod_off.(n_classes) 0 in
  let cons_fill = Array.copy cons_off and prod_fill = Array.copy prod_off in
  Array.iteri
    (fun id node ->
      List.iter
        (function
          | Netlist.Snet s ->
              cons_nodes.(cons_fill.(s)) <- id;
              cons_fill.(s) <- cons_fill.(s) + 1
          | Netlist.Sconst _ -> ())
        (node_inputs node);
      let out = node_output node in
      prod_nodes.(prod_fill.(out)) <- id;
      prod_fill.(out) <- prod_fill.(out) + 1)
    nodes;
  let producer_count = prod_cnt in
  (* per-class kind (mux if any member is mux), representative names,
     per-original declared kind *)
  let class_kind = Array.make n_classes Etype.KBool in
  let net_kind = Array.make n Etype.KBool in
  Array.iter
    (fun (net : Netlist.net) ->
      net_kind.(net.Netlist.id) <- net.Netlist.kind;
      if net.Netlist.kind = Etype.KMux then
        class_kind.(canon.(net.Netlist.id)) <- Etype.KMux)
    (Netlist.nets_array nl);
  let names =
    Array.map (fun root -> (Netlist.net nl root).Netlist.name) rep
  in
  (* registers *)
  let regs = Array.of_list (Netlist.regs nl) in
  let reg_in = Array.map (fun (r : Netlist.reg) -> canon.(r.Netlist.rin)) regs in
  let reg_out =
    Array.map (fun (r : Netlist.reg) -> canon.(r.Netlist.rout)) regs
  in
  let reg_of_out = Array.make n_classes (-1) in
  Array.iteri (fun i c -> reg_of_out.(c) <- i) reg_out;
  let regs_of_in = Array.make n_classes [] in
  Array.iteri (fun i c -> regs_of_in.(c) <- i :: regs_of_in.(c)) reg_in;
  let reg_out_class = Array.make n_classes false in
  Array.iter (fun c -> reg_out_class.(c) <- true) reg_out;
  let input_class = Array.make n_classes false in
  List.iter
    (fun id -> input_class.(canon.(id)) <- true)
    (Check.top_input_nets design);
  {
    design;
    nl;
    n_nets = n;
    n_classes;
    canon;
    rep;
    nodes;
    cons_off;
    cons_nodes;
    prod_off;
    prod_nodes;
    producer_count;
    class_kind;
    net_kind;
    names;
    regs;
    reg_in;
    reg_out;
    reg_of_out;
    regs_of_in;
    reg_out_class;
    input_class;
    clk = canon.(design.Elaborate.clk_net);
    rset = canon.(design.Elaborate.rset_net);
  }

let iter_consumers g c f =
  for k = g.cons_off.(c) to g.cons_off.(c + 1) - 1 do
    f g.cons_nodes.(k)
  done

let iter_producers g c f =
  for k = g.prod_off.(c) to g.prod_off.(c + 1) - 1 do
    f g.prod_nodes.(k)
  done

let consumer_count g c = g.cons_off.(c + 1) - g.cons_off.(c)
