(* Stateless per-net PRNG for the RANDOM component.

   The serial engines used to draw RANDOM values from one shared
   [Random.State] in node-creation order, which made the stream depend
   on evaluation order — impossible to reproduce from a parallel engine
   whose domains race for the next draw.  Instead every draw is a pure
   function of (simulator seed, output class id, cycle number): the
   splitmix64 finalizer applied twice, so the value is independent of
   which domain computes it, in which order, and how many domains there
   are.  All seven engines share this function, so their RANDOM streams
   are bit-identical by construction.

   Splitmix64 (Steele, Lea & Flood, OOPSLA 2014) is the standard cheap
   stateless mixer: invertible, full 64-bit avalanche, and good enough
   that a single output bit passes the coin-flip statistics the arbiter
   test asserts. *)

let golden = 0x9E3779B97F4A7C15L

(* the splitmix64 finalizer: one increment already folded in by callers *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 ~seed ~net ~cycle =
  (* decorrelate the three coordinates with golden-ratio strides before
     mixing; two rounds so nearby (net, cycle) pairs share no structure *)
  let z = Int64.add (Int64.mul (Int64.of_int seed) golden) (Int64.of_int net) in
  let z = mix64 (Int64.add z golden) in
  let z = mix64 (Int64.add (Int64.add z (Int64.of_int cycle)) golden) in
  z

let bool ~seed ~net ~cycle =
  Int64.logand (bits64 ~seed ~net ~cycle) 1L = 1L
