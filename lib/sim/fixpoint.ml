(* The naive sweep-to-fixpoint baseline simulator (experiment E8).

   Identical semantics to the firing simulator — only the scheduling
   differs: all nodes are re-examined in creation order until a full
   sweep produces no change.  Work grows with circuit depth, which is
   precisely the cost the firing-rule evaluator of section 8 avoids.
   Like every engine it shares the drive-conflict re-propagation pass,
   so values downstream of a "burning transistors" conflict do not
   depend on the sweep order. *)

type t = Sim.t

let create ?seed design = Sim.create ~engine:Sim.Fixpoint ?seed design

let step = Sim.step

let step_n = Sim.step_n

let reset = Sim.reset

let poke = Sim.poke

let poke_bool = Sim.poke_bool

let poke_int = Sim.poke_int

let peek = Sim.peek

let peek_bit = Sim.peek_bit

let peek_int = Sim.peek_int

let node_visits = Sim.node_visits

let runtime_errors = Sim.runtime_errors

let snapshot = Sim.snapshot
