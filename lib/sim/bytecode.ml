(* Flat bytecode for the compiled simulation engine.

   The compiler ({!Compile}) lowers the levelized schedule over the
   compacted class graph into one dense opcode array; this module holds
   the program representation, the bit-packed two-plane value store and
   the dispatch loop that executes one clock cycle.

   Values are encoded two planes per net, Verilog aval/bval style:

     plane a   plane b
        0         0      ZERO
        1         0      ONE
        0         1      NOINFL  (Z)
        1         1      UNDEF   (X)

   32 consecutive classes share one word of each plane, so the wide
   vectorizable ops (register latch/seed, copy, NOT, guarded multiplex
   resolution) evaluate 32 nets per handful of word ops; everything
   else runs through scalar opcodes whose operand indices were resolved
   at compile time (no option boxing, no list traversal, no pointer
   chasing).

   Semantics are the strict levelized evaluation of {!Sim}: because
   every operand was finalized on a lower level before it is read, the
   program computes exactly the fixpoint every other engine converges
   to (the section 8 "all orders agree" invariant), including conflict
   forcing to UNDEF, register latch rules and the stateless RANDOM
   stream keyed by (seed, class, cycle). *)

open Zeus_base

(* ------------------------------------------------------------------ *)
(* Value codes                                                          *)
(* ------------------------------------------------------------------ *)

let code_zero = 0
let code_one = 1
let code_z = 2 (* NOINFL *)
let code_x = 3 (* UNDEF *)

let decode = [| Logic.Zero; Logic.One; Logic.Noinfl; Logic.Undef |]

let encode = function
  | Logic.Zero -> code_zero
  | Logic.One -> code_one
  | Logic.Noinfl -> code_z
  | Logic.Undef -> code_x

(* the implicit amplifier: NOINFL reads UNDEF on a boolean net *)
let bool_code c = if c = code_z then code_x else c

(* 16-entry truth tables folded from {!Logic} at module init, so the
   scalar gate ops provably share the reference semantics *)
let tbl2 f =
  Array.init 16 (fun i -> encode (f decode.(i lsr 2) decode.(i land 3)))

let and2 = tbl2 Logic.and2
let or2 = tbl2 Logic.or2
let xor2 = tbl2 Logic.xor2
let equal2 = tbl2 Logic.equal2
let not1 = Array.init 4 (fun i -> encode (Logic.not_ decode.(i)))

(* ------------------------------------------------------------------ *)
(* Operand encoding                                                     *)
(* ------------------------------------------------------------------ *)

(* an operand is a class id when >= 0, else an immediate constant *)
let imm code = -1 - code
let no_guard = min_int

(* gate kinds *)
let gand = 0
let gor = 1
let gnand = 2
let gnor = 3
let gxor = 4
let gnot = 5
let gequal = 6

(* Oseed kinds below 0; >= 0 is a register index *)
let seed_plain = -1
let seed_clk = -2
let seed_rset = -3

type op =
  (* scalar *)
  | Oseed of { cls : int; kind : int }
  | Ogate of { gate : int; args : int array; out : int; prod : int; kbool : bool }
  | Orandom of { out : int; prod : int }
  | Odriver of { guard : int; src : int; out : int; prod : int; kbool : bool }
  | Oresolve of { out : int; prods : int array; kbool : bool; chk : bool }
  | Olatch of { reg : int; cls : int; seeded : bool }
  (* vector: classes [dst, dst+len) (or registers [reg, reg+len));
     [dr] is false when no lane feeds a register, so the driven-plane
     write (read only by the latch ops) can be skipped *)
  | Ovseed of { cls : int; len : int }
  | Ovregseed of { reg : int; cls : int; len : int }
  | Ovcopy of { src : int; dst : int; len : int; kbool : bool; dr : bool }
  | Ovnot of { src : int; dst : int; len : int; dr : bool }
  | Ovdriver of {
      guard : int;
      src : int;
      dst : int;
      len : int;
      kbool : bool;
      dr : bool;
    }
  | Ovmux2 of {
      g1 : int;
      s1 : int;
      g2 : int;
      s2 : int;
      dst : int;
      len : int;
      kbool : bool;
      dr : bool;
      chk : bool;
    }
  | Ovlatch of { reg : int; cls : int; len : int; seeded : bool }

type prog = {
  ops : op array;
  n_classes : int;
  n_nodes : int;
  reg_init : int array; (* initial register codes *)
  visits_per_cycle : int; (* node evaluations represented per cycle *)
  scalar_ops : int;
  vector_ops : int;
  vector_lanes : int; (* classes covered by vector ops *)
  check_ops : int; (* conflict-check sites kept (classes) *)
  discharged_ops : int; (* conflict-check sites statically discharged *)
  compile_secs : float;
}

(* ------------------------------------------------------------------ *)
(* Packed state                                                         *)
(* ------------------------------------------------------------------ *)

let bits = 32
let mask32 = 0xFFFFFFFF

type state = {
  n : int; (* classes *)
  nw : int; (* data words per plane (arrays hold one pad word more) *)
  a : int array; (* value planes, current cycle *)
  b : int array;
  pa : int array; (* previous cycle, for toggles/trace *)
  pb : int array;
  driven : int array; (* 1 = some producer drove a non-NOINFL value *)
  pm : int array; (* poked mask *)
  pva : int array; (* poked value planes *)
  pvb : int array;
  scratch : Bytes.t; (* produced codes, per node (multi-producer nets) *)
  ra : int array; (* register planes *)
  rb : int array;
  mutable ran : bool; (* at least one compiled cycle has run *)
}

let data_words n = (n + bits - 1) / bits

let create_state (prog : prog) =
  let nw = data_words prog.n_classes in
  let rw = data_words (Array.length prog.reg_init) in
  let st =
    {
      n = prog.n_classes;
      nw;
      a = Array.make (nw + 1) mask32;
      b = Array.make (nw + 1) mask32;
      pa = Array.make (nw + 1) mask32;
      pb = Array.make (nw + 1) mask32;
      driven = Array.make (nw + 1) 0;
      pm = Array.make (nw + 1) 0;
      pva = Array.make (nw + 1) 0;
      pvb = Array.make (nw + 1) 0;
      scratch = Bytes.make (max 1 prog.n_nodes) '\000';
      ra = Array.make (rw + 1) 0;
      rb = Array.make (rw + 1) 0;
      ran = false;
    }
  in
  Array.iteri
    (fun r code ->
      let w = r lsr 5 and s = r land 31 in
      st.ra.(w) <- st.ra.(w) lor ((code land 1) lsl s);
      st.rb.(w) <- st.rb.(w) lor ((code lsr 1) lsl s))
    prog.reg_init;
  st

let reset_state (prog : prog) (st : state) =
  let fill p v = Array.fill p 0 (Array.length p) v in
  fill st.a mask32;
  fill st.b mask32;
  fill st.pa mask32;
  fill st.pb mask32;
  fill st.driven 0;
  fill st.pm 0;
  fill st.pva 0;
  fill st.pvb 0;
  Bytes.fill st.scratch 0 (Bytes.length st.scratch) '\000';
  fill st.ra 0;
  fill st.rb 0;
  Array.iteri
    (fun r code ->
      let w = r lsr 5 and s = r land 31 in
      st.ra.(w) <- st.ra.(w) lor ((code land 1) lsl s);
      st.rb.(w) <- st.rb.(w) lor ((code lsr 1) lsl s))
    prog.reg_init;
  st.ran <- false

(* ------------------------------------------------------------------ *)
(* Bit primitives                                                       *)
(* ------------------------------------------------------------------ *)

let get_bit p i = (Array.unsafe_get p (i lsr 5) lsr (i land 31)) land 1

let set_bit p i v =
  let w = i lsr 5 and r = i land 31 in
  Array.unsafe_set p w
    (Array.unsafe_get p w land lnot (1 lsl r) lor (v lsl r))

let get_code st c = get_bit st.a c lor (get_bit st.b c lsl 1)

let set_code st c code =
  set_bit st.a c (code land 1);
  set_bit st.b c (code lsr 1)

let get st c = decode.(get_code st c)

let reg_get st r = decode.(get_bit st.ra r lor (get_bit st.rb r lsl 1))

let ran st = st.ran

(* scalar operand read: class or immediate *)
let read_code st s = if s >= 0 then get_code st s else -1 - s

(* 32-bit window starting at bit [pos]; the pad word keeps [i+1] legal *)
let read32 p pos =
  let i = pos lsr 5 and r = pos land 31 in
  if r = 0 then Array.unsafe_get p i land mask32
  else
    (Array.unsafe_get p i lsr r)
    lor (Array.unsafe_get p (i + 1) lsl (bits - r))
    land mask32

(* source-window read with immediate broadcast *)
let src32a st s off =
  if s >= 0 then read32 st.a (s + off) else ((-1 - s) land 1) * mask32

let src32b st s off =
  if s >= 0 then read32 st.b (s + off) else (((-1 - s) lsr 1) land 1) * mask32

(* write the low [k] bits of [v] at bit [pos]; callers chunk at word
   boundaries so the write never crosses one *)
let write32 p pos k v =
  let i = pos lsr 5 and r = pos land 31 in
  if k = bits then Array.unsafe_set p i (v land mask32)
  else
    let m = (mask32 lsr (bits - k)) lsl r in
    Array.unsafe_set p i
      (Array.unsafe_get p i land lnot m lor ((v lsl r) land m))

(* ------------------------------------------------------------------ *)
(* Poke mirror                                                          *)
(* ------------------------------------------------------------------ *)

(* the packed poked planes are kept in sync incrementally (Sim drains
   its dirty-seed list into this), so the wide register-seed op can
   merge pokes without a per-net scan *)
let sync_poke st c (v : Logic.t option) =
  match v with
  | None -> set_bit st.pm c 0
  | Some v ->
      let code = encode v in
      set_bit st.pm c 1;
      set_bit st.pva c (code land 1);
      set_bit st.pvb c (code lsr 1)

(* ------------------------------------------------------------------ *)
(* Dispatch loop                                                        *)
(* ------------------------------------------------------------------ *)

(* Vector ops iterate their [len] lanes in destination-word-aligned
   chunks (each write32 stays inside one word); the chunk loops are
   written out longhand in the dispatch arms — a shared iterator would
   allocate a closure per op per cycle, which is exactly the overhead
   the compiled engine exists to avoid.

   Guarded drivers produce NOINFL on guard 0, the source value on
   guard 1 and UNDEF on an undefined guard; "driving" is any
   non-NOINFL produce, so on guard 1 the driving mask follows the
   source's non-NOINFL lanes: [sa lor lnot sb]. *)

(* Execute one clock cycle over K independent lanes — the batch
   engine's multi-stimulus mode.  Lane [li] is a whole independent run:
   its own packed planes ([sts.(li)]), its own testbench pokes
   ([pokeds.(li)]) and its own RANDOM seed ([seeds.(li)]); the opcode
   array is walked ONCE with each op applied to every lane, so the
   dispatch cost is amortized K ways while the per-lane word ops stay
   exactly the single-run ones.  Returns, per lane, the classes that
   saw a drive conflict this cycle (unsorted) — conflicts in one lane
   never leak into a sibling.

   The single-run [run_cycle] below is the one-lane instance of this
   loop, so there is exactly one copy of the bytecode semantics. *)
let run_lanes (prog : prog) (sts : state array)
    ~(pokeds : Logic.t option array array) ~(seeds : int array) ~cycle =
  let nl = Array.length sts in
  let confs = Array.make nl [] in
  for li = 0 to nl - 1 do
    let st = sts.(li) in
    Array.fill st.driven 0 (Array.length st.driven) 0
  done;
  let ops = prog.ops in
  for k = 0 to Array.length ops - 1 do
    match Array.unsafe_get ops k with
    | Oseed { cls; kind } ->
        for li = 0 to nl - 1 do
          let st = Array.unsafe_get sts li in
          let code =
            match (Array.unsafe_get pokeds li).(cls) with
            | Some v -> encode v
            | None ->
                if kind >= 0 then
                  get_bit st.ra kind lor (get_bit st.rb kind lsl 1)
                else if kind = seed_clk then code_one
                else if kind = seed_rset then code_zero
                else code_x
          in
          set_code st cls code
        done
    | Ogate { gate; args; out; prod; kbool } ->
        for li = 0 to nl - 1 do
          let st = Array.unsafe_get sts li in
          let v =
            if gate = gnot then not1.(read_code st args.(0))
            else if gate = gequal then begin
              let half = Array.length args / 2 in
              let acc = ref code_one in
              for i = 0 to half - 1 do
                acc :=
                  and2.((!acc lsl 2)
                        lor equal2.((read_code st args.(i) lsl 2)
                                    lor read_code st args.(i + half)))
              done;
              !acc
            end
            else begin
              let tbl = if gate = gand || gate = gnand then and2 else
                        if gate = gxor then xor2 else or2 in
              let acc = ref (if gate = gand || gate = gnand then code_one
                             else code_zero) in
              for i = 0 to Array.length args - 1 do
                acc := tbl.((!acc lsl 2) lor read_code st args.(i))
              done;
              if gate = gnand || gate = gnor then not1.(!acc) else !acc
            end
          in
          if prod >= 0 then Bytes.unsafe_set st.scratch prod (Char.unsafe_chr v)
          else begin
            set_code st out (if kbool then bool_code v else v);
            set_bit st.driven out (if v = code_z then 0 else 1)
          end
        done
    | Orandom { out; prod } ->
        for li = 0 to nl - 1 do
          let st = Array.unsafe_get sts li in
          let v =
            if Prand.bool ~seed:(Array.unsafe_get seeds li) ~net:out ~cycle
            then code_one
            else code_zero
          in
          if prod >= 0 then Bytes.unsafe_set st.scratch prod (Char.unsafe_chr v)
          else begin
            set_code st out v;
            set_bit st.driven out 1
          end
        done
    | Odriver { guard; src; out; prod; kbool } ->
        for li = 0 to nl - 1 do
          let st = Array.unsafe_get sts li in
          let v =
            if guard = no_guard then read_code st src
            else
              match bool_code (read_code st guard) with
              | 0 -> code_z
              | 1 -> read_code st src
              | _ -> code_x
          in
          if prod >= 0 then Bytes.unsafe_set st.scratch prod (Char.unsafe_chr v)
          else begin
            set_code st out (if kbool then bool_code v else v);
            set_bit st.driven out (if v = code_z then 0 else 1)
          end
        done
    | Oresolve { out; prods; kbool; chk } ->
        for li = 0 to nl - 1 do
          let st = Array.unsafe_get sts li in
          let drives = ref 0 and dval = ref code_z in
          for i = 0 to Array.length prods - 1 do
            let c = Char.code (Bytes.unsafe_get st.scratch prods.(i)) in
            if c <> code_z then begin
              incr drives;
              dval := (if !drives = 1 then c else code_x)
            end
          done;
          let v =
            if kbool then if !drives = 0 then code_x else bool_code !dval
            else !dval
          in
          set_code st out v;
          set_bit st.driven out (if !drives > 0 then 1 else 0);
          if chk && !drives >= 2 then confs.(li) <- out :: confs.(li)
        done
    | Olatch { reg; cls; seeded } ->
        for li = 0 to nl - 1 do
          let st = Array.unsafe_get sts li in
          let v = get_code st cls in
          let latch =
            if seeded then v <> code_z else get_bit st.driven cls = 1
          in
          if latch then begin
            let c = bool_code v in
            set_bit st.ra reg (c land 1);
            set_bit st.rb reg (c lsr 1)
          end
        done
    | Ovseed { cls; len } ->
        (* producer-less non-register classes: the poke if present,
           else UNDEF (all-ones in both planes) *)
        for li = 0 to nl - 1 do
          let st = Array.unsafe_get sts li in
          let p = ref 0 in
          while !p < len do
            let pos = cls + !p in
            let k = min (bits - (pos land 31)) (len - !p) in
            let m = read32 st.pm pos in
            let pva = read32 st.pva pos and pvb = read32 st.pvb pos in
            write32 st.a pos k ((m land pva) lor lnot m);
            write32 st.b pos k ((m land pvb) lor lnot m);
            p := !p + k
          done
        done
    | Ovregseed { reg; cls; len } ->
        for li = 0 to nl - 1 do
          let st = Array.unsafe_get sts li in
          let p = ref 0 in
          while !p < len do
            let pos = cls + !p in
            let k = min (bits - (pos land 31)) (len - !p) in
            let m = read32 st.pm pos in
            let ra = read32 st.ra (reg + !p)
            and rb = read32 st.rb (reg + !p) in
            let pva = read32 st.pva pos and pvb = read32 st.pvb pos in
            write32 st.a pos k ((m land pva) lor (lnot m land ra));
            write32 st.b pos k ((m land pvb) lor (lnot m land rb));
            p := !p + k
          done
        done
    | Ovcopy { src; dst; len; kbool; dr } ->
        for li = 0 to nl - 1 do
          let st = Array.unsafe_get sts li in
          let p = ref 0 in
          while !p < len do
            let pos = dst + !p in
            let k = min (bits - (pos land 31)) (len - !p) in
            let sa = src32a st src !p and sb = src32b st src !p in
            write32 st.a pos k (if kbool then sa lor sb else sa);
            write32 st.b pos k sb;
            if dr then write32 st.driven pos k (sa lor lnot sb);
            p := !p + k
          done
        done
    | Ovnot { src; dst; len; dr } ->
        for li = 0 to nl - 1 do
          let st = Array.unsafe_get sts li in
          let p = ref 0 in
          while !p < len do
            let pos = dst + !p in
            let k = min (bits - (pos land 31)) (len - !p) in
            let sa = src32a st src !p and sb = src32b st src !p in
            write32 st.a pos k (lnot sa lor sb);
            write32 st.b pos k sb;
            if dr then write32 st.driven pos k mask32;
            p := !p + k
          done
        done
    | Ovdriver { guard; src; dst; len; kbool; dr } ->
        for li = 0 to nl - 1 do
          let st = Array.unsafe_get sts li in
          let g = read_code st guard in
          let p = ref 0 in
          while !p < len do
            let pos = dst + !p in
            let k = min (bits - (pos land 31)) (len - !p) in
            (if g = code_zero then begin
               (* all lanes NOINFL (UNDEF through a boolean read) *)
               write32 st.a pos k (if kbool then mask32 else 0);
               write32 st.b pos k mask32;
               if dr then write32 st.driven pos k 0
             end
             else if g = code_one then begin
               let sa = src32a st src !p and sb = src32b st src !p in
               let m = sa lor (lnot sb land mask32) in
               let vb = (m land sb) lor (lnot m land mask32) in
               let va = m land sa in
               write32 st.a pos k (if kbool then va lor vb else va);
               write32 st.b pos k vb;
               if dr then write32 st.driven pos k m
             end
             else begin
               (* undefined guard: UNDEF everywhere, all lanes driving *)
               write32 st.a pos k mask32;
               write32 st.b pos k mask32;
               if dr then write32 st.driven pos k mask32
             end);
            p := !p + k
          done
        done
    | Ovmux2 { g1; s1; g2; s2; dst; len; kbool; dr; chk } ->
        for li = 0 to nl - 1 do
          let st = Array.unsafe_get sts li in
          (* per-driver mode is loop-invariant: 0 = guard 0 (NOINFL),
             1 = guard 1 (source window), 2 = undefined guard (UNDEF) *)
          let gc1 = read_code st g1 and gc2 = read_code st g2 in
          if
            (gc1 = code_one && gc2 = code_zero)
            || (gc1 = code_zero && gc2 = code_one)
          then begin
            (* the common case — exactly one definite guard — degenerates
               to a single guarded copy: no conflicts, one source window *)
            let s = if gc1 = code_one then s1 else s2 in
            let p = ref 0 in
            while !p < len do
              let pos = dst + !p in
              let k = min (bits - (pos land 31)) (len - !p) in
              let sa = src32a st s !p and sb = src32b st s !p in
              let m = sa lor (lnot sb land mask32) in
              let vb = (m land sb) lor (lnot m land mask32) in
              let va = m land sa in
              write32 st.a pos k (if kbool then va lor vb else va);
              write32 st.b pos k vb;
              if dr then write32 st.driven pos k m;
              p := !p + k
            done
          end
          else begin
          let md1 =
            if gc1 = code_zero then 0 else if gc1 = code_one then 1 else 2
          and md2 =
            if gc2 = code_zero then 0 else if gc2 = code_one then 1 else 2
          in
          let p = ref 0 in
          while !p < len do
            let pos = dst + !p in
            let k = min (bits - (pos land 31)) (len - !p) in
            let sa1 = if md1 = 1 then src32a st s1 !p else 0
            and sb1 = if md1 = 1 then src32b st s1 !p else 0 in
            let m1 =
              if md1 = 0 then 0
              else if md1 = 2 then mask32
              else sa1 lor (lnot sb1 land mask32)
            in
            let p1a = if md1 = 2 then mask32 else sa1
            and p1b = if md1 = 2 then mask32 else sb1 in
            let sa2 = if md2 = 1 then src32a st s2 !p else 0
            and sb2 = if md2 = 1 then src32b st s2 !p else 0 in
            let m2 =
              if md2 = 0 then 0
              else if md2 = 2 then mask32
              else sa2 lor (lnot sb2 land mask32)
            in
            let p2a = if md2 = 2 then mask32 else sa2
            and p2b = if md2 = 2 then mask32 else sb2 in
            let both = m1 land m2 in
            let only1 = m1 land lnot m2 and only2 = m2 land lnot m1 in
            let none = lnot (m1 lor m2) in
            let va = (only1 land p1a) lor (only2 land p2a) lor both in
            let vb = (only1 land p1b) lor (only2 land p2b) lor both lor none in
            write32 st.a pos k (if kbool then va lor vb else va);
            write32 st.b pos k vb;
            if dr then write32 st.driven pos k (m1 lor m2);
            (* window values: lane j of this chunk is bit j *)
            let conf =
              if chk then both land (mask32 lsr (bits - k)) else 0
            in
            if conf <> 0 then
              for j = 0 to k - 1 do
                if (conf lsr j) land 1 = 1 then
                  confs.(li) <- (dst + !p + j) :: confs.(li)
              done;
            p := !p + k
          done
          end
        done
    | Ovlatch { reg; cls; len; seeded } ->
        for li = 0 to nl - 1 do
          let st = Array.unsafe_get sts li in
          let p = ref 0 in
          while !p < len do
            let pos = reg + !p in
            let k = min (bits - (pos land 31)) (len - !p) in
            let va = read32 st.a (cls + !p) and vb = read32 st.b (cls + !p) in
            let m =
              if seeded then va lor (lnot vb land mask32)
              else read32 st.driven (cls + !p)
            in
            let oa = read32 st.ra pos and ob = read32 st.rb pos in
            write32 st.ra pos k ((m land (va lor vb)) lor (lnot m land oa));
            write32 st.rb pos k ((m land vb) lor (lnot m land ob));
            p := !p + k
          done
        done
  done;
  for li = 0 to nl - 1 do
    sts.(li).ran <- true
  done;
  confs

(* Execute one clock cycle for a single run.  [poked] backs the scalar
   seed ops (the packed mirror backs the wide ones); register state
   lives in the packed planes.  Returns the classes that saw a drive
   conflict this cycle (unsorted). *)
let run_cycle (prog : prog) (st : state) ~(poked : Logic.t option array)
    ~seed ~cycle =
  (run_lanes prog [| st |] ~pokeds:[| poked |] ~seeds:[| seed |] ~cycle).(0)

(* ------------------------------------------------------------------ *)
(* Change sweep (toggles + trace)                                       *)
(* ------------------------------------------------------------------ *)

(* Compare against the previous cycle's planes, ascending class order:
   count toggles (only when a previous cycle exists, like every other
   engine) and report changed classes to [on_change].  [first] is the
   cold-start cycle: every class is fresh, so the trace lists them all
   but no toggles accrue. *)
let sweep (st : state) ~first ~(toggles : int array)
    ~(on_change : (int -> Logic.t -> unit) option) =
  if first then (
    match on_change with
    | Some f ->
        for c = 0 to st.n - 1 do
          f c (get st c)
        done
    | None -> ())
  else
    for w = 0 to st.nw - 1 do
      let d =
        ((st.a.(w) lxor st.pa.(w)) lor (st.b.(w) lxor st.pb.(w))) land mask32
      in
      if d <> 0 then begin
        let base = w * bits in
        let d = ref d and j = ref 0 in
        while !d <> 0 do
          if !d land 1 = 1 then begin
            let c = base + !j in
            toggles.(c) <- toggles.(c) + 1;
            match on_change with Some f -> f c (get st c) | None -> ()
          end;
          d := !d lsr 1;
          incr j
        done
      end
    done;
  Array.blit st.a 0 st.pa 0 (Array.length st.a);
  Array.blit st.b 0 st.pb 0 (Array.length st.b)
