(** Stateless per-net PRNG for the RANDOM component.

    Every draw is a pure function of (simulator seed, output class id,
    cycle number) — a splitmix64 hash — so the stream does not depend on
    evaluation order, engine, or domain count.  All six simulation
    engines use this function, which is what makes their RANDOM streams
    bit-identical. *)

(** The full 64-bit hash of one draw. *)
val bits64 : seed:int -> net:int -> cycle:int -> int64

(** The coin flip a RANDOM node produces: bit 0 of {!bits64}. *)
val bool : seed:int -> net:int -> cycle:int -> bool
