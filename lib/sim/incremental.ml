(* The cross-cycle incremental simulator.

   Identical semantics to the firing simulator — only the cross-cycle
   scheduling differs: the first cycle runs the full event-driven
   evaluation, and every later cycle re-evaluates only the cone of
   *changed* seeds (pokes that differ from the previous cycle, registers
   that latched a new value, RANDOM sources), walked in the levelized
   static order of {!Sched}.  Untouched nets keep their previous-cycle
   values, so a quiescent cycle costs O(dirty) — zero node visits when
   nothing changed — instead of O(nets).  On designs with combinational
   cycles (check errors) every cycle falls back to full evaluation. *)

type t = Sim.t

let create ?seed design = Sim.create ~engine:Sim.Incremental ?seed design

let step = Sim.step

let step_n = Sim.step_n

let reset = Sim.reset

let poke = Sim.poke

let poke_bool = Sim.poke_bool

let poke_int = Sim.poke_int

let peek = Sim.peek

let peek_bit = Sim.peek_bit

let peek_int = Sim.peek_int

let node_visits = Sim.node_visits

let runtime_errors = Sim.runtime_errors

let snapshot = Sim.snapshot
