(** One-time compiler from the levelized schedule over the compacted
    class graph to the flat bytecode of {!Bytecode}.

    Lowering walks the schedule level by level (seeds, then node ops
    and multi-producer resolutions per level, then register latches),
    so the emitted straight-line program is a strict levelized
    evaluation: it computes the same per-cycle fixpoint, conflict
    reports and RANDOM stream as every other {!Sim} engine.  A
    peephole vectorizer turns stride-1 runs (register seed/latch
    files, copies, NOT chains, shared-guard drivers, the two-driver
    IF/ELSE multiplex shape) into wide 32-lane word ops. *)

(** [None] when the design has a combinational cycle (the schedule has
    no levels to lower; {!Sim} falls back to full re-evaluation). *)
val build : Graph.t -> Sched.t -> Bytecode.prog option

(** Shortest stride-1 run the vectorizer turns into a word op. *)
val vmin : int
