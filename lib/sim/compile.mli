(** One-time compiler from the levelized schedule over the compacted
    class graph to the flat bytecode of {!Bytecode}.

    Lowering walks the schedule level by level (seeds, then node ops
    and multi-producer resolutions per level, then register latches),
    so the emitted straight-line program is a strict levelized
    evaluation: it computes the same per-cycle fixpoint, conflict
    reports and RANDOM stream as every other {!Sim} engine.  A
    peephole vectorizer turns stride-1 runs (register seed/latch
    files, copies, NOT chains, shared-guard drivers, the two-driver
    IF/ELSE multiplex shape) into wide 32-lane word ops. *)

(** [None] when the design has a combinational cycle (the schedule has
    no levels to lower; {!Sim} falls back to full re-evaluation).

    [discharged c] marks class [c] as statically proved conflict-free
    (combinationally [Safe] or [Safe_sequential] from the bounded
    sequential prover): its resolution ops are compiled with the
    runtime conflict report elided ([chk = false]).  Resolved {e
    values} are identical either way — only the Z101 report is
    skipped — so a violated proof assumption (an UNDEF poked into a
    top input) still forces UNDEF consistently with the uncompiled
    engines.  The kept/elided site counts are reported as
    [check_ops]/[discharged_ops] on the program. *)
val build :
  ?discharged:(int -> bool) -> Graph.t -> Sched.t -> Bytecode.prog option

(** Shortest stride-1 run the vectorizer turns into a word op. *)
val vmin : int
