(* Levelized static schedule of the semantics graph.

   A Kahn pass over the bipartite node/net graph assigns every node and
   every class (dense canonical net) a level such that

     level(node) = 1 + max level of its input classes   (0 if none)
     level(net)  =     max level of its producer nodes  (0 if none)

   so processing "all nodes of level l, then all nets of level l" for
   l = 0, 1, ... visits every producer before the net it drives and
   every net before the nodes that consume it.  The incremental engine
   walks dirty cones in this order; the conflict re-propagation pass of
   the other engines reuses it.

   Nodes caught in a combinational cycle (only possible on designs that
   failed the static checks — the simulator's mop-up exists for them)
   keep level -1 and [acyclic] is false; incremental scheduling then
   degrades to full re-evaluation, which is always correct. *)

type t = {
  node_level : int array; (* -1 = in (or downstream of) a cycle *)
  net_level : int array; (* per class; -1 = cyclic *)
  max_level : int;
  acyclic : bool;
  (* static per-level membership, for the parallel engine's chunking and
     its --stats fan-out profile; cyclic items (level -1) are omitted *)
  nodes_at : int array array; (* per level: node ids, ascending *)
  nets_at : int array array; (* per level: class ids, ascending *)
}

(* bucket ids by level (ascending within a level — ids are filled in
   increasing order) *)
let bucketize max_level levels =
  let counts = Array.make (max_level + 1) 0 in
  Array.iter (fun l -> if l >= 0 then counts.(l) <- counts.(l) + 1) levels;
  let buckets = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make (max_level + 1) 0 in
  Array.iteri
    (fun id l ->
      if l >= 0 then begin
        buckets.(l).(fill.(l)) <- id;
        fill.(l) <- fill.(l) + 1
      end)
    levels;
  buckets

let max_width t =
  Array.fold_left (fun acc b -> max acc (Array.length b)) 0 t.nodes_at

let build (g : Graph.t) =
  let n_nodes = Array.length g.Graph.nodes in
  let n = g.Graph.n_classes in
  let node_level = Array.make n_nodes (-1) in
  let net_level = Array.make n (-1) in
  let node_inmax = Array.make n_nodes (-1) in
  let node_remaining = Array.make n_nodes 0 in
  let net_prodmax = Array.make n (-1) in
  let net_remaining = Array.copy g.Graph.producer_count in
  Array.iteri
    (fun i node ->
      node_remaining.(i) <-
        List.fold_left
          (fun acc -> function
            | Zeus_sem.Netlist.Snet _ -> acc + 1
            | Zeus_sem.Netlist.Sconst _ -> acc)
          0
          (Graph.node_inputs node))
    g.Graph.nodes;
  let q = Queue.create () in
  let max_level = ref 0 in
  let ready_node i =
    let l = node_inmax.(i) + 1 in
    node_level.(i) <- l;
    if l > !max_level then max_level := l;
    let tgt = Graph.node_output g.Graph.nodes.(i) in
    if l > net_prodmax.(tgt) then net_prodmax.(tgt) <- l;
    net_remaining.(tgt) <- net_remaining.(tgt) - 1;
    if net_remaining.(tgt) = 0 then Queue.add tgt q
  in
  (* constant-only nodes (including RANDOM sources) are ready at once *)
  Array.iteri (fun i _ -> if node_remaining.(i) = 0 then ready_node i) g.Graph.nodes;
  (* producer-less classes (testbench inputs, register outputs, CLK,
     RSET, undriven nets) are the level-0 seeds *)
  for c = 0 to n - 1 do
    if g.Graph.producer_count.(c) = 0 then Queue.add c q
  done;
  while not (Queue.is_empty q) do
    let c = Queue.pop q in
    let l = max 0 net_prodmax.(c) in
    net_level.(c) <- l;
    if l > !max_level then max_level := l;
    Graph.iter_consumers g c (fun node ->
        if l > node_inmax.(node) then node_inmax.(node) <- l;
        node_remaining.(node) <- node_remaining.(node) - 1;
        if node_remaining.(node) = 0 then ready_node node)
  done;
  let acyclic =
    Array.for_all (fun l -> l >= 0) node_level
    && Array.for_all (fun l -> l >= 0) net_level
  in
  {
    node_level;
    net_level;
    max_level = !max_level;
    acyclic;
    nodes_at = bucketize !max_level node_level;
    nets_at = bucketize !max_level net_level;
  }
