(* Cycle-based simulation of elaborated Zeus designs.

   Seven scheduling engines over the same semantics graph, values and
   resolution rules (so their results are identical — the paper's claim
   in section 8 that every legal propagation order gives the same result
   is a tested invariant here):

   - [Firing]      the event-driven firing-rule evaluator of section 8:
                   each node fires at most once, as soon as its output is
                   determined ("as soon as" semantics, e.g. AND fires 0 on
                   the first 0 input);
   - [Firing_strict] an ablation that waits for every input;
   - [Fixpoint]    a naive baseline: sweep all nodes in creation order
                   until nothing changes;
   - [Relaxation]  a switch-level-style baseline: sweep in reverse order
                   (pessimal information flow), standing in for the
                   iterate-to-stability relaxation of switch-level
                   simulators (Bryant 1981) that section 1 compares
                   against;
   - [Incremental] cross-cycle event-driven evaluation: between cycles
                   only the cone of *changed* seeds (pokes that differ
                   from last cycle, register outputs that latched a new
                   value, RANDOM sources) is re-evaluated along the
                   levelized static schedule ({!Sched}); untouched nets
                   keep their previous-cycle values, so quiescent cycles
                   cost O(dirty), not O(nets) — the "work proportional
                   to activity" property section 8 claims for the
                   firing evaluator, made true across cycles;
   - [Parallel]    the incremental engine with each level of the dirty
                   cone fired concurrently on a reusable domain pool
                   ({!Pool}): within a level every node writes only its
                   own [produced] slot and every net only its own
                   resolution slots, so chunks are data-race-free by
                   construction; dirty-successor sets merge at the
                   barrier between levels.  RANDOM draws are a pure
                   function of (seed, class, cycle) ({!Prand}) — shared
                   by all engines — so snapshots are bit-identical
                   regardless of domain count;
   - [Compiled]    the levelized schedule lowered once ({!Compile}) to
                   flat bytecode ({!Bytecode}) — dense opcode array,
                   operand indices resolved at compile time — executed
                   by a tight dispatch loop over a two-plane bit-packed
                   value store, with stride-1 runs (register files,
                   copies, NOT chains, guarded multiplexes) evaluated
                   32 lanes per word op.  Every node is re-evaluated
                   every cycle, but each evaluation is a handful of
                   table lookups, so throughput beats the interpreted
                   engines by an order of magnitude; designs with
                   combinational cycles fall back to [step_full].

   Per cycle, a net's value:
   - a boolean net fires on its first driving value;
   - a multiplex net fires once all its producers have produced, with
     NOINFL overruled by any driving value;
   - two driving values on one net are a runtime error (the "burning
     transistors" check of section 4.7) and force UNDEF.  A conflict
     discovered after consumers already fired on the first driving value
     triggers a re-propagation pass (strict re-evaluation of the
     downstream cone in schedule order), so the final values are
     schedule-independent in every engine.

   Registers latch at the end of the cycle: a NOINFL/unassigned input
   keeps the stored value (section 5.1). *)

open Zeus_base
open Zeus_sem

type engine =
  | Firing
  | Firing_strict
  | Fixpoint
  | Relaxation
  | Incremental
  | Parallel
  | Compiled

let engine_name = function
  | Firing -> "firing"
  | Firing_strict -> "firing-strict"
  | Fixpoint -> "fixpoint"
  | Relaxation -> "relaxation"
  | Incremental -> "incremental"
  (* demoted from "parallel" when the batch engine (run_batch) took
     over throughput work: per-level chunking loses to the serial
     incremental path at every domain count (BENCH_par.json), so the
     engine is kept for the differential matrix under a name that says
     what it parallelizes *)
  | Parallel -> "parallel-level"
  | Compiled -> "compiled"

let all_engines =
  [
    Firing; Firing_strict; Fixpoint; Relaxation; Incremental; Parallel;
    Compiled;
  ]

(* observable work breakdown of the parallel engine (--stats) — all
   counters are deterministic functions of (design, stimulus, jobs,
   grain): no wall-clock, so they are golden-testable *)
type par_stats = {
  par_jobs : int;
  par_levels : int; (* warm levels that had any scheduled work *)
  par_chunked_levels : int; (* of those, levels fanned out on the pool *)
  par_barriers : int; (* fork-join regions (one per chunked phase) *)
  par_node_tasks : int; (* node evaluations in warm passes *)
  par_net_tasks : int; (* net resolutions in warm passes *)
  par_max_fanout : int; (* widest dirty node level seen *)
  par_domain_visits : int array; (* node evaluations per domain *)
}

(* observable shape of the compiled program (--stats) — all counters
   except the compile time are deterministic functions of the design *)
type compiled_stats = {
  c_ops : int; (* program length, opcodes *)
  c_scalar_ops : int;
  c_vector_ops : int; (* wide 32-lane word ops *)
  c_vector_lanes : int; (* classes covered by vector ops *)
  c_visits_per_cycle : int; (* node evaluations the program encodes *)
  c_check_ops : int; (* conflict-check sites kept (classes) *)
  c_discharged_ops : int; (* conflict-check sites statically discharged *)
  c_compile_secs : float;
}

type runtime_error = {
  err_cycle : int;
  err_net : string;
  err_code : string; (* stable Diag.Code, shared with the lint engine *)
  err_message : string;
}

type t = {
  g : Graph.t;
  sched : Sched.t;
  engine : engine;
  values : Logic.t option array; (* per class, this cycle *)
  produced : Logic.t option array; (* per node *)
  remaining : int array; (* producers still to fire, per class *)
  drives_seen : int array; (* driving (non-NOINFL) values seen per class *)
  mux_value : Logic.t array; (* resolved-so-far value per class *)
  fired : bool array;
  reg_state : Logic.t array; (* per register *)
  poked : Logic.t option array; (* testbench values, persistent; per class *)
  mutable cycle : int;
  seed : int; (* RANDOM draws are Prand.bool (seed, class, cycle) *)
  mutable errors : runtime_error list;
  mutable node_visits : int; (* work metric for the simulator benches *)
  mutable trace : (string * Logic.t) list; (* firing order, last cycle *)
  mutable trace_enabled : bool;
  prev_values : Logic.t option array; (* last cycle, for toggle counting *)
  toggles : int array; (* value changes per class *)
  const_nodes : int array; (* nodes with only constant inputs *)
  random_nodes : int array; (* RANDOM sources, creation order *)
  (* --- incremental / re-propagation machinery --- *)
  mutable started : bool; (* a full (cold-start) cycle has run *)
  mutable epoch : int; (* stamps instead of Array.fill *)
  node_mark : int array; (* epoch when the node was scheduled *)
  net_mark : int array; (* epoch when the class was scheduled *)
  node_buckets : int list array; (* per level; last slot = cyclic overflow *)
  net_buckets : int list array;
  mutable any_scheduled : bool;
  seed_dirty : bool array; (* per class: seed may differ next cycle *)
  mutable seed_dirty_list : int list;
  in_conflict : bool array; (* per class: >=2 driving values right now *)
  mutable conflict_list : int list;
  reg_dirty : bool array; (* per register: input resolution changed *)
  mutable reg_dirty_list : int list;
  (* --- compiled engine machinery --- *)
  cprog : Bytecode.prog option; (* Some iff engine = Compiled && acyclic *)
  cstate : Bytecode.state option;
  (* --- parallel engine machinery --- *)
  par_serial : bool; (* jobs/width too small to beat the serial path *)
  jobs : int; (* domains per chunked level (1 for serial engines) *)
  grain : int; (* levels narrower than this run on the caller *)
  dom_out : int list array; (* node phase: changed-output nets, per domain *)
  dom_changed : int list array; (* net phase: nets whose value changed *)
  dom_regs : int list array; (* net phase: nets affecting a register *)
  dom_conf : int list array; (* net phase: newly entered conflicts *)
  dom_visits : int array; (* node evaluations per domain *)
  mutable ps_levels : int;
  mutable ps_chunked : int;
  mutable ps_barriers : int;
  mutable ps_node_tasks : int;
  mutable ps_net_tasks : int;
  mutable ps_max_fanout : int;
}

let create ?(engine = Firing) ?(seed = 0x5eed) ?jobs ?(grain = 64)
    ?(optimize = false) ?discharged (design : Elaborate.design) =
  (* the proof-carrying reduction shares nets with the original, so
     poke/peek paths are unchanged; merged copy classes share one
     union-find root, and eliminated logic may read UNDEF/None *)
  let design = if optimize then (Reduce.run design).Reduce.design else design in
  let g = Graph.build design in
  let sched = Sched.build g in
  let jobs =
    let requested =
      match jobs with
      | Some j -> j
      | None -> Domain.recommended_domain_count ()
    in
    max 1 (min requested Pool.max_jobs)
  in
  let n = g.Graph.n_classes in
  let n_nodes = Array.length g.Graph.nodes in
  let const_nodes = ref [] and random_nodes = ref [] in
  for node = n_nodes - 1 downto 0 do
    let const_only =
      List.for_all
        (function Netlist.Sconst _ -> true | Netlist.Snet _ -> false)
        (Graph.node_inputs g.Graph.nodes.(node))
    in
    if const_only then const_nodes := node :: !const_nodes;
    match g.Graph.nodes.(node) with
    | Graph.Ngate { op = Netlist.Grandom; _ } ->
        random_nodes := node :: !random_nodes
    | _ -> ()
  done;
  (* compile once; [None] on combinational cycles (fall back to the
     full re-evaluating step).  [discharged] speaks original canonical
     net ids (what {!Zeus_sem.Seqprove.discharged} indexes); the class
     graph's union-find root recovers that id per class *)
  let cprog =
    if engine = Compiled then
      let discharged =
        Option.map
          (fun pred cls -> pred g.Graph.rep.(cls))
          discharged
      in
      Compile.build ?discharged g sched
    else None
  in
  let cstate = Option.map Bytecode.create_state cprog in
  {
    g;
    sched;
    engine;
    values = Array.make n None;
    produced = Array.make n_nodes None;
    remaining = Array.make n 0;
    drives_seen = Array.make n 0;
    mux_value = Array.make n Logic.Noinfl;
    fired = Array.make n false;
    reg_state =
      Array.map (fun (r : Netlist.reg) -> r.Netlist.rinit) g.Graph.regs;
    poked = Array.make n None;
    cycle = 0;
    seed;
    errors = [];
    node_visits = 0;
    trace = [];
    trace_enabled = false;
    prev_values = Array.make n None;
    toggles = Array.make n 0;
    const_nodes = Array.of_list !const_nodes;
    random_nodes = Array.of_list !random_nodes;
    started = false;
    epoch = 0;
    node_mark = Array.make n_nodes 0;
    net_mark = Array.make n 0;
    node_buckets = Array.make (sched.Sched.max_level + 2) [];
    net_buckets = Array.make (sched.Sched.max_level + 2) [];
    any_scheduled = false;
    seed_dirty = Array.make n false;
    seed_dirty_list = [];
    in_conflict = Array.make n false;
    conflict_list = [];
    reg_dirty = Array.make (Array.length g.Graph.regs) false;
    reg_dirty_list = [];
    cprog;
    cstate;
    (* with one domain (or a design narrower than the grain) no level
       ever fans out, so the pool is pure overhead: take the serial
       incremental path instead *)
    par_serial = jobs <= 1 || Sched.max_width sched <= max 1 grain;
    jobs;
    grain = max 1 grain;
    dom_out = Array.make jobs [];
    dom_changed = Array.make jobs [];
    dom_regs = Array.make jobs [];
    dom_conf = Array.make jobs [];
    dom_visits = Array.make jobs 0;
    ps_levels = 0;
    ps_chunked = 0;
    ps_barriers = 0;
    ps_node_tasks = 0;
    ps_net_tasks = 0;
    ps_max_fanout = 0;
  }

let design t = t.g.Graph.design

let runtime_errors t = List.rev t.errors

let cycle_count t = t.cycle

let node_visits t = t.node_visits

let set_trace t b = t.trace_enabled <- b

let trace_last_cycle t = List.rev t.trace

let error t ~code net_id fmt =
  Fmt.kstr
    (fun message ->
      t.errors <-
        { err_cycle = t.cycle; err_net = t.g.Graph.names.(net_id);
          err_code = code; err_message = message }
        :: t.errors)
    fmt

let conflict_error t net =
  error t ~code:Diag.Code.drive_conflict net
    "more than one driving assignment in cycle %d — burning transistors \
     (value forced to UNDEF)"
    t.cycle

(* RANDOM: a pure function of (seed, output class, cycle) — identical
   in every engine, at every domain count, and idempotent under cone
   re-evaluation *)
let random_value t net =
  Logic.of_bool (Prand.bool ~seed:t.seed ~net ~cycle:t.cycle)

(* ------------------------------------------------------------------ *)
(* Poking and peeking                                                   *)
(* ------------------------------------------------------------------ *)

(* the union-find is resolved at graph-build time: one array read *)
let canon t id = t.g.Graph.canon.(id)

let mark_seed t c =
  if not t.seed_dirty.(c) then begin
    t.seed_dirty.(c) <- true;
    t.seed_dirty_list <- c :: t.seed_dirty_list
  end

let resolve_nets t path =
  match Elaborate.resolve_path (design t) path with
  | Ok nets -> nets
  | Error msg -> invalid_arg ("Sim: " ^ msg)

let poke_nets t nets values =
  if List.length nets <> List.length values then
    invalid_arg "Sim.poke: width mismatch";
  List.iter2
    (fun id v ->
      let c = canon t id in
      t.poked.(c) <- Some v;
      mark_seed t c)
    nets values

let poke t path values = poke_nets t (resolve_nets t path) values

let poke_bool t path b = poke t path [ Logic.of_bool b ]

(* poke an integer as BIN(v, width-of-path), index 1 = MSB *)
let poke_int t path v =
  let nets = resolve_nets t path in
  let bits = Cval.sctree_leaves (Cval.bin v (List.length nets)) in
  poke_nets t nets bits

(* poke an integer with index 1 = LSB (the convention of the report's
   rippleCarry example, where the carry enters at add[1]) *)
let poke_int_lsb t path v =
  let nets = resolve_nets t path in
  let bits =
    List.init (List.length nets) (fun i -> Logic.of_bool ((v lsr i) land 1 = 1))
  in
  poke_nets t nets bits

let unpoke t path =
  List.iter
    (fun id ->
      let c = canon t id in
      t.poked.(c) <- None;
      mark_seed t c)
    (resolve_nets t path)

let value_of_net t id =
  let c = canon t id in
  let v =
    (* the packed planes are authoritative during a compiled run *)
    match t.cstate with
    | Some st when Bytecode.ran st -> Bytecode.get st c
    | _ -> Option.value ~default:Logic.Undef t.values.(c)
  in
  match t.g.Graph.net_kind.(id) with
  | Etype.KBool -> Logic.booleanize v
  | Etype.KMux -> v

let peek_nets t nets = List.map (value_of_net t) nets

let peek t path = peek_nets t (resolve_nets t path)

let peek_int t path = Cval.num (peek t path)

let peek_int_lsb t path = Cval.num (List.rev (peek t path))

let peek_bit t path =
  match peek t path with
  | [ v ] -> v
  | l -> invalid_arg (Fmt.str "Sim.peek_bit %S: width %d" path (List.length l))

let reg_states t =
  Array.to_list
    (Array.mapi
       (fun i (r : Netlist.reg) -> (r.Netlist.rpath, t.reg_state.(i)))
       t.g.Graph.regs)

(* ------------------------------------------------------------------ *)
(* Node evaluation (shared by all engines)                              *)
(* ------------------------------------------------------------------ *)

let src_value t = function
  | Netlist.Sconst v -> Some v
  | Netlist.Snet id -> t.values.(id)

(* guard reads go through the implicit amplifier *)
let guard_value t s = Option.map Logic.booleanize (src_value t s)

(* EQUAL compares the two operands' concatenated bit lists *)
let equal_fold vs =
  let n = List.length vs / 2 in
  let a = List.filteri (fun i _ -> i < n) vs
  and b = List.filteri (fun i _ -> i >= n) vs in
  List.fold_left2
    (fun acc x y -> Logic.and2 acc (Logic.equal2 x y))
    Logic.One a b

let eval_gate t op (inputs : Netlist.src array) =
  let vals = Array.to_list (Array.map (src_value t) inputs) in
  (* the Firing_strict ablation waits for every input before firing,
     instead of the "as soon as" rule of section 8; the result is the
     same, only later (more node visits) *)
  let strict = t.engine = Firing_strict in
  match op with
  | Netlist.Gand ->
      if strict then Logic.map_all Logic.and_list vals
      else Logic.and_partial vals
  | Netlist.Gor ->
      if strict then Logic.map_all Logic.or_list vals
      else Logic.or_partial vals
  | Netlist.Gnand ->
      if strict then Logic.map_all Logic.nand_list vals
      else Logic.nand_partial vals
  | Netlist.Gnor ->
      if strict then Logic.map_all Logic.nor_list vals
      else Logic.nor_partial vals
  | Netlist.Gxor -> Logic.xor_partial vals
  | Netlist.Gnot -> Logic.not_partial vals
  | Netlist.Gequal -> Logic.map_all equal_fold vals
  | Netlist.Grandom -> assert false (* handled by the callers via the
                                       output class, see [random_value] *)

let eval_driver t guard source =
  match guard with
  | None -> src_value t source
  | Some gs -> (
      match guard_value t gs with
      | None -> None
      | Some Logic.Zero ->
          (* strict ablation: wait for the source anyway ("the IF node is
             firing as soon as both entering edges have been assigned") *)
          if t.engine = Firing_strict && src_value t source = None then None
          else Some Logic.Noinfl
      | Some Logic.One -> src_value t source
      | Some (Logic.Undef | Logic.Noinfl) ->
          if t.engine = Firing_strict && src_value t source = None then None
          else Some Logic.Undef)

(* Strict re-evaluation with full information, used by the dirty-cone
   pass: by the section 8 invariant it computes the same value the
   partial ("as soon as") rules converge to once every input is known. *)

let strict_src t = function
  | Netlist.Sconst v -> v
  | Netlist.Snet id -> Option.value ~default:Logic.Undef t.values.(id)

let strict_eval_node t node_id =
  match t.g.Graph.nodes.(node_id) with
  | Graph.Ngate { op = Netlist.Grandom; output; _ } ->
      (* stateless: recomputing during a cone re-evaluation yields the
         same value the pre-pass drew *)
      random_value t output
  | Graph.Ngate { op; inputs; _ } -> (
      let vals = Array.to_list (Array.map (strict_src t) inputs) in
      match op with
      | Netlist.Gand -> Logic.and_list vals
      | Netlist.Gor -> Logic.or_list vals
      | Netlist.Gnand -> Logic.nand_list vals
      | Netlist.Gnor -> Logic.nor_list vals
      | Netlist.Gxor -> Logic.xor_list vals
      | Netlist.Gnot -> Logic.not_ (List.hd vals)
      | Netlist.Gequal -> equal_fold vals
      | Netlist.Grandom -> assert false)
  | Graph.Ndriver { guard; source; _ } -> (
      match guard with
      | None -> strict_src t source
      | Some gs -> (
          match Logic.booleanize (strict_src t gs) with
          | Logic.Zero -> Logic.Noinfl
          | Logic.One -> strict_src t source
          | Logic.Undef | Logic.Noinfl -> Logic.Undef))

(* the value a producer-less class reads this cycle *)
let seed_value t c =
  let g = t.g in
  match t.poked.(c) with
  | Some v -> v
  | None ->
      if c = g.Graph.clk then Logic.One
      else if c = g.Graph.rset then Logic.Zero
      else
        let r = g.Graph.reg_of_out.(c) in
        if r >= 0 then t.reg_state.(r) else Logic.Undef

(* ------------------------------------------------------------------ *)
(* Dirty-cone propagation (incremental engine + conflict re-fire)       *)
(* ------------------------------------------------------------------ *)

let overflow_slot t = Array.length t.node_buckets - 1

let schedule_node t node =
  if t.node_mark.(node) <> t.epoch then begin
    t.node_mark.(node) <- t.epoch;
    let l = t.sched.Sched.node_level.(node) in
    let b = if l < 0 then overflow_slot t else l in
    t.node_buckets.(b) <- node :: t.node_buckets.(b);
    t.any_scheduled <- true
  end

let schedule_net t net =
  if t.net_mark.(net) <> t.epoch then begin
    t.net_mark.(net) <- t.epoch;
    let l = t.sched.Sched.net_level.(net) in
    let b = if l < 0 then overflow_slot t else l in
    t.net_buckets.(b) <- net :: t.net_buckets.(b);
    t.any_scheduled <- true
  end

let mark_reg_dirty t i =
  if not t.reg_dirty.(i) then begin
    t.reg_dirty.(i) <- true;
    t.reg_dirty_list <- i :: t.reg_dirty_list
  end

(* Recompute a class's resolution from its producers' produced values
   (or, for producer-less classes, its seed).  Returns
   (value_changed, driven_flag_changed, entered_conflict).  Every write
   is to this net's own slot, so distinct nets can be finalized from
   distinct domains concurrently; the shared [conflict_list] append is
   left to the (sequential) callers. *)
let finalize_net_core t net =
  let g = t.g in
  let old_value = t.values.(net) in
  let old_driven = t.drives_seen.(net) > 0 in
  let entered = ref false in
  if g.Graph.producer_count.(net) = 0 then
    t.values.(net) <- Some (seed_value t net)
  else begin
    let drives = ref 0 and dval = ref Logic.Noinfl in
    Graph.iter_producers g net (fun node ->
        match t.produced.(node) with
        | Some v when not (Logic.equal v Logic.Noinfl) ->
            incr drives;
            dval := (if !drives = 1 then v else Logic.Undef)
        | _ -> ());
    t.drives_seen.(net) <- !drives;
    t.mux_value.(net) <- !dval;
    let v =
      match g.Graph.class_kind.(net) with
      | Etype.KBool ->
          if !drives = 0 then Logic.Undef else Logic.booleanize !dval
      | Etype.KMux -> !dval
    in
    t.values.(net) <- Some v;
    if !drives >= 2 then begin
      if not t.in_conflict.(net) then begin
        t.in_conflict.(net) <- true;
        entered := true
      end
    end
    else if t.in_conflict.(net) then t.in_conflict.(net) <- false
    (* stale entries are filtered from conflict_list lazily *)
  end;
  (t.values.(net) <> old_value, (t.drives_seen.(net) > 0) <> old_driven, !entered)

(* the serial wrapper: [emit_conflict] reports newly-entered conflicts;
   the incremental engine instead reports every standing conflict once
   per cycle, after its pass *)
let finalize_net t ~emit_conflict net =
  let changed, driven_changed, entered = finalize_net_core t net in
  if entered then begin
    t.conflict_list <- net :: t.conflict_list;
    if emit_conflict then conflict_error t net
  end;
  (changed, driven_changed)

(* Forward pass over the level buckets: nodes of level l, then classes
   of level l.  Classes caught in combinational cycles live in the
   overflow slot and are relaxed to a bounded fixpoint. *)
let run_pass t ~emit_conflict ~incremental =
  if t.any_scheduled then begin
    t.any_scheduled <- false;
    let g = t.g in
    let nb = t.node_buckets and sb = t.net_buckets in
    let levels = overflow_slot t in
    let process_node node =
      t.node_visits <- t.node_visits + 1;
      let v = strict_eval_node t node in
      if t.produced.(node) <> Some v then begin
        t.produced.(node) <- Some v;
        schedule_net t (Graph.node_output g.Graph.nodes.(node))
      end
    in
    let process_net net =
      let changed, driven_changed = finalize_net t ~emit_conflict net in
      if changed then begin
        if incremental then begin
          (match (t.prev_values.(net), t.values.(net)) with
          | Some a, Some b when not (Logic.equal a b) ->
              t.toggles.(net) <- t.toggles.(net) + 1
          | _ -> ());
          t.prev_values.(net) <- t.values.(net);
          if t.trace_enabled then
            match t.values.(net) with
            | Some v -> t.trace <- (g.Graph.names.(net), v) :: t.trace
            | None -> ()
        end;
        Graph.iter_consumers g net (fun node -> schedule_node t node)
      end;
      if incremental && (changed || driven_changed) then
        List.iter (mark_reg_dirty t) g.Graph.regs_of_in.(net)
    in
    for l = 0 to levels - 1 do
      (match nb.(l) with
      | [] -> ()
      | ns ->
          nb.(l) <- [];
          List.iter process_node (List.rev ns));
      match sb.(l) with
      | [] -> ()
      | ss ->
          sb.(l) <- [];
          List.iter process_net (List.rev ss)
    done;
    (* overflow: combinational cycles (designs with check errors only) —
       iterate to a bounded fixpoint; unmark before processing so items
       can be re-scheduled by later changes *)
    if nb.(levels) <> [] || sb.(levels) <> [] then begin
      let budget = ref 1000 in
      let continue_ = ref true in
      while !continue_ && !budget > 0 do
        continue_ := false;
        decr budget;
        (match sb.(levels) with
        | [] -> ()
        | ss ->
            sb.(levels) <- [];
            continue_ := true;
            List.iter
              (fun net ->
                t.net_mark.(net) <- t.epoch - 1;
                process_net net)
              (List.rev ss));
        match nb.(levels) with
        | [] -> ()
        | ns ->
            nb.(levels) <- [];
            continue_ := true;
            List.iter
              (fun node ->
                t.node_mark.(node) <- t.epoch - 1;
                process_node node)
              (List.rev ns)
      done
    end
  end

(* end-of-cycle register latch: "If in is not changed during a clock
   cycle, it keeps its value" (section 5.1) — a register input whose
   drivers all produced NOINFL was not changed, even though a boolean
   *read* of that net sees UNDEF; hence we look at the driving count,
   not the fired value. *)
let latch_reg t i =
  let g = t.g in
  let c = g.Graph.reg_in.(i) in
  let old = t.reg_state.(i) in
  (if g.Graph.producer_count.(c) = 0 then (
     (* producer-less: a testbench input or a floating pin *)
     match t.values.(c) with
     | None | Some Logic.Noinfl -> ()
     | Some v -> t.reg_state.(i) <- Logic.booleanize v)
   else if t.drives_seen.(c) > 0 then
     t.reg_state.(i) <- Logic.booleanize t.mux_value.(c));
  (* a changed stored value is a changed seed for the next cycle *)
  if not (Logic.equal old t.reg_state.(i)) then mark_seed t g.Graph.reg_out.(i)

(* ------------------------------------------------------------------ *)
(* One full clock cycle (all engines; Incremental cold start)           *)
(* ------------------------------------------------------------------ *)

let event_driven = function
  | Firing | Firing_strict | Incremental | Parallel | Compiled -> true
  | Fixpoint | Relaxation -> false

let step_full t =
  let g = t.g in
  let n_nodes = Array.length g.Graph.nodes in
  let n = g.Graph.n_classes in
  Array.fill t.values 0 n None;
  Array.fill t.produced 0 n_nodes None;
  Array.fill t.drives_seen 0 n 0;
  Array.fill t.mux_value 0 n Logic.Noinfl;
  Array.fill t.fired 0 n false;
  Array.blit g.Graph.producer_count 0 t.remaining 0 n;
  List.iter (fun c -> t.in_conflict.(c) <- false) t.conflict_list;
  t.conflict_list <- [];
  t.trace <- [];
  let worklist = Queue.create () in
  let fire net v =
    if not t.fired.(net) then begin
      t.fired.(net) <- true;
      t.values.(net) <- Some v;
      if t.trace_enabled then t.trace <- (g.Graph.names.(net), v) :: t.trace;
      if event_driven t.engine then
        Graph.iter_consumers g net (fun nid -> Queue.add nid worklist)
    end
  in
  (* Incremental resolution: [mux_value] keeps the single driving value
     seen so far; a second driving value is a conflict and forces UNDEF.
     Firing rule (a) of section 8: a boolean net fires on its first
     driving value; a multiplex net fires once all producers fired. *)
  let produce node_id net v =
    if t.produced.(node_id) = None then begin
      t.produced.(node_id) <- Some v;
      t.remaining.(net) <- t.remaining.(net) - 1;
      if not (Logic.equal v Logic.Noinfl) then begin
        t.drives_seen.(net) <- t.drives_seen.(net) + 1;
        if t.drives_seen.(net) = 2 then begin
          conflict_error t net;
          t.values.(net) <- Some Logic.Undef;
          if not t.in_conflict.(net) then begin
            t.in_conflict.(net) <- true;
            t.conflict_list <- net :: t.conflict_list
          end
        end;
        t.mux_value.(net) <-
          (if t.drives_seen.(net) > 1 then Logic.Undef else v)
      end;
      match g.Graph.class_kind.(net) with
      | Etype.KBool ->
          if not (Logic.equal v Logic.Noinfl) then
            fire net (Logic.booleanize t.mux_value.(net))
          else if t.remaining.(net) = 0 && not t.fired.(net) then
            fire net Logic.Undef
      | Etype.KMux ->
          if t.remaining.(net) = 0 then fire net t.mux_value.(net)
    end
  in
  let try_node node_id =
    if t.produced.(node_id) = None then begin
      t.node_visits <- t.node_visits + 1;
      match g.Graph.nodes.(node_id) with
      | Graph.Ngate { op = Netlist.Grandom; output; _ } ->
          produce node_id output (random_value t output);
          true
      | Graph.Ngate { op; inputs; output } -> (
          match eval_gate t op inputs with
          | Some v ->
              produce node_id output v;
              true
          | None -> false)
      | Graph.Ndriver { guard; source; target } -> (
          match eval_driver t guard source with
          | Some v ->
              produce node_id target v;
              true
          | None -> false)
    end
    else false
  in
  (* seed producer-less classes: testbench inputs, register outputs, CLK,
     RSET, and undriven nets (which read UNDEF) — register outputs via
     the create-time class -> register map, not a per-cycle hashtable *)
  for net = 0 to n - 1 do
    if t.remaining.(net) = 0 then fire net (seed_value t net)
  done;
  (match t.engine with
  | Firing | Firing_strict | Incremental | Parallel | Compiled ->
      (* nodes with only constant inputs fire without stimulus *)
      Array.iter (fun node_id -> ignore (try_node node_id)) t.const_nodes;
      let rec drain () =
        match Queue.take_opt worklist with
        | Some node_id ->
            ignore (try_node node_id);
            drain ()
        | None -> ()
      in
      drain ()
  | Fixpoint | Relaxation ->
      (* sweep until stable; Relaxation sweeps against the creation
         order, modelling an iterate-to-stability relaxation *)
      let changed = ref true in
      while !changed do
        changed := false;
        if t.engine = Fixpoint then begin
          for node_id = 0 to n_nodes - 1 do
            if try_node node_id then changed := true
          done
        end
        else
          for node_id = n_nodes - 1 downto 0 do
            if try_node node_id then changed := true
          done
      done);
  (* defensive: anything still unfired (only on designs with check
     errors, e.g. combinational cycles) reads UNDEF *)
  let rec mop_up budget =
    if budget > 0 then begin
      let stuck = ref false in
      for net = 0 to n - 1 do
        if (not t.fired.(net)) && Graph.consumer_count g net > 0 then begin
          stuck := true;
          fire net Logic.Undef
        end
      done;
      if !stuck then begin
        (match t.engine with
        | Firing | Firing_strict | Incremental | Parallel | Compiled ->
            let rec drain () =
              match Queue.take_opt worklist with
              | Some node_id ->
                  ignore (try_node node_id);
                  drain ()
              | None -> ()
            in
            drain ()
        | Fixpoint ->
            let changed = ref true in
            while !changed do
              changed := false;
              for node_id = 0 to n_nodes - 1 do
                if try_node node_id then changed := true
              done
            done
        | Relaxation ->
            (* sweep against creation order here too: the fallback must
               keep the pessimal information flow the engine models *)
            let changed = ref true in
            while !changed do
              changed := false;
              for node_id = n_nodes - 1 downto 0 do
                if try_node node_id then changed := true
              done
            done);
        mop_up (budget - 1)
      end
    end
  in
  mop_up 1000;
  (* Conflict re-propagation: a second driving value forces a net to
     UNDEF *after* consumers may already have fired on the first value,
     which would make downstream values depend on the engine's schedule.
     Strictly re-evaluate the downstream cone of every conflicted net so
     the cycle's final values are schedule-independent. *)
  if t.conflict_list <> [] then begin
    t.epoch <- t.epoch + 1;
    List.iter
      (fun c -> Graph.iter_consumers g c (fun node -> schedule_node t node))
      t.conflict_list;
    run_pass t ~emit_conflict:true ~incremental:false
  end;
  (* latch the registers *)
  for i = 0 to Array.length g.Graph.regs - 1 do
    latch_reg t i
  done;
  (* switching-activity accounting: count value changes between
     consecutive cycles (the classic dynamic-power proxy) *)
  for net = 0 to n - 1 do
    (match (t.prev_values.(net), t.values.(net)) with
    | Some a, Some b when not (Logic.equal a b) ->
        t.toggles.(net) <- t.toggles.(net) + 1
    | _ -> ());
    t.prev_values.(net) <- t.values.(net)
  done;
  t.started <- true;
  t.cycle <- t.cycle + 1

(* ------------------------------------------------------------------ *)
(* One incremental clock cycle                                          *)
(* ------------------------------------------------------------------ *)

(* the shared warm-cycle prologue and epilogue of the incremental and
   parallel engines: RANDOM redraw + dirty-seed scheduling before the
   pass, standing-conflict re-report + dirty-register latch after it *)

let warm_prologue t =
  let g = t.g in
  t.epoch <- t.epoch + 1;
  t.trace <- [];
  (* RANDOM sources re-draw every cycle; each draw is the pure function
     {!random_value} of the output class, so neither order nor engine
     affects the stream *)
  Array.iter
    (fun node ->
      t.node_visits <- t.node_visits + 1;
      let out = Graph.node_output g.Graph.nodes.(node) in
      let v = random_value t out in
      if t.produced.(node) <> Some v then begin
        t.produced.(node) <- Some v;
        schedule_net t out
      end)
    t.random_nodes;
  (* seeds that may have changed: pokes/unpokes since last cycle and
     register outputs that latched a new value *)
  let dirty = t.seed_dirty_list in
  t.seed_dirty_list <- [];
  List.iter
    (fun c ->
      t.seed_dirty.(c) <- false;
      if
        g.Graph.producer_count.(c) = 0
        && t.values.(c) <> Some (seed_value t c)
      then schedule_net t c)
    dirty

let warm_epilogue t =
  (* the runtime multiple-drive check re-reports a standing conflict
     every cycle, like the re-firing engines; the report order is sorted
     by class id so the incremental and parallel traces are identical *)
  if t.conflict_list <> [] then begin
    t.conflict_list <- List.filter (fun c -> t.in_conflict.(c)) t.conflict_list;
    List.iter (fun c -> conflict_error t c) (List.sort compare t.conflict_list)
  end;
  (* latch only the registers whose input resolution changed *)
  let regs = t.reg_dirty_list in
  t.reg_dirty_list <- [];
  List.iter
    (fun i ->
      t.reg_dirty.(i) <- false;
      latch_reg t i)
    regs;
  t.cycle <- t.cycle + 1

let step_incremental t =
  warm_prologue t;
  run_pass t ~emit_conflict:false ~incremental:true;
  warm_epilogue t

(* ------------------------------------------------------------------ *)
(* One parallel clock cycle                                             *)
(* ------------------------------------------------------------------ *)

(* The incremental dirty-cone pass with each level fired concurrently.

   Safety: within the node phase of a level every chunk writes only the
   [produced] slots of its own nodes (each node is in exactly one
   chunk) and reads values of strictly lower levels, which no chunk
   writes; within the net phase every chunk writes only the resolution
   slots of its own nets and reads [produced] of nodes of level <= l,
   all written before the phase started.  The pool's mutex orders the
   region publish before every chunk and every chunk before the join,
   so there are no data races.  Everything shared — bucket scheduling,
   conflict-list appends, register dirty marks, the trace — happens
   sequentially at the barrier between phases.

   Determinism: values are order-independent (disjoint writes, strict
   evaluation), so snapshots cannot depend on [jobs]; the merged
   changed-set is sorted by class id before its observable effects
   (trace order), so the trace cannot either. *)
let run_pass_parallel t =
  if t.any_scheduled then begin
    t.any_scheduled <- false;
    let g = t.g in
    let levels = overflow_slot t in
    (* acyclic is guaranteed here (see [step]), so the overflow slot is
       never populated *)
    let chunked n = t.jobs > 1 && n > t.grain in
    for l = 0 to levels - 1 do
      let had_nodes = t.node_buckets.(l) <> [] in
      let had_nets = ref (t.net_buckets.(l) <> []) in
      (* --- node phase --- *)
      (match t.node_buckets.(l) with
      | [] -> ()
      | ns ->
          t.node_buckets.(l) <- [];
          let arr = Array.of_list ns in
          let n = Array.length arr in
          t.ps_node_tasks <- t.ps_node_tasks + n;
          t.node_visits <- t.node_visits + n;
          if n > t.ps_max_fanout then t.ps_max_fanout <- n;
          let nchunks = if chunked n then t.jobs else 1 in
          let chunk d =
            let lo = n * d / nchunks and hi = n * (d + 1) / nchunks in
            let out = ref [] in
            for k = lo to hi - 1 do
              let node = arr.(k) in
              let v = strict_eval_node t node in
              if t.produced.(node) <> Some v then begin
                t.produced.(node) <- Some v;
                out := Graph.node_output g.Graph.nodes.(node) :: !out
              end
            done;
            t.dom_visits.(d) <- t.dom_visits.(d) + (hi - lo);
            t.dom_out.(d) <- !out
          in
          if nchunks > 1 then begin
            Pool.run ~jobs:nchunks chunk;
            t.ps_barriers <- t.ps_barriers + 1;
            t.ps_chunked <- t.ps_chunked + 1
          end
          else chunk 0;
          (* barrier merge: schedule the changed-output nets (epoch
             marks deduplicate nets shared by several chunks) *)
          for d = 0 to nchunks - 1 do
            List.iter (fun net -> schedule_net t net) t.dom_out.(d);
            t.dom_out.(d) <- []
          done);
      if t.net_buckets.(l) <> [] then had_nets := true;
      (* --- net phase --- *)
      (match t.net_buckets.(l) with
      | [] -> ()
      | ss ->
          t.net_buckets.(l) <- [];
          let arr = Array.of_list ss in
          let n = Array.length arr in
          t.ps_net_tasks <- t.ps_net_tasks + n;
          let nchunks = if chunked n then t.jobs else 1 in
          let chunk d =
            let lo = n * d / nchunks and hi = n * (d + 1) / nchunks in
            let changed = ref [] and regs = ref [] and conf = ref [] in
            for k = lo to hi - 1 do
              let net = arr.(k) in
              let value_changed, driven_changed, entered =
                finalize_net_core t net
              in
              if value_changed then begin
                (match (t.prev_values.(net), t.values.(net)) with
                | Some a, Some b when not (Logic.equal a b) ->
                    t.toggles.(net) <- t.toggles.(net) + 1
                | _ -> ());
                t.prev_values.(net) <- t.values.(net);
                changed := net :: !changed
              end;
              if
                (value_changed || driven_changed)
                && g.Graph.regs_of_in.(net) <> []
              then regs := net :: !regs;
              if entered then conf := net :: !conf
            done;
            t.dom_changed.(d) <- !changed;
            t.dom_regs.(d) <- !regs;
            t.dom_conf.(d) <- !conf
          in
          if nchunks > 1 then begin
            Pool.run ~jobs:nchunks chunk;
            t.ps_barriers <- t.ps_barriers + 1
          end
          else chunk 0;
          (* barrier merge: conflicts, register marks, then the changed
             set sorted by class id for a jobs-independent trace *)
          let changed = ref [] in
          for d = 0 to nchunks - 1 do
            changed := List.rev_append t.dom_changed.(d) !changed;
            t.dom_changed.(d) <- [];
            List.iter
              (fun net ->
                List.iter (mark_reg_dirty t) g.Graph.regs_of_in.(net))
              t.dom_regs.(d);
            t.dom_regs.(d) <- [];
            List.iter
              (fun net -> t.conflict_list <- net :: t.conflict_list)
              t.dom_conf.(d);
            t.dom_conf.(d) <- []
          done;
          List.iter
            (fun net ->
              (if t.trace_enabled then
                 match t.values.(net) with
                 | Some v ->
                     t.trace <- (g.Graph.names.(net), v) :: t.trace
                 | None -> ());
              Graph.iter_consumers g net (fun node -> schedule_node t node))
            (List.sort compare !changed));
      if had_nodes || !had_nets then t.ps_levels <- t.ps_levels + 1
    done
  end

let step_parallel t =
  warm_prologue t;
  run_pass_parallel t;
  warm_epilogue t

(* ------------------------------------------------------------------ *)
(* One compiled clock cycle                                             *)
(* ------------------------------------------------------------------ *)

(* The bytecode program is authoritative for net values (packed planes)
   and register contents during a compiled run; peeks and snapshots
   decode the planes directly ([value_of_net], [snapshot]), the change
   sweep accrues toggles (and the trace, when enabled) without touching
   [t.values], and [reg_state] is decoded after each cycle so
   [reg_states] needs no dispatch. *)
let step_compiled t prog st =
  (* mirror pokes/unpokes since the last cycle into the packed poke
     planes (read by the wide register-seed op) *)
  let dirty = t.seed_dirty_list in
  t.seed_dirty_list <- [];
  List.iter
    (fun c ->
      t.seed_dirty.(c) <- false;
      Bytecode.sync_poke st c t.poked.(c))
    dirty;
  let first = not (Bytecode.ran st) in
  let conflicts =
    Bytecode.run_cycle prog st ~poked:t.poked ~seed:t.seed ~cycle:t.cycle
  in
  (* the runtime multiple-drive check re-reports a standing conflict
     every cycle, in class order like the warm incremental path *)
  List.iter (fun c -> conflict_error t c) (List.sort compare conflicts);
  t.node_visits <- t.node_visits + prog.Bytecode.visits_per_cycle;
  t.trace <- [];
  let on_change =
    if t.trace_enabled then
      Some (fun c v -> t.trace <- (t.g.Graph.names.(c), v) :: t.trace)
    else None
  in
  Bytecode.sweep st ~first ~toggles:t.toggles ~on_change;
  for i = 0 to Array.length t.g.Graph.regs - 1 do
    t.reg_state.(i) <- Bytecode.reg_get st i
  done;
  t.started <- true;
  t.cycle <- t.cycle + 1

let parallel_stats t =
  if t.engine <> Parallel then None
  else
    Some
      {
        par_jobs = t.jobs;
        par_levels = t.ps_levels;
        par_chunked_levels = t.ps_chunked;
        par_barriers = t.ps_barriers;
        par_node_tasks = t.ps_node_tasks;
        par_net_tasks = t.ps_net_tasks;
        par_max_fanout = t.ps_max_fanout;
        par_domain_visits = Array.copy t.dom_visits;
      }

let compiled_stats t =
  match t.cprog with
  | Some p ->
      Some
        {
          c_ops = Array.length p.Bytecode.ops;
          c_scalar_ops = p.Bytecode.scalar_ops;
          c_vector_ops = p.Bytecode.vector_ops;
          c_vector_lanes = p.Bytecode.vector_lanes;
          c_visits_per_cycle = p.Bytecode.visits_per_cycle;
          c_check_ops = p.Bytecode.check_ops;
          c_discharged_ops = p.Bytecode.discharged_ops;
          c_compile_secs = p.Bytecode.compile_secs;
        }
  | None -> None

let step t =
  match t.engine with
  | Incremental when t.started && t.sched.Sched.acyclic -> step_incremental t
  | Parallel when t.started && t.sched.Sched.acyclic ->
      (* the jobs<=1 / sub-grain configurations pay pool setup for zero
         fan-out: short-circuit to the serial incremental path *)
      if t.par_serial then step_incremental t else step_parallel t
  | Compiled -> (
      match (t.cprog, t.cstate) with
      | Some prog, Some st -> step_compiled t prog st
      | _ -> step_full t (* combinational cycle: no schedule to compile *))
  | _ -> step_full t

let step_n t n =
  for _ = 1 to n do
    step t
  done

(* step until [pred] holds, at most [max] cycles; returns the number of
   cycles stepped, or [None] on timeout *)
let run_until t ~max pred =
  let rec go n =
    if n >= max then None
    else begin
      step t;
      if pred t then Some (n + 1) else go (n + 1)
    end
  in
  go 0

(* pulse RSET for one cycle, restoring whatever the testbench had poked
   (or not poked) on RSET before the pulse *)
let reset t =
  let rset = t.g.Graph.rset in
  let saved = t.poked.(rset) in
  t.poked.(rset) <- Some Logic.One;
  mark_seed t rset;
  step t;
  t.poked.(rset) <- saved;
  mark_seed t rset

(* full power-up re-initialization: the handle behaves exactly like a
   fresh [create] with the same design, engine, seed and jobs — every
   residual bit of cross-cycle state (values, register contents, pokes,
   dirty sets, epoch stamps, per-domain buffers, counters) is cleared,
   so engine re-entry under the reused domain pool is reproducible *)
let restart t =
  Array.fill t.values 0 (Array.length t.values) None;
  Array.fill t.produced 0 (Array.length t.produced) None;
  Array.fill t.remaining 0 (Array.length t.remaining) 0;
  Array.fill t.drives_seen 0 (Array.length t.drives_seen) 0;
  Array.fill t.mux_value 0 (Array.length t.mux_value) Logic.Noinfl;
  Array.fill t.fired 0 (Array.length t.fired) false;
  Array.iteri
    (fun i (r : Netlist.reg) -> t.reg_state.(i) <- r.Netlist.rinit)
    t.g.Graph.regs;
  Array.fill t.poked 0 (Array.length t.poked) None;
  t.cycle <- 0;
  t.errors <- [];
  t.node_visits <- 0;
  t.trace <- [];
  Array.fill t.prev_values 0 (Array.length t.prev_values) None;
  Array.fill t.toggles 0 (Array.length t.toggles) 0;
  t.started <- false;
  t.epoch <- 0;
  Array.fill t.node_mark 0 (Array.length t.node_mark) 0;
  Array.fill t.net_mark 0 (Array.length t.net_mark) 0;
  Array.fill t.node_buckets 0 (Array.length t.node_buckets) [];
  Array.fill t.net_buckets 0 (Array.length t.net_buckets) [];
  t.any_scheduled <- false;
  Array.fill t.seed_dirty 0 (Array.length t.seed_dirty) false;
  t.seed_dirty_list <- [];
  Array.fill t.in_conflict 0 (Array.length t.in_conflict) false;
  t.conflict_list <- [];
  Array.fill t.reg_dirty 0 (Array.length t.reg_dirty) false;
  t.reg_dirty_list <- [];
  for d = 0 to t.jobs - 1 do
    t.dom_out.(d) <- [];
    t.dom_changed.(d) <- [];
    t.dom_regs.(d) <- [];
    t.dom_conf.(d) <- [];
    t.dom_visits.(d) <- 0
  done;
  t.ps_levels <- 0;
  t.ps_chunked <- 0;
  t.ps_barriers <- 0;
  t.ps_node_tasks <- 0;
  t.ps_net_tasks <- 0;
  t.ps_max_fanout <- 0;
  match (t.cprog, t.cstate) with
  | Some prog, Some st -> Bytecode.reset_state prog st
  | _ -> ()

(* switching activity: nets with the most value changes so far,
   descending; gate temporaries (names containing '#') are skipped *)
let activity ?(top = 10) t =
  let rows = ref [] in
  Array.iteri
    (fun net count ->
      if count > 0 && not (String.contains t.g.Graph.names.(net) '#') then
        rows := (t.g.Graph.names.(net), count) :: !rows)
    t.toggles;
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) !rows in
  List.filteri (fun i _ -> i < top) sorted

let total_toggles t = Array.fold_left ( + ) 0 t.toggles

(* snapshot of all net values, indexed by original net id with the value
   stored at each alias class's union-find root — the representation
   predates compaction, and the engine-equivalence tests compare these
   arrays structurally *)
let snapshot t =
  let g = t.g in
  match t.cstate with
  | Some st when Bytecode.ran st ->
      (* every class is evaluated every compiled cycle, so every
         representative reads [Some] — exactly like the re-firing
         engines after their first full cycle *)
      Array.init g.Graph.n_nets (fun i ->
          let c = g.Graph.canon.(i) in
          if g.Graph.rep.(c) = i then Some (Bytecode.get st c) else None)
  | _ ->
      Array.init g.Graph.n_nets (fun i ->
          let c = g.Graph.canon.(i) in
          if g.Graph.rep.(c) = i then t.values.(c) else None)

(* ------------------------------------------------------------------ *)
(* Batch engine: whole independent runs sharded over the pool           *)
(* ------------------------------------------------------------------ *)

(* The parallelism Zeus actually has is many independent runs (fuzz
   cases, stimulus vectors, regression corpora), not the per-level
   chunking of [Parallel]: sharding whole runs needs zero cross-run
   barriers, and the splitmix RANDOM — a pure function of (seed, class,
   cycle) — makes every run replay deterministically wherever it lands.

   Two execution paths, both bit-identical to a serial run:

   - the compiled lane path: up to [lanes] consecutive runs with equal
     cycle counts are packed into one {!Bytecode.run_lanes} walk, each
     lane owning its packed planes, pokes and seed — one dispatch pass
     evaluates K scenarios;
   - the serial fallback (interpreted engines, combinational-cycle
     designs, [lanes = 1], zero-cycle runs): a fresh per-run handle
     stepped with the template's engine.

   Inner handles always run jobs=1: the pool is owned by this sharding
   layer and its fork-join protocol does not nest. *)

type batch_run = {
  br_stim : (string * Logic.t list) list array;
      (* pokes applied before cycle i; cycles past the array keep the
         last poked values, like a quiescent testbench *)
  br_cycles : int;
  br_seed : int option; (* per-run RANDOM seed; default the template's *)
  br_watch : string list; (* paths peeked after the final cycle *)
}

type batch_result = {
  bres_snapshot : Logic.t option array; (* after the final cycle *)
  bres_snaps : Logic.t option array list; (* per cycle, when requested *)
  bres_errors : runtime_error list;
  bres_watched : (string * Logic.t list) list;
}

(* deterministic functions of (design, runs, jobs, lanes): no
   wall-clock, so they are golden-testable under --stats *)
type batch_stats = {
  bs_runs : int;
  bs_jobs : int;
  bs_lanes : int; (* requested lane width *)
  bs_lane_groups : int; (* run_lanes groups executed *)
  bs_lane_runs : int; (* runs evaluated through the lane path *)
  bs_serial_runs : int; (* runs evaluated one at a time *)
  bs_cycles : int; (* total cycles across all runs *)
}

(* A fresh handle sharing the immutable compile artifacts (graph,
   schedule, bytecode program) of [t] but owning every piece of mutable
   run state — the per-run clone of the batch engine's serial path. *)
let fresh_like t ~seed =
  let n = Array.length t.values in
  let n_nodes = Array.length t.produced in
  {
    t with
    values = Array.make n None;
    produced = Array.make n_nodes None;
    remaining = Array.make n 0;
    drives_seen = Array.make n 0;
    mux_value = Array.make n Logic.Noinfl;
    fired = Array.make n false;
    reg_state =
      Array.map (fun (r : Netlist.reg) -> r.Netlist.rinit) t.g.Graph.regs;
    poked = Array.make n None;
    cycle = 0;
    seed;
    errors = [];
    node_visits = 0;
    trace = [];
    trace_enabled = false;
    prev_values = Array.make n None;
    toggles = Array.make n 0;
    started = false;
    epoch = 0;
    node_mark = Array.make n_nodes 0;
    net_mark = Array.make n 0;
    node_buckets = Array.make (Array.length t.node_buckets) [];
    net_buckets = Array.make (Array.length t.net_buckets) [];
    any_scheduled = false;
    seed_dirty = Array.make n false;
    seed_dirty_list = [];
    in_conflict = Array.make n false;
    conflict_list = [];
    reg_dirty = Array.make (Array.length t.reg_dirty) false;
    reg_dirty_list = [];
    cstate = Option.map Bytecode.create_state t.cprog;
    (* inner handles never touch the pool (see above) *)
    par_serial = true;
    jobs = 1;
    dom_out = Array.make 1 [];
    dom_changed = Array.make 1 [];
    dom_regs = Array.make 1 [];
    dom_conf = Array.make 1 [];
    dom_visits = Array.make 1 0;
    ps_levels = 0;
    ps_chunked = 0;
    ps_barriers = 0;
    ps_node_tasks = 0;
    ps_net_tasks = 0;
    ps_max_fanout = 0;
  }

(* one run, one fresh handle, the template's engine; [resolve] is the
   caller-built path table so workers never touch the elaborator *)
let batch_exec_serial tmpl run ~resolve ~snapshots =
  let t = fresh_like tmpl ~seed:(Option.value run.br_seed ~default:tmpl.seed) in
  let snaps = ref [] in
  for c = 0 to run.br_cycles - 1 do
    if c < Array.length run.br_stim then
      List.iter
        (fun (p, bits) -> poke_nets t (resolve p) bits)
        run.br_stim.(c);
    step t;
    if snapshots then snaps := snapshot t :: !snaps
  done;
  {
    bres_snapshot = snapshot t;
    bres_snaps = List.rev !snaps;
    bres_errors = runtime_errors t;
    bres_watched = List.map (fun p -> (p, peek_nets t (resolve p))) run.br_watch;
  }

(* a group of runs with one shared cycle count, one lane each *)
let batch_exec_lanes tmpl prog runs ~resolve ~snapshots =
  let g = tmpl.g in
  let nl = Array.length runs in
  let n = g.Graph.n_classes in
  let sts = Array.init nl (fun _ -> Bytecode.create_state prog) in
  let pokeds = Array.init nl (fun _ -> Array.make n None) in
  let seeds =
    Array.map (fun r -> Option.value r.br_seed ~default:tmpl.seed) runs
  in
  let errors = Array.make nl [] (* newest first, like [t.errors] *)
  and snaps = Array.make nl [] in
  let cycles = runs.(0).br_cycles in
  let lane_snapshot li =
    let st = sts.(li) in
    if not (Bytecode.ran st) then Array.make g.Graph.n_nets None
    else
      Array.init g.Graph.n_nets (fun i ->
          let c = g.Graph.canon.(i) in
          if g.Graph.rep.(c) = i then Some (Bytecode.get st c) else None)
  in
  let lane_value li id =
    let v =
      if Bytecode.ran sts.(li) then Bytecode.get sts.(li) g.Graph.canon.(id)
      else Logic.Undef
    in
    match g.Graph.net_kind.(id) with
    | Etype.KBool -> Logic.booleanize v
    | Etype.KMux -> v
  in
  for c = 0 to cycles - 1 do
    for li = 0 to nl - 1 do
      let run = runs.(li) in
      if c < Array.length run.br_stim then
        List.iter
          (fun (p, bits) ->
            let nets = resolve p in
            if List.length nets <> List.length bits then
              invalid_arg "Sim.run_batch: width mismatch";
            List.iter2
              (fun id v ->
                let cls = g.Graph.canon.(id) in
                pokeds.(li).(cls) <- Some v;
                Bytecode.sync_poke sts.(li) cls (Some v))
              nets bits)
          run.br_stim.(c)
    done;
    let confs = Bytecode.run_lanes prog sts ~pokeds ~seeds ~cycle:c in
    for li = 0 to nl - 1 do
      List.iter
        (fun cls ->
          errors.(li) <-
            {
              err_cycle = c;
              err_net = g.Graph.names.(cls);
              err_code = Diag.Code.drive_conflict;
              err_message =
                Fmt.str
                  "more than one driving assignment in cycle %d — burning \
                   transistors (value forced to UNDEF)"
                  c;
            }
            :: errors.(li))
        (List.sort compare confs.(li));
      if snapshots then snaps.(li) <- lane_snapshot li :: snaps.(li)
    done
  done;
  Array.init nl (fun li ->
      {
        bres_snapshot = lane_snapshot li;
        bres_snaps = List.rev snaps.(li);
        bres_errors = List.rev errors.(li);
        bres_watched =
          List.map
            (fun p -> (p, List.map (lane_value li) (resolve p)))
            runs.(li).br_watch;
      })

let run_batch ?jobs ?(lanes = 8) ?(snapshots = false) t runs =
  let runs = Array.of_list runs in
  let nruns = Array.length runs in
  let jobs =
    let requested =
      match jobs with
      | Some j -> j
      | None -> Domain.recommended_domain_count ()
    in
    max 1 (min (min requested Pool.max_jobs) (max 1 nruns))
  in
  let lanes = max 1 lanes in
  (* resolve every stimulus/watch path once, on the caller, so workers
     share a read-only table (and bad paths fail before any fan-out) *)
  let paths = Hashtbl.create 64 in
  let resolve p =
    match Hashtbl.find_opt paths p with
    | Some nets -> nets
    | None ->
        let nets = resolve_nets t p in
        Hashtbl.add paths p nets;
        nets
  in
  Array.iter
    (fun r ->
      Array.iter (List.iter (fun (p, _) -> ignore (resolve p))) r.br_stim;
      List.iter (fun p -> ignore (resolve p)) r.br_watch)
    runs;
  let results = Array.make nruns None in
  (* per-domain counters, merged after the join: contiguous sharding
     makes them (and the results) deterministic for a given [jobs] *)
  let d_groups = Array.make jobs 0
  and d_lane_runs = Array.make jobs 0
  and d_serial_runs = Array.make jobs 0 in
  let exec_slice d =
    let lo = nruns * d / jobs and hi = nruns * (d + 1) / jobs in
    let i = ref lo in
    while !i < hi do
      let j = !i in
      match t.cprog with
      | Some prog when lanes > 1 && runs.(j).br_cycles > 0 ->
          (* greedy lane group: consecutive runs sharing a cycle count *)
          let k = ref (j + 1) in
          while
            !k < hi && !k - j < lanes && runs.(!k).br_cycles = runs.(j).br_cycles
          do
            incr k
          done;
          let group = Array.sub runs j (!k - j) in
          let rs = batch_exec_lanes t prog group ~resolve ~snapshots in
          Array.iteri (fun o r -> results.(j + o) <- Some r) rs;
          d_groups.(d) <- d_groups.(d) + 1;
          d_lane_runs.(d) <- d_lane_runs.(d) + (!k - j);
          i := !k
      | _ ->
          results.(j) <- Some (batch_exec_serial t runs.(j) ~resolve ~snapshots);
          d_serial_runs.(d) <- d_serial_runs.(d) + 1;
          incr i
    done
  in
  if nruns > 0 then Pool.run ~jobs exec_slice;
  let sum = Array.fold_left ( + ) 0 in
  let stats =
    {
      bs_runs = nruns;
      bs_jobs = jobs;
      bs_lanes = lanes;
      bs_lane_groups = sum d_groups;
      bs_lane_runs = sum d_lane_runs;
      bs_serial_runs = sum d_serial_runs;
      bs_cycles = Array.fold_left (fun acc r -> acc + r.br_cycles) 0 runs;
    }
  in
  ( Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false (* all slots filled *))
         results),
    stats )
