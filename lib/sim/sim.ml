(* Cycle-based simulation of elaborated Zeus designs.

   Three scheduling engines over the same semantics graph, values and
   resolution rules (so their results are identical — the paper's claim
   in section 8 that every legal propagation order gives the same result
   is a tested invariant here):

   - [Firing]     the event-driven firing-rule evaluator of section 8:
                  each node fires at most once, as soon as its output is
                  determined ("as soon as" semantics, e.g. AND fires 0 on
                  the first 0 input);
   - [Fixpoint]   a naive baseline: sweep all nodes in creation order
                  until nothing changes;
   - [Relaxation] a switch-level-style baseline: sweep in reverse order
                  (pessimal information flow), standing in for the
                  iterate-to-stability relaxation of switch-level
                  simulators (Bryant 1981) that section 1 compares
                  against.

   Per cycle, every net is re-evaluated.  Net values:
   - a boolean net fires on its first driving value;
   - a multiplex net fires once all its producers have produced, with
     NOINFL overruled by any driving value;
   - two driving values on one net are a runtime error (the "burning
     transistors" check of section 4.7) and force UNDEF.

   Registers latch at the end of the cycle: a NOINFL/unassigned input
   keeps the stored value (section 5.1). *)

open Zeus_base
open Zeus_sem

type engine =
  | Firing
  | Firing_strict
  | Fixpoint
  | Relaxation

let engine_name = function
  | Firing -> "firing"
  | Firing_strict -> "firing-strict"
  | Fixpoint -> "fixpoint"
  | Relaxation -> "relaxation"

type runtime_error = {
  err_cycle : int;
  err_net : string;
  err_code : string; (* stable Diag.Code, shared with the lint engine *)
  err_message : string;
}

type t = {
  g : Graph.t;
  engine : engine;
  values : Logic.t option array; (* per canonical net, this cycle *)
  produced : Logic.t option array; (* per node *)
  remaining : int array; (* producers still to fire, per canonical net *)
  drives_seen : int array; (* driving (non-NOINFL) values seen per net *)
  mux_value : Logic.t array; (* resolved-so-far value per net *)
  fired : bool array;
  reg_state : Logic.t array; (* per register *)
  poked : Logic.t option array; (* testbench values, persistent *)
  mutable cycle : int;
  mutable rng : Random.State.t;
  mutable errors : runtime_error list;
  mutable node_visits : int; (* work metric for the simulator benches *)
  mutable trace : (string * Logic.t) list; (* firing order, last cycle *)
  mutable trace_enabled : bool;
  prev_values : Logic.t option array; (* last cycle, for toggle counting *)
  toggles : int array; (* value changes per canonical net *)
}

let create ?(engine = Firing) ?(seed = 0x5eed) (design : Elaborate.design) =
  let g = Graph.build design in
  let n = g.Graph.n_nets in
  {
    g;
    engine;
    values = Array.make n None;
    produced = Array.make (Array.length g.Graph.nodes) None;
    remaining = Array.make n 0;
    drives_seen = Array.make n 0;
    mux_value = Array.make n Logic.Noinfl;
    fired = Array.make n false;
    reg_state =
      Array.map (fun (r : Netlist.reg) -> r.Netlist.rinit) g.Graph.regs;
    poked = Array.make n None;
    cycle = 0;
    rng = Random.State.make [| seed |];
    errors = [];
    node_visits = 0;
    trace = [];
    trace_enabled = false;
    prev_values = Array.make n None;
    toggles = Array.make n 0;
  }

let design t = t.g.Graph.design

let runtime_errors t = List.rev t.errors

let cycle_count t = t.cycle

let node_visits t = t.node_visits

let set_trace t b = t.trace_enabled <- b

let trace_last_cycle t = List.rev t.trace

let error t ~code net_id fmt =
  Fmt.kstr
    (fun message ->
      t.errors <-
        { err_cycle = t.cycle; err_net = t.g.Graph.names.(net_id);
          err_code = code; err_message = message }
        :: t.errors)
    fmt

(* ------------------------------------------------------------------ *)
(* Poking and peeking                                                   *)
(* ------------------------------------------------------------------ *)

let canon t id = Netlist.canonical t.g.Graph.nl id

let resolve_nets t path =
  match Elaborate.resolve_path (design t) path with
  | Ok nets -> nets
  | Error msg -> invalid_arg ("Sim: " ^ msg)

let poke_nets t nets values =
  if List.length nets <> List.length values then
    invalid_arg "Sim.poke: width mismatch";
  List.iter2 (fun id v -> t.poked.(canon t id) <- Some v) nets values

let poke t path values = poke_nets t (resolve_nets t path) values

let poke_bool t path b = poke t path [ Logic.of_bool b ]

(* poke an integer as BIN(v, width-of-path), index 1 = MSB *)
let poke_int t path v =
  let nets = resolve_nets t path in
  let bits = Cval.sctree_leaves (Cval.bin v (List.length nets)) in
  poke_nets t nets bits

(* poke an integer with index 1 = LSB (the convention of the report's
   rippleCarry example, where the carry enters at add[1]) *)
let poke_int_lsb t path v =
  let nets = resolve_nets t path in
  let bits =
    List.init (List.length nets) (fun i -> Logic.of_bool ((v lsr i) land 1 = 1))
  in
  poke_nets t nets bits

let unpoke t path =
  List.iter (fun id -> t.poked.(canon t id) <- None) (resolve_nets t path)

let value_of_net t id =
  let v = Option.value ~default:Logic.Undef t.values.(canon t id) in
  match t.g.Graph.net_kind.(id) with
  | Etype.KBool -> Logic.booleanize v
  | Etype.KMux -> v

let peek_nets t nets = List.map (value_of_net t) nets

let peek t path = peek_nets t (resolve_nets t path)

let peek_int t path = Cval.num (peek t path)

let peek_int_lsb t path = Cval.num (List.rev (peek t path))

let peek_bit t path =
  match peek t path with
  | [ v ] -> v
  | l -> invalid_arg (Fmt.str "Sim.peek_bit %S: width %d" path (List.length l))

let reg_states t =
  Array.to_list
    (Array.mapi
       (fun i (r : Netlist.reg) -> (r.Netlist.rpath, t.reg_state.(i)))
       t.g.Graph.regs)

(* ------------------------------------------------------------------ *)
(* Node evaluation (shared by all engines)                              *)
(* ------------------------------------------------------------------ *)

let src_value t = function
  | Netlist.Sconst v -> Some v
  | Netlist.Snet id -> t.values.(id)

(* guard reads go through the implicit amplifier *)
let guard_value t s = Option.map Logic.booleanize (src_value t s)

let eval_gate t op (inputs : Netlist.src array) =
  let vals = Array.to_list (Array.map (src_value t) inputs) in
  (* the Firing_strict ablation waits for every input before firing,
     instead of the "as soon as" rule of section 8; the result is the
     same, only later (more node visits) *)
  let strict = t.engine = Firing_strict in
  match op with
  | Netlist.Gand ->
      if strict then Logic.map_all Logic.and_list vals
      else Logic.and_partial vals
  | Netlist.Gor ->
      if strict then Logic.map_all Logic.or_list vals
      else Logic.or_partial vals
  | Netlist.Gnand ->
      if strict then Logic.map_all Logic.nand_list vals
      else Logic.nand_partial vals
  | Netlist.Gnor ->
      if strict then Logic.map_all Logic.nor_list vals
      else Logic.nor_partial vals
  | Netlist.Gxor -> Logic.xor_partial vals
  | Netlist.Gnot -> Logic.not_partial vals
  | Netlist.Gequal ->
      Logic.map_all
        (fun vs ->
          let n = List.length vs / 2 in
          let a = List.filteri (fun i _ -> i < n) vs
          and b = List.filteri (fun i _ -> i >= n) vs in
          List.fold_left2
            (fun acc x y -> Logic.and2 acc (Logic.equal2 x y))
            Logic.One a b)
        vals
  | Netlist.Grandom -> Some (Logic.of_bool (Random.State.bool t.rng))

let eval_driver t guard source =
  match guard with
  | None -> src_value t source
  | Some gs -> (
      match guard_value t gs with
      | None -> None
      | Some Logic.Zero ->
          (* strict ablation: wait for the source anyway ("the IF node is
             firing as soon as both entering edges have been assigned") *)
          if t.engine = Firing_strict && src_value t source = None then None
          else Some Logic.Noinfl
      | Some Logic.One -> src_value t source
      | Some (Logic.Undef | Logic.Noinfl) ->
          if t.engine = Firing_strict && src_value t source = None then None
          else Some Logic.Undef)

(* ------------------------------------------------------------------ *)
(* One clock cycle                                                      *)
(* ------------------------------------------------------------------ *)

let step t =
  let g = t.g in
  let n_nodes = Array.length g.Graph.nodes in
  let n_nets = Array.length t.values in
  Array.fill t.values 0 n_nets None;
  Array.fill t.produced 0 n_nodes None;
  Array.fill t.drives_seen 0 n_nets 0;
  Array.fill t.mux_value 0 n_nets Logic.Noinfl;
  Array.fill t.fired 0 n_nets false;
  Array.blit g.Graph.producer_count 0 t.remaining 0 n_nets;
  t.trace <- [];
  let worklist = Queue.create () in
  let fire net v =
    if not t.fired.(net) then begin
      t.fired.(net) <- true;
      t.values.(net) <- Some v;
      if t.trace_enabled then t.trace <- (g.Graph.names.(net), v) :: t.trace;
      if t.engine = Firing || t.engine = Firing_strict then
        List.iter (fun nid -> Queue.add nid worklist) g.Graph.consumers.(net)
    end
  in
  (* Incremental resolution: [mux_value] keeps the single driving value
     seen so far; a second driving value is a conflict and forces UNDEF.
     Firing rule (a) of section 8: a boolean net fires on its first
     driving value; a multiplex net fires once all producers fired. *)
  let produce node_id net v =
    if t.produced.(node_id) = None then begin
      t.produced.(node_id) <- Some v;
      t.remaining.(net) <- t.remaining.(net) - 1;
      if not (Logic.equal v Logic.Noinfl) then begin
        t.drives_seen.(net) <- t.drives_seen.(net) + 1;
        if t.drives_seen.(net) = 2 then begin
          error t ~code:Diag.Code.drive_conflict net
            "more than one driving assignment in cycle %d — burning \
             transistors (value forced to UNDEF)"
            t.cycle;
          t.values.(net) <- Some Logic.Undef
        end;
        t.mux_value.(net) <-
          (if t.drives_seen.(net) > 1 then Logic.Undef else v)
      end;
      match g.Graph.class_kind.(net) with
      | Etype.KBool ->
          if not (Logic.equal v Logic.Noinfl) then
            fire net (Logic.booleanize t.mux_value.(net))
          else if t.remaining.(net) = 0 && not t.fired.(net) then
            fire net Logic.Undef
      | Etype.KMux ->
          if t.remaining.(net) = 0 then fire net t.mux_value.(net)
    end
  in
  let try_node node_id =
    if t.produced.(node_id) = None then begin
      t.node_visits <- t.node_visits + 1;
      match g.Graph.nodes.(node_id) with
      | Graph.Ngate { op; inputs; output } -> (
          match eval_gate t op inputs with
          | Some v ->
              produce node_id output v;
              true
          | None -> false)
      | Graph.Ndriver { guard; source; target } -> (
          match eval_driver t guard source with
          | Some v ->
              produce node_id target v;
              true
          | None -> false)
    end
    else false
  in
  (* seed producer-less nets: testbench inputs, register outputs, CLK,
     RSET, and undriven nets (which read UNDEF) *)
  let reg_out_value = Hashtbl.create 16 in
  Array.iteri
    (fun i (r : Netlist.reg) ->
      Hashtbl.replace reg_out_value
        (Netlist.canonical g.Graph.nl r.Netlist.rout)
        t.reg_state.(i))
    g.Graph.regs;
  let clk = Netlist.canonical g.Graph.nl g.Graph.design.Elaborate.clk_net in
  let rset = Netlist.canonical g.Graph.nl g.Graph.design.Elaborate.rset_net in
  for net = 0 to n_nets - 1 do
    if Netlist.canonical g.Graph.nl net = net && t.remaining.(net) = 0 then begin
      let v =
        match t.poked.(net) with
        | Some v -> v
        | None ->
            if net = clk then Logic.One
            else if net = rset then Logic.Zero
            else (
              match Hashtbl.find_opt reg_out_value net with
              | Some v -> v
              | None -> Logic.Undef)
      in
      fire net v
    end
  done;
  (match t.engine with
  | Firing | Firing_strict ->
      (* nodes with only constant inputs fire without stimulus *)
      for node_id = 0 to n_nodes - 1 do
        let const_only =
          List.for_all
            (function Netlist.Sconst _ -> true | Netlist.Snet _ -> false)
            (Graph.node_inputs g.Graph.nodes.(node_id))
        in
        if const_only then ignore (try_node node_id)
      done;
      let rec drain () =
        match Queue.take_opt worklist with
        | Some node_id ->
            ignore (try_node node_id);
            drain ()
        | None -> ()
      in
      drain ()
  | Fixpoint | Relaxation ->
      (* sweep until stable; Relaxation sweeps against the creation
         order, modelling an iterate-to-stability relaxation *)
      let changed = ref true in
      while !changed do
        changed := false;
        if t.engine = Fixpoint then begin
          for node_id = 0 to n_nodes - 1 do
            if try_node node_id then changed := true
          done
        end
        else
          for node_id = n_nodes - 1 downto 0 do
            if try_node node_id then changed := true
          done
      done);
  (* defensive: anything still unfired (only on designs with check
     errors, e.g. combinational cycles) reads UNDEF *)
  let rec mop_up budget =
    if budget > 0 then begin
      let stuck = ref false in
      for net = 0 to n_nets - 1 do
        if
          Netlist.canonical g.Graph.nl net = net
          && (not t.fired.(net))
          && g.Graph.consumers.(net) <> []
        then begin
          stuck := true;
          fire net Logic.Undef
        end
      done;
      if !stuck then begin
        (match t.engine with
        | Firing | Firing_strict ->
            let rec drain () =
              match Queue.take_opt worklist with
              | Some node_id ->
                  ignore (try_node node_id);
                  drain ()
              | None -> ()
            in
            drain ()
        | Fixpoint | Relaxation ->
            let changed = ref true in
            while !changed do
              changed := false;
              for node_id = 0 to n_nodes - 1 do
                if try_node node_id then changed := true
              done
            done);
        mop_up (budget - 1)
      end
    end
  in
  mop_up 1000;
  (* Latch the registers.  "If in is not changed during a clock cycle,
     it keeps its value" (section 5.1): a register input whose drivers
     all produced NOINFL was not changed — even though a boolean *read*
     of that net sees UNDEF.  Hence we look at the driving count, not the
     fired value. *)
  Array.iteri
    (fun i (r : Netlist.reg) ->
      let c = Netlist.canonical g.Graph.nl r.Netlist.rin in
      if g.Graph.producer_count.(c) = 0 then (
        (* producer-less: a testbench input or a floating pin *)
        match t.values.(c) with
        | None | Some Logic.Noinfl -> ()
        | Some v -> t.reg_state.(i) <- Logic.booleanize v)
      else if t.drives_seen.(c) > 0 then
        t.reg_state.(i) <- Logic.booleanize t.mux_value.(c))
    g.Graph.regs;
  (* switching-activity accounting: count value changes between
     consecutive cycles (the classic dynamic-power proxy) *)
  for net = 0 to n_nets - 1 do
    if Netlist.canonical g.Graph.nl net = net then begin
      (match (t.prev_values.(net), t.values.(net)) with
      | Some a, Some b when not (Logic.equal a b) ->
          t.toggles.(net) <- t.toggles.(net) + 1
      | _ -> ());
      t.prev_values.(net) <- t.values.(net)
    end
  done;
  t.cycle <- t.cycle + 1

let step_n t n =
  for _ = 1 to n do
    step t
  done

(* step until [pred] holds, at most [max] cycles; returns the number of
   cycles stepped, or [None] on timeout *)
let run_until t ~max pred =
  let rec go n =
    if n >= max then None
    else begin
      step t;
      if pred t then Some (n + 1) else go (n + 1)
    end
  in
  go 0

(* pulse RSET for one cycle *)
let reset t =
  t.poked.(canon t (design t).Elaborate.rset_net) <- Some Logic.One;
  step t;
  t.poked.(canon t (design t).Elaborate.rset_net) <- Some Logic.Zero

(* switching activity: nets with the most value changes so far,
   descending; gate temporaries (names containing '#') are skipped *)
let activity ?(top = 10) t =
  let rows = ref [] in
  Array.iteri
    (fun net count ->
      if count > 0 && not (String.contains t.g.Graph.names.(net) '#') then
        rows := (t.g.Graph.names.(net), count) :: !rows)
    t.toggles;
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) !rows in
  List.filteri (fun i _ -> i < top) sorted

let total_toggles t = Array.fold_left ( + ) 0 t.toggles

(* snapshot of all net values by canonical id — used by tests asserting
   engine equivalence *)
let snapshot t =
  Array.mapi
    (fun i v ->
      if Netlist.canonical t.g.Graph.nl i = i then v else None)
    t.values
