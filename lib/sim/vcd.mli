(** Value-change-dump (VCD) writer: waveforms from the simulator in the
    standard format ([0 1 x z] for Zeus's 0/1/UNDEF/NOINFL). *)

open Zeus_base

type t

(** The four-valued scalar encoding ([0 1 x z]) and its inverse
    (accepting either case; [None] for non-value characters). *)

val vcd_char : Logic.t -> char
val logic_of_vcd_char : char -> Logic.t option

(** Short identifier codes: the standard printable base-94 ['!'..'~']
    counting scheme ([0 -> "!"], [93 -> "~"], [94 -> "!!"], ...).
    Injective over all naturals and never emits an unprintable or
    whitespace character. *)
val id_code : int -> string

(** [create sim paths] starts a dump of the given hierarchical signal
    paths.  @raise Invalid_argument for unresolvable paths. *)
val create : Sim.t -> string list -> t

(** Record the current values; call once per simulated cycle. *)
val sample : t -> unit

val contents : t -> string
val to_file : t -> string -> unit
