(** A reusable process-wide domain pool for the parallel simulation
    engine.

    OCaml 5 caps concurrent domains at ~128, so simulators must never
    spawn domains per handle.  One lazily-created pool grows to the
    largest [jobs] ever requested and is shut down at process exit; any
    number of simulator handles share it (regions are serialized by the
    fork-join protocol itself). *)

(** Hard ceiling on [jobs] — requests above it are clamped. *)
val max_jobs : int

(** [run ~jobs f] runs [f 0] .. [f (jobs - 1)] concurrently ([f 0] on
    the calling domain) and returns when all have finished.  With
    [jobs <= 1], just calls [f 0] inline.  An exception raised by any
    chunk is re-raised after the join; the pool stays usable. *)
val run : jobs:int -> (int -> unit) -> unit
