(** The cross-cycle incremental simulator: {!Sim} under
    [Sim.Incremental] scheduling — after a full first cycle, only the
    cone of changed seeds (pokes differing from the previous cycle,
    registers that latched a new value, RANDOM sources) is re-evaluated,
    in the levelized static order of {!Sched}; a quiescent cycle costs
    zero node visits.  All functions are those of {!Sim}. *)

type t = Sim.t

val create : ?seed:int -> Zeus_sem.Elaborate.design -> t
val step : t -> unit
val step_n : t -> int -> unit
val reset : t -> unit
val poke : t -> string -> Zeus_base.Logic.t list -> unit
val poke_bool : t -> string -> bool -> unit
val poke_int : t -> string -> int -> unit
val peek : t -> string -> Zeus_base.Logic.t list
val peek_bit : t -> string -> Zeus_base.Logic.t
val peek_int : t -> string -> int option
val node_visits : t -> int
val runtime_errors : t -> Sim.runtime_error list
val snapshot : t -> Zeus_base.Logic.t option array
