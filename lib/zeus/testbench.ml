(* A small vector-driven testbench harness over the simulator: poke
   named inputs, clock, and collect expectation failures with readable
   messages.  Used by the examples and available to library users. *)

module Sim = Zeus_sim.Sim
module Logic = Zeus_base.Logic

type failure = {
  cycle : int;
  signal : string;
  expected : string;
  actual : string;
}

type t = {
  sim : Sim.t;
  mutable failures : failure list;
}

let create ?engine ?seed design = { sim = Sim.create ?engine ?seed design; failures = [] }

let sim t = t.sim

(* ------------------------------------------------------------------ *)
(* Driving                                                              *)
(* ------------------------------------------------------------------ *)

let set t path v = Sim.poke_int t.sim path v

let set_lsb t path v = Sim.poke_int_lsb t.sim path v

let set_bool t path v = Sim.poke_bool t.sim path v

let set_bits t path bits = Sim.poke t.sim path bits

let reset t = Sim.reset t.sim

let clock ?(n = 1) t = Sim.step_n t.sim n

(* ------------------------------------------------------------------ *)
(* Expectations                                                         *)
(* ------------------------------------------------------------------ *)

let record t signal expected actual =
  if expected <> actual then
    t.failures <-
      { cycle = Sim.cycle_count t.sim; signal; expected; actual }
      :: t.failures

let bits_to_string bits = String.concat "" (List.map Logic.to_string bits)

let expect_int t path v =
  record t path (string_of_int v)
    (match Sim.peek_int t.sim path with
    | Some got -> string_of_int got
    | None -> bits_to_string (Sim.peek t.sim path))

let expect_int_lsb t path v =
  record t path (string_of_int v)
    (match Sim.peek_int_lsb t.sim path with
    | Some got -> string_of_int got
    | None -> bits_to_string (Sim.peek t.sim path))

let expect_bool t path v =
  record t path
    (Logic.to_string (Logic.of_bool v))
    (Logic.to_string (Sim.peek_bit t.sim path))

let expect_bits t path bits =
  record t path (bits_to_string bits) (bits_to_string (Sim.peek t.sim path))

(* ------------------------------------------------------------------ *)
(* Vector tables                                                        *)
(* ------------------------------------------------------------------ *)

(* [run_table t ~inputs ~outputs rows]: each row is (input values,
   expected output values); applies the inputs, clocks once, checks the
   outputs.  Integer values use the MSB-first BIN convention. *)
let run_table t ~inputs ~outputs rows =
  List.iter
    (fun (ins, outs) ->
      List.iter2 (fun path v -> set t path v) inputs ins;
      clock t;
      List.iter2 (fun path v -> expect_int t path v) outputs outs)
    rows

(* ------------------------------------------------------------------ *)
(* Results                                                              *)
(* ------------------------------------------------------------------ *)

let failures t = List.rev t.failures

let runtime_errors t = Sim.runtime_errors t.sim

let ok t = t.failures = [] && Sim.runtime_errors t.sim = []

let pp_failure ppf f =
  Fmt.pf ppf "cycle %d: %s = %s (expected %s)" f.cycle f.signal f.actual
    f.expected

let report ppf t =
  match (failures t, runtime_errors t) with
  | [], [] -> Fmt.pf ppf "all expectations met@."
  | fs, res ->
      List.iter (fun f -> Fmt.pf ppf "FAIL %a@." pp_failure f) fs;
      List.iter
        (fun (e : Sim.runtime_error) ->
          Fmt.pf ppf "RUNTIME (cycle %d) [%s] %s: %s@." e.Sim.err_cycle
            e.Sim.err_code e.Sim.err_net e.Sim.err_message)
        res
