(* Zeus: the public umbrella API.

   {[
     let design = Zeus.compile_exn (Zeus.Corpus.adder_n 8) in
     let sim = Zeus.Sim.create design in
     Zeus.Sim.poke_int sim "adder.a" 17;
     Zeus.Sim.poke_int sim "adder.b" 25;
     Zeus.Sim.poke_bool sim "adder.cin" false;
     Zeus.Sim.step sim;
     assert (Zeus.Sim.peek_int sim "adder.s" = Some 42)
   ]} *)

module Logic = Zeus_base.Logic
module Loc = Zeus_base.Loc
module Diag = Zeus_base.Diag
module Token = Zeus_lang.Token
module Lexer = Zeus_lang.Lexer
module Ast = Zeus_lang.Ast
module Parser = Zeus_lang.Parser
module Pretty = Zeus_lang.Pretty
module Etype = Zeus_sem.Etype
module Cval = Zeus_sem.Cval
module Const_eval = Zeus_sem.Const_eval
module Netlist = Zeus_sem.Netlist
module Elaborate = Zeus_sem.Elaborate
module Check = Zeus_sem.Check
module Stats = Zeus_sem.Stats
module Optimize = Zeus_sem.Optimize
module Absint = Zeus_sem.Absint
module Reduce = Zeus_sem.Reduce
module Lint = Zeus_sem.Lint
module Seqprove = Zeus_sem.Seqprove
module Contract = Zeus_sem.Contract
module Summary = Zeus_sem.Summary
module Layout_ir = Zeus_sem.Layout_ir
module Graph = Zeus_sim.Graph
module Sched = Zeus_sim.Sched
module Sim = Zeus_sim.Sim
module Fixpoint = Zeus_sim.Fixpoint
module Switchlevel = Zeus_sim.Switchlevel
module Incremental = Zeus_sim.Incremental
module Parallel = Zeus_sim.Parallel
module Prand = Zeus_sim.Prand
module Bytecode = Zeus_sim.Bytecode
module Compile = Zeus_sim.Compile
module Vcd = Zeus_sim.Vcd
module Wave = Zeus_sim.Wave
module Explain = Zeus_sim.Explain
module Geom = Zeus_layout.Geom
module Floorplan = Zeus_layout.Floorplan
module Render = Zeus_layout.Render
module Autoplace = Zeus_layout.Autoplace
module Verilog = Zeus_export.Verilog
module Gen = Zeus_gen.Gen_prog
module Oracle = Zeus_gen.Oracle
module Fuzz = Zeus_gen.Fuzz
module Corpus = Corpus
module Refmodel = Refmodel
module Corpus_fsm = Corpus_fsm
module Testbench = Testbench

type design = Elaborate.design

exception Compile_error of Diag.t list

(* Full pipeline: parse, elaborate, run the static checks.  The design is
   returned together with its diagnostics; [Ok] means no errors (there
   may be warnings). *)
let compile (src : string) : (design, Diag.t list) result =
  let bag = Diag.Bag.create () in
  match Parser.program ~bag src with
  | None, _ -> Error (Diag.Bag.errors bag)
  | Some prog, _ ->
      let design = Elaborate.program ~bag prog in
      if Diag.Bag.has_errors bag then Error (Diag.Bag.errors bag)
      else begin
        let ok = Check.run design in
        if ok then Ok design else Error (Diag.Bag.errors bag)
      end

let compile_exn src =
  match compile src with
  | Ok design -> design
  | Error diags -> raise (Compile_error diags)

(* Parse + elaborate without failing on check errors — used by tests
   that examine the diagnostics themselves. *)
let elaborate_with_diags src =
  let bag = Diag.Bag.create () in
  match Parser.program ~bag src with
  | None, _ -> (None, Diag.Bag.all bag)
  | Some prog, _ ->
      let design = Elaborate.program ~bag prog in
      ignore (Check.run design);
      (Some design, Diag.Bag.all bag)

let () =
  Printexc.register_printer (function
    | Compile_error diags ->
        Some
          (Fmt.str "Compile_error:@\n%a"
             Fmt.(list ~sep:(any "@\n") Diag.pp)
             diags)
    | _ -> None)
