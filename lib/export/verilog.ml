(* Structural Verilog backend.

   The emitter works on the compacted class graph ([Graph.t]) in
   levelized schedule order ([Sched.t]), so the output reads top-down
   like the evaluation itself.  Everything here is calibrated against
   sim.ml's semantics, not against what "looks like" the obvious
   Verilog:

   - [finalize_net_core] counts every non-NOINFL produced value and
     forces UNDEF on the second one *even when the values agree*.
     Verilog's native wired resolution would merge agreeing drivers, so
     a multi-producer class gets one wire per producer plus an explicit
     first-non-z resolver that yields x on any second driving value.
   - A KBool class with drives = 0 reads UNDEF where the raw resolution
     is NOINFL; registers latch from the *raw* value (all-z keeps the
     stored value).  Classes where the two differ get a separate
     ...$raw wire.
   - [seed_value] consults pokes first, then CLK (constant 1), RSET
     (constant 0), register state, UNDEF.  Producer-less input classes
     become ports; CLK becomes a constant-1 wire plus a separate
     edge-only clock port; producer-less register outputs read their
     always-block reg.
   - RANDOM nodes become input ports: the stream is a pure function of
     (seed, class, cycle) ([Prand]), so a testbench can replay it. *)

open Zeus_base
open Zeus_sem
module Graph = Zeus_sim.Graph
module Sched = Zeus_sim.Sched
module Sim = Zeus_sim.Sim
module Prand = Zeus_sim.Prand

(* ------------------------------------------------------------------ *)
(* Name mangling                                                        *)
(* ------------------------------------------------------------------ *)

let reserved_words =
  [
    (* Verilog-2001 *)
    "always"; "and"; "assign"; "automatic"; "begin"; "buf"; "bufif0";
    "bufif1"; "case"; "casex"; "casez"; "cell"; "cmos"; "config";
    "deassign"; "default"; "defparam"; "design"; "disable"; "edge";
    "else"; "end"; "endcase"; "endconfig"; "endfunction"; "endgenerate";
    "endmodule"; "endprimitive"; "endspecify"; "endtable"; "endtask";
    "event"; "for"; "force"; "forever"; "fork"; "function"; "generate";
    "genvar"; "highz0"; "highz1"; "if"; "ifnone"; "incdir"; "include";
    "initial"; "inout"; "input"; "instance"; "integer"; "join"; "large";
    "liblist"; "library"; "localparam"; "macromodule"; "medium";
    "module"; "nand"; "negedge"; "nmos"; "nor"; "noshowcancelled";
    "not"; "notif0"; "notif1"; "or"; "output"; "parameter"; "pmos";
    "posedge"; "primitive"; "pull0"; "pull1"; "pulldown"; "pullup";
    "pulsestyle_ondetect"; "pulsestyle_onevent"; "rcmos"; "real";
    "realtime"; "reg"; "release"; "repeat"; "rnmos"; "rpmos"; "rtran";
    "rtranif0"; "rtranif1"; "scalared"; "showcancelled"; "signed";
    "small"; "specify"; "specparam"; "strong0"; "strong1"; "supply0";
    "supply1"; "table"; "task"; "time"; "tran"; "tranif0"; "tranif1";
    "tri"; "tri0"; "tri1"; "triand"; "trior"; "trireg"; "unsigned";
    "use"; "uwire"; "vectored"; "wait"; "wand"; "weak0"; "weak1";
    "while"; "wire"; "wor"; "xnor"; "xor";
    (* common SystemVerilog type keywords, so the output also loads in
       -g2012 tools without escaping surprises *)
    "always_comb"; "always_ff"; "always_latch"; "bit"; "byte"; "enum";
    "int"; "interface"; "logic"; "longint"; "modport"; "packed";
    "shortint"; "struct"; "typedef"; "union";
  ]

let reserved_tbl =
  lazy
    (let h = Hashtbl.create 256 in
     List.iter (fun w -> Hashtbl.replace h w ()) reserved_words;
     h)

let is_reserved w = Hashtbl.mem (Lazy.force reserved_tbl) w

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | '.' -> Buffer.add_string buf "$d"
      | '[' -> Buffer.add_string buf "$b"
      | ']' -> Buffer.add_string buf "$e"
      | '#' -> Buffer.add_string buf "$h"
      | '$' -> Buffer.add_string buf "$$"
      | c -> Buffer.add_string buf (Printf.sprintf "$x%02x" (Char.code c)))
    s;
  Buffer.contents buf

(* The wrapper prefix "v$" never appears in an unwrapped escape result
   (escaping a literal "v$..." yields "v$$...", which is itself wrapped
   below), so mangling stays injective and demangle can strip exactly
   one prefix. *)
let mangle s =
  let base = escape s in
  let wrap =
    base = ""
    || (match base.[0] with '0' .. '9' | '$' -> true | _ -> false)
    || is_reserved base
    || String.starts_with ~prefix:"v$" base
  in
  if wrap then "v$" ^ base else base

let demangle s =
  let body =
    if String.starts_with ~prefix:"v$" s then
      String.sub s 2 (String.length s - 2)
    else s
  in
  let n = String.length body in
  let buf = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let i = ref 0 in
  while !i < n do
    (if body.[!i] = '$' && !i + 1 < n then begin
       (match body.[!i + 1] with
       | '$' -> Buffer.add_char buf '$'; i := !i + 2
       | 'd' -> Buffer.add_char buf '.'; i := !i + 2
       | 'b' -> Buffer.add_char buf '['; i := !i + 2
       | 'e' -> Buffer.add_char buf ']'; i := !i + 2
       | 'h' -> Buffer.add_char buf '#'; i := !i + 2
       | 'x' when !i + 3 < n -> (
           match (hex body.[!i + 2], hex body.[!i + 3]) with
           | Some h, Some l ->
               Buffer.add_char buf (Char.chr ((h * 16) + l));
               i := !i + 4
           | _ ->
               Buffer.add_char buf body.[!i];
               incr i)
       | _ ->
           Buffer.add_char buf body.[!i];
           incr i)
     end
     else begin
       Buffer.add_char buf body.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Export                                                               *)
(* ------------------------------------------------------------------ *)

type dir =
  | Input
  | Output

type port = {
  pdir : dir;
  pname : string;
  ppath : string;
  pclass : int;
}

type t = {
  module_name : string;
  ports : port list;
  net_count : int;
  reg_count : int;
  text : string;
  design : Elaborate.design;
  graph : Graph.t;
  wire_of_class : string array;
  clk_port : string;
  random_ports : (int * string) list;
}

type error =
  | Cyclic
  | Unsupported of string

let error_to_string = function
  | Cyclic ->
      "design has a combinational cycle: no static schedule, cannot be \
       lowered to continuous assignments"
  | Unsupported msg -> "unsupported design: " ^ msg

exception Unsupported_exn of string

let lit = function
  | Logic.Zero -> "1'b0"
  | Logic.One -> "1'b1"
  | Logic.Undef -> "1'bx"
  | Logic.Noinfl -> "1'bz"

let logic_vchar = function
  | Logic.Zero -> '0'
  | Logic.One -> '1'
  | Logic.Undef -> 'x'
  | Logic.Noinfl -> 'z'

let default_module_name (design : Elaborate.design) =
  match design.Elaborate.tops with
  | (name, _) :: _ -> mangle name
  | [] -> "zeus_top"

let export ?module_name (design : Elaborate.design) =
  let g = Graph.build design in
  let sched = Sched.build g in
  if not sched.Sched.acyclic then Error Cyclic
  else
    try
      let n = g.Graph.n_classes in
      let nl = design.Elaborate.netlist in
      let module_name =
        match module_name with
        | Some m -> m
        | None -> default_module_name design
      in
      let producerless c = g.Graph.producer_count.(c) = 0 in
      if not (producerless g.Graph.clk) then
        raise (Unsupported_exn "the predefined CLK net is driven");
      (* input ports: producer-less IN/INOUT pins of root instances
         (plus RSET), named after the first pin net of each class *)
      let top_inputs = Check.top_input_nets design in
      let in_path = Array.make n None in
      let is_input = Array.make n false in
      List.iter
        (fun id ->
          let c = g.Graph.canon.(id) in
          if in_path.(c) = None then
            in_path.(c) <- Some (Netlist.net nl id).Netlist.name;
          if producerless c && c <> g.Graph.clk then is_input.(c) <- true)
        top_inputs;
      Array.iteri
        (fun c inp ->
          if inp && g.Graph.reg_of_out.(c) >= 0 then
            raise
              (Unsupported_exn
                 (Printf.sprintf
                    "input '%s' is aliased to the output of register '%s': \
                     the simulator gives a poke priority over the stored \
                     value dynamically"
                    g.Graph.names.(c)
                    g.Graph.regs.(g.Graph.reg_of_out.(c)).Netlist.rpath)))
        is_input;
      (* output ports: OUT pins of root instances (and driven INOUT
         pins, which the input scan skipped) *)
      let out_path = Array.make n None in
      List.iter
        (fun (i : Netlist.instance) ->
          if not (String.contains i.Netlist.ipath '.') then
            List.iter
              (fun (_, m, nets) ->
                match m with
                | Etype.Out | Etype.Inout ->
                    List.iter
                      (fun id ->
                        let c = g.Graph.canon.(id) in
                        if out_path.(c) = None then
                          out_path.(c) <-
                            Some (Netlist.net nl id).Netlist.name)
                      nets
                | Etype.In -> ())
              i.Netlist.iports)
        (Netlist.instances nl);
      let is_output =
        Array.init n (fun c -> out_path.(c) <> None && not is_input.(c))
      in
      (* class wire names: port classes take their pin path, everything
         else its representative's name.  Representative names are not
         unique across classes (elaboration synthesizes internal nets
         with repeating names), so every name goes through [uniq] —
         ports first, keeping their pin paths stable. *)
      let used = Hashtbl.create (2 * n) in
      let uniq base =
        if not (Hashtbl.mem used base) then begin
          Hashtbl.replace used base ();
          base
        end
        else begin
          let i = ref 0 in
          while Hashtbl.mem used (Printf.sprintf "%s$%d" base !i) do
            incr i
          done;
          let name = Printf.sprintf "%s$%d" base !i in
          Hashtbl.replace used name ();
          name
        end
      in
      let wire = Array.make n "" in
      for c = 0 to n - 1 do
        if is_input.(c) || is_output.(c) then
          wire.(c) <-
            uniq
              (mangle
                 (match if is_input.(c) then in_path.(c) else out_path.(c) with
                 | Some p -> p
                 | None -> g.Graph.names.(c)))
      done;
      for c = 0 to n - 1 do
        if not (is_input.(c) || is_output.(c)) then
          wire.(c) <- uniq (mangle g.Graph.names.(c))
      done;
      let clk_port = uniq "clk" in
      (* RANDOM nodes: one input port per output class (two RANDOM
         nodes on one class draw the same value — and conflict — in the
         simulator, which the resolver below reproduces) *)
      let random_ports = ref [] in
      Array.iter
        (function
          | Graph.Ngate { op = Netlist.Grandom; output; _ } ->
              if not (List.mem_assoc output !random_ports) then
                random_ports :=
                  (output, uniq (Printf.sprintf "rnd$%d" output))
                  :: !random_ports
          | _ -> ())
        g.Graph.nodes;
      let random_ports =
        List.sort (fun (a, _) (b, _) -> compare a b) !random_ports
      in
      let rand_name c = List.assoc c random_ports in
      (* --- z-capability analysis (conservative "may read NOINFL") --- *)
      let exp_z = Array.make n (-1) in
      let rec exposed_can_z c =
        if exp_z.(c) >= 0 then exp_z.(c) = 1
        else begin
          let r =
            if producerless c then is_input.(c) (* ports may be driven z *)
            else
              match g.Graph.class_kind.(c) with
              | Etype.KBool -> false (* booleanized: z reads as x *)
              | Etype.KMux -> raw_can_z c
          in
          exp_z.(c) <- (if r then 1 else 0);
          r
        end
      and raw_can_z c =
        (* the raw resolution is z only when every producer released *)
        let all = ref true in
        Graph.iter_producers g c (fun nid ->
            if not (node_can_z nid) then all := false);
        !all
      and node_can_z nid =
        match g.Graph.nodes.(nid) with
        | Graph.Ngate _ -> false (* gates booleanize: 0/1/x only *)
        | Graph.Ndriver { guard = Some _; _ } -> true
        | Graph.Ndriver { guard = None; source; _ } -> src_can_z source
      and src_can_z = function
        | Netlist.Sconst v -> Logic.equal v Logic.Noinfl
        | Netlist.Snet c -> exposed_can_z c
      in
      (* --- expressions (graph [Snet] ids are class ids) --- *)
      let src_e = function
        | Netlist.Sconst v -> lit v
        | Netlist.Snet c -> wire.(c)
      in
      let bz e = Printf.sprintf "((%s === 1'bz) ? 1'bx : %s)" e e in
      let gate_expr op (inputs : Netlist.src array) =
        let ins = Array.to_list inputs in
        let join sep =
          "(" ^ String.concat sep (List.map src_e ins) ^ ")"
        in
        match (op, ins) with
        | Netlist.Grandom, _ -> assert false (* handled by node_expr *)
        | _, [] -> (
            match op with
            | Netlist.Gequal -> "1'b1" (* empty fold base *)
            | _ ->
                raise
                  (Unsupported_exn
                     (Netlist.gate_op_to_string op ^ " gate with no inputs")))
        | Netlist.Gnot, [ s ] -> "(~" ^ src_e s ^ ")"
        | Netlist.Gnot, _ ->
            raise (Unsupported_exn "NOT gate with several inputs")
        | (Netlist.Gand | Netlist.Gor | Netlist.Gxor), [ s ] ->
            (* n-ary gates booleanize a lone operand (z reads as x);
               Verilog has no unary pass-through that does, so spell it *)
            if src_can_z s then bz (src_e s) else src_e s
        | (Netlist.Gnand | Netlist.Gnor), [ s ] -> "(~" ^ src_e s ^ ")"
        | Netlist.Gand, _ -> join " & "
        | Netlist.Gor, _ -> join " | "
        | Netlist.Gxor, _ -> join " ^ "
        | Netlist.Gnand, _ -> "(~" ^ join " & " ^ ")"
        | Netlist.Gnor, _ -> "(~" ^ join " | " ^ ")"
        | Netlist.Gequal, ins ->
            (* EQUAL concatenates the two operands' bit lists: AND of
               per-bit XNOR over the two halves *)
            let k = List.length ins in
            if k mod 2 <> 0 then
              raise (Unsupported_exn "EQUAL gate with odd input count");
            let arr = Array.of_list ins in
            let half = k / 2 in
            let pairs =
              List.init half (fun i ->
                  Printf.sprintf "(%s ~^ %s)" (src_e arr.(i))
                    (src_e arr.(i + half)))
            in
            if half = 1 then List.hd pairs
            else "(" ^ String.concat " & " pairs ^ ")"
      in
      let driver_expr guard source =
        let s = src_e source in
        match guard with
        | None -> s
        | Some (Netlist.Sconst v) -> (
            (* guards go through the implicit amplifier *)
            match Logic.booleanize v with
            | Logic.One -> s
            | Logic.Zero -> "1'bz"
            | _ -> "1'bx")
        | Some gs ->
            let ge = src_e gs in
            (* an undefined (x or z) guard *drives* UNDEF — it does not
               release the net, so the plain [g ? s : 1'bz] idiom would
               diverge from the simulator on every undefined guard *)
            Printf.sprintf
              "((%s === 1'b1) ? %s : (%s === 1'b0) ? 1'bz : 1'bx)" ge s ge
      in
      let node_expr nid =
        match g.Graph.nodes.(nid) with
        | Graph.Ngate { op = Netlist.Grandom; output; _ } -> rand_name output
        | Graph.Ngate { op; inputs; _ } -> gate_expr op inputs
        | Graph.Ndriver { guard; source; _ } -> driver_expr guard source
      in
      (* first non-z wins; any second non-z forces x — exactly
         [Logic.resolve], which conflicts even on agreeing values *)
      let resolver pws =
        let k = Array.length pws in
        let rec others j v =
          if j >= k then v
          else
            Printf.sprintf "((%s === 1'bz) ? %s : 1'bx)" pws.(j)
              (others (j + 1) v)
        in
        let rec first i =
          if i = k - 1 then pws.(i)
          else
            Printf.sprintf "((%s === 1'bz) ? %s : %s)" pws.(i)
              (first (i + 1))
              (others (i + 1) pws.(i))
        in
        first 0
      in
      (* --- emission --- *)
      let decls = Buffer.create 1024 in
      let body = Buffer.create 4096 in
      let regs_buf = Buffer.create 1024 in
      let wire_decls = ref 0 in
      let decl_wire name =
        incr wire_decls;
        Buffer.add_string decls (Printf.sprintf "  wire %s;\n" name)
      in
      let assign name e =
        Buffer.add_string body (Printf.sprintf "  assign %s = %s;\n" name e)
      in
      (* register always-blocks need the *raw* resolution of their
         input class; raw_wire.(c) names the wire that carries it *)
      let raw_wire = Array.copy wire in
      let qname =
        Array.map
          (fun (r : Netlist.reg) -> uniq (mangle r.Netlist.rpath))
          g.Graph.regs
      in
      (* one wire per class, minus the ports (port decls declare nets) *)
      Array.iteri
        (fun c w ->
          if not (is_input.(c) || is_output.(c)) then decl_wire w)
        wire;
      for l = 0 to sched.Sched.max_level do
        Array.iter
          (fun c ->
            if is_input.(c) then ()
            else if c = g.Graph.clk then
              (* the CLK *value* is the constant 1 of [seed_value]; the
                 latch edge is the separate clk port *)
              assign wire.(c) "1'b1"
            else if producerless c then begin
              let r = g.Graph.reg_of_out.(c) in
              if r >= 0 then assign wire.(c) qname.(r)
              else assign wire.(c) "1'bx"
            end
            else begin
              let producers = ref [] in
              Graph.iter_producers g c (fun nid ->
                  producers := nid :: !producers);
              let producers = Array.of_list (List.rev !producers) in
              let k = Array.length producers in
              let kind = g.Graph.class_kind.(c) in
              let latches = g.Graph.regs_of_in.(c) <> [] in
              if k = 1 then begin
                let e = node_expr producers.(0) in
                let can_z = node_can_z producers.(0) in
                match kind with
                | Etype.KMux -> assign wire.(c) e
                | Etype.KBool ->
                    if can_z then begin
                      (* exposed value booleanizes (z -> x), but the
                         register latch keys off the raw value *)
                      let rw = uniq (wire.(c) ^ "$raw") in
                      decl_wire rw;
                      raw_wire.(c) <- rw;
                      assign rw e;
                      assign wire.(c) (bz rw)
                    end
                    else begin
                      ignore latches;
                      assign wire.(c) e
                    end
              end
              else begin
                let pws =
                  Array.mapi
                    (fun i nid ->
                      let pw = uniq (Printf.sprintf "%s$p%d" wire.(c) i) in
                      decl_wire pw;
                      assign pw (node_expr nid);
                      pw)
                    producers
                in
                let r = resolver pws in
                match kind with
                | Etype.KMux -> assign wire.(c) r
                | Etype.KBool ->
                    if raw_can_z c then begin
                      let rw = uniq (wire.(c) ^ "$raw") in
                      decl_wire rw;
                      raw_wire.(c) <- rw;
                      assign rw r;
                      assign wire.(c) (bz rw)
                    end
                    else assign wire.(c) r
              end
            end)
          sched.Sched.nets_at.(l)
      done;
      (* registers: latch at the clock edge iff the raw input resolution
         is not z (all-NOINFL keeps the stored value, section 5.1);
         power-up is Verilog's default x unless REG(c) gave a value *)
      Array.iteri
        (fun i (r : Netlist.reg) ->
          let ci = g.Graph.reg_in.(i) in
          let src = raw_wire.(ci) in
          Buffer.add_string regs_buf (Printf.sprintf "  reg %s;\n" qname.(i));
          (match r.Netlist.rinit with
          | Logic.Zero | Logic.One ->
              Buffer.add_string regs_buf
                (Printf.sprintf "  initial %s = %s;\n" qname.(i)
                   (lit r.Netlist.rinit))
          | _ -> ());
          Buffer.add_string regs_buf
            (Printf.sprintf
               "  always @(posedge %s)\n    if (%s !== 1'bz) %s <= %s;\n"
               clk_port src qname.(i) src))
        g.Graph.regs;
      (* --- assemble --- *)
      let input_ports =
        List.filter_map
          (fun c ->
            if is_input.(c) then
              Some
                {
                  pdir = Input;
                  pname = wire.(c);
                  ppath =
                    (match in_path.(c) with
                    | Some p -> p
                    | None -> g.Graph.names.(c));
                  pclass = c;
                }
            else None)
          (List.init n Fun.id)
      in
      let rports =
        List.map
          (fun (c, name) ->
            {
              pdir = Input;
              pname = name;
              ppath = g.Graph.names.(c);
              pclass = c;
            })
          random_ports
      in
      let output_ports =
        List.filter_map
          (fun c ->
            if is_output.(c) then
              Some
                {
                  pdir = Output;
                  pname = wire.(c);
                  ppath =
                    (match out_path.(c) with
                    | Some p -> p
                    | None -> g.Graph.names.(c));
                  pclass = c;
                }
            else None)
          (List.init n Fun.id)
      in
      let ports =
        { pdir = Input; pname = clk_port; ppath = "CLK"; pclass = -1 }
        :: input_ports
        @ rports @ output_ports
      in
      let buf = Buffer.create (Buffer.length body + 2048) in
      Buffer.add_string buf
        (Printf.sprintf
           "// %s: structural Verilog export of a Zeus design (zeusc \
            export --verilog)\n\
            // Four-valued nets: Zeus UNDEF is x, NOINFL is z.  Drive \
            RSET low, toggle %s;\n\
            // registers latch on posedge and power up at x unless \
            REG(c) gave a value.\n"
           module_name clk_port);
      Buffer.add_string buf
        (Printf.sprintf "module %s (%s);\n" module_name
           (String.concat ", " (List.map (fun p -> p.pname) ports)));
      List.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf "  %s %s;%s\n"
               (match p.pdir with Input -> "input" | Output -> "output")
               p.pname
               (if p.pclass = -1 then
                  " // latch edge only: the Zeus CLK value is the \
                   constant-1 wire"
                else if List.mem_assoc p.pclass random_ports then
                  Printf.sprintf " // RANDOM stream of '%s'" p.ppath
                else "")))
        ports;
      Buffer.add_buffer buf decls;
      Buffer.add_buffer buf body;
      Buffer.add_buffer buf regs_buf;
      Buffer.add_string buf "endmodule\n";
      Ok
        {
          module_name;
          ports;
          net_count = List.length ports + !wire_decls;
          reg_count = Array.length g.Graph.regs;
          text = Buffer.contents buf;
          design;
          graph = g;
          wire_of_class = wire;
          clk_port;
          random_ports;
        }
    with Unsupported_exn msg -> Error (Unsupported msg)

(* ------------------------------------------------------------------ *)
(* Self-checking testbench                                              *)
(* ------------------------------------------------------------------ *)

type deck = (string * Logic.t) list list

let random_deck ?(seed = 0x5eed) ~cycles t =
  let inputs =
    List.filter
      (fun p ->
        p.pdir = Input && p.pclass >= 0
        && not (List.mem_assoc p.pclass t.random_ports))
      t.ports
  in
  List.init cycles (fun cycle ->
      List.map
        (fun p ->
          let bits = Prand.bits64 ~seed ~net:p.pclass ~cycle in
          let v =
            if Int64.equal (Int64.logand (Int64.shift_right_logical bits 1) 1L) 1L
            then Logic.One
            else Logic.Zero
          in
          (p.ppath, v))
        inputs)

let testbench ?(seed = 0x5eed) ?(tb_name = "zeus_tb") t (deck : deck) =
  let g = t.graph in
  let n = g.Graph.n_classes in
  let tb_name = if tb_name = t.module_name then tb_name ^ "$t" else tb_name in
  (* map each poke to the input port that carries it; pokes to driven
     classes are ignored exactly as [seed_value] ignores them *)
  let port_of_class = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if p.pdir = Input && p.pclass >= 0 then
        Hashtbl.replace port_of_class p.pclass p.pname)
    t.ports;
  let exception Bad of string in
  try
    let resolved_deck =
      List.map
        (fun pokes ->
          List.filter_map
            (fun (path, v) ->
              match Elaborate.resolve_path t.design path with
              | Error msg ->
                  raise (Bad (Printf.sprintf "poke '%s': %s" path msg))
              | Ok [ id ] ->
                  let c = g.Graph.canon.(id) in
                  if c = g.Graph.clk then
                    raise
                      (Bad
                         (Printf.sprintf
                            "poke '%s' targets the predefined CLK net" path))
                  else if g.Graph.producer_count.(c) > 0 then
                    None (* driven: the simulator ignores the poke *)
                  else (
                    match Hashtbl.find_opt port_of_class c with
                    | Some port -> Some (path, port, v)
                    | None ->
                        raise
                          (Bad
                             (Printf.sprintf
                                "poke '%s' targets an undriven net that is \
                                 not an exported input port"
                                path)))
              | Ok _ ->
                  raise
                    (Bad
                       (Printf.sprintf "poke '%s' is not a single net" path)))
            pokes)
        deck
    in
    (* the reference run: the incremental engine, poked by path exactly
       like the oracle's serial reference *)
    let sim = Sim.create ~engine:Sim.Incremental ~seed t.design in
    let expected =
      List.map
        (fun pokes ->
          List.iter (fun (path, _, v) -> Sim.poke sim path [ v ]) pokes;
          Sim.step sim;
          let snap = Sim.snapshot sim in
          String.init n (fun i ->
              (* literal bit order: MSB first is class n-1 *)
              let c = n - 1 - i in
              match snap.(g.Graph.rep.(c)) with
              | Some v -> logic_vchar v
              | None -> 'x'))
        resolved_deck
    in
    let buf = Buffer.create 8192 in
    let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    pf "`timescale 1ns/1ns\n";
    pf "// Self-checking bench: replays a %d-cycle Zeus stimulus deck and\n"
      (List.length deck);
    pf "// compares every class wire against the incremental engine's\n";
    pf "// snapshot (seed %d) before each latch edge.\n" seed;
    pf "module %s;\n" tb_name;
    pf "  reg %s;\n" t.clk_port;
    let tb_inputs =
      List.filter (fun p -> p.pdir = Input && p.pclass >= 0) t.ports
    in
    List.iter (fun p -> pf "  reg %s;\n" p.pname) tb_inputs;
    pf "  %s dut(%s);\n" t.module_name
      (String.concat ", "
         (List.map
            (fun p ->
              match p.pdir with
              | Input -> Printf.sprintf ".%s(%s)" p.pname p.pname
              | Output -> Printf.sprintf ".%s()" p.pname)
            t.ports));
    (* one vector over every class wire, via hierarchical references *)
    pf "  wire [%d:0] zeus$vec = {" (n - 1);
    for i = 0 to n - 1 do
      let c = n - 1 - i in
      if i > 0 then pf ",";
      if i mod 6 = 0 then pf "\n     " else pf " ";
      pf "dut.%s" t.wire_of_class.(c)
    done;
    pf " };\n";
    pf "  reg [%d:0] zeus$exp;\n" (n - 1);
    pf "  integer zeus$i;\n";
    let name_w =
      Array.fold_left (fun m w -> max m (String.length w)) 1 t.wire_of_class
    in
    pf "  reg [8*%d:1] zeus$name [0:%d];\n" name_w (n - 1);
    pf "  initial begin\n";
    Array.iteri (fun c w -> pf "    zeus$name[%d] = \"%s\";\n" c w)
      t.wire_of_class;
    pf "  end\n";
    pf "  task zeus$check(input integer cycle);\n";
    pf "    begin\n";
    pf "      if (zeus$vec !== zeus$exp) begin\n";
    pf "        for (zeus$i = 0; zeus$i < %d; zeus$i = zeus$i + 1)\n" n;
    pf "          if (zeus$vec[zeus$i] !== zeus$exp[zeus$i])\n";
    pf
      "            $display(\"MISMATCH cycle %%0d class %%0d %%0s: \
       zeus=%%b verilog=%%b\",\n\
      \                     cycle, zeus$i, zeus$name[zeus$i], \
       zeus$exp[zeus$i], zeus$vec[zeus$i]);\n";
    pf "        $fatal(2, \"zeus/verilog divergence at cycle %%0d\", cycle);\n";
    pf "      end\n";
    pf "    end\n";
    pf "  endtask\n";
    pf "  initial begin\n";
    pf "    %s = 1'b0;\n" t.clk_port;
    (* power-up input values: unpoked inputs read UNDEF, RSET reads 0 *)
    List.iter
      (fun p ->
        pf "    %s = %s;\n" p.pname
          (if p.pclass = g.Graph.rset then "1'b0" else "1'bx"))
      tb_inputs;
    List.iteri
      (fun i pokes ->
        pf "    // cycle %d\n" (i + 1);
        List.iter
          (fun (_, port, v) -> pf "    %s = %s;\n" port (lit v))
          pokes;
        List.iter
          (fun (c, name) ->
            pf "    %s = %s;\n" name
              (lit (Logic.of_bool (Prand.bool ~seed ~net:c ~cycle:i))))
          t.random_ports;
        pf "    #1;\n";
        pf "    zeus$exp = %d'b%s;\n" n (List.nth expected i);
        pf "    zeus$check(%d);\n" (i + 1);
        pf "    %s = 1'b1; #1; %s = 1'b0; #1;\n" t.clk_port t.clk_port)
      resolved_deck;
    pf "    $display(\"ZEUS_TB_OK\");\n";
    pf "    $finish;\n";
    pf "  end\n";
    pf "endmodule\n";
    Ok (Buffer.contents buf)
  with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Minimal structural reader (round-trip property)                      *)
(* ------------------------------------------------------------------ *)

type vmodule = {
  vm_name : string;
  vm_ports : (dir * string) list;
  vm_nets : int;
}

type token =
  | Tid of string
  | Tsym of char

let tokenize text =
  let n = String.length text in
  let toks = ref [] in
  let i = ref 0 in
  let is_id_start c =
    match c with 'A' .. 'Z' | 'a' .. 'z' | '_' | '$' -> true | _ -> false
  in
  let is_id c =
    match c with
    | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '$' -> true
    | _ -> false
  in
  while !i < n do
    let c = text.[!i] in
    if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      i := !i + 2;
      while
        !i + 1 < n && not (text.[!i] = '*' && text.[!i + 1] = '/')
      do
        incr i
      done;
      i := min n (!i + 2)
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '\\' then begin
      (* escaped identifier: up to the next whitespace *)
      incr i;
      let start = !i in
      while
        !i < n
        && not
             (text.[!i] = ' ' || text.[!i] = '\t' || text.[!i] = '\n'
            || text.[!i] = '\r')
      do
        incr i
      done;
      toks := Tid (String.sub text start (!i - start)) :: !toks
    end
    else if is_id_start c then begin
      let start = !i in
      while !i < n && is_id text.[!i] do incr i done;
      toks := Tid (String.sub text start (!i - start)) :: !toks
    end
    else if c >= '0' && c <= '9' then begin
      (* sized literals like 1'bz read as one ignorable token *)
      while
        !i < n
        &&
        match text.[!i] with
        | '0' .. '9' | '\'' | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
        | _ -> false
      do
        incr i
      done
    end
    else if c = '"' then begin
      incr i;
      while !i < n && text.[!i] <> '"' do incr i done;
      incr i
    end
    else begin
      toks := Tsym c :: !toks;
      incr i
    end
  done;
  List.rev !toks

let parse_module text =
  let toks = tokenize text in
  (* find the module header *)
  let rec find_module = function
    | Tid "module" :: Tid name :: rest -> Ok (name, rest)
    | _ :: rest -> find_module rest
    | [] -> Error "no module header found"
  in
  match find_module toks with
  | Error e -> Error e
  | Ok (name, rest) -> (
      let rec header acc = function
        | Tsym ')' :: Tsym ';' :: rest -> Ok (List.rev acc, rest)
        | Tid p :: rest -> header (p :: acc) rest
        | Tsym ('(' | ',') :: rest -> header acc rest
        | Tsym ';' :: rest -> Ok (List.rev acc, rest) (* portless module *)
        | _ -> Error "unparsable module header"
      in
      match header [] rest with
      | Error e -> Error e
      | Ok (port_names, rest) ->
          let dirs = Hashtbl.create 16 in
          let nets = ref 0 in
          (* declaration statement: optional range, then a comma list of
             identifiers; '=' (net decl assignment) skips to ';' *)
          let rec decl kind toks =
            match toks with
            | Tsym '[' :: rest ->
                let rec skip = function
                  | Tsym ']' :: rest -> rest
                  | _ :: rest -> skip rest
                  | [] -> []
                in
                decl kind (skip rest)
            | Tid id :: rest ->
                incr nets;
                (match kind with
                | Some d -> Hashtbl.replace dirs id d
                | None -> ());
                ids kind rest
            | rest -> rest
          and ids kind = function
            | Tsym ',' :: rest -> decl kind rest
            | Tsym ';' :: rest -> rest
            | Tsym '=' :: rest ->
                let rec skip = function
                  | Tsym ';' :: rest -> rest
                  | _ :: rest -> skip rest
                  | [] -> []
                in
                skip rest
            | _ :: rest -> ids kind rest
            | [] -> []
          in
          let rec scan = function
            | Tid "endmodule" :: _ | [] -> ()
            | Tid "input" :: rest -> scan (decl (Some Input) rest)
            | Tid "output" :: rest -> scan (decl (Some Output) rest)
            | Tid "wire" :: rest -> scan (decl None rest)
            | _ :: rest -> scan rest
          in
          scan rest;
          let missing = ref None in
          let ports =
            List.map
              (fun p ->
                match Hashtbl.find_opt dirs p with
                | Some d -> (d, p)
                | None ->
                    if !missing = None then missing := Some p;
                    (Input, p))
              port_names
          in
          (match !missing with
          | Some p ->
              Error (Printf.sprintf "port '%s' has no direction declaration" p)
          | None -> Ok { vm_name = name; vm_ports = ports; vm_nets = !nets }))
