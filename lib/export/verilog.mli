(** Structural Verilog backend: the compacted class graph lowered to
    synthesizable Verilog-2001, plus the self-checking testbench and
    the minimal structural reader of the round-trip property.

    The lowering is semantics-exact against the simulator, not merely
    shape-preserving:

    - the four Zeus values map onto Verilog's [0]/[1]/[x]/[z]
      ([Undef] is [x], [Noinfl] is [z]);
    - gates become bitwise expressions (Verilog bitwise operators treat
      [z] operands as [x], which is exactly the implicit amplifier);
    - a guarded driver becomes the three-way conditional
      [(g === 1'b1) ? src : (g === 1'b0) ? 1'bz : 1'bx] — an undefined
      guard {e drives} UNDEF, it does not release the net;
    - a class with two or more producers gets one wire per producer and
      an explicit first-non-z resolver that forces [x] on a second
      driving value {e even when the values agree} — Zeus's burning-
      transistors rule, deliberately not Verilog's native wired logic
      (which resolves agreeing drivers to their common value);
    - registers are clocked always-blocks that latch only when the
      resolved {e raw} input is not [z] (all-NOINFL keeps the stored
      value, section 5.1) and power up at [x] unless [REG(c)] gave an
      initial value;
    - every RANDOM node becomes an extra input port (the stream is a
      pure function of (seed, class, cycle), so the testbench replays
      it exactly);
    - net names are an invertible mangling of Zeus hierarchical paths
      ({!mangle}/{!demangle}) that escapes Verilog reserved words.

    Designs with combinational cycles (legal Zeus, e.g. the blackjack
    machine) have no static schedule and are rejected with {!Cyclic}. *)

open Zeus_base
open Zeus_sem

(** {1 Name mangling} *)

val reserved_words : string list
(** The Verilog-2001 keywords (plus the common SystemVerilog type
    keywords), all of which {!mangle} escapes. *)

val is_reserved : string -> bool

val mangle : string -> string
(** Injective encoding of a Zeus hierarchical path as a plain Verilog
    identifier: word characters pass through; ['.'] ['['] [']'] ['#']
    ['$'] become ["$d"] ["$b"] ["$e"] ["$h"] ["$$"]; anything else
    becomes ["$xHH"].  Results that are reserved, empty, start with a
    digit or a ['$'], or collide with the wrapper prefix are wrapped as
    ["v$"^base]. *)

val demangle : string -> string
(** Left inverse of {!mangle}: [demangle (mangle s) = s]. *)

(** {1 Export} *)

type dir =
  | Input
  | Output

type port = {
  pdir : dir;
  pname : string;  (** mangled Verilog identifier *)
  ppath : string;  (** the Zeus hierarchical path it came from *)
  pclass : int;  (** class id; [-1] for the synthetic clock port *)
}

type t = {
  module_name : string;
  ports : port list;  (** header order: clock, inputs, RANDOM, outputs *)
  net_count : int;  (** scalar nets declared: ports + wires *)
  reg_count : int;
  text : string;  (** the emitted module *)
  design : Elaborate.design;
  graph : Zeus_sim.Graph.t;
  wire_of_class : string array;  (** class id -> wire/port identifier *)
  clk_port : string;
  random_ports : (int * string) list;  (** RANDOM class -> port name *)
}

type error =
  | Cyclic  (** no static schedule: combinational-cycle designs fall
                back to relaxation in the simulator and cannot be
                lowered to continuous assigns *)
  | Unsupported of string

val error_to_string : error -> string

val export : ?module_name:string -> Elaborate.design -> (t, error) result
(** Lower an elaborated design.  [module_name] defaults to the mangled
    name of the first top-level signal (or ["zeus_top"]). *)

(** {1 Self-checking testbench} *)

type deck = (string * Logic.t) list list
(** Per cycle: pokes applied before the step — the same shape as a
    fuzzer stimulus.  Paths resolve through
    {!Elaborate.resolve_path}; a poke whose class is driven inside the
    design is ignored (as the simulator ignores it), a poke to an
    undriven class that is not an exported input port is an error. *)

val random_deck : ?seed:int -> cycles:int -> t -> deck
(** A deterministic pseudo-random deck over the module's input ports
    (including RSET), defined values only. *)

val testbench : ?seed:int -> ?tb_name:string -> t -> deck -> (string, string) result
(** Emit a self-checking bench module (to be concatenated after
    [t.text]).  The bench replays the deck against an internal run of
    the {e incremental} engine (RANDOM seeded with [seed], default the
    simulator's default): every cycle it drives the ports, waits for
    the combinational fabric to settle, compares every class wire
    against the engine's snapshot with [===], prints one MISMATCH line
    per differing net and [$fatal]s; on full agreement it prints
    [ZEUS_TB_OK].  Checks happen before the clock edge, matching the
    simulator's snapshot-before-latch timing. *)

(** {1 Minimal structural reader}

    Enough Verilog to parse the emitter's own output back (and any
    plain structural netlist using non-ANSI headers): the round-trip
    property needs no external tools. *)

type vmodule = {
  vm_name : string;
  vm_ports : (dir * string) list;  (** header order, directions from
                                       the [input]/[output] decls *)
  vm_nets : int;  (** declared [input]/[output]/[wire] identifiers *)
}

val parse_module : string -> (vmodule, string) result
