(** The [zeusc fuzz] driver: deterministic differential fuzzing with
    greedy IR-level shrinking.

    Case [i] of a run with base seed [s] is generated from
    [Random.State.make [| 0x5eed; s; i |]], so any failure replays from
    the (seed, index) pair alone — both are embedded in the repro file
    header. *)

type failure = {
  seed : int;
  index : int;
  divergence : Oracle.divergence;
  prog : Gen_prog.prog;  (** already shrunk *)
  stim : Gen_prog.stimulus;
  zeus_file : string option;  (** repro path, when a corpus dir was given *)
}

type summary = {
  tested : int;
  failures : failure list;
}

val gen_case :
  profile:Gen_prog.profile -> seed:int -> index:int ->
  Gen_prog.prog * Gen_prog.stimulus

val first_divergence :
  ?jobs:int -> Gen_prog.prog * Gen_prog.stimulus -> Oracle.divergence option
(** First row of {!Oracle.check} to fail, if any.  [jobs] is threaded
    to the oracle; batch workers pass [~jobs:1] (pool regions do not
    nest). *)

val shrink :
  budget:int ->
  oracle:string ->
  (Gen_prog.prog * Gen_prog.stimulus) * Oracle.divergence ->
  (Gen_prog.prog * Gen_prog.stimulus) * Oracle.divergence
(** Greedy loop over {!Gen_prog.shrink_steps}: keep any one-step
    reduction that still fails the same oracle row; [budget] bounds the
    total number of oracle evaluations. *)

val run :
  ?profile:Gen_prog.profile ->
  ?shrink_budget:int ->
  ?log:(string -> unit) ->
  ?batch:bool ->
  ?jobs:int ->
  count:int ->
  seed:int ->
  corpus_dir:string option ->
  unit ->
  summary
(** Run [count] cases; shrink each failure and, when [corpus_dir] is
    given, write [repro_<seed>_<index>.zeus] (divergence + replay
    instructions in the header comment) and a matching [.pokes] file.

    [batch] (default [false]) shards the detection phase across [jobs]
    (default 4) domains of the process-wide pool — contiguous index
    slices, single-domain oracles inside each worker.  Shrinking and
    repro writing happen serially after the join, in index order, so
    the summary and corpus files are byte-identical to a serial run. *)
