(** The [zeusc fuzz] driver: deterministic differential fuzzing with
    greedy IR-level shrinking.

    Case [i] of a run with base seed [s] is generated from
    [Random.State.make [| 0x5eed; s; i |]], so any failure replays from
    the (seed, index) pair alone — both are embedded in the repro file
    header. *)

type failure = {
  seed : int;
  index : int;
  divergence : Oracle.divergence;
  prog : Gen_prog.prog;  (** already shrunk *)
  stim : Gen_prog.stimulus;
  zeus_file : string option;  (** repro path, when a corpus dir was given *)
}

type summary = {
  tested : int;
  failures : failure list;
}

val gen_case :
  profile:Gen_prog.profile -> seed:int -> index:int ->
  Gen_prog.prog * Gen_prog.stimulus

val first_divergence :
  Gen_prog.prog * Gen_prog.stimulus -> Oracle.divergence option

val shrink :
  budget:int ->
  oracle:string ->
  (Gen_prog.prog * Gen_prog.stimulus) * Oracle.divergence ->
  (Gen_prog.prog * Gen_prog.stimulus) * Oracle.divergence
(** Greedy loop over {!Gen_prog.shrink_steps}: keep any one-step
    reduction that still fails the same oracle row; [budget] bounds the
    total number of oracle evaluations. *)

val run :
  ?profile:Gen_prog.profile ->
  ?shrink_budget:int ->
  ?log:(string -> unit) ->
  count:int ->
  seed:int ->
  corpus_dir:string option ->
  unit ->
  summary
(** Run [count] cases; shrink each failure and, when [corpus_dir] is
    given, write [repro_<seed>_<index>.zeus] (divergence + replay
    instructions in the header comment) and a matching [.pokes] file. *)
