(** Full-language random Zeus program generator with IR-level
    shrinking.

    Programs are generated as a typed IR and rendered to concrete Zeus
    source, covering — by construction legally — boolean wires, guarded
    multiplex drivers that deliberately straddle the lint prover's
    safe/conflict/needs-runtime-check classes, registers (with forward
    references through [r.out]), FOR-replicated arrays, nested
    subcomponent instances, function-component calls, and a
    parameterized recursive component with WHEN/OTHERWISE.

    Combinational programs additionally have a direct reference
    evaluator ({!eval_comb}) that never touches the compilation
    pipeline — the independent oracle of the original fuzzer.  The rest
    is checked differentially by {!Oracle}. *)

open Zeus_base

type gate =
  | Gand
  | Gor
  | Gnand
  | Gnor
  | Gxor
  | Gequal
  | Gnot

type bexp =
  | Ref of string  (** readable signal path relative to the top body *)
  | Lit of bool
  | Gate of gate * bexp list
  | Call of bexp * bexp  (** [fzfn(a,b)], a function component (XOR) *)

(** How a multiplex net's two drivers are guarded — the three lint
    verdict classes, deliberately. *)
type mux_style =
  | If_else  (** [IF g THEN m := a ELSE m := b END] — provably safe *)
  | Complement  (** two IFs with guards [g] and [NOT g] — provably safe *)
  | Overlap  (** two independent guards — conflict / runtime check *)

type item =
  | Wire of { name : string; exp : bexp }
  | Mux of {
      name : string;
      style : mux_style;
      g1 : bexp;
      g2 : bexp;  (** ignored unless [style = Overlap] *)
      a : bexp;
      b : bexp;
    }
  | Reg of { name : string; guard : bexp option; next : bexp }
  | Arr of { name : string; len : int; init : bexp; step : gate; extra : bexp }
  | Inst of { name : string; a : bexp; b : bexp }
  | Chain of { name : string; depth : int; input : bexp }
  | Tog of { name : string; init : bool; a : bexp; b : bexp }
      (** an initialized register multiplexed by its own state — the
          flow-insensitive lint demotes it to needs-runtime-check, the
          bounded sequential prover upgrades it to safe-sequential *)
  | Rchain of { name : string; len : int; input : bexp }
      (** reset-dependent register chain: head initialized under RSET,
          tail shifts — definedness is sequential in origin *)

type prog = {
  n_in : int;
  items : item list;
  outs : string list;  (** observed readables, wired to OUT ports *)
}

(** {1 Structure} *)

val input_names : prog -> string list
(** [x0; x1; ...] *)

val poke_paths : prog -> string list
(** Hierarchical testbench paths of the inputs: ["s.x0"; ...]. *)

val out_ports : prog -> (string * string) list
(** OUT port name -> observed readable, in declaration order (includes
    the automatic ports closing otherwise-unused instance outputs). *)

val item_readables : item -> string list

(** {1 Rendering and direct evaluation} *)

val to_zeus : prog -> string
(** Concrete Zeus source; always a legal program. *)

val is_combinational : prog -> bool

val eval_comb : prog -> Logic.t array -> (string * Logic.t) list
(** Direct four-valued evaluation of a combinational program: OUT port
    name -> value.  @raise Invalid_argument on sequential programs. *)

(** {1 Stimulus} *)

type stimulus = (string * Logic.t) list list
(** Per cycle: pokes applied before the step.  Unpoked inputs keep
    their previous value; UNDEF is part of the alphabet; RSET may be
    poked like any input. *)

val stimulus_to_string : stimulus -> string

(** {1 Generators} *)

type profile = {
  seq : bool;
  mux : bool;
  inst : bool;
  call : bool;
  rset : bool;
  undef : bool;
}

val full : profile
val comb : profile
(** Only directly-evaluable programs ({!eval_comb} works). *)

val gen : ?profile:profile -> unit -> prog QCheck.Gen.t
val gen_stimulus : ?profile:profile -> ?max_cycles:int -> prog -> stimulus QCheck.Gen.t

(** {1 Shrinking} *)

val shrink_steps : prog * stimulus -> (prog * stimulus) list
(** All one-step reductions of a failing case, most aggressive first:
    dropped stimulus cycles, removed items (dangling references are
    patched to constants), shortened arrays and chains, simplified
    expressions, dropped and simplified pokes. *)

val print_case : prog * stimulus -> string

val arbitrary :
  ?profile:profile -> ?max_cycles:int -> unit -> (prog * stimulus) QCheck.arbitrary
(** Program + stimulus with IR-level shrinking and a source-level
    printer, ready for [QCheck.Test.make]. *)
