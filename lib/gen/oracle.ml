(* The differential oracle matrix for whole-pipeline fuzzing.

   Given one Zeus source program and one poke sequence, [check] decides
   whether the implementation agrees with itself everywhere the paper
   says it must:

   O1 "pp-fixpoint"    pretty-print → reparse → pretty-print reaches a
                       fixpoint after one round trip;
   O2 "reelaborate"    the pretty-printed source compiles, and its
                       Firing-engine run is bit-identical to the
                       original's (print/parse/elaborate preserve
                       semantics, not just syntax);
   O3 "engine:<name>"  all seven scheduling engines — including the
                       domain-parallel one, run at 4 domains with every
                       dirty level chunked (grain 1), and the bytecode-
                       compiled one — produce identical
                       snapshots *per cycle* and identical runtime-error
                       sets (cycle, net, code) over the poke sequence —
                       the cycle-by-cycle comparison subsumes the
                       "Incremental agrees with Fixpoint" requirement;
   O4 "lint-vs-runtime" a net the lint prover classified [Safe] never
                       raises the runtime multiple-drive check (the two
                       halves of the NP-complete section 4.7 check must
                       not contradict each other).  Lint's safety
                       contract assumes a defined environment — inputs
                       evaluate to 0 or 1 — so this row only applies to
                       stimuli that poke every input to a defined value
                       in the first cycle and never poke UNDEF later.
                       (Sequential state needs no such carve-out: a
                       guard over a register that can power up UNDEF is
                       never classified safe in the first place.)
   O6 "opt-identity:<name>" / "opt-proof"
                       the proof-carrying reduction preserves behaviour:
                       the reduced design, run on each of the seven
                       engines, matches the unoptimized Firing reference
                       cycle-by-cycle on every net the abstract
                       interpretation marked observable.  Values are
                       compared per net through each design's class map
                       (copy merging changes class indices).  Runtime
                       errors are not compared: errors on eliminated
                       (unobservable) logic disappear by design, and a
                       merged class reports conflicts under its merged
                       representative's name.  "opt-proof" additionally
                       checks the shipped table against the reference
                       run: a class proved const-0/1 with a producer
                       must read exactly that constant every cycle;
   O7 "batch:<name>"   the batch engine ({!Sim.run_batch}) is
                       bit-identical to serial: a mix of full-length and
                       truncated runs with distinct per-run seeds,
                       sharded over the pool and (for a Compiled
                       template) packed 8 lanes wide, produces the same
                       per-cycle snapshots and runtime-error sets as
                       stepping each run on a fresh serial incremental
                       handle — checked with every engine as the batch
                       template, so both the lane path and the serial
                       fallback are exercised;
   O8 "prove-vs-runtime" the bounded sequential prover against the same
                       runtime, three ways: a net upgraded to
                       [Safe_sequential] never raises the runtime
                       multiple-drive check (under O4's defined-
                       environment carve-out); a Z603 witness trace,
                       replayed poke-for-poke, reproduces the promised
                       drive conflict at the stated cycle; and running
                       the compiled engine with the proved checks
                       discharged changes no value — only Z101 reports
                       on statically-proved nets may disappear;
   O9 "verilog"        the structural Verilog export is faithful: every
                       compiled program exports (cyclic designs cannot
                       compile, so [Cyclic]/[Unsupported] here is a
                       finding), the emitted module parses back through
                       the minimal structural reader with the same
                       module name, port list and net count, and the
                       self-checking testbench generates for the same
                       stimulus.  When iverilog is installed (nightly
                       CI), the module + bench are additionally
                       compiled and run: the bench replays the stimulus
                       against the incremental engine's snapshots and
                       must print ZEUS_TB_OK — a MISMATCH line is an
                       externally-confirmed semantics divergence.
                       Without iverilog the external leg is skipped
                       (structural checks still run);
   O5 "modular-vs-elaborated" the modular summary analysis never
                       contradicts the elaborated pipeline in its sound
                       direction: a net the elaborated lint proved in
                       [Conflict] must not be reclassified [Safe] by
                       the modular pre-pass (a type was proved
                       conflict-safe wrongly); if every type is proved
                       cycle-free with no fallback and no Z403, the
                       elaborated Check must not find a combinational
                       cycle; and [Summary.analyze] must not raise.
                       Modular warnings (Z402/Z403/Z406) are allowed to
                       over-approximate — only "proven" is binding.

   A generated program failing to parse or compile is also a finding
   ("parse" / "compile"): the generator only emits legal programs, so
   a rejection is a front-end bug (or a generator bug — either way a
   human should look). *)

open Zeus_base
open Zeus_lang
open Zeus_sem
module Sim = Zeus_sim.Sim
module Graph = Zeus_sim.Graph

type divergence = {
  oracle : string; (* which row of the matrix failed *)
  detail : string;
}

let pp_divergence ppf d = Fmt.pf ppf "[%s] %s" d.oracle d.detail

(* parse + elaborate + static checks, as Zeus.compile does (the umbrella
   library depends on this one, so spell it out here) *)
let compile src =
  let bag = Diag.Bag.create () in
  match Parser.program ~bag src with
  | None, _ -> Error (Diag.Bag.errors bag)
  | Some prog, _ ->
      let design = Elaborate.program ~bag prog in
      if Diag.Bag.has_errors bag then Error (Diag.Bag.errors bag)
      else if Check.run design then Ok design
      else Error (Diag.Bag.errors bag)

let diags_to_string diags =
  String.concat "; " (List.map Diag.to_string diags)

(* O9's external leg needs Icarus Verilog; probe for it once.  Without
   it the oracle still runs the structural self-checks. *)
let iverilog_available =
  let probe =
    lazy (Sys.command "command -v iverilog >/dev/null 2>&1" = 0)
  in
  fun () -> Lazy.force probe

let read_whole_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error _ -> ""

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Compile module+bench with iverilog, run it under vvp, and judge by
   the bench's own markers (robust to vvp's exit-code conventions):
   ZEUS_TB_OK is agreement, anything else is a divergence whose detail
   carries the MISMATCH lines. *)
let run_external_verilog text =
  let src_f = Filename.temp_file "zeus_o9" ".v" in
  let out_f = Filename.temp_file "zeus_o9" ".vvp" in
  let log_f = Filename.temp_file "zeus_o9" ".log" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        [ src_f; out_f; log_f ])
    (fun () ->
      let oc = open_out_bin src_f in
      output_string oc text;
      close_out oc;
      let q = Filename.quote in
      let rc =
        Sys.command
          (Printf.sprintf "iverilog -g2012 -o %s %s >%s 2>&1 && vvp %s >>%s 2>&1"
             (q out_f) (q src_f) (q log_f) (q out_f) (q log_f))
      in
      let log = read_whole_file log_f in
      if contains_substring log "ZEUS_TB_OK" then Ok ()
      else
        let lines = String.split_on_char '\n' log in
        let interesting =
          List.filter
            (fun l ->
              contains_substring l "MISMATCH" || contains_substring l "error")
            lines
        in
        let shown = match interesting with [] -> lines | l -> l in
        let shown =
          List.filteri (fun i _ -> i < 5) (List.filter (( <> ) "") shown)
        in
        Error
          (Printf.sprintf "iverilog/vvp rc=%d: %s" rc
             (String.concat " | " shown)))

(* One engine's observable behaviour: the snapshot after every cycle,
   and the full runtime-error set as comparable triples. *)
type run = {
  snaps : Logic.t option array list;
  errors : (int * string * string) list; (* cycle, net, code; sorted *)
}

let run_engine ?(jobs = 4) ?(grain = 1) design engine (stim : Gen_prog.stimulus)
    =
  (* jobs/grain only affect the Parallel engine; grain 1 forces every
     dirty level through the domain pool so the fuzz actually exercises
     the chunked path *)
  let sim = Sim.create ~engine ~jobs ~grain design in
  let snaps =
    List.map
      (fun pokes ->
        List.iter (fun (path, v) -> Sim.poke sim path [ v ]) pokes;
        Sim.step sim;
        Sim.snapshot sim)
      stim
  in
  let errors =
    List.sort compare
      (List.map
         (fun (e : Sim.runtime_error) ->
           (e.Sim.err_cycle, e.Sim.err_net, e.Sim.err_code))
         (Sim.runtime_errors sim))
  in
  { snaps; errors }

let first_snap_mismatch a b =
  let rec go cycle sa sb =
    match (sa, sb) with
    | [], [] -> None
    | s1 :: ra, s2 :: rb ->
        if s1 = s2 then go (cycle + 1) ra rb
        else
          let diffs = ref 0 in
          if Array.length s1 = Array.length s2 then
            Array.iteri (fun i v -> if v <> s2.(i) then incr diffs) s1
          else diffs := max (Array.length s1) (Array.length s2);
          Some (cycle, !diffs)
    | _ -> Some (min (List.length a) (List.length b) + 1, 0)
  in
  go 1 a b

let errors_to_string errs =
  String.concat ", "
    (List.map (fun (c, n, code) -> Printf.sprintf "%s@%d[%s]" n c code) errs)

(* The full matrix.  Returns every divergence found (empty = agreement
   everywhere).  [jobs] shapes the Parallel engine's chunking and the
   batch row's sharding; batch workers already inside a pool region
   must pass [~jobs:1] (Pool regions do not nest, but [Pool.run ~jobs:1]
   short-circuits to a plain call). *)
let check ?(jobs = 4) ~src (stim : Gen_prog.stimulus) : divergence list =
  match Parser.program src with
  | None, bag ->
      [ { oracle = "parse";
          detail = diags_to_string (Diag.Bag.errors bag) } ]
  | Some p1, _ -> (
      let divs = ref [] in
      let add oracle detail = divs := { oracle; detail } :: !divs in
      (* O1: pretty-printing is a fixpoint after one round trip *)
      let printed = Pretty.program_to_string p1 in
      (match Parser.program printed with
      | None, bag ->
          add "pp-fixpoint"
            ("pretty-printed source does not reparse: "
            ^ diags_to_string (Diag.Bag.errors bag))
      | Some p2, _ ->
          let printed2 = Pretty.program_to_string p2 in
          if printed2 <> printed then
            add "pp-fixpoint" "second pretty-print differs from the first");
      (* O5, part 1: the modular summary analysis must terminate cleanly
         on anything the parser accepts *)
      let modular =
        try Some (Summary.analyze ~symbolic:false p1)
        with exn ->
          add "modular-vs-elaborated"
            ("Summary.analyze raised: " ^ Printexc.to_string exn);
          None
      in
      let modular_all_cycle_free =
        match modular with
        | None -> false
        | Some m ->
            m.Summary.fallbacks = []
            && List.for_all
                 (fun (d : Diag.t) -> d.Diag.code <> Some Diag.Code.modular_cycle)
                 m.Summary.findings
            && List.for_all
                 (fun (n, _) -> List.mem n m.Summary.proven_cycle_free)
                 m.Summary.contracts
      in
      match compile src with
      | Error diags ->
          (* O5, part 2: "every type cycle-free, no fallback" is a proof
             quantified over the whole design — elaboration must not then
             find a combinational cycle *)
          if
            modular_all_cycle_free
            && List.exists (fun (d : Diag.t) -> d.Diag.kind = Diag.Cycle_error)
                 diags
          then
            add "modular-vs-elaborated"
              "all types proved cycle-free modularly, but elaborated Check \
               found a combinational cycle";
          add "compile" (diags_to_string diags);
          List.rev !divs
      | Ok design ->
          (* O3: the seven-engine matrix, cycle-by-cycle *)
          let reference = run_engine ~jobs design Sim.Firing stim in
          List.iter
            (fun engine ->
              if engine <> Sim.Firing then begin
                let r = run_engine ~jobs design engine stim in
                (match first_snap_mismatch reference.snaps r.snaps with
                | None -> ()
                | Some (cycle, diffs) ->
                    add
                      ("engine:" ^ Sim.engine_name engine)
                      (Printf.sprintf
                         "snapshot differs from firing at cycle %d (%d nets)"
                         cycle diffs));
                if r.errors <> reference.errors then
                  add
                    ("engine:" ^ Sim.engine_name engine)
                    (Printf.sprintf
                       "runtime errors differ from firing: {%s} vs {%s}"
                       (errors_to_string r.errors)
                       (errors_to_string reference.errors))
              end)
            Sim.all_engines;
          (* O7: the batch engine, against fresh serial runs — a mix of
             full and truncated runs with distinct per-run seeds, so the
             lane grouping, the sharding and the per-run RANDOM streams
             are all load-bearing *)
          if stim <> [] then begin
            let stim_arr =
              Array.of_list
                (List.map (List.map (fun (p, v) -> (p, [ v ]))) stim)
            in
            let ncycles = Array.length stim_arr in
            let mk ~cycles ~seed =
              {
                Sim.br_stim = Array.sub stim_arr 0 cycles;
                br_cycles = cycles;
                br_seed = Some seed;
                br_watch = [];
              }
            in
            let half = max 1 (ncycles / 2) in
            let runs =
              [
                mk ~cycles:ncycles ~seed:11;
                mk ~cycles:half ~seed:12;
                mk ~cycles:ncycles ~seed:13;
                mk ~cycles:ncycles ~seed:11;
                mk ~cycles:half ~seed:14;
              ]
            in
            let serial (r : Sim.batch_run) =
              let sim =
                Sim.create ~engine:Sim.Incremental ?seed:r.Sim.br_seed design
              in
              let snaps = ref [] in
              for c = 0 to r.Sim.br_cycles - 1 do
                if c < Array.length r.Sim.br_stim then
                  List.iter
                    (fun (p, bits) -> Sim.poke sim p bits)
                    r.Sim.br_stim.(c);
                Sim.step sim;
                snaps := Sim.snapshot sim :: !snaps
              done;
              ( List.rev !snaps,
                List.sort compare
                  (List.map
                     (fun (e : Sim.runtime_error) ->
                       (e.Sim.err_cycle, e.Sim.err_net, e.Sim.err_code))
                     (Sim.runtime_errors sim)) )
            in
            let refs = List.map serial runs in
            List.iter
              (fun engine ->
                let tmpl = Sim.create ~engine ~jobs:1 design in
                let results, _ =
                  Sim.run_batch ~jobs ~lanes:8 ~snapshots:true tmpl runs
                in
                List.iteri
                  (fun i (res : Sim.batch_result) ->
                    let ref_snaps, ref_errs = List.nth refs i in
                    (match
                       first_snap_mismatch ref_snaps res.Sim.bres_snaps
                     with
                    | None -> ()
                    | Some (cycle, diffs) ->
                        add
                          ("batch:" ^ Sim.engine_name engine)
                          (Printf.sprintf
                             "run %d snapshot differs from serial at cycle \
                              %d (%d nets)"
                             i cycle diffs));
                    let errs =
                      List.sort compare
                        (List.map
                           (fun (e : Sim.runtime_error) ->
                             (e.Sim.err_cycle, e.Sim.err_net, e.Sim.err_code))
                           res.Sim.bres_errors)
                    in
                    if errs <> ref_errs then
                      add
                        ("batch:" ^ Sim.engine_name engine)
                        (Printf.sprintf
                           "run %d runtime errors differ from serial: {%s} \
                            vs {%s}"
                           i (errors_to_string errs)
                           (errors_to_string ref_errs)))
                  results)
              Sim.all_engines
          end;
          (* O6: the proof-carrying reduction, on all seven engines *)
          (match
             try Some (Reduce.run design)
             with exn ->
               add "opt-identity"
                 ("Reduce.run raised: " ^ Printexc.to_string exn);
               None
           with
          | None -> ()
          | Some r ->
              let ai = r.Reduce.ai in
              let g1 = Graph.build design in
              let g2 = Graph.build r.Reduce.design in
              (* Snapshots are indexed by original net id, holding each
                 class's value at its union-find root slot.  Per
                 original class: observability (via the analysis), the
                 root slot in the unoptimized snapshot, and the merged
                 class's root slot in the reduced one — looked up
                 through net ids, so the two compactions never need to
                 agree on class numbering. *)
              let obs =
                Array.map
                  (fun root -> ai.Absint.observable.(ai.Absint.canon.(root)))
                  g1.Graph.rep
              in
              let opt_slot =
                Array.map
                  (fun root -> g2.Graph.rep.(g2.Graph.canon.(root)))
                  g1.Graph.rep
              in
              List.iter
                (fun engine ->
                  let ro = run_engine ~jobs r.Reduce.design engine stim in
                  let rec go cycle ss os =
                    match (ss, os) with
                    | [], [] -> ()
                    | s1 :: rest1, s2 :: rest2 ->
                        let diffs = ref 0 and first = ref (-1) in
                        Array.iteri
                          (fun c root ->
                            if obs.(c) && s1.(root) <> s2.(opt_slot.(c))
                            then begin
                              incr diffs;
                              if !first < 0 then first := c
                            end)
                          g1.Graph.rep;
                        if !diffs > 0 then
                          add
                            ("opt-identity:" ^ Sim.engine_name engine)
                            (Printf.sprintf
                               "optimized run differs on %d observable \
                                net(s) at cycle %d (first: '%s')"
                               !diffs cycle g1.Graph.names.(!first))
                        else go (cycle + 1) rest1 rest2
                    | _ ->
                        add
                          ("opt-identity:" ^ Sim.engine_name engine)
                          "optimized run has a different cycle count"
                  in
                  go 1 reference.snaps ro.snaps)
                Sim.all_engines;
              (* the table itself must be honest on the reference run *)
              Array.iteri
                (fun c root ->
                  let cls = ai.Absint.cls.(ai.Absint.canon.(root)) in
                  let want =
                    match cls with
                    | Absint.Const0 -> Some Logic.Zero
                    | Absint.Const1 -> Some Logic.One
                    | _ -> None
                  in
                  match want with
                  | Some w
                    when obs.(c)
                         && ai.Absint.producers.(ai.Absint.canon.(root)) > 0 ->
                      List.iteri
                        (fun i snap ->
                          if snap.(root) <> Some w then
                            add "opt-proof"
                              (Printf.sprintf
                                 "net '%s' is proved %s but read %s at \
                                  cycle %d"
                                 g1.Graph.names.(c)
                                 (Absint.classification_to_string cls)
                                 (match snap.(c) with
                                 | None -> "nothing"
                                 | Some v -> Logic.to_string v)
                                 (i + 1)))
                        reference.snaps
                  | _ -> ())
                g1.Graph.rep);
          (* O2: semantics survive print -> reparse -> re-elaborate *)
          (match compile printed with
          | Error diags ->
              add "reelaborate"
                ("pretty-printed source does not compile: "
                ^ diags_to_string diags)
          | Ok design2 -> (
              let r2 = run_engine ~jobs design2 Sim.Firing stim in
              match first_snap_mismatch reference.snaps r2.snaps with
              | None -> ()
              | Some (cycle, diffs) ->
                  add "reelaborate"
                    (Printf.sprintf
                       "re-elaborated run differs at cycle %d (%d nets)" cycle
                       diffs)));
          (* O4: a statically-proved-safe net must never conflict at
             runtime — under lint's environment assumption that inputs
             are defined *)
          let nl = design.Elaborate.netlist in
          let input_names =
            List.map
              (fun id -> (Netlist.net nl (Netlist.canonical nl id)).Netlist.name)
              (Check.top_input_nets design)
          in
          let defined v = v = Logic.Zero || v = Logic.One in
          let env_defined =
            match stim with
            | [] -> input_names = []
            | first :: _ ->
                List.for_all
                  (fun i ->
                    List.exists (fun (p, v) -> p = i && defined v) first)
                  input_names
                && List.for_all
                     (List.for_all (fun (_, v) -> v <> Logic.Undef))
                     stim
          in
          let lint = Lint.run design in
          if env_defined then begin
          let safe =
            List.filter_map
              (fun (v : Lint.net_verdict) ->
                if v.Lint.v_class = Lint.Safe then Some v.Lint.v_name else None)
              lint.Lint.verdicts
          in
          List.iter
            (fun (cycle, net, code) ->
              if code = Diag.Code.drive_conflict && List.mem net safe then
                add "lint-vs-runtime"
                  (Printf.sprintf
                     "net '%s' proved safe by lint but conflicted at runtime \
                      (cycle %d)"
                     net cycle))
            reference.errors
          end;
          (* O8: the bounded sequential prover against the same runtime *)
          (match
             try Some (Seqprove.run ~lint design)
             with exn ->
               add "prove-vs-runtime"
                 ("Seqprove.run raised: " ^ Printexc.to_string exn);
               None
           with
          | None -> ()
          | Some sp ->
              (* (a) Safe_sequential upgrades share lint's environment
                 assumption, so they get O4's carve-out *)
              if env_defined then
                List.iter
                  (fun (cycle, net, code) ->
                    if
                      code = Diag.Code.drive_conflict
                      && List.exists
                           (fun (_, n) -> n = net)
                           sp.Seqprove.sp_upgraded
                    then
                      add "prove-vs-runtime"
                        (Printf.sprintf
                           "net '%s' proved safe-sequential but conflicted \
                            at runtime (cycle %d)"
                           net cycle))
                  reference.errors;
              (* (b) every Z603 witness must replay: the promised
                 conflict fires on the stated net at the stated cycle *)
              List.iter
                (fun (w : Seqprove.witness) ->
                  let sim = Sim.create ~engine:Sim.Incremental design in
                  Array.iter
                    (fun pokes ->
                      List.iter
                        (fun (_, name, v) -> Sim.poke sim name [ v ])
                        pokes;
                      Sim.step sim)
                    w.Seqprove.w_trace;
                  let hit =
                    List.exists
                      (fun (e : Sim.runtime_error) ->
                        e.Sim.err_net = w.Seqprove.w_name
                        && e.Sim.err_code = Diag.Code.drive_conflict
                        && e.Sim.err_cycle = w.Seqprove.w_cycle)
                      (Sim.runtime_errors sim)
                  in
                  if not hit then
                    add "prove-vs-runtime"
                      (Printf.sprintf
                         "Z603 witness for '%s' does not replay: no drive \
                          conflict at cycle %d"
                         w.Seqprove.w_name w.Seqprove.w_cycle))
                sp.Seqprove.sp_witnesses;
              (* (c) discharging the proved checks must not change a
                 single value, on any stimulus — only Z101 reports on
                 statically-proved nets may disappear *)
              let disch = Seqprove.discharged design sp in
              if Array.exists Fun.id disch then begin
                let pred id =
                  id >= 0 && id < Array.length disch && disch.(id)
                in
                let sim =
                  Sim.create ~engine:Sim.Compiled ~discharged:pred design
                in
                let snaps =
                  List.map
                    (fun pokes ->
                      List.iter
                        (fun (path, v) -> Sim.poke sim path [ v ])
                        pokes;
                      Sim.step sim;
                      Sim.snapshot sim)
                    stim
                in
                (match first_snap_mismatch reference.snaps snaps with
                | None -> ()
                | Some (cycle, diffs) ->
                    add "prove-vs-runtime"
                      (Printf.sprintf
                         "discharged compiled run changes values at cycle \
                          %d (%d nets)"
                         cycle diffs));
                let errs =
                  List.sort compare
                    (List.map
                       (fun (e : Sim.runtime_error) ->
                         (e.Sim.err_cycle, e.Sim.err_net, e.Sim.err_code))
                       (Sim.runtime_errors sim))
                in
                let statically_proved net =
                  List.exists
                    (fun (v : Lint.net_verdict) ->
                      v.Lint.v_name = net
                      && (v.Lint.v_class = Lint.Safe
                         || v.Lint.v_class = Lint.Safe_sequential))
                    sp.Seqprove.sp_lint.Lint.verdicts
                in
                List.iter
                  (fun (cycle, net, code) ->
                    if not (List.mem (cycle, net, code) reference.errors)
                    then
                      add "prove-vs-runtime"
                        (Printf.sprintf
                           "discharged compiled run invents error %s@%d[%s]"
                           net cycle code))
                  errs;
                List.iter
                  (fun (cycle, net, code) ->
                    if
                      (not (List.mem (cycle, net, code) errs))
                      && not
                           (code = Diag.Code.drive_conflict
                           && statically_proved net)
                    then
                      add "prove-vs-runtime"
                        (Printf.sprintf
                           "discharged compiled run drops error %s@%d[%s] \
                            on an unproven net"
                           net cycle code))
                  reference.errors
              end);
          (* O5, part 3: a type the summaries proved conflict-safe must
             not own a net the elaborated prover showed in conflict — the
             modular pre-pass would silently hide the Z101 *)
          (match modular with
          | Some m when m.Summary.proven_conflict_safe <> [] ->
              let conflicts =
                List.filter
                  (fun (v : Lint.net_verdict) -> v.Lint.v_class = Lint.Conflict)
                  lint.Lint.verdicts
              in
              if conflicts <> [] then begin
                let proven t = List.mem t m.Summary.proven_conflict_safe in
                let pre = Lint.run ~proven_safe:proven design in
                List.iter
                  (fun (v : Lint.net_verdict) ->
                    match
                      List.find_opt
                        (fun (w : Lint.net_verdict) ->
                          w.Lint.v_name = v.Lint.v_name)
                        pre.Lint.verdicts
                    with
                    | Some w when w.Lint.v_class = Lint.Safe ->
                        add "modular-vs-elaborated"
                          (Printf.sprintf
                             "net '%s' is a proved conflict, but the modular \
                              pre-pass classified it safe (a type summary is \
                              wrongly conflict-safe)"
                             v.Lint.v_name)
                    | _ -> ())
                  conflicts
              end
          | _ -> ());
          (* O9: the structural Verilog export.  A compiled program has
             an acyclic class schedule (Check rejects combinational
             cycles), so any export error is a finding.  The emitted
             module must parse back with the same structure, the bench
             must generate for this stimulus, and — when iverilog is
             installed — the external simulator must replay the whole
             deck to ZEUS_TB_OK. *)
          (match Zeus_export.Verilog.export design with
          | Error e ->
              add "verilog"
                ("export failed on a compiled program: "
                ^ Zeus_export.Verilog.error_to_string e)
          | Ok v -> (
              (match Zeus_export.Verilog.parse_module v.Zeus_export.Verilog.text with
              | Error msg ->
                  add "verilog"
                    ("emitted module does not parse back: " ^ msg)
              | Ok vm ->
                  let open Zeus_export.Verilog in
                  if vm.vm_name <> v.module_name then
                    add "verilog"
                      (Printf.sprintf
                         "module name did not round-trip: %S vs %S"
                         vm.vm_name v.module_name);
                  let want =
                    List.map (fun p -> (p.pdir, p.pname)) v.ports
                  in
                  if vm.vm_ports <> want then
                    add "verilog" "port list did not round-trip";
                  if vm.vm_nets <> v.net_count then
                    add "verilog"
                      (Printf.sprintf
                         "declared net count %d, reader found %d"
                         v.net_count vm.vm_nets));
              match Zeus_export.Verilog.testbench v stim with
              | Error msg ->
                  add "verilog" ("testbench generation failed: " ^ msg)
              | Ok tb ->
                  if iverilog_available () then (
                    match
                      run_external_verilog
                        (v.Zeus_export.Verilog.text ^ "\n" ^ tb)
                    with
                    | Ok () -> ()
                    | Error detail -> add "verilog" detail)));
          List.rev !divs)
