(** The differential oracle matrix for whole-pipeline fuzzing.

    {v
    row              agreement required
    ---------------  --------------------------------------------------
    pp-fixpoint      pretty-print → reparse → pretty-print is a fixpoint
    reelaborate      pretty-printed source compiles and simulates
                     bit-identically to the original (Firing engine)
    engine:<name>    every engine matches Firing — including the
                     domain-parallel one at 4 domains, grain 1:
                     identical snapshots per cycle and identical
                     runtime-error sets (subsumes "Incremental agrees
                     with Fixpoint cycle-by-cycle")
    batch:<name>     the batch engine ({!Sim.run_batch}) is
                     bit-identical to serial: full and truncated runs
                     with distinct per-run seeds, sharded over the pool
                     and lane-packed for a Compiled template, match
                     fresh serial incremental handles per cycle and per
                     runtime-error set — with every engine as template
    lint-vs-runtime  a net lint proved Safe never raises the runtime
                     multiple-drive check
    opt-identity:<name>
                     the proof-carrying reduction ({!Zeus_sem.Reduce})
                     preserves behaviour: the reduced design, run on
                     each of the seven engines, matches the unoptimized
                     Firing reference cycle-by-cycle on every net the
                     abstract interpretation marked observable (values
                     compared per net through each design's class map;
                     runtime errors on eliminated logic are exempt by
                     design)
    opt-proof        the shipped proof table is honest: a class Absint
                     proved const-0/const-1 (with at least one
                     producer) reads exactly that constant on every
                     cycle of the unoptimized reference run
    verilog          the structural Verilog export is faithful: every
                     compiled program exports, parses back through
                     {!Zeus_export.Verilog.parse_module} with the same
                     module name / port list / net count, and its
                     self-checking testbench generates; with iverilog
                     installed (nightly CI) the module + bench are also
                     compiled and run externally and must reach
                     ZEUS_TB_OK (skipped, structural checks only, when
                     iverilog is absent — see {!iverilog_available})
    modular-vs-elaborated
                     the modular summary analysis ({!Zeus_sem.Summary})
                     never contradicts the elaborated pipeline in its
                     sound direction: proven-conflict-safe types hide no
                     proved-Conflict net, "all types cycle-free with no
                     fallback" admits no elaborated cycle error, and
                     [Summary.analyze] never raises
    parse / compile  generated programs are legal by construction, so a
                     front-end rejection is itself a finding
    v} *)

open Zeus_base
module Sim = Zeus_sim.Sim

type divergence = {
  oracle : string;  (** which row of the matrix failed *)
  detail : string;
}

val pp_divergence : divergence Fmt.t

val iverilog_available : unit -> bool
(** Whether Icarus Verilog is on PATH (probed once per process).  When
    [false], the [verilog] row runs its structural self-checks only. *)

val compile : string -> (Zeus_sem.Elaborate.design, Diag.t list) result

(** One engine's observable behaviour over a poke sequence. *)
type run = {
  snaps : Logic.t option array list;  (** snapshot after every cycle *)
  errors : (int * string * string) list;  (** cycle, net, code; sorted *)
}

(** [jobs]/[grain] shape the {!Sim.Parallel} engine only (defaults 4
    and 1: every dirty level is chunked across 4 domains); results are
    identical at any value. *)
val run_engine :
  ?jobs:int -> ?grain:int ->
  Zeus_sem.Elaborate.design -> Sim.engine -> Gen_prog.stimulus -> run

val check : ?jobs:int -> src:string -> Gen_prog.stimulus -> divergence list
(** Run the whole matrix; [[]] means agreement everywhere.  [jobs]
    (default 4) shapes the Parallel engine's chunking and the batch
    row's sharding; a caller already inside a {!Zeus_sim.Pool} region
    (e.g. a batch-fuzz worker) must pass [~jobs:1] — pool regions do
    not nest, and [jobs = 1] short-circuits past the pool. *)
