(* The `zeusc fuzz` driver: deterministic differential fuzzing with
   shrinking.

   Case [i] of a run with base seed [s] is generated from
   [Random.State.make [| 0x5eed; s; i |]] — replaying a failure needs
   only the pair (seed, index), both printed with every divergence and
   embedded in the repro file header.

   On a divergence the failing (program, stimulus) pair is shrunk by a
   greedy loop over {!Gen_prog.shrink_steps}: any one-step reduction
   that still produces a divergence of the same oracle row is kept, and
   the loop restarts from the reduced case until no step helps (or the
   evaluation budget runs out).  The shrunk case is written to the
   corpus directory as [repro_<seed>_<index>.zeus] (with the divergence
   and replay instructions in a comment header) plus a
   [repro_<seed>_<index>.pokes] poke script. *)

module G = QCheck.Gen

type failure = {
  seed : int;
  index : int;
  divergence : Oracle.divergence;
  prog : Gen_prog.prog; (* already shrunk *)
  stim : Gen_prog.stimulus;
  zeus_file : string option; (* where the repro was written *)
}

type summary = {
  tested : int;
  failures : failure list;
}

let gen_case ~profile ~seed ~index =
  let rand = Random.State.make [| 0x5eed; seed; index |] in
  let prog = G.generate1 ~rand (Gen_prog.gen ~profile ()) in
  let stim = G.generate1 ~rand (Gen_prog.gen_stimulus ~profile prog) in
  (prog, stim)

let first_divergence ?jobs (prog, stim) =
  match Oracle.check ?jobs ~src:(Gen_prog.to_zeus prog) stim with
  | [] -> None
  | d :: _ -> Some d

(* greedy shrink: keep any one-step reduction that still fails the same
   oracle row; bound the total number of oracle evaluations *)
let shrink ~budget ~oracle case =
  let evals = ref 0 in
  let still_fails c =
    incr evals;
    match first_divergence c with
    | Some d when d.Oracle.oracle = oracle -> Some d
    | _ -> None
  in
  let rec go (case, div) =
    if !evals >= budget then (case, div)
    else
      let rec try_steps = function
        | [] -> None
        | step :: rest -> (
            if !evals >= budget then None
            else
              match still_fails step with
              | Some d -> Some (step, d)
              | None -> try_steps rest)
      in
      match try_steps (Gen_prog.shrink_steps case) with
      | Some reduced -> go reduced
      | None -> (case, div)
  in
  go case

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_repro ~corpus_dir ~seed ~index ~divergence (prog, stim) =
  (try if not (Sys.is_directory corpus_dir) then raise Exit
   with _ -> (try Sys.mkdir corpus_dir 0o755 with _ -> ()));
  let base = Filename.concat corpus_dir (Printf.sprintf "repro_%d_%d" seed index) in
  let header =
    Printf.sprintf
      "<* fuzz divergence %s\n\
      \   replay: zeusc fuzz --seed %d --count %d   (case %d)\n\
      \   pokes:  %s.pokes *>\n"
      (Fmt.str "%a" Oracle.pp_divergence divergence)
      seed (index + 1) index (Filename.basename base)
  in
  write_file (base ^ ".zeus") (header ^ Gen_prog.to_zeus prog);
  write_file (base ^ ".pokes")
    (Printf.sprintf "# pokes for %s.zeus (apply each line, then step)\n%s"
       (Filename.basename base)
       (Gen_prog.stimulus_to_string stim));
  base ^ ".zeus"

(* Run [count] cases.  Failing cases are shrunk and written to
   [corpus_dir]; progress goes to [log] (stderr in the CLI).

   [batch] shards the detection phase — generate case, run the oracle
   matrix — across [jobs] domains of the process-wide pool: each domain
   owns a contiguous index slice, checking with single-domain oracles
   (pool fork-join regions do not nest).  Shrinking, repro writing and
   logging stay on the caller, in index order, after the join, so the
   summary and the corpus are byte-identical to a serial run: cases are
   deterministic in (seed, index) and the oracle verdict is independent
   of [jobs]. *)
let run ?(profile = Gen_prog.full) ?(shrink_budget = 600)
    ?(log = ignore) ?(batch = false) ?(jobs = 4) ~count ~seed ~corpus_dir () =
  let failures = ref [] in
  let handle index case (d : Oracle.divergence) =
    log
      (Printf.sprintf "case %d diverged %s; shrinking..." index
         (Fmt.str "%a" Oracle.pp_divergence d));
    let (prog, stim), d = shrink ~budget:shrink_budget ~oracle:d.Oracle.oracle (case, d) in
    let zeus_file =
      match corpus_dir with
      | None -> None
      | Some dir ->
          Some (write_repro ~corpus_dir:dir ~seed ~index ~divergence:d (prog, stim))
    in
    log
      (Printf.sprintf "case %d shrunk to %d-line repro%s" index
         (List.length
            (String.split_on_char '\n' (Gen_prog.to_zeus prog)))
         (match zeus_file with
         | Some f -> Printf.sprintf " (%s)" f
         | None -> ""));
    failures := { seed; index; divergence = d; prog; stim; zeus_file } :: !failures
  in
  if batch && count > 1 then begin
    let jobs = max 1 (min (min jobs Zeus_sim.Pool.max_jobs) count) in
    log (Printf.sprintf "batch detection: %d cases over %d domain(s)" count jobs);
    let diverged = Array.make count None in
    Zeus_sim.Pool.run ~jobs (fun d ->
        let lo = count * d / jobs and hi = count * (d + 1) / jobs in
        for index = lo to hi - 1 do
          let case = gen_case ~profile ~seed ~index in
          match first_divergence ~jobs:1 case with
          | None -> ()
          | Some dv -> diverged.(index) <- Some (case, dv)
        done);
    Array.iteri
      (fun index -> function
        | None -> ()
        | Some (case, dv) -> handle index case dv)
      diverged
  end
  else
    for index = 0 to count - 1 do
      let case = gen_case ~profile ~seed ~index in
      match first_divergence case with
      | None -> ()
      | Some d -> handle index case d
    done;
  { tested = count; failures = List.rev !failures }
