(* Full-language random Zeus program generator.

   Programs are generated as a small typed IR and rendered to concrete
   Zeus source text, so that every fuzz case exercises the lexer, the
   parser, the elaborator and the static checks before it ever reaches a
   simulator.  The IR covers, by construction legally:

   - plain boolean wires assigned once, unconditionally;
   - multiplex nets with guarded drivers in three deliberate flavours
     that straddle the lint prover's verdict classes: [If_else] and
     [Complement] are provably exclusive (lint: safe), [Overlap] uses
     two independent guards (lint: conflict or needs-runtime-check,
     runtime conflicts possible and expected);
   - registers with optionally guarded inputs, readable through
     [r.out] from anywhere (REG is the legal cycle breaker, so forward
     references are allowed);
   - ARRAY OF boolean signals filled by a FOR replication over the
     loop variable (exercises constant evaluation of index arithmetic);
   - a nested subcomponent instance and a function-component call;
   - a parameterized recursive component ([fzchain(n)]) whose body
     chooses between WHEN and OTHERWISE branches — a register delay
     line of its depth.

   Combinational-only programs (profile {!comb}) additionally have a
   direct OCaml-side reference evaluator ({!eval_comb}), the oracle of
   the original whole-pipeline fuzzer.  Everything else is checked
   differentially (see {!Oracle}).

   Shrinking works on the IR, not the text: {!shrink_steps} proposes
   stimulus reductions, whole-item removals (references into a removed
   item are patched to a constant), structural reductions (array
   length, chain depth) and one-step expression simplifications.  A
   greedy loop over these steps converges to a small reproducing
   program (see {!Fuzz.shrink}). *)

open Zeus_base

module G = struct
  include QCheck.Gen

  (* qcheck-core exposes bind only as an operator *)
  let bind g f = g >>= f
end

type gate =
  | Gand
  | Gor
  | Gnand
  | Gnor
  | Gxor
  | Gequal
  | Gnot

let gate_name = function
  | Gand -> "AND"
  | Gor -> "OR"
  | Gnand -> "NAND"
  | Gnor -> "NOR"
  | Gxor -> "XOR"
  | Gequal -> "EQUAL"
  | Gnot -> "NOT"

type bexp =
  | Ref of string (* any readable signal path, relative to the top body *)
  | Lit of bool
  | Gate of gate * bexp list
  | Call of bexp * bexp (* fzfn(a,b): a function component, RESULT XOR *)

type mux_style =
  | If_else (* IF g THEN m := a ELSE m := b END            — lint: safe *)
  | Complement (* IF g THEN m := a END; IF NOT g THEN m := b — lint: safe *)
  | Overlap (* IF g1 THEN m := a END; IF g2 THEN m := b   — may conflict *)

type item =
  | Wire of { name : string; exp : bexp }
  | Mux of {
      name : string;
      style : mux_style;
      g1 : bexp;
      g2 : bexp; (* ignored by If_else and Complement *)
      a : bexp;
      b : bexp;
    }
  | Reg of { name : string; guard : bexp option; next : bexp }
  | Arr of { name : string; len : int; init : bexp; step : gate; extra : bexp }
      (* a[1] := init; FOR i := 2 TO len DO a[i] := step(a[i-1],extra) END *)
  | Inst of { name : string; a : bexp; b : bexp } (* fzsub: z := NAND(p,q) *)
  | Chain of { name : string; depth : int; input : bexp }
      (* fzchain(depth): a recursive register delay line *)
  | Tog of { name : string; init : bool; a : bexp; b : bexp }
      (* an initialized register whose input is multiplexed by its own
         state:
           IF t.out THEN t.in := a END; IF NOT t.out THEN t.in := b END
         The flow-insensitive lint injects UNDEF into the multi-driven
         input and demotes it to needs-runtime-check; the sequential
         prover sees the register never leaves {0,1} from its declared
         power-up value and upgrades it to safe-sequential (exercises
         zeusc prove and oracle row O8). *)
  | Rchain of { name : string; len : int; input : bexp }
      (* reset-dependent register chain: the head is initialized by the
         RSET pulse, the tail shifts —
           IF RSET THEN nq1.in := 0 END; IF NOT RSET THEN nq1.in := input END;
           nqk.in := nq(k-1).out
         — so definedness is sequential in origin (Z601/Z602 material
         when the chain outruns the proof depth). *)

type prog = {
  n_in : int;
  items : item list;
  outs : string list; (* observed readables, wired to OUT ports o0.. *)
}

(* ------------------------------------------------------------------ *)
(* Readables                                                            *)
(* ------------------------------------------------------------------ *)

let item_readables = function
  | Wire { name; _ } | Mux { name; _ } -> [ name ]
  | Reg { name; _ } | Tog { name; _ } -> [ name ^ ".out" ]
  | Arr { name; len; _ } ->
      List.init len (fun k -> Printf.sprintf "%s[%d]" name (k + 1))
  | Inst { name; _ } -> [ name ^ ".z" ]
  | Chain { name; _ } -> [ name ^ ".q" ]
  | Rchain { name; len; _ } ->
      List.init len (fun k -> Printf.sprintf "%sq%d.out" name (k + 1))

(* Instance-port readables: the unused-port rule of section 4.1 demands
   that they are read somewhere once a sibling port is assigned. *)
let item_port_readables = function
  | Reg { name; _ } | Tog { name; _ } -> [ name ^ ".out" ]
  | Inst { name; _ } -> [ name ^ ".z" ]
  | Chain { name; _ } -> [ name ^ ".q" ]
  | Rchain { name; len; _ } ->
      List.init len (fun k -> Printf.sprintf "%sq%d.out" name (k + 1))
  | Wire _ | Mux _ | Arr _ -> []

let input_names p = List.init p.n_in (fun i -> Printf.sprintf "x%d" i)

let rec exp_refs acc = function
  | Ref n -> n :: acc
  | Lit _ -> acc
  | Gate (_, args) -> List.fold_left exp_refs acc args
  | Call (a, b) -> exp_refs (exp_refs acc a) b

let item_exps = function
  | Wire { exp; _ } -> [ exp ]
  | Mux { g1; g2; style; a; b; _ } ->
      (match style with Overlap -> [ g1; g2 ] | _ -> [ g1 ]) @ [ a; b ]
  | Reg { guard; next; _ } -> Option.to_list guard @ [ next ]
  | Arr { len; init; extra; _ } ->
      (* the FOR step (and with it [extra]) is only rendered for len > 1 *)
      if len > 1 then [ init; extra ] else [ init ]
  | Inst { a; b; _ } -> [ a; b ]
  | Chain { input; _ } -> [ input ]
  | Tog { a; b; _ } -> [ a; b ]
  | Rchain { input; _ } -> [ input ]

let referenced p =
  let refs =
    List.fold_left
      (fun acc it -> List.fold_left exp_refs acc (item_exps it))
      [] p.items
  in
  List.fold_left (fun acc o -> o :: acc) refs p.outs

(* OUT ports, in declaration order: the chosen observations plus every
   instance-port readable nobody referenced (closing the port legally
   and making it observable to the testbench at the same time). *)
let resolved_outs p =
  let seen = referenced p in
  let auto =
    List.concat_map
      (fun it ->
        List.filter (fun r -> not (List.mem r seen)) (item_port_readables it))
      p.items
  in
  match p.outs @ auto with [] -> [ "x0" ] | outs -> outs

let out_ports p =
  List.mapi (fun k r -> (Printf.sprintf "o%d" k, r)) (resolved_outs p)

(* ------------------------------------------------------------------ *)
(* Rendering to Zeus source                                             *)
(* ------------------------------------------------------------------ *)

let rec render_exp = function
  | Ref n -> n
  | Lit b -> if b then "1" else "0"
  | Gate (Gnot, [ (Gate (Gnot, _) as e) ]) ->
      (* NOT's operand must be a primary; group a nested NOT *)
      "NOT (" ^ render_exp e ^ ")"
  | Gate (Gnot, [ e ]) -> "NOT " ^ render_exp e
  | Gate (g, args) ->
      Printf.sprintf "%s(%s)" (gate_name g)
        (String.concat "," (List.map render_exp args))
  | Call (a, b) -> Printf.sprintf "fzfn(%s,%s)" (render_exp a) (render_exp b)

let uses_call p =
  let rec go = function
    | Call _ -> true
    | Gate (_, args) -> List.exists go args
    | Ref _ | Lit _ -> false
  in
  List.exists (fun it -> List.exists go (item_exps it)) p.items

let uses_inst p = List.exists (function Inst _ -> true | _ -> false) p.items
let uses_chain p = List.exists (function Chain _ -> true | _ -> false) p.items

let sub_decl =
  "fzsub = COMPONENT (IN p,q: boolean; OUT z: boolean) IS\n\
   BEGIN\n\
  \  z := NAND(p,q)\n\
   END;\n"

let fn_decl =
  "fzfn = COMPONENT (IN p,q: boolean) : boolean IS\n\
   BEGIN\n\
  \  RESULT XOR(p,q)\n\
   END;\n"

let chain_decl =
  "fzchain(n) = COMPONENT (IN d: boolean; OUT q: boolean) IS\n\
   SIGNAL rest: fzchain(n-1);\n\
  \       r: REG;\n\
   BEGIN\n\
  \  WHEN n > 1 THEN\n\
  \    r.in := d;\n\
  \    rest.d := r.out;\n\
  \    q := rest.q\n\
  \  OTHERWISE\n\
  \    r.in := d;\n\
  \    q := r.out\n\
  \  END\n\
   END;\n"

let decl_of_item = function
  | Wire { name; _ } -> Printf.sprintf "%s: boolean" name
  | Mux { name; _ } -> Printf.sprintf "%s: multiplex" name
  | Reg { name; _ } -> Printf.sprintf "%s: REG" name
  | Arr { name; len; _ } ->
      Printf.sprintf "%s: ARRAY[1..%d] OF boolean" name len
  | Inst { name; _ } -> Printf.sprintf "%s: fzsub" name
  | Chain { name; depth; _ } -> Printf.sprintf "%s: fzchain(%d)" name depth
  | Tog { name; init; _ } ->
      Printf.sprintf "%s: REG(%d)" name (if init then 1 else 0)
  | Rchain { name; len; _ } ->
      String.concat ";\n       "
        (List.init len (fun k -> Printf.sprintf "%sq%d: REG" name (k + 1)))

let stmts_of_item buf = function
  | Wire { name; exp } ->
      Buffer.add_string buf
        (Printf.sprintf "  %s := %s;\n" name (render_exp exp))
  | Mux { name; style; g1; g2; a; b } -> (
      let e1 = render_exp a and e2 = render_exp b in
      match style with
      | If_else ->
          Buffer.add_string buf
            (Printf.sprintf "  IF %s THEN %s := %s ELSE %s := %s END;\n"
               (render_exp g1) name e1 name e2)
      | Complement ->
          Buffer.add_string buf
            (Printf.sprintf "  IF %s THEN %s := %s END;\n" (render_exp g1)
               name e1);
          Buffer.add_string buf
            (Printf.sprintf "  IF %s THEN %s := %s END;\n"
               (render_exp (Gate (Gnot, [ g1 ]))) name e2)
      | Overlap ->
          Buffer.add_string buf
            (Printf.sprintf "  IF %s THEN %s := %s END;\n" (render_exp g1)
               name e1);
          Buffer.add_string buf
            (Printf.sprintf "  IF %s THEN %s := %s END;\n" (render_exp g2)
               name e2))
  | Reg { name; guard; next } -> (
      match guard with
      | None ->
          Buffer.add_string buf
            (Printf.sprintf "  %s.in := %s;\n" name (render_exp next))
      | Some g ->
          Buffer.add_string buf
            (Printf.sprintf "  IF %s THEN %s.in := %s END;\n" (render_exp g)
               name (render_exp next)))
  | Arr { name; len; init; step; extra } ->
      Buffer.add_string buf
        (Printf.sprintf "  %s[1] := %s;\n" name (render_exp init));
      if len > 1 then
        Buffer.add_string buf
          (Printf.sprintf "  FOR i := 2 TO %d DO %s[i] := %s(%s[i-1],%s) END;\n"
             len name (gate_name step) name (render_exp extra))
  | Inst { name; a; b } ->
      Buffer.add_string buf
        (Printf.sprintf "  %s.p := %s;\n" name (render_exp a));
      Buffer.add_string buf
        (Printf.sprintf "  %s.q := %s;\n" name (render_exp b))
  | Chain { name; input; _ } ->
      Buffer.add_string buf
        (Printf.sprintf "  %s.d := %s;\n" name (render_exp input))
  | Tog { name; a; b; _ } ->
      Buffer.add_string buf
        (Printf.sprintf "  IF %s.out THEN %s.in := %s END;\n" name name
           (render_exp a));
      Buffer.add_string buf
        (Printf.sprintf "  IF NOT %s.out THEN %s.in := %s END;\n" name name
           (render_exp b))
  | Rchain { name; len; input } ->
      Buffer.add_string buf
        (Printf.sprintf "  IF RSET THEN %sq1.in := 0 END;\n" name);
      Buffer.add_string buf
        (Printf.sprintf "  IF NOT RSET THEN %sq1.in := %s END;\n" name
           (render_exp input));
      for k = 2 to len do
        Buffer.add_string buf
          (Printf.sprintf "  %sq%d.in := %sq%d.out;\n" name k name (k - 1))
      done

let to_zeus p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "TYPE ";
  let first = ref true in
  let add_decl d =
    if not !first then Buffer.add_char buf '\n';
    first := false;
    Buffer.add_string buf d
  in
  if uses_inst p then add_decl sub_decl;
  if uses_call p then add_decl fn_decl;
  if uses_chain p then add_decl chain_decl;
  if not !first then Buffer.add_char buf '\n';
  let ins = String.concat "," (input_names p) in
  let outs = out_ports p in
  Buffer.add_string buf
    (Printf.sprintf "fzt = COMPONENT (IN %s: boolean; OUT %s: boolean) IS\n"
       ins
       (String.concat "," (List.map fst outs)));
  (match p.items with
  | [] -> ()
  | items ->
      Buffer.add_string buf "SIGNAL ";
      List.iteri
        (fun i it ->
          if i > 0 then Buffer.add_string buf ";\n       ";
          Buffer.add_string buf (decl_of_item it))
        items;
      Buffer.add_string buf ";\n");
  Buffer.add_string buf "BEGIN\n";
  List.iter (stmts_of_item buf) p.items;
  List.iter
    (fun (port, src) ->
      Buffer.add_string buf (Printf.sprintf "  %s := %s;\n" port src))
    outs;
  (* strip the trailing ';' of the last statement: statement lists are
     ';'-separated, and an empty body is legal *)
  let s = Buffer.contents buf in
  let s =
    match String.rindex_opt s ';' with
    | Some i when i = String.length s - 2 ->
        String.sub s 0 i ^ "\n"
    | _ -> s
  in
  s ^ "END;\nSIGNAL s: fzt;\n"

(* ------------------------------------------------------------------ *)
(* Direct evaluation of the combinational subset                        *)
(* ------------------------------------------------------------------ *)

let gate_eval g vs =
  match (g, vs) with
  | Gand, _ -> Logic.and_list vs
  | Gor, _ -> Logic.or_list vs
  | Gnand, _ -> Logic.nand_list vs
  | Gnor, _ -> Logic.nor_list vs
  | Gxor, _ -> Logic.xor_list vs
  | Gequal, [ a; b ] -> Logic.equal2 a b
  | Gnot, [ a ] -> Logic.not_ a
  | (Gequal | Gnot), _ -> invalid_arg "Gen_prog.gate_eval: arity"

let is_combinational p =
  List.for_all
    (function
      | Wire _ | Arr _ | Inst _ -> true
      | Mux _ | Reg _ | Chain _ | Tog _ | Rchain _ -> false)
    p.items
  && not (List.mem "RSET" (referenced p))

(* [eval_comb p inputs] evaluates a combinational program directly over
   the four-valued domain and returns the value of each OUT port.  This
   is the independent oracle for the combinational subset: it never
   touches the parser, elaborator or any simulator engine. *)
let eval_comb p (inputs : Logic.t array) : (string * Logic.t) list =
  if not (is_combinational p) then
    invalid_arg "Gen_prog.eval_comb: program is not combinational";
  let env : (string, Logic.t) Hashtbl.t = Hashtbl.create 64 in
  let value n = match Hashtbl.find_opt env n with Some v -> v | None -> Logic.Undef in
  let rec eval = function
    | Ref n -> value n
    | Lit b -> Logic.of_bool b
    | Gate (g, args) -> gate_eval g (List.map eval args)
    | Call (a, b) -> Logic.xor2 (eval a) (eval b)
  in
  Array.iteri (fun i v -> Hashtbl.replace env (Printf.sprintf "x%d" i) v) inputs;
  List.iter
    (function
      | Wire { name; exp } -> Hashtbl.replace env name (eval exp)
      | Arr { name; len; init; step; extra } ->
          let prev = ref (eval init) in
          Hashtbl.replace env (name ^ "[1]") !prev;
          for k = 2 to len do
            let v = gate_eval step [ !prev; eval extra ] in
            Hashtbl.replace env (Printf.sprintf "%s[%d]" name k) v;
            prev := v
          done
      | Inst { name; a; b } ->
          Hashtbl.replace env (name ^ ".z") (Logic.nand_list [ eval a; eval b ])
      | Mux _ | Reg _ | Chain _ | Tog _ | Rchain _ -> assert false)
    p.items;
  List.map (fun (port, src) -> (port, value src)) (out_ports p)

(* ------------------------------------------------------------------ *)
(* Stimulus                                                             *)
(* ------------------------------------------------------------------ *)

(* One cycle of pokes: hierarchical path -> value, applied before the
   step.  Inputs not poked in a cycle keep their previous value (UNDEF
   initially) — exactly what drives the incremental engine's dirty-seed
   logic.  RSET may be poked like any other input. *)
type stimulus = (string * Logic.t) list list

let poke_paths p = List.map (fun n -> "s." ^ n) (input_names p)

let stimulus_to_string (stim : stimulus) =
  let buf = Buffer.create 256 in
  List.iteri
    (fun c pokes ->
      Buffer.add_string buf (Printf.sprintf "cycle %d:" (c + 1));
      List.iter
        (fun (path, v) ->
          Buffer.add_string buf
            (Printf.sprintf " %s=%c" path (Logic.to_char v)))
        pokes;
      Buffer.add_char buf '\n')
    stim;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Generators                                                           *)
(* ------------------------------------------------------------------ *)

(* Feature switches.  [comb] generates only directly-evaluable
   programs; [full] exercises the whole language. *)
type profile = {
  seq : bool; (* registers and recursive chains *)
  mux : bool; (* guarded multiplex drivers *)
  inst : bool; (* subcomponent instances *)
  call : bool; (* function-component calls *)
  rset : bool; (* RSET in guards and stimulus *)
  undef : bool; (* UNDEF in the stimulus alphabet *)
}

let full = { seq = true; mux = true; inst = true; call = true; rset = true; undef = true }
let comb = { seq = false; mux = false; inst = true; call = true; rset = false; undef = true }

let gen_exp ~env ~call ~depth =
  let leaf =
    G.frequency
      [ (8, G.map (fun n -> Ref n) (G.oneofl env)); (1, G.map (fun b -> Lit b) G.bool) ]
  in
  let rec go d =
    if d <= 0 then leaf
    else
      G.frequency
        ([ (2, leaf); (5, go_gate (d - 1)) ]
        @ if call then [ (1, go_call (d - 1)) ] else [])
  and go_gate d =
    G.bind (G.oneofl [ Gand; Gor; Gnand; Gnor; Gxor; Gequal; Gnot ]) (fun g ->
        match g with
        | Gnot -> G.map (fun e -> Gate (Gnot, [ e ])) (go d)
        | Gequal -> G.map2 (fun a b -> Gate (Gequal, [ a; b ])) (go d) (go d)
        | _ ->
            G.bind (G.int_range 2 3) (fun ar ->
                G.map (fun l -> Gate (g, l)) (G.list_repeat ar (go d))))
  and go_call d = G.map2 (fun a b -> Call (a, b)) (go d) (go d)
  in
  go depth

(* Skeletons: pick item kinds, names and structure first, so that the
   delayed readables (register and chain outputs) are known before any
   expression references them. *)
type skel =
  | Kwire
  | Kmux of mux_style
  | Kreg
  | Karr of int
  | Kinst
  | Kchain of int
  | Ktog
  | Krchain of int

let gen_skel profile =
  G.frequency
    ([ (4, G.return Kwire);
       (2, G.map (fun n -> Karr n) (G.int_range 1 4));
     ]
    @ (if profile.mux then
         [
           ( 3,
             G.map
               (fun s -> Kmux s)
               (G.oneofl [ If_else; Complement; Overlap; Overlap ]) );
         ]
       else [])
    @ (if profile.seq then
         [ (3, G.return Kreg); (1, G.map (fun d -> Kchain d) (G.int_range 1 4)) ]
       else [])
    @ (if profile.seq && profile.mux then [ (2, G.return Ktog) ] else [])
    @ (if profile.seq && profile.rset then
         [ (1, G.map (fun n -> Krchain n) (G.int_range 1 3)) ]
       else [])
    @ if profile.inst then [ (1, G.return Kinst) ] else [])

let name_skels skels =
  let counters = Hashtbl.create 8 in
  let fresh prefix =
    let n = Option.value ~default:0 (Hashtbl.find_opt counters prefix) in
    Hashtbl.replace counters prefix (n + 1);
    Printf.sprintf "%s%d" prefix n
  in
  List.map
    (fun k ->
      match k with
      | Kwire -> (k, fresh "w")
      | Kmux _ -> (k, fresh "m")
      | Kreg -> (k, fresh "r")
      | Karr _ -> (k, fresh "a")
      | Kinst -> (k, fresh "i")
      | Kchain _ -> (k, fresh "c")
      | Ktog -> (k, fresh "t")
      | Krchain _ -> (k, fresh "rc"))
    skels

let gen ?(profile = full) () : prog G.t =
  G.bind (G.int_range 1 5) (fun n_in ->
      G.bind (G.int_range 1 10) (fun n_items ->
          G.bind (G.list_repeat n_items (gen_skel profile)) (fun skels ->
              let named = name_skels skels in
              let inputs = List.init n_in (fun i -> Printf.sprintf "x%d" i) in
              let delayed =
                List.concat_map
                  (fun (k, name) ->
                    match k with
                    | Kreg | Ktog -> [ name ^ ".out" ]
                    | Kchain _ -> [ name ^ ".q" ]
                    | Krchain len ->
                        List.init len (fun k ->
                            Printf.sprintf "%sq%d.out" name (k + 1))
                    | _ -> [])
                  named
              in
              let exp env = gen_exp ~env ~call:profile.call ~depth:2 in
              let guard env =
                gen_exp
                  ~env:(if profile.rset then "RSET" :: env else env)
                  ~call:profile.call ~depth:1
              in
              let rec fill acc avail = function
                | [] -> G.return (List.rev acc)
                | (k, name) :: rest ->
                    let env = inputs @ delayed @ avail in
                    let item =
                      match k with
                      | Kwire -> G.map (fun exp -> Wire { name; exp }) (exp env)
                      | Kmux style ->
                          G.bind (guard env) (fun g1 ->
                              G.bind (guard env) (fun g2 ->
                                  G.map2
                                    (fun a b -> Mux { name; style; g1; g2; a; b })
                                    (exp env) (exp env)))
                      | Kreg ->
                          G.bind
                            (G.frequency
                               [ (1, G.return None);
                                 (2, G.map Option.some (guard env)) ])
                            (fun g ->
                              G.map (fun next -> Reg { name; guard = g; next })
                                (exp env))
                      | Karr len ->
                          G.bind (exp env) (fun init ->
                              G.bind
                                (G.oneofl [ Gand; Gor; Gnand; Gnor; Gxor; Gequal ])
                                (fun step ->
                                  G.map
                                    (fun extra ->
                                      Arr { name; len; init; step; extra })
                                    (exp env)))
                      | Kinst ->
                          G.map2 (fun a b -> Inst { name; a; b }) (exp env)
                            (exp env)
                      | Kchain depth ->
                          G.map (fun input -> Chain { name; depth; input })
                            (exp env)
                      | Ktog ->
                          G.bind G.bool (fun init ->
                              G.map2 (fun a b -> Tog { name; init; a; b })
                                (exp env) (exp env))
                      | Krchain len ->
                          G.map (fun input -> Rchain { name; len; input })
                            (exp env)
                    in
                    G.bind item (fun it ->
                        let avail' =
                          avail
                          @ List.filter
                              (fun r -> not (List.mem r delayed))
                              (item_readables it)
                        in
                        fill (it :: acc) avail' rest)
              in
              G.bind (fill [] [] named) (fun items ->
                  let readables =
                    inputs @ List.concat_map item_readables items
                  in
                  G.bind (G.int_range 1 3) (fun n_outs ->
                      G.map
                        (fun outs -> { n_in; items; outs })
                        (G.list_repeat n_outs (G.oneofl readables)))))))

let gen_cycle ~profile paths =
  let value =
    G.frequency
      ([ (4, G.return Logic.Zero); (4, G.return Logic.One) ]
      @ if profile.undef then [ (2, G.return Logic.Undef) ] else [])
  in
  let one path =
    G.bind (G.int_range 0 9) (fun k ->
        if k < 3 then G.return None
        else G.map (fun v -> Some (path, v)) value)
  in
  G.bind
    (G.flatten_l (List.map one paths))
    (fun pokes ->
      let pokes = List.filter_map Fun.id pokes in
      if not profile.rset then G.return pokes
      else
        G.bind (G.int_range 0 9) (fun k ->
            if k = 0 then G.return (("RSET", Logic.One) :: pokes)
            else if k = 1 then G.return (("RSET", Logic.Zero) :: pokes)
            else G.return pokes))

let gen_stimulus ?(profile = full) ?(max_cycles = 8) p : stimulus G.t =
  G.bind (G.int_range 1 max_cycles) (fun n ->
      G.list_repeat n (gen_cycle ~profile (poke_paths p)))

(* ------------------------------------------------------------------ *)
(* Shrinking                                                            *)
(* ------------------------------------------------------------------ *)

let rec map_exp f = function
  | Ref n -> f (Ref n)
  | Lit b -> f (Lit b)
  | Gate (g, args) -> f (Gate (g, List.map (map_exp f) args))
  | Call (a, b) -> f (Call (map_exp f a, map_exp f b))

let map_item_exps f = function
  | Wire w -> Wire { w with exp = f w.exp }
  | Mux m -> Mux { m with g1 = f m.g1; g2 = f m.g2; a = f m.a; b = f m.b }
  | Reg r -> Reg { r with guard = Option.map f r.guard; next = f r.next }
  | Arr a -> Arr { a with init = f a.init; extra = f a.extra }
  | Inst i -> Inst { i with a = f i.a; b = f i.b }
  | Chain c -> Chain { c with input = f c.input }
  | Tog t -> Tog { t with a = f t.a; b = f t.b }
  | Rchain c -> Rchain { c with input = f c.input }

let patch_item removed =
  map_item_exps
    (map_exp (function Ref n when List.mem n removed -> Lit false | e -> e))

(* remove item [idx]; dangling references collapse to constant 0 *)
let remove_item p idx =
  let removed = item_readables (List.nth p.items idx) in
  let items =
    List.filteri (fun i _ -> i <> idx) p.items |> List.map (patch_item removed)
  in
  let outs = List.filter (fun o -> not (List.mem o removed)) p.outs in
  { p with items; outs }

let shrink_exp = function
  | Gate (_, args) -> args @ [ Lit false ]
  | Call (a, b) -> [ a; b; Lit false ]
  | Ref _ -> [ Lit false ]
  | Lit true -> [ Lit false ]
  | Lit false -> []

let item_variants it =
  let with_exps mk exps shrink_at =
    List.concat_map
      (fun i ->
        List.map
          (fun e' -> mk (List.mapi (fun j e -> if i = j then e' else e) exps))
          (shrink_exp (List.nth exps i)))
      shrink_at
  in
  match it with
  | Wire { name; exp } ->
      List.map (fun e -> Wire { name; exp = e }) (shrink_exp exp)
  | Mux ({ g1; g2; a; b; _ } as m) ->
      (match m.style with
      | Overlap -> [ Mux { m with style = If_else } ]
      | _ -> [])
      @ with_exps
          (function
            | [ g1'; g2'; a'; b' ] -> Mux { m with g1 = g1'; g2 = g2'; a = a'; b = b' }
            | _ -> assert false)
          [ g1; g2; a; b ] [ 0; 1; 2; 3 ]
  | Reg ({ guard = Some g; _ } as r) ->
      Reg { r with guard = None }
      :: List.map (fun g' -> Reg { r with guard = Some g' }) (shrink_exp g)
      @ List.map (fun n' -> Reg { r with next = n' }) (shrink_exp r.next)
  | Reg ({ guard = None; _ } as r) ->
      List.map (fun n' -> Reg { r with next = n' }) (shrink_exp r.next)
  | Arr ({ init; extra; _ } as a) ->
      List.map (fun i' -> Arr { a with init = i' }) (shrink_exp init)
      @ List.map (fun e' -> Arr { a with extra = e' }) (shrink_exp extra)
  | Inst ({ a; b; _ } as i) ->
      List.map (fun a' -> Inst { i with a = a' }) (shrink_exp a)
      @ List.map (fun b' -> Inst { i with b = b' }) (shrink_exp b)
  | Chain ({ input; depth; _ } as c) ->
      (if depth > 1 then [ Chain { c with depth = depth - 1 } ] else [])
      @ List.map (fun e' -> Chain { c with input = e' }) (shrink_exp input)
  | Tog ({ a; b; _ } as t) ->
      List.map (fun a' -> Tog { t with a = a' }) (shrink_exp a)
      @ List.map (fun b' -> Tog { t with b = b' }) (shrink_exp b)
  | Rchain ({ input; _ } as c) ->
      (* len shrinks via shorten_arr's whole-program sibling below *)
      List.map (fun e' -> Rchain { c with input = e' }) (shrink_exp input)

(* shorten an array in place: references to the dropped elements
   collapse to constant 0 *)
let shorten_arr p idx =
  match List.nth p.items idx with
  | Arr ({ len; name; _ } as a) when len > 1 ->
      let removed = [ Printf.sprintf "%s[%d]" name len ] in
      let items =
        List.mapi
          (fun i it -> if i = idx then Arr { a with len = len - 1 } else it)
          p.items
        |> List.map (patch_item removed)
      in
      let outs = List.filter (fun o -> not (List.mem o removed)) p.outs in
      Some { p with items; outs }
  | Rchain ({ len; name; _ } as c) when len > 1 ->
      (* drop the tail register; references to it collapse to 0 *)
      let removed = [ Printf.sprintf "%sq%d.out" name len ] in
      let items =
        List.mapi
          (fun i it -> if i = idx then Rchain { c with len = len - 1 } else it)
          p.items
        |> List.map (patch_item removed)
      in
      let outs = List.filter (fun o -> not (List.mem o removed)) p.outs in
      Some { p with items; outs }
  | _ -> None

(* drop testbench input [k] (which nothing references): higher inputs
   shift down one slot — in the items, the observations, and the poke
   paths *)
let drop_input ((p, stim) : prog * stimulus) k =
  let rename n =
    if String.length n > 1 && n.[0] = 'x' then
      match int_of_string_opt (String.sub n 1 (String.length n - 1)) with
      | Some j when j > k -> Printf.sprintf "x%d" (j - 1)
      | _ -> n
    else n
  in
  let items =
    List.map
      (map_item_exps (map_exp (function Ref n -> Ref (rename n) | e -> e)))
      p.items
  in
  let outs = List.map rename p.outs in
  let dropped = Printf.sprintf "s.x%d" k in
  let stim =
    List.map
      (List.filter_map (fun (path, v) ->
           if path = dropped then None
           else if String.length path > 2 && String.sub path 0 2 = "s." then
             Some ("s." ^ rename (String.sub path 2 (String.length path - 2)), v)
           else Some (path, v)))
      stim
  in
  ({ n_in = p.n_in - 1; items; outs }, stim)

(* All one-step reductions of a failing case, most aggressive first.
   The greedy loop in {!Fuzz.shrink} (and QCheck's shrinker in the
   tests) keeps a reduction whenever the failure persists. *)
let shrink_steps ((p, stim) : prog * stimulus) : (prog * stimulus) list =
  let n = List.length p.items in
  let drop_cycle =
    List.init (List.length stim) (fun k ->
        (p, List.filteri (fun i _ -> i <> k) stim))
  in
  let drop_item = List.init n (fun k -> (remove_item p k, stim)) in
  let drop_inputs =
    if p.n_in <= 1 then []
    else
      let used = referenced p in
      List.filter_map
        (fun k ->
          if List.mem (Printf.sprintf "x%d" k) used then None
          else Some (drop_input (p, stim) k))
        (List.init p.n_in Fun.id)
  in
  let shorten =
    List.filter_map (fun k -> Option.map (fun p' -> (p', stim)) (shorten_arr p k))
      (List.init n Fun.id)
  in
  let drop_out =
    if List.length p.outs > 1 then
      List.init (List.length p.outs) (fun k ->
          ({ p with outs = List.filteri (fun i _ -> i <> k) p.outs }, stim))
    else []
  in
  let variants =
    List.concat (List.init n (fun k ->
        List.map
          (fun it' ->
            ({ p with items = List.mapi (fun i it -> if i = k then it' else it) p.items },
             stim))
          (item_variants (List.nth p.items k))))
  in
  let drop_poke =
    List.concat (List.mapi
        (fun c pokes ->
          List.init (List.length pokes) (fun j ->
              ( p,
                List.mapi
                  (fun c' ps -> if c' = c then List.filteri (fun i _ -> i <> j) ps else ps)
                  stim )))
        stim)
  in
  let simplify_poke =
    List.concat (List.mapi
        (fun c pokes ->
          List.filter_map
            (fun (j, (path, v)) ->
              let v' =
                match v with
                | Logic.Undef -> Some Logic.Zero
                | Logic.One -> Some Logic.Zero
                | _ -> None
              in
              Option.map
                (fun v' ->
                  ( p,
                    List.mapi
                      (fun c' ps ->
                        if c' = c then
                          List.mapi (fun i pk -> if i = j then (path, v') else pk) ps
                        else ps)
                      stim ))
                v')
            (List.mapi (fun j pk -> (j, pk)) pokes))
        stim)
  in
  drop_cycle @ drop_item @ drop_inputs @ shorten @ drop_out @ variants
  @ drop_poke @ simplify_poke

let shrink_iter case yield = List.iter yield (shrink_steps case)

let print_case (p, stim) = to_zeus p ^ "---- pokes ----\n" ^ stimulus_to_string stim

(* A ready-made QCheck arbitrary: program + stimulus, with IR-level
   shrinking and a printer that shows the Zeus source and poke script. *)
let arbitrary ?(profile = full) ?(max_cycles = 8) () =
  let g =
    G.bind (gen ~profile ()) (fun p ->
        G.map (fun stim -> (p, stim)) (gen_stimulus ~profile ~max_cycles p))
  in
  QCheck.make ~print:print_case ~shrink:shrink_iter g
